// Durability (§3.7): parallel value logging with group commit,
// checkpointing, and crash recovery. AttachWAL makes a DB durable; DB.Recover
// rebuilds a fresh DB from the log directory after a crash.
//
// The durability contract, in brief (docs/DURABILITY.md has the full
// specification):
//
//   - Acknowledgments are batched. When a commit returns, its redo record
//     is encoded into the worker's in-memory staged chunk chain; the
//     group-commit goroutine writes the batch to the OS page cache within
//     the next GroupCommit interval (or sooner) and makes it stable with
//     one fsync per interval. WAL.Flush is the durability barrier: data
//     flushed before a crash is never lost, and a crash may lose staged
//     commits newer than the last completed barrier.
//   - Every on-disk record carries a length prefix and a CRC32C, so
//     recovery detects torn writes and bit flips. Damage at the tail of a
//     log is dropped and reported (ErrTornTail in RecoverStats.TailFaults);
//     recovery still succeeds and never replays past a corrupt point.
//   - Checkpoints install atomically (temp file, fsync, rename, directory
//     fsync): a crash during checkpointing leaves the previous state.
package cicada

import (
	"time"

	"cicada/internal/wal"
)

// Typed recovery errors, re-exported from the WAL implementation for use
// with errors.Is against Recover results and RecoverStats.TailFaults.
var (
	// ErrTornTail matches a dropped corrupt/truncated log tail report.
	ErrTornTail = wal.ErrTornTail
	// ErrCorruptLength matches a record rejected for an impossible length
	// prefix or entry count before anything was sized from it.
	ErrCorruptLength = wal.ErrCorruptLength
	// ErrChecksum matches a record whose CRC32C did not verify.
	ErrChecksum = wal.ErrChecksum
	// ErrBadCheckpoint is returned by Recover when a checkpoint file's
	// header is not a checkpoint header; recovery fails rather than
	// silently recovering nothing.
	ErrBadCheckpoint = wal.ErrBadCheckpoint
)

// WALConfig configures durability (§3.7).
type WALConfig struct {
	// Dir is the directory for redo logs and checkpoints.
	Dir string
	// Loggers is the number of logger streams (default: 1 per 4 workers).
	Loggers int
	// GroupCommit is the fsync interval (default 1 ms).
	GroupCommit time.Duration
	// ChunkSize rotates redo log files at this size (default 1 MiB).
	ChunkSize int64
	// BufChunk is the pooled in-memory staging chunk size of the batched
	// write path (default 64 KiB, clamped to ChunkSize).
	BufChunk int
}

// WAL is a handle to the database's durability manager.
type WAL struct {
	m *wal.Manager
}

// AttachWAL enables parallel value logging: every committed transaction's
// write set is encoded into its worker's staged redo chain before the
// transaction's versions become visible, and group commit batches the
// staged chains to disk with one fsync per interval. It must be called
// before transactions run.
func (db *DB) AttachWAL(cfg WALConfig) (*WAL, error) {
	m, err := wal.Attach(db.eng, wal.Options{
		Dir:         cfg.Dir,
		Loggers:     cfg.Loggers,
		GroupCommit: cfg.GroupCommit,
		ChunkSize:   cfg.ChunkSize,
		BufChunk:    cfg.BufChunk,
	})
	if err != nil {
		return nil, err
	}
	db.wal = m
	return &WAL{m: m}, nil
}

// Flush is a durability barrier: it forces all buffered redo records to
// stable storage immediately instead of waiting for group commit.
func (w *WAL) Flush() error { return w.m.Flush() }

// Checkpoint writes a consistent snapshot of all tables taken at a safe
// snapshot timestamp, then purges redo log chunks and older checkpoints the
// new checkpoint covers. It runs concurrently with transactions.
func (w *WAL) Checkpoint() error { return w.m.Checkpoint() }

// Close flushes and stops logging.
func (w *WAL) Close() error { return w.m.Close() }

// RecoverStats summarizes a recovery.
type RecoverStats = wal.RecoverStats

// Recover replays the newest checkpoint and all redo logs in dir into db,
// which must be freshly opened with the same tables and indexes created in
// the same order, and must not be running transactions. After recovery the
// clocks are initialized past every replayed timestamp, so the database is
// immediately usable.
func (db *DB) Recover(dir string) (RecoverStats, error) {
	return wal.Recover(db.eng, dir)
}
