package cicada

import (
	"cicada/internal/index"
)

// HashIndex is a multi-version hash index (§3.6): point lookups only. Index
// nodes are records in an internal Cicada table, so index reads are
// validated with the transaction (precluding phantoms for absent keys) and
// index updates stay thread-local until the transaction validates — aborted
// transactions never disturb global index state.
type HashIndex struct {
	h *index.MVHash
}

// CreateHashIndex registers a multi-version hash index sized for roughly
// capacity entries. With unique set, Insert rejects duplicate keys.
func (db *DB) CreateHashIndex(name string, capacity int, unique bool) *HashIndex {
	return &HashIndex{h: index.NewMVHash(db.eng, "__idx_"+name, capacity, unique)}
}

// Get returns the first record ID for key, or ErrNotFound.
func (ix *HashIndex) Get(tx *Txn, key uint64) (RecordID, error) {
	return ix.h.Get(tx.t, key)
}

// GetAll appends every record ID for key to dst.
func (ix *HashIndex) GetAll(tx *Txn, key uint64, dst []RecordID) ([]RecordID, error) {
	return ix.h.GetAll(tx.t, key, dst)
}

// Insert adds key → rid.
func (ix *HashIndex) Insert(tx *Txn, key uint64, rid RecordID) error {
	return ix.h.Insert(tx.t, key, rid)
}

// Delete removes key → rid.
func (ix *HashIndex) Delete(tx *Txn, key uint64, rid RecordID) error {
	return ix.h.Delete(tx.t, key, rid)
}

// BTreeIndex is a multi-version ordered index (§3.6): a B+-tree whose nodes
// are records in an internal Cicada table. Range scans read every touched
// leaf inside the transaction, so phantoms are impossible for committed
// transactions.
type BTreeIndex struct {
	t *index.MVBTree
}

// CreateBTreeIndex registers a multi-version ordered index. With unique
// set, Insert rejects duplicate keys.
func (db *DB) CreateBTreeIndex(name string, unique bool) *BTreeIndex {
	return &BTreeIndex{t: index.NewMVBTree(db.eng, "__idx_"+name, unique)}
}

// Get returns the first record ID for key, or ErrNotFound.
func (ix *BTreeIndex) Get(tx *Txn, key uint64) (RecordID, error) {
	return ix.t.Get(tx.t, key)
}

// Insert adds key → rid (duplicate keys with distinct record IDs are
// allowed unless the index is unique).
func (ix *BTreeIndex) Insert(tx *Txn, key uint64, rid RecordID) error {
	return ix.t.Insert(tx.t, key, rid)
}

// Delete removes key → rid.
func (ix *BTreeIndex) Delete(tx *Txn, key uint64, rid RecordID) error {
	return ix.t.Delete(tx.t, key, rid)
}

// Scan visits entries with lo ≤ key ≤ hi in key order until fn returns
// false or limit entries have been visited (limit < 0 = unlimited).
func (ix *BTreeIndex) Scan(tx *Txn, lo, hi uint64, limit int, fn func(key uint64, rid RecordID) bool) error {
	return ix.t.Scan(tx.t, lo, hi, limit, fn)
}
