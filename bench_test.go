// Benchmarks regenerating the paper's evaluation (§4): one benchmark per
// figure and table, driving the same experiment code as cmd/cicada-bench at
// a reduced per-point duration. Throughput is reported as the custom metric
// "tx/s" (and "recs/s" for scans); the Go benchmark time itself is the
// wall-clock cost of running the experiment point.
//
// Run all:  go test -bench=. -benchmem
// One:      go test -bench=BenchmarkFig6 -benchtime=1x
package cicada_test

import (
	"strconv"
	"testing"
	"time"

	"cicada/internal/bench"
	"cicada/internal/workload/tpcc"
	"cicada/internal/workload/ycsb"
)

// benchScale keeps every point short enough for the full matrix to run in
// minutes; cmd/cicada-bench uses longer windows and larger data.
func benchScale() bench.Scale {
	s := bench.DefaultScale()
	s.Threads = []int{2}
	s.MaxThreads = 2
	s.Engines = bench.EngineNames
	t := tpcc.DefaultConfig(1)
	t.Items = 2000
	t.CustomersPerDistrict = 300
	t.InitialOrdersPerDistrict = 100
	s.TPCC = t
	y := ycsb.DefaultConfig()
	y.Records = 50_000
	s.YCSB = y
	s.Skews = []float64{0, 0.99}
	s.RecordSizes = []int{8, 216, 1000}
	s.GCIntervals = []time.Duration{10 * time.Microsecond, 10 * time.Millisecond}
	s.Backoffs = []time.Duration{0, 100 * time.Microsecond}
	s.Dur = bench.Durations{Ramp: 50 * time.Millisecond, Measure: 200 * time.Millisecond}
	return s
}

// report runs the experiment once and reports each result point as a
// sub-benchmark metric.
func report(b *testing.B, rs []bench.Result) {
	b.Helper()
	for _, r := range rs {
		r := r
		name := r.Engine
		if r.Param != 0 {
			name += "/param=" + trimFloat(r.Param)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// The measurement already ran; re-running per iteration
				// would multiply load times. Report the captured metrics.
			}
			b.ReportMetric(r.TPS, "tx/s")
			b.ReportMetric(100*r.AbortRate, "abort%")
			for k, v := range r.Extra {
				b.ReportMetric(v, k)
			}
		})
	}
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', 3, 64)
}

// BenchmarkFig3_TPCC_Contended: TPC-C full mix with phantom avoidance,
// 1 warehouse (Figure 3a).
func BenchmarkFig3_TPCC_Contended(b *testing.B) {
	report(b, bench.Fig3('a', benchScale()))
}

// BenchmarkFig3_TPCC_Uncontended: warehouses = threads (Figure 3c).
func BenchmarkFig3_TPCC_Uncontended(b *testing.B) {
	report(b, bench.Fig3('c', benchScale()))
}

// BenchmarkFig4_TPCC_DeferredIndex: deferred index updates, no phantom
// avoidance, 1 warehouse (Figure 4a).
func BenchmarkFig4_TPCC_DeferredIndex(b *testing.B) {
	report(b, bench.Fig4('a', benchScale()))
}

// BenchmarkFig5_TPCCNP: NewOrder + Payment only, 4 warehouses (Figure 5b).
func BenchmarkFig5_TPCCNP(b *testing.B) {
	report(b, bench.Fig5('b', benchScale()))
}

// BenchmarkFig6_YCSB_Contended: YCSB 16 req/tx, 50 % RMW, zipf 0.99
// (Figure 6a).
func BenchmarkFig6_YCSB_Contended(b *testing.B) {
	report(b, bench.Fig6('a', benchScale()))
}

// BenchmarkFig6_YCSB_ReadIntensiveSkew: 5 % RMW, skew sweep (Figure 6c).
func BenchmarkFig6_YCSB_ReadIntensiveSkew(b *testing.B) {
	report(b, bench.Fig6('c', benchScale()))
}

// BenchmarkFig7_MultiClock: tiny transactions; Cicada multi-clock vs
// centralized-counter variants (Figure 7 / §4.6 factor analysis).
func BenchmarkFig7_MultiClock(b *testing.B) {
	report(b, bench.Fig7(benchScale()))
}

// BenchmarkFig8_Inlining: record-size sweep with and without best-effort
// inlining (Figure 8).
func BenchmarkFig8_Inlining(b *testing.B) {
	report(b, bench.Fig8(benchScale()))
}

// BenchmarkFig9_GC: garbage collection interval sweep plus space overhead
// (Figure 9).
func BenchmarkFig9_GC(b *testing.B) {
	report(b, bench.Fig9(benchScale()))
}

// BenchmarkFig10_Backoff: contention regulation (auto) vs fixed maximum
// backoff (Figure 10, YCSB panel).
func BenchmarkFig10_Backoff(b *testing.B) {
	report(b, bench.Fig10("ycsb", benchScale()))
}

// BenchmarkFig11_TinyTx: YCSB 1 req/tx skew sweep (Figure 11a).
func BenchmarkFig11_TinyTx(b *testing.B) {
	report(b, bench.Fig11('a', benchScale()))
}

// BenchmarkTable2_Ablation: disabling each validation optimization on
// contended YCSB (Table 2).
func BenchmarkTable2_Ablation(b *testing.B) {
	report(b, bench.Table2(benchScale()))
}

// BenchmarkScan_Inlining: scan throughput with and without inlining (§4.6).
func BenchmarkScan_Inlining(b *testing.B) {
	report(b, bench.ScanBench(benchScale()))
}

// BenchmarkStaleness: read-only snapshot staleness during TPC-C (§4.6).
func BenchmarkStaleness(b *testing.B) {
	report(b, bench.Staleness(benchScale()))
}

// BenchmarkRTSUpdate: conditional read-timestamp updates vs unconditional
// atomic fetch-add on a single record (§3.4).
func BenchmarkRTSUpdate(b *testing.B) {
	cond, faa := bench.RTSUpdateBench(2, 100*time.Millisecond)
	b.ReportMetric(cond, "cond-ops/s")
	b.ReportMetric(faa, "faa-ops/s")
	b.ReportMetric(cond/faa, "ratio")
}
