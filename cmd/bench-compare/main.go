// Command bench-compare is the CI perf-regression gate
// (docs/PERFORMANCE.md). It runs one named gate curve at small scale and
// fails (exit 1) when the fresh measurement falls below its floor:
//
//   - speedup (the default): re-run one scalability curve from a committed
//     BENCH_*.json seed and require the fresh multi-thread speedup to stay
//     within -slack of the seed's recorded value. -experiment/-engine/-param
//     select the seed curve; -threads the gated point.
//   - skew-adaptive: run the "skew" experiment's highest-theta point with
//     heat-driven adaptation on and off in the same process and require
//     adaptive-on throughput ≥ adaptive-off × -slack with no increase in
//     validation + rts_early aborts per commit. Self-contained (no seed),
//     so it is robust to runner speed.
//
// Usage (the CI defaults):
//
//	bench-compare -curve speedup -seed BENCH_ycsb.json -experiment fig6a \
//	    -engine Cicada -param 0 -threads 2 -mutexprofile mutex.out
//	bench-compare -curve skew-adaptive -threads 2
//
// -mutexprofile enables mutex profiling for the run and writes the profile
// on exit, so the CI job can upload it as an artifact whether the gate
// passes or fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"cicada/internal/bench"
)

func main() {
	var (
		curve      = flag.String("curve", "speedup", "named gate curve: speedup or skew-adaptive")
		seedPath   = flag.String("seed", "BENCH_ycsb.json", "committed bench report to compare against (speedup curve only)")
		experiment = flag.String("experiment", "fig6a", "seed curve's experiment (fig6a or scaling; speedup curve only)")
		engineName = flag.String("engine", "Cicada", "seed curve's engine name (speedup curve only)")
		param      = flag.Float64("param", 0, "seed curve's param value (e.g. Zipf theta; speedup curve only)")
		threads    = flag.Int("threads", 2, "thread count to measure at")
		slack      = flag.Float64("slack", 0.9, "fresh value must be ≥ floor × slack (absorbs runner noise)")
		ramp       = flag.Duration("ramp", 200*time.Millisecond, "ramp-up before measuring each point")
		measure    = flag.Duration("measure", 500*time.Millisecond, "measurement window per point")
		mutexProf  = flag.String("mutexprofile", "", "enable mutex profiling and write the profile here on exit")
	)
	flag.Parse()

	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(100)
		defer writeMutexProfile(*mutexProf)
	}

	s := bench.DefaultScale()
	s.Threads = []int{1, *threads}
	s.MaxThreads = *threads
	s.Dur = bench.Durations{Ramp: *ramp, Measure: *measure}
	s.Engines = []string{"Cicada"}

	switch *curve {
	case "speedup":
		gateSpeedup(s, *seedPath, *experiment, *engineName, *param, *threads, *slack)
	case "skew-adaptive":
		gateSkewAdaptive(s, *slack)
	default:
		fatal(2, "curve %q not supported (speedup or skew-adaptive)", *curve)
	}
	fmt.Println("OK")
}

// gateSpeedup re-measures one seed scalability curve and gates the
// multi-thread speedup against the committed value.
func gateSpeedup(s bench.Scale, seedPath, experiment, engineName string, param float64, threads int, slack float64) {
	seed, err := bench.LoadReport(seedPath)
	if err != nil {
		fatal(2, "load seed: %v", err)
	}
	seedCurve, err := bench.FindCurve(seed, experiment, engineName, param)
	if err != nil {
		fatal(2, "seed: %v", err)
	}
	seedSpeedup, err := bench.SpeedupAt(seedCurve, threads)
	if err != nil {
		fatal(2, "seed: %v", err)
	}

	var results []bench.Result
	switch experiment {
	case "fig6a":
		results = bench.Fig6('a', s)
	case "scaling":
		results = bench.Scaling(s)
	default:
		fatal(2, "experiment %q not supported (fig6a or scaling)", experiment)
	}
	fresh, err := bench.FindCurve(&bench.JSONReport{Scalability: bench.DeriveScalability(results)},
		experiment, engineName, param)
	if err != nil {
		fatal(2, "fresh run: %v", err)
	}
	freshSpeedup, err := bench.SpeedupAt(fresh, threads)
	if err != nil {
		fatal(2, "fresh run: %v", err)
	}

	floor := seedSpeedup * slack
	fmt.Printf("bench-compare %s/%s param=%g: %d-thread speedup fresh=%.3f seed=%.3f floor=%.3f (slack %.2f)\n",
		experiment, engineName, param, threads, freshSpeedup, seedSpeedup, floor, slack)
	if freshSpeedup < floor {
		fatal(1, "REGRESSION: fresh %d-thread speedup %.3f fell below the committed floor %.3f",
			threads, freshSpeedup, floor)
	}
}

// gateSkewAdaptive runs the skew experiment's highest theta with adaptation
// on and off and gates the adaptive variant's throughput and abort taxonomy.
// Five interleaved trials per variant; the gate compares best-vs-best to
// cancel scheduler noise on small runners.
func gateSkewAdaptive(s bench.Scale, slack float64) {
	s.Skews = []float64{0.99}
	const trials = 5
	var results []bench.Result
	for i := 0; i < trials; i++ {
		results = append(results, bench.Skew(s)...)
	}
	summary, err := bench.SkewAdaptiveGate(results, slack)
	if summary != "" {
		fmt.Println("bench-compare " + summary)
	}
	if err != nil {
		fatal(1, "REGRESSION: %v", err)
	}
}

func writeMutexProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "create -mutexprofile file: %v\n", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "write -mutexprofile file: %v\n", err)
	}
}

func fatal(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}
