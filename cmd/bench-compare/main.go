// Command bench-compare is the CI scalability-regression gate
// (docs/PERFORMANCE.md): it re-runs one scalability curve from a committed
// BENCH_*.json seed at small scale and fails (exit 1) if the fresh
// multi-thread speedup falls below the seed's recorded value times -slack.
//
// Usage (the CI defaults):
//
//	bench-compare -seed BENCH_ycsb.json -experiment fig6a -engine Cicada \
//	    -param 0 -threads 2 -mutexprofile mutex.out
//
// The fresh run measures the same (experiment, engine, param) curve with a
// threads sweep of {1, -threads}. -mutexprofile enables mutex profiling for
// the run and writes the profile on exit, so the CI job can upload it as an
// artifact whether the gate passes or fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"cicada/internal/bench"
)

func main() {
	var (
		seedPath   = flag.String("seed", "BENCH_ycsb.json", "committed bench report to compare against")
		experiment = flag.String("experiment", "fig6a", "seed curve's experiment (fig6a or scaling)")
		engineName = flag.String("engine", "Cicada", "seed curve's engine name")
		param      = flag.Float64("param", 0, "seed curve's param value (e.g. Zipf theta for scaling)")
		threads    = flag.Int("threads", 2, "thread count whose speedup is gated (measured against threads=1)")
		slack      = flag.Float64("slack", 0.9, "fresh speedup must be ≥ seed speedup × slack (absorbs runner noise)")
		ramp       = flag.Duration("ramp", 200*time.Millisecond, "ramp-up before measuring each point")
		measure    = flag.Duration("measure", 500*time.Millisecond, "measurement window per point")
		mutexProf  = flag.String("mutexprofile", "", "enable mutex profiling and write the profile here on exit")
	)
	flag.Parse()

	seed, err := bench.LoadReport(*seedPath)
	if err != nil {
		fatal(2, "load seed: %v", err)
	}
	seedCurve, err := bench.FindCurve(seed, *experiment, *engineName, *param)
	if err != nil {
		fatal(2, "seed: %v", err)
	}
	seedSpeedup, err := bench.SpeedupAt(seedCurve, *threads)
	if err != nil {
		fatal(2, "seed: %v", err)
	}

	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(100)
		defer writeMutexProfile(*mutexProf)
	}

	s := bench.DefaultScale()
	s.Threads = []int{1, *threads}
	s.Dur = bench.Durations{Ramp: *ramp, Measure: *measure}
	// Scaling derives its durable Cicada/WAL curve from the Cicada entry.
	s.Engines = []string{"Cicada"}

	var results []bench.Result
	switch *experiment {
	case "fig6a":
		results = bench.Fig6('a', s)
	case "scaling":
		results = bench.Scaling(s)
	default:
		fatal(2, "experiment %q not supported (fig6a or scaling)", *experiment)
	}
	fresh, err := bench.FindCurve(&bench.JSONReport{Scalability: bench.DeriveScalability(results)},
		*experiment, *engineName, *param)
	if err != nil {
		fatal(2, "fresh run: %v", err)
	}
	freshSpeedup, err := bench.SpeedupAt(fresh, *threads)
	if err != nil {
		fatal(2, "fresh run: %v", err)
	}

	floor := seedSpeedup * *slack
	fmt.Printf("bench-compare %s/%s param=%g: %d-thread speedup fresh=%.3f seed=%.3f floor=%.3f (slack %.2f)\n",
		*experiment, *engineName, *param, *threads, freshSpeedup, seedSpeedup, floor, *slack)
	if freshSpeedup < floor {
		fatal(1, "REGRESSION: fresh %d-thread speedup %.3f fell below the committed floor %.3f",
			*threads, freshSpeedup, floor)
	}
	fmt.Println("OK")
}

func writeMutexProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "create -mutexprofile file: %v\n", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "write -mutexprofile file: %v\n", err)
	}
}

func fatal(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}
