// cicada-server serves the embedded Cicada engine over TCP to multiple
// tenants (docs/SERVER.md). The wire protocol is documented in
// docs/PROTOCOL.md; internal/client is the Go client.
//
// Usage:
//
//	cicada-server -addr 127.0.0.1:7425 -tenants "acme:accounts,audit;globex:accounts"
//
// The bound address is printed on stdout once listening (useful with
// -addr 127.0.0.1:0 in scripts). SIGINT/SIGTERM triggers a graceful
// drain: the listener closes, in-flight transactions finish and flush,
// then sessions and workers stop.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"cicada"
	"cicada/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7425", "listen address for the client protocol")
		adminAddr = flag.String("admin-addr", "", "serve /metrics, /debug/vars and /debug/txntrace on this address (off when empty)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "engine worker threads (all owned by the server)")
		tenants   = flag.String("tenants", "default:kv", `tenant provisioning: "name:table1,table2;name2:table"`)

		maxFrame    = flag.Int("max-frame", 0, "frame size bound in bytes (default 1 MiB)")
		queueDepth  = flag.Int("queue-depth", 0, "submission queue depth (default 256)")
		txnAttempts = flag.Int("txn-attempts", 0, "per-txn conflict retry budget (default 8)")
		maxSessions = flag.Int("max-sessions", 0, "per-tenant session quota (default 64)")
		maxInflight = flag.Int("max-inflight", 0, "per-tenant in-flight txn quota (default 128)")
		tableCap    = flag.Int("table-capacity", 0, "per-table hash index capacity (default 65536)")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM")
		traceFlag   = flag.Bool("trace", false, "enable the transaction tracer (docs/OBSERVABILITY.md)")
		walDir      = flag.String("wal-dir", "", "enable durability: recover from and log to this directory")
		groupCommit = flag.Duration("group-commit", 0, "WAL fsync interval (default 1 ms)")
	)
	flag.Parse()

	tenantCfgs, err := parseTenants(*tenants, *maxSessions, *maxInflight, *tableCap)
	if err != nil {
		fatal(err)
	}

	cfg := cicada.DefaultConfig(*workers)
	cfg.Telemetry = true
	cfg.Trace = *traceFlag
	db := cicada.Open(cfg)

	srv, err := server.New(server.Config{
		DB:          db,
		Tenants:     tenantCfgs,
		MaxFrame:    *maxFrame,
		QueueDepth:  *queueDepth,
		TxnAttempts: *txnAttempts,
	})
	if err != nil {
		fatal(err)
	}

	var wal *cicada.WAL
	if *walDir != "" {
		// Recover whatever a previous run left behind (the schema above is
		// rebuilt identically from the same -tenants spec), then attach the
		// log so new commits are durable.
		if logs, _ := filepath.Glob(filepath.Join(*walDir, "*")); len(logs) > 0 {
			stats, err := db.Recover(*walDir)
			if err != nil {
				fatal(fmt.Errorf("recover %s: %w", *walDir, err))
			}
			fmt.Printf("cicada-server: recovered %d redo records, %d versions installed\n",
				stats.RedoRecords, stats.Installed)
		}
		wal, err = db.AttachWAL(cicada.WALConfig{Dir: *walDir, GroupCommit: *groupCommit})
		if err != nil {
			fatal(err)
		}
	}

	if *adminAddr != "" {
		go func() {
			if err := http.ListenAndServe(*adminAddr, db.MetricsHandler()); err != nil {
				fmt.Fprintf(os.Stderr, "cicada-server: admin listener: %v\n", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cicada-server: listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case s := <-sig:
		fmt.Printf("cicada-server: %v, draining (budget %s)\n", s, *drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		err := srv.Drain(ctx)
		cancel()
		if wal != nil {
			if werr := wal.Close(); werr != nil && err == nil {
				err = werr
			}
		}
		if err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		st := db.Stats()
		fmt.Printf("cicada-server: drained cleanly (%d txns committed)\n", st.Commits)
	case err := <-serveErr:
		if wal != nil {
			wal.Close()
		}
		if err != nil {
			fatal(err)
		}
	}
}

// parseTenants turns "acme:accounts,audit;globex:accounts" into tenant
// configs sharing the given quota overrides.
func parseTenants(spec string, maxSessions, maxInflight, tableCap int) ([]server.TenantConfig, error) {
	var out []server.TenantConfig
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, tables, ok := strings.Cut(part, ":")
		if !ok || name == "" || tables == "" {
			return nil, fmt.Errorf("bad tenant spec %q (want name:table1,table2)", part)
		}
		tc := server.TenantConfig{
			Name:          strings.TrimSpace(name),
			MaxSessions:   maxSessions,
			MaxInflight:   maxInflight,
			TableCapacity: tableCap,
		}
		for _, tbl := range strings.Split(tables, ",") {
			tbl = strings.TrimSpace(tbl)
			if tbl == "" {
				return nil, fmt.Errorf("bad tenant spec %q: empty table name", part)
			}
			tc.Tables = append(tc.Tables, tbl)
		}
		out = append(out, tc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenants in spec %q", spec)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cicada-server: %v\n", err)
	os.Exit(1)
}
