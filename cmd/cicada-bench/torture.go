package main

import (
	"fmt"
	"os"

	"cicada/internal/wal"
)

// runTorture executes -torture: seeded WAL crash-recovery runs (see
// docs/DURABILITY.md and internal/wal's RunTorture). Exit status 0 means
// every seed upheld the durability contract.
func runTorture(seeds, workers int) int {
	fmt.Printf("WAL torture: %d seeds, %d workers each\n", seeds, workers)
	crashes := 0
	siteHits := map[string]int{}
	failed := false
	for seed := 0; seed < seeds; seed++ {
		dir, err := os.MkdirTemp("", "cicada-torture-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: %v\n", seed, err)
			return 1
		}
		rep, err := wal.RunTorture(wal.TortureConfig{
			Seed:       int64(seed),
			Dir:        dir,
			Workers:    workers,
			Checkpoint: seed%2 == 1,
		})
		os.RemoveAll(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: %v\n", seed, err)
			return 1
		}
		if rep.Crashed {
			crashes++
			siteHits[rep.CrashSite]++
		}
		for _, v := range rep.Violations {
			failed = true
			fmt.Fprintf(os.Stderr, "seed %d VIOLATION (trigger %s): %s\n", seed, rep.Trigger, v)
		}
		fmt.Printf("seed %3d: trigger=%-32s crashed=%-5v commits=%-5d aborts=%-4d replayed=%d torn=%d\n",
			seed, rep.Trigger, rep.Crashed, rep.Commits, rep.PoisonAborts,
			rep.Recovery.RedoRecords, rep.Recovery.TornTails)
	}
	fmt.Printf("\n%d/%d seeds crashed mid-run; crash sites:\n", crashes, seeds)
	for site, n := range siteHits {
		fmt.Printf("  %-24s %d\n", site, n)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "FAIL: durability contract violated")
		return 1
	}
	if crashes == 0 {
		fmt.Fprintln(os.Stderr, "FAIL: no seed crashed; the torture exercised nothing")
		return 1
	}
	fmt.Println("PASS")
	return 0
}
