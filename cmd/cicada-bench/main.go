// cicada-bench regenerates the paper's evaluation (§4): every figure and
// table has a subcommand that runs the corresponding workload sweep across
// Cicada and the baseline concurrency control schemes and prints a table of
// committed throughput (and abort rates) shaped like the paper's plot.
//
// Usage:
//
//	cicada-bench [flags] <experiment> [...]
//
// Experiments: fig3a fig3b fig3c fig4a fig4b fig4c fig5a fig5b fig5c
// fig6a fig6b fig6c fig7 fig8 fig9 fig10 fig11a fig11b fig11c fig11d
// table2 scan staleness rts tatp scaling skew all
//
// The default scale fits a small machine; -full selects paper-scale data
// sizes (10 M-record YCSB, 100 k-item TPC-C). EXPERIMENTS.md documents the
// mapping to the paper's testbed.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"cicada/internal/bench"
	"cicada/internal/telemetry"
	"cicada/internal/trace"
)

func main() {
	var (
		csvPath = flag.String("csv", "", "append raw results as CSV to this file")
		threads = flag.String("threads", "", "comma-separated thread sweep (default scales to GOMAXPROCS)")
		engines = flag.String("engines", "", "comma-separated engine filter (default: all)")
		measure = flag.Duration("measure", 2*time.Second, "measurement window per point")
		ramp    = flag.Duration("ramp", 500*time.Millisecond, "ramp-up before measuring")
		full    = flag.Bool("full", false, "paper-scale data sizes (needs ~16 GB RAM and patience)")
		records = flag.Int("ycsb-records", 0, "override YCSB record count")
		items   = flag.Int("tpcc-items", 0, "override TPC-C item count")
		sizes   = flag.String("record-sizes", "", "comma-separated Figure 8 record sizes")
		metrics = flag.String("metrics-addr", "", "serve live metrics on this address (/metrics, /debug/vars, /debug/txntrace) and export per-trial telemetry")
		telFlag = flag.Bool("telemetry", false, "collect per-trial telemetry without serving HTTP")

		tracePath   = flag.String("trace", "", "trace sampled transactions and write the last trial's events as Chrome trace-event JSON (load in Perfetto; docs/OBSERVABILITY.md)")
		traceSample = flag.Int("trace-sample", 0, "trace every Nth transaction per worker (default 64; aborts are always traced)")
		traceBuffer = flag.Int("trace-buffer", 0, "per-worker trace ring capacity in events (default 8192)")

		pprofFlag  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on -metrics-addr")
		pprofMutex = flag.Int("pprof-mutex-fraction", 0, "runtime.SetMutexProfileFraction for -pprof (0 leaves it off)")
		pprofBlock = flag.Int("pprof-block-rate", 0, "runtime.SetBlockProfileRate for -pprof (0 leaves it off)")

		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile covering all experiments to this file")
		memProfile   = flag.String("memprofile", "", "write an allocation (heap) profile at exit to this file")
		mutexProfile = flag.String("mutexprofile", "", "write a mutex contention profile at exit to this file")
		jsonPath     = flag.String("json", "", "write all results as a JSON report to this file (see docs/PERFORMANCE.md)")
		jsonNote     = flag.String("json-note", "", "free-form note recorded in the JSON report's metadata")

		serverAddr   = flag.String("server-addr", "", "drive a YCSB-style load against a running cicada-server at this address instead of embedded benchmarks (docs/SERVER.md)")
		serverTenant = flag.String("server-tenant", "default", "tenant for -server-addr mode")
		serverTable  = flag.String("server-table", "kv", "table for -server-addr mode")
		serverConns  = flag.Int("server-conns", 8, "client connections for -server-addr mode")
		serverKeys   = flag.Uint64("server-keys", 10000, "key space for -server-addr mode")
		serverWrites = flag.Int("server-write-pct", 10, "write percentage for -server-addr mode")
		serverBatch  = flag.Int("server-batch", 2, "statements per transaction for -server-addr mode")

		torture        = flag.Bool("torture", false, "run WAL crash-recovery torture instead of benchmarks (docs/DURABILITY.md)")
		tortureSeeds   = flag.Int("torture-seeds", 50, "number of seeded torture runs")
		tortureWorkers = flag.Int("torture-workers", 4, "committing workers per torture run")
	)
	flag.Parse()
	if *serverAddr != "" {
		os.Exit(runServerLoad(serverLoadOpts{
			addr:     *serverAddr,
			tenant:   *serverTenant,
			table:    *serverTable,
			conns:    *serverConns,
			keys:     *serverKeys,
			writePct: *serverWrites,
			batch:    *serverBatch,
			measure:  *measure,
		}))
	}
	if *torture {
		os.Exit(runTorture(*tortureSeeds, *tortureWorkers))
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: cicada-bench [flags] <experiment> [...]; see -h")
		os.Exit(2)
	}

	s := bench.DefaultScale()
	s.Dur = bench.Durations{Ramp: *ramp, Measure: *measure}
	maxT := runtime.GOMAXPROCS(0)
	if maxT >= 4 {
		s.Threads = []int{1, 2, 4}
		for t := 8; t <= maxT; t *= 2 {
			s.Threads = append(s.Threads, t)
		}
	}
	s.MaxThreads = s.Threads[len(s.Threads)-1]
	if *threads != "" {
		s.Threads = nil
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad -threads value %q\n", part)
				os.Exit(2)
			}
			s.Threads = append(s.Threads, n)
		}
		s.MaxThreads = s.Threads[len(s.Threads)-1]
	}
	if *engines != "" {
		s.Engines = nil
		for _, part := range strings.Split(*engines, ",") {
			s.Engines = append(s.Engines, strings.TrimSpace(part))
		}
	}
	if *full {
		s.YCSB.Records = 10_000_000
		s.TPCC.Items = 100_000
		s.TPCC.CustomersPerDistrict = 3000
		s.TPCC.InitialOrdersPerDistrict = 3000
	}
	if *records > 0 {
		s.YCSB.Records = *records
	}
	if *items > 0 {
		s.TPCC.Items = *items
	}
	if *sizes != "" {
		s.RecordSizes = nil
		for _, part := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad -record-sizes value %q\n", part)
				os.Exit(2)
			}
			s.RecordSizes = append(s.RecordSizes, n)
		}
	}

	if *metrics != "" || *telFlag {
		bench.Telemetry = telemetry.NewLive()
	}
	if *pprofFlag {
		if *metrics == "" {
			fmt.Fprintln(os.Stderr, "-pprof requires -metrics-addr")
			os.Exit(2)
		}
		bench.Telemetry.EnablePprof(*pprofMutex, *pprofBlock)
	}
	if *tracePath != "" {
		bench.TraceOpts = &trace.Options{SampleEvery: *traceSample, Capacity: *traceBuffer}
		bench.TraceLive = &trace.Live{}
		if bench.Telemetry != nil {
			bench.Telemetry.Handle("/debug/cicada-trace", bench.TraceLive.Handler())
		}
	}
	if *metrics != "" {
		_, addr, err := telemetry.Serve(*metrics, bench.Telemetry)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve -metrics-addr: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (also /debug/vars, /debug/txntrace)\n", addr)
	}

	exps := flag.Args()
	if len(exps) == 1 && exps[0] == "all" {
		exps = []string{"fig3a", "fig3b", "fig3c", "fig4a", "fig4b", "fig4c",
			"fig5a", "fig5b", "fig5c", "fig6a", "fig6b", "fig6c", "fig7",
			"fig8", "fig9", "fig10", "fig11a", "fig11b", "fig11c", "fig11d",
			"table2", "scan", "staleness", "rts", "tatp", "scaling", "skew"}
	}
	var csvOut *os.File
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "open -csv file: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		csvOut = f
	}

	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(100)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create -cpuprofile file: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "start cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	var all []bench.Result
	for _, exp := range exps {
		rs := runExperiment(exp, s)
		all = append(all, rs...)
		if csvOut != nil {
			bench.WriteCSV(csvOut, rs)
		}
	}

	if *jsonPath != "" {
		if err := writeJSONReport(*jsonPath, exps, *jsonNote, all); err != nil {
			fmt.Fprintf(os.Stderr, "write -json file: %v\n", err)
			os.Exit(1)
		}
	}
	if *tracePath != "" {
		if err := writeTraceFile(*tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "write -trace file: %v\n", err)
			os.Exit(1)
		}
	}
	if *memProfile != "" {
		if err := writeProfile("allocs", *memProfile, true); err != nil {
			fmt.Fprintf(os.Stderr, "write -memprofile file: %v\n", err)
			os.Exit(1)
		}
	}
	if *mutexProfile != "" {
		if err := writeProfile("mutex", *mutexProfile, false); err != nil {
			fmt.Fprintf(os.Stderr, "write -mutexprofile file: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeJSONReport stores the run's results as the perf-trajectory JSON
// format (docs/PERFORMANCE.md).
func writeJSONReport(path string, exps []string, note string, results []bench.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WriteJSON(f, bench.NewRunMeta(exps, note), results); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTraceFile dumps the last trial's tracer as Chrome trace-event JSON
// and prints its contention attribution report to stderr.
func writeTraceFile(path string) error {
	tr := bench.TraceLive.Tracer()
	if tr == nil {
		return fmt.Errorf("no traced trial ran (only Cicada engines support tracing)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace: %s (%d events; load in Perfetto via ui.perfetto.dev)\n",
		path, tr.EventsTotal())
	trace.FprintContention(os.Stderr, tr.Contention(trace.DefaultTopK))
	return nil
}

// writeProfile dumps a named runtime profile; gcFirst forces a GC so the
// allocation profile reflects live retention accurately.
func writeProfile(name, path string, gcFirst bool) error {
	if gcFirst {
		runtime.GC()
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runExperiment(exp string, s bench.Scale) []bench.Result {
	out := os.Stdout
	var collected []bench.Result
	keep := func(rs []bench.Result) []bench.Result {
		collected = append(collected, rs...)
		return rs
	}
	switch exp {
	case "fig3a", "fig3b", "fig3c":
		rs := keep(bench.Fig3(exp[4], s))
		bench.PrintTable(out, "Figure 3"+exp[4:]+": TPC-C, phantom avoidance ("+whDesc(exp[4])+")", "threads", rs)
	case "fig4a", "fig4b", "fig4c":
		rs := keep(bench.Fig4(exp[4], s))
		bench.PrintTable(out, "Figure 4"+exp[4:]+": TPC-C, deferred index updates ("+whDesc(exp[4])+")", "threads", rs)
	case "fig5a", "fig5b", "fig5c", "fig5":
		sub := byte('a')
		if len(exp) == 5 {
			sub = exp[4]
		}
		rs := keep(bench.Fig5(sub, s))
		bench.PrintTable(out, "Figure 5: TPC-C-NP ("+whDesc(sub)+")", "threads", rs)
	case "fig6a":
		bench.PrintTable(out, "Figure 6a: YCSB 16 req/tx, write-intensive, zipf 0.99", "threads", keep(bench.Fig6('a', s)))
	case "fig6b":
		bench.PrintTable(out, "Figure 6b: YCSB 16 req/tx, write-intensive, skew sweep", "skew", keep(bench.Fig6('b', s)))
	case "fig6c":
		bench.PrintTable(out, "Figure 6c: YCSB 16 req/tx, read-intensive, skew sweep", "skew", keep(bench.Fig6('c', s)))
	case "fig7":
		bench.PrintTable(out, "Figure 7: multi-clock factor analysis (YCSB 1 req/tx, 95% read)", "threads", keep(bench.Fig7(s)))
	case "fig8":
		bench.PrintTable(out, "Figure 8: best-effort inlining vs record size (read-intensive, uniform)", "record_size", keep(bench.Fig8(s)))
	case "fig9":
		rs := keep(bench.Fig9(s))
		bench.PrintTable(out, "Figure 9: GC interval sweep (TPC-C)", "gc_interval_us", rs)
		for _, r := range rs {
			fmt.Printf("  %s gc=%gus space overhead: %.2f%%\n", r.Engine, r.Param, 100*r.Extra["space_overhead"])
		}
	case "fig10":
		for _, which := range []string{"tpcc", "tpccnp", "ycsb"} {
			rs := keep(bench.Fig10(which, s))
			bench.PrintTable(out, "Figure 10 ("+which+"): contention regulation (param -1 = auto)", "max_backoff_us", rs)
			for _, r := range rs {
				fmt.Printf("  %s backoff=%gus: %.0f tps, abort time %.1f%%\n",
					r.Engine, r.Param, r.TPS, 100*r.AbortTimeFrac)
			}
		}
	case "fig11a", "fig11b", "fig11c", "fig11d":
		sub := exp[5]
		param := "skew"
		if sub == 'b' || sub == 'd' {
			param = "threads"
		}
		bench.PrintTable(out, "Figure 11"+string(sub)+": YCSB 1 req/tx", param, keep(bench.Fig11(sub, s)))
	case "table2":
		rs := keep(bench.Table2(s))
		bench.PrintTable(out, "Table 2: optimization ablation (contended YCSB)", "threads", rs)
		base := rs[0].TPS
		for _, r := range rs {
			if r.Engine == "Cicada" {
				base = r.TPS
			}
		}
		for _, r := range rs {
			if r.Engine != "Cicada" && base > 0 {
				fmt.Printf("  %s: %+.1f%%\n", r.Engine, 100*(r.TPS-base)/base)
			}
		}
	case "scan":
		rs := keep(bench.ScanBench(s))
		bench.PrintTable(out, "§4.6: scan throughput with/without inlining", "threads", rs)
		for _, r := range rs {
			fmt.Printf("  %s: %.0f records scanned/s\n", r.Engine, r.Extra["records_scanned_per_s"])
		}
	case "staleness":
		rs := keep(bench.Staleness(s))
		fmt.Printf("\n=== §4.6: read-only snapshot staleness (TPC-C) ===\n")
		for _, r := range rs {
			fmt.Printf("%s: avg %.1f us, p99.9 %.1f us, max %.1f us (paper, 28 threads: avg 117 us, p99.9 724 us)\n",
				r.Engine, r.Extra["staleness_avg_us"], r.Extra["staleness_p999_us"], r.Extra["staleness_max_us"])
		}
	case "tatp":
		rs := keep(bench.TATP(s))
		bench.PrintTable(out, "Appendix B: TATP mix (Cicada/direct-read uses transaction-less reads)", "threads", rs)
		for _, r := range rs {
			if d := r.Extra["direct_reads_per_s"]; d > 0 {
				fmt.Printf("  %s: %.0f direct reads/s\n", r.Engine, d)
			}
		}
	case "scaling":
		rs := keep(bench.Scaling(s))
		for _, skew := range []float64{0, 0.99} {
			var sub []bench.Result
			for _, r := range rs {
				if r.Param == skew {
					sub = append(sub, r)
				}
			}
			bench.PrintTable(out, fmt.Sprintf("Scalability: YCSB 16 req/tx, write-intensive, zipf %g, thread sweep", skew), "threads", sub)
		}
	case "skew":
		rs := keep(bench.Skew(s))
		bench.PrintTable(out, "Adaptive contention management: YCSB 16 req/tx, write-intensive, skew sweep", "skew", rs)
		for _, r := range rs {
			if r.Engine != "Cicada" {
				continue
			}
			fmt.Printf("  skew=%g: %.0f forced checks, %.0f scaled backoffs, %.0f rts skips\n",
				r.Param, r.Extra["heat_forced_checks"], r.Extra["heat_scaled_backoffs"], r.Extra["heat_rts_skips"])
		}
	case "rts":
		cond, faa := bench.RTSUpdateBench(s.MaxThreads, s.Dur.Measure)
		fmt.Printf("\n=== §3.4: read-timestamp update microbenchmark ===\n")
		fmt.Printf("conditional rts updates: %.2e ops/s; atomic fetch-add: %.2e ops/s (ratio %.1fx)\n",
			cond, faa, cond/faa)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", exp)
		os.Exit(2)
	}
	return collected
}

func whDesc(sub byte) string {
	switch sub {
	case 'a':
		return "1 warehouse"
	case 'b':
		return "4 warehouses"
	default:
		return "warehouses = threads"
	}
}
