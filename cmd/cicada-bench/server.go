package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cicada/internal/client"
	"cicada/internal/server/wire"
)

// serverLoadOpts parameterizes -server-addr mode: a YCSB-style key-value
// load driven through the Go client against a running cicada-server, used
// by the server-smoke CI job (scripts/server_smoke.sh) and for manual
// end-to-end measurements.
type serverLoadOpts struct {
	addr     string
	tenant   string
	table    string
	conns    int
	keys     uint64
	writePct int
	batch    int
	measure  time.Duration
}

// runServerLoad drives the load and prints a one-line result. It returns 0
// when at least one transaction committed and no client failed.
func runServerLoad(o serverLoadOpts) int {
	if o.batch < 1 {
		o.batch = 1
	}
	probe, err := client.Dial(o.addr, o.tenant)
	if err != nil {
		fmt.Fprintf(os.Stderr, "server-load: dial %s: %v\n", o.addr, err)
		return 1
	}
	defer probe.Close()
	before, err := probe.Stats()
	if err != nil {
		fmt.Fprintf(os.Stderr, "server-load: stats: %v\n", err)
		return 1
	}

	var committed, aborted, failed atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < o.conns; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c, err := client.Dial(o.addr, o.tenant)
			if err != nil {
				failed.Add(1)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(seed))
			val := make([]byte, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				txn := c.Txn()
				for s := 0; s < o.batch; s++ {
					key := rng.Uint64() % o.keys
					if rng.Intn(100) < o.writePct {
						rng.Read(val)
						txn.Put(o.table, key, val)
					} else {
						txn.Get(o.table, key)
					}
				}
				if _, err := txn.Exec(); err != nil {
					if se, ok := err.(*client.ServerError); ok && se.Code >= wire.ErrCodeAbortRTSEarly {
						aborted.Add(1)
						continue
					}
					failed.Add(1)
					return
				}
				committed.Add(1)
			}
		}(int64(i) + 1)
	}
	time.Sleep(o.measure)
	close(stop)
	wg.Wait()

	after, err := probe.Stats()
	if err != nil {
		fmt.Fprintf(os.Stderr, "server-load: final stats: %v\n", err)
		return 1
	}
	tput := float64(committed.Load()) / o.measure.Seconds()
	fmt.Printf("server-load: tenant=%s conns=%d committed=%d aborted=%d failed=%d throughput=%.0f txn/s server_commits=%d\n",
		o.tenant, o.conns, committed.Load(), aborted.Load(), failed.Load(), tput,
		after.Commits-before.Commits)
	if committed.Load() == 0 || failed.Load() > 0 {
		fmt.Fprintln(os.Stderr, "server-load: FAILED (no commits or client errors)")
		return 1
	}
	return 0
}
