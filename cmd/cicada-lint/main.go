// Command cicada-lint runs the repository's concurrency analyzers
// (mixedatomic, statusorder, locksdiscipline, nakedspin) over the module.
//
// Usage:
//
//	cicada-lint [-tags tag,tag] [-list] [pattern ...]
//
// Patterns follow the usual go tool shapes: "./...", "internal/core/...",
// or an import path relative to the module root. With no patterns, the whole
// module is checked. The exit status is 1 if any diagnostic is reported,
// 2 on usage or load errors, and 0 otherwise.
//
// Findings can be suppressed at the site with a reviewed marker:
//
//	//lint:allow <analyzer>[,<analyzer>] <reason>
//
// placed on the offending line or the line above. The reason is mandatory;
// a bare //lint:allow marker is ignored so suppressions stay auditable.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cicada/internal/analysis"
)

func main() {
	tags := flag.String("tags", "", "comma-separated build tags to enable (e.g. cicada_invariants)")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cicada-lint [-tags tag,tag] [-list] [pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Printf("%-16s %s\n", a.Name, doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicada-lint: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"..."}
	}

	loader := analysis.Loader{Root: root, Prefix: "cicada"}
	if *tags != "" {
		loader.Tags = strings.Split(*tags, ",")
	}
	prog, targets, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicada-lint: %v\n", err)
		os.Exit(2)
	}
	if len(targets) == 0 {
		fmt.Fprintf(os.Stderr, "cicada-lint: no packages match %s\n", strings.Join(patterns, " "))
		os.Exit(2)
	}

	diags, err := analysis.Run(prog, targets, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicada-lint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		pos := d.Pos
		if rel, rerr := filepath.Rel(root, pos.Filename); rerr == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
