// Command cicada-lint runs the repository's static analyzers — the
// intra-function concurrency passes (mixedatomic, statusorder,
// locksdiscipline, nakedspin) and the whole-program guardrails
// (hotpathalloc, lockorder, failpointcover, metricdrift, tracedrift) —
// over the module.
//
// Usage:
//
//	cicada-lint [-tags tag,tag] [-list] [-json] [-update-escape-baseline] [pattern ...]
//
// Patterns follow the usual go tool shapes: "./...", "internal/core/...",
// or an import path relative to the module root. With no patterns, the whole
// module is checked. The exit status is 0 when clean, 1 if any diagnostic is
// reported, and 2 on usage, load, or internal errors — so CI can tell "found
// problems" from "could not look".
//
// With -json, findings are emitted as a single JSON array of
// {"file","line","col","analyzer","message"} objects on stdout (an empty
// array when clean) for machine annotation; errors still go to stderr.
//
// -update-escape-baseline regenerates internal/analysis/escapes_baseline.json
// from the current compiler escape output for the //cicada:noalloc set,
// preserving existing justifications; new entries get a TODO reason that
// hotpathalloc flags until a human fills it in. See docs/STATIC_ANALYSIS.md.
//
// Findings can be suppressed at the site with a reviewed marker:
//
//	//lint:allow <analyzer>[,<analyzer>] <reason>
//
// placed on the offending line or the line above. The reason is mandatory;
// a bare //lint:allow marker is ignored so suppressions stay auditable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cicada/internal/analysis"
)

// jsonDiag is the machine-readable finding shape for -json mode.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	tags := flag.String("tags", "", "comma-separated build tags to enable (e.g. cicada_invariants)")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	updateBaseline := flag.Bool("update-escape-baseline", false,
		"regenerate "+analysis.EscapeBaselinePath+" from current compiler output and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cicada-lint [-tags tag,tag] [-list] [-json] [-update-escape-baseline] [pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Printf("%-16s %s\n", a.Name, doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicada-lint: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"..."}
	}

	loader := analysis.Loader{Root: root, Prefix: "cicada"}
	if *tags != "" {
		loader.Tags = strings.Split(*tags, ",")
	}
	prog, targets, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicada-lint: %v\n", err)
		os.Exit(2)
	}
	if len(targets) == 0 {
		fmt.Fprintf(os.Stderr, "cicada-lint: no packages match %s\n", strings.Join(patterns, " "))
		os.Exit(2)
	}

	if *updateBaseline {
		if err := analysis.UpdateEscapeBaseline(prog, targets); err != nil {
			fmt.Fprintf(os.Stderr, "cicada-lint: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "cicada-lint: wrote %s\n", analysis.EscapeBaselinePath)
		return
	}

	diags, err := analysis.Run(prog, targets, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicada-lint: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     relToRoot(root, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "cicada-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			pos := d.Pos
			pos.Filename = relToRoot(root, pos.Filename)
			fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// relToRoot shortens an in-tree absolute path to a root-relative one.
func relToRoot(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
