package cicada_test

import (
	"encoding/binary"
	"fmt"

	cicada "cicada"
)

// ExampleDB demonstrates the basic transaction lifecycle: insert, index,
// read-modify-write with automatic retry, and a read-only snapshot read.
func ExampleDB() {
	db := cicada.Open(cicada.DefaultConfig(1))
	counters := db.CreateTable("counters")
	byName := db.CreateHashIndex("counters_by_name", 64, true)
	w := db.Worker(0)

	const key = 7
	_ = w.Run(func(tx *cicada.Txn) error {
		rid, buf, err := tx.Insert(counters, 8)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf, 41)
		return byName.Insert(tx, key, rid)
	})
	_ = w.Run(func(tx *cicada.Txn) error {
		rid, err := byName.Get(tx, key)
		if err != nil {
			return err
		}
		buf, err := tx.Update(counters, rid, -1)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf, binary.LittleEndian.Uint64(buf)+1)
		return nil
	})
	_ = w.Run(func(tx *cicada.Txn) error {
		rid, err := byName.Get(tx, key)
		if err != nil {
			return err
		}
		d, err := tx.Read(counters, rid)
		if err != nil {
			return err
		}
		fmt.Println(binary.LittleEndian.Uint64(d))
		return nil
	})
	// Output: 42
}

// ExampleBTreeIndex shows ordered range scans with phantom avoidance.
func ExampleBTreeIndex() {
	db := cicada.Open(cicada.DefaultConfig(1))
	events := db.CreateTable("events")
	byTime := db.CreateBTreeIndex("events_by_time", false)
	w := db.Worker(0)

	_ = w.Run(func(tx *cicada.Txn) error {
		for _, ts := range []uint64{30, 10, 20, 40} {
			rid, buf, err := tx.Insert(events, 8)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, ts*100)
			if err := byTime.Insert(tx, ts, rid); err != nil {
				return err
			}
		}
		return nil
	})
	_ = w.Run(func(tx *cicada.Txn) error {
		return byTime.Scan(tx, 15, 35, -1, func(key uint64, rid cicada.RecordID) bool {
			fmt.Println(key)
			return true
		})
	})
	// Output:
	// 20
	// 30
}
