// Package cicada is a single-node multi-core in-memory transactional
// database with serializability, implementing the design of "Cicada:
// Dependably Fast Multi-Core In-Memory Transactions" (Lim, Kaminsky,
// Andersen — SIGMOD 2017): optimistic multi-version concurrency control
// with multi-clock timestamp allocation, best-effort inlining, rapid
// garbage collection, and globally coordinated contention regulation.
//
// # Quick start
//
//	db := cicada.Open(cicada.DefaultConfig(4)) // 4 worker threads
//	accounts := db.CreateTable("accounts")
//	byID := db.CreateHashIndex("accounts_by_id", 1024, true)
//
//	w := db.Worker(0) // one Worker per goroutine
//	err := w.Run(func(tx *cicada.Txn) error {
//	    rid, buf, err := tx.Insert(accounts, 8)
//	    if err != nil {
//	        return err
//	    }
//	    binary.LittleEndian.PutUint64(buf, 100)
//	    return byID.Insert(tx, 42, rid)
//	})
//
// Each worker owns a loosely synchronized clock; transactions are timestamped
// at begin, execute without global writes, and validate at commit. Run
// retries on conflicts with contention-regulated backoff. Read-only
// transactions (RunReadOnly) run against a recent consistent snapshot and
// never abort or validate.
package cicada

import (
	"errors"
	"io"
	"net/http"
	"time"

	"cicada/internal/clock"
	"cicada/internal/core"
	"cicada/internal/index"
	"cicada/internal/storage"
	"cicada/internal/telemetry"
	"cicada/internal/trace"
	"cicada/internal/wal"
)

// RecordID locates a record within a Table. Indexes map keys to RecordIDs.
type RecordID = storage.RecordID

// Timestamp is a Cicada transaction timestamp (56-bit clock, 8-bit worker).
type Timestamp = clock.Timestamp

// AbortReason classifies concurrency-control aborts; see
// Stats.AbortsByReason for the name taxonomy.
type AbortReason = core.AbortReason

// AbortedError is returned by Worker.RunLimited when the retry budget is
// exhausted; it carries the final attempt's abort reason and satisfies
// errors.Is(err, ErrAborted).
type AbortedError = core.AbortedError

// Errors returned by transaction operations.
var (
	// ErrAborted reports a concurrency conflict; Worker.Run retries it.
	ErrAborted = core.ErrAborted
	// ErrNotFound reports a missing record or index key.
	ErrNotFound = core.ErrNotFound
	// ErrReadOnly reports a write inside a read-only transaction.
	ErrReadOnly = core.ErrReadOnly
	// ErrDuplicate reports a unique-index violation.
	ErrDuplicate = index.ErrDuplicate
)

// Config selects engine parameters. DefaultConfig returns the paper's
// defaults; zero-valued durations keep them.
type Config struct {
	// Workers is the number of worker threads (goroutines) that will run
	// transactions; worker 0 doubles as the maintenance leader.
	Workers int
	// Inlining enables best-effort inlining of small records (§3.3).
	Inlining bool
	// GCInterval bounds how often each worker declares quiescence and
	// collects garbage (§3.8). Default 10 µs.
	GCInterval time.Duration
	// FixedMaxBackoff, when ≥ 0, disables contention regulation's hill
	// climbing and uses the given maximum backoff (§3.9). Negative selects
	// automatic regulation.
	FixedMaxBackoff time.Duration
	// CentralizedClock replaces multi-clock timestamping with a shared
	// atomic counter, as conventional MVCC schemes use (for comparison).
	CentralizedClock bool
	// PendingWaitLimit bounds the spin-wait on a PENDING version (§3.2):
	// after this many status checks the waiter aborts with the
	// pending_wait reason instead of spinning further. 0 (the default)
	// waits indefinitely, as the paper specifies.
	PendingWaitLimit int
	// Telemetry enables the metrics registry and the aborted-transaction
	// flight recorder (see docs/OBSERVABILITY.md); scrape them with
	// MetricsHandler or MetricValues. Off by default: the engine then
	// keeps only its always-on outcome counters and skips all hot-path
	// latency timing.
	Telemetry bool
	// Trace enables the per-worker transaction tracer (docs/OBSERVABILITY.md
	// "Tracing"): sampled txn/phase/wait events and always-on abort events
	// in fixed-size ring buffers, exported as Chrome trace-event JSON via
	// WriteTrace or /debug/cicada-trace on MetricsHandler, plus a per-key
	// contention report via Contention. Off by default; when off the engine
	// adds no trace checks at all.
	Trace bool
	// TraceSampleEvery traces every Nth transaction per worker (aborts are
	// always traced). 0 means the default of 64; 1 traces everything.
	TraceSampleEvery int
	// TraceBufferEvents is each worker ring's capacity in events
	// (~48 B each). 0 means the default of 8192.
	TraceBufferEvents int

	// NoWaitPending, NoWriteLatestRule, NoSortWriteSet and NoPreCheck
	// disable individual performance optimizations (Table 2 ablations).
	NoWaitPending     bool
	NoWriteLatestRule bool
	NoSortWriteSet    bool
	NoPreCheck        bool

	// HeatTableSize is each worker's per-record heat table size in slots
	// (rounded up to a power of two; see docs/PERFORMANCE.md "Adaptive
	// contention management"). 0 means the default of 1024.
	HeatTableSize int
	// HeatHotThreshold is the decayed heat at or above which a record is
	// treated as hot (forces validation checks, earns full backoff).
	// 0 means the default of 8.
	HeatHotThreshold int
	// HeatRTSSlackTicks, when > 0, lets reads of cold records over-raise the
	// version's read timestamp by this many clock ticks and skip the rts CAS
	// while the raised value still covers them. Serializability is
	// preserved (over-raising only makes writers abort conservatively);
	// the cost is slightly more conservative writes near cold reads.
	// 0 (the default) disables coarse rts maintenance.
	HeatRTSSlackTicks uint64
	// NoHeatTracking disables per-record heat tracking entirely: no heat
	// tables, no heat-forced validation checks, no heat-weighted backoff,
	// no coarse rts maintenance.
	NoHeatTracking bool
	// NoHeatBackoff keeps heat tracking but disables heat-weighted backoff
	// (every abort uses the regulator's full randomized maximum).
	NoHeatBackoff bool
}

// DefaultConfig returns the paper's default configuration for n workers.
func DefaultConfig(n int) Config {
	return Config{Workers: n, Inlining: true, FixedMaxBackoff: -1}
}

// DB is a Cicada database instance.
type DB struct {
	eng    *core.Engine
	wal    *wal.Manager
	reg    *telemetry.Registry
	tracer *trace.Tracer
}

// Open creates a database. Tables and indexes must be created before
// transactions run.
func Open(cfg Config) *DB {
	opts := core.DefaultOptions(cfg.Workers)
	opts.Inlining = cfg.Inlining
	opts.NoWaitPending = cfg.NoWaitPending
	opts.NoWriteLatestRule = cfg.NoWriteLatestRule
	opts.NoSortWriteSet = cfg.NoSortWriteSet
	opts.NoPreCheck = cfg.NoPreCheck
	if cfg.GCInterval > 0 {
		opts.GCInterval = cfg.GCInterval
	}
	if cfg.FixedMaxBackoff >= 0 {
		opts.FixedMaxBackoff = cfg.FixedMaxBackoff
	} else {
		opts.FixedMaxBackoff = -1
	}
	opts.Clock.Centralized = cfg.CentralizedClock
	opts.PendingWaitLimit = cfg.PendingWaitLimit
	if cfg.HeatTableSize > 0 {
		opts.HeatTableSize = cfg.HeatTableSize
	}
	if cfg.HeatHotThreshold > 0 {
		opts.HeatHotThreshold = cfg.HeatHotThreshold
	}
	opts.HeatRTSSlackTicks = cfg.HeatRTSSlackTicks
	opts.NoHeatTracking = cfg.NoHeatTracking
	opts.NoHeatBackoff = cfg.NoHeatBackoff
	db := &DB{}
	if cfg.Telemetry {
		db.reg = telemetry.NewRegistry(cfg.Workers)
		opts.Metrics = db.reg
	}
	if cfg.Trace {
		db.tracer = trace.New(trace.Options{
			Workers:     cfg.Workers,
			Capacity:    cfg.TraceBufferEvents,
			SampleEvery: cfg.TraceSampleEvery,
		})
		db.tracer.SetEnabled(true)
		opts.Trace = db.tracer
		if db.reg != nil {
			db.tracer.RegisterMetrics(db.reg)
		}
	}
	db.eng = core.NewEngine(opts)
	return db
}

// Table is a handle to a Cicada table: an expandable array of multi-version
// records addressed by RecordID.
type Table struct {
	t *core.Table
}

// Name returns the table name.
func (t *Table) Name() string { return t.t.Storage().Name() }

// CreateTable registers a new table. It panics on a duplicate name.
func (db *DB) CreateTable(name string) *Table {
	return &Table{t: db.eng.CreateTable(name)}
}

// Worker returns the execution handle for worker id ∈ [0, Workers). Each
// Worker must be used by at most one goroutine at a time.
func (db *DB) Worker(id int) *Worker {
	return &Worker{w: db.eng.Worker(id)}
}

// Workers returns the configured worker count.
func (db *DB) Workers() int { return db.eng.Options().Workers }

// Stats aggregates transaction counters across workers. Safe to call while
// workers run: every counter is read atomically (slightly stale, never
// torn), though the fields are mutually consistent only at quiescence.
func (db *DB) Stats() Stats { return statsFromCore(db.eng.Stats()) }

func statsFromCore(s core.Stats) Stats {
	out := Stats{
		Commits:        s.Commits,
		Aborts:         s.Aborts,
		UserAborts:     s.UserAborts,
		AbortTime:      s.AbortTime,
		BusyTime:       s.BusyTime,
		AbortsByReason: make(map[string]uint64, core.NumAbortReasons),
	}
	for r := core.AbortReason(0); r < core.NumAbortReasons; r++ {
		if n := s.AbortsByReason[r]; n > 0 {
			out.AbortsByReason[r.String()] = n
		}
	}
	return out
}

// CommittedTxns returns the live committed-transaction count (safe to call
// concurrently).
func (db *DB) CommittedTxns() uint64 { return db.eng.CommitsLive() }

// MaxBackoff returns the contention regulator's current globally
// coordinated maximum backoff (§3.9).
func (db *DB) MaxBackoff() time.Duration { return db.eng.MaxBackoff() }

// SpaceOverhead returns total versions / total records − 1 (§4.6, Fig 9).
func (db *DB) SpaceOverhead() float64 { return db.eng.SpaceOverhead() }

// Engine exposes the internal engine for benchmarks within this module.
func (db *DB) Engine() *core.Engine { return db.eng }

// Telemetry exposes the metrics registry for integrations within this
// module (the network server registers its server_* families on it so one
// scrape covers engine and server); nil unless Config.Telemetry was set.
func (db *DB) Telemetry() *telemetry.Registry { return db.reg }

// MetricsHandler returns an http.Handler serving the database's metrics:
// /metrics (Prometheus text), /debug/vars (expvar-style JSON), and
// /debug/txntrace (recent aborted transactions, newest first). With
// Config.Trace it additionally serves /debug/cicada-trace (Chrome
// trace-event JSON; ?contention=1 for the hot-key report). It returns nil
// unless Config.Telemetry was set.
func (db *DB) MetricsHandler() http.Handler {
	if db.reg == nil {
		return nil
	}
	l := telemetry.NewLive()
	l.Set(db.reg)
	if db.tracer != nil {
		l.Handle("/debug/cicada-trace", trace.Handler(db.tracer))
	}
	return l.Handler()
}

// WriteTrace writes the tracer's current contents as Chrome trace-event
// JSON (loadable in Perfetto; the per-key contention report is embedded
// under "cicadaContention"). It fails unless Config.Trace was set.
func (db *DB) WriteTrace(w io.Writer) error {
	if db.tracer == nil {
		return errors.New("cicada: tracing not enabled (Config.Trace)")
	}
	return db.tracer.WriteChromeTrace(w)
}

// ContentionReport is the tracer's per-key heat attribution; see
// docs/OBSERVABILITY.md "Tracing".
type ContentionReport = trace.ContentionReport

// Contention folds the trace's pending-wait and abort events into per-key
// heat and returns the top-k keys (k ≤ 0 selects the default of 16). It
// returns a zero report unless Config.Trace was set.
func (db *DB) Contention(k int) ContentionReport {
	if db.tracer == nil {
		return ContentionReport{}
	}
	return db.tracer.Contention(k)
}

// Tracer exposes the internal tracer for benchmarks within this module; nil
// unless Config.Trace was set.
func (db *DB) Tracer() *trace.Tracer { return db.tracer }

// MetricValues returns a flat snapshot of every metric, labels folded into
// the key (see docs/OBSERVABILITY.md for the name list). It returns nil
// unless Config.Telemetry was set.
func (db *DB) MetricValues() map[string]float64 {
	if db.reg == nil {
		return nil
	}
	return db.reg.Values()
}

// Stats are aggregate transaction outcome counters.
type Stats struct {
	Commits    uint64
	Aborts     uint64
	UserAborts uint64
	AbortTime  time.Duration
	BusyTime   time.Duration
	// AbortsByReason splits the aborts by cause, keyed by reason name
	// (rts_early, write_latest, precheck, validation, pending_wait,
	// precommit_hook, logger, user). Zero-count reasons are omitted. The
	// "user" entry mirrors UserAborts and is not part of Aborts; all
	// other entries sum to Aborts.
	AbortsByReason map[string]uint64
}

// AbortRate returns aborts / (aborts + commits).
func (s Stats) AbortRate() float64 {
	total := s.Aborts + s.Commits
	if total == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(total)
}

// Worker is a per-thread execution context.
type Worker struct {
	w *core.Worker
}

// ID returns the worker's thread ID.
func (w *Worker) ID() int { return w.w.ID() }

// Run executes fn in a read-write transaction, retrying on ErrAborted with
// contention-regulated backoff. Returning any other error rolls back and
// returns it. fn may run multiple times.
func (w *Worker) Run(fn func(tx *Txn) error) error {
	return w.w.Run(func(ct *core.Txn) error {
		return fn(&Txn{t: ct})
	})
}

// RunLimited is Run with a bounded conflict-retry budget: after
// maxAttempts tries it returns an *AbortedError carrying the final
// attempt's abort reason instead of retrying forever. maxAttempts ≤ 0
// behaves like Run. The network server (internal/server) uses this to
// bound per-request work and surface the abort taxonomy as wire error
// codes (docs/PROTOCOL.md).
func (w *Worker) RunLimited(fn func(tx *Txn) error, maxAttempts int) error {
	return w.w.RunLimited(func(ct *core.Txn) error {
		return fn(&Txn{t: ct})
	}, maxAttempts)
}

// RunReadOnly executes fn in a read-only snapshot transaction at the
// worker's read timestamp: it sees a recent consistent snapshot (staleness
// on the order of the maintenance interval, §3.1/§4.6), performs no read
// validation, and cannot abort due to conflicts.
func (w *Worker) RunReadOnly(fn func(tx *Txn) error) error {
	return w.w.RunRO(func(ct *core.Txn) error {
		return fn(&Txn{t: ct})
	})
}

// RunExternal is Run with external consistency (§3.1): it returns only
// after every worker's future transaction is guaranteed a later timestamp
// than this commit, so acknowledgment order matches serialization order
// even across disjoint access sets. Adds roughly the maintenance interval
// of latency; all workers must keep running maintenance.
func (w *Worker) RunExternal(fn func(tx *Txn) error) error {
	return w.w.RunExternal(func(ct *core.Txn) error {
		return fn(&Txn{t: ct})
	})
}

// ObserveTimestamp establishes causal ordering (§3.1): the worker's future
// transactions receive timestamps later than ts. Use it to carry
// happens-before across workers or external systems.
func (w *Worker) ObserveTimestamp(ts Timestamp) { w.w.ObserveTimestamp(ts) }

// Maintain runs one cooperative maintenance step (quiescence, garbage
// collection, clock synchronization). Run and RunReadOnly call it
// automatically; call it (or Idle) from workers that pause between
// transactions so they do not stall the garbage collection horizon.
func (w *Worker) Maintain() { w.w.Maintain() }

// Idle is maintenance for a worker with no work: it also refreshes the
// worker's timestamps so min_wts keeps advancing.
func (w *Worker) Idle() { w.w.Idle() }

// ReadDirect reads a single record without a transaction (Appendix B):
// record data is always consistent in Cicada, so locating the visible
// version at the worker's snapshot timestamp needs no locking or copying.
func (w *Worker) ReadDirect(t *Table, rid RecordID) ([]byte, bool) {
	return w.w.ReadDirect(t.t, rid)
}

// SnapshotTimestamp returns the timestamp a read-only transaction would use
// now; useful for measuring snapshot staleness.
func (w *Worker) SnapshotTimestamp() Timestamp { return w.w.SnapshotTS() }

// Stats returns this worker's counters. Safe to call while the worker runs
// (see DB.Stats).
func (w *Worker) Stats() Stats { return statsFromCore(w.w.Stats()) }

// Txn is a transaction. All operations must happen on the worker's
// goroutine between Run's invocation and return.
type Txn struct {
	t *core.Txn
}

// Timestamp returns the transaction's timestamp, which is also its position
// in the equivalent serial schedule.
func (tx *Txn) Timestamp() Timestamp { return tx.t.Timestamp() }

// ReadOnly reports whether this is a read-only snapshot transaction.
func (tx *Txn) ReadOnly() bool { return tx.t.ReadOnly() }

// Read returns the record's data at the transaction's timestamp. The slice
// aliases the shared committed version — valid until the transaction ends
// and must not be modified. (Committed version data is immutable, so no
// defensive copy or re-validation read is needed.)
func (tx *Txn) Read(t *Table, rid RecordID) ([]byte, error) {
	return tx.t.Read(t.t, rid)
}

// Update stages a read-modify-write and returns a writable buffer holding a
// copy of the current data, resized to newSize if newSize ≥ 0.
func (tx *Txn) Update(t *Table, rid RecordID, newSize int) ([]byte, error) {
	return tx.t.Update(t.t, rid, newSize)
}

// Write stages a blind write (no dependency on the record's previous value)
// and returns a zeroed writable buffer of size bytes.
func (tx *Txn) Write(t *Table, rid RecordID, size int) ([]byte, error) {
	return tx.t.Write(t.t, rid, size)
}

// Insert creates a record and returns its ID and writable buffer. The ID is
// private to the transaction until commit.
func (tx *Txn) Insert(t *Table, size int) (RecordID, []byte, error) {
	return tx.t.Insert(t.t, size)
}

// Delete stages the record's deletion; its ID is reclaimed by garbage
// collection after the delete commits.
func (tx *Txn) Delete(t *Table, rid RecordID) error {
	return tx.t.Delete(t.t, rid)
}

// Internal returns the underlying transaction for advanced integrations.
func (tx *Txn) Internal() *core.Txn { return tx.t }
