package cicada_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	cicada "cicada"
)

func TestPublicAPIQuickstart(t *testing.T) {
	db := cicada.Open(cicada.DefaultConfig(2))
	tbl := db.CreateTable("accounts")
	byID := db.CreateHashIndex("accounts_by_id", 256, true)

	w := db.Worker(0)
	if err := w.Run(func(tx *cicada.Txn) error {
		rid, buf, err := tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf, 100)
		return byID.Insert(tx, 42, rid)
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(tx *cicada.Txn) error {
		rid, err := byID.Get(tx, 42)
		if err != nil {
			return err
		}
		d, err := tx.Read(tbl, rid)
		if err != nil {
			return err
		}
		if binary.LittleEndian.Uint64(d) != 100 {
			t.Errorf("balance %d", binary.LittleEndian.Uint64(d))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(tx *cicada.Txn) error {
		return byID.Insert(tx, 42, 99)
	}); !errors.Is(err, cicada.ErrDuplicate) {
		t.Fatalf("unique violation: %v", err)
	}
	if db.Stats().Commits < 2 {
		t.Fatalf("stats %+v", db.Stats())
	}
}

func TestPublicAPIBTreeAndSnapshot(t *testing.T) {
	db := cicada.Open(cicada.DefaultConfig(2))
	tbl := db.CreateTable("t")
	bt := db.CreateBTreeIndex("t_by_key", false)
	w := db.Worker(0)
	for k := uint64(0); k < 100; k++ {
		k := k
		if err := w.Run(func(tx *cicada.Txn) error {
			rid, buf, err := tx.Insert(tbl, 8)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, k)
			return bt.Insert(tx, k, rid)
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Let the snapshot horizon catch up, then scan read-only.
	for i := 0; i < 100; i++ {
		db.Worker(0).Idle()
		db.Worker(1).Idle()
	}
	if err := db.Worker(1).RunReadOnly(func(tx *cicada.Txn) error {
		if !tx.ReadOnly() {
			t.Error("not read-only")
		}
		n := 0
		prev := int64(-1)
		if err := bt.Scan(tx, 10, 59, -1, func(k uint64, rid cicada.RecordID) bool {
			if int64(k) <= prev {
				t.Errorf("out of order: %d after %d", k, prev)
			}
			prev = int64(k)
			n++
			return true
		}); err != nil {
			return err
		}
		if n != 50 {
			t.Errorf("scanned %d", n)
		}
		if _, err := tx.Write(tbl, 0, 1); !errors.Is(err, cicada.ErrReadOnly) {
			t.Errorf("write in RO: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIWALRecovery(t *testing.T) {
	dir := t.TempDir()
	open := func() (*cicada.DB, *cicada.Table, *cicada.HashIndex) {
		db := cicada.Open(cicada.DefaultConfig(1))
		tbl := db.CreateTable("kv")
		idx := db.CreateHashIndex("kv_by_key", 256, true)
		return db, tbl, idx
	}
	db, tbl, idx := open()
	w, err := db.AttachWAL(cicada.WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	wk := db.Worker(0)
	for k := uint64(0); k < 20; k++ {
		k := k
		if err := wk.Run(func(tx *cicada.Txn) error {
			rid, buf, err := tx.Insert(tbl, 8)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, k*7)
			return idx.Insert(tx, k, rid)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	db2, tbl2, idx2 := open()
	stats, err := db2.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Installed == 0 {
		t.Fatalf("stats %+v", stats)
	}
	if err := db2.Worker(0).Run(func(tx *cicada.Txn) error {
		for k := uint64(0); k < 20; k++ {
			rid, err := idx2.Get(tx, k)
			if err != nil {
				return err
			}
			d, err := tx.Read(tbl2, rid)
			if err != nil {
				return err
			}
			if binary.LittleEndian.Uint64(d) != k*7 {
				t.Errorf("key %d: %d", k, binary.LittleEndian.Uint64(d))
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIConcurrentWorkers(t *testing.T) {
	const workers = 4
	db := cicada.Open(cicada.DefaultConfig(workers))
	tbl := db.CreateTable("counter")
	var rid cicada.RecordID
	if err := db.Worker(0).Run(func(tx *cicada.Txn) error {
		r, buf, err := tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf, 0)
		rid = r
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const per = 100
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := db.Worker(id)
			for i := 0; i < per; i++ {
				if err := w.Run(func(tx *cicada.Txn) error {
					buf, err := tx.Update(tbl, rid, -1)
					if err != nil {
						return err
					}
					binary.LittleEndian.PutUint64(buf, binary.LittleEndian.Uint64(buf)+1)
					return nil
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	// ReadDirect reads at the snapshot horizon, which may lag; the final
	// audit uses a read-write transaction for an up-to-date view.
	if d0, ok := db.Worker(0).ReadDirect(tbl, rid); ok && binary.LittleEndian.Uint64(d0) > workers*per {
		t.Fatalf("direct read beyond maximum: %d", binary.LittleEndian.Uint64(d0))
	}
	var d []byte
	if err := db.Worker(0).Run(func(tx *cicada.Txn) error {
		dd, err := tx.Read(tbl, rid)
		d = append([]byte(nil), dd...)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(d); got != workers*per {
		t.Fatalf("counter %d, want %d", got, workers*per)
	}
}

func TestPublicAPITracing(t *testing.T) {
	cfg := cicada.DefaultConfig(2)
	cfg.Telemetry = true
	cfg.Trace = true
	cfg.TraceSampleEvery = 1
	db := cicada.Open(cfg)
	tbl := db.CreateTable("traced")

	w := db.Worker(0)
	var rid cicada.RecordID
	if err := w.Run(func(tx *cicada.Txn) error {
		id, buf, err := tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		rid = id
		binary.LittleEndian.PutUint64(buf, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Run(func(tx *cicada.Txn) error {
			buf, err := tx.Update(tbl, rid, -1)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, binary.LittleEndian.Uint64(buf)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := db.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteTrace output is not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("WriteTrace emitted no events at 1/1 sampling")
	}

	// The contention report is well-formed even with no conflicts recorded.
	rep := db.Contention(4)
	if rep.TotalWaitNs < 0 || len(rep.TopKeys) > 4 {
		t.Fatalf("contention report %+v", rep)
	}

	// MetricsHandler mounts the trace endpoint alongside /metrics.
	srv := httptest.NewServer(db.MetricsHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/cicada-trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/cicada-trace status %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("traceEvents")) {
		t.Fatalf("trace endpoint body lacks traceEvents: %.120s", body)
	}

	// Without Config.Trace, the trace surface degrades explicitly.
	plain := cicada.Open(cicada.DefaultConfig(1))
	if err := plain.WriteTrace(io.Discard); err == nil {
		t.Fatal("WriteTrace on an untraced DB should fail")
	}
	if rep := plain.Contention(4); len(rep.TopKeys) != 0 {
		t.Fatalf("untraced Contention returned keys: %+v", rep)
	}
}
