module cicada

go 1.22
