GO ?= go

# Hot-path packages covered by the invariant assertions and race job.
# internal/telemetry rides along: its write side is deliberately
# unsynchronized (single-writer atomic words), so the race detector is the
# proof that the discipline holds. internal/wal and internal/fault ride
# along too: logger goroutines, the group-commit path, and crash-freezing
# registries are all cross-goroutine (docs/DURABILITY.md). internal/server
# is session goroutines × worker loops × drain (docs/SERVER.md).
RACE_PKGS = ./internal/core/... ./internal/clock/... ./internal/storage/... ./internal/telemetry/... ./internal/trace/... ./internal/wal/... ./internal/fault/... ./internal/server/...

.PHONY: all build test lint vet check race bench bench-smoke bench-compare bench-json skew-smoke telemetry-smoke trace-smoke server-smoke torture docs-lint clean

# Packages with the hot-path microbenchmarks and allocation-budget tests
# (docs/PERFORMANCE.md).
BENCH_PKGS = ./internal/core/ ./internal/index/ ./internal/svindex/ ./internal/wal/

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The full analyzer suite (see docs/STATIC_ANALYSIS.md): four intra-function
# concurrency passes plus hotpathalloc, lockorder, failpointcover,
# metricdrift, tracedrift, and protodrift. Exits 1 on any finding, 2 on
# internal error; suppress only with a reviewed //lint:allow marker.
lint:
	$(GO) run ./cmd/cicada-lint ./...

# The consolidated static gate CI runs on every push: compile, go vet, the
# full cicada-lint suite, and the docs drift check.
check: build vet lint docs-lint

# Race detector plus the cicada_invariants assertion build over the hot-path
# packages. Short mode keeps this CI-sized; drop -short locally for the full
# stress runs.
race:
	$(GO) test -race -short -tags cicada_invariants $(RACE_PKGS)

bench:
	$(GO) test -run '^$$' -bench . -benchmem $(BENCH_PKGS)

# PR gate: allocation-budget tests plus a one-iteration benchmark compile/run
# pass. Catches hot-path regressions without CI-length benchmark runs.
bench-smoke:
	$(GO) test -run 'AllocBudget|TestRepeated' $(BENCH_PKGS)
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem $(BENCH_PKGS)

# Scalability-regression gate (docs/PERFORMANCE.md): re-run the 2-thread
# uniform-YCSB sweep and fail if the speedup over 1 thread falls below the
# committed BENCH_ycsb.json seed's value (× the slack factor built into
# bench-compare). Writes a mutex-contention profile for CI to archive.
bench-compare:
	$(GO) run ./cmd/bench-compare -curve speedup -seed BENCH_ycsb.json \
		-experiment fig6a -engine Cicada -param 0 -threads 2 -mutexprofile /tmp/cicada-mutex.pb.gz

# Adaptive-contention gate (docs/PERFORMANCE.md "Adaptive contention
# management"): run the skew experiment's high-skew point with heat tracking
# on and off and fail if adaptation loses throughput or raises the
# validation/rts_early abort rate. Then a tiny skew sweep whose JSON report
# must carry the schema-v4 "skew" section.
skew-smoke:
	$(GO) run ./cmd/bench-compare -curve skew-adaptive -threads 2 -slack 0.85
	$(GO) run ./cmd/cicada-bench -engines Cicada -ramp 100ms -measure 300ms -threads 2 \
		-ycsb-records 50000 -json /tmp/cicada-skew-smoke.json skew
	jq -e '.meta.schema_version >= 4' /tmp/cicada-skew-smoke.json >/dev/null
	jq -e '.skew | length == 2' /tmp/cicada-skew-smoke.json >/dev/null
	jq -e '[.skew[].points | length] | min >= 1' /tmp/cicada-skew-smoke.json >/dev/null
	jq -e '.results[] | select(.engine == "Cicada") | .extra.total_commits > 0' /tmp/cicada-skew-smoke.json >/dev/null

# Refresh the committed perf-trajectory seeds: a multi-core thread sweep per
# workload, with the tps-vs-threads curves folded into the reports'
# "scalability" section (plus the adaptive-contention "skew" curves for
# YCSB); see docs/PERFORMANCE.md for how to read the files.
bench-json:
	$(GO) run ./cmd/cicada-bench -engines Cicada -ramp 200ms -measure 500ms -threads 1,2,4 -json BENCH_ycsb.json fig6a scaling skew
	$(GO) run ./cmd/cicada-bench -engines Cicada -ramp 200ms -measure 500ms -threads 1,2,4 -json BENCH_tpcc.json fig3c

# Benchmark-driven trace smoke: a short traced YCSB run whose -trace output
# must be valid Chrome trace-event JSON with events and hot keys.
trace-smoke:
	$(GO) run ./cmd/cicada-bench -engines Cicada -ramp 100ms -measure 300ms -threads 2 -trace /tmp/cicada-trace-smoke.json fig6a
	jq -e '.traceEvents | length > 0' /tmp/cicada-trace-smoke.json >/dev/null
	jq -e '.cicadaContention.top_keys | length > 0' /tmp/cicada-trace-smoke.json >/dev/null

# End-to-end server smoke (docs/SERVER.md): start cicada-server on an
# ephemeral port, drive YCSB-style load over real TCP via cicada-bench
# -server-addr, then SIGTERM and require a clean graceful drain.
server-smoke:
	./scripts/server_smoke.sh

# Telemetry-on vs telemetry-off throughput comparison; asserts the
# regression stays under the smoke bound (see docs/OBSERVABILITY.md).
telemetry-smoke:
	$(GO) test -tags telemetry_smoke -run TelemetryOverhead -v ./internal/bench/

# Seeded WAL crash-recovery torture (docs/DURABILITY.md): randomized crash
# points, torn writes, and recovery verified against lost-ack /
# resurrected-abort / fabricated-write oracles. ~1 s for 60 seeds.
torture:
	CICADA_TORTURE_SEEDS=60 $(GO) test -run TestTortureRecovery -count=1 ./internal/wal/

# Docs drift gate: every internal/ path and docs/*.md link mentioned in the
# documentation must exist in the tree.
docs-lint:
	./scripts/docs_lint.sh

clean:
	$(GO) clean ./...
