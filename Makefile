GO ?= go

# Hot-path packages covered by the invariant assertions and race job.
RACE_PKGS = ./internal/core/... ./internal/clock/... ./internal/storage/...

.PHONY: all build test lint vet race bench clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Custom concurrency analyzers (see docs/CONCURRENCY.md). Exits non-zero on
# any finding; suppress only with a reviewed //lint:allow marker.
lint:
	$(GO) run ./cmd/cicada-lint ./...

# Race detector plus the cicada_invariants assertion build over the hot-path
# packages. Short mode keeps this CI-sized; drop -short locally for the full
# stress runs.
race:
	$(GO) test -race -short -tags cicada_invariants $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
