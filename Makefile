GO ?= go

# Hot-path packages covered by the invariant assertions and race job.
# internal/telemetry rides along: its write side is deliberately
# unsynchronized (single-writer atomic words), so the race detector is the
# proof that the discipline holds.
RACE_PKGS = ./internal/core/... ./internal/clock/... ./internal/storage/... ./internal/telemetry/...

.PHONY: all build test lint vet race bench telemetry-smoke clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Custom concurrency analyzers (see docs/CONCURRENCY.md). Exits non-zero on
# any finding; suppress only with a reviewed //lint:allow marker.
lint:
	$(GO) run ./cmd/cicada-lint ./...

# Race detector plus the cicada_invariants assertion build over the hot-path
# packages. Short mode keeps this CI-sized; drop -short locally for the full
# stress runs.
race:
	$(GO) test -race -short -tags cicada_invariants $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchmem ./...

# Telemetry-on vs telemetry-off throughput comparison; asserts the
# regression stays under the smoke bound (see docs/OBSERVABILITY.md).
telemetry-smoke:
	$(GO) test -tags telemetry_smoke -run TelemetryOverhead -v ./internal/bench/

clean:
	$(GO) clean ./...
