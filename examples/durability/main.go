// Durability demonstrates Cicada's logging, checkpointing, and recovery
// (§3.7): it writes through a WAL, takes a checkpoint mid-run, "crashes"
// (drops the in-memory database), recovers a fresh instance from disk, and
// verifies every record survived with its latest committed value.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	cicada "cicada"
)

func main() {
	var (
		dir  = flag.String("dir", "", "log directory (default: temp dir)")
		keys = flag.Int("keys", 500, "records to write")
	)
	flag.Parse()
	if *dir == "" {
		d, err := os.MkdirTemp("", "cicada-wal-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(d)
		*dir = d
	}

	schema := func() (*cicada.DB, *cicada.Table, *cicada.HashIndex) {
		db := cicada.Open(cicada.DefaultConfig(2))
		tbl := db.CreateTable("kv")
		idx := db.CreateHashIndex("kv_by_key", *keys*2, true)
		return db, tbl, idx
	}

	// Phase 1: a database with a WAL attached.
	db, tbl, idx := schema()
	w, err := db.AttachWAL(cicada.WALConfig{Dir: *dir, GroupCommit: time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	wk := db.Worker(0)
	put := func(k, v uint64) {
		if err := wk.Run(func(tx *cicada.Txn) error {
			if rid, err := idx.Get(tx, k); err == nil {
				buf, err := tx.Update(tbl, rid, -1)
				if err != nil {
					return err
				}
				binary.LittleEndian.PutUint64(buf, v)
				return nil
			}
			rid, buf, err := tx.Insert(tbl, 8)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, v)
			return idx.Insert(tx, k, rid)
		}); err != nil {
			log.Fatalf("put %d: %v", k, err)
		}
	}
	for k := 0; k < *keys; k++ {
		put(uint64(k), uint64(k)*10)
	}
	fmt.Printf("wrote %d records\n", *keys)

	// Checkpoint mid-run (concurrent-safe; here sequential for clarity).
	for i := 0; i < 100; i++ {
		db.Worker(0).Idle()
		db.Worker(1).Idle()
	}
	if err := w.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpoint taken; sealed redo chunks purged")

	// Post-checkpoint tail: overwrite a third of the keys.
	for k := 0; k < *keys; k += 3 {
		put(uint64(k), uint64(k)*10+1)
	}
	if err := w.Close(); err != nil { // flush + stop: the "clean crash"
		log.Fatal(err)
	}
	fmt.Println("crash! dropping the in-memory database")

	// Phase 2: recover into a fresh instance with the same schema.
	db2, tbl2, idx2 := schema()
	stats, err := db2.Recover(*dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d checkpoint records, %d redo records, %d versions installed\n",
		stats.CheckpointRecords, stats.RedoRecords, stats.Installed)

	if err := db2.Worker(0).Run(func(tx *cicada.Txn) error {
		for k := 0; k < *keys; k++ {
			rid, err := idx2.Get(tx, uint64(k))
			if err != nil {
				return fmt.Errorf("key %d: %w", k, err)
			}
			d, err := tx.Read(tbl2, rid)
			if err != nil {
				return err
			}
			want := uint64(k) * 10
			if k%3 == 0 {
				want++
			}
			if got := binary.LittleEndian.Uint64(d); got != want {
				return fmt.Errorf("key %d: got %d want %d", k, got, want)
			}
		}
		return nil
	}); err != nil {
		log.Fatalf("VERIFY FAILED: %v", err)
	}
	fmt.Printf("all %d records verified after recovery ✔\n", *keys)
}
