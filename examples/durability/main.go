// Durability demonstrates Cicada's logging, checkpointing, and recovery
// (§3.7): it writes through a WAL, takes a checkpoint mid-run, "crashes"
// (drops the in-memory database), recovers a fresh instance from disk, and
// verifies every record survived with its latest committed value. A final
// phase tears the log tail — the bytes a power failure mid-append leaves
// behind — and shows recovery dropping it and reporting ErrTornTail while
// every intact record survives (docs/DURABILITY.md).
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	cicada "cicada"
)

func main() {
	var (
		dir  = flag.String("dir", "", "log directory (default: temp dir)")
		keys = flag.Int("keys", 500, "records to write")
	)
	flag.Parse()
	if *dir == "" {
		d, err := os.MkdirTemp("", "cicada-wal-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(d)
		*dir = d
	}

	schema := func() (*cicada.DB, *cicada.Table, *cicada.HashIndex) {
		db := cicada.Open(cicada.DefaultConfig(2))
		tbl := db.CreateTable("kv")
		idx := db.CreateHashIndex("kv_by_key", *keys*2, true)
		return db, tbl, idx
	}

	// Phase 1: a database with a WAL attached.
	db, tbl, idx := schema()
	w, err := db.AttachWAL(cicada.WALConfig{Dir: *dir, GroupCommit: time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	wk := db.Worker(0)
	put := func(k, v uint64) {
		if err := wk.Run(func(tx *cicada.Txn) error {
			if rid, err := idx.Get(tx, k); err == nil {
				buf, err := tx.Update(tbl, rid, -1)
				if err != nil {
					return err
				}
				binary.LittleEndian.PutUint64(buf, v)
				return nil
			}
			rid, buf, err := tx.Insert(tbl, 8)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, v)
			return idx.Insert(tx, k, rid)
		}); err != nil {
			log.Fatalf("put %d: %v", k, err)
		}
	}
	for k := 0; k < *keys; k++ {
		put(uint64(k), uint64(k)*10)
	}
	fmt.Printf("wrote %d records\n", *keys)

	// Checkpoint mid-run (concurrent-safe; here sequential for clarity).
	for i := 0; i < 100; i++ {
		db.Worker(0).Idle()
		db.Worker(1).Idle()
	}
	if err := w.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpoint taken; sealed redo chunks purged")

	// Post-checkpoint tail: overwrite a third of the keys.
	for k := 0; k < *keys; k += 3 {
		put(uint64(k), uint64(k)*10+1)
	}
	if err := w.Close(); err != nil { // flush + stop: the "clean crash"
		log.Fatal(err)
	}
	fmt.Println("crash! dropping the in-memory database")

	// Phase 2: recover into a fresh instance with the same schema.
	db2, tbl2, idx2 := schema()
	stats, err := db2.Recover(*dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d checkpoint records, %d redo records, %d versions installed\n",
		stats.CheckpointRecords, stats.RedoRecords, stats.Installed)

	if err := db2.Worker(0).Run(func(tx *cicada.Txn) error {
		for k := 0; k < *keys; k++ {
			rid, err := idx2.Get(tx, uint64(k))
			if err != nil {
				return fmt.Errorf("key %d: %w", k, err)
			}
			d, err := tx.Read(tbl2, rid)
			if err != nil {
				return err
			}
			want := uint64(k) * 10
			if k%3 == 0 {
				want++
			}
			if got := binary.LittleEndian.Uint64(d); got != want {
				return fmt.Errorf("key %d: got %d want %d", k, got, want)
			}
		}
		return nil
	}); err != nil {
		log.Fatalf("VERIFY FAILED: %v", err)
	}
	fmt.Printf("all %d records verified after recovery ✔\n", *keys)

	// Phase 3: a torn write. Append the first half of a record — magic and
	// a plausible header, body cut mid-way — exactly what a crash during an
	// append leaves on disk. Recovery must drop the torn tail, report it,
	// and keep everything before it.
	logs, err := filepath.Glob(filepath.Join(*dir, "redo-*.log"))
	if err != nil || len(logs) == 0 {
		log.Fatalf("no redo logs to tear: %v", err)
	}
	f, err := os.OpenFile(logs[0], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		log.Fatal(err)
	}
	torn := make([]byte, 20)
	binary.LittleEndian.PutUint32(torn[0:], 0xC1CADA11) // record magic
	binary.LittleEndian.PutUint32(torn[4:], 60)         // claims 60 bytes...
	if _, err := f.Write(torn); err != nil {            // ...but only 20 exist
		log.Fatal(err)
	}
	f.Close()
	fmt.Println("tore the log tail: appended 20 bytes of a record claiming 60")

	db3, tbl3, idx3 := schema()
	stats3, err := db3.Recover(*dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered again: %d redo records, %d torn tail(s), %d byte(s) dropped\n",
		stats3.RedoRecords, stats3.TornTails, stats3.TornBytes)
	for _, fault := range stats3.TailFaults {
		fmt.Printf("  tail fault (is ErrTornTail: %v): %v\n",
			errors.Is(fault, cicada.ErrTornTail), fault)
	}
	if stats3.TornTails == 0 {
		log.Fatal("VERIFY FAILED: the torn tail went unreported")
	}
	if err := db3.Worker(0).Run(func(tx *cicada.Txn) error {
		for k := 0; k < *keys; k++ {
			rid, err := idx3.Get(tx, uint64(k))
			if err != nil {
				return fmt.Errorf("key %d lost to the torn tail: %w", k, err)
			}
			if _, err := tx.Read(tbl3, rid); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatalf("VERIFY FAILED: %v", err)
	}
	fmt.Printf("all %d records intact despite the torn tail ✔\n", *keys)
}
