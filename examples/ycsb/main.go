// YCSB runs the paper's YCSB configuration (§4.2) on Cicada and prints the
// committed throughput and abort rate — a miniature of Figure 6.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"cicada/internal/bench"
	"cicada/internal/engine"
	"cicada/internal/workload/ycsb"
)

func main() {
	var (
		workers  = flag.Int("workers", 4, "worker threads")
		records  = flag.Int("records", 200_000, "table size (paper: 10M)")
		reqs     = flag.Int("reqs", 16, "requests per transaction")
		readPct  = flag.Float64("read", 0.95, "read fraction (rest are RMW)")
		theta    = flag.Float64("theta", 0.99, "zipf skew (0 = uniform)")
		duration = flag.Duration("duration", 2*time.Second, "measurement window")
	)
	flag.Parse()

	cfg := ycsb.DefaultConfig()
	cfg.Records = *records
	cfg.ReqsPerTx = *reqs
	cfg.ReadRatio = *readPct
	cfg.Theta = *theta

	db := bench.CicadaFactory(nil)(engine.Config{
		Workers: *workers, PhantomAvoidance: true, HashBucketsHint: cfg.Records,
	})
	w := ycsb.Setup(db, cfg)
	fmt.Printf("loading %d records...\n", cfg.Records)
	if err := w.Load(); err != nil {
		log.Fatal(err)
	}
	engine.WarmUp(db)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for id := 0; id < *workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := w.NewGen(id)
			wk := db.Worker(id)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := g.RunOne(wk); err != nil {
					if errors.Is(err, engine.ErrAborted) {
						continue
					}
					log.Fatalf("worker %d: %v", id, err)
				}
			}
		}(id)
	}
	c0 := db.CommitsLive()
	t0 := time.Now()
	time.Sleep(*duration)
	c1 := db.CommitsLive()
	elapsed := time.Since(t0)
	close(stop)
	wg.Wait()

	s := db.Stats()
	fmt.Printf("YCSB: %d req/tx, %.0f%% read, zipf %.2f, %d workers\n",
		*reqs, *readPct*100, *theta, *workers)
	fmt.Printf("throughput: %.0f tx/s; abort rate %.2f%%\n",
		float64(c1-c0)/elapsed.Seconds(), 100*s.AbortRate())
}
