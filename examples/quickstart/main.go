// Quickstart walks through the Cicada public API: open a database, create a
// table and indexes, run read-write transactions with automatic retry, use
// read-own-writes, range scans, and read-only snapshot transactions.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	cicada "cicada"
)

func main() {
	// A database with 2 worker threads. Each Worker handle must be used by
	// one goroutine at a time.
	db := cicada.Open(cicada.DefaultConfig(2))
	users := db.CreateTable("users")
	byID := db.CreateHashIndex("users_by_id", 1024, true) // unique
	byAge := db.CreateBTreeIndex("users_by_age", false)   // ordered, duplicates

	w := db.Worker(0)

	// Insert a few users. Records are raw bytes; here: age in the first 8
	// bytes, name after.
	type user struct {
		id   uint64
		age  uint64
		name string
	}
	usersToAdd := []user{
		{1, 34, "ada"}, {2, 52, "grace"}, {3, 29, "edsger"}, {4, 41, "barbara"},
	}
	for _, u := range usersToAdd {
		u := u
		err := w.Run(func(tx *cicada.Txn) error {
			rid, buf, err := tx.Insert(users, 8+len(u.name))
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, u.age)
			copy(buf[8:], u.name)
			if err := byID.Insert(tx, u.id, rid); err != nil {
				return err
			}
			return byAge.Insert(tx, u.age, rid)
		})
		if err != nil {
			log.Fatalf("insert %s: %v", u.name, err)
		}
	}

	// A read-modify-write with read-own-writes: birthday for user 3.
	err := w.Run(func(tx *cicada.Txn) error {
		rid, err := byID.Get(tx, 3)
		if err != nil {
			return err
		}
		buf, err := tx.Update(users, rid, -1)
		if err != nil {
			return err
		}
		age := binary.LittleEndian.Uint64(buf)
		binary.LittleEndian.PutUint64(buf, age+1)
		// The transaction sees its own write immediately.
		again, err := tx.Read(users, rid)
		if err != nil {
			return err
		}
		fmt.Printf("user 3 (%s) is now %d\n", again[8:], binary.LittleEndian.Uint64(again))
		// Keep the age index in sync.
		if err := byAge.Delete(tx, age, rid); err != nil {
			return err
		}
		return byAge.Insert(tx, age+1, rid)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Advance the snapshot horizon, then scan ages 30–55 in a read-only
	// snapshot transaction (never aborts, never validates).
	for i := 0; i < 100; i++ {
		db.Worker(0).Idle()
		db.Worker(1).Idle()
	}
	err = db.Worker(1).RunReadOnly(func(tx *cicada.Txn) error {
		fmt.Println("users aged 30–55:")
		return byAge.Scan(tx, 30, 55, -1, func(age uint64, rid cicada.RecordID) bool {
			d, err := tx.Read(users, rid)
			if err != nil {
				return false
			}
			fmt.Printf("  %-8s age %d\n", d[8:], age)
			return true
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	s := db.Stats()
	fmt.Printf("committed %d transactions (%d aborts)\n", s.Commits, s.Aborts)
}
