// Bank runs concurrent transfer transactions between accounts and
// continuously audits the invariant that the total balance never changes —
// under read-write audits and under read-only snapshot audits — while
// reporting Cicada's abort rate and the contention-regulated backoff.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	cicada "cicada"
)

func main() {
	var (
		workers  = flag.Int("workers", 4, "worker threads")
		accounts = flag.Int("accounts", 100, "number of accounts")
		duration = flag.Duration("duration", 2*time.Second, "run time")
	)
	flag.Parse()

	db := cicada.Open(cicada.DefaultConfig(*workers))
	tbl := db.CreateTable("accounts")
	byID := db.CreateHashIndex("accounts_by_id", *accounts*2, true)

	const initial = uint64(1000)
	total := uint64(*accounts) * initial

	w0 := db.Worker(0)
	for a := 0; a < *accounts; a++ {
		a := a
		if err := w0.Run(func(tx *cicada.Txn) error {
			rid, buf, err := tx.Insert(tbl, 8)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, initial)
			return byID.Insert(tx, uint64(a), rid)
		}); err != nil {
			log.Fatalf("load: %v", err)
		}
	}

	var stop atomic.Bool
	var transfers, audits atomic.Uint64
	var wg sync.WaitGroup
	for id := 0; id < *workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := db.Worker(id)
			rng := rand.New(rand.NewSource(int64(id) + 1))
			for !stop.Load() {
				if rng.Intn(10) == 0 {
					// Read-only snapshot audit: must always see the exact
					// total, even mid-flight.
					err := w.RunReadOnly(func(tx *cicada.Txn) error {
						var sum uint64
						for a := 0; a < *accounts; a++ {
							rid, err := byID.Get(tx, uint64(a))
							if err != nil {
								return err
							}
							d, err := tx.Read(tbl, rid)
							if err != nil {
								return err
							}
							sum += binary.LittleEndian.Uint64(d)
						}
						if sum != total {
							log.Fatalf("SNAPSHOT AUDIT FAILED: %d != %d", sum, total)
						}
						return nil
					})
					if err != nil {
						// The snapshot may predate loading for the first
						// few microseconds; skip, it heals itself.
						continue
					}
					audits.Add(1)
					continue
				}
				from := uint64(rng.Intn(*accounts))
				to := uint64(rng.Intn(*accounts))
				if from == to {
					continue
				}
				amt := uint64(rng.Intn(20))
				err := w.Run(func(tx *cicada.Txn) error {
					fr, err := byID.Get(tx, from)
					if err != nil {
						return err
					}
					tr, err := byID.Get(tx, to)
					if err != nil {
						return err
					}
					fb, err := tx.Update(tbl, fr, -1)
					if err != nil {
						return err
					}
					if binary.LittleEndian.Uint64(fb) < amt {
						return nil // insufficient funds
					}
					tb, err := tx.Update(tbl, tr, -1)
					if err != nil {
						return err
					}
					binary.LittleEndian.PutUint64(fb, binary.LittleEndian.Uint64(fb)-amt)
					binary.LittleEndian.PutUint64(tb, binary.LittleEndian.Uint64(tb)+amt)
					return nil
				})
				if err != nil {
					log.Fatalf("transfer: %v", err)
				}
				transfers.Add(1)
			}
		}(id)
	}
	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()

	// Final audit.
	if err := w0.Run(func(tx *cicada.Txn) error {
		var sum uint64
		for a := 0; a < *accounts; a++ {
			rid, err := byID.Get(tx, uint64(a))
			if err != nil {
				return err
			}
			d, err := tx.Read(tbl, rid)
			if err != nil {
				return err
			}
			sum += binary.LittleEndian.Uint64(d)
		}
		if sum != total {
			log.Fatalf("FINAL AUDIT FAILED: %d != %d", sum, total)
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	s := db.Stats()
	fmt.Printf("%d transfers, %d snapshot audits — invariant held\n", transfers.Load(), audits.Load())
	fmt.Printf("commits=%d aborts=%d (%.1f%%), regulated max backoff %v\n",
		s.Commits, s.Aborts, 100*s.AbortRate(), db.MaxBackoff())
}
