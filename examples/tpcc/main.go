// TPC-C runs the full five-transaction TPC-C mix (§4.2) on Cicada, prints
// the per-type commit counts and total throughput, and verifies the TPC-C
// consistency assertions afterward.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"cicada/internal/bench"
	"cicada/internal/engine"
	"cicada/internal/workload/tpcc"
)

func main() {
	var (
		workers    = flag.Int("workers", 4, "worker threads")
		warehouses = flag.Int("warehouses", 1, "warehouse count (1 = contended)")
		items      = flag.Int("items", 10_000, "items per warehouse (spec: 100000)")
		duration   = flag.Duration("duration", 2*time.Second, "measurement window")
	)
	flag.Parse()

	cfg := tpcc.DefaultConfig(*warehouses)
	cfg.Items = *items
	cfg.CustomersPerDistrict = 600
	cfg.InitialOrdersPerDistrict = 300

	db := bench.CicadaFactory(nil)(engine.Config{
		Workers: *workers, PhantomAvoidance: true,
		HashBucketsHint: cfg.Warehouses * cfg.Items,
	})
	w := tpcc.Setup(db, cfg)
	fmt.Printf("loading %d warehouse(s)...\n", *warehouses)
	if err := w.Load(); err != nil {
		log.Fatal(err)
	}
	if err := w.CheckConsistency(); err != nil {
		log.Fatalf("post-load consistency: %v", err)
	}
	engine.WarmUp(db)

	stop := make(chan struct{})
	gens := make([]*tpcc.Gen, *workers)
	var wg sync.WaitGroup
	for id := 0; id < *workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := w.NewGen(id)
			gens[id] = g
			wk := db.Worker(id)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := g.RunOne(wk); err != nil {
					if errors.Is(err, engine.ErrAborted) {
						continue
					}
					log.Fatalf("worker %d: %v", id, err)
				}
			}
		}(id)
	}
	c0 := db.CommitsLive()
	t0 := time.Now()
	time.Sleep(*duration)
	c1 := db.CommitsLive()
	elapsed := time.Since(t0)
	close(stop)
	wg.Wait()

	var counts [5]uint64
	for _, g := range gens {
		for i, c := range g.Counts {
			counts[i] += c
		}
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	fmt.Printf("throughput: %.0f tx/s over %v\n", float64(c1-c0)/elapsed.Seconds(), elapsed.Round(time.Millisecond))
	for i, c := range counts {
		fmt.Printf("  %-12s %8d (%.1f%%)\n", tpcc.TxType(i), c, 100*float64(c)/float64(total))
	}
	s := db.Stats()
	fmt.Printf("abort rate %.1f%%\n", 100*s.AbortRate())

	if err := w.CheckConsistency(); err != nil {
		log.Fatalf("CONSISTENCY CHECK FAILED: %v", err)
	}
	fmt.Println("TPC-C consistency checks passed")
}
