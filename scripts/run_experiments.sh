#!/usr/bin/env bash
# Regenerates every figure/table of the paper's evaluation into results/.
# Usage: scripts/run_experiments.sh [extra cicada-bench flags...]
# Paper-scale data: scripts/run_experiments.sh -full -measure 5s
set -euo pipefail
cd "$(dirname "$0")/.."

go build -o /tmp/cicada-bench ./cmd/cicada-bench
mkdir -p results

run() {
  out="results/$1.txt"
  shift
  echo ">>> $* -> $out"
  /tmp/cicada-bench -measure "${MEASURE:-1s}" -ramp "${RAMP:-300ms}" "$@" >"$out" 2>&1
}

run fig3 "$@" fig3a fig3b fig3c
run fig45 "$@" fig4a fig4b fig4c fig5a fig5b
run fig6 "$@" fig6a fig6b fig6c
run fig7 "$@" fig7
run fig8 "$@" fig8
run fig9 "$@" fig9
run fig10 "$@" fig10
run fig11 "$@" fig11a fig11b fig11c fig11d
run misc "$@" table2 scan staleness rts tatp

echo "done; see results/"
