#!/bin/sh
# server_smoke.sh — end-to-end smoke test of the network service layer
# (docs/SERVER.md): start cicada-server on an ephemeral port, drive a short
# YCSB-style load through cicada-bench's -server-addr mode (real TCP, the
# full wire protocol), then SIGTERM the server and require a clean graceful
# drain. Asserts:
#
#   1. the load commits transactions (nonzero throughput, no client errors)
#   2. the server drains cleanly on SIGTERM within the drain budget
#
# Run from the repository root (make server-smoke). Environment:
#   MEASURE   load duration (default 2s)
#   CONNS     client connections (default 4)
set -eu

MEASURE=${MEASURE:-2s}
CONNS=${CONNS:-4}

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "server-smoke: building binaries"
go build -o "$workdir/cicada-server" ./cmd/cicada-server
go build -o "$workdir/cicada-bench" ./cmd/cicada-bench

"$workdir/cicada-server" -addr 127.0.0.1:0 -tenants "smoke:kv" \
    >"$workdir/server.log" 2>&1 &
server_pid=$!

# The bound address is printed once listening (docs/SERVER.md).
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^cicada-server: listening on //p' "$workdir/server.log")
    [ -n "$addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || {
        echo "server-smoke: server died at startup:"
        cat "$workdir/server.log"
        exit 1
    }
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "server-smoke: server never reported its address:"
    cat "$workdir/server.log"
    exit 1
fi
echo "server-smoke: server up on $addr (pid $server_pid)"

"$workdir/cicada-bench" -server-addr "$addr" -server-tenant smoke \
    -server-table kv -server-conns "$CONNS" -measure "$MEASURE"

echo "server-smoke: SIGTERM, expecting graceful drain"
kill -TERM "$server_pid"
drained=1
wait "$server_pid" || drained=0
server_pid=""
if [ "$drained" != 1 ]; then
    echo "server-smoke: server exited nonzero on SIGTERM:"
    cat "$workdir/server.log"
    exit 1
fi
if ! grep -q "drained cleanly" "$workdir/server.log"; then
    echo "server-smoke: no clean-drain message in server log:"
    cat "$workdir/server.log"
    exit 1
fi
grep "drained cleanly" "$workdir/server.log"
echo "server-smoke: OK"
