#!/bin/sh
# docs_lint.sh — fail if the documentation references paths that don't
# exist. Two classes of drift are checked across README.md, DESIGN.md, and
# docs/*.md:
#
#   1. internal/... and cmd/... package paths (prose or code spans)
#   2. docs/<page>.md markdown links
#   3. docs index completeness: every docs/*.md page must be linked from
#      the README, so no page can silently fall out of the index
#
# Run from the repository root (make docs-lint).
set -eu

fail=0
files="README.md DESIGN.md docs/*.md"

# 1. Repo paths. Extract tokens that look like internal/..., cmd/...,
# examples/..., or scripts/... and require each to exist (as given, or
# with a trailing component stripped for foo/bar.go:123-style refs).
for f in $files; do
    grep -oE '(internal|cmd|examples|scripts)/[A-Za-z0-9_./-]*' "$f" |
        sed -e 's|[.,:;)]*$||' -e 's|/$||' -e 's|/\.\.\.$||' | sort -u |
        while read -r p; do
            [ -e "$p" ] && continue
            # Tolerate Go qualified names (internal/foo/pkg.Symbol).
            [ -e "$(echo "$p" | sed 's|\.[A-Za-z_][A-Za-z0-9_]*$||')" ] && continue
            echo "$f: references nonexistent path: $p"
            touch .docs_lint_failed
        done
done

# 2. Markdown links to docs pages, from the repo root or between docs.
for f in $files; do
    dir=$(dirname "$f")
    grep -oE '\]\([A-Za-z0-9_./-]+\.md(#[A-Za-z0-9_-]+)?\)' "$f" |
        sed -e 's|^](||' -e 's|)$||' -e 's|#.*$||' | sort -u |
        while read -r p; do
            if [ -e "$dir/$p" ] || [ -e "$p" ]; then continue; fi
            echo "$f: broken markdown link: $p"
            touch .docs_lint_failed
        done
done

# 3. Docs index completeness: a docs page nobody can navigate to is a
# docs page nobody reads.
for p in docs/*.md; do
    if ! grep -q "]($p)" README.md; then
        echo "README.md: docs index is missing a link to $p"
        touch .docs_lint_failed
    fi
done

if [ -e .docs_lint_failed ]; then
    rm -f .docs_lint_failed
    echo "docs-lint: FAIL"
    exit 1
fi
echo "docs-lint: OK"
