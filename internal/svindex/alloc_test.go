package svindex

import (
	"testing"

	"cicada/internal/engine"
)

// Allocation budgets for the single-version index substrate
// (docs/PERFORMANCE.md). Lookups and scans are allocation-free. Structural
// ops have small documented budgets: SkipList.Insert allocates its node
// (1 alloc), and Hash.Insert of a key whose slice was freed by an emptying
// delete re-allocates the slice (1 alloc); while a key's slice capacity
// survives, Hash.Insert amortizes to 0.

func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; budgets enforced in non-race builds")
	}
}

func TestAllocBudgetSVHashGet(t *testing.T) {
	skipIfRace(t)
	h := benchHashIdx(t)
	if avg := testing.AllocsPerRun(1000, func() {
		if _, ok, _ := h.Get(42); !ok {
			t.Fatal("miss")
		}
	}); avg != 0 {
		t.Errorf("Hash.Get: %.3f allocs/op; budget is 0", avg)
	}
}

func TestAllocBudgetSVHashInsertDelete(t *testing.T) {
	skipIfRace(t)
	h := benchHashIdx(t)
	// Delete empties the key and frees its slice, so each cycle re-allocates
	// it: documented budget 1.
	if avg := testing.AllocsPerRun(1000, func() {
		h.Insert(benchKeys+1, 7)
		h.Delete(benchKeys+1, 7)
	}); avg > 1 {
		t.Errorf("Hash insert+delete: %.3f allocs/op; budget is 1", avg)
	}
	// While the key retains other entries, inserts reuse slice capacity and
	// amortize to 0 (warm the capacity first).
	h.Insert(0, 500)
	for i := 0; i < 64; i++ {
		h.Insert(0, engine.RecordID(1000+i))
	}
	for i := 0; i < 64; i++ {
		h.Delete(0, engine.RecordID(1000+i))
	}
	if avg := testing.AllocsPerRun(1000, func() {
		h.Insert(0, 777)
		h.Delete(0, 777)
	}); avg != 0 {
		t.Errorf("Hash insert+delete (warm slice): %.3f allocs/op; budget is 0", avg)
	}
}

func TestAllocBudgetSVSkipListGet(t *testing.T) {
	skipIfRace(t)
	s := benchSkip(t)
	if avg := testing.AllocsPerRun(1000, func() {
		if _, ok := s.Get(42*2, nil); !ok {
			t.Fatal("miss")
		}
	}); avg != 0 {
		t.Errorf("SkipList.Get: %.3f allocs/op; budget is 0", avg)
	}
}

func TestAllocBudgetSVSkipListScan(t *testing.T) {
	skipIfRace(t)
	s := benchSkip(t)
	var sum uint64
	if avg := testing.AllocsPerRun(1000, func() {
		s.Scan(100, 100+31, 16, nil, func(k uint64, rid engine.RecordID) bool {
			sum += uint64(rid)
			return true
		})
	}); avg != 0 {
		t.Errorf("SkipList.Scan: %.3f allocs/op; budget is 0", avg)
	}
}

func TestAllocBudgetSVSkipListInsertDelete(t *testing.T) {
	skipIfRace(t)
	s := benchSkip(t)
	// Each insert allocates the new node: documented budget 1.
	if avg := testing.AllocsPerRun(1000, func() {
		s.Insert(101, 7)
		s.Delete(101, 7)
	}); avg > 1 {
		t.Errorf("SkipList insert+delete: %.3f allocs/op; budget is 1", avg)
	}
}
