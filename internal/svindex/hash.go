// Package svindex provides the single-version index substrate used by the
// baseline engines (and by Cicada in the Figure 4 configuration): a sharded
// concurrent hash index and a lazy concurrent skip list, both with structure
// stamps that implement Silo-style index node validation for phantom
// avoidance (§3.6, §4.1). The skip list stands in for Masstree: scans and
// absent-key probes record per-node stamps, and inserts/deletes bump the
// stamps a Masstree leaf-node version would cover, so phantom conflicts
// abort exactly the transactions Silo's node validation would abort.
package svindex

import (
	"sync"
	"sync/atomic"

	"cicada/internal/engine"
)

const hashShards = 256

type hashShard struct {
	mu sync.RWMutex
	m  map[uint64][]engine.RecordID
	// stamp is the shard's structure version: bumped on every insert and
	// delete, observed by absent-key probes for phantom validation.
	stamp atomic.Uint64
	_     [40]byte
}

// Hash is a concurrent non-unique hash index mapping uint64 keys to record
// IDs.
type Hash struct {
	shards [hashShards]hashShard
}

// NewHash creates a hash index sized for roughly capacity entries.
func NewHash(capacity int) *Hash {
	h := &Hash{}
	per := capacity/hashShards + 1
	for i := range h.shards {
		h.shards[i].m = make(map[uint64][]engine.RecordID, per)
	}
	return h
}

//cicada:noalloc
func (h *Hash) shard(key uint64) *hashShard {
	// Fibonacci hashing spreads sequential keys across shards.
	return &h.shards[(key*0x9E3779B97F4A7C15)>>56%hashShards]
}

// Get returns the first record ID for key. On a miss it returns the shard's
// stamp so the caller can validate the absence at commit.
//
//cicada:noalloc
func (h *Hash) Get(key uint64) (rid engine.RecordID, ok bool, stamp uint64) {
	s := h.shard(key)
	s.mu.RLock()
	rids := s.m[key]
	if len(rids) > 0 {
		rid, ok = rids[0], true
	} else {
		stamp = s.stamp.Load()
	}
	s.mu.RUnlock()
	return rid, ok, stamp
}

// GetAll appends all record IDs for key to dst.
//
//cicada:noalloc
func (h *Hash) GetAll(key uint64, dst []engine.RecordID) []engine.RecordID {
	s := h.shard(key)
	s.mu.RLock()
	dst = append(dst, s.m[key]...)
	s.mu.RUnlock()
	return dst
}

// Stamp returns the current stamp of key's shard.
//
//cicada:noalloc
func (h *Hash) Stamp(key uint64) uint64 {
	return h.shard(key).stamp.Load()
}

// Insert adds (key → rid).
//
//cicada:noalloc
func (h *Hash) Insert(key uint64, rid engine.RecordID) {
	s := h.shard(key)
	s.mu.Lock()
	s.m[key] = append(s.m[key], rid)
	s.stamp.Add(1)
	s.mu.Unlock()
}

// Delete removes (key → rid); it reports whether the pair existed.
//
//cicada:noalloc
func (h *Hash) Delete(key uint64, rid engine.RecordID) bool {
	s := h.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	rids := s.m[key]
	for i, r := range rids {
		if r == rid {
			rids[i] = rids[len(rids)-1]
			rids = rids[:len(rids)-1]
			if len(rids) == 0 {
				delete(s.m, key)
			} else {
				s.m[key] = rids
			}
			s.stamp.Add(1)
			return true
		}
	}
	return false
}
