package svindex

import (
	"sync"
	"testing"

	"cicada/internal/engine"
)

// TestGetSkipsMarkedDuplicate is a regression test: when the first node for
// a key is logically deleted (marked) but another rid for the same key
// exists, Get must return the survivor, not a miss.
func TestGetSkipsMarkedDuplicate(t *testing.T) {
	s := NewSkipList()
	s.Insert(7, 1)
	s.Insert(7, 2)
	s.Insert(7, 3)
	// Delete the lowest rid: its node is the first match for key 7.
	if !s.Delete(7, 1) {
		t.Fatal("delete failed")
	}
	rid, ok := s.Get(7, nil)
	if !ok || rid != 2 {
		t.Fatalf("Get(7) = %d, %v; want 2, true", rid, ok)
	}
	s.Delete(7, 2)
	rid, ok = s.Get(7, nil)
	if !ok || rid != 3 {
		t.Fatalf("Get(7) = %d, %v; want 3, true", rid, ok)
	}
	s.Delete(7, 3)
	if _, ok := s.Get(7, nil); ok {
		t.Fatal("Get(7) found a fully deleted key")
	}
}

// TestConcurrentGetDuringDeletes hammers Get while duplicates of the same
// key are inserted and deleted; Get must never return a missing key while
// at least one rid is always live.
func TestConcurrentGetDuringDeletes(t *testing.T) {
	s := NewSkipList()
	s.Insert(42, 0) // rid 0 is permanent
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			rid := engine.RecordID(1 + i%8)
			s.Insert(42, rid)
			s.Delete(42, rid)
		}
		close(stop)
	}()
	misses := 0
	for {
		select {
		case <-stop:
			wg.Wait()
			if misses > 0 {
				t.Fatalf("Get missed %d times despite a permanent entry", misses)
			}
			return
		default:
		}
		if _, ok := s.Get(42, nil); !ok {
			misses++
		}
	}
}
