//go:build !race

package svindex

const raceEnabled = false
