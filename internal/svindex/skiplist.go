package svindex

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cicada/internal/engine"
)

// SkipList is a lazy concurrent skip list (Herlihy & Shavit §14.3) over
// composite (key, rid) pairs, so duplicate keys with distinct record IDs are
// supported. Lookups and scans are lock-free; inserts and deletes lock only
// the affected predecessors. Every node carries a structure stamp used for
// Silo-style phantom avoidance: an insert bumps its level-0 predecessor's
// stamp and a delete bumps both the victim's and the predecessor's, so any
// scan or absent-key probe whose result could change observes a stamp change.
type SkipList struct {
	head *slNode
	tail *slNode
	seed atomic.Uint64
}

const slMaxLevel = 20

type slNode struct {
	key uint64
	rid engine.RecordID

	mu          sync.Mutex
	marked      atomic.Bool
	fullyLinked atomic.Bool
	stamp       atomic.Uint64
	topLevel    int
	next        [slMaxLevel]atomic.Pointer[slNode]

	isHead, isTail bool
}

// less orders nodes by (key, rid) with head < everything < tail.
//
//cicada:noalloc
func (n *slNode) less(key uint64, rid engine.RecordID) bool {
	if n.isHead {
		return true
	}
	if n.isTail {
		return false
	}
	return n.key < key || (n.key == key && n.rid < rid)
}

//cicada:noalloc
func (n *slNode) equals(key uint64, rid engine.RecordID) bool {
	return !n.isHead && !n.isTail && n.key == key && n.rid == rid
}

// NewSkipList creates an empty list.
func NewSkipList() *SkipList {
	s := &SkipList{
		head: &slNode{isHead: true, topLevel: slMaxLevel - 1},
		tail: &slNode{isTail: true, topLevel: slMaxLevel - 1},
	}
	s.head.fullyLinked.Store(true)
	s.tail.fullyLinked.Store(true)
	for i := 0; i < slMaxLevel; i++ {
		s.head.next[i].Store(s.tail)
	}
	s.seed.Store(0x2545F4914F6CDD1D)
	return s
}

// randomLevel draws a geometric level using a shared xorshift state; the
// occasional lost race on the seed only perturbs the distribution.
//
//cicada:noalloc
func (s *SkipList) randomLevel() int {
	x := s.seed.Load()
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.seed.Store(x)
	lvl := 0
	for x&1 == 1 && lvl < slMaxLevel-1 {
		lvl++
		x >>= 1
	}
	return lvl
}

// find fills preds/succs for (key, rid) and returns the level at which an
// exact match was found, or -1.
//
//cicada:noalloc
func (s *SkipList) find(key uint64, rid engine.RecordID, preds, succs *[slMaxLevel]*slNode) int {
	found := -1
	pred := s.head
	for level := slMaxLevel - 1; level >= 0; level-- {
		curr := pred.next[level].Load()
		for curr.less(key, rid) {
			pred = curr
			curr = pred.next[level].Load()
		}
		if found == -1 && curr.equals(key, rid) {
			found = level
		}
		preds[level] = pred
		succs[level] = curr
	}
	return found
}

// Insert adds (key, rid); it reports false if the pair already exists.
//
//cicada:noalloc
func (s *SkipList) Insert(key uint64, rid engine.RecordID) bool {
	topLevel := s.randomLevel()
	var preds, succs [slMaxLevel]*slNode
	for {
		if lFound := s.find(key, rid, &preds, &succs); lFound != -1 {
			n := succs[lFound]
			if !n.marked.Load() {
				for !n.fullyLinked.Load() {
					runtime.Gosched()
				}
				return false
			}
			continue // being removed; retry
		}
		// Lock unique predecessors bottom-up.
		var locked [slMaxLevel]*slNode
		nLocked := 0
		valid := true
		for level := 0; valid && level <= topLevel; level++ {
			pred, succ := preds[level], succs[level]
			if nLocked == 0 || locked[nLocked-1] != pred {
				pred.mu.Lock()
				locked[nLocked] = pred
				nLocked++
			}
			valid = !pred.marked.Load() && !succ.marked.Load() &&
				pred.next[level].Load() == succ
		}
		if !valid {
			for i := nLocked - 1; i >= 0; i-- {
				locked[i].mu.Unlock()
			}
			continue
		}
		n := &slNode{key: key, rid: rid, topLevel: topLevel}
		for level := 0; level <= topLevel; level++ {
			n.next[level].Store(succs[level])
		}
		for level := 0; level <= topLevel; level++ {
			preds[level].next[level].Store(n)
		}
		n.fullyLinked.Store(true)
		// Phantom avoidance: the level-0 predecessor's key range gained an
		// entry.
		preds[0].stamp.Add(1)
		for i := nLocked - 1; i >= 0; i-- {
			locked[i].mu.Unlock()
		}
		return true
	}
}

// Delete removes (key, rid); it reports whether the pair existed.
//
//cicada:noalloc
func (s *SkipList) Delete(key uint64, rid engine.RecordID) bool {
	var preds, succs [slMaxLevel]*slNode
	var victim *slNode
	isMarked := false
	topLevel := -1
	for {
		lFound := s.find(key, rid, &preds, &succs)
		if !isMarked {
			if lFound == -1 {
				return false
			}
			victim = succs[lFound]
			if !victim.fullyLinked.Load() || victim.topLevel != lFound || victim.marked.Load() {
				return false
			}
			topLevel = victim.topLevel
			victim.mu.Lock()
			if victim.marked.Load() {
				victim.mu.Unlock()
				return false
			}
			victim.marked.Store(true)
			victim.stamp.Add(1)
			isMarked = true
		}
		var locked [slMaxLevel]*slNode
		nLocked := 0
		valid := true
		for level := 0; valid && level <= topLevel; level++ {
			pred := preds[level]
			if nLocked == 0 || locked[nLocked-1] != pred {
				pred.mu.Lock()
				locked[nLocked] = pred
				nLocked++
			}
			valid = !pred.marked.Load() && pred.next[level].Load() == victim
		}
		if !valid {
			for i := nLocked - 1; i >= 0; i-- {
				locked[i].mu.Unlock()
			}
			continue
		}
		for level := topLevel; level >= 0; level-- {
			preds[level].next[level].Store(victim.next[level].Load())
		}
		preds[0].stamp.Add(1)
		for i := nLocked - 1; i >= 0; i-- {
			locked[i].mu.Unlock()
		}
		victim.mu.Unlock()
		return true
	}
}

// NodeStamp is an observation of one index node's structure stamp, recorded
// during a scan or an absent-key probe and re-validated at commit.
type NodeStamp struct {
	node  *slNode
	stamp uint64
}

// Valid reports whether the node's stamp is unchanged since the observation.
//
//cicada:noalloc
func (o NodeStamp) Valid() bool { return o.node.stamp.Load() == o.stamp }

// Refresh returns the observation re-taken at the node's current stamp. It
// is used after a transaction's own index updates so they do not invalidate
// its own earlier observations (Silo treats own node modifications the same
// way).
//
//cicada:noalloc
func (o NodeStamp) Refresh() NodeStamp {
	return NodeStamp{node: o.node, stamp: o.node.stamp.Load()}
}

// Get returns the first record ID with the given key. On a miss, obs
// receives the stamp of the node preceding where the key would be.
//
//cicada:noalloc
func (s *SkipList) Get(key uint64, obs *[]NodeStamp) (engine.RecordID, bool) {
	pred := s.head
	for level := slMaxLevel - 1; level >= 0; level-- {
		curr := pred.next[level].Load()
		for curr.less(key, 0) {
			pred = curr
			curr = pred.next[level].Load()
		}
	}
	for curr := pred.next[0].Load(); !curr.isTail && curr.key == key; curr = curr.next[0].Load() {
		if !curr.marked.Load() {
			return curr.rid, true
		}
	}
	if obs != nil {
		*obs = append(*obs, NodeStamp{node: pred, stamp: pred.stamp.Load()})
	}
	return 0, false
}

// Scan visits pairs with lo ≤ key ≤ hi in order until fn returns false or
// limit entries have been emitted (limit < 0 = unlimited). When obs is
// non-nil, the stamps of the visited nodes — including the predecessor of lo
// and the first node beyond hi — are recorded for phantom validation.
//
//cicada:noalloc
func (s *SkipList) Scan(lo, hi uint64, limit int, obs *[]NodeStamp, fn func(key uint64, rid engine.RecordID) bool) {
	pred := s.head
	for level := slMaxLevel - 1; level >= 0; level-- {
		curr := pred.next[level].Load()
		for curr.less(lo, 0) {
			pred = curr
			curr = pred.next[level].Load()
		}
	}
	if obs != nil {
		*obs = append(*obs, NodeStamp{node: pred, stamp: pred.stamp.Load()})
	}
	emitted := 0
	for curr := pred.next[0].Load(); !curr.isTail && curr.key <= hi; curr = curr.next[0].Load() {
		if curr.marked.Load() {
			continue
		}
		if obs != nil {
			*obs = append(*obs, NodeStamp{node: curr, stamp: curr.stamp.Load()})
		}
		if !fn(curr.key, curr.rid) {
			return
		}
		emitted++
		if limit >= 0 && emitted >= limit {
			return
		}
	}
}

// Len counts unmarked entries; O(n), for tests.
func (s *SkipList) Len() int {
	n := 0
	for curr := s.head.next[0].Load(); !curr.isTail; curr = curr.next[0].Load() {
		if !curr.marked.Load() {
			n++
		}
	}
	return n
}
