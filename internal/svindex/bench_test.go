package svindex

import (
	"testing"

	"cicada/internal/engine"
)

// Microbenchmarks for the single-version index substrate. Budgets
// (docs/PERFORMANCE.md): Hash.Get and SkipList.Get/Scan are allocation-free;
// Hash.Insert amortizes to 0 while the key's slice capacity survives (a
// delete that empties a key frees its slice, so a re-insert costs 1 alloc);
// SkipList.Insert allocates its node (1 alloc).

const benchKeys = 1024

func benchHashIdx(tb testing.TB) *Hash {
	tb.Helper()
	h := NewHash(benchKeys)
	for i := 0; i < benchKeys; i++ {
		h.Insert(uint64(i), engine.RecordID(i))
	}
	return h
}

func BenchmarkSVIndexHashGet(b *testing.B) {
	h := benchHashIdx(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, _ := h.Get(uint64(i % benchKeys)); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkSVIndexHashInsertDelete(b *testing.B) {
	h := benchHashIdx(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Insert(benchKeys+1, 7)
		h.Delete(benchKeys+1, 7)
	}
}

func benchSkip(tb testing.TB) *SkipList {
	tb.Helper()
	s := NewSkipList()
	for i := 0; i < benchKeys; i++ {
		s.Insert(uint64(i*2), engine.RecordID(i))
	}
	return s
}

func BenchmarkSVIndexSkipListGet(b *testing.B) {
	s := benchSkip(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(uint64((i%benchKeys)*2), nil); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkSVIndexSkipListInsertDelete(b *testing.B) {
	s := benchSkip(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(101, 7)
		s.Delete(101, 7)
	}
}

func BenchmarkSVIndexSkipListScan16(b *testing.B) {
	s := benchSkip(b)
	var sum uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Scan(100, 100+31, 16, nil, func(k uint64, rid engine.RecordID) bool {
			sum += uint64(rid)
			return true
		})
	}
	_ = sum
}
