package svindex

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"cicada/internal/engine"
)

func TestHashBasic(t *testing.T) {
	h := NewHash(100)
	if _, ok, _ := h.Get(42); ok {
		t.Fatal("empty hash hit")
	}
	h.Insert(42, 7)
	rid, ok, _ := h.Get(42)
	if !ok || rid != 7 {
		t.Fatalf("get: %d %v", rid, ok)
	}
	h.Insert(42, 8)
	all := h.GetAll(42, nil)
	if len(all) != 2 {
		t.Fatalf("getall: %v", all)
	}
	if !h.Delete(42, 7) {
		t.Fatal("delete existing failed")
	}
	if h.Delete(42, 7) {
		t.Fatal("double delete succeeded")
	}
	rid, ok, _ = h.Get(42)
	if !ok || rid != 8 {
		t.Fatalf("after delete: %d %v", rid, ok)
	}
}

func TestHashAbsentStampChanges(t *testing.T) {
	h := NewHash(100)
	_, ok, stamp := h.Get(99)
	if ok {
		t.Fatal("hit")
	}
	h.Insert(99, 1)
	if h.Stamp(99) == stamp {
		t.Fatal("stamp unchanged after insert")
	}
}

func TestHashConcurrent(t *testing.T) {
	h := NewHash(1000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				key := uint64(i)
				h.Insert(key, engine.RecordID(w*1000+i))
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < 1000; i++ {
		if got := h.GetAll(uint64(i), nil); len(got) != 8 {
			t.Fatalf("key %d has %d entries", i, len(got))
		}
	}
}

func TestSkipListBasic(t *testing.T) {
	s := NewSkipList()
	if _, ok := s.Get(5, nil); ok {
		t.Fatal("empty list hit")
	}
	if !s.Insert(5, 50) {
		t.Fatal("insert failed")
	}
	if s.Insert(5, 50) {
		t.Fatal("duplicate insert succeeded")
	}
	if !s.Insert(5, 51) {
		t.Fatal("same-key different-rid insert failed")
	}
	rid, ok := s.Get(5, nil)
	if !ok || rid != 50 {
		t.Fatalf("get: %d %v", rid, ok)
	}
	if !s.Delete(5, 50) {
		t.Fatal("delete failed")
	}
	if s.Delete(5, 50) {
		t.Fatal("double delete succeeded")
	}
	rid, ok = s.Get(5, nil)
	if !ok || rid != 51 {
		t.Fatalf("after delete: %d %v", rid, ok)
	}
}

func TestSkipListOrderedScan(t *testing.T) {
	s := NewSkipList()
	keys := rand.New(rand.NewSource(1)).Perm(500)
	for _, k := range keys {
		s.Insert(uint64(k), engine.RecordID(k*10))
	}
	var got []uint64
	s.Scan(100, 199, -1, nil, func(k uint64, r engine.RecordID) bool {
		if r != engine.RecordID(k*10) {
			t.Fatalf("key %d has rid %d", k, r)
		}
		got = append(got, k)
		return true
	})
	if len(got) != 100 || !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("scan returned %d keys, sorted=%v", len(got),
			sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }))
	}
	if got[0] != 100 || got[99] != 199 {
		t.Fatalf("range [%d,%d]", got[0], got[99])
	}
}

func TestSkipListScanLimit(t *testing.T) {
	s := NewSkipList()
	for i := 0; i < 100; i++ {
		s.Insert(uint64(i), engine.RecordID(i))
	}
	n := 0
	s.Scan(0, 99, 10, nil, func(k uint64, r engine.RecordID) bool { n++; return true })
	if n != 10 {
		t.Fatalf("limit scan visited %d", n)
	}
	n = 0
	s.Scan(0, 99, -1, nil, func(k uint64, r engine.RecordID) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early-stop scan visited %d", n)
	}
}

func TestSkipListPhantomStamps(t *testing.T) {
	s := NewSkipList()
	s.Insert(10, 1)
	s.Insert(30, 3)
	// Absent probe for 20 records the predecessor (10).
	var obs []NodeStamp
	if _, ok := s.Get(20, &obs); ok {
		t.Fatal("absent key hit")
	}
	if len(obs) != 1 || !obs[0].Valid() {
		t.Fatalf("obs %v", obs)
	}
	// A phantom insert invalidates the observation.
	s.Insert(20, 2)
	if obs[0].Valid() {
		t.Fatal("stamp still valid after phantom insert")
	}

	// Scan observation invalidated by insert inside the range.
	obs = obs[:0]
	s.Scan(0, 100, -1, &obs, func(k uint64, r engine.RecordID) bool { return true })
	allValid := func() bool {
		for _, o := range obs {
			if !o.Valid() {
				return false
			}
		}
		return true
	}
	if !allValid() {
		t.Fatal("fresh scan stamps invalid")
	}
	s.Insert(25, 9)
	if allValid() {
		t.Fatal("scan stamps valid after phantom insert")
	}

	// Delete also invalidates.
	obs = obs[:0]
	s.Scan(0, 100, -1, &obs, func(k uint64, r engine.RecordID) bool { return true })
	s.Delete(25, 9)
	if allValid() {
		t.Fatal("scan stamps valid after delete")
	}
}

func TestSkipListConcurrent(t *testing.T) {
	s := NewSkipList()
	const workers = 8
	const per = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				k := uint64(rng.Intn(200))
				r := engine.RecordID(w*per + i)
				if s.Insert(k, r) && rng.Intn(2) == 0 {
					s.Delete(k, r)
				}
			}
		}(w)
	}
	wg.Wait()
	// Structural audit: level-0 order strictly increasing by (key, rid).
	var prevK uint64
	var prevR engine.RecordID
	first := true
	s.Scan(0, ^uint64(0), -1, nil, func(k uint64, r engine.RecordID) bool {
		if !first {
			if k < prevK || (k == prevK && r <= prevR) {
				t.Fatalf("order violation: (%d,%d) after (%d,%d)", k, r, prevK, prevR)
			}
		}
		first = false
		prevK, prevR = k, r
		return true
	})
}

func TestSkipListInsertDeleteProperty(t *testing.T) {
	s := NewSkipList()
	present := map[[2]uint64]bool{}
	f := func(key uint16, rid uint16, del bool) bool {
		k, r := uint64(key%64), engine.RecordID(rid%64)
		id := [2]uint64{k, uint64(r)}
		if del {
			want := present[id]
			got := s.Delete(k, r)
			if got != want {
				return false
			}
			delete(present, id)
		} else {
			want := !present[id]
			got := s.Insert(k, r)
			if got != want {
				return false
			}
			present[id] = true
		}
		return s.Len() == len(present)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
