package core

import "math/bits"

// ownTable maps (table, record) keys to access-set indexes for
// read-own-writes, replacing a Go map on the per-access hot path. It is an
// open-addressed linear-probe table with generation-stamped slots: begin()
// resets it by bumping the generation instead of clearing memory, so a
// transaction pays no per-begin cost proportional to table capacity and no
// map-runtime hashing per access.
//
// Slot states (per generation): empty (stale gen), live (idx ≥ 0), or
// tombstone (idx == ownTombstone, left by del so later probes keep walking).
// The table is sized to the worker's access-set high-water mark and only
// grows; growth is the sole allocation and stops in steady state.
type ownTable struct {
	keys []uint64
	idxs []int32
	gens []uint32
	gen  uint32
	// live counts non-tombstone entries this generation; tombs counts
	// tombstones. Growth triggers on their sum to bound probe lengths.
	live  int
	tombs int
	shift uint // 64 - log2(len(keys)), for fibonacci hashing
}

const (
	ownMinSize   = 64
	ownTombstone = int32(-1)
)

func (o *ownTable) init(capacity int) {
	size := ownMinSize
	for size < capacity*2 {
		size <<= 1
	}
	o.keys = make([]uint64, size)
	o.idxs = make([]int32, size)
	o.gens = make([]uint32, size)
	o.gen = 1
	o.shift = uint(64 - bits.TrailingZeros(uint(size)))
	o.live, o.tombs = 0, 0
}

// reset prepares the table for a new transaction in O(1).
//
//cicada:noalloc
func (o *ownTable) reset() {
	o.gen++
	if o.gen == 0 {
		// Generation wrapped: clear stamps so stale slots cannot alias.
		clear(o.gens)
		o.gen = 1
	}
	o.live, o.tombs = 0, 0
}

//cicada:noalloc
func (o *ownTable) slot(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15) >> o.shift)
}

// get returns the access index stored for key.
//
//cicada:noalloc
func (o *ownTable) get(key uint64) (int, bool) {
	mask := len(o.keys) - 1
	for s := o.slot(key); ; s = (s + 1) & mask {
		if o.gens[s] != o.gen {
			return 0, false
		}
		if o.keys[s] == key && o.idxs[s] != ownTombstone {
			return int(o.idxs[s]), true
		}
	}
}

// put inserts or overwrites key → idx.
//
//cicada:noalloc
func (o *ownTable) put(key uint64, idx int) {
	if (o.live+o.tombs+1)*4 >= len(o.keys)*3 {
		o.grow()
	}
	mask := len(o.keys) - 1
	insert := -1
	for s := o.slot(key); ; s = (s + 1) & mask {
		if o.gens[s] != o.gen {
			if insert < 0 {
				insert = s
			}
			break
		}
		if o.keys[s] == key {
			if o.idxs[s] == ownTombstone {
				o.tombs--
				o.live++
			}
			o.idxs[s] = int32(idx)
			return
		}
		if o.idxs[s] == ownTombstone && insert < 0 {
			insert = s // reuse the first tombstone once key is known absent
		}
	}
	if o.gens[insert] == o.gen {
		o.tombs-- // reusing a tombstone slot
	}
	o.keys[insert] = key
	o.idxs[insert] = int32(idx)
	o.gens[insert] = o.gen
	o.live++
}

// del removes key, leaving a tombstone so probe chains stay intact.
//
//cicada:noalloc
func (o *ownTable) del(key uint64) {
	mask := len(o.keys) - 1
	for s := o.slot(key); ; s = (s + 1) & mask {
		if o.gens[s] != o.gen {
			return
		}
		if o.keys[s] == key && o.idxs[s] != ownTombstone {
			o.idxs[s] = ownTombstone
			o.live--
			o.tombs++
			return
		}
	}
}

// grow doubles the table and rehashes the current generation's live entries.
//
//cicada:noalloc
func (o *ownTable) grow() {
	oldKeys, oldIdxs, oldGens, oldGen := o.keys, o.idxs, o.gens, o.gen
	o.init(len(oldKeys)) // init doubles: size < cap*2 → 2*len
	for s := range oldKeys {
		if oldGens[s] == oldGen && oldIdxs[s] != ownTombstone {
			o.put(oldKeys[s], int(oldIdxs[s]))
		}
	}
}
