package core

import (
	"fmt"
	"time"

	"cicada/internal/storage"
	"cicada/internal/trace"
)

// noConflictKey marks an abort with no attributable key (pre-commit hook
// veto, logger failure, user rollback).
const noConflictKey = trace.NoKey

// initTrace hands each worker its trace shard and teaches the tracer how to
// render this engine's abort reasons and conflict keys. Called once from
// NewEngine when Options.Trace is set; everything wired into workers is a
// plain pointer — the hot path never touches the Tracer itself.
func (e *Engine) initTrace(tr *trace.Tracer) {
	if tr.Shards() < e.opts.Workers {
		panic("core: tracer has fewer shards than engine workers")
	}
	tr.SetAbortReasons(AbortReasonNames())
	tr.SetKeyNamer(func(key uint64) string {
		tbl := TableID(key >> 48)
		rid := storage.RecordID(key & 0xffffffffffff)
		if int(tbl) < len(e.tables) {
			return fmt.Sprintf("%s[%d]", e.tables[tbl].st.Name(), rid)
		}
		return fmt.Sprintf("t%d[%d]", tbl, rid)
	})
	if !e.opts.NoHeatTracking {
		// Merge engine-side heat into the exporter's contention report: the
		// exporter calls back for each reported key's current heat.
		tr.SetHeatSource(e.KeyHeat)
	}
	for _, w := range e.workers {
		w.tr = tr.Shard(w.id)
	}
}

// noteWait closes a pending-version wait opened inside a visibility search:
// it stores the accumulated wait in t.lastWaitNs (0 when no wait happened)
// for the caller's emitWait. Called at every search exit so a previous
// search's wait can never leak into the next access.
//
//cicada:noalloc
func (t *Txn) noteWait(waitStart time.Time) {
	if waitStart.IsZero() {
		t.lastWaitNs = 0
		return
	}
	t.lastWaitNs = nonNegNs(time.Since(waitStart))
}

// emitWait records a pending_wait trace event for the search that just
// returned, attributing the stall to the searched key. Only sampled
// transactions time their waits (see begin), so the common case is a single
// uint64 compare.
//
//cicada:noalloc
func (t *Txn) emitWait(tbl *Table, rid storage.RecordID) {
	if t.waitedPending {
		// Heat attribution is independent of trace sampling: any search
		// that spun on a PENDING version bumps the record's heat, even when
		// the wait was not timed.
		t.waitedPending = false
		w := t.worker
		if !w.eng.opts.NoHeatTracking {
			w.heat.bump(ownKey(tbl.ID, rid))
			w.stats.incHeatWaitBump()
		}
	}
	ns := t.lastWaitNs
	if ns == 0 {
		return
	}
	t.lastWaitNs = 0
	tr := t.worker.tr
	if tr == nil || !tr.Enabled() {
		return
	}
	tr.Record(trace.EvPendingWait, time.Now().UnixNano()-int64(ns), ns, ownKey(tbl.ID, rid), 0)
}
