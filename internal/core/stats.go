package core

import (
	"sync/atomic"
	"time"
)

// AbortReason classifies concurrency-control aborts (plus user-requested
// rollbacks) for the abort taxonomy exported through Stats.AbortsByReason and
// the telemetry registry.
type AbortReason uint8

const (
	// AbortRTSEarly is the read-phase early abort: the visible version was
	// already read at a timestamp later than tx.ts (§3.2).
	AbortRTSEarly AbortReason = iota
	// AbortWriteLatest is the write-latest-version-only rule for RMW and
	// delete accesses: a committed or pending version later than tx.ts
	// exists (§3.2).
	AbortWriteLatest
	// AbortPreCheck is a failure of the early version consistency check
	// before pending-version installation (§3.5).
	AbortPreCheck
	// AbortValidation is a failure of the mandatory version consistency
	// check, including the rts re-checks during installation (§3.4).
	AbortValidation
	// AbortPendingWait is a pending-version spin-wait that exceeded
	// Options.PendingWaitLimit.
	AbortPendingWait
	// AbortPreCommit is a pre-commit hook failure (deferred index updates,
	// §3.6).
	AbortPreCommit
	// AbortLogger is a durability-logger failure (§3.7).
	AbortLogger
	// AbortUser is an application-requested rollback (fn returned a non-nil,
	// non-ErrAborted error to Worker.Run).
	AbortUser

	// NumAbortReasons is the number of abort reasons.
	NumAbortReasons
)

// abortReasonNames maps AbortReason values to stable metric label values.
var abortReasonNames = [NumAbortReasons]string{
	"rts_early",
	"write_latest",
	"precheck",
	"validation",
	"pending_wait",
	"precommit_hook",
	"logger",
	"user",
}

// String returns the reason's stable name (used as a metric label).
func (r AbortReason) String() string {
	if r < NumAbortReasons {
		return abortReasonNames[r]
	}
	return "unknown"
}

// AbortReasonNames returns the stable names of all abort reasons, indexed by
// AbortReason.
func AbortReasonNames() []string {
	return abortReasonNames[:]
}

// workerStats is the per-worker counter block. Every field is a single-writer
// atomic word: only the owning worker's goroutine updates it (with atomic
// load/store pairs — no RMW, no locks), and any goroutine may read it, so
// Engine.Stats and live scrapers never race with running workers. Readers can
// observe a set of counters that is mid-transaction stale but never torn.
type workerStats struct {
	commits     atomic.Uint64
	aborts      atomic.Uint64
	userAborts  atomic.Uint64
	abortNs     atomic.Int64
	busyNs      atomic.Int64
	backoffs    atomic.Uint64
	gcReclaimed atomic.Uint64
	promotions  atomic.Uint64

	// Per-record heat tracking (heat.go): bump sources and the adaptive
	// decisions the heat drove.
	heatAbortBumps     atomic.Uint64
	heatWaitBumps      atomic.Uint64
	heatForcedChecks   atomic.Uint64
	heatScaledBackoffs atomic.Uint64
	heatRTSCoarse      atomic.Uint64
	heatRTSSkips       atomic.Uint64

	abortsByReason [NumAbortReasons]atomic.Uint64
}

// Owner-only update helpers: single-writer words need no RMW.

func (s *workerStats) incCommit() {
	s.commits.Store(s.commits.Load() + 1)
}

// incAbort records a concurrency-control abort with its reason (never
// AbortUser — user rollbacks go through incUserAbort).
func (s *workerStats) incAbort(r AbortReason) {
	s.aborts.Store(s.aborts.Load() + 1)
	b := &s.abortsByReason[r]
	b.Store(b.Load() + 1)
}

func (s *workerStats) incUserAbort() {
	s.userAborts.Store(s.userAborts.Load() + 1)
	b := &s.abortsByReason[AbortUser]
	b.Store(b.Load() + 1)
}

func (s *workerStats) addAbortTime(d time.Duration) {
	s.abortNs.Store(s.abortNs.Load() + int64(d))
}

func (s *workerStats) addBusyTime(d time.Duration) {
	s.busyNs.Store(s.busyNs.Load() + int64(d))
}

func (s *workerStats) incBackoff() {
	s.backoffs.Store(s.backoffs.Load() + 1)
}

func (s *workerStats) addReclaimed(n uint64) {
	s.gcReclaimed.Store(s.gcReclaimed.Load() + n)
}

func (s *workerStats) incPromotion() {
	s.promotions.Store(s.promotions.Load() + 1)
}

func (s *workerStats) incHeatAbortBump() {
	s.heatAbortBumps.Store(s.heatAbortBumps.Load() + 1)
}

func (s *workerStats) incHeatWaitBump() {
	s.heatWaitBumps.Store(s.heatWaitBumps.Load() + 1)
}

func (s *workerStats) incHeatForced() {
	s.heatForcedChecks.Store(s.heatForcedChecks.Load() + 1)
}

func (s *workerStats) incHeatScaledBackoff() {
	s.heatScaledBackoffs.Store(s.heatScaledBackoffs.Load() + 1)
}

func (s *workerStats) incHeatRTSCoarse() {
	s.heatRTSCoarse.Store(s.heatRTSCoarse.Load() + 1)
}

func (s *workerStats) incHeatRTSSkip() {
	s.heatRTSSkips.Store(s.heatRTSSkips.Load() + 1)
}

// snapshot reads the counters into a plain Stats value; safe from any
// goroutine.
func (s *workerStats) snapshot() Stats {
	out := Stats{
		Commits:            s.commits.Load(),
		Aborts:             s.aborts.Load(),
		UserAborts:         s.userAborts.Load(),
		AbortTime:          time.Duration(s.abortNs.Load()),
		BusyTime:           time.Duration(s.busyNs.Load()),
		HeatAbortBumps:     s.heatAbortBumps.Load(),
		HeatWaitBumps:      s.heatWaitBumps.Load(),
		HeatForcedChecks:   s.heatForcedChecks.Load(),
		HeatScaledBackoffs: s.heatScaledBackoffs.Load(),
		HeatRTSCoarse:      s.heatRTSCoarse.Load(),
		HeatRTSSkips:       s.heatRTSSkips.Load(),
	}
	for i := range s.abortsByReason {
		out.AbortsByReason[i] = s.abortsByReason[i].Load()
	}
	return out
}
