package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"cicada/internal/storage"
)

// skipGone converts ErrNotFound (the record was churned away) into a clean
// commit; every other error — ErrAborted in particular — must propagate so
// Run can retry the closed transaction.
func skipGone(err error) error {
	if errors.Is(err, ErrNotFound) {
		return errSkipTxn
	}
	return err
}

var errSkipTxn = errors.New("race test: record gone, skip")

// TestRaceMixedWorkload drives concurrent transfers, delete/insert churn,
// read-only scans, and explicit garbage collection across four workers, in
// both pending-wait modes. The balance total is conserved by every committed
// transaction, so any serializability or visibility race shows up as a sum
// mismatch; auditChains catches structural chain corruption. Run it under
// -race and -tags cicada_invariants for the full effect.
func TestRaceMixedWorkload(t *testing.T) {
	modes := []struct {
		name   string
		mutate func(*Options)
	}{
		{"waitpending", nil},
		{"nowait", func(o *Options) { o.NoWaitPending = true }},
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			runRaceMixedWorkload(t, mode.mutate)
		})
	}
}

func runRaceMixedWorkload(t *testing.T, mutate func(*Options)) {
	const (
		workers = 4
		records = 24
		seed    = uint64(1000)
	)
	iters := 300
	if testing.Short() {
		iters = 80
	}
	e := newTestEngine(workers, mutate)
	tbl := e.CreateTable("accounts")
	w0 := e.Worker(0)

	var mu sync.Mutex
	rids := make([]storage.RecordID, records)
	for i := range rids {
		buf := make([]byte, 8)
		putU64(buf, seed)
		rids[i] = mustInsert(t, w0, tbl, buf)
	}

	pick := func(rng *rand.Rand) (int, storage.RecordID) {
		mu.Lock()
		i := rng.Intn(records)
		rid := rids[i]
		mu.Unlock()
		return i, rid
	}

	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) * 7771))
			w := e.Worker(id)
			for i := 0; i < iters; i++ {
				switch rng.Intn(8) {
				case 0: // churn: delete a record and re-insert its balance
					slot, rid := pick(rng)
					var newRid storage.RecordID
					replaced := false
					err := w.Run(func(tx *Txn) error {
						replaced = false
						data, err := tx.Read(tbl, rid)
						if err != nil {
							return skipGone(err) // lost a churn race
						}
						bal := u64(data)
						if err := tx.Delete(tbl, rid); err != nil {
							return skipGone(err)
						}
						r, buf, err := tx.Insert(tbl, 8)
						if err != nil {
							return err
						}
						putU64(buf, bal)
						newRid = r
						replaced = true
						return nil
					})
					if err != nil && !errors.Is(err, errSkipTxn) {
						t.Errorf("worker %d churn: %v", id, err)
						return
					}
					if replaced {
						mu.Lock()
						if rids[slot] == rid {
							rids[slot] = newRid
						}
						mu.Unlock()
					}
				case 1: // read-only scan of a few records
					_ = w.RunRO(func(tx *Txn) error {
						for k := 0; k < 4; k++ {
							_, rid := pick(rng)
							if _, err := tx.Read(tbl, rid); err != nil {
								return skipGone(err)
							}
						}
						return nil
					})
				default: // transfer between two accounts
					_, from := pick(rng)
					_, to := pick(rng)
					if from == to {
						continue
					}
					amount := uint64(rng.Intn(10) + 1)
					if err := w.Run(func(tx *Txn) error {
						src, err := tx.Update(tbl, from, -1)
						if err != nil {
							return skipGone(err) // churned away mid-flight
						}
						dst, err := tx.Update(tbl, to, -1)
						if err != nil {
							return skipGone(err)
						}
						if u64(src) < amount {
							return errSkipTxn
						}
						putU64(src, u64(src)-amount)
						putU64(dst, u64(dst)+amount)
						return nil
					}); err != nil && !errors.Is(err, errSkipTxn) {
						t.Errorf("worker %d transfer: %v", id, err)
						return
					}
				}
				if i%32 == 31 {
					w.collectGarbage()
				}
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	advanceEpochs(t, e, 4)
	for id := 0; id < workers; id++ {
		e.Worker(id).collectGarbage()
	}

	var total uint64
	if err := w0.Run(func(tx *Txn) error {
		total = 0
		mu.Lock()
		snapshot := append([]storage.RecordID(nil), rids...)
		mu.Unlock()
		for _, rid := range snapshot {
			data, err := tx.Read(tbl, rid)
			if err != nil {
				return err
			}
			total += u64(data)
		}
		return nil
	}); err != nil {
		t.Fatalf("final sum: %v", err)
	}
	if want := uint64(records) * seed; total != want {
		t.Fatalf("balance total %d, want %d: a committed transfer was lost or duplicated", total, want)
	}
	if chains, _ := auditChains(t, e); chains == 0 {
		t.Fatal("no chains audited")
	}
}
