package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"cicada/internal/clock"
	"cicada/internal/storage"
)

// The serializability checker (DESIGN.md §6): concurrent workers run random
// transactions over a small keyspace, logging for every committed
// transaction its timestamp, the value observed by each read, and the value
// installed by each write. Every record value is the 8-byte timestamp of the
// transaction that wrote it, so the history can be replayed in timestamp
// order: Theorem 1 requires that each read observes exactly the value of the
// latest earlier write.

type opLog struct {
	ts  clock.Timestamp
	ops []obsOp
}

// obsOp is one operation in transaction order; preserving the order matters
// because reads after own writes must observe the transaction's own value.
type obsOp struct {
	write bool
	rid   storage.RecordID
	val   uint64 // observed value for reads (0 = absent)
}

func runSerializabilityStress(t *testing.T, workers, records, txPerWorker int, mutate func(*Options)) {
	t.Helper()
	e := newTestEngine(workers, mutate)
	tbl := e.CreateTable("t")

	// Preload half the records so absent reads occur too.
	rids := make([]storage.RecordID, records)
	w0 := e.Worker(0)
	for i := range rids {
		if i%2 == 0 {
			var rid storage.RecordID
			if err := w0.Run(func(tx *Txn) error {
				r, buf, err := tx.Insert(tbl, 8)
				if err != nil {
					return err
				}
				putU64(buf, uint64(tx.Timestamp()))
				rid = r
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			rids[i] = rid
		} else {
			rids[i] = tbl.Storage().Reserve(1)
		}
	}
	// Record the preload writes for the replay baseline.
	var mu sync.Mutex
	var history []opLog

	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := e.Worker(id)
			rng := rand.New(rand.NewSource(int64(id)*7919 + 13))
			local := make([]opLog, 0, txPerWorker)
			for n := 0; n < txPerWorker; n++ {
				var lg opLog
				err := w.Run(func(tx *Txn) error {
					lg = opLog{ts: tx.Timestamp()}
					ops := 1 + rng.Intn(5)
					for k := 0; k < ops; k++ {
						rid := rids[rng.Intn(len(rids))]
						switch rng.Intn(10) {
						case 0, 1, 2, 3, 4: // read
							d, err := tx.Read(tbl, rid)
							obs := obsOp{rid: rid}
							if err == nil {
								obs.val = u64(d)
							} else if !errors.Is(err, ErrNotFound) {
								return err
							}
							lg.ops = append(lg.ops, obs)
						case 5, 6, 7: // RMW
							buf, err := tx.Update(tbl, rid, -1)
							if errors.Is(err, ErrNotFound) {
								lg.ops = append(lg.ops, obsOp{rid: rid})
								continue
							}
							if err != nil {
								return err
							}
							lg.ops = append(lg.ops, obsOp{rid: rid, val: u64(buf)})
							putU64(buf, uint64(tx.Timestamp()))
							lg.ops = append(lg.ops, obsOp{write: true, rid: rid})
						default: // blind write
							buf, err := tx.Write(tbl, rid, 8)
							if err != nil {
								return err
							}
							putU64(buf, uint64(tx.Timestamp()))
							lg.ops = append(lg.ops, obsOp{write: true, rid: rid})
						}
					}
					return nil
				})
				if err == nil {
					local = append(local, lg)
				} else if !errors.Is(err, ErrAborted) {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
			mu.Lock()
			history = append(history, local...)
			mu.Unlock()
		}(id)
	}
	wg.Wait()

	// Replay the committed history serially in timestamp order (Theorem 1).
	// Within a transaction, operations replay in execution order so reads
	// after own writes observe the transaction's own value. The first read
	// of a record with unknown state adopts the observed value as baseline
	// (it was written by the preloader, whose timestamp precedes all
	// workers').
	sort.Slice(history, func(i, j int) bool { return history[i].ts < history[j].ts })
	state := make(map[storage.RecordID]uint64, records)
	known := make(map[storage.RecordID]bool, records)
	violations := 0
	for _, lg := range history {
		ownWrote := make(map[storage.RecordID]bool, 4)
		for _, op := range lg.ops {
			if op.write {
				ownWrote[op.rid] = true
				continue
			}
			want, ok := state[op.rid], known[op.rid]
			if ownWrote[op.rid] {
				want, ok = uint64(lg.ts), true
			}
			if !ok {
				state[op.rid] = op.val
				known[op.rid] = true
				continue
			}
			if want != op.val {
				t.Errorf("ts %v: read of %d saw %d, serial replay expects %d",
					lg.ts, op.rid, op.val, want)
				violations++
				if violations > 10 {
					t.Fatal("too many violations")
				}
			}
		}
		for rid := range ownWrote {
			state[rid] = uint64(lg.ts)
			known[rid] = true
		}
	}
	s := e.Stats()
	if s.Commits == 0 {
		t.Fatal("no transactions committed")
	}
	t.Logf("commits=%d aborts=%d abortRate=%.2f%%", s.Commits, s.Aborts, 100*s.AbortRate())
}

func TestSerializabilityDefault(t *testing.T) {
	runSerializabilityStress(t, 4, 16, 300, nil)
}

func TestSerializabilityHighContention(t *testing.T) {
	runSerializabilityStress(t, 8, 4, 200, nil)
}

func TestSerializabilityNoWait(t *testing.T) {
	runSerializabilityStress(t, 4, 8, 200, func(o *Options) { o.NoWaitPending = true })
}

func TestSerializabilityNoLatest(t *testing.T) {
	runSerializabilityStress(t, 4, 8, 200, func(o *Options) { o.NoWriteLatestRule = true })
}

func TestSerializabilityNoSortNoPrecheck(t *testing.T) {
	runSerializabilityStress(t, 4, 8, 200, func(o *Options) {
		o.NoSortWriteSet = true
		o.NoPreCheck = true
	})
}

func TestSerializabilityNoInlining(t *testing.T) {
	runSerializabilityStress(t, 4, 8, 200, func(o *Options) { o.Inlining = false })
}

func TestSerializabilityCentralizedClock(t *testing.T) {
	runSerializabilityStress(t, 4, 8, 200, func(o *Options) { o.Clock.Centralized = true })
}

func TestSerializabilitySlowGC(t *testing.T) {
	runSerializabilityStress(t, 4, 8, 150, func(o *Options) { o.GCInterval = 50 * time.Millisecond })
}

func TestSerializabilityFixedBackoff(t *testing.T) {
	runSerializabilityStress(t, 4, 8, 150, func(o *Options) { o.FixedMaxBackoff = 5 * time.Microsecond })
}

// TestReadOnlyConsistentUnderWrites checks that read-only snapshot
// transactions always observe a consistent state: workers keep two records
// summing to a constant while read-only transactions verify the invariant.
func TestReadOnlyConsistentUnderWrites(t *testing.T) {
	const total = 1000
	e := newTestEngine(3, nil)
	tbl := e.CreateTable("t")
	w0 := e.Worker(0)
	var a, b storage.RecordID
	if err := w0.Run(func(tx *Txn) error {
		var buf []byte
		var err error
		a, buf, err = tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		putU64(buf, total/2)
		b, buf, err = tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		putU64(buf, total/2)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	advanceEpochs(t, e, 3) // move min_wts past the preload insert

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := e.Worker(id)
			rng := rand.New(rand.NewSource(int64(id)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				amount := uint64(rng.Intn(10))
				_ = w.Run(func(tx *Txn) error {
					ab, err := tx.Update(tbl, a, -1)
					if err != nil {
						return err
					}
					bb, err := tx.Update(tbl, b, -1)
					if err != nil {
						return err
					}
					av, bv := u64(ab), u64(bb)
					if av < amount {
						return nil
					}
					putU64(ab, av-amount)
					putU64(bb, bv+amount)
					return nil
				})
			}
		}(id)
	}
	reader := e.Worker(2)
	deadline := time.Now().Add(500 * time.Millisecond)
	checks := 0
	for time.Now().Before(deadline) {
		err := reader.RunRO(func(tx *Txn) error {
			ad, err := tx.Read(tbl, a)
			if err != nil {
				return err
			}
			bd, err := tx.Read(tbl, b)
			if err != nil {
				return err
			}
			if got := u64(ad) + u64(bd); got != total {
				return fmt.Errorf("snapshot sum %d != %d", got, total)
			}
			checks++
			return nil
		})
		if err != nil {
			close(stop)
			wg.Wait()
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if checks == 0 {
		t.Fatal("no snapshot checks ran")
	}
	// Final audit with a read-write transaction.
	if err := w0.Run(func(tx *Txn) error {
		ad, err := tx.Read(tbl, a)
		if err != nil {
			return err
		}
		bd, err := tx.Read(tbl, b)
		if err != nil {
			return err
		}
		if got := u64(ad) + u64(bd); got != total {
			return fmt.Errorf("final sum %d != %d", got, total)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
