package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cicada/internal/clock"
	"cicada/internal/telemetry"
)

// TestStatsConcurrentWithWorkers is the race-regression test for
// Engine.Stats / Worker.Stats / CommitsLive: all three are read continuously
// while workers run transactions. Run under -race this fails if any worker
// counter is a plain (non-atomic) word again.
func TestStatsConcurrentWithWorkers(t *testing.T) {
	const workers = 4
	e := newTestEngine(workers, nil)
	tbl := e.CreateTable("t")
	rid := mustInsert(t, e.Worker(0), tbl, make([]byte, 8))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = w.Run(func(tx *Txn) error {
					buf, err := tx.Update(tbl, rid, -1)
					if err != nil {
						if errors.Is(err, ErrNotFound) {
							return nil
						}
						return err
					}
					binary.LittleEndian.PutUint64(buf, binary.LittleEndian.Uint64(buf)+1)
					return nil
				})
			}
		}(e.Worker(i))
	}

	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		s := e.Stats()
		if s.Commits < e.CommitsLive() && s.Commits > 0 {
			// CommitsLive was read later; monotone counters can only grow.
			_ = s
		}
		for i := 0; i < workers; i++ {
			_ = e.Worker(i).Stats()
		}
	}
	close(stop)
	wg.Wait()

	s := e.Stats()
	if s.Commits == 0 {
		t.Fatal("no transactions committed")
	}
	if s.Commits != e.CommitsLive() {
		t.Fatalf("quiescent Commits %d != CommitsLive %d", s.Commits, e.CommitsLive())
	}
	var ccAborts uint64
	for r := AbortReason(0); r < NumAbortReasons; r++ {
		if r != AbortUser {
			ccAborts += s.AbortsByReason[r]
		}
	}
	if ccAborts != s.Aborts {
		t.Fatalf("abort reasons sum %d != Aborts %d (%+v)", ccAborts, s.Aborts, s.AbortsByReason)
	}
}

// observe makes w1's next timestamps later than w0's current transaction by
// establishing causality from w0's last allocated timestamp.
func observeAfter(from, to *Worker) {
	to.ObserveTimestamp(from.CurrentTS())
}

// TestAbortReasonSplit drives each abort cause deterministically and checks
// the taxonomy entry it lands in, plus that the legacy aggregate fields keep
// their old semantics.
func TestAbortReasonSplit(t *testing.T) {
	newPair := func(mutate func(*Options)) (*Engine, *Table, *Worker, *Worker) {
		e := newTestEngine(2, mutate)
		tbl := e.CreateTable("t")
		return e, tbl, e.Worker(0), e.Worker(1)
	}
	reasonDelta := func(e *Engine, r AbortReason, body func()) uint64 {
		before := e.Stats().AbortsByReason[r]
		body()
		return e.Stats().AbortsByReason[r] - before
	}

	t.Run("rts_early", func(t *testing.T) {
		e, tbl, w0, w1 := newPair(nil)
		rid := mustInsert(t, w0, tbl, []byte("v0"))
		n := reasonDelta(e, AbortRTSEarly, func() {
			tx0 := w0.Begin() // early timestamp
			observeAfter(w0, w1)
			// w1 reads rid at a later timestamp, raising its rts past tx0.ts.
			if err := w1.Run(func(tx *Txn) error {
				_, err := tx.Read(tbl, rid)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if _, err := tx0.Write(tbl, rid, 2); !errors.Is(err, ErrAborted) {
				t.Fatalf("Write err = %v, want ErrAborted", err)
			}
		})
		if n != 1 {
			t.Fatalf("rts_early delta = %d, want 1", n)
		}
	})

	t.Run("write_latest", func(t *testing.T) {
		e, tbl, w0, w1 := newPair(nil)
		rid := mustInsert(t, w0, tbl, []byte("v0"))
		n := reasonDelta(e, AbortWriteLatest, func() {
			tx0 := w0.Begin()
			observeAfter(w0, w1)
			// A blind write creates a later committed version without raising
			// rts, so tx0's RMW trips the write-latest rule, not the rts check.
			if err := w1.Run(func(tx *Txn) error {
				buf, err := tx.Write(tbl, rid, 2)
				if err != nil {
					return err
				}
				copy(buf, "v1")
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if _, err := tx0.Update(tbl, rid, -1); !errors.Is(err, ErrAborted) {
				t.Fatalf("Update err = %v, want ErrAborted", err)
			}
		})
		if n != 1 {
			t.Fatalf("write_latest delta = %d, want 1", n)
		}
	})

	// conflictReadThenWrite aborts tx0 in its consistency check: tx0 reads
	// rid and blind-writes another record whose rts w1 then raises.
	conflictCheck := func(t *testing.T, mutate func(*Options), reason AbortReason) {
		t.Helper()
		e, tbl, w0, w1 := newPair(mutate)
		ridA := mustInsert(t, w0, tbl, []byte("a0"))
		ridB := mustInsert(t, w0, tbl, []byte("b0"))
		n := reasonDelta(e, reason, func() {
			tx0 := w0.Begin()
			if _, err := tx0.Write(tbl, ridB, 2); err != nil {
				t.Fatal(err)
			}
			_ = ridA
			observeAfter(w0, w1)
			// w1 reads ridB later, raising its rts past tx0.ts: tx0's blind
			// write fails the version consistency check at commit.
			if err := w1.Run(func(tx *Txn) error {
				_, err := tx.Read(tbl, ridB)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if err := tx0.Commit(); !errors.Is(err, ErrAborted) {
				t.Fatalf("Commit err = %v, want ErrAborted", err)
			}
		})
		if n != 1 {
			t.Fatalf("%v delta = %d, want 1", reason, n)
		}
	}

	t.Run("precheck", func(t *testing.T) {
		conflictCheck(t, nil, AbortPreCheck)
	})

	t.Run("validation", func(t *testing.T) {
		// With the precheck disabled the same conflict is caught by the
		// mandatory final check instead.
		conflictCheck(t, func(o *Options) { o.NoPreCheck = true }, AbortValidation)
	})

	t.Run("precommit_hook_and_logger_and_user", func(t *testing.T) {
		e, tbl, w0, _ := newPair(nil)
		rid := mustInsert(t, w0, tbl, []byte("v0"))

		tx := w0.Begin()
		if _, err := tx.Update(tbl, rid, -1); err != nil {
			t.Fatal(err)
		}
		tx.AddPreCommit(func(*Txn) error { return errors.New("index conflict") })
		if err := tx.Commit(); !errors.Is(err, ErrAborted) {
			t.Fatalf("Commit err = %v", err)
		}

		e.SetLogger(failLogger{})
		tx = w0.Begin()
		if _, err := tx.Update(tbl, rid, -1); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); !errors.Is(err, ErrAborted) {
			t.Fatalf("Commit err = %v", err)
		}
		e.SetLogger(nil)

		userErr := errors.New("user says no")
		if err := w0.Run(func(*Txn) error { return userErr }); !errors.Is(err, userErr) {
			t.Fatalf("Run err = %v", err)
		}

		s := e.Stats()
		if s.AbortsByReason[AbortPreCommit] != 1 {
			t.Errorf("precommit_hook = %d, want 1", s.AbortsByReason[AbortPreCommit])
		}
		if s.AbortsByReason[AbortLogger] != 1 {
			t.Errorf("logger = %d, want 1", s.AbortsByReason[AbortLogger])
		}
		if s.AbortsByReason[AbortUser] != 1 || s.UserAborts != 1 {
			t.Errorf("user = %d / UserAborts = %d, want 1/1", s.AbortsByReason[AbortUser], s.UserAborts)
		}
		// Aggregate semantics: user aborts stay out of Aborts.
		if s.Aborts != 2 {
			t.Errorf("Aborts = %d, want 2 (precommit + logger)", s.Aborts)
		}
	})
}

type failLogger struct{}

func (failLogger) Log(int, clock.Timestamp, []LogEntry) error { return errors.New("disk gone") }

// TestPendingWaitTimeout blocks a committing writer inside the durability
// logger (its new version is PENDING at that point) and lets a reader with a
// PendingWaitLimit time out on it.
func TestPendingWaitTimeout(t *testing.T) {
	e := newTestEngine(2, func(o *Options) { o.PendingWaitLimit = 8 })
	tbl := e.CreateTable("t")
	w0, w1 := e.Worker(0), e.Worker(1)
	rid := mustInsert(t, w0, tbl, []byte("v0"))

	entered := make(chan clock.Timestamp, 1)
	release := make(chan struct{})
	e.SetLogger(blockingLogger{entered: entered, release: release})

	writerDone := make(chan error, 1)
	go func() {
		writerDone <- w1.Run(func(tx *Txn) error {
			buf, err := tx.Update(tbl, rid, -1)
			if err != nil {
				return err
			}
			copy(buf, "v1")
			return nil
		})
	}()

	writerTS := <-entered // writer's version is now installed and PENDING
	w0.ObserveTimestamp(writerTS)
	tx := w0.Begin()
	_, err := tx.Read(tbl, rid)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("Read err = %v, want ErrAborted", err)
	}
	close(release)
	if err := <-writerDone; err != nil {
		t.Fatalf("writer: %v", err)
	}
	if n := e.Stats().AbortsByReason[AbortPendingWait]; n != 1 {
		t.Fatalf("pending_wait = %d, want 1", n)
	}
}

type blockingLogger struct {
	entered chan clock.Timestamp
	release chan struct{}
}

func (l blockingLogger) Log(_ int, ts clock.Timestamp, _ []LogEntry) error {
	l.entered <- ts
	<-l.release
	return nil
}

// TestEngineTelemetry wires a registry into an engine, drives commits and
// aborts, and checks the scraped values: comparable engine counters, the
// abort taxonomy, phase latency histograms, and the flight recorder.
func TestEngineTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry(2)
	e := newTestEngine(2, func(o *Options) { o.Metrics = reg })
	tbl := e.CreateTable("t")
	w0, w1 := e.Worker(0), e.Worker(1)

	rid := mustInsert(t, w0, tbl, []byte("v0"))
	for i := 0; i < 10; i++ {
		if err := w1.Run(func(tx *Txn) error {
			buf, err := tx.Update(tbl, rid, -1)
			if err != nil {
				return err
			}
			buf[0] = byte(i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// One deterministic rts_early abort for the taxonomy and recorder.
	tx0 := w0.Begin()
	observeAfter(w0, w1)
	if err := w1.Run(func(tx *Txn) error {
		_, err := tx.Read(tbl, rid)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx0.Write(tbl, rid, 2); !errors.Is(err, ErrAborted) {
		t.Fatalf("Write err = %v, want ErrAborted", err)
	}

	s := e.Stats()
	vals := reg.Values()
	if got := vals["engine_commits_total_cicada"]; got != float64(s.Commits) {
		t.Errorf("engine_commits_total = %g, want %d", got, s.Commits)
	}
	if got := vals["cicada_aborts_total_rts_early"]; got < 1 {
		t.Errorf("cicada_aborts_total_rts_early = %g, want >= 1", got)
	}
	if got := vals["cicada_phase_latency_ns_execute_count"]; got != float64(s.Commits+s.Aborts) {
		// Every begun transaction observes the execute phase exactly once:
		// at Commit entry or (via the abort histogram path) never — aborts
		// during the read phase don't reach Commit, so allow >= commits.
		if got < float64(s.Commits) {
			t.Errorf("execute phase count = %g, want >= %d", got, s.Commits)
		}
	}
	if got := vals["cicada_phase_latency_ns_validate_count"]; got < float64(s.Commits-1) {
		t.Errorf("validate phase count = %g, want >= %d", got, s.Commits-1)
	}
	if got := vals["cicada_abort_latency_ns_count"]; got != float64(s.Aborts) {
		t.Errorf("abort latency count = %g, want %d", got, s.Aborts)
	}
	if _, ok := vals["cicada_clock_min_wts"]; !ok {
		t.Error("missing cicada_clock_min_wts")
	}

	rec := reg.Recorder()
	if rec == nil {
		t.Fatal("no recorder attached")
	}
	traces := rec.Dump(10)
	if len(traces) == 0 {
		t.Fatal("flight recorder empty after abort")
	}
	found := false
	for _, tr := range traces {
		if tr.Reason == "rts_early" && tr.Worker == 0 {
			found = true
			if tr.ExecuteNs == 0 {
				t.Error("trace has zero execute time")
			}
			if tr.TS == 0 || tr.StartUnixNano == 0 {
				t.Errorf("trace missing timestamps: %+v", tr)
			}
		}
	}
	if !found {
		t.Fatalf("no rts_early trace from worker 0 in %+v", traces)
	}
}

// TestTelemetryGCAndPromotion checks the GC reclaim counter and inline
// promotion counter feed through the registry.
func TestTelemetryGCAndPromotion(t *testing.T) {
	reg := telemetry.NewRegistry(1)
	e := newTestEngine(1, func(o *Options) { o.Metrics = reg })
	tbl := e.CreateTable("t")
	w := e.Worker(0)

	rid := mustInsert(t, w, tbl, make([]byte, 8))
	for i := 0; i < 50; i++ {
		if err := w.Run(func(tx *Txn) error {
			buf, err := tx.Update(tbl, rid, -1)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, uint64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	advanceEpochs(t, e, 5)
	vals := reg.Values()
	if got := vals["cicada_gc_reclaimed_versions_total"]; got == 0 {
		t.Errorf("no versions reclaimed (stats: %v)", fmt.Sprint(vals))
	}
}
