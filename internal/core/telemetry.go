package core

import (
	"time"

	"cicada/internal/telemetry"
)

// Transaction phases instrumented with latency histograms. Execute is the
// read phase (Begin to Commit entry), validate covers pre-commit hooks
// through logging (§3.4 steps 0–6), write is the PENDING→COMMITTED flip plus
// GC enqueue, and quiescence is one maintenance round (§3.8).
const (
	phaseExecute = iota
	phaseValidate
	phaseWrite
	phaseQuiesce
	numPhases
)

var phaseNames = [numPhases]string{"execute", "validate", "write", "quiescence"}

// flightRecorderDepth is the per-worker ring depth of the aborted-transaction
// flight recorder.
const flightRecorderDepth = 64

// workerTel caches one worker's shard pointers so hot-path instrumentation
// never touches the registry. A nil *workerTel (telemetry disabled) costs one
// predictable branch per instrumentation site and zero time.Now calls.
type workerTel struct {
	phase    [numPhases]*telemetry.HistogramShard
	abortLat *telemetry.HistogramShard
	gcDepth  *telemetry.GaugeShard
	rec      *telemetry.RecorderShard
}

// nonNegNs converts a duration to nanoseconds, clamping negatives to zero.
func nonNegNs(d time.Duration) uint64 {
	if d < 0 {
		return 0
	}
	return uint64(d)
}

// initTelemetry registers the engine's metrics in reg and hands each worker
// its shard pointers. Called once from NewEngine when Options.Metrics is set;
// registration is cold (the registry takes a mutex), everything wired into
// workers is lock-free.
func (e *Engine) initTelemetry(reg *telemetry.Registry) {
	if reg.Workers() < e.opts.Workers {
		panic("core: telemetry registry has fewer shards than engine workers")
	}
	stat := func(f func(s *Stats) float64) func() float64 {
		return func() float64 {
			s := e.Stats()
			return f(&s)
		}
	}
	engLabel := telemetry.Label{Key: "engine", Value: "cicada"}

	// Engine-comparable counters (same families as the baseline engines).
	reg.CounterFunc("engine_commits_total", "Committed transactions.",
		stat(func(s *Stats) float64 { return float64(s.Commits) }), engLabel)
	reg.CounterFunc("engine_aborts_total", "Concurrency-control aborts.",
		stat(func(s *Stats) float64 { return float64(s.Aborts) }), engLabel)
	reg.CounterFunc("engine_user_aborts_total", "Application-requested rollbacks.",
		stat(func(s *Stats) float64 { return float64(s.UserAborts) }), engLabel)
	reg.CounterFunc("engine_busy_seconds_total", "Time spent processing transactions.",
		stat(func(s *Stats) float64 { return s.BusyTime.Seconds() }), engLabel)
	reg.CounterFunc("engine_abort_seconds_total", "Time spent on aborted work and backoff.",
		stat(func(s *Stats) float64 { return s.AbortTime.Seconds() }), engLabel)

	// Abort taxonomy: one series per reason, scraped straight from the
	// workers' single-writer counters.
	for r := AbortReason(0); r < NumAbortReasons; r++ {
		rr := r
		reg.CounterFunc("cicada_aborts_total", "Aborted transactions by reason.",
			func() float64 {
				var n uint64
				for _, w := range e.workers {
					n += w.stats.abortsByReason[rr].Load()
				}
				return float64(n)
			}, telemetry.Label{Key: "reason", Value: rr.String()})
	}

	// Phase latency histograms for committed work plus the total latency of
	// aborted attempts.
	var phaseHists [numPhases]*telemetry.Histogram
	for p := range phaseHists {
		phaseHists[p] = reg.Histogram("cicada_phase_latency_ns",
			"Transaction phase latency in nanoseconds.",
			telemetry.Label{Key: "phase", Value: phaseNames[p]})
	}
	abortHist := reg.Histogram("cicada_abort_latency_ns",
		"Begin-to-abort latency of concurrency-control aborts in nanoseconds.")

	// Garbage collection (§3.8).
	gcDepth := reg.Gauge("cicada_gc_queue_depth",
		"Committed versions queued for garbage collection, summed over workers.")
	reg.CounterFunc("cicada_gc_reclaimed_versions_total",
		"Versions returned to pools after epoch-delayed limbo (§3.8).",
		func() float64 {
			var n uint64
			for _, w := range e.workers {
				n += w.stats.gcReclaimed.Load()
			}
			return float64(n)
		})
	reg.CounterFunc("cicada_inline_promotions_total",
		"Reads upgraded to inline-slot promotion writes (§3.3).",
		func() float64 {
			var n uint64
			for _, w := range e.workers {
				n += w.stats.promotions.Load()
			}
			return float64(n)
		})
	reg.GaugeFunc("cicada_epoch", "Completed quiescence rounds.",
		func() float64 { return float64(e.Epoch()) })

	// Multi-clock health (§3.1).
	reg.GaugeFunc("cicada_clock_min_wts", "min_wts watermark (clock ticks).",
		func() float64 { return float64(e.clock.MinWTS().ClockValue()) })
	reg.GaugeFunc("cicada_clock_min_rts", "min_rts GC horizon (clock ticks).",
		func() float64 { return float64(e.clock.MinRTS().ClockValue()) })
	reg.GaugeFunc("cicada_clock_spread_ticks",
		"Fastest-minus-slowest worker clock: the drift one-sided synchronization corrects.",
		func() float64 { return float64(e.clock.ClockSpreadTicks()) })
	reg.GaugeFunc("cicada_snapshot_age_ticks",
		"Lag of the oldest read-only snapshot timestamp behind the newest write timestamp.",
		func() float64 { return float64(e.clock.MaxSnapshotAgeTicks()) })
	reg.CounterFunc("cicada_clock_boost_events_total",
		"Temporary clock boosts granted (one per concurrency-control abort, §3.1).",
		stat(func(s *Stats) float64 { return float64(s.Aborts) }))

	// Per-record heat tracking (heat.go, docs/PERFORMANCE.md "Adaptive
	// contention management").
	heatCtr := func(name, help string, f func(s *workerStats) uint64) {
		reg.CounterFunc(name, help, func() float64 {
			var n uint64
			for _, w := range e.workers {
				n += f(&w.stats)
			}
			return float64(n)
		})
	}
	heatCtr("core_heat_abort_bumps_total",
		"Heat-table bumps attributed to concurrency-control aborts.",
		func(s *workerStats) uint64 { return s.heatAbortBumps.Load() })
	heatCtr("core_heat_wait_bumps_total",
		"Heat-table bumps attributed to pending-version waits.",
		func(s *workerStats) uint64 { return s.heatWaitBumps.Load() })
	heatCtr("core_heat_forced_checks_total",
		"Validations where a hot write-set key forced sorting and the early check despite a §3.5 commit streak.",
		func(s *workerStats) uint64 { return s.heatForcedChecks.Load() })
	heatCtr("core_heat_scaled_backoffs_total",
		"Post-abort backoffs shortened because the conflict key was below the hot threshold.",
		func(s *workerStats) uint64 { return s.heatScaledBackoffs.Load() })
	heatCtr("core_heat_rts_coarse_total",
		"Cold-record rts updates over-raised by the configured slack.",
		func(s *workerStats) uint64 { return s.heatRTSCoarse.Load() })
	heatCtr("core_heat_rts_skips_total",
		"Cold-record reads that skipped the rts CAS thanks to a previous coarse raise.",
		func(s *workerStats) uint64 { return s.heatRTSSkips.Load() })
	reg.GaugeFunc("core_heat_hot_keys",
		"Heat-table slots at or above the hot threshold, summed over workers.",
		func() float64 { return float64(e.hotKeyCount()) })

	// Contention regulation (§3.9).
	reg.GaugeFunc("cicada_backoff_max_ns",
		"Globally coordinated maximum backoff chosen by the hill climber.",
		func() float64 { return float64(e.MaxBackoff()) })
	reg.CounterFunc("cicada_backoff_events_total", "Post-abort backoffs taken.",
		func() float64 {
			var n uint64
			for _, w := range e.workers {
				n += w.stats.backoffs.Load()
			}
			return float64(n)
		})

	rec := reg.Recorder()
	if rec == nil {
		rec = telemetry.NewRecorder(e.opts.Workers, flightRecorderDepth, AbortReasonNames())
		reg.SetRecorder(rec)
	}

	for _, w := range e.workers {
		t := &workerTel{
			abortLat: abortHist.Shard(w.id),
			gcDepth:  gcDepth.Shard(w.id),
			rec:      rec.Shard(w.id),
		}
		for p := range t.phase {
			t.phase[p] = phaseHists[p].Shard(w.id)
		}
		w.tel = t
	}
}
