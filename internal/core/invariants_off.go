//go:build !cicada_invariants

package core

// invariantsEnabled gates the runtime assertion hooks in this package (build
// tag cicada_invariants). In this build they compile to nothing.
const invariantsEnabled = false
