//go:build race

package core

// The race detector's instrumentation allocates, so allocation-budget tests
// skip themselves in race builds (the non-race CI job enforces the budgets).
const raceEnabled = true
