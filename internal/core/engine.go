// Package core implements the Cicada transaction engine: optimistic
// multi-version execution (§3.2), best-effort inlining hooks (§3.3),
// serializable multi-version validation with its performance optimizations
// (§3.4, §3.5), rapid garbage collection (§3.8), and contention regulation
// (§3.9), all on top of the multi-clock timestamp allocation in
// internal/clock (§3.1) and the version storage in internal/storage.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"cicada/internal/clock"
	"cicada/internal/storage"
	"cicada/internal/telemetry"
	"cicada/internal/trace"
)

// Errors returned by transaction operations.
var (
	// ErrAborted reports a concurrency conflict; the caller should retry
	// the transaction (Worker.Run does this automatically).
	ErrAborted = errors.New("cicada: transaction aborted")
	// ErrNotFound reports that no committed record version is visible at
	// the transaction's timestamp.
	ErrNotFound = errors.New("cicada: record not found")
	// ErrReadOnly reports a write attempted in a read-only transaction.
	ErrReadOnly = errors.New("cicada: write in read-only transaction")
	// ErrTxnClosed reports use of a finished transaction.
	ErrTxnClosed = errors.New("cicada: transaction is closed")
)

// TableID identifies a table within an Engine.
type TableID int

// Options configures an Engine. The zero value is not valid; use
// DefaultOptions and adjust.
type Options struct {
	// Workers is the number of worker threads (goroutines) that will run
	// transactions. Worker IDs are 0..Workers-1; worker 0 is the leader.
	Workers int
	// Inlining enables best-effort inlining and promotion (§3.3).
	Inlining bool
	// NoWaitPending makes readers speculatively ignore PENDING versions
	// instead of spin-waiting, as Hekaton does (Table 2 "No-wait").
	NoWaitPending bool
	// NoWriteLatestRule disables the write-latest-version-only early abort
	// for RMW accesses (Table 2 "No-latest").
	NoWriteLatestRule bool
	// NoSortWriteSet disables contention-aware write-set sorting (Table 2
	// "No-sort").
	NoSortWriteSet bool
	// NoPreCheck disables the early version consistency check (Table 2
	// "No-precheck").
	NoPreCheck bool
	// GCInterval is the minimum interval between a worker's quiescence
	// declarations; it bounds garbage collection frequency (§3.8, Fig 9).
	GCInterval time.Duration
	// BackoffUpdatePeriod is the leader's hill-climbing period (§3.9).
	BackoffUpdatePeriod time.Duration
	// BackoffStep is the hill-climbing step for the maximum backoff (§3.9).
	BackoffStep time.Duration
	// FixedMaxBackoff, when ≥ 0, freezes the maximum backoff (disabling
	// hill climbing) for the Figure 10 manual-backoff sweeps. A negative
	// value selects automatic contention regulation.
	FixedMaxBackoff time.Duration
	// AdaptiveSkipThreshold is the number of consecutive commits after
	// which a worker omits write-set sorting and the early consistency
	// check (§3.5). Paper default: 5.
	AdaptiveSkipThreshold int
	// PendingWaitLimit bounds how many times a transaction yields while
	// spin-waiting on one PENDING version before aborting with
	// AbortPendingWait. 0 (the default, matching the paper) waits
	// indefinitely; the writer is validating and resolves shortly.
	PendingWaitLimit int
	// HeatTableSize is the per-worker hot-key heat table size in slots,
	// rounded up to a power of two (heat.go). The table is a fixed-size
	// lossy sketch and never grows. Default 1024.
	HeatTableSize int
	// HeatHotThreshold is the heat counter value at or above which a record
	// counts as hot: hot write-set keys force write-set sorting and the
	// early consistency check despite a commit streak, and hot conflict
	// keys receive the full regulated backoff. Default 8.
	HeatHotThreshold int
	// HeatRTSSlackTicks, when > 0, enables coarse read-timestamp
	// maintenance for cold records: a committed read of a cold record
	// raises the version's rts this many clock ticks *beyond* the
	// transaction timestamp, so subsequent cold reads within the slack
	// window find rts already high enough and skip the shared-line CAS
	// entirely. rts only ever over-approximates — the sole cost is an
	// occasional conservative abort of a rare writer to a cold record —
	// so serializability is unaffected. Default 0 (exact rts everywhere).
	HeatRTSSlackTicks uint64
	// NoHeatTracking disables per-record heat tracking entirely: no bumps,
	// no per-record adaptive switching, no heat-weighted backoff, no
	// coarse rts maintenance. The §3.5 streak skip then gates on the
	// commit streak alone, as in the paper.
	NoHeatTracking bool
	// NoHeatBackoff disables only the heat weighting of post-abort backoff
	// (backoff.go), keeping the other heat consumers active.
	NoHeatBackoff bool
	// Clock configures timestamp allocation; set Clock.Centralized for the
	// Figure 7 shared-counter ablation.
	Clock clock.Options
	// Metrics, when non-nil, receives the engine's metric registrations and
	// per-worker instrumentation (abort taxonomy, phase latency histograms,
	// GC/clock/backoff gauges, aborted-transaction flight recorder). The
	// registry must have at least Workers shards. When nil, the engine runs
	// with counters only and adds no timing calls to the hot path.
	Metrics *telemetry.Registry
	// Trace, when non-nil, attaches the per-worker transaction tracer
	// (docs/OBSERVABILITY.md "Tracing"): sampled txn/phase/wait events and
	// always-on abort events flow into its ring buffers. The tracer must
	// have at least Workers shards. When nil, no trace checks run at all.
	Trace *trace.Tracer
}

// DefaultOptions returns the paper's default configuration for n workers.
func DefaultOptions(n int) Options {
	return Options{
		Workers:               n,
		Inlining:              true,
		GCInterval:            10 * time.Microsecond,
		BackoffUpdatePeriod:   5 * time.Millisecond,
		BackoffStep:           500 * time.Nanosecond,
		FixedMaxBackoff:       -1,
		AdaptiveSkipThreshold: 5,
		HeatTableSize:         1024,
		HeatHotThreshold:      8,
	}
}

// LogEntry describes one new version in a committed transaction's write or
// insert set, as handed to the durability Logger (§3.7).
type LogEntry struct {
	Table   TableID
	Record  storage.RecordID
	Data    []byte // nil for a delete
	Deleted bool
}

// Logger is the customizable durability hook invoked after validation and
// before the write phase (§3.4, §3.7). Returning an error aborts the
// transaction.
type Logger interface {
	Log(worker int, ts clock.Timestamp, entries []LogEntry) error
}

// Table pairs a storage table with its engine-assigned ID.
type Table struct {
	ID TableID
	st *storage.Table
}

// Storage exposes the underlying storage table (used by checkpointing).
func (t *Table) Storage() *storage.Table { return t.st }

// Engine is a Cicada database instance: a set of tables, a clock domain, and
// per-worker execution state.
type Engine struct {
	opts    Options
	clock   *clock.Domain
	tables  []*Table
	byName  map[string]*Table
	workers []*Worker
	logger  Logger

	// epoch counts completed quiescence rounds; it drives epoch-delayed
	// version reuse. It sits on its own cache line: every worker reads it
	// when batching limbo versions, and without the padding a leader bump
	// would also invalidate the neighbouring regulator/quiesce headers.
	_     [64]byte
	epoch atomic.Uint64
	_     [56]byte
	// quiesce holds one flag per worker, set by the worker during
	// maintenance and cleared by the leader after a full round; each flag
	// is padded to its own line (see quiesceFlag).
	quiesce []quiesceFlag
	// reg is the contention regulator (§3.9).
	reg regulator
}

// quiesceFlag is one worker's quiescence flag on its own cache line: every
// worker stores to its flag each maintenance pass, and an unpadded
// []atomic.Bool would pack 64 of them into one line, turning those
// independent stores into cross-core ping-pong.
type quiesceFlag struct {
	v atomic.Bool
	_ [63]byte
}

// Load returns the flag.
func (f *quiesceFlag) Load() bool { return f.v.Load() }

// Store sets the flag.
func (f *quiesceFlag) Store(b bool) { f.v.Store(b) }

// NewEngine creates an engine with the given options.
func NewEngine(opts Options) *Engine {
	if opts.Workers < 1 {
		panic("core: Options.Workers must be ≥ 1")
	}
	if opts.GCInterval <= 0 {
		opts.GCInterval = 10 * time.Microsecond
	}
	if opts.BackoffUpdatePeriod <= 0 {
		opts.BackoffUpdatePeriod = 5 * time.Millisecond
	}
	if opts.BackoffStep <= 0 {
		opts.BackoffStep = 500 * time.Nanosecond
	}
	if opts.AdaptiveSkipThreshold <= 0 {
		opts.AdaptiveSkipThreshold = 5
	}
	if opts.HeatTableSize <= 0 {
		opts.HeatTableSize = 1024
	}
	if opts.HeatHotThreshold <= 0 {
		opts.HeatHotThreshold = 8
	}
	e := &Engine{
		opts:    opts,
		clock:   clock.NewDomain(opts.Workers, opts.Clock),
		byName:  make(map[string]*Table),
		quiesce: make([]quiesceFlag, opts.Workers),
	}
	e.reg.init(&opts)
	e.workers = make([]*Worker, opts.Workers)
	for i := range e.workers {
		e.workers[i] = newWorker(e, i)
	}
	if opts.Metrics != nil {
		e.initTelemetry(opts.Metrics)
	}
	if opts.Trace != nil {
		e.initTrace(opts.Trace)
	}
	return e
}

// Options returns the engine's configuration.
func (e *Engine) Options() Options { return e.opts }

// Clock returns the engine's clock domain.
func (e *Engine) Clock() *clock.Domain { return e.clock }

// SetLogger installs the durability hook. It must be called before
// transactions run.
func (e *Engine) SetLogger(l Logger) { e.logger = l }

// CreateTable registers a new table. inlining may be disabled per table for
// the Figure 8 ablation; it is ANDed with Options.Inlining.
func (e *Engine) CreateTable(name string) *Table {
	if _, dup := e.byName[name]; dup {
		panic(fmt.Sprintf("core: duplicate table %q", name))
	}
	t := &Table{
		ID: TableID(len(e.tables)),
		st: storage.NewTable(name, e.opts.Workers, e.opts.Inlining),
	}
	e.tables = append(e.tables, t)
	e.byName[name] = t
	return t
}

// TableByID returns the table with the given ID.
func (e *Engine) TableByID(id TableID) *Table { return e.tables[id] }

// TableByName returns the named table, or nil.
func (e *Engine) TableByName(name string) *Table { return e.byName[name] }

// Tables returns all tables in creation order.
func (e *Engine) Tables() []*Table { return e.tables }

// Worker returns the per-worker execution handle for id.
func (e *Engine) Worker(id int) *Worker { return e.workers[id] }

// MaxBackoff returns the current globally coordinated maximum backoff.
func (e *Engine) MaxBackoff() time.Duration { return e.reg.max() }

// Epoch returns the number of completed quiescence rounds.
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// CommitsLive returns the current committed-transaction count across all
// workers; safe to call concurrently (used for live throughput sampling and
// by the contention regulator).
func (e *Engine) CommitsLive() uint64 {
	var n uint64
	for _, w := range e.workers {
		n += w.stats.commits.Load()
	}
	return n
}

// Stats aggregates all workers' counters. Safe to call while workers run:
// every counter is a single-writer atomic word, so the result may lag
// in-flight transactions but is never torn.
func (e *Engine) Stats() Stats {
	var s Stats
	for _, w := range e.workers {
		ws := w.stats.snapshot()
		s.add(&ws)
	}
	return s
}

// SpaceOverhead returns the total version count divided by the total record
// count minus one, as a fraction (Figure 9's space overhead metric). It is a
// racy scan intended for measurement, not coordination.
func (e *Engine) SpaceOverhead() float64 {
	var records, versions uint64
	for _, t := range e.tables {
		capacity := t.st.Cap()
		for rid := storage.RecordID(0); uint64(rid) < capacity; rid++ {
			h := t.st.Head(rid)
			if h == nil {
				continue
			}
			n := uint64(0)
			for v := h.Latest(); v != nil; v = v.Next() {
				n++
				if n > 1<<20 {
					break // defensive: racing chain mutation
				}
			}
			if n > 0 {
				records++
				versions += n
			}
		}
	}
	if records == 0 {
		return 0
	}
	return float64(versions)/float64(records) - 1
}

// Stats are per-worker transaction counters.
type Stats struct {
	// Commits counts committed transactions.
	Commits uint64
	// Aborts counts concurrency-control aborts (before any retries).
	Aborts uint64
	// UserAborts counts application-requested rollbacks.
	UserAborts uint64
	// AbortTime is the time spent executing transactions that aborted plus
	// backoff time, for the Figure 10 abort-time ratio.
	AbortTime time.Duration
	// BusyTime is the total time spent processing transactions.
	BusyTime time.Duration
	// AbortsByReason splits aborts by cause, indexed by AbortReason. The
	// entries other than AbortUser sum to Aborts; the AbortUser entry
	// mirrors UserAborts (user rollbacks are not concurrency-control
	// aborts and stay out of the Aborts aggregate, as before).
	AbortsByReason [NumAbortReasons]uint64
	// HeatAbortBumps / HeatWaitBumps count heat-table bumps by source:
	// attributed concurrency-control aborts and pending-version waits.
	HeatAbortBumps uint64
	HeatWaitBumps  uint64
	// HeatForcedChecks counts validations where a hot write-set key forced
	// write-set sorting and the early consistency check despite an active
	// §3.5 commit streak.
	HeatForcedChecks uint64
	// HeatScaledBackoffs counts post-abort backoffs shortened because the
	// conflict key was warm but below the hot threshold.
	HeatScaledBackoffs uint64
	// HeatRTSCoarse counts cold-record rts updates over-raised by the
	// configured slack; HeatRTSSkips counts cold-record reads that skipped
	// the rts CAS because a previous coarse raise already covered them.
	HeatRTSCoarse uint64
	HeatRTSSkips  uint64
}

func (s *Stats) add(o *Stats) {
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.UserAborts += o.UserAborts
	s.AbortTime += o.AbortTime
	s.BusyTime += o.BusyTime
	for i := range s.AbortsByReason {
		s.AbortsByReason[i] += o.AbortsByReason[i]
	}
	s.HeatAbortBumps += o.HeatAbortBumps
	s.HeatWaitBumps += o.HeatWaitBumps
	s.HeatForcedChecks += o.HeatForcedChecks
	s.HeatScaledBackoffs += o.HeatScaledBackoffs
	s.HeatRTSCoarse += o.HeatRTSCoarse
	s.HeatRTSSkips += o.HeatRTSSkips
}

// AbortRate returns aborts / (aborts + commits).
func (s *Stats) AbortRate() float64 {
	total := s.Aborts + s.Commits
	if total == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(total)
}

// Worker is the per-thread execution context: reusable transaction state,
// the version pool, the garbage collection queue, and maintenance bookkeeping.
// A Worker must only be used from one goroutine at a time.
type Worker struct {
	id  int
	eng *Engine

	pool storage.VersionPool
	txn  Txn
	rng  *rand.Rand
	// stats holds the worker's counters as single-writer atomic words, so
	// the leader's contention regulator, Engine.Stats, and live scrapers
	// read them without racing the worker.
	stats workerStats
	// tel caches telemetry shard pointers (phase histograms, GC gauge,
	// flight recorder); nil when Options.Metrics is unset.
	tel *workerTel
	// tr is the worker's trace event ring; nil when Options.Trace is unset,
	// so an untraced engine pays one nil check per instrumentation site.
	tr *trace.Shard

	// gcQueue is the local garbage collection queue (§3.8); items are
	// appended at commit and consumed from the front once min_rts passes.
	gcQueue []gcItem
	gcHead  int
	limbo   []limboBatch
	// limboSpare recycles drained limbo batches (with their entry/free
	// slice capacity) so steady-state epoch turnover does not allocate.
	limboSpare []limboBatch
	// gcScratch is collect's reusable detached-version staging buffer.
	gcScratch   []limboEntry
	lastQuiesce time.Time

	// consecutiveCommits drives adaptive omission of write-set sorting and
	// the early consistency check (§3.5).
	consecutiveCommits int

	// heat tracks recent per-record contention on this worker (heat.go):
	// bumped on attributed aborts and pending waits, consumed by the
	// per-record adaptive switching in validate.go and backoff.go.
	heat heatTable
}

func newWorker(e *Engine, id int) *Worker {
	w := &Worker{
		id:  id,
		eng: e,
		rng: rand.New(rand.NewSource(int64(id)*1_000_003 + 17)),
	}
	w.txn.worker = w
	w.txn.eng = e
	w.txn.own.init(64)
	w.heat.init(e.opts.HeatTableSize)
	return w
}

// ID returns the worker's thread ID.
func (w *Worker) ID() int { return w.id }

// Stats returns a copy of the worker's counters; safe to call from any
// goroutine while the worker runs.
func (w *Worker) Stats() Stats { return w.stats.snapshot() }

// Begin starts a read-write transaction.
func (w *Worker) Begin() *Txn {
	t := &w.txn
	t.begin(w.eng.clock.NewWriteTimestamp(w.id), false)
	return t
}

// BeginRO starts a read-only transaction at thread.rts. Read-only
// transactions never track or validate their read set and always see a
// consistent snapshot (§3.1).
func (w *Worker) BeginRO() *Txn {
	t := &w.txn
	t.begin(w.eng.clock.ReadTimestamp(w.id), true)
	return t
}

// Run executes fn inside a read-write transaction, retrying on ErrAborted
// with the engine's contention regulation. Any other error from fn aborts
// the transaction and is returned.
//
//cicada:noalloc
func (w *Worker) Run(fn func(t *Txn) error) error {
	for {
		start := time.Now()
		t := w.Begin()
		err := fn(t)
		if err == nil {
			err = t.Commit()
		} else {
			t.Abort()
		}
		w.stats.addBusyTime(time.Since(start))
		if err == nil {
			w.Maintain()
			return nil
		}
		if !errors.Is(err, ErrAborted) {
			w.stats.incUserAbort()
			w.Maintain()
			return err
		}
		w.stats.addAbortTime(time.Since(start))
		w.backoff()
		w.Maintain()
	}
}

// AbortedError is ErrAborted plus the final attempt's abort-taxonomy
// reason; RunLimited returns it when a retry budget is exhausted.
// errors.Is(err, ErrAborted) holds, so retry loops written against the
// sentinel keep working.
type AbortedError struct {
	// Reason classifies the last attempt's conflict (stats.go taxonomy).
	Reason AbortReason
}

func (e *AbortedError) Error() string {
	return "cicada: transaction aborted (" + e.Reason.String() + ")"
}

// Is makes errors.Is(err, ErrAborted) true for exhausted retry budgets.
func (e *AbortedError) Is(target error) bool { return target == ErrAborted }

// RunLimited is Run with a bounded conflict-retry budget: after attempts
// tries (attempts ≥ 1) it gives up and returns an *AbortedError carrying
// the final attempt's abort reason, instead of retrying forever. The
// network server uses it to bound per-request work under contention and to
// map the abort taxonomy onto wire error codes. attempts ≤ 0 behaves
// exactly like Run. The exhausted-budget error allocates; that is the cold
// give-up path, never the steady-state commit path.
func (w *Worker) RunLimited(fn func(t *Txn) error, attempts int) error {
	if attempts <= 0 {
		return w.Run(fn)
	}
	for tries := 1; ; tries++ {
		start := time.Now()
		t := w.Begin()
		err := fn(t)
		if err == nil {
			err = t.Commit()
		} else {
			t.Abort()
		}
		w.stats.addBusyTime(time.Since(start))
		if err == nil {
			w.Maintain()
			return nil
		}
		if !errors.Is(err, ErrAborted) {
			w.stats.incUserAbort()
			w.Maintain()
			return err
		}
		w.stats.addAbortTime(time.Since(start))
		if tries >= attempts {
			w.Maintain()
			return &AbortedError{Reason: t.lastCC}
		}
		w.backoff()
		w.Maintain()
	}
}

// RunExternal is Run with external consistency (§3.1): it does not return
// until min_wts exceeds the committed transaction's timestamp, so once the
// caller observes the commit, every future transaction on any worker is
// serialized after it — commit acknowledgment order matches timestamp
// order. The paper reports roughly 100 µs of added latency; other pending
// transactions continue during the wait. All workers must keep running
// maintenance (Run/RunRO/Idle) or min_wts cannot advance.
//
//cicada:noalloc
func (w *Worker) RunExternal(fn func(t *Txn) error) error {
	for {
		start := time.Now()
		t := w.Begin()
		ts := t.ts
		err := fn(t)
		if err == nil {
			err = t.Commit()
		} else {
			t.Abort()
		}
		w.stats.addBusyTime(time.Since(start))
		if err == nil {
			w.Maintain()
			for w.eng.clock.MinWTS() <= ts {
				w.Idle()
			}
			return nil
		}
		if !errors.Is(err, ErrAborted) {
			w.stats.incUserAbort()
			w.Maintain()
			return err
		}
		w.stats.addAbortTime(time.Since(start))
		w.backoff()
		w.Maintain()
	}
}

// ObserveTimestamp establishes causal ordering (§3.1): after observing a
// timestamp from another thread or system, the worker's future transactions
// receive later timestamps. The clock adjustment is instant because
// Cicada's multi-clock does not tie clock increments to real time, and
// one-sided synchronization corrects the drift.
func (w *Worker) ObserveTimestamp(ts clock.Timestamp) {
	w.eng.clock.AdvanceForCausality(w.id, ts)
}

// RunRO executes fn inside a read-only transaction. Read-only transactions
// cannot abort due to conflicts.
//
//cicada:noalloc
func (w *Worker) RunRO(fn func(t *Txn) error) error {
	start := time.Now()
	t := w.BeginRO()
	err := fn(t)
	if err == nil {
		err = t.Commit()
	} else {
		t.Abort()
	}
	w.stats.addBusyTime(time.Since(start))
	w.Maintain()
	return err
}

// SnapshotTS returns the timestamp a read-only transaction would run at now;
// exposed for the snapshot-staleness measurement (§4.6).
func (w *Worker) SnapshotTS() clock.Timestamp { return w.eng.clock.ReadTimestamp(w.id) }

// CurrentTS returns the worker's last allocated write timestamp.
func (w *Worker) CurrentTS() clock.Timestamp { return w.eng.clock.WTS(w.id) }
