package core

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"cicada/internal/clock"
	"cicada/internal/storage"
)

func newTestEngine(workers int, mutate func(*Options)) *Engine {
	opts := DefaultOptions(workers)
	if mutate != nil {
		mutate(&opts)
	}
	return NewEngine(opts)
}

// advanceEpochs drives maintenance on every worker until n quiescence rounds
// complete. Safe only when no worker goroutines are running.
func advanceEpochs(t *testing.T, e *Engine, n uint64) {
	t.Helper()
	target := e.Epoch() + n
	deadline := time.Now().Add(5 * time.Second)
	for e.Epoch() < target {
		if time.Now().After(deadline) {
			t.Fatalf("epoch stuck at %d (target %d)", e.Epoch(), target)
		}
		for i := 0; i < e.Options().Workers; i++ {
			e.Worker(i).Idle()
		}
		time.Sleep(20 * time.Microsecond)
	}
}

func mustInsert(t *testing.T, w *Worker, tbl *Table, data []byte) storage.RecordID {
	t.Helper()
	var rid storage.RecordID
	err := w.Run(func(tx *Txn) error {
		r, buf, err := tx.Insert(tbl, len(data))
		if err != nil {
			return err
		}
		copy(buf, data)
		rid = r
		return nil
	})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	return rid
}

func mustRead(t *testing.T, w *Worker, tbl *Table, rid storage.RecordID) []byte {
	t.Helper()
	var out []byte
	err := w.Run(func(tx *Txn) error {
		d, err := tx.Read(tbl, rid)
		if err != nil {
			return err
		}
		out = append([]byte(nil), d...)
		return nil
	})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return out
}

func TestBasicCRUD(t *testing.T) {
	e := newTestEngine(1, nil)
	tbl := e.CreateTable("t")
	w := e.Worker(0)

	rid := mustInsert(t, w, tbl, []byte("hello"))
	if got := mustRead(t, w, tbl, rid); string(got) != "hello" {
		t.Fatalf("read %q", got)
	}

	if err := w.Run(func(tx *Txn) error {
		buf, err := tx.Update(tbl, rid, -1)
		if err != nil {
			return err
		}
		copy(buf, "HELLO")
		return nil
	}); err != nil {
		t.Fatalf("update: %v", err)
	}
	if got := mustRead(t, w, tbl, rid); string(got) != "HELLO" {
		t.Fatalf("after update: %q", got)
	}

	if err := w.Run(func(tx *Txn) error { return tx.Delete(tbl, rid) }); err != nil {
		t.Fatalf("delete: %v", err)
	}
	err := w.Run(func(tx *Txn) error {
		_, err := tx.Read(tbl, rid)
		return err
	})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after delete: %v", err)
	}
}

func TestUpdateResize(t *testing.T) {
	e := newTestEngine(1, nil)
	tbl := e.CreateTable("t")
	w := e.Worker(0)
	rid := mustInsert(t, w, tbl, []byte("abc"))
	if err := w.Run(func(tx *Txn) error {
		buf, err := tx.Update(tbl, rid, 5)
		if err != nil {
			return err
		}
		if len(buf) != 5 || string(buf[:3]) != "abc" || buf[3] != 0 || buf[4] != 0 {
			t.Errorf("resized buffer %q", buf)
		}
		copy(buf, "xyzzy")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := mustRead(t, w, tbl, rid); string(got) != "xyzzy" {
		t.Fatalf("after resize: %q", got)
	}
}

func TestReadOwnWrites(t *testing.T) {
	e := newTestEngine(1, nil)
	tbl := e.CreateTable("t")
	w := e.Worker(0)
	rid := mustInsert(t, w, tbl, []byte("v0"))

	if err := w.Run(func(tx *Txn) error {
		// Read then update then read again: must see own write.
		d, err := tx.Read(tbl, rid)
		if err != nil {
			return err
		}
		if string(d) != "v0" {
			t.Errorf("initial read %q", d)
		}
		buf, err := tx.Update(tbl, rid, -1)
		if err != nil {
			return err
		}
		copy(buf, "v1")
		d2, err := tx.Read(tbl, rid)
		if err != nil {
			return err
		}
		if string(d2) != "v1" {
			t.Errorf("read-own-write %q", d2)
		}
		// Insert then read.
		r2, buf2, err := tx.Insert(tbl, 2)
		if err != nil {
			return err
		}
		copy(buf2, "n0")
		d3, err := tx.Read(tbl, r2)
		if err != nil {
			return err
		}
		if string(d3) != "n0" {
			t.Errorf("read-own-insert %q", d3)
		}
		// Delete then read.
		if err := tx.Delete(tbl, rid); err != nil {
			return err
		}
		if _, err := tx.Read(tbl, rid); !errors.Is(err, ErrNotFound) {
			t.Errorf("read-own-delete: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertThenDeleteSameTxn(t *testing.T) {
	e := newTestEngine(1, nil)
	tbl := e.CreateTable("t")
	w := e.Worker(0)
	if err := w.Run(func(tx *Txn) error {
		rid, buf, err := tx.Insert(tbl, 3)
		if err != nil {
			return err
		}
		copy(buf, "xxx")
		if err := tx.Delete(tbl, rid); err != nil {
			return err
		}
		if _, err := tx.Read(tbl, rid); !errors.Is(err, ErrNotFound) {
			t.Errorf("read after insert+delete: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAbortRollsBack(t *testing.T) {
	e := newTestEngine(1, nil)
	tbl := e.CreateTable("t")
	w := e.Worker(0)
	rid := mustInsert(t, w, tbl, []byte("keep"))

	sentinel := errors.New("user rollback")
	err := w.Run(func(tx *Txn) error {
		buf, err := tx.Update(tbl, rid, -1)
		if err != nil {
			return err
		}
		copy(buf, "lost")
		if _, _, err := tx.Insert(tbl, 4); err != nil {
			return err
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
	if got := mustRead(t, w, tbl, rid); string(got) != "keep" {
		t.Fatalf("rollback leaked: %q", got)
	}
	if s := w.Stats(); s.UserAborts != 1 {
		t.Fatalf("UserAborts = %d", s.UserAborts)
	}
}

// TestMultiVersionReadersSeeSnapshot: a transaction with an earlier
// timestamp reads the pre-update version even after a later transaction
// commits an update — the core MVCC benefit over 1VCC.
func TestMultiVersionReadersSeeSnapshot(t *testing.T) {
	e := newTestEngine(2, nil)
	tbl := e.CreateTable("t")
	w0, w1 := e.Worker(0), e.Worker(1)
	rid := mustInsert(t, w0, tbl, []byte("old"))

	reader := w0.Begin() // earlier timestamp
	writerDone := make(chan error, 1)
	go func() {
		writerDone <- w1.Run(func(tx *Txn) error {
			buf, err := tx.Update(tbl, rid, -1)
			if err != nil {
				return err
			}
			copy(buf, "new")
			return nil
		})
	}()
	if err := <-writerDone; err != nil {
		t.Fatalf("writer: %v", err)
	}
	d, err := reader.Read(tbl, rid)
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	if string(d) != "old" {
		t.Fatalf("reader saw %q, want old snapshot", d)
	}
	if err := reader.Commit(); err != nil {
		t.Fatalf("reader commit: %v", err)
	}
}

// TestWriteBelowReadAborts: a writer with an earlier timestamp must abort if
// the version it would supersede was already read at a later timestamp.
func TestWriteBelowReadAborts(t *testing.T) {
	e := newTestEngine(2, nil)
	tbl := e.CreateTable("t")
	w0, w1 := e.Worker(0), e.Worker(1)
	rid := mustInsert(t, w0, tbl, []byte("v"))

	writer := w0.Begin() // earlier timestamp
	// Later-timestamp reader commits, raising the version's rts.
	if err := w1.Run(func(tx *Txn) error {
		_, err := tx.Read(tbl, rid)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	_, err := writer.Update(tbl, rid, -1)
	if !errors.Is(err, ErrAborted) {
		writer.Abort()
		t.Fatalf("early abort missing: %v", err)
	}
}

// TestAbsentReadBlocksEarlierWriter covers the absent-read/blind-write race:
// a later-timestamp transaction that observed the record as absent must
// prevent an earlier-timestamp writer from committing below it.
func TestAbsentReadBlocksEarlierWriter(t *testing.T) {
	e := newTestEngine(2, nil)
	tbl := e.CreateTable("t")
	first := tbl.Storage().Reserve(1) // head exists, no versions

	writer := e.Worker(0).Begin() // earlier timestamp
	if err := e.Worker(1).Run(func(tx *Txn) error {
		_, err := tx.Read(tbl, first)
		if !errors.Is(err, ErrNotFound) {
			t.Errorf("absent read: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	buf, err := writer.Write(tbl, first, 1)
	if err == nil {
		buf[0] = 'x'
		err = writer.Commit()
	} else {
		writer.Abort()
	}
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("blind write below absent read committed: %v", err)
	}
}

func TestConcurrentRMWExactlyOneWins(t *testing.T) {
	e := newTestEngine(2, nil)
	tbl := e.CreateTable("t")
	rid := mustInsert(t, e.Worker(0), tbl, []byte{0})

	t0 := e.Worker(0).Begin()
	t1 := e.Worker(1).Begin()
	var errs [2]error
	stage := func(tx *Txn) error {
		buf, err := tx.Update(tbl, rid, -1)
		if err != nil {
			return err
		}
		buf[0]++
		return nil
	}
	errs[0] = stage(t0)
	errs[1] = stage(t1)
	done := make(chan struct{})
	go func() {
		if errs[1] == nil {
			errs[1] = t1.Commit()
		} else {
			t1.Abort()
		}
		close(done)
	}()
	if errs[0] == nil {
		errs[0] = t0.Commit()
	} else {
		t0.Abort()
	}
	<-done
	aborted := 0
	for _, err := range errs {
		if errors.Is(err, ErrAborted) {
			aborted++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if aborted != 1 {
		t.Fatalf("aborted = %d, want exactly 1", aborted)
	}
	if got := mustRead(t, e.Worker(0), tbl, rid); got[0] != 1 {
		t.Fatalf("counter = %d, want 1", got[0])
	}
}

func TestReadOnlySnapshot(t *testing.T) {
	e := newTestEngine(2, nil)
	tbl := e.CreateTable("t")
	w0, w1 := e.Worker(0), e.Worker(1)
	rid := mustInsert(t, w0, tbl, []byte("s0"))
	advanceEpochs(t, e, 3) // let min_wts advance past the insert

	ro := w1.BeginRO()
	if !ro.ReadOnly() {
		t.Fatal("not read-only")
	}
	d, err := ro.Read(tbl, rid)
	if err != nil {
		t.Fatalf("ro read: %v", err)
	}
	if string(d) != "s0" {
		t.Fatalf("ro read %q", d)
	}
	if _, err := ro.Write(tbl, rid, 1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write in RO: %v", err)
	}
	if ro.Timestamp() >= e.Clock().MinWTS() {
		t.Fatalf("RO ts %v not below min_wts %v", ro.Timestamp(), e.Clock().MinWTS())
	}
	if err := ro.Commit(); err != nil {
		t.Fatalf("ro commit: %v", err)
	}
}

func TestGCPrunesVersionChains(t *testing.T) {
	e := newTestEngine(1, nil)
	tbl := e.CreateTable("t")
	w := e.Worker(0)
	rid := mustInsert(t, w, tbl, []byte{0})
	for i := 0; i < 200; i++ {
		if err := w.Run(func(tx *Txn) error {
			buf, err := tx.Update(tbl, rid, -1)
			if err != nil {
				return err
			}
			buf[0] = byte(i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			advanceEpochs(t, e, 1)
		}
	}
	advanceEpochs(t, e, 4)
	// One more committed write triggers collection of everything earlier.
	if err := w.Run(func(tx *Txn) error {
		buf, err := tx.Update(tbl, rid, -1)
		if err != nil {
			return err
		}
		buf[0] = 255
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	advanceEpochs(t, e, 4)
	w.collectGarbage()
	n := 0
	for v := tbl.Storage().Head(rid).Latest(); v != nil; v = v.Next() {
		n++
	}
	if n > 3 {
		t.Fatalf("version chain length %d after GC", n)
	}
	if overhead := e.SpaceOverhead(); overhead > 3 {
		t.Fatalf("space overhead %.2f", overhead)
	}
}

func TestDeleteReclaimsRecordID(t *testing.T) {
	e := newTestEngine(1, nil)
	tbl := e.CreateTable("t")
	w := e.Worker(0)
	rid := mustInsert(t, w, tbl, []byte("gone"))
	if err := w.Run(func(tx *Txn) error { return tx.Delete(tbl, rid) }); err != nil {
		t.Fatal(err)
	}
	// Drive maintenance until the tombstone is collected and the rid freed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		advanceEpochs(t, e, 2)
		w.collectGarbage()
		w.processLimbo()
		if h := tbl.Storage().Head(rid); h.Latest() == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tombstone never collected")
		}
	}
	// The record ID free itself is limbo-delayed; let it drain.
	advanceEpochs(t, e, limboDelayEpochs+2)
	w.processLimbo()
	again := mustInsert(t, w, tbl, []byte("new"))
	if again != rid {
		t.Fatalf("rid %d not reused (got %d)", rid, again)
	}
	if got := mustRead(t, w, tbl, again); string(got) != "new" {
		t.Fatalf("reused rid data %q", got)
	}
}

func TestInlinePromotion(t *testing.T) {
	e := newTestEngine(1, nil)
	tbl := e.CreateTable("t")
	w := e.Worker(0)
	rid := mustInsert(t, w, tbl, []byte("cold")) // inline slot taken
	// Update: inline occupied, so the new latest version is non-inline.
	if err := w.Run(func(tx *Txn) error {
		buf, err := tx.Update(tbl, rid, -1)
		if err != nil {
			return err
		}
		copy(buf, "COLD")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	h := tbl.Storage().Head(rid)
	if h.Latest().Inline() {
		t.Fatal("latest unexpectedly inline")
	}
	// Age the record past min_rts and let GC release the old inline slot.
	deadline := time.Now().Add(5 * time.Second)
	for h.InlineVersion().Status() != storage.StatusUnused {
		advanceEpochs(t, e, 2)
		w.collectGarbage()
		w.processLimbo()
		if time.Now().After(deadline) {
			t.Fatal("inline slot never released")
		}
	}
	// A read should now promote the non-inline latest into the inline slot.
	deadline = time.Now().Add(5 * time.Second)
	for !h.Latest().Inline() {
		if got := mustRead(t, w, tbl, rid); string(got) != "COLD" {
			t.Fatalf("read %q", got)
		}
		advanceEpochs(t, e, 2)
		if time.Now().After(deadline) {
			t.Fatal("promotion never happened")
		}
	}
	if got := mustRead(t, w, tbl, rid); string(got) != "COLD" {
		t.Fatalf("post-promotion read %q", got)
	}
}

func TestInliningDisabled(t *testing.T) {
	e := newTestEngine(1, func(o *Options) { o.Inlining = false })
	tbl := e.CreateTable("t")
	w := e.Worker(0)
	rid := mustInsert(t, w, tbl, []byte("x"))
	if tbl.Storage().Head(rid).Latest().Inline() {
		t.Fatal("inline version used with inlining disabled")
	}
}

func TestLoggerReceivesWriteSet(t *testing.T) {
	e := newTestEngine(1, nil)
	tbl := e.CreateTable("t")
	var got []LogEntry
	e.SetLogger(loggerFunc(func(worker int, ts clock.Timestamp, entries []LogEntry) error {
		for _, en := range entries {
			c := en
			c.Data = append([]byte(nil), en.Data...)
			got = append(got, c)
		}
		return nil
	}))
	w := e.Worker(0)
	rid := mustInsert(t, w, tbl, []byte("logme"))
	if len(got) != 1 || string(got[0].Data) != "logme" || got[0].Record != rid {
		t.Fatalf("log entries %+v", got)
	}
	if err := w.Run(func(tx *Txn) error { return tx.Delete(tbl, rid) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[1].Deleted {
		t.Fatalf("delete log entries %+v", got)
	}
}

func TestFailingLoggerAbortsTxn(t *testing.T) {
	e := newTestEngine(1, nil)
	tbl := e.CreateTable("t")
	boom := errors.New("disk full")
	e.SetLogger(loggerFunc(func(worker int, ts clock.Timestamp, entries []LogEntry) error {
		return boom
	}))
	w := e.Worker(0)
	tx := w.Begin()
	_, buf, err := tx.Insert(tbl, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf[0] = 1
	if err := tx.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatalf("commit with failing logger: %v", err)
	}
}

func TestClosedTxnRejected(t *testing.T) {
	e := newTestEngine(1, nil)
	tbl := e.CreateTable("t")
	w := e.Worker(0)
	tx := w.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(tbl, 0); !errors.Is(err, ErrTxnClosed) {
		t.Fatalf("read on closed txn: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnClosed) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestTableRegistry(t *testing.T) {
	e := newTestEngine(1, nil)
	a := e.CreateTable("a")
	b := e.CreateTable("b")
	if e.TableByName("a") != a || e.TableByID(b.ID) != b {
		t.Fatal("registry lookup failed")
	}
	if len(e.Tables()) != 2 {
		t.Fatalf("tables = %d", len(e.Tables()))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate table did not panic")
		}
	}()
	e.CreateTable("a")
}

func TestStatsAccumulate(t *testing.T) {
	e := newTestEngine(1, nil)
	tbl := e.CreateTable("t")
	w := e.Worker(0)
	mustInsert(t, w, tbl, []byte("x"))
	s := e.Stats()
	if s.Commits != 1 {
		t.Fatalf("commits = %d", s.Commits)
	}
	if r := s.AbortRate(); r != 0 {
		t.Fatalf("abort rate = %f", r)
	}
}

func TestWriteAfterReadUpgrades(t *testing.T) {
	e := newTestEngine(1, nil)
	tbl := e.CreateTable("t")
	w := e.Worker(0)
	rid := mustInsert(t, w, tbl, []byte("ab"))
	if err := w.Run(func(tx *Txn) error {
		if _, err := tx.Read(tbl, rid); err != nil {
			return err
		}
		buf, err := tx.Write(tbl, rid, 2)
		if err != nil {
			return err
		}
		copy(buf, "cd")
		d, err := tx.Read(tbl, rid)
		if err != nil {
			return err
		}
		if string(d) != "cd" {
			t.Errorf("own write after read: %q", d)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := mustRead(t, w, tbl, rid); string(got) != "cd" {
		t.Fatalf("final %q", got)
	}
}

func TestReadDirect(t *testing.T) {
	e := newTestEngine(1, nil)
	tbl := e.CreateTable("t")
	w := e.Worker(0)
	rid := mustInsert(t, w, tbl, []byte("direct"))
	advanceEpochs(t, e, 3)
	d, ok := w.ReadDirect(tbl, rid)
	if !ok || string(d) != "direct" {
		t.Fatalf("direct read %q %v", d, ok)
	}
	if _, ok := w.ReadDirect(tbl, rid+100); ok {
		t.Fatal("direct read of absent record succeeded")
	}
}

// loggerFunc adapts a function to the Logger interface.
type loggerFunc func(worker int, ts clock.Timestamp, entries []LogEntry) error

func (f loggerFunc) Log(worker int, ts clock.Timestamp, entries []LogEntry) error {
	return f(worker, ts, entries)
}

func u64(b []byte) uint64       { return binary.LittleEndian.Uint64(b) }
func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
