package core

import (
	"math/bits"
	"sync/atomic"
)

// heatTable is a per-worker lossy sketch of record heat: how often a record
// key (ownKey form) has recently caused a concurrency-control abort or a
// pending-version wait on this worker. It drives the per-record adaptive
// optimizations (validate.go write-set checks, backoff.go heat-weighted
// contention regulation, and coarse rts maintenance for cold records).
//
// The table is a fixed-size open-addressed array with fibonacci hashing
// (same scheme as ownTable) and a bounded probe window. It never grows and
// never allocates after init: when the probe window is full of other keys,
// the bump ages the coldest entry instead of finding a free slot — classic
// lossy admission, so a reported heat never exceeds the key's true bump
// count. Counters saturate at 8 bits (heatMax) and are periodically halved,
// driven by the leader's quiescence epoch (maybeDecay), so heat measures
// *recent* contention.
//
// Concurrency: each worker owns one table and is its only writer; bump,
// halving, and decay bookkeeping are owner-only. Counters and keys are
// single-writer atomic words (the workerStats discipline) so telemetry
// gauges and the trace exporter's contention report may read any table
// concurrently. A cross-thread reader can observe a key/heat pair from two
// different moments — the sketch is diagnostic and lossy by design.
type heatTable struct {
	keys  []atomic.Uint64
	heats []atomic.Uint32
	shift uint // 64 - log2(len(keys)), for fibonacci hashing

	// lastDecayEpoch remembers the engine epoch at the last halving;
	// owner-only.
	lastDecayEpoch uint64
}

const (
	// heatMinSize is the smallest table size.
	heatMinSize = 64
	// heatProbeWindow bounds open-addressing probes: a key lives within
	// this many slots of its hash slot or not at all.
	heatProbeWindow = 8
	// heatMax is the saturation value of the 8-bit counters.
	heatMax = 255
	// heatDecayEpochs is how many quiescence epochs pass between halvings.
	// Epochs complete roughly every GCInterval under load, so the default
	// 10 µs interval halves heat on a sub-millisecond cadence: hot keys
	// stay hot only while they keep causing conflicts.
	heatDecayEpochs = 32
)

// init sizes the table to the next power of two ≥ size (min heatMinSize).
// The only allocation the table ever performs.
func (h *heatTable) init(size int) {
	n := heatMinSize
	for n < size {
		n <<= 1
	}
	h.keys = make([]atomic.Uint64, n)
	h.heats = make([]atomic.Uint32, n)
	h.shift = uint(64 - bits.TrailingZeros(uint(n)))
}

//cicada:noalloc
func (h *heatTable) slot(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15) >> h.shift)
}

// bump adds one unit of heat to key, saturating at heatMax. When the probe
// window holds only other keys, the coldest of them is aged by one instead;
// if that frees it (heat 0), the slot is claimed for key. Owner-only.
//
//cicada:noalloc
func (h *heatTable) bump(key uint64) {
	mask := len(h.keys) - 1
	s := h.slot(key)
	minIdx := -1
	minHeat := uint32(heatMax + 1)
	for p := 0; p < heatProbeWindow; p++ {
		i := (s + p) & mask
		ht := h.heats[i].Load()
		if ht == 0 {
			// Free slot (never used, or decayed to zero): claim it.
			h.keys[i].Store(key)
			h.heats[i].Store(1)
			return
		}
		if h.keys[i].Load() == key {
			if ht < heatMax {
				h.heats[i].Store(ht + 1)
			}
			return
		}
		if ht < minHeat {
			minHeat, minIdx = ht, i
		}
	}
	// Window full of hotter keys: age the coldest (lossy admission). A new
	// key displaces an old one only after draining its remaining heat, so
	// get(k) ≤ k's true bump count always holds.
	if minHeat <= 1 {
		h.keys[minIdx].Store(key)
		h.heats[minIdx].Store(1)
		return
	}
	h.heats[minIdx].Store(minHeat - 1)
}

// get returns the key's current heat, 0 when untracked. Safe from any
// goroutine.
//
//cicada:noalloc
func (h *heatTable) get(key uint64) uint32 {
	mask := len(h.keys) - 1
	s := h.slot(key)
	for p := 0; p < heatProbeWindow; p++ {
		i := (s + p) & mask
		if h.keys[i].Load() == key {
			if ht := h.heats[i].Load(); ht != 0 {
				return ht
			}
		}
	}
	return 0
}

// halve decays every counter by one bit. Owner-only.
//
//cicada:noalloc
func (h *heatTable) halve() {
	for i := range h.heats {
		if ht := h.heats[i].Load(); ht != 0 {
			h.heats[i].Store(ht >> 1)
		}
	}
}

// maybeDecay halves the table once heatDecayEpochs quiescence rounds have
// completed since the last halving. Called from Worker.Maintain; the epoch
// is advanced by the leader's quiescence pass, so decay needs no clock reads
// and no coordination. Owner-only.
//
//cicada:noalloc
func (h *heatTable) maybeDecay(epoch uint64) {
	if epoch-h.lastDecayEpoch < heatDecayEpochs {
		return
	}
	h.lastDecayEpoch = epoch
	h.halve()
}

// hotCount returns the number of slots at or above the hot threshold. Safe
// from any goroutine; used by the core_heat_hot_keys gauge.
func (h *heatTable) hotCount(threshold uint32) int {
	n := 0
	for i := range h.heats {
		if h.heats[i].Load() >= threshold {
			n++
		}
	}
	return n
}

// KeyHeat sums a key's heat across all workers' tables: the engine-wide view
// used by the trace exporter's contention report. Safe while workers run.
func (e *Engine) KeyHeat(key uint64) uint64 {
	if e.opts.NoHeatTracking {
		return 0
	}
	var n uint64
	for _, w := range e.workers {
		n += uint64(w.heat.get(key))
	}
	return n
}

// hotKeyCount sums per-worker hot-slot counts (a key hot on two workers
// counts twice; the gauge is a load indicator, not a distinct-key count).
func (e *Engine) hotKeyCount() int {
	if e.opts.NoHeatTracking {
		return 0
	}
	threshold := uint32(e.opts.HeatHotThreshold)
	n := 0
	for _, w := range e.workers {
		n += w.heat.hotCount(threshold)
	}
	return n
}
