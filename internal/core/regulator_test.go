package core

import (
	"math/rand"
	"testing"
	"time"

	"cicada/internal/storage"
)

// TestRegulatorClimbsTowardOptimum feeds the hill climber a synthetic
// throughput curve with a single maximum and checks that the maximum
// backoff converges near the optimum from both directions (§3.9).
func TestRegulatorClimbsTowardOptimum(t *testing.T) {
	const optimum = 20_000 // ns
	curve := func(maxNs float64) float64 {
		// Concave with peak at optimum.
		d := maxNs - optimum
		return 1_000_000 - d*d/1e3
	}
	for _, start := range []int64{0, 100_000} {
		var r regulator
		opts := DefaultOptions(1)
		opts.BackoffStep = 1000 * time.Nanosecond
		opts.BackoffUpdatePeriod = time.Microsecond
		r.init(&opts)
		r.maxNs.Store(start)
		rng := rand.New(rand.NewSource(1))
		now := time.Now()
		commits := uint64(0)
		for i := 0; i < 3000; i++ {
			now = now.Add(time.Millisecond)
			commits += uint64(curve(float64(r.maxNs.Load())) / 1000)
			r.maybeAdjust(now, commits, rng)
		}
		got := float64(r.maxNs.Load())
		if got < optimum/4 || got > optimum*4 {
			t.Errorf("start %d: converged to %.0f ns, want near %d", start, got, optimum)
		}
	}
}

func TestRegulatorFixedModeNeverMoves(t *testing.T) {
	var r regulator
	opts := DefaultOptions(1)
	opts.FixedMaxBackoff = 42 * time.Microsecond
	r.init(&opts)
	rng := rand.New(rand.NewSource(1))
	now := time.Now()
	for i := 0; i < 100; i++ {
		now = now.Add(10 * time.Millisecond)
		r.maybeAdjust(now, uint64(i*1000), rng)
	}
	if got := r.max(); got != 42*time.Microsecond {
		t.Fatalf("fixed backoff moved to %v", got)
	}
}

func TestRegulatorClampsAtZeroAndCeiling(t *testing.T) {
	var r regulator
	opts := DefaultOptions(1)
	opts.BackoffStep = time.Millisecond
	opts.BackoffUpdatePeriod = time.Microsecond
	r.init(&opts)
	rng := rand.New(rand.NewSource(2))
	now := time.Now()
	for i := 0; i < 10_000; i++ {
		now = now.Add(time.Millisecond)
		r.maybeAdjust(now, uint64(i), rng) // flat throughput: random walk
		if m := r.max(); m < 0 || m > maxBackoffCeiling {
			t.Fatalf("backoff out of bounds: %v", m)
		}
	}
}

// TestBackoffFixedZeroDisables: FixedMaxBackoff = 0 must disable backoff
// entirely — immediate retries, no busy-yield spinning, no abort-time
// accounting.
func TestBackoffFixedZeroDisables(t *testing.T) {
	e := newTestEngine(1, func(o *Options) { o.FixedMaxBackoff = 0 })
	w := e.Worker(0)
	if got := e.MaxBackoff(); got != 0 {
		t.Fatalf("regulated max = %v; want 0", got)
	}
	before := e.Stats()
	start := time.Now()
	for i := 0; i < 1000; i++ {
		w.backoff()
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("1000 disabled backoffs took %v; want immediate returns", elapsed)
	}
	after := e.Stats()
	if after.AbortTime != before.AbortTime {
		t.Fatalf("disabled backoff accounted %v abort time", after.AbortTime-before.AbortTime)
	}
	if got := w.stats.backoffs.Load(); got != 1000 {
		t.Fatalf("backoff events = %d; want 1000", got)
	}
}

// TestRegulatorCeilingUnderPositiveGradient: a throughput curve that rewards
// every backoff increase pushes the hill climber upward forever; the maximum
// must clamp at maxBackoffCeiling and never exceed it.
func TestRegulatorCeilingUnderPositiveGradient(t *testing.T) {
	var r regulator
	opts := DefaultOptions(1)
	opts.BackoffStep = time.Millisecond
	opts.BackoffUpdatePeriod = time.Microsecond
	r.init(&opts)
	rng := rand.New(rand.NewSource(5))
	now := time.Now()
	commits := uint64(0)
	hitCeiling := false
	for i := 0; i < 2000; i++ {
		now = now.Add(time.Millisecond)
		// Throughput strictly increasing in the current maximum: the
		// gradient stays positive whenever the maximum moved up.
		commits += uint64(r.maxNs.Load()/1000) + 1
		r.maybeAdjust(now, commits, rng)
		if m := r.max(); m > maxBackoffCeiling {
			t.Fatalf("step %d: max backoff %v exceeds ceiling %v", i, m, maxBackoffCeiling)
		} else if m == maxBackoffCeiling {
			hitCeiling = true
		}
	}
	if !hitCeiling {
		t.Fatalf("climber never reached the ceiling; final max %v", r.max())
	}
}

// TestContentionSortOrdersHotFirst verifies that the partial write-set sort
// places the records with the largest latest-version wts first (§3.5).
func TestContentionSortOrdersHotFirst(t *testing.T) {
	e := newTestEngine(1, nil)
	tbl := e.CreateTable("t")
	w := e.Worker(0)
	const n = 20
	rids := make([]storage.RecordID, n)
	for i := range rids {
		rids[i] = mustInsert(t, w, tbl, []byte{byte(i)})
	}
	// Touch records in a known order so their latest wts increases with i.
	for i := 0; i < n; i++ {
		i := i
		if err := w.Run(func(tx *Txn) error {
			buf, err := tx.Update(tbl, rids[i], -1)
			if err != nil {
				return err
			}
			buf[0]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	tx := w.Begin()
	// Stage writes in ascending-contention order; the sort must reverse the
	// head of the list.
	for i := 0; i < n; i++ {
		if _, err := tx.Update(tbl, rids[i], -1); err != nil {
			t.Fatal(err)
		}
	}
	tx.sortWriteSetByContention()
	// The first contentionSortK entries must be the k hottest (largest i),
	// in descending order.
	for j := 0; j < contentionSortK; j++ {
		a := &tx.accesses[tx.writes[j]]
		wantRid := rids[n-1-j]
		if a.rid != wantRid {
			t.Fatalf("sorted position %d has rid %d, want %d", j, a.rid, wantRid)
		}
	}
	tx.Abort()
}

// TestAdaptiveSkipAfterCommitStreak: after AdaptiveSkipThreshold consecutive
// commits a worker skips sorting/precheck; one abort resets the streak.
func TestAdaptiveSkipAfterCommitStreak(t *testing.T) {
	e := newTestEngine(2, nil)
	tbl := e.CreateTable("t")
	w := e.Worker(0)
	rid := mustInsert(t, w, tbl, []byte{0})
	threshold := e.Options().AdaptiveSkipThreshold
	for i := 0; i < threshold+2; i++ {
		if err := w.Run(func(tx *Txn) error {
			buf, err := tx.Update(tbl, rid, -1)
			if err != nil {
				return err
			}
			buf[0]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if w.consecutiveCommits < threshold {
		t.Fatalf("streak %d below threshold %d", w.consecutiveCommits, threshold)
	}
	// Force a conflict abort via a later-timestamp read.
	writer := w.Begin()
	if err := e.Worker(1).Run(func(tx *Txn) error {
		_, err := tx.Read(tbl, rid)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Update(tbl, rid, -1); err == nil {
		if err := writer.Commit(); err == nil {
			t.Fatal("expected conflict")
		}
	}
	if w.consecutiveCommits != 0 {
		t.Fatalf("streak not reset: %d", w.consecutiveCommits)
	}
}

// TestBackoffRespectsRegulatedMax: worker backoff sleeps never exceed the
// regulated maximum by more than scheduling noise.
func TestBackoffRespectsRegulatedMax(t *testing.T) {
	e := newTestEngine(1, func(o *Options) { o.FixedMaxBackoff = 200 * time.Microsecond })
	w := e.Worker(0)
	start := time.Now()
	for i := 0; i < 50; i++ {
		w.backoff()
	}
	if elapsed := time.Since(start); elapsed > 200*time.Microsecond*50*4 {
		t.Fatalf("50 backoffs took %v", elapsed)
	}
}

// TestEarlyConsistencyCheckCatchesStaleRead: with the precheck enabled, a
// transaction whose read was invalidated aborts before installing versions.
func TestEarlyConsistencyCheckCatchesStaleRead(t *testing.T) {
	e := newTestEngine(2, nil)
	tbl := e.CreateTable("t")
	w0, w1 := e.Worker(0), e.Worker(1)
	rid := mustInsert(t, w0, tbl, []byte{1})
	other := mustInsert(t, w0, tbl, []byte{1})

	tx := w0.Begin()
	if _, err := tx.Read(tbl, rid); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Update(tbl, other, -1); err != nil {
		t.Fatal(err)
	}
	// A later transaction overwrites the read record and commits; since its
	// timestamp is later, our read of the old version stays valid — commit
	// must SUCCEED (multi-version!).
	if err := w1.Run(func(tx2 *Txn) error {
		buf, err := tx2.Update(tbl, rid, -1)
		if err != nil {
			return err
		}
		buf[0] = 9
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("multi-version commit failed: %v", err)
	}
}
