package core

import (
	"testing"

	"cicada/internal/storage"
)

// Microbenchmarks for the steady-state transaction hot path. These are the
// numbers the allocation-budget contract (docs/PERFORMANCE.md) protects:
// after warm-up, the execute/validate/write loop of a read, RMW, or
// insert+delete transaction must not allocate.

const benchRecordSize = 64

// benchSetup builds a single-worker engine with one table preloaded with n
// records of benchRecordSize bytes each (record IDs 0..n-1).
func benchSetup(tb testing.TB, n int) (*Engine, *Table, *Worker) {
	tb.Helper()
	e := NewEngine(DefaultOptions(1))
	t := e.CreateTable("bench")
	w := e.Worker(0)
	for i := 0; i < n; i++ {
		err := w.Run(func(tx *Txn) error {
			_, buf, err := tx.Insert(t, benchRecordSize)
			if err != nil {
				return err
			}
			buf[0] = byte(i)
			return nil
		})
		if err != nil {
			tb.Fatalf("preload: %v", err)
		}
	}
	// Advance the read-only snapshot horizon past the preload commits so
	// BeginRO sees them (min_wts only moves during maintenance).
	for i := 0; i < 1_000_000; i++ {
		w.Idle()
		ok := false
		_ = w.RunRO(func(tx *Txn) error {
			_, err := tx.Read(t, 0)
			ok = err == nil
			return nil
		})
		if ok {
			return e, t, w
		}
	}
	tb.Fatal("preload never became visible to read-only snapshots")
	return e, t, w
}

func BenchmarkTxnRead(b *testing.B) {
	_, tbl, w := benchSetup(b, 16)
	fn := func(tx *Txn) error {
		_, err := tx.Read(tbl, 0)
		return err
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(fn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTxnReadOnly(b *testing.B) {
	_, tbl, w := benchSetup(b, 16)
	fn := func(tx *Txn) error {
		_, err := tx.Read(tbl, 0)
		return err
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.RunRO(fn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTxnRMW(b *testing.B) {
	_, tbl, w := benchSetup(b, 16)
	fn := func(tx *Txn) error {
		buf, err := tx.Update(tbl, 0, -1)
		if err != nil {
			return err
		}
		buf[0]++
		return nil
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(fn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTxnRMW8 touches 8 records per transaction: large enough to
// exercise write-set sorting before the adaptive skip kicks in, and the
// own-writes table across several entries.
func BenchmarkTxnRMW8(b *testing.B) {
	_, tbl, w := benchSetup(b, 16)
	fn := func(tx *Txn) error {
		for r := storage.RecordID(0); r < 8; r++ {
			buf, err := tx.Update(tbl, r, -1)
			if err != nil {
				return err
			}
			buf[0]++
		}
		return nil
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(fn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTxnInsert measures the steady-state insert path: each iteration
// inserts a record in one transaction and deletes it in the next, so record
// IDs and versions recycle through GC instead of growing the table.
func BenchmarkTxnInsert(b *testing.B) {
	_, tbl, w := benchSetup(b, 16)
	var rid storage.RecordID
	ins := func(tx *Txn) error {
		r, buf, err := tx.Insert(tbl, benchRecordSize)
		if err != nil {
			return err
		}
		buf[0] = 1
		rid = r
		return nil
	}
	del := func(tx *Txn) error { return tx.Delete(tbl, rid) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(ins); err != nil {
			b.Fatal(err)
		}
		if err := w.Run(del); err != nil {
			b.Fatal(err)
		}
	}
}
