package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestHeatTableBasic(t *testing.T) {
	var h heatTable
	h.init(64)
	if got := h.get(42); got != 0 {
		t.Fatalf("empty table reported heat %d", got)
	}
	for i := 0; i < 5; i++ {
		h.bump(42)
	}
	if got := h.get(42); got != 5 {
		t.Fatalf("heat after 5 bumps = %d; want 5", got)
	}
	// Saturation at heatMax.
	for i := 0; i < 2*heatMax; i++ {
		h.bump(42)
	}
	if got := h.get(42); got != heatMax {
		t.Fatalf("heat after saturation = %d; want %d", got, heatMax)
	}
	h.halve()
	if got := h.get(42); got != heatMax/2 {
		t.Fatalf("heat after halving = %d; want %d", got, heatMax/2)
	}
}

func TestHeatTableZeroKey(t *testing.T) {
	// ownKey(0, 0) == 0: key 0 must be trackable like any other.
	var h heatTable
	h.init(64)
	h.bump(0)
	h.bump(0)
	if got := h.get(0); got != 2 {
		t.Fatalf("heat of key 0 = %d; want 2", got)
	}
}

func TestHeatTableSizing(t *testing.T) {
	var h heatTable
	h.init(1)
	if len(h.keys) != heatMinSize {
		t.Fatalf("init(1) sized table to %d; want %d", len(h.keys), heatMinSize)
	}
	h.init(1000)
	if len(h.keys) != 1024 {
		t.Fatalf("init(1000) sized table to %d; want 1024", len(h.keys))
	}
	// All slots must be addressable through the hash without going
	// out of range.
	for k := uint64(0); k < 10_000; k++ {
		if s := h.slot(k); s < 0 || s >= len(h.keys) {
			t.Fatalf("slot(%d) = %d out of range [0,%d)", k, s, len(h.keys))
		}
	}
}

// TestHeatTableVsExactNoEviction: with few keys and a large table no lossy
// admission occurs, so the sketch must agree exactly with a saturating,
// halving reference counter.
func TestHeatTableVsExactNoEviction(t *testing.T) {
	var h heatTable
	h.init(1024)
	ref := map[uint64]uint32{}
	rng := rand.New(rand.NewSource(7))
	keys := []uint64{0, 1, 2, 3 << 40, 4 << 40, 5, 6, 77777}
	for step := 0; step < 100_000; step++ {
		if rng.Intn(500) == 0 {
			h.halve()
			for k, v := range ref {
				ref[k] = v >> 1
			}
			continue
		}
		k := keys[rng.Intn(len(keys))]
		h.bump(k)
		if ref[k] < heatMax {
			ref[k]++
		}
		if got, want := h.get(k), ref[k]; got != want {
			t.Fatalf("step %d: heat(%#x) = %d; want %d", step, k, got, want)
		}
	}
}

// TestHeatTableLossyInvariant: under eviction pressure (many colliding keys,
// tiny table) a reported heat must never exceed the key's true saturating
// bump count — lossy admission only under-counts, so "hot" is trustworthy.
func TestHeatTableLossyInvariant(t *testing.T) {
	var h heatTable
	h.init(heatMinSize)
	ref := map[uint64]uint32{}
	rng := rand.New(rand.NewSource(3))
	keyFor := func(r *rand.Rand) uint64 {
		k := uint64(r.Intn(500)) // ~8x the table size: constant eviction
		if r.Intn(2) == 0 {
			k <<= 40 // sparse high-bit keys stress the hash distribution
		}
		return k
	}
	for step := 0; step < 200_000; step++ {
		switch r := rng.Intn(100); {
		case r < 70:
			k := keyFor(rng)
			h.bump(k)
			if ref[k] < heatMax {
				ref[k]++
			}
		case r < 98:
			k := keyFor(rng)
			if got, max := h.get(k), ref[k]; got > max {
				t.Fatalf("step %d: heat(%#x) = %d exceeds true bump count %d", step, k, got, max)
			}
		default:
			h.halve()
			for k, v := range ref {
				ref[k] = v >> 1
			}
		}
	}
}

func TestHeatTableDecayEpochs(t *testing.T) {
	var h heatTable
	h.init(64)
	for i := 0; i < 8; i++ {
		h.bump(9)
	}
	h.lastDecayEpoch = 100
	h.maybeDecay(100 + heatDecayEpochs - 1) // too soon
	if got := h.get(9); got != 8 {
		t.Fatalf("heat decayed early: %d", got)
	}
	h.maybeDecay(100 + heatDecayEpochs)
	if got := h.get(9); got != 4 {
		t.Fatalf("heat after due decay = %d; want 4", got)
	}
	// The decay epoch must have advanced, so the next round waits again.
	h.maybeDecay(100 + heatDecayEpochs + 1)
	if got := h.get(9); got != 4 {
		t.Fatalf("heat decayed twice in one window: %d", got)
	}
}

// TestHeatTableConcurrentReaders: cross-thread get/hotCount while the owner
// bumps and decays must be race-free (run under -race) and never observe an
// out-of-range value.
func TestHeatTableConcurrentReaders(t *testing.T) {
	var h heatTable
	h.init(64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := h.get(uint64(rng.Intn(100))); got > heatMax {
					t.Errorf("heat %d exceeds max", got)
					return
				}
				_ = h.hotCount(8)
			}
		}(int64(r))
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200_000; i++ {
		h.bump(uint64(rng.Intn(100)))
		if i%4096 == 0 {
			h.halve()
		}
	}
	close(stop)
	wg.Wait()
}

func TestEngineKeyHeatSumsWorkers(t *testing.T) {
	e := newTestEngine(2, nil)
	k := ownKey(3, 7)
	for i := 0; i < 4; i++ {
		e.Worker(0).heat.bump(k)
	}
	for i := 0; i < 2; i++ {
		e.Worker(1).heat.bump(k)
	}
	if got := e.KeyHeat(k); got != 6 {
		t.Fatalf("KeyHeat = %d; want 6", got)
	}
	off := newTestEngine(1, func(o *Options) { o.NoHeatTracking = true })
	if got := off.KeyHeat(k); got != 0 {
		t.Fatalf("KeyHeat with tracking disabled = %d; want 0", got)
	}
}

// TestHeatForcedChecksOnHotKey: a §3.5 commit streak normally skips write-set
// sorting and the early consistency check; a hot key in the write set must
// force them back on (and count it).
func TestHeatForcedChecksOnHotKey(t *testing.T) {
	e := newTestEngine(1, nil)
	tbl := e.CreateTable("t")
	w := e.Worker(0)
	rid := mustInsert(t, w, tbl, []byte{0})
	update := func(tx *Txn) error {
		buf, err := tx.Update(tbl, rid, -1)
		if err != nil {
			return err
		}
		buf[0]++
		return nil
	}
	for i := 0; i < e.Options().AdaptiveSkipThreshold+2; i++ {
		if err := w.Run(update); err != nil {
			t.Fatal(err)
		}
	}
	if w.consecutiveCommits < e.Options().AdaptiveSkipThreshold {
		t.Fatalf("no commit streak: %d", w.consecutiveCommits)
	}
	if got := e.Stats().HeatForcedChecks; got != 0 {
		t.Fatalf("forced checks before any heat: %d", got)
	}
	// Make the record hot, then commit one more write to it: the skip must
	// be overridden even though the streak is intact.
	k := ownKey(tbl.ID, rid)
	for i := 0; i < 2*e.Options().HeatHotThreshold; i++ {
		w.heat.bump(k)
	}
	if err := w.Run(update); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().HeatForcedChecks; got == 0 {
		t.Fatal("hot write-set key did not force validation checks")
	}
	if w.consecutiveCommits == 0 {
		t.Fatal("forced check should not reset the commit streak")
	}
}

// TestHeatWeightedBackoff: cold-key aborts skip the regulated backoff
// entirely, warm keys take a scaled fraction, hot keys the full maximum.
func TestHeatWeightedBackoff(t *testing.T) {
	e := newTestEngine(1, func(o *Options) { o.FixedMaxBackoff = 20 * time.Millisecond })
	w := e.Worker(0)
	hot := uint32(e.Options().HeatHotThreshold)

	// Cold key: immediate retry, no abort-time accounting, no scaling stat.
	w.txn.conflictKey = ownKey(1, 1)
	before := e.Stats()
	start := time.Now()
	for i := 0; i < 20; i++ {
		w.backoff()
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("20 cold-key backoffs took %v; want immediate retries", elapsed)
	}
	after := e.Stats()
	if after.AbortTime != before.AbortTime {
		t.Fatalf("cold-key backoff accounted abort time: %v", after.AbortTime-before.AbortTime)
	}
	if after.HeatScaledBackoffs != before.HeatScaledBackoffs {
		t.Fatal("cold-key backoff counted as scaled")
	}

	// Warm key (heat hot/2): scaled backoff, counted.
	warm := ownKey(1, 2)
	for i := uint32(0); i < hot/2; i++ {
		w.heat.bump(warm)
	}
	w.txn.conflictKey = warm
	w.backoff()
	if got := e.Stats().HeatScaledBackoffs; got == 0 {
		t.Fatal("warm-key backoff not counted as scaled")
	}

	// Hot key: full regulated backoff, not counted as scaled.
	hotKey := ownKey(1, 3)
	for i := uint32(0); i < 2*hot; i++ {
		w.heat.bump(hotKey)
	}
	w.txn.conflictKey = hotKey
	scaled := e.Stats().HeatScaledBackoffs
	w.backoff()
	if got := e.Stats().HeatScaledBackoffs; got != scaled {
		t.Fatal("hot-key backoff counted as scaled")
	}
}

// TestHeatBackoffDisabled: NoHeatBackoff keeps heat tracking but restores
// uniform regulated backoff for every abort.
func TestHeatBackoffDisabled(t *testing.T) {
	e := newTestEngine(1, func(o *Options) {
		o.FixedMaxBackoff = 50 * time.Microsecond
		o.NoHeatBackoff = true
	})
	w := e.Worker(0)
	w.txn.conflictKey = ownKey(1, 1) // cold key
	for i := 0; i < 50; i++ {
		w.backoff()
	}
	if got := e.Stats().HeatScaledBackoffs; got != 0 {
		t.Fatalf("NoHeatBackoff still scaled %d backoffs", got)
	}
	if got := e.Stats().AbortTime; got == 0 {
		t.Fatal("NoHeatBackoff cold-key aborts skipped the regulated backoff")
	}
}

// TestHeatAbortAndWaitBumps: concurrency-control aborts and pending-version
// waits must both feed the heat table.
func TestHeatAbortAndWaitBumps(t *testing.T) {
	e := newTestEngine(2, nil)
	tbl := e.CreateTable("t")
	w0, w1 := e.Worker(0), e.Worker(1)
	rid := mustInsert(t, w0, tbl, []byte{0})

	// Conflict: w0 reads at a later timestamp than w1's in-flight writer, so
	// w1's commit fails the rts check and bumps the key.
	writer := w1.Begin()
	if err := w0.Run(func(tx *Txn) error {
		_, err := tx.Read(tbl, rid)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Update(tbl, rid, -1); err == nil {
		if err := writer.Commit(); err == nil {
			t.Fatal("expected conflict")
		}
	} else {
		writer.Abort()
	}
	if got := e.Stats().HeatAbortBumps; got == 0 {
		t.Fatal("conflict abort did not bump heat")
	}
	if got := e.KeyHeat(ownKey(tbl.ID, rid)); got == 0 {
		t.Fatal("conflicted key has zero heat")
	}
}

// TestSerializabilityCoarseRTS: coarse rts maintenance over-raises cold
// records' read timestamps by a large slack; serializability must hold
// regardless (over-raising only makes writers abort conservatively).
func TestSerializabilityCoarseRTS(t *testing.T) {
	runSerializabilityStress(t, 4, 8, 200, func(o *Options) {
		o.HeatRTSSlackTicks = 1 << 16
	})
}

// TestSerializabilityHeatAggressive drives every heat path at once: tiny
// table (constant eviction), hair-trigger hot threshold, coarse rts slack.
func TestSerializabilityHeatAggressive(t *testing.T) {
	runSerializabilityStress(t, 4, 8, 200, func(o *Options) {
		o.HeatTableSize = heatMinSize
		o.HeatHotThreshold = 1
		o.HeatRTSSlackTicks = 256
	})
}

// TestSerializabilityNoHeat pins the opt-out path.
func TestSerializabilityNoHeat(t *testing.T) {
	runSerializabilityStress(t, 4, 8, 200, func(o *Options) {
		o.NoHeatTracking = true
	})
}

// TestCoarseRTSSkipsCAS: with slack configured, repeated cold reads of the
// same record must skip the rts CAS after the first coarse raise.
func TestCoarseRTSSkipsCAS(t *testing.T) {
	e := newTestEngine(1, func(o *Options) { o.HeatRTSSlackTicks = 1 << 20 })
	tbl := e.CreateTable("t")
	w := e.Worker(0)
	rid := mustInsert(t, w, tbl, []byte{1})
	read := func(tx *Txn) error {
		_, err := tx.Read(tbl, rid)
		return err
	}
	for i := 0; i < 50; i++ {
		if err := w.Run(read); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.HeatRTSCoarse == 0 {
		t.Fatal("no coarse rts raises recorded")
	}
	if s.HeatRTSSkips == 0 {
		t.Fatal("no rts CAS skips recorded despite large slack")
	}
}
