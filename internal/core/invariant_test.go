package core

import (
	"math/rand"
	"sync"
	"testing"

	"cicada/internal/storage"
)

// auditChains walks every version chain in the engine and verifies the
// structural invariants that hold whenever no transaction is active:
// strictly descending wts, no PENDING versions, rts ≥ wts for committed
// versions, and bounded length.
func auditChains(t *testing.T, e *Engine) (chains, versions int) {
	t.Helper()
	for _, tbl := range e.Tables() {
		capacity := tbl.Storage().Cap()
		for rid := storage.RecordID(0); uint64(rid) < capacity; rid++ {
			h := tbl.Storage().Head(rid)
			if h == nil {
				continue
			}
			prev := ^uint64(0)
			n := 0
			for v := h.Latest(); v != nil; v = v.Next() {
				if uint64(v.WTS) >= prev {
					t.Fatalf("table %s rid %d: wts %v not below %d", tbl.Storage().Name(), rid, v.WTS, prev)
				}
				prev = uint64(v.WTS)
				switch v.Status() {
				case storage.StatusPending:
					t.Fatalf("table %s rid %d: PENDING version at rest", tbl.Storage().Name(), rid)
				case storage.StatusCommitted, storage.StatusDeleted:
					if v.RTS() < v.WTS {
						t.Fatalf("table %s rid %d: rts %v below wts %v", tbl.Storage().Name(), rid, v.RTS(), v.WTS)
					}
				}
				n++
				if n > 100000 {
					t.Fatalf("table %s rid %d: chain too long (cycle?)", tbl.Storage().Name(), rid)
				}
			}
			if n > 0 {
				chains++
				versions += n
			}
		}
	}
	return chains, versions
}

// TestChainInvariantsAfterStress runs the concurrent counter workload and
// then audits every version chain.
func TestChainInvariantsAfterStress(t *testing.T) {
	e := newTestEngine(4, nil)
	tbl := e.CreateTable("t")
	w0 := e.Worker(0)
	const records = 32
	rids := make([]storage.RecordID, records)
	for i := range rids {
		rids[i] = mustInsert(t, w0, tbl, []byte{0, 0, 0, 0, 0, 0, 0, 0})
	}
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			w := e.Worker(id)
			for i := 0; i < 400; i++ {
				rid := rids[rng.Intn(records)]
				if err := w.Run(func(tx *Txn) error {
					buf, err := tx.Update(tbl, rid, -1)
					if err != nil {
						return err
					}
					putU64(buf, u64(buf)+1)
					return nil
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Drain garbage collection: the burst outpaces quiescence rounds, so
	// give maintenance a few rounds plus one trailing commit per record to
	// trigger chain detachment.
	advanceEpochs(t, e, 4)
	for _, rid := range rids {
		rid := rid
		if err := w0.Run(func(tx *Txn) error {
			buf, err := tx.Update(tbl, rid, -1)
			if err != nil {
				return err
			}
			buf[7] = 1
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	advanceEpochs(t, e, 4)
	for id := 0; id < 4; id++ {
		e.Worker(id).collectGarbage()
	}
	chains, versions := auditChains(t, e)
	if chains == 0 {
		t.Fatal("no chains audited")
	}
	// After draining, chains must be short.
	if versions > chains*4 {
		t.Fatalf("%d versions across %d chains: GC not keeping up", versions, chains)
	}
}

// TestChainInvariantsWithDeletes mixes deletes and re-inserts, then audits.
func TestChainInvariantsWithDeletes(t *testing.T) {
	e := newTestEngine(2, nil)
	tbl := e.CreateTable("t")
	w0 := e.Worker(0)
	var mu sync.Mutex
	live := make(map[storage.RecordID]bool)
	for i := 0; i < 16; i++ {
		rid := mustInsert(t, w0, tbl, []byte{1})
		live[rid] = true
	}
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 5))
			w := e.Worker(id)
			for i := 0; i < 300; i++ {
				mu.Lock()
				var rid storage.RecordID
				for r := range live {
					rid = r
					break
				}
				mu.Unlock()
				if rng.Intn(3) == 0 {
					err := w.Run(func(tx *Txn) error {
						if err := tx.Delete(tbl, rid); err != nil {
							return nil // already gone
						}
						return nil
					})
					if err != nil {
						t.Errorf("delete: %v", err)
						return
					}
					var newRid storage.RecordID
					if err := w.Run(func(tx *Txn) error {
						r, buf, err := tx.Insert(tbl, 1)
						if err != nil {
							return err
						}
						buf[0] = 1
						newRid = r
						return nil
					}); err != nil {
						t.Errorf("insert: %v", err)
						return
					}
					mu.Lock()
					delete(live, rid)
					live[newRid] = true
					mu.Unlock()
				} else {
					_ = w.Run(func(tx *Txn) error {
						buf, err := tx.Update(tbl, rid, -1)
						if err != nil {
							return nil
						}
						buf[0]++
						return nil
					})
				}
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	auditChains(t, e)
}
