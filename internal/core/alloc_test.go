package core

import (
	"testing"

	"cicada/internal/storage"
)

// Allocation-budget tests: the steady-state transaction hot path must not
// allocate (docs/PERFORMANCE.md). Budgets are enforced with
// testing.AllocsPerRun after a warm-up that reaches the reusable buffers'
// high-water marks (access sets, GC queue, limbo batches, version pool).

const allocWarmup = 5000

// assertZeroAllocs warms fn up and then requires an average of zero
// allocations per run.
func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; budgets enforced in non-race builds")
	}
	for i := 0; i < allocWarmup; i++ {
		fn()
	}
	if avg := testing.AllocsPerRun(2000, fn); avg != 0 {
		t.Errorf("%s: %.3f allocs/op; budget is 0", name, avg)
	}
}

func TestAllocBudgetTxnRead(t *testing.T) {
	_, tbl, w := benchSetup(t, 16)
	fn := func(tx *Txn) error {
		_, err := tx.Read(tbl, 0)
		return err
	}
	assertZeroAllocs(t, "single-key read txn", func() {
		if err := w.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetTxnReadOnly(t *testing.T) {
	_, tbl, w := benchSetup(t, 16)
	fn := func(tx *Txn) error {
		_, err := tx.Read(tbl, 0)
		return err
	}
	assertZeroAllocs(t, "read-only snapshot txn", func() {
		if err := w.RunRO(fn); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetTxnRMW(t *testing.T) {
	_, tbl, w := benchSetup(t, 16)
	fn := func(tx *Txn) error {
		buf, err := tx.Update(tbl, 0, -1)
		if err != nil {
			return err
		}
		buf[0]++
		return nil
	}
	assertZeroAllocs(t, "single-key RMW txn", func() {
		if err := w.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetTxnRMW8(t *testing.T) {
	_, tbl, w := benchSetup(t, 16)
	fn := func(tx *Txn) error {
		for r := storage.RecordID(0); r < 8; r++ {
			buf, err := tx.Update(tbl, r, -1)
			if err != nil {
				return err
			}
			buf[0]++
		}
		return nil
	}
	assertZeroAllocs(t, "8-key RMW txn (write-set sort + precheck)", func() {
		if err := w.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetTxnInsertDelete(t *testing.T) {
	_, tbl, w := benchSetup(t, 16)
	var rid storage.RecordID
	ins := func(tx *Txn) error {
		r, buf, err := tx.Insert(tbl, benchRecordSize)
		if err != nil {
			return err
		}
		buf[0] = 1
		rid = r
		return nil
	}
	del := func(tx *Txn) error { return tx.Delete(tbl, rid) }
	assertZeroAllocs(t, "insert+delete txn pair", func() {
		if err := w.Run(ins); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(del); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocBudgetHeatPaths: the heat table's hot-path operations (bump on
// abort, get in validation/backoff, coarse rts lookups) must stay
// allocation-free, including under eviction pressure and decay.
func TestAllocBudgetHeatPaths(t *testing.T) {
	var h heatTable
	h.init(heatMinSize)
	var k uint64
	assertZeroAllocs(t, "heat bump/get/decay under eviction", func() {
		h.bump(k)
		_ = h.get(k)
		k = (k + 1) % 500 // ~8x table size: constant lossy admission
		if k == 0 {
			h.halve()
		}
	})
}

// TestAllocBudgetTxnRMWWithHeat re-runs the RMW budget with every heat
// feature enabled (hair-trigger threshold + coarse rts slack), so the
// write-set heat scan and the coarse rts branch are on the measured path.
func TestAllocBudgetTxnRMWWithHeat(t *testing.T) {
	e := newTestEngine(1, func(o *Options) {
		o.HeatHotThreshold = 1
		o.HeatRTSSlackTicks = 256
	})
	tbl := e.CreateTable("bench")
	w := e.Worker(0)
	for r := 0; r < 16; r++ {
		mustInsert(t, w, tbl, make([]byte, benchRecordSize))
	}
	// Heat the target key so writeSetHot's hit path is exercised too.
	w.heat.bump(ownKey(tbl.ID, 0))
	fn := func(tx *Txn) error {
		buf, err := tx.Update(tbl, 0, -1)
		if err != nil {
			return err
		}
		buf[0]++
		return nil
	}
	assertZeroAllocs(t, "RMW txn with heat features active", func() {
		if err := w.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocBudgetTypedHook proves registering a long-lived TxnHook object is
// allocation-free, unlike the legacy closure API.
func TestAllocBudgetTypedHook(t *testing.T) {
	_, tbl, w := benchSetup(t, 16)
	h := &countingHook{}
	fn := func(tx *Txn) error {
		tx.AddHook(h)
		buf, err := tx.Update(tbl, 0, -1)
		if err != nil {
			return err
		}
		buf[0]++
		return nil
	}
	assertZeroAllocs(t, "RMW txn with typed hook", func() {
		if err := w.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
	if h.committed == 0 {
		t.Fatal("hook never ran")
	}
}

type countingHook struct {
	pre, committed, aborted int
}

func (h *countingHook) TxnPreCommit(*Txn) error { h.pre++; return nil }
func (h *countingHook) TxnCommitted(*Txn)       { h.committed++ }
func (h *countingHook) TxnAborted(*Txn)         { h.aborted++ }

// TestRepeatedReadDedup is the regression test for read-set dedup: re-reads
// of the same (table, record) must resolve through the own-writes table and
// not grow the read set or validation work.
func TestRepeatedReadDedup(t *testing.T) {
	_, tbl, w := benchSetup(t, 4)
	err := w.Run(func(tx *Txn) error {
		var first []byte
		for i := 0; i < 100; i++ {
			d, err := tx.Read(tbl, 0)
			if err != nil {
				return err
			}
			if i == 0 {
				first = d
			} else if &d[0] != &first[0] {
				t.Error("re-read returned a different version")
			}
		}
		if got := len(tx.reads); got != 1 {
			t.Errorf("read set after 100 re-reads = %d; want 1", got)
		}
		if got := len(tx.accesses); got != 1 {
			t.Errorf("access set after 100 re-reads = %d; want 1", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRepeatedAbsentReadDedup covers the absent-record flavor: repeated
// misses of the same record ID track a single validated absent read.
func TestRepeatedAbsentReadDedup(t *testing.T) {
	_, tbl, w := benchSetup(t, 4)
	err := w.Run(func(tx *Txn) error {
		const missing = storage.RecordID(9999)
		for i := 0; i < 100; i++ {
			if _, err := tx.Read(tbl, missing); err != ErrNotFound {
				t.Fatalf("read %d: %v; want ErrNotFound", i, err)
			}
		}
		if got := len(tx.reads); got != 1 {
			t.Errorf("read set after 100 absent re-reads = %d; want 1", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRepeatedUpdateDedup: repeated Updates of one key stay a single
// write-set entry (read-own-writes).
func TestRepeatedUpdateDedup(t *testing.T) {
	_, tbl, w := benchSetup(t, 4)
	err := w.Run(func(tx *Txn) error {
		for i := 0; i < 100; i++ {
			buf, err := tx.Update(tbl, 0, -1)
			if err != nil {
				return err
			}
			buf[0]++
		}
		if got := len(tx.writes); got != 1 {
			t.Errorf("write set after 100 updates = %d; want 1", got)
		}
		if got := len(tx.accesses); got != 1 {
			t.Errorf("access set after 100 updates = %d; want 1", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
