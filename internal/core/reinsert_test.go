package core

import (
	"testing"

	"cicada/internal/storage"
)

// TestReinsertExpiring verifies the §3.1 wraparound maintenance: records
// with old write timestamps are reinserted with fresh timestamps and
// identical data, while recently written records are left alone.
func TestReinsertExpiring(t *testing.T) {
	e := newTestEngine(1, nil)
	tbl := e.CreateTable("t")
	w := e.Worker(0)
	const n = 20
	rids := make([]storage.RecordID, n)
	for i := range rids {
		rids[i] = mustInsert(t, w, tbl, []byte{byte(i), 0xEE})
	}
	oldWTS := make([]Timestamp, n)
	for i, rid := range rids {
		oldWTS[i] = headWTS(t, tbl, rid)
	}
	// Freshen the last five records; they must not be reinserted.
	horizon := e.Clock().WTS(0)
	for i := n - 5; i < n; i++ {
		i := i
		if err := w.Run(func(tx *Txn) error {
			buf, err := tx.Update(tbl, rids[i], -1)
			if err != nil {
				return err
			}
			buf[1] = 0xFF
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	var cursor storage.RecordID
	total := 0
	for {
		moved, err := w.ReinsertExpiring(tbl, horizon, &cursor, 7)
		if err != nil {
			t.Fatal(err)
		}
		total += moved
		if moved == 0 && uint64(cursor) >= tbl.Storage().Cap() {
			break
		}
	}
	if total != n-5 {
		t.Fatalf("reinserted %d records, want %d", total, n-5)
	}
	for i, rid := range rids {
		got := mustRead(t, w, tbl, rid)
		if got[0] != byte(i) {
			t.Fatalf("record %d data changed: %x", i, got)
		}
		newWTS := headWTS(t, tbl, rid)
		if i < n-5 && newWTS <= oldWTS[i] {
			t.Fatalf("record %d not refreshed: %v -> %v", i, oldWTS[i], newWTS)
		}
	}
}

// Timestamp is shorthand in tests.
type Timestamp = uint64

func headWTS(t *testing.T, tbl *Table, rid storage.RecordID) Timestamp {
	t.Helper()
	for v := tbl.Storage().Head(rid).Latest(); v != nil; v = v.Next() {
		if v.Status() == storage.StatusCommitted {
			return Timestamp(v.WTS)
		}
	}
	t.Fatalf("record %d has no committed version", rid)
	return 0
}
