package core

import (
	"errors"

	"cicada/internal/clock"
	"cicada/internal/storage"
)

// RecoverInstall installs a committed version during recovery replay
// (§3.7): the version is installed unless a version with a later write
// timestamp already exists for the record — each record keeps only the
// latest version. A deleted record installs nothing (deletions are resolved
// by the replayer, which keeps only each record's newest entry). The engine
// must not be running transactions.
func (t *Table) RecoverInstall(rid storage.RecordID, wts clock.Timestamp, data []byte) {
	t.st.RecoverEnsure(rid)
	h := t.st.Head(rid)
	if cur := h.Latest(); cur != nil && cur.WTS >= wts {
		return
	}
	var v *storage.Version
	if t.st.Inlining() && len(data) <= storage.InlineSize {
		if iv, ok := h.TryAcquireInline(len(data)); ok {
			v = iv
		}
	}
	if v == nil {
		v = storage.NewVersion(len(data))
	}
	copy(v.Data, data)
	v.PrepareInstall(wts)
	v.SetNext(h.Latest())
	v.SetStatus(storage.StatusCommitted)
	for {
		cur := h.Latest()
		if cur != nil && cur.WTS >= wts {
			return
		}
		v.SetNext(cur)
		if h.CASLatest(cur, v) {
			return
		}
	}
}

// RecoverReserve grows the table's record space without installing data, so
// record IDs observed in logs but superseded by deletes stay unallocated for
// reuse accounting.
func (t *Table) RecoverReserve(rid storage.RecordID) { t.st.RecoverEnsure(rid) }

// SnapshotRecord returns the record data and write timestamp visible at ts,
// for checkpointing (§3.7). ts must be a safe snapshot timestamp (at or
// below every worker's read timestamp) so that no pending version can fall
// below it; pending and aborted versions are skipped without waiting.
func (t *Table) SnapshotRecord(rid storage.RecordID, ts clock.Timestamp) (data []byte, wts clock.Timestamp, ok bool) {
	h := t.st.Head(rid)
	if h == nil {
		return nil, 0, false
	}
restart:
	prevWTS := ^clock.Timestamp(0)
	for v := h.Latest(); v != nil; v = v.Next() {
		if v.WTS >= prevWTS {
			goto restart
		}
		prevWTS = v.WTS
		if v.WTS > ts {
			continue
		}
		switch v.Status() {
		case storage.StatusCommitted:
			return v.Data, v.WTS, true
		case storage.StatusDeleted:
			return nil, 0, false
		case storage.StatusUnused:
			goto restart
		}
	}
	return nil, 0, false
}

// ReinsertExpiring implements the paper's timestamp-wraparound handling
// (§3.1): versions whose write timestamps are about to expire are
// reinserted as new versions with the latest timestamp and identical record
// data, incrementally (up to limit records per call) so the cost is spread
// over days in a long-lived deployment. It scans record IDs starting at
// *cursor and advances it; records whose latest committed version has
// wts ≥ before are skipped (recently updated data never needs reinsertion).
// It returns the number of reinserted records. Read-only transactions are
// unaffected, as the reinserted data is identical.
func (w *Worker) ReinsertExpiring(t *Table, before clock.Timestamp, cursor *storage.RecordID, limit int) (int, error) {
	capacity := storage.RecordID(t.st.Cap())
	n := 0
	for n < limit && *cursor < capacity {
		rid := *cursor
		*cursor++
		h := t.st.Head(rid)
		if h == nil {
			continue
		}
		v := h.Latest()
		for v != nil {
			st := v.Status()
			if st == storage.StatusCommitted || st == storage.StatusDeleted {
				break
			}
			v = v.Next()
		}
		if v == nil || v.Status() == storage.StatusDeleted || v.WTS >= before {
			continue
		}
		err := w.Run(func(tx *Txn) error {
			// Identity RMW: a new version with the same data and a fresh
			// timestamp. Concurrent writers win; that also refreshes.
			_, err := tx.Update(t, rid, -1)
			if errors.Is(err, ErrNotFound) {
				return nil // deleted meanwhile
			}
			return err
		})
		if err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// RecoverFinish initializes the engine's clocks so that every new timestamp
// is later than any replayed version's write timestamp (§3.7).
func (e *Engine) RecoverFinish(maxReplayed clock.Timestamp) {
	e.clock.AdvanceAllPast(maxReplayed)
}
