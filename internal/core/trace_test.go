package core

import (
	"errors"
	"testing"

	"cicada/internal/trace"
)

// traceSetup builds a single-worker engine with an attached, enabled tracer
// and one preloaded table (record IDs 0..n-1).
func traceSetup(tb testing.TB, n, sampleEvery int) (*Engine, *Table, *Worker, *trace.Tracer) {
	tb.Helper()
	tr := trace.New(trace.Options{Workers: 1, Capacity: 4096, SampleEvery: sampleEvery})
	tr.SetEnabled(true)
	opts := DefaultOptions(1)
	opts.Trace = tr
	e := NewEngine(opts)
	t := e.CreateTable("traced")
	w := e.Worker(0)
	for i := 0; i < n; i++ {
		err := w.Run(func(tx *Txn) error {
			_, buf, err := tx.Insert(t, benchRecordSize)
			if err != nil {
				return err
			}
			buf[0] = byte(i)
			return nil
		})
		if err != nil {
			tb.Fatalf("preload: %v", err)
		}
	}
	return e, t, w, tr
}

// TestTraceTxnLifecycle checks that a sampled committed transaction emits
// the full begin/phase/commit event sequence with consistent arguments.
func TestTraceTxnLifecycle(t *testing.T) {
	_, tbl, w, tr := traceSetup(t, 8, 1)
	before := countKinds(tr)
	err := w.Run(func(tx *Txn) error {
		buf, err := tx.Update(tbl, 0, -1)
		if err != nil {
			return err
		}
		buf[0]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	after := countKinds(tr)
	for _, k := range []trace.Kind{trace.EvTxnBegin, trace.EvPhaseExecute,
		trace.EvPhaseValidate, trace.EvPhaseWrite, trace.EvTxnCommit} {
		if after[k] != before[k]+1 {
			t.Errorf("%v events: %d → %d; want exactly one more", k, before[k], after[k])
		}
	}
	// The commit event carries the read/write set sizes in arg B.
	var commit trace.Event
	for _, ev := range tr.Events() {
		if ev.Kind == trace.EvTxnCommit {
			commit = ev
		}
	}
	if reads, writes := commit.B>>32, commit.B&0xffffffff; reads != 1 || writes != 1 {
		t.Errorf("commit sets = %d reads, %d writes; want 1 and 1", reads, writes)
	}
	if commit.Dur == 0 {
		t.Error("commit event has zero duration")
	}
}

// TestTraceSamplingSkips checks that at 1/64 sampling, unsampled committed
// transactions emit no transaction-scoped events (worker-level gc_pass /
// backoff events may still fire between transactions).
func TestTraceSamplingSkips(t *testing.T) {
	_, tbl, w, tr := traceSetup(t, 8, 64)
	before := countKinds(tr)
	// 8 preloads leave 56 txns of headroom before the next 64-txn sampling
	// boundary; run 10 to stay well clear.
	for i := 0; i < 10; i++ {
		if err := w.Run(func(tx *Txn) error {
			_, err := tx.Read(tbl, 0)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	after := countKinds(tr)
	for _, k := range []trace.Kind{trace.EvTxnBegin, trace.EvTxnCommit,
		trace.EvTxnAbort, trace.EvPhaseExecute, trace.EvPhaseValidate,
		trace.EvPhaseWrite, trace.EvPendingWait} {
		if after[k] != before[k] {
			t.Errorf("unsampled txns recorded %d %v events", after[k]-before[k], k)
		}
	}
}

// TestTraceUserAbort checks that a sampled user abort emits txn_abort with
// the user reason and no conflict key.
func TestTraceUserAbort(t *testing.T) {
	_, tbl, w, tr := traceSetup(t, 8, 1)
	sentinel := errors.New("rollback")
	err := w.Run(func(tx *Txn) error {
		if _, err := tx.Read(tbl, 0); err != nil {
			return err
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run = %v; want sentinel", err)
	}
	var abort *trace.Event
	for _, ev := range tr.Events() {
		if ev.Kind == trace.EvTxnAbort {
			ev := ev
			abort = &ev
		}
	}
	if abort == nil {
		t.Fatal("no txn_abort event recorded")
	}
	if abort.B != uint64(AbortUser) {
		t.Errorf("abort reason = %d; want AbortUser (%d)", abort.B, AbortUser)
	}
	if abort.A != ^uint64(0) {
		t.Errorf("abort conflict key = %#x; want NoKey", abort.A)
	}
}

// TestTraceConflictAbortAlwaysOn checks the always-on abort path: with
// sampling effectively off (1/large), a concurrency-control abort is still
// recorded, attributed to the conflicting key.
func TestTraceConflictAbortAlwaysOn(t *testing.T) {
	tr := trace.New(trace.Options{Workers: 2, Capacity: 4096, SampleEvery: 1 << 20})
	tr.SetEnabled(true)
	opts := DefaultOptions(2)
	opts.Trace = tr
	e := NewEngine(opts)
	tbl := e.CreateTable("conflict")
	w0, w1 := e.Worker(0), e.Worker(1)
	if err := w0.Run(func(tx *Txn) error {
		_, buf, err := tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		buf[0] = 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Force a write-write conflict: w1 begins, w0 commits an update to the
	// record, then w1 tries to update the same record at its older
	// timestamp and must abort at least once (Run retries internally, so
	// drive Begin/Commit by hand).
	aborted := false
	for try := 0; try < 100 && !aborted; try++ {
		tx1 := w1.Begin()
		if _, err := tx1.Read(tbl, 0); err != nil {
			t.Fatal(err)
		}
		if err := w0.Run(func(tx *Txn) error {
			buf, err := tx.Update(tbl, 0, -1)
			if err != nil {
				return err
			}
			buf[0]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if buf, err := tx1.Update(tbl, 0, -1); err == nil {
			buf[0]++
			if err := tx1.Commit(); err != nil {
				aborted = true
			}
		} else {
			aborted = true
		}
	}
	if !aborted {
		t.Skip("could not provoke a concurrency-control abort")
	}
	var found bool
	for _, ev := range tr.Events() {
		if ev.Kind != trace.EvTxnAbort {
			continue
		}
		found = true
		if ev.B == uint64(AbortUser) {
			t.Errorf("conflict abort recorded user reason")
		}
		if ev.A == ^uint64(0) {
			t.Errorf("conflict abort has no conflict key")
		}
		if name := tr.KeyName(ev.A); name != "conflict[0]" {
			t.Errorf("conflict key renders as %q; want conflict[0]", name)
		}
	}
	if !found {
		t.Error("no txn_abort event despite a concurrency-control abort")
	}
}

func countKinds(tr *trace.Tracer) map[trace.Kind]int {
	out := map[trace.Kind]int{}
	for _, ev := range tr.Events() {
		out[ev.Kind]++
	}
	return out
}

// Allocation budgets for the traced hot path (docs/OBSERVABILITY.md): with
// tracing enabled at the default 1/64 sampling — and with the tracer
// disabled — a steady-state RMW transaction still allocates nothing.

func TestAllocBudgetTxnRMWTraced(t *testing.T) {
	_, tbl, w, _ := traceSetup(t, 16, 64)
	fn := func(tx *Txn) error {
		buf, err := tx.Update(tbl, 0, -1)
		if err != nil {
			return err
		}
		buf[0]++
		return nil
	}
	assertZeroAllocs(t, "RMW txn, tracing at 1/64", func() {
		if err := w.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetTxnRMWTracedEveryTxn(t *testing.T) {
	_, tbl, w, _ := traceSetup(t, 16, 1)
	fn := func(tx *Txn) error {
		buf, err := tx.Update(tbl, 0, -1)
		if err != nil {
			return err
		}
		buf[0]++
		return nil
	}
	assertZeroAllocs(t, "RMW txn, tracing every txn", func() {
		if err := w.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetTxnRMWTracerDisabled(t *testing.T) {
	_, tbl, w, tr := traceSetup(t, 16, 64)
	tr.SetEnabled(false)
	fn := func(tx *Txn) error {
		buf, err := tx.Update(tbl, 0, -1)
		if err != nil {
			return err
		}
		buf[0]++
		return nil
	}
	assertZeroAllocs(t, "RMW txn, tracer attached but disabled", func() {
		if err := w.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}
