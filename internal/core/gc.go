package core

import (
	"time"

	"cicada/internal/clock"
	"cicada/internal/storage"
	"cicada/internal/trace"
)

// gcItem queues a committed version for garbage collection: once min_rts
// passes v.wts, every version of the record earlier than v is invisible to
// all current and future transactions and can be reclaimed (§3.8).
type gcItem struct {
	tbl *Table
	rid storage.RecordID
	ver *storage.Version
	wts clock.Timestamp
}

// limboEntry is a detached version awaiting epoch-delayed reuse. Detachment
// makes a version unreachable from the list, but a transaction that began
// before the detachment may still traverse it; reuse is deferred until two
// quiescence rounds have completed, by which point every such transaction
// has finished (workers declare quiescence only between transactions).
type limboEntry struct {
	v *storage.Version
	h *storage.Head
}

// limboBatch groups limbo entries (and record IDs to free) by the epoch at
// which they were detached.
type limboBatch struct {
	epoch   uint64
	entries []limboEntry
	frees   []ridFree
}

type ridFree struct {
	tbl *Table
	rid storage.RecordID
}

const limboDelayEpochs = 2

// enqueueGC records the metadata of the versions committed by the last
// transaction into the worker's local garbage collection queue (§3.8, first
// maintenance step).
func (w *Worker) enqueueGC(t *Txn) {
	for _, i := range t.writes {
		a := &t.accesses[i]
		if a.newVer == nil || !a.installed {
			continue
		}
		w.gcQueue = append(w.gcQueue, gcItem{
			tbl: a.tbl, rid: a.rid, ver: a.newVer, wts: a.newVer.WTS,
		})
	}
}

// Maintain runs the cooperative maintenance step (§3.8): declaring
// quiescence, leader duties (min_wts/min_rts advancement, epoch counting,
// backoff hill climbing), garbage collection, limbo processing, and
// one-sided clock synchronization. Workers call it between transactions;
// Worker.Run calls it automatically.
func (w *Worker) Maintain() {
	e := w.eng
	now := time.Now()
	if now.Sub(w.lastQuiesce) >= e.opts.GCInterval {
		w.lastQuiesce = now
		e.quiesce[w.id].Store(true)
		e.clock.RefreshRead(w.id)
		if w.id == 0 {
			w.leaderMaintain(now)
		}
		w.collectGarbage()
		w.processLimbo()
		if !e.opts.NoHeatTracking {
			// Periodic heat decay, driven by the leader's quiescence epoch:
			// each worker halves its own table (owner-only stores), so hot
			// keys stay hot only while they keep causing conflicts.
			w.heat.maybeDecay(e.epoch.Load())
		}
		tel := w.tel
		traceOn := w.tr != nil && w.tr.Enabled()
		if tel != nil || traceOn {
			d := time.Since(now)
			depth := len(w.gcQueue) - w.gcHead
			if tel != nil {
				tel.gcDepth.Set(int64(depth))
				tel.phase[phaseQuiesce].ObserveDuration(d)
			}
			if traceOn {
				w.tr.Record(trace.EvGCPass, now.UnixNano(), nonNegNs(d), uint64(depth), 0)
			}
		}
	}
	e.clock.MaybeSync(w.id)
}

// Idle keeps an idle worker participating in maintenance so it does not
// stall min_wts, min_rts, or the epoch counter.
func (w *Worker) Idle() {
	w.eng.clock.RefreshIdle(w.id)
	w.Maintain()
}

// leaderMaintain is worker 0's extra duty: after observing a full
// quiescence round it resets the flags, advances the epoch, and updates
// min_wts/min_rts; every BackoffUpdatePeriod it runs the contention
// regulator's hill-climbing step (§3.9).
func (w *Worker) leaderMaintain(now time.Time) {
	e := w.eng
	all := true
	for i := range e.quiesce {
		if !e.quiesce[i].Load() {
			all = false
			break
		}
	}
	if all {
		for i := range e.quiesce {
			e.quiesce[i].Store(false)
		}
		e.clock.UpdateMins()
		e.epoch.Add(1)
	}
	var commits uint64
	for _, ww := range e.workers {
		commits += ww.stats.commits.Load()
	}
	e.reg.maybeAdjust(now, commits, w.rng)
}

// collectGarbage drains the front of the worker's GC queue: items whose
// version has fallen below min_rts trigger concurrent chain detachment. The
// queue is wts-ordered, so processing stops at the first ineligible item.
func (w *Worker) collectGarbage() {
	minRTS := w.eng.clock.MinRTS()
	for w.gcHead < len(w.gcQueue) {
		it := w.gcQueue[w.gcHead]
		if it.wts >= minRTS {
			break
		}
		w.gcQueue[w.gcHead] = gcItem{}
		w.gcHead++
		w.collect(it, minRTS)
	}
	if w.gcHead > 256 && w.gcHead*2 > len(w.gcQueue) {
		n := copy(w.gcQueue, w.gcQueue[w.gcHead:])
		w.gcQueue = w.gcQueue[:n]
		w.gcHead = 0
	}
}

// collect performs concurrent garbage collection for one committed version
// (§3.8): (a) acquire the record's GC lock, discarding the item on failure
// to avoid excessive attempts on contended records; (b) verify
// v.wts > record.min_wts so the version pointer is not dangling; then detach
// the earlier-version chain, update record.min_wts, and move the detached
// versions to the limbo list for epoch-delayed reuse.
func (w *Worker) collect(it gcItem, minRTS clock.Timestamp) {
	h := it.tbl.st.Head(it.rid)
	if !h.TryLockGC() {
		return
	}
	if it.wts <= h.GCMinWTS() {
		h.UnlockGC()
		return
	}
	v := it.ver
	chain := v.Next()
	v.SetNext(nil)
	h.SetGCMinWTS(it.wts)
	freedRid := false
	if v.Status() == storage.StatusDeleted && h.Latest() == v {
		// The tombstone is the record's only version and is invisible to
		// every current and future transaction; reclaim the record ID.
		if h.CASLatest(v, nil) {
			freedRid = true
		}
	}
	h.UnlockGC()
	batch := w.gcScratch[:0]
	for c := chain; c != nil; {
		next := c.Next()
		if invariantsEnabled {
			// Reclamation safety (§3.8): every detached version is earlier
			// than the collected version (list order) and below the min_rts
			// horizon, so no current or future transaction can read it; and a
			// PENDING version can never fall below min_rts, because its
			// writer's timestamp is ≥ min_wts > min_rts.
			storage.Assertf(c.WTS < it.wts, "gc: detached wts %v not below collected wts %v", c.WTS, it.wts)
			storage.Assertf(c.WTS < minRTS, "gc: reclaiming wts %v at or above min_rts %v", c.WTS, minRTS)
			storage.Assertf(c.Status() != storage.StatusPending, "gc: detached PENDING version (wts %v)", c.WTS)
		}
		batch = append(batch, limboEntry{v: c, h: h})
		c = next
	}
	if freedRid {
		batch = append(batch, limboEntry{v: v, h: h})
		w.addLimboFree(it.tbl, it.rid)
	}
	for _, e := range batch {
		w.addLimbo(e)
	}
	w.gcScratch = batch[:0]
}

// addLimbo defers a detached version's reuse by limboDelayEpochs quiescence
// rounds.
func (w *Worker) addLimbo(e limboEntry) {
	b := w.limboAppend()
	b.entries = append(b.entries, e)
}

func (w *Worker) addLimboFree(tbl *Table, rid storage.RecordID) {
	b := w.limboAppend()
	b.frees = append(b.frees, ridFree{tbl: tbl, rid: rid})
}

// limboAppend returns the current epoch's limbo batch, creating it if
// needed.
func (w *Worker) limboAppend() *limboBatch {
	epoch := w.eng.epoch.Load()
	if n := len(w.limbo); n > 0 && w.limbo[n-1].epoch == epoch {
		return &w.limbo[n-1]
	}
	var b limboBatch
	if n := len(w.limboSpare); n > 0 {
		b = w.limboSpare[n-1] // reuse drained entry/free slice capacity
		w.limboSpare = w.limboSpare[:n-1]
	}
	b.epoch = epoch
	w.limbo = append(w.limbo, b)
	return &w.limbo[len(w.limbo)-1]
}

// processLimbo returns versions whose delay has expired to the worker's
// pool (or releases inline slots) and frees reclaimed record IDs.
func (w *Worker) processLimbo() {
	epoch := w.eng.epoch.Load()
	n := 0
	reclaimed := uint64(0)
	for n < len(w.limbo) && w.limbo[n].epoch+limboDelayEpochs <= epoch {
		b := &w.limbo[n]
		for _, e := range b.entries {
			if e.v.Inline() {
				e.h.ReleaseInline()
			} else {
				w.pool.Put(e.v)
			}
		}
		reclaimed += uint64(len(b.entries))
		for _, f := range b.frees {
			f.tbl.st.FreeRecordID(w.id, f.rid)
		}
		n++
	}
	if reclaimed > 0 {
		w.stats.addReclaimed(reclaimed)
	}
	if n > 0 {
		for i := 0; i < n; i++ {
			b := w.limbo[i]
			b.epoch = 0
			b.entries = b.entries[:0]
			b.frees = b.frees[:0]
			w.limboSpare = append(w.limboSpare, b)
		}
		w.limbo = append(w.limbo[:0], w.limbo[n:]...)
	}
}
