package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"cicada/internal/storage"
)

// TestModelBasedCRUD runs long random single-worker operation sequences
// against a plain map model: after every committed transaction the engine
// and the model must agree exactly, and aborted transactions must leave no
// trace. This exercises read-own-writes, write-after-read upgrades,
// insert+delete-in-transaction, resizes, and rollback paths.
func TestModelBasedCRUD(t *testing.T) {
	e := newTestEngine(1, nil)
	tbl := e.CreateTable("t")
	w := e.Worker(0)
	rng := rand.New(rand.NewSource(99))

	model := map[storage.RecordID][]byte{}
	var ids []storage.RecordID
	sentinel := errors.New("rollback")

	for txn := 0; txn < 2000; txn++ {
		pending := map[storage.RecordID][]byte{}
		var pendingNew []storage.RecordID
		rollback := rng.Intn(4) == 0
		err := w.Run(func(tx *Txn) error {
			// Reset tentative state in case the transaction retries.
			clear(pending)
			pendingNew = pendingNew[:0]
			ops := 1 + rng.Intn(6)
			for k := 0; k < ops; k++ {
				switch op := rng.Intn(10); {
				case op < 3 && len(ids) > 0: // read, compare to model+pending
					rid := ids[rng.Intn(len(ids))]
					want, inPending := pending[rid]
					if !inPending {
						want = model[rid]
					}
					d, err := tx.Read(tbl, rid)
					if errors.Is(err, ErrNotFound) {
						if want != nil {
							t.Fatalf("txn %d: read %d absent, model has %x", txn, rid, want)
						}
						continue
					}
					if err != nil {
						return err
					}
					if want == nil || !bytes.Equal(d, want) {
						t.Fatalf("txn %d: read %d = %x, want %x", txn, rid, d, want)
					}
				case op < 6 && len(ids) > 0: // update (RMW)
					rid := ids[rng.Intn(len(ids))]
					size := 1 + rng.Intn(300)
					buf, err := tx.Update(tbl, rid, size)
					if errors.Is(err, ErrNotFound) {
						continue
					}
					if err != nil {
						return err
					}
					rng.Read(buf)
					pending[rid] = append([]byte(nil), buf...)
				case op < 7: // blind write to an existing id
					if len(ids) == 0 {
						continue
					}
					rid := ids[rng.Intn(len(ids))]
					cur, inPending := pending[rid]
					if !inPending {
						cur = model[rid]
					}
					if cur == nil {
						continue // blind-writing deleted records resurrects; skip in model
					}
					size := 1 + rng.Intn(300)
					buf, err := tx.Write(tbl, rid, size)
					if err != nil {
						return err
					}
					rng.Read(buf)
					pending[rid] = append([]byte(nil), buf...)
				case op < 9: // insert
					size := 1 + rng.Intn(300)
					rid, buf, err := tx.Insert(tbl, size)
					if err != nil {
						return err
					}
					rng.Read(buf)
					pending[rid] = append([]byte(nil), buf...)
					pendingNew = append(pendingNew, rid)
				default: // delete
					if len(ids) == 0 {
						continue
					}
					rid := ids[rng.Intn(len(ids))]
					err := tx.Delete(tbl, rid)
					if errors.Is(err, ErrNotFound) {
						continue
					}
					if err != nil {
						return err
					}
					pending[rid] = nil
				}
			}
			if rollback {
				return sentinel
			}
			return nil
		})
		if rollback {
			if !errors.Is(err, sentinel) {
				t.Fatalf("txn %d: rollback returned %v", txn, err)
			}
			continue // model unchanged
		}
		if err != nil {
			t.Fatalf("txn %d: %v", txn, err)
		}
		for rid, data := range pending {
			if data == nil {
				delete(model, rid)
			} else {
				model[rid] = data
			}
		}
		for _, rid := range pendingNew {
			if model[rid] != nil {
				ids = append(ids, rid)
			}
		}
		// Occasional full audit.
		if txn%200 == 199 {
			if err := w.Run(func(tx *Txn) error {
				for _, rid := range ids {
					d, err := tx.Read(tbl, rid)
					want := model[rid]
					if errors.Is(err, ErrNotFound) {
						if want != nil {
							t.Fatalf("audit: %d absent, want %x", rid, want)
						}
						continue
					}
					if err != nil {
						return err
					}
					if !bytes.Equal(d, want) {
						t.Fatalf("audit: %d = %x, want %x", rid, d, want)
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
}
