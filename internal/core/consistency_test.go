package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cicada/internal/clock"
)

// TestExternalConsistency: after RunExternal returns, every subsequently
// begun transaction on any worker has a later timestamp.
func TestExternalConsistency(t *testing.T) {
	e := newTestEngine(3, nil)
	tbl := e.CreateTable("t")

	// Background workers keep maintenance alive so min_wts advances.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for id := 1; id < 3; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := e.Worker(id)
			for !stop.Load() {
				w.Idle()
				time.Sleep(5 * time.Microsecond)
			}
		}(id)
	}

	w := e.Worker(0)
	var commitTS clock.Timestamp
	err := w.RunExternal(func(tx *Txn) error {
		commitTS = tx.Timestamp()
		_, buf, err := tx.Insert(tbl, 1)
		if err != nil {
			return err
		}
		buf[0] = 1
		return nil
	})
	stop.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// External consistency: min_wts has passed the commit timestamp, so any
	// new transaction on any worker gets a later timestamp.
	for id := 0; id < 3; id++ {
		ts := e.clock.NewWriteTimestamp(id)
		if ts <= commitTS {
			t.Fatalf("worker %d began at %v, not after externally consistent commit %v", id, ts, commitTS)
		}
	}
}

// TestCausalObserve: after ObserveTimestamp, the worker's next transaction
// has a later timestamp than the observed one.
func TestCausalObserve(t *testing.T) {
	e := newTestEngine(2, nil)
	var remote clock.Timestamp
	for i := 0; i < 10; i++ {
		remote = e.clock.NewWriteTimestamp(1)
	}
	e.Worker(0).ObserveTimestamp(remote)
	local := e.clock.NewWriteTimestamp(0)
	if local <= remote {
		t.Fatalf("causal timestamp %v not after observed %v", local, remote)
	}
}

// TestRunExternalUserError: a user error rolls back and returns without
// waiting on min_wts.
func TestRunExternalUserError(t *testing.T) {
	e := newTestEngine(1, nil)
	tbl := e.CreateTable("t")
	w := e.Worker(0)
	sentinel := timeoutErr("boom")
	err := w.RunExternal(func(tx *Txn) error {
		if _, _, err := tx.Insert(tbl, 1); err != nil {
			return err
		}
		return sentinel
	})
	if err != error(sentinel) {
		t.Fatalf("got %v", err)
	}
}

type timeoutErr string

func (e timeoutErr) Error() string { return string(e) }
