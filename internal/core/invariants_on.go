//go:build cicada_invariants

package core

// invariantsEnabled gates the runtime assertion hooks in this package (build
// tag cicada_invariants). The checks themselves live next to the code they
// guard in validate.go and gc.go; storage.Assertf and the storage check
// helpers do the heavy lifting.
const invariantsEnabled = true
