package core

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"cicada/internal/trace"
)

// maxBackoffCeiling bounds the hill climber; the paper's optima are in the
// microsecond range and DBx1000's fixed scheme uses 100 µs.
const maxBackoffCeiling = 100 * time.Millisecond

// regulator implements Cicada's contention regulation (§3.9): randomized
// backoff whose maximum duration is globally coordinated by the leader
// thread, which hill-climbs toward the value that maximizes committed
// throughput.
type regulator struct {
	// maxNs is the globally coordinated maximum backoff in nanoseconds,
	// read by every worker on abort; the padding keeps the leader's
	// hill-climbing bookkeeping below off the readers' cache line.
	maxNs atomic.Int64
	_     [56]byte
	// fixed disables hill climbing (Figure 10 manual sweeps).
	fixed bool

	period time.Duration
	step   float64 // ns

	// Leader-only hill-climbing state.
	lastUpdate  time.Time
	lastCommits uint64
	prevTput    float64
	prevMaxNs   float64
	havePrev    bool
}

func (r *regulator) init(opts *Options) {
	r.period = opts.BackoffUpdatePeriod
	r.step = float64(opts.BackoffStep)
	if opts.FixedMaxBackoff >= 0 {
		r.fixed = true
		r.maxNs.Store(int64(opts.FixedMaxBackoff))
	}
}

// max returns the current maximum backoff duration.
func (r *regulator) max() time.Duration { return time.Duration(r.maxNs.Load()) }

// maybeAdjust runs one hill-climbing step if a full period has elapsed. The
// gradient is the throughput change divided by the maximum-backoff change
// between the second-to-last and last periods: positive → increase the
// maximum backoff by one step, negative → decrease it, zero or undefined →
// move in a random direction (§3.9).
func (r *regulator) maybeAdjust(now time.Time, commits uint64, rng *rand.Rand) {
	if r.fixed {
		return
	}
	if r.lastUpdate.IsZero() {
		r.lastUpdate = now
		r.lastCommits = commits
		return
	}
	dt := now.Sub(r.lastUpdate)
	if dt < r.period {
		return
	}
	tput := float64(commits-r.lastCommits) / dt.Seconds()
	curMax := float64(r.maxNs.Load())
	delta := r.step
	if r.havePrev {
		dTput := tput - r.prevTput
		dMax := curMax - r.prevMaxNs
		switch {
		case dMax == 0 || dTput == 0:
			if rng.Intn(2) == 0 {
				delta = -r.step
			}
		case dTput/dMax > 0:
			delta = r.step
		default:
			delta = -r.step
		}
	} else if rng.Intn(2) == 0 {
		delta = -r.step
	}
	next := curMax + delta
	if next < 0 {
		next = 0
	}
	if next > float64(maxBackoffCeiling) {
		next = float64(maxBackoffCeiling)
	}
	r.prevTput = tput
	r.prevMaxNs = curMax
	r.havePrev = true
	r.maxNs.Store(int64(next))
	r.lastUpdate = now
	r.lastCommits = commits
}

// backoff sleeps for a random duration in [0, max] after an abort. Short
// backoffs busy-yield on the monotonic clock rather than calling
// time.Sleep, whose scheduler granularity would distort microsecond-scale
// backoff (and would stall the single-CPU testbed).
func (w *Worker) backoff() {
	w.stats.incBackoff()
	max := w.eng.reg.max()
	if max <= 0 {
		runtime.Gosched()
		return
	}
	if opts := &w.eng.opts; !opts.NoHeatTracking && !opts.NoHeatBackoff {
		// Heat-weighted contention regulation: scale this abort's backoff
		// ceiling by the heat of the key that caused it. Hot-key losers take
		// the full regulated maximum (they are fighting over a structurally
		// contended record), warm keys a proportional fraction, and cold-key
		// aborts retry immediately — the conflict was incidental and
		// backing off would only waste the worker. The hill climber still
		// owns the global ceiling.
		var h uint32
		if k := w.txn.conflictKey; k != noConflictKey {
			h = w.heat.get(k)
		}
		if hot := uint32(opts.HeatHotThreshold); h < hot {
			if h == 0 {
				runtime.Gosched()
				return
			}
			max = time.Duration(uint64(max) * uint64(h) / uint64(hot))
			if max <= 0 {
				runtime.Gosched()
				return
			}
			w.stats.incHeatScaledBackoff()
		}
	}
	d := time.Duration(w.rng.Int63n(int64(max) + 1))
	if d == 0 {
		runtime.Gosched()
		return
	}
	w.stats.addAbortTime(d)
	if tr := w.tr; tr != nil && tr.Enabled() {
		tr.Record(trace.EvBackoff, time.Now().UnixNano(), uint64(d), 0, 0)
	}
	if d > 2*time.Millisecond {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}
