package core

import (
	"math/rand"
	"testing"
)

func TestOwnTableBasic(t *testing.T) {
	var o ownTable
	o.init(4)
	if _, ok := o.get(42); ok {
		t.Fatal("empty table reported a hit")
	}
	o.put(42, 7)
	if i, ok := o.get(42); !ok || i != 7 {
		t.Fatalf("get(42) = %d,%v; want 7,true", i, ok)
	}
	o.put(42, 9) // overwrite
	if i, _ := o.get(42); i != 9 {
		t.Fatalf("overwrite: get(42) = %d; want 9", i)
	}
	o.del(42)
	if _, ok := o.get(42); ok {
		t.Fatal("deleted key still present")
	}
	o.put(42, 3) // revive through the tombstone
	if i, ok := o.get(42); !ok || i != 3 {
		t.Fatalf("revived get(42) = %d,%v; want 3,true", i, ok)
	}
}

func TestOwnTableZeroKey(t *testing.T) {
	// ownKey(0, 0) == 0: the zero key must be a first-class citizen.
	var o ownTable
	o.init(4)
	o.put(0, 5)
	if i, ok := o.get(0); !ok || i != 5 {
		t.Fatalf("get(0) = %d,%v; want 5,true", i, ok)
	}
	o.reset()
	if _, ok := o.get(0); ok {
		t.Fatal("reset did not clear the zero key")
	}
}

func TestOwnTableReset(t *testing.T) {
	var o ownTable
	o.init(4)
	for k := uint64(0); k < 10; k++ {
		o.put(k, int(k))
	}
	o.reset()
	for k := uint64(0); k < 10; k++ {
		if _, ok := o.get(k); ok {
			t.Fatalf("key %d survived reset", k)
		}
	}
	o.put(3, 33)
	if i, ok := o.get(3); !ok || i != 33 {
		t.Fatalf("post-reset get(3) = %d,%v; want 33,true", i, ok)
	}
}

func TestOwnTableGenerationWrap(t *testing.T) {
	var o ownTable
	o.init(4)
	o.put(1, 1)
	o.gen = ^uint32(0) - 1
	o.reset() // gen = max
	o.put(2, 2)
	o.reset() // gen wraps: stamps must be cleared
	if _, ok := o.get(1); ok {
		t.Fatal("stale entry visible after generation wrap")
	}
	if _, ok := o.get(2); ok {
		t.Fatal("previous-gen entry visible after generation wrap")
	}
	o.put(3, 3)
	if i, ok := o.get(3); !ok || i != 3 {
		t.Fatalf("post-wrap get(3) = %d,%v; want 3,true", i, ok)
	}
}

// TestOwnTableVsMap cross-checks the probe table against a Go map under a
// random workload of puts, deletes, overwrites, and resets, including
// adversarial keys that collide in the upper hash bits.
func TestOwnTableVsMap(t *testing.T) {
	var o ownTable
	o.init(4)
	ref := map[uint64]int{}
	rng := rand.New(rand.NewSource(1))
	keyFor := func(r *rand.Rand) uint64 {
		k := uint64(r.Intn(200))
		if r.Intn(2) == 0 {
			k <<= 40 // sparse high-bit keys stress the hash distribution
		}
		return k
	}
	for step := 0; step < 200_000; step++ {
		switch r := rng.Intn(100); {
		case r < 55:
			k := keyFor(rng)
			v := rng.Intn(1 << 20)
			o.put(k, v)
			ref[k] = v
		case r < 75:
			k := keyFor(rng)
			o.del(k)
			delete(ref, k)
		case r < 99:
			k := keyFor(rng)
			got, ok := o.get(k)
			want, wantOK := ref[k]
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("step %d: get(%#x) = %d,%v; want %d,%v", step, k, got, ok, want, wantOK)
			}
		default:
			o.reset()
			clear(ref)
		}
	}
}

func TestOwnTableGrowth(t *testing.T) {
	var o ownTable
	o.init(4)
	const n = 10_000
	for k := uint64(0); k < n; k++ {
		o.put(k, int(k)*3)
	}
	for k := uint64(0); k < n; k++ {
		if i, ok := o.get(k); !ok || i != int(k)*3 {
			t.Fatalf("after growth: get(%d) = %d,%v; want %d,true", k, i, ok, int(k)*3)
		}
	}
	if o.live != n {
		t.Fatalf("live = %d; want %d", o.live, n)
	}
}
