package core

import (
	"time"

	"cicada/internal/clock"
	"cicada/internal/fault"
	"cicada/internal/storage"
	"cicada/internal/telemetry"
	"cicada/internal/trace"
)

// Commit validates and commits the transaction (§3.4, §3.5). On a conflict
// it rolls back and returns ErrAborted. The validation order is:
//
//  0. pre-commit hooks (deferred multi-version index updates, §3.6)
//  1. contention-aware write-set sorting (adaptively skipped)
//  2. early version consistency check (adaptively skipped)
//  3. pending version installation, in write-set order
//  4. read timestamp update
//  5. version consistency check
//  6. logging
//  7. write phase: flip PENDING → COMMITTED/DELETED
//
//cicada:noalloc
func (t *Txn) Commit() error {
	if !t.active {
		return ErrTxnClosed
	}
	w := t.worker
	tel := w.tel
	timed := tel != nil || t.sampled
	if t.readOnly {
		// Read-only transactions never validate (§3.1).
		t.active = false
		w.stats.incCommit()
		if timed {
			now := time.Now()
			d := now.Sub(t.telStart)
			if tel != nil {
				tel.phase[phaseExecute].ObserveDuration(d)
			}
			if t.sampled {
				w.tr.Record(trace.EvPhaseExecute, t.telStart.UnixNano(), nonNegNs(d), uint64(t.ts), 0)
				w.tr.Record(trace.EvTxnCommit, t.telStart.UnixNano(), nonNegNs(d), uint64(t.ts), 0)
			}
		}
		t.runCommitHooks()
		return nil
	}
	if timed {
		t.telValStart = time.Now()
		d := t.telValStart.Sub(t.telStart)
		if tel != nil {
			tel.phase[phaseExecute].ObserveDuration(d)
		}
		if t.sampled {
			w.tr.Record(trace.EvPhaseExecute, t.telStart.UnixNano(), nonNegNs(d), uint64(t.ts), 0)
		}
	}
	for _, h := range t.hooks {
		if err := h.TxnPreCommit(t); err != nil {
			t.rollbackCC(AbortPreCommit)
			return ErrAborted
		}
	}
	opts := &t.eng.opts
	skip := w.consecutiveCommits >= opts.AdaptiveSkipThreshold
	if skip && !opts.NoHeatTracking && len(t.writes) > 0 && t.writeSetHot() {
		// Per-record refinement of the §3.5 streak skip: a run of commits
		// proves the worker's recent footprint was uncontended, but a hot
		// key in *this* write set says otherwise — force the contention
		// sort and the early consistency check for this transaction.
		skip = false
		w.stats.incHeatForced()
	}
	if len(t.writes) > 0 {
		if !opts.NoSortWriteSet && !skip {
			t.sortWriteSetByContention()
		}
		if !opts.NoPreCheck && !skip {
			if !t.checkVersionConsistency() {
				return t.failCommit(t.checkAbortReason(AbortPreCheck))
			}
		}
		for _, i := range t.writes {
			a := &t.accesses[i]
			if a.newVer == nil || a.installed {
				continue
			}
			if ok, reason := t.install(a); !ok {
				t.conflictKey = ownKey(a.tbl.ID, a.rid)
				return t.failCommit(reason)
			}
		}
	}
	slack := clock.Timestamp(opts.HeatRTSSlackTicks << clock.ThreadIDBits)
	coarse := slack != 0 && !opts.NoHeatTracking
	hotThreshold := uint32(opts.HeatHotThreshold)
	for _, i := range t.reads {
		a := &t.accesses[i]
		if a.readVer != nil {
			if coarse && w.heat.get(ownKey(a.tbl.ID, a.rid)) < hotThreshold {
				// Coarse rts maintenance for cold records: skip the CAS when
				// a previous coarse raise already covers this timestamp, and
				// otherwise over-raise by the slack so the next slack's worth
				// of cold reads skip it too. rts may only over-approximate
				// (it conservatively aborts the cold record's rare writers),
				// so serializability is untouched.
				if a.readVer.RTS() >= t.ts {
					w.stats.incHeatRTSSkip()
					continue
				}
				a.readVer.RaiseRTS(t.ts + slack)
				w.stats.incHeatRTSCoarse()
				continue
			}
			a.readVer.RaiseRTS(t.ts)
		} else if h := a.tbl.st.Head(a.rid); h != nil {
			h.RaiseAbsentRTS(t.ts)
		}
	}
	if !t.checkVersionConsistency() {
		return t.failCommit(t.checkAbortReason(AbortValidation))
	}
	if lg := t.eng.logger; lg != nil {
		if err := fault.Inject(fault.CoreLog); err != nil {
			return t.failCommit(AbortLogger)
		}
		if err := t.log(lg); err != nil {
			return t.failCommit(AbortLogger)
		}
	}
	var writeStart time.Time
	if timed {
		writeStart = time.Now()
		d := writeStart.Sub(t.telValStart)
		if tel != nil {
			tel.phase[phaseValidate].ObserveDuration(d)
		}
		if t.sampled {
			w.tr.Record(trace.EvPhaseValidate, t.telValStart.UnixNano(), nonNegNs(d), uint64(t.ts), 0)
		}
	}
	// Write phase: make the new versions usable by other transactions.
	for _, i := range t.writes {
		a := &t.accesses[i]
		if a.newVer == nil {
			continue
		}
		if invariantsEnabled && a.installed && !opts.NoWaitPending {
			// At the moment a pending version commits, the committed version
			// below it must not have been read beyond tx.ts (§3.4). Under
			// NoWaitPending speculative readers may violate this and abort
			// later instead, so the check is skipped there.
			storage.CheckCommitOrder(a.newVer, "commit")
		}
		if a.kind == accDelete {
			a.newVer.SetStatus(storage.StatusDeleted)
		} else {
			a.newVer.SetStatus(storage.StatusCommitted)
		}
	}
	w.enqueueGC(t)
	t.eng.clock.OnCommit(w.id)
	w.consecutiveCommits++
	w.stats.incCommit()
	if timed {
		now := time.Now()
		d := now.Sub(writeStart)
		if tel != nil {
			tel.phase[phaseWrite].ObserveDuration(d)
		}
		if t.sampled {
			w.tr.Record(trace.EvPhaseWrite, writeStart.UnixNano(), nonNegNs(d), uint64(t.ts), 0)
			w.tr.Record(trace.EvTxnCommit, t.telStart.UnixNano(), nonNegNs(now.Sub(t.telStart)), uint64(t.ts),
				uint64(len(t.reads))<<32|uint64(len(t.writes))&0xffffffff)
		}
	}
	t.active = false
	t.runCommitHooks()
	return nil
}

// checkAbortReason classifies a consistency-check failure: a pending-wait
// timeout inside resumeSearch overrides the generic reason.
//
//cicada:noalloc
func (t *Txn) checkAbortReason(generic AbortReason) AbortReason {
	if t.pendingTimedOut {
		return AbortPendingWait
	}
	return generic
}

//cicada:noalloc
func (t *Txn) runCommitHooks() {
	for _, h := range t.hooks {
		h.TxnCommitted(t)
	}
}

// Abort rolls the transaction back at the application's request.
//
//cicada:noalloc
func (t *Txn) Abort() {
	if !t.active {
		return
	}
	if t.sampled {
		if tr := t.worker.tr; tr != nil && tr.Enabled() {
			tr.Record(trace.EvTxnAbort, t.telStart.UnixNano(),
				nonNegNs(time.Since(t.telStart)), noConflictKey, uint64(AbortUser))
		}
	}
	t.rollback()
}

// failCommit records a concurrency-control abort and rolls back.
//
//cicada:noalloc
func (t *Txn) failCommit(reason AbortReason) error {
	t.rollbackCC(reason)
	return ErrAborted
}

// rollbackCC is a rollback caused by a conflict: it grants the clock boost,
// resets the adaptive-skip streak, and feeds the abort taxonomy, latency
// histogram, and flight recorder.
//
//cicada:noalloc
func (t *Txn) rollbackCC(reason AbortReason) {
	w := t.worker
	t.lastCC = reason
	w.stats.incAbort(reason)
	if !t.eng.opts.NoHeatTracking && t.conflictKey != noConflictKey {
		// Every keyed CC abort funnels through here (read-phase early
		// aborts via abortNow and validation failures via failCommit), so
		// this is the single abort-attribution bump site.
		w.heat.bump(t.conflictKey)
		w.stats.incHeatAbortBump()
	}
	w.consecutiveCommits = 0
	t.eng.clock.OnAbort(w.id)
	tel := w.tel
	traceAbort := w.tr != nil && w.tr.Enabled()
	if tel != nil || traceAbort {
		now := time.Now()
		// Begin time and phase split are only known when the transaction was
		// timed (telemetry attached or trace-sampled); an untimed abort is
		// recorded as an instant so the always-on abort trace never reads a
		// stale telStart.
		start := now
		var execNs, valNs uint64
		if tel != nil || t.sampled {
			start = t.telStart
			if t.telValStart.IsZero() {
				execNs = nonNegNs(now.Sub(t.telStart))
			} else {
				execNs = nonNegNs(t.telValStart.Sub(t.telStart))
				valNs = nonNegNs(now.Sub(t.telValStart))
			}
		}
		if tel != nil {
			tel.abortLat.ObserveDuration(now.Sub(t.telStart))
			tel.rec.Record(telemetry.TraceSample{
				TS:            uint64(t.ts),
				Reason:        uint64(reason),
				StartUnixNano: t.telStart.UnixNano(),
				ExecuteNs:     execNs,
				ValidateNs:    valNs,
				Reads:         uint64(len(t.reads)),
				Writes:        uint64(len(t.writes)),
			})
		}
		if traceAbort {
			// Concurrency-control aborts are always traced — they are the
			// rare diagnostic signal the contention report is built from.
			w.tr.Record(trace.EvTxnAbort, start.UnixNano(), execNs+valNs,
				t.conflictKey, uint64(reason))
		}
	}
	t.rollback()
}

// rollback undoes the transaction: installed pending versions become
// ABORTED (and are unlinked from the list head when possible); uninstalled
// staged versions are deallocated for immediate reuse, which is safe because
// they were never reachable (§3.4). Insert record IDs are reclaimed.
//
//cicada:noalloc
func (t *Txn) rollback() {
	w := t.worker
	for _, i := range t.writes {
		a := &t.accesses[i]
		nv := a.newVer
		if nv == nil {
			continue
		}
		h := a.tbl.st.Head(a.rid)
		if !a.installed {
			t.unstage(h, nv)
			if a.kind == accInsert {
				a.tbl.st.FreeRecordID(w.id, a.rid)
			}
			continue
		}
		nv.SetStatus(storage.StatusAborted)
		// Opportunistic unlink at the list head; mid-list aborted versions
		// are skipped by readers and reclaimed by chain detachment later.
		if h.Latest() == nv && h.CASLatest(nv, nv.Next()) {
			nv.SetNext(nil)
			if a.kind == accInsert {
				// The record ID was never published (index updates are
				// deferred), so no concurrent reader can hold nv.
				t.unstage(h, nv)
				a.tbl.st.FreeRecordID(w.id, a.rid)
			} else {
				w.addLimbo(limboEntry{v: nv, h: h})
			}
		}
	}
	t.active = false
	for _, h := range t.hooks {
		h.TxnAborted(t)
	}
}

// sortWriteSetByContention partially sorts the write set in descending order
// of approximate contention — the wts of each record's latest version — so
// validation touches the most contended records first and detects conflicts
// before installing versions that would become garbage (§3.5). Only the
// top-k entries are sorted (k=8), costing O(n·k).
const contentionSortK = 8

//cicada:noalloc
func (t *Txn) sortWriteSetByContention() {
	n := len(t.writes)
	if n < 2 {
		return
	}
	// Reuse the per-Txn scratch; it grows to the write-set high-water mark
	// and then validation is allocation-free.
	if cap(t.sortKeys) < n {
		t.sortKeys = make([]clock.Timestamp, n)
	}
	keys := t.sortKeys[:n]
	for j, i := range t.writes {
		a := &t.accesses[i]
		if a.newVer == nil || a.kind == accInsert {
			keys[j] = 0
			continue
		}
		if v := a.tbl.st.Head(a.rid).Latest(); v != nil {
			keys[j] = v.WTS
		}
	}
	k := contentionSortK
	if k > n {
		k = n
	}
	// Partial selection sort: place the k most contended entries first.
	for sel := 0; sel < k; sel++ {
		best := sel
		for j := sel + 1; j < n; j++ {
			if keys[j] > keys[best] {
				best = j
			}
		}
		if best != sel {
			keys[sel], keys[best] = keys[best], keys[sel]
			t.writes[sel], t.writes[best] = t.writes[best], t.writes[sel]
		}
	}
}

// install links the access's staged version into the record's version list
// as PENDING, keeping the list sorted by wts (§3.4 pending version
// installation). It performs the same early aborts as the read phase; on
// failure it reports the abort reason (the write-latest rule or the rts
// re-check). Installation is deadlock-free: insertion position is determined
// by transaction timestamps, so no dependency cycle can form.
//
//cicada:noalloc
func (t *Txn) install(a *access) (bool, AbortReason) {
	h := a.tbl.st.Head(a.rid)
	nv := a.newVer
	nv.PrepareInstall(t.ts)
	checkLatest := !t.eng.opts.NoWriteLatestRule &&
		(a.kind == accRMW || a.kind == accDelete)
	for {
		var prev *storage.Version
		cur := h.Latest()
		prevWTS := ^clock.Timestamp(0)
		restart := false
		for cur != nil && cur.WTS > t.ts {
			if cur.WTS >= prevWTS {
				restart = true
				break
			}
			if checkLatest && cur.Status() != storage.StatusAborted {
				// write-latest-version-only: a COMMITTED or PENDING later
				// version will abort this RMW anyway (§3.2).
				return false, AbortWriteLatest
			}
			prevWTS = cur.WTS
			prev = cur
			cur = cur.Next()
		}
		if restart {
			continue
		}
		if cur != nil && cur.WTS == t.ts {
			// Duplicate timestamp cannot happen (Lemma 1); a recycled node
			// is the only explanation — restart.
			continue
		}
		// Early abort against the version just below the insertion point:
		// if the first committed version below was read after tx.ts, the
		// consistency check must fail (§3.4).
		if vis := firstCommitted(cur); vis != nil {
			if vis.RTS() > t.ts {
				return false, AbortValidation
			}
		} else if h.AbsentRTS() > t.ts && a.kind != accInsert {
			return false, AbortValidation
		}
		nv.SetNext(cur)
		var ok bool
		if prev == nil {
			ok = h.CASLatest(cur, nv)
		} else {
			ok = prev.CASNext(cur, nv)
		}
		if ok {
			if invariantsEnabled {
				storage.CheckChainSorted(h.Latest(), "install")
			}
			a.installed = true
			a.laterVer = prev
			return true, 0
		}
	}
}

// firstCommitted returns the first COMMITTED or DELETED version at or below
// v, without waiting on PENDING versions (they are handled by the
// consistency check).
//
//cicada:noalloc
func firstCommitted(v *storage.Version) *storage.Version {
	for ; v != nil; v = v.Next() {
		switch v.Status() {
		case storage.StatusCommitted, storage.StatusDeleted:
			return v
		}
	}
	return nil
}

// checkVersionConsistency verifies (a) that every previously visible version
// in the read set is still the currently visible version, and (b) that the
// currently visible version of every record in the write set has rts ≤
// tx.ts (§3.4). It is used both as the early precheck and as the required
// final check; repeated searches resume from each access's later_version
// (§3.5).
//
//cicada:noalloc
func (t *Txn) checkVersionConsistency() bool {
	for _, i := range t.reads {
		a := &t.accesses[i]
		vis := t.resumeSearch(a)
		t.emitWait(a.tbl, a.rid)
		if t.pendingTimedOut || t.specSkippedPending || vis != a.readVer {
			// A pending-wait timeout fails the check even when the
			// indeterminate result happens to match (e.g. an absent read).
			// Likewise a NoWaitPending search that speculatively skipped an
			// unresolved PENDING version between the read version and tx.ts:
			// that writer may still commit, in which case this read would be
			// stale (docs/CONCURRENCY.md "No-wait validation ordering").
			t.conflictKey = ownKey(a.tbl.ID, a.rid)
			return false
		}
	}
	for _, i := range t.writes {
		a := &t.accesses[i]
		if a.newVer == nil || a.kind == accInsert {
			continue
		}
		if a.kind == accRMW || a.kind == accDelete {
			// Visibility is covered by the read-set pass above, but the rts
			// of the version being replaced must be re-checked: a concurrent
			// reader may raise it between our install-time check and here
			// (the install check and a reader's raise are not one atomic
			// step). Without this, a reader serialized after tx.ts can have
			// read the version this transaction replaces — the root cause of
			// the TestSerializabilityNoWait flake (docs/CONCURRENCY.md).
			if a.readVer != nil && a.readVer.RTS() > t.ts {
				t.conflictKey = ownKey(a.tbl.ID, a.rid)
				return false
			}
			continue
		}
		// Blind write: the currently visible version must not have been
		// read after tx.ts.
		vis := t.resumeSearch(a)
		t.emitWait(a.tbl, a.rid)
		if t.pendingTimedOut || t.specSkippedPending {
			t.conflictKey = ownKey(a.tbl.ID, a.rid)
			return false
		}
		if vis != nil {
			if vis.RTS() > t.ts {
				t.conflictKey = ownKey(a.tbl.ID, a.rid)
				return false
			}
		} else if h := a.tbl.st.Head(a.rid); h.AbsentRTS() > t.ts {
			t.conflictKey = ownKey(a.tbl.ID, a.rid)
			return false
		}
	}
	return true
}

// writeSetHot reports whether any write-set key is at or above the hot
// threshold in this worker's heat table.
//
//cicada:noalloc
func (t *Txn) writeSetHot() bool {
	w := t.worker
	hot := uint32(t.eng.opts.HeatHotThreshold)
	for _, i := range t.writes {
		a := &t.accesses[i]
		if a.newVer == nil {
			continue
		}
		if w.heat.get(ownKey(a.tbl.ID, a.rid)) >= hot {
			return true
		}
	}
	return false
}

// log hands the write and insert sets to the durability logger (§3.7).
//
//cicada:noalloc
func (t *Txn) log(lg Logger) error {
	t.logBuf = t.logBuf[:0]
	for _, i := range t.writes {
		a := &t.accesses[i]
		if a.newVer == nil || a.promoted {
			continue
		}
		e := LogEntry{Table: a.tbl.ID, Record: a.rid}
		if a.kind == accDelete {
			e.Deleted = true
		} else {
			e.Data = a.newVer.Data
		}
		t.logBuf = append(t.logBuf, e)
	}
	if len(t.logBuf) == 0 {
		return nil
	}
	return lg.Log(t.worker.id, t.ts, t.logBuf)
}
