package core

import (
	"runtime"
	"time"

	"cicada/internal/clock"
	"cicada/internal/storage"
	"cicada/internal/trace"
)

// accessKind classifies a transaction's record accesses.
type accessKind uint8

const (
	accRead   accessKind = iota
	accWrite             // blind write: no dependency on the previous value
	accRMW               // read-modify-write
	accInsert            // new record on a freshly allocated record ID
	accDelete            // install a DELETED tombstone version
)

// access is one entry in the transaction's read/write/insert sets.
type access struct {
	tbl  *Table
	rid  storage.RecordID
	kind accessKind
	// readVer is the visible version observed during the read phase; nil
	// when the record was absent or the access is an insert.
	readVer *storage.Version
	// laterVer is the version immediately later than tx.ts observed during
	// the last search; repeated searches resume from it (§3.5 incremental
	// version search).
	laterVer *storage.Version
	// newVer is the locally staged new version for write-type accesses.
	newVer *storage.Version
	// installed is set once newVer is linked into the record's version list.
	installed bool
	// promoted marks an inlining promotion write (§3.3): a read upgraded to
	// an RMW that copies the same data into the inline slot.
	promoted bool
}

// Txn is a Cicada transaction. It is owned by a single Worker and reused
// across transactions to avoid per-transaction allocation.
type Txn struct {
	eng      *Engine
	worker   *Worker
	ts       clock.Timestamp
	readOnly bool
	active   bool
	// pendingTimedOut is set when a PENDING spin-wait exceeded
	// Options.PendingWaitLimit; the caller aborts with AbortPendingWait.
	pendingTimedOut bool
	// telStart / telValStart mark the begin and validation-entry times for
	// phase latency histograms, the flight recorder, and trace events. Only
	// set when the worker has telemetry attached (worker.tel != nil) or the
	// transaction is trace-sampled, so a disabled engine makes no extra
	// time.Now calls.
	telStart    time.Time
	telValStart time.Time
	// sampled marks a transaction chosen by trace sampling: it emits
	// begin/commit/phase events and times its pending-version waits.
	sampled bool
	// conflictKey remembers the key (ownKey form) that caused a
	// concurrency-control abort, for the abort trace event's attribution;
	// noConflictKey when the abort has no single key.
	conflictKey uint64
	// lastCC records the reason of the most recent concurrency-control
	// abort on this transaction slot; RunLimited reports it when a retry
	// budget is exhausted so callers (the network server's wire error
	// codes) can surface the abort taxonomy.
	lastCC AbortReason
	// lastWaitNs carries the pending-wait time accumulated by the most
	// recent visibility search to the caller's emitWait.
	lastWaitNs uint64
	// waitedPending marks that the most recent visibility search spun on a
	// PENDING version at least once, regardless of trace sampling; emitWait
	// consumes it to attribute the stall to the record's heat.
	waitedPending bool
	// specSkippedPending marks that the most recent resumeSearch (under
	// Options.NoWaitPending) speculatively skipped an unresolved PENDING
	// version at or below tx.ts. The validation consistency check must fail
	// then: the skipped writer may commit, which would make this
	// transaction's read stale (docs/CONCURRENCY.md "No-wait validation
	// ordering").
	specSkippedPending bool

	accesses []access
	// writes holds indexes into accesses for write-type entries, in
	// validation order (possibly contention-sorted).
	writes []int
	// reads holds indexes into accesses for read-set entries.
	reads []int
	// own maps (table,record) → accesses index for read-own-writes and
	// read-set dedup, without per-access map-runtime hashing.
	own ownTable
	// sortKeys is the reusable contention-sort scratch (§3.5); sized to the
	// write-set high-water mark.
	sortKeys []clock.Timestamp
	// logBuf is the reusable log entry buffer handed to the Logger.
	logBuf []LogEntry
	// hooks receive lifecycle callbacks: pre-commit at the start of
	// validation (deferred multi-version index updates, §3.6), then
	// committed or aborted once the outcome is decided. The slice is reused
	// across transactions.
	hooks []TxnHook
}

// TxnHook observes a transaction's lifecycle with typed callbacks. Hook
// values registered with AddHook are typically long-lived per-worker
// objects, so registration allocates nothing — unlike the closure-based
// AddPreCommit/AddOnCommit/AddOnAbort convenience wrappers, which box one
// adapter per call and are kept for tests and cold paths.
type TxnHook interface {
	// TxnPreCommit runs at the start of validation, in registration order;
	// returning an error aborts the transaction.
	TxnPreCommit(t *Txn) error
	// TxnCommitted runs after a successful commit.
	TxnCommitted(t *Txn)
	// TxnAborted runs after a rollback.
	TxnAborted(t *Txn)
}

//cicada:noalloc
func ownKey(tbl TableID, rid storage.RecordID) uint64 {
	return uint64(tbl)<<48 | uint64(rid)&0xffffffffffff
}

//cicada:noalloc
func (t *Txn) begin(ts clock.Timestamp, readOnly bool) {
	t.ts = ts
	t.readOnly = readOnly
	t.active = true
	t.pendingTimedOut = false
	t.conflictKey = noConflictKey
	t.lastWaitNs = 0
	t.waitedPending = false
	t.specSkippedPending = false
	tr := t.worker.tr
	t.sampled = tr != nil && tr.Enabled() && tr.SampleTxn()
	if t.worker.tel != nil || t.sampled {
		t.telStart = time.Now()
		t.telValStart = time.Time{}
	}
	if t.sampled {
		tr.Record(trace.EvTxnBegin, t.telStart.UnixNano(), 0, uint64(ts), 0)
	}
	t.accesses = t.accesses[:0]
	t.writes = t.writes[:0]
	t.reads = t.reads[:0]
	t.logBuf = t.logBuf[:0]
	for i := range t.hooks {
		t.hooks[i] = nil // drop references; keep capacity
	}
	t.hooks = t.hooks[:0]
	t.own.reset()
}

// Timestamp returns the transaction's timestamp.
func (t *Txn) Timestamp() clock.Timestamp { return t.ts }

// ReadOnly reports whether this is a read-only snapshot transaction.
func (t *Txn) ReadOnly() bool { return t.readOnly }

// Worker returns the owning worker's ID.
func (t *Txn) Worker() int { return t.worker.id }

// Engine returns the engine this transaction runs on.
func (t *Txn) Engine() *Engine { return t.eng }

// searchVisible walks the record's version list latest-to-earliest and
// returns the visible version for ts plus the version immediately later than
// ts (§3.2). It spin-waits on PENDING versions (or speculatively skips them
// with Options.NoWaitPending) and restarts if it observes evidence of a
// recycled node (out-of-order wts or an UNUSED inline slot).
//
//cicada:noalloc
func (t *Txn) searchVisible(h *storage.Head) (visible, later *storage.Version) {
	noWait := t.eng.opts.NoWaitPending
	waitLimit := t.eng.opts.PendingWaitLimit
	spins := 0
	var waitStart time.Time
restart:
	later = nil
	prevWTS := ^clock.Timestamp(0)
	v := h.Latest()
	for v != nil {
		wts := v.WTS
		if wts >= prevWTS {
			goto restart // chain mutated under us (recycled node)
		}
		prevWTS = wts
		if wts > t.ts {
			later = v
			v = v.Next()
			continue
		}
		if wts == t.ts && !t.readOnly {
			// Timestamps are unique, so a version at exactly tx.ts is this
			// transaction's own staged write reached through a different
			// access entry (e.g. a record ID freed and re-inserted within
			// the transaction); the read observes the version below it.
			v = v.Next()
			continue
		}
		switch v.Status() {
		case storage.StatusPending:
			if noWait {
				v = v.Next()
				continue
			}
			t.waitedPending = true
			if t.sampled && waitStart.IsZero() {
				waitStart = time.Now()
			}
			if waitLimit > 0 {
				spins++
				if spins > waitLimit {
					t.pendingTimedOut = true
					t.noteWait(waitStart)
					return nil, later
				}
			}
			runtime.Gosched()
			// Re-check the same version; the writer is validating and will
			// commit or abort shortly.
		case storage.StatusAborted:
			v = v.Next()
		case storage.StatusUnused:
			goto restart
		default: // COMMITTED or DELETED
			t.noteWait(waitStart)
			return v, later
		}
	}
	t.noteWait(waitStart)
	return nil, later
}

// resumeSearch re-runs the visibility search during validation, resuming
// from the access's remembered laterVer when possible (§3.5 incremental
// version search). It skips the transaction's own pending version.
//
//cicada:noalloc
func (t *Txn) resumeSearch(a *access) (visible *storage.Version) {
	h := a.tbl.st.Head(a.rid)
	if h == nil {
		return nil // read of a never-allocated record ID
	}
	noWait := t.eng.opts.NoWaitPending
	waitLimit := t.eng.opts.PendingWaitLimit
	spins := 0
	t.specSkippedPending = false
	var waitStart time.Time
restart:
	var v *storage.Version
	prevWTS := ^clock.Timestamp(0)
	if lv := a.laterVer; lv != nil && lv.Status() != storage.StatusUnused && lv.WTS > t.ts {
		// Any version that could change our visibility appears after
		// laterVer in the list, so resume there.
		prevWTS = lv.WTS
		v = lv.Next()
	} else {
		a.laterVer = nil
		v = h.Latest()
	}
	for v != nil {
		wts := v.WTS
		if wts >= prevWTS {
			a.laterVer = nil
			goto restart
		}
		prevWTS = wts
		if wts > t.ts {
			a.laterVer = v
			v = v.Next()
			continue
		}
		if wts == t.ts {
			// This transaction's own installed version (timestamps are
			// unique): the previously visible version lies below it.
			v = v.Next()
			continue
		}
		switch v.Status() {
		case storage.StatusPending:
			if noWait {
				// The walk already passed the wts > tx.ts region, so this
				// pending version is at or below tx.ts and unresolved: its
				// writer may still commit between it and our read version.
				// Record the speculation so the consistency check fails
				// rather than certify a possibly-stale read.
				t.specSkippedPending = true
				v = v.Next()
				continue
			}
			t.waitedPending = true
			if t.sampled && waitStart.IsZero() {
				waitStart = time.Now()
			}
			if waitLimit > 0 {
				spins++
				if spins > waitLimit {
					// Make the consistency check fail; Commit classifies
					// the abort as AbortPendingWait via the flag.
					t.pendingTimedOut = true
					t.noteWait(waitStart)
					return nil
				}
			}
			runtime.Gosched()
		case storage.StatusAborted:
			v = v.Next()
		case storage.StatusUnused:
			a.laterVer = nil
			goto restart
		default:
			t.noteWait(waitStart)
			return v
		}
	}
	t.noteWait(waitStart)
	return nil
}

// hasCommittedOrPendingLater reports whether a version later than tx.ts that
// is COMMITTED or PENDING exists above the given access's visible version.
// Used by the write-latest-version-only early abort rule for RMW (§3.2).
//
//cicada:noalloc
func laterBlocksRMW(h *storage.Head, ts clock.Timestamp, ownNew *storage.Version) bool {
	for v := h.Latest(); v != nil; v = v.Next() {
		if v.WTS <= ts {
			return false
		}
		if v == ownNew {
			continue
		}
		switch v.Status() {
		case storage.StatusCommitted, storage.StatusPending, storage.StatusDeleted:
			return true
		}
	}
	return false
}

// abortNow rolls back after a read-phase early abort (§3.2). Early aborts
// are conflict aborts: they count toward the abort statistics, grant the
// temporary clock boost, and reset the adaptive-skip streak, exactly like
// validation-phase aborts.
//
//cicada:noalloc
func (t *Txn) abortNow(reason AbortReason) error {
	t.rollbackCC(reason)
	return ErrAborted
}

// Read returns the record's data at the transaction's timestamp. The
// returned slice aliases shared memory: it is valid until the transaction
// finishes and must not be modified (record data is immutable once
// committed, so no local copy or re-validation read is needed — Cicada has
// no "extra reads", §2.1/§3.2).
//
//cicada:noalloc
func (t *Txn) Read(tbl *Table, rid storage.RecordID) ([]byte, error) {
	if !t.active {
		return nil, ErrTxnClosed
	}
	if i, ok := t.own.get(ownKey(tbl.ID, rid)); ok {
		a := &t.accesses[i]
		switch a.kind {
		case accDelete:
			return nil, ErrNotFound
		case accRead:
			if a.readVer == nil || a.readVer.Status() == storage.StatusDeleted {
				return nil, ErrNotFound
			}
			return a.readVer.Data, nil
		default:
			return a.newVer.Data, nil
		}
	}
	h := tbl.st.Head(rid)
	if h == nil {
		if !t.readOnly {
			t.trackRead(tbl, rid, nil, nil)
		}
		return nil, ErrNotFound
	}
	visible, later := t.searchVisible(h)
	t.emitWait(tbl, rid)
	if t.readOnly {
		if visible == nil || visible.Status() == storage.StatusDeleted {
			return nil, ErrNotFound
		}
		return visible.Data, nil
	}
	if t.pendingTimedOut {
		t.conflictKey = ownKey(tbl.ID, rid)
		return nil, t.abortNow(AbortPendingWait)
	}
	t.trackRead(tbl, rid, visible, later)
	if visible == nil || visible.Status() == storage.StatusDeleted {
		return nil, ErrNotFound
	}
	t.maybePromote(tbl, h, rid, visible)
	return visible.Data, nil
}

// trackRead records a read-set entry (including absent reads, which are
// validated against later inserts).
//
//cicada:noalloc
func (t *Txn) trackRead(tbl *Table, rid storage.RecordID, visible, later *storage.Version) {
	t.accesses = append(t.accesses, access{
		tbl: tbl, rid: rid, kind: accRead, readVer: visible, laterVer: later,
	})
	i := len(t.accesses) - 1
	t.reads = append(t.reads, i)
	t.own.put(ownKey(tbl.ID, rid), i)
}

// maybePromote upgrades a read of a cold, non-inline latest version to an
// inlining promotion write (§3.3). Conditions: the version is early enough
// ((v.wts) < min_rts, so concurrent writes are rare), it is the latest
// version, and the inline slot is free.
//
//cicada:noalloc
func (t *Txn) maybePromote(tbl *Table, h *storage.Head, rid storage.RecordID, v *storage.Version) {
	if !tbl.st.Inlining() || v.Inline() || len(v.Data) > storage.InlineSize {
		return
	}
	if v.WTS >= t.eng.clock.MinRTS() {
		return
	}
	if h.Latest() != v || h.InlineVersion().Status() != storage.StatusUnused {
		return
	}
	inlineV, ok := h.TryAcquireInline(len(v.Data))
	if !ok {
		return
	}
	copy(inlineV.Data, v.Data)
	i, _ := t.own.get(ownKey(tbl.ID, rid)) // read entry added just before
	a := &t.accesses[i]
	a.kind = accRMW
	a.newVer = inlineV
	a.promoted = true
	t.writes = append(t.writes, i)
	t.worker.stats.incPromotion()
}

// stage prepares a new local version of size bytes for the record, trying
// the inline slot first (§3.3).
//
//cicada:noalloc
func (t *Txn) stage(h *storage.Head, size int) *storage.Version {
	if h != nil && t.eng.opts.Inlining {
		if v, ok := h.TryAcquireInline(size); ok {
			return v
		}
	}
	return t.worker.pool.Get(size)
}

// unstage releases a staged version that was never installed.
//
//cicada:noalloc
func (t *Txn) unstage(h *storage.Head, v *storage.Version) {
	if v == nil {
		return
	}
	if v.Inline() {
		h.ReleaseInline()
		return
	}
	t.worker.pool.Put(v)
}

// Write stages a blind write: the new data does not depend on the record's
// previous value, so no read dependency is recorded and the version may
// commit below a later committed version (§3.4 note on write-only
// operations). It returns a writable buffer for the new record data.
//
//cicada:noalloc
func (t *Txn) Write(tbl *Table, rid storage.RecordID, size int) ([]byte, error) {
	if !t.active {
		return nil, ErrTxnClosed
	}
	if t.readOnly {
		return nil, ErrReadOnly
	}
	if i, ok := t.own.get(ownKey(tbl.ID, rid)); ok {
		a := &t.accesses[i]
		switch a.kind {
		case accDelete:
			return nil, ErrNotFound
		case accRead:
			// Write after read: upgrade to an RMW entry (the read
			// dependency already exists) with a fresh, uninitialized buffer.
			h := tbl.st.Head(rid)
			nv := t.stage(h, size)
			a.kind = accRMW
			a.newVer = nv
			t.writes = append(t.writes, i)
			return nv.Data, nil
		default:
			return t.restageOwn(i, size)
		}
	}
	h := tbl.st.Head(rid)
	if h == nil {
		return nil, ErrNotFound
	}
	// Early abort: if the currently visible version was read as late as a
	// timestamp after ours, validation cannot succeed (§3.2).
	visible, later := t.searchVisible(h)
	t.emitWait(tbl, rid)
	if t.pendingTimedOut {
		t.conflictKey = ownKey(tbl.ID, rid)
		return nil, t.abortNow(AbortPendingWait)
	}
	if visible != nil && visible.RTS() > t.ts {
		t.conflictKey = ownKey(tbl.ID, rid)
		return nil, t.abortNow(AbortRTSEarly)
	}
	nv := t.stage(h, size)
	t.accesses = append(t.accesses, access{
		tbl: tbl, rid: rid, kind: accWrite, laterVer: later, newVer: nv,
	})
	i := len(t.accesses) - 1
	t.writes = append(t.writes, i)
	t.own.put(ownKey(tbl.ID, rid), i)
	return nv.Data, nil
}

// restageOwn revises an existing own-write entry (write-after-write within
// one transaction), resizing its staged buffer. The caller has verified the
// entry is a write-type access.
//
//cicada:noalloc
func (t *Txn) restageOwn(i, size int) ([]byte, error) {
	a := &t.accesses[i]
	nv := a.newVer
	if cap(nv.Data) >= size {
		nv.Data = nv.Data[:size]
		return nv.Data, nil
	}
	grown := t.worker.pool.Get(size)
	copy(grown.Data, nv.Data)
	if nv.Inline() {
		// Grew past the inline limit: fall back to a pooled version.
		a.tbl.st.Head(a.rid).ReleaseInline()
	} else {
		t.worker.pool.Put(nv)
	}
	a.newVer = grown
	return grown.Data, nil
}

// Update stages a read-modify-write: it returns a writable buffer
// initialized with a copy of the visible record data (resized to newSize if
// newSize ≥ 0). The read dependency is recorded and the write-latest-
// version-only early abort applies (§3.2).
//
//cicada:noalloc
func (t *Txn) Update(tbl *Table, rid storage.RecordID, newSize int) ([]byte, error) {
	if !t.active {
		return nil, ErrTxnClosed
	}
	if t.readOnly {
		return nil, ErrReadOnly
	}
	if i, ok := t.own.get(ownKey(tbl.ID, rid)); ok {
		a := &t.accesses[i]
		switch a.kind {
		case accDelete:
			return nil, ErrNotFound
		case accRead:
			if a.readVer == nil || a.readVer.Status() == storage.StatusDeleted {
				return nil, ErrNotFound
			}
			// Upgrade read → RMW.
			size := newSize
			if size < 0 {
				size = len(a.readVer.Data)
			}
			h := tbl.st.Head(rid)
			nv := t.stage(h, size)
			n := copy(nv.Data, a.readVer.Data)
			for j := n; j < len(nv.Data); j++ {
				nv.Data[j] = 0
			}
			a.kind = accRMW
			a.newVer = nv
			t.writes = append(t.writes, i)
			return nv.Data, nil
		default:
			if newSize >= 0 && newSize != len(a.newVer.Data) {
				return t.restageOwn(i, newSize)
			}
			return a.newVer.Data, nil
		}
	}
	h := tbl.st.Head(rid)
	if h == nil {
		return nil, ErrNotFound
	}
	visible, later := t.searchVisible(h)
	t.emitWait(tbl, rid)
	if t.pendingTimedOut {
		t.conflictKey = ownKey(tbl.ID, rid)
		return nil, t.abortNow(AbortPendingWait)
	}
	if visible == nil || visible.Status() == storage.StatusDeleted {
		t.trackRead(tbl, rid, visible, later)
		return nil, ErrNotFound
	}
	// Early aborts (§3.2): rts check and write-latest-version-only.
	if visible.RTS() > t.ts {
		t.conflictKey = ownKey(tbl.ID, rid)
		return nil, t.abortNow(AbortRTSEarly)
	}
	if !t.eng.opts.NoWriteLatestRule && later != nil && laterBlocksRMW(h, t.ts, nil) {
		t.conflictKey = ownKey(tbl.ID, rid)
		return nil, t.abortNow(AbortWriteLatest)
	}
	size := newSize
	if size < 0 {
		size = len(visible.Data)
	}
	nv := t.stage(h, size)
	if nv == visible {
		// Cannot happen: visible is committed, the inline slot was UNUSED.
		panic("core: staged over visible version")
	}
	n := copy(nv.Data, visible.Data)
	for j := n; j < len(nv.Data); j++ {
		nv.Data[j] = 0
	}
	t.accesses = append(t.accesses, access{
		tbl: tbl, rid: rid, kind: accRMW, readVer: visible, laterVer: later, newVer: nv,
	})
	i := len(t.accesses) - 1
	t.writes = append(t.writes, i)
	t.reads = append(t.reads, i)
	t.own.put(ownKey(tbl.ID, rid), i)
	return nv.Data, nil
}

// Insert creates a new record and returns its ID plus a writable buffer for
// its data. The record ID is private to the transaction until commit; on
// abort it is reclaimed immediately without the ABA problem (§3.4).
//
//cicada:noalloc
func (t *Txn) Insert(tbl *Table, size int) (storage.RecordID, []byte, error) {
	if !t.active {
		return storage.InvalidRecordID, nil, ErrTxnClosed
	}
	if t.readOnly {
		return storage.InvalidRecordID, nil, ErrReadOnly
	}
	rid := tbl.st.AllocRecordID(t.worker.id)
	h := tbl.st.Head(rid)
	nv := t.stage(h, size)
	t.accesses = append(t.accesses, access{
		tbl: tbl, rid: rid, kind: accInsert, newVer: nv,
	})
	i := len(t.accesses) - 1
	t.writes = append(t.writes, i)
	t.own.put(ownKey(tbl.ID, rid), i)
	return rid, nv.Data, nil
}

// Delete stages a record deletion: a zero-length version whose status
// becomes DELETED on commit, letting garbage collection reclaim the record
// ID (§3.2).
//
//cicada:noalloc
func (t *Txn) Delete(tbl *Table, rid storage.RecordID) error {
	if !t.active {
		return ErrTxnClosed
	}
	if t.readOnly {
		return ErrReadOnly
	}
	if i, ok := t.own.get(ownKey(tbl.ID, rid)); ok {
		a := &t.accesses[i]
		switch a.kind {
		case accDelete:
			return ErrNotFound
		case accInsert:
			// Insert+delete in one transaction: drop both.
			t.unstage(a.tbl.st.Head(a.rid), a.newVer)
			a.newVer = nil
			a.kind = accDelete
			tbl.st.FreeRecordID(t.worker.id, rid)
			t.own.del(ownKey(tbl.ID, rid))
			// Remove from the write list lazily: validation skips nil newVer.
			return nil
		case accRead:
			if a.readVer == nil || a.readVer.Status() == storage.StatusDeleted {
				return ErrNotFound
			}
			h := tbl.st.Head(rid)
			nv := t.stage(h, 0)
			a.kind = accDelete
			a.newVer = nv
			t.writes = append(t.writes, i)
			return nil
		default:
			// Write-then-delete in one transaction: the staged write becomes
			// a tombstone.
			t.unstage(tbl.st.Head(rid), a.newVer)
			a.newVer = t.worker.pool.Get(0)
			a.kind = accDelete
			return nil
		}
	}
	h := tbl.st.Head(rid)
	if h == nil {
		return ErrNotFound
	}
	visible, later := t.searchVisible(h)
	t.emitWait(tbl, rid)
	if t.pendingTimedOut {
		t.conflictKey = ownKey(tbl.ID, rid)
		return t.abortNow(AbortPendingWait)
	}
	if visible == nil || visible.Status() == storage.StatusDeleted {
		t.trackRead(tbl, rid, visible, later)
		return ErrNotFound
	}
	if visible.RTS() > t.ts {
		t.conflictKey = ownKey(tbl.ID, rid)
		return t.abortNow(AbortRTSEarly)
	}
	if !t.eng.opts.NoWriteLatestRule && later != nil && laterBlocksRMW(h, t.ts, nil) {
		t.conflictKey = ownKey(tbl.ID, rid)
		return t.abortNow(AbortWriteLatest)
	}
	nv := t.stage(h, 0)
	t.accesses = append(t.accesses, access{
		tbl: tbl, rid: rid, kind: accDelete, readVer: visible, laterVer: later, newVer: nv,
	})
	i := len(t.accesses) - 1
	t.writes = append(t.writes, i)
	t.reads = append(t.reads, i)
	t.own.put(ownKey(tbl.ID, rid), i)
	return nil
}

// ReadDirect reads a single record without a transaction (Appendix B).
// Record data is always consistent in Cicada, so locating the visible
// version at the worker's read timestamp needs no locking or local copy.
//
//cicada:noalloc
func (w *Worker) ReadDirect(tbl *Table, rid storage.RecordID) ([]byte, bool) {
	h := tbl.st.Head(rid)
	if h == nil {
		return nil, false
	}
	ts := w.eng.clock.ReadTimestamp(w.id)
	t := &w.txn // reuse search machinery; no state is recorded
	saved, savedTimeout, savedWaited := t.ts, t.pendingTimedOut, t.waitedPending
	t.ts = ts
	v, _ := t.searchVisible(h)
	t.ts, t.pendingTimedOut, t.waitedPending = saved, savedTimeout, savedWaited
	if v == nil || v.Status() == storage.StatusDeleted {
		return nil, false
	}
	return v.Data, true
}

// AddHook registers a typed lifecycle hook for the current transaction.
// Registering a long-lived hook object (e.g. a per-worker adapter struct)
// does not allocate; the hook list is cleared when the next transaction
// begins.
func (t *Txn) AddHook(h TxnHook) { t.hooks = append(t.hooks, h) }

// preCommitFunc, onCommitFunc, and onAbortFunc adapt bare closures to
// TxnHook for the legacy convenience API. Each registration boxes one
// adapter value; hot paths should implement TxnHook on a reusable object
// and call AddHook instead.
type preCommitFunc struct{ fn func(*Txn) error }

func (h preCommitFunc) TxnPreCommit(t *Txn) error { return h.fn(t) }
func (preCommitFunc) TxnCommitted(*Txn)           {}
func (preCommitFunc) TxnAborted(*Txn)             {}

type onCommitFunc struct{ fn func() }

func (onCommitFunc) TxnPreCommit(*Txn) error { return nil }
func (h onCommitFunc) TxnCommitted(*Txn)     { h.fn() }
func (onCommitFunc) TxnAborted(*Txn)         {}

type onAbortFunc struct{ fn func() }

func (onAbortFunc) TxnPreCommit(*Txn) error { return nil }
func (onAbortFunc) TxnCommitted(*Txn)       {}
func (h onAbortFunc) TxnAborted(*Txn)       { h.fn() }

// AddPreCommit registers a closure that runs at the start of validation;
// returning an error aborts the transaction.
func (t *Txn) AddPreCommit(fn func(*Txn) error) { t.AddHook(preCommitFunc{fn}) }

// AddOnCommit registers a closure that runs after a successful commit.
func (t *Txn) AddOnCommit(fn func()) { t.AddHook(onCommitFunc{fn}) }

// AddOnAbort registers a closure that runs after a rollback.
func (t *Txn) AddOnAbort(fn func()) { t.AddHook(onAbortFunc{fn}) }
