package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed, type-checked package.
type Package struct {
	// Path is the package's import path ("cicada/internal/core", or a
	// testdata-relative path for analyzer fixtures).
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Name is the package name from the package clauses.
	Name string
	// Files are the parsed source files (with comments).
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's recordings for Files.
	Info *types.Info
}

// A Program is a set of packages loaded against one token.FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	// Root is the absolute source-tree directory the program was loaded
	// from (the module root for the real repository, a fixture tree for
	// analyzer tests).
	Root string
	// Prefix is the import-path prefix mapping to Root ("cicada", or ""
	// for fixture trees).
	Prefix string
	// Tags are the extra build tags the program was loaded with.
	Tags []string

	byPath map[string]*Package
	docs   map[string]*DocFile
}

// Package returns the loaded package with the given import path, or nil.
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// A DocFile is a non-Go file (documentation) registered in the program's
// FileSet so that analyzers can report findings at real doc positions.
type DocFile struct {
	// Path is the absolute path of the file.
	Path string
	// Content is the file's full text.
	Content string
	// Lines are Content split on newlines (1-indexed via Pos).
	Lines []string

	tf *token.File
}

// Pos returns the token.Pos of the given 1-based line and column.
func (d *DocFile) Pos(line, col int) token.Pos {
	if line < 1 || line > d.tf.LineCount() {
		return d.tf.Pos(0)
	}
	p := d.tf.LineStart(line)
	if col > 1 {
		p += token.Pos(col - 1)
	}
	return p
}

// Doc reads and memoizes the file at path (absolute, or relative to the
// program root), registering it in the FileSet so its positions resolve
// like source positions.
func (p *Program) Doc(path string) (*DocFile, error) {
	if !filepath.IsAbs(path) {
		path = filepath.Join(p.Root, path)
	}
	if d, ok := p.docs[path]; ok {
		return d, nil
	}
	content, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	tf := p.Fset.AddFile(path, -1, len(content))
	tf.SetLinesForContent(content)
	d := &DocFile{
		Path:    path,
		Content: string(content),
		Lines:   strings.Split(string(content), "\n"),
		tf:      tf,
	}
	if p.docs == nil {
		p.docs = make(map[string]*DocFile)
	}
	p.docs[path] = d
	return d, nil
}

// FindDoc walks up from dir (absolute, at or below the program root)
// looking for rel (e.g. "docs/DURABILITY.md"), stopping after checking the
// root itself. It lets one analyzer serve both the real repository (docs at
// the module root) and fixture trees (docs inside the fixture subtree).
func (p *Program) FindDoc(dir, rel string) (*DocFile, error) {
	for {
		cand := filepath.Join(dir, rel)
		if _, err := os.Stat(cand); err == nil {
			return p.Doc(cand)
		}
		if dir == p.Root {
			return nil, fmt.Errorf("%s not found between %s and %s", rel, dir, p.Root)
		}
		parent := filepath.Dir(dir)
		if parent == dir || len(parent) < len(p.Root) {
			return nil, fmt.Errorf("%s not found under %s", rel, p.Root)
		}
		dir = parent
	}
}

// A Loader loads a tree of Go packages using only the standard library: the
// tree's own packages are resolved by directory layout, everything else
// (stdlib) is type-checked from GOROOT source via go/importer. This keeps
// the linter dependency-free and usable offline.
type Loader struct {
	// Root is the absolute directory of the source tree.
	Root string
	// Prefix is the import-path prefix that maps to Root: the module path
	// ("cicada") for the real repository, or "" for analysistest fixture
	// trees laid out GOPATH-style under testdata/src.
	Prefix string
	// Tags are additional build tags to apply when selecting files.
	Tags []string
}

type loader struct {
	Loader
	fset    *token.FileSet
	ctx     build.Context
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// Load parses and type-checks the packages under the loader's root that
// match patterns (an import path, or a subtree pattern ending in "/...";
// "..." alone matches everything), plus their in-tree dependencies. The
// returned targets are the matching packages only.
func (l *Loader) Load(patterns ...string) (prog *Program, targets []*Package, err error) {
	ld := &loader{
		Loader:  *l,
		fset:    token.NewFileSet(),
		ctx:     build.Default,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	ld.ctx.BuildTags = append([]string(nil), l.Tags...)
	ld.ctx.CgoEnabled = false
	ld.std = importer.ForCompiler(ld.fset, "source", nil)

	var paths []string
	seen := make(map[string]bool)
	walkErr := filepath.WalkDir(ld.Root, func(dir string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(dir)
		if dir != ld.Root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") ||
			base == "testdata" || base == "vendor" || base == "results") {
			return filepath.SkipDir
		}
		importPath, ok := ld.pathForDir(dir)
		if !ok || seen[importPath] {
			return nil
		}
		if matchAny(importPath, ld.Prefix, patterns) && hasGoFiles(dir) {
			seen[importPath] = true
			paths = append(paths, importPath)
		}
		return nil
	})
	if walkErr != nil {
		return nil, nil, walkErr
	}
	sort.Strings(paths)

	for _, p := range paths {
		pkg, err := ld.load(p)
		if err != nil {
			return nil, nil, err
		}
		if pkg != nil {
			targets = append(targets, pkg)
		}
	}
	root, err := filepath.Abs(ld.Root)
	if err != nil {
		return nil, nil, err
	}
	prog = &Program{Fset: ld.fset, Root: root, Prefix: ld.Prefix,
		Tags: append([]string(nil), ld.Tags...), byPath: ld.pkgs}
	for _, p := range ld.pkgs {
		prog.Packages = append(prog.Packages, p)
	}
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })
	return prog, targets, nil
}

// pathForDir maps a directory under Root to its import path.
func (l *loader) pathForDir(dir string) (string, bool) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", false
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		if l.Prefix == "" {
			return "", false
		}
		return l.Prefix, true
	}
	if l.Prefix == "" {
		return rel, true
	}
	return l.Prefix + "/" + rel, true
}

// dirForPath maps an import path to a directory under Root, if it is an
// in-tree path.
func (l *loader) dirForPath(importPath string) (string, bool) {
	if l.Prefix == "" {
		dir := filepath.Join(l.Root, filepath.FromSlash(importPath))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
		return "", false
	}
	if importPath == l.Prefix {
		return l.Root, true
	}
	if rest, ok := strings.CutPrefix(importPath, l.Prefix+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}

func matchAny(importPath, prefix string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, pat := range patterns {
		if pat == "..." || pat == "./..." {
			return true
		}
		pat = strings.TrimPrefix(pat, "./")
		if prefix != "" && !strings.HasPrefix(pat, prefix) {
			// Accept root-relative patterns like "internal/core/...".
			pat = prefix + "/" + pat
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if importPath == sub || strings.HasPrefix(importPath, sub+"/") {
				return true
			}
			continue
		}
		if importPath == pat {
			return true
		}
	}
	return false
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// load parses and type-checks one in-tree package (memoized). It returns
// (nil, nil) for directories whose files are all excluded by build tags.
func (l *loader) load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	dir, ok := l.dirForPath(importPath)
	if !ok {
		return nil, fmt.Errorf("package %s is outside the source tree", importPath)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := l.ctx.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		names = append(names, name)
	}
	if len(files) == 0 {
		l.pkgs[importPath] = nil
		return nil, nil
	}
	pkgName := files[0].Name.Name
	for i, f := range files {
		if f.Name.Name != pkgName {
			return nil, fmt.Errorf("%s: mixed package names %s and %s (%s)",
				importPath, pkgName, f.Name.Name, names[i])
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) { return l.importPkg(p) }),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type errors in %s: %v", importPath, typeErrs[0])
	}
	pkg := &Package{Path: importPath, Dir: dir, Name: pkgName, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// importPkg resolves an import: in-tree packages recursively through the
// loader, the standard library through the GOROOT source importer.
func (l *loader) importPkg(importPath string) (*types.Package, error) {
	if importPath == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirForPath(importPath); ok {
		pkg, err := l.load(importPath)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("package %s has no buildable files", importPath)
		}
		return pkg.Types, nil
	}
	return l.std.Import(importPath)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
