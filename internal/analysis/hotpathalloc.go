package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// HotPathAlloc turns the zero-allocation property of the steady-state
// transaction path (docs/PERFORMANCE.md) into a compile-time gate. Functions
// on that path carry a directive in their doc comment:
//
//	//cicada:noalloc
//
// The analyzer drives the real compiler's escape analysis (go build
// -gcflags=-m) over the annotated packages and flags every heap-escape
// diagnostic inside an annotated function's body that is not sanctioned by
// the committed baseline (internal/analysis/escapes_baseline.json). Each
// baseline entry names the function, the exact compiler message, and a
// one-line justification — typically an amortized growth path behind a
// high-water mark, or a panic message on an unreachable invariant branch.
//
// Stale baseline entries (the escape no longer occurs, or the function lost
// its annotation) are flagged too, so the baseline can only shrink or be
// consciously grown; regenerate it with cicada-lint -update-escape-baseline.
//
// Escapes inlined from a *different* function's body keep their original
// source position and therefore are not attributed to the annotated caller;
// the AllocsPerRun budget tests remain the runtime backstop for those.
var HotPathAlloc = &Analyzer{
	Name:   "hotpathalloc",
	Doc:    "flags new heap escapes in //cicada:noalloc functions against the committed baseline",
	Module: true,
	Run:    runHotPathAlloc,
}

// EscapeBaselinePath is the committed baseline, relative to the module root.
const EscapeBaselinePath = "internal/analysis/escapes_baseline.json"

// noallocDirective is the doc-comment directive marking a function as part
// of the zero-allocation steady-state set.
const noallocDirective = "//cicada:noalloc"

// EscapeEntry sanctions one compiler escape diagnostic in one annotated
// function.
type EscapeEntry struct {
	// Pkg is the import path of the function's package.
	Pkg string `json:"pkg"`
	// Func is the function's fully qualified name, as types.Func.FullName
	// renders it (e.g. "(*cicada/internal/core.Txn).Update").
	Func string `json:"func"`
	// Message is the exact compiler diagnostic text ("moved to heap: x",
	// "make([]uint64, size) escapes to heap", ...).
	Message string `json:"message"`
	// Reason is the mandatory one-line justification.
	Reason string `json:"reason"`
}

// EscapeBaseline is the schema of escapes_baseline.json.
type EscapeBaseline struct {
	Comment string        `json:"comment,omitempty"`
	Entries []EscapeEntry `json:"entries"`
}

// noallocFunc is one annotated function.
type noallocFunc struct {
	pkg      *Package
	decl     *ast.FuncDecl
	obj      *types.Func
	fullName string
	file     string // absolute path
	from, to int    // body line range, inclusive
}

// escapeDiag is one attributed compiler escape diagnostic.
type escapeDiag struct {
	fn      *noallocFunc
	pos     token.Pos
	message string
}

func runHotPathAlloc(pass *Pass) error {
	funcs, err := collectNoallocFuncs(pass.Prog, pass.Targets)
	if err != nil {
		return err
	}
	if len(funcs) == 0 {
		return nil
	}
	diags, err := collectEscapes(pass.Prog, funcs)
	if err != nil {
		return err
	}
	baseline, err := loadEscapeBaseline(filepath.Join(pass.Prog.Root, EscapeBaselinePath))
	if err != nil {
		return err
	}

	type key struct{ fn, msg string }
	sanctioned := make(map[key]*EscapeEntry)
	for i := range baseline.Entries {
		e := &baseline.Entries[i]
		sanctioned[key{e.Func, e.Message}] = e
	}
	used := make(map[key]bool)
	for _, d := range diags {
		k := key{d.fn.fullName, d.message}
		if e, ok := sanctioned[k]; ok {
			used[k] = true
			if r := strings.TrimSpace(e.Reason); r == "" || strings.HasPrefix(r, "TODO") {
				pass.Reportf(d.pos,
					"escape in %s is baselined without a justification: %q needs a reason in %s",
					d.fn.fullName, d.message, EscapeBaselinePath)
			}
			continue
		}
		pass.Reportf(d.pos,
			"heap escape in //cicada:noalloc function %s: %s (sanction it with a justified entry in %s, or keep the hot path allocation-free)",
			d.fn.fullName, d.message, EscapeBaselinePath)
	}

	// Stale entries: only judged for packages that were analyzed, so a
	// narrowed pattern run does not misreport entries of unloaded packages.
	analyzed := make(map[string]bool)
	annotated := make(map[string]*noallocFunc)
	for _, f := range funcs {
		analyzed[f.pkg.Path] = true
		annotated[f.fullName] = f
	}
	for i := range baseline.Entries {
		e := &baseline.Entries[i]
		if !analyzed[e.Pkg] || used[key{e.Func, e.Message}] {
			continue
		}
		if f, ok := annotated[e.Func]; ok {
			pass.Reportf(f.decl.Pos(),
				"stale escape baseline entry for %s: %q no longer reported by the compiler; remove it from %s",
				e.Func, e.Message, EscapeBaselinePath)
		} else {
			pass.Reportf(token.NoPos,
				"stale escape baseline entry: %s is not a //cicada:noalloc function in %s; remove %q from %s",
				e.Func, e.Pkg, e.Message, EscapeBaselinePath)
		}
	}
	return nil
}

// collectNoallocFuncs finds every //cicada:noalloc function declaration in
// the target packages.
func collectNoallocFuncs(prog *Program, targets []*Package) ([]*noallocFunc, error) {
	var funcs []*noallocFunc
	for _, pkg := range targets {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil || fd.Body == nil {
					continue
				}
				if !hasNoallocDirective(fd.Doc) {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					return nil, fmt.Errorf("hotpathalloc: cannot resolve %s in %s", fd.Name.Name, pkg.Path)
				}
				start := prog.Fset.Position(fd.Pos())
				end := prog.Fset.Position(fd.End())
				funcs = append(funcs, &noallocFunc{
					pkg:      pkg,
					decl:     fd,
					obj:      obj,
					fullName: obj.FullName(),
					file:     start.Filename,
					from:     start.Line,
					to:       end.Line,
				})
			}
		}
	}
	return funcs, nil
}

func hasNoallocDirective(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == noallocDirective {
			return true
		}
	}
	return false
}

// escapeLineRE matches one compiler diagnostic line: file:line:col: message.
var escapeLineRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// collectEscapes compiles the annotated packages with -gcflags=-m and
// attributes heap-escape diagnostics to annotated function bodies.
func collectEscapes(prog *Program, funcs []*noallocFunc) ([]escapeDiag, error) {
	dirs := make(map[string]bool)
	for _, f := range funcs {
		rel, err := filepath.Rel(prog.Root, f.pkg.Dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("hotpathalloc: package %s is outside the root", f.pkg.Path)
		}
		dirs["./"+filepath.ToSlash(rel)] = true
	}
	args := []string{"build"}
	if len(prog.Tags) > 0 {
		args = append(args, "-tags", strings.Join(prog.Tags, ","))
	}
	args = append(args, "-gcflags=-m")
	var patterns []string
	for d := range dirs {
		patterns = append(patterns, d)
	}
	sort.Strings(patterns)
	args = append(args, patterns...)

	cmd := exec.Command("go", args...)
	cmd.Dir = prog.Root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("hotpathalloc: go %s: %v\n%s", strings.Join(args, " "), err, out)
	}

	// Index annotated functions by file for attribution.
	byFile := make(map[string][]*noallocFunc)
	for _, f := range funcs {
		byFile[f.file] = append(byFile[f.file], f)
	}

	var diags []escapeDiag
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeLineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(prog.Root, file)
		}
		lineNo := atoiSafe(m[2])
		col := atoiSafe(m[3])
		for _, f := range byFile[file] {
			if lineNo < f.from || lineNo > f.to {
				continue
			}
			diags = append(diags, escapeDiag{
				fn:      f,
				pos:     posInFile(prog.Fset, file, lineNo, col),
				message: msg,
			})
			break
		}
	}
	return diags, nil
}

func atoiSafe(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}

// posInFile resolves (file, line, col) to a token.Pos in fset, or NoPos.
func posInFile(fset *token.FileSet, file string, line, col int) token.Pos {
	var tf *token.File
	fset.Iterate(func(f *token.File) bool {
		if f.Name() == file {
			tf = f
			return false
		}
		return true
	})
	if tf == nil || line < 1 || line > tf.LineCount() {
		return token.NoPos
	}
	p := tf.LineStart(line)
	if col > 1 {
		p += token.Pos(col - 1)
	}
	return p
}

// loadEscapeBaseline reads the baseline; a missing file is an empty
// baseline.
func loadEscapeBaseline(path string) (*EscapeBaseline, error) {
	var b EscapeBaseline
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &b, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("hotpathalloc: %s: %w", path, err)
	}
	return &b, nil
}

// UpdateEscapeBaseline regenerates the baseline from the current compiler
// output, preserving the reasons of entries that still occur. New entries
// get a placeholder reason that hotpathalloc flags until a human justifies
// it. Used by cicada-lint -update-escape-baseline.
func UpdateEscapeBaseline(prog *Program, targets []*Package) error {
	funcs, err := collectNoallocFuncs(prog, targets)
	if err != nil {
		return err
	}
	diags, err := collectEscapes(prog, funcs)
	if err != nil {
		return err
	}
	path := filepath.Join(prog.Root, EscapeBaselinePath)
	old, err := loadEscapeBaseline(path)
	if err != nil {
		return err
	}
	type key struct{ fn, msg string }
	reasons := make(map[key]string)
	for _, e := range old.Entries {
		reasons[key{e.Func, e.Message}] = e.Reason
	}
	seen := make(map[key]bool)
	b := EscapeBaseline{Comment: old.Comment}
	if b.Comment == "" {
		b.Comment = "Sanctioned compiler escapes in //cicada:noalloc functions. " +
			"Every entry needs a one-line reason; regenerate with: go run ./cmd/cicada-lint -update-escape-baseline ./..."
	}
	for _, d := range diags {
		k := key{d.fn.fullName, d.message}
		if seen[k] {
			continue
		}
		seen[k] = true
		reason := reasons[k]
		if reason == "" {
			reason = "TODO: justify this escape or remove the allocation"
		}
		b.Entries = append(b.Entries, EscapeEntry{
			Pkg:     d.fn.pkg.Path,
			Func:    d.fn.fullName,
			Message: d.message,
			Reason:  reason,
		})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.Pkg != c.Pkg {
			return a.Pkg < c.Pkg
		}
		if a.Func != c.Func {
			return a.Func < c.Func
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
