package analysis

// All returns the full suite of concurrency-discipline analyzers, in the
// order cmd/cicada-lint runs them.
func All() []*Analyzer {
	return []*Analyzer{MixedAtomic, StatusOrder, LocksDiscipline, NakedSpin}
}
