package analysis

// All returns the full analyzer suite, in the order cmd/cicada-lint runs
// them: first the four intra-function concurrency-discipline passes, then
// the six whole-program guardrails.
func All() []*Analyzer {
	return []*Analyzer{
		MixedAtomic, StatusOrder, LocksDiscipline, NakedSpin,
		HotPathAlloc, LockOrder, FailpointCover, MetricDrift, TraceDrift,
		ProtoDrift,
	}
}
