// Fixture trace package: an event catalog with documented and undocumented
// entries.
package trace

// Kind identifies a trace event type.
type Kind uint8

// The fixture catalog.
const (
	EvGood Kind = iota
	EvAlsoGood
	EvMissing

	NumKinds
)

// eventNames is the catalog anchor the tracedrift analyzer cross-checks.
var eventNames = [NumKinds]string{
	"ev_good",
	"ev_also_good",
	"ev_missing", // want `trace event "ev_missing" is in the catalog but never mentioned in docs/OBSERVABILITY.md`
}

// String returns the kind's catalog name.
func (k Kind) String() string {
	if k < NumKinds {
		return eventNames[k]
	}
	return "unknown"
}
