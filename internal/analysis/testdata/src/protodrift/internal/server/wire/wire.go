// Fixture wire package: protocol catalogs with documented and undocumented
// entries.
package wire

// Opcode identifies a frame type.
type Opcode uint8

// The fixture opcode space.
const (
	OpHello Opcode = 0x01
	OpTxn   Opcode = 0x03
	OpRogue Opcode = 0x7F
)

// opcodeNames is a catalog anchor the protodrift analyzer cross-checks.
var opcodeNames = map[Opcode]string{
	OpHello: "hello",
	OpTxn:   "txn",
	OpRogue: "rogue", // want `opcode "rogue" is in the wire catalog but has no row in the "Opcode" table of docs/PROTOCOL.md`
}

// ErrCode identifies a wire error.
type ErrCode uint16

// The fixture error space.
const (
	ErrCodeMalformed ErrCode = 1
	ErrCodeQuota     ErrCode = 8
)

// errorCodeNames is a catalog anchor the protodrift analyzer cross-checks.
var errorCodeNames = map[ErrCode]string{
	ErrCodeMalformed: "malformed",
	ErrCodeQuota:     "quota",
}

// StmtKind identifies a statement within a txn frame.
type StmtKind uint8

// The fixture statement space.
const (
	StmtGet StmtKind = 1
	StmtPut StmtKind = 2
)

// stmtKindNames is a catalog anchor the protodrift analyzer cross-checks.
var stmtKindNames = map[StmtKind]string{
	StmtGet: "get",
	StmtPut: "put",
}

// String returns the opcode's catalog name.
func (o Opcode) String() string {
	if s, ok := opcodeNames[o]; ok {
		return s
	}
	return "unknown"
}

// String returns the error code's catalog name.
func (e ErrCode) String() string {
	if s, ok := errorCodeNames[e]; ok {
		return s
	}
	return "unknown"
}

// String returns the statement kind's catalog name.
func (k StmtKind) String() string {
	if s, ok := stmtKindNames[k]; ok {
		return s
	}
	return "unknown"
}
