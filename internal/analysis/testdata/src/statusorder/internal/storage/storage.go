// Miniature model of cicada/internal/storage for the statusorder fixture:
// same type and field names, so the analyzer's suffix-based target matching
// finds it.
package storage

import "sync/atomic"

type Version struct {
	WTS    uint64
	rts    atomic.Uint64
	status atomic.Uint32
	next   atomic.Pointer[Version]
}

// PrepareInstall is a sanctioned helper: a method on the owning type.
func (v *Version) PrepareInstall(ts uint64) {
	v.WTS = ts
	v.rts.Store(ts)
	v.status.Store(1)
}

func (v *Version) Status() uint32    { return v.status.Load() }
func (v *Version) Next() *Version    { return v.next.Load() }
func (v *Version) SetNext(n *Version) { v.next.Store(n) }

type Head struct {
	latest atomic.Pointer[Version]
	gcLock atomic.Uint32
}

func (h *Head) Latest() *Version { return h.latest.Load() }

type Table struct{}

// Poke is a method on Table, not Head: touching the Head's list anchor here
// bypasses the Head helpers.
func (t *Table) Poke(h *Head) {
	h.latest.Store(nil) // want `access to Head.latest bypasses the sanctioned helpers`
}

// Naked is a free function: no guarded field access is sanctioned here.
func Naked(v *Version) {
	v.WTS = 9         // want `write to Version.WTS bypasses the sanctioned helpers`
	v.status.Store(2) // want `access to Version.status bypasses the sanctioned helpers`
}

// ReadWTS is fine: WTS is write-guarded only; reads are pervasive.
func ReadWTS(v *Version) uint64 {
	return v.WTS
}
