// Consumer half of the statusorder fixture: an engine-like package that must
// route version-word writes through the storage helpers.
package use

import "statusorder/internal/storage"

func Install(v *storage.Version, ts uint64) {
	v.WTS = ts // want `write to Version.WTS bypasses the sanctioned helpers`
	v.PrepareInstall(ts)
	_ = v.WTS // ok: reading WTS is unrestricted
}

func Recovery(v *storage.Version, ts uint64) {
	//lint:allow statusorder recovery replay runs single-threaded before the version is reachable
	v.WTS = ts
}
