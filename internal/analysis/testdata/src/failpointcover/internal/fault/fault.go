// Fixture fault package: a miniature of the real registry surface — a Site
// type, the constant catalog, Sites(), and the two hook functions.
package fault

import "io"

// Site names one failpoint.
type Site string

const (
	WALAppend Site = "wal/append"
	WALSync   Site = "wal/sync"
	Orphan    Site = "wal/orphan"    // want `failpoint "wal/orphan" is declared but never passed to a fault hook`
	NoCatalog Site = "wal/nocatalog" // want `failpoint "wal/nocatalog" is declared but missing from the Sites\(\) catalog function`
)

// Sites returns the catalog (deliberately missing NoCatalog).
func Sites() []Site { return []Site{WALAppend, WALSync, Orphan} }

// Inject fires the failpoint, if armed.
func Inject(site Site) error { _ = site; return nil }

// Write is the hooked write path.
func Write(site Site, w io.Writer, buf []byte) (int, error) {
	_ = site
	return w.Write(buf)
}
