// Fixture WAL package: hook-dominated I/O (direct and interprocedural),
// undominated I/O, and a hook called with an undeclared site name.
package wal

import (
	"bufio"
	"os"

	"failpointcover/internal/fault"
)

// appendRecord routes the write through the hook itself: covered.
func appendRecord(f *os.File, buf []byte) error {
	_, err := fault.Write(fault.WALAppend, f, buf)
	return err
}

// syncLog hooks before the fsync: covered.
func syncLog(f *os.File) error {
	if err := fault.Inject(fault.WALSync); err != nil {
		return err
	}
	return f.Sync()
}

// rotate has no hook at all: both I/O sites are uncrashable.
func rotate(f *os.File) error {
	if err := f.Sync(); err != nil { // want `\(\*os.File\).Sync in rotate is not dominated by a fault hook`
		return err
	}
	return os.Rename("log.old", "log") // want `os.Rename in rotate is not dominated by a fault hook`
}

// syncDir has no local hook but every caller hooks first: covered
// interprocedurally.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// checkpoint hooks (with a site that is not in the declared catalog), then
// flushes and fsyncs the directory through the helper.
func checkpoint(w *bufio.Writer, dir string) error {
	if err := fault.Inject("wal/undeclared"); err != nil { // want `fault hook uses site "wal/undeclared" which is not a declared Site constant`
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return syncDir(dir)
}

// purge hooks NoCatalog so the constant counts as used.
func purge(path string) error {
	if err := fault.Inject(fault.NoCatalog); err != nil {
		return err
	}
	return os.Remove(path)
}
