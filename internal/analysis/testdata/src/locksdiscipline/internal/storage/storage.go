// Miniature storage package for the locksdiscipline fixture: a Head with the
// per-record GC lock and a Table whose growth path takes a mutex behind a
// reviewed suppression.
package storage

import (
	"sync"
	"sync/atomic"
)

type Head struct{ gcLock atomic.Uint32 }

func (h *Head) TryLockGC() bool { return h.gcLock.CompareAndSwap(0, 1) }
func (h *Head) UnlockGC()       { h.gcLock.Store(0) }

type Table struct{ growMu sync.Mutex }

// Reserve models the cold table-growth path: the mutex is sanctioned by the
// marker, exactly as storage.Table.ensure is in the real repository.
func (t *Table) Reserve(n int) {
	//lint:allow locksdiscipline page-directory growth is a cold path, amortized over thousands of inserts
	t.growMu.Lock()
	defer t.growMu.Unlock()
	_ = n
}
