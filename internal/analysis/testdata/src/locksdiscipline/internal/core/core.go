// Fixture for the locksdiscipline analyzer: mutex use in a hot-path package,
// GC-lock ordering, and missing-release detection.
package core

import (
	"sync"
	"time"

	"locksdiscipline/internal/storage"
)

type engine struct{ mu sync.Mutex }

func (e *engine) hot() {
	e.mu.Lock() // want `Lock acquired in hot-path package`
	e.mu.Unlock()
}

func collectLeaks(h *storage.Head) {
	if !h.TryLockGC() { // want `TryLockGC with no UnlockGC in collectLeaks`
		return
	}
}

func collectBlocks(h *storage.Head, t *storage.Table) {
	if !h.TryLockGC() {
		return
	}
	t.Reserve(1)                 // want `Reserve \(takes the table grow lock\) after TryLockGC`
	time.Sleep(time.Millisecond) // want `time.Sleep after TryLockGC`
	h.UnlockGC()
}

func collectWaits(h *storage.Head, ch chan int) {
	if !h.TryLockGC() {
		return
	}
	<-ch // want `channel receive after TryLockGC`
	h.UnlockGC()
}

func collectGood(h *storage.Head) {
	if !h.TryLockGC() {
		return
	}
	h.UnlockGC()
}

func coldPath(e *engine) {
	//lint:allow locksdiscipline engine construction is single-threaded
	e.mu.Lock()
	e.mu.Unlock()
}
