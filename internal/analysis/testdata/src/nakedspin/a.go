// Fixture for the nakedspin analyzer: busy-wait loops with and without
// yields, CAS retry loops (lock-free progress, not flagged), and loops with
// unclassifiable calls (conservatively skipped).
package nakedspin

import (
	"runtime"
	"sync/atomic"
	"time"
)

type state struct {
	flag atomic.Uint32
	word uint64
}

func spinCond(s *state) {
	for s.flag.Load() == 0 { // want `busy-wait loop polls an atomic without yielding`
	}
}

func spinBody(s *state) {
	for { // want `busy-wait loop polls an atomic without yielding`
		if s.flag.Load() == 1 {
			break
		}
	}
}

func spinFuncStyle(s *state) {
	for atomic.LoadUint64(&s.word) == 0 { // want `busy-wait loop polls an atomic without yielding`
	}
}

func spinYield(s *state) {
	for s.flag.Load() == 0 {
		runtime.Gosched() // ok: yields the processor
	}
}

func spinSleep(s *state) {
	for s.flag.Load() == 0 {
		time.Sleep(time.Microsecond) // ok: backs off
	}
}

func casRetry(s *state) {
	for { // ok: CAS makes lock-free progress
		if s.flag.CompareAndSwap(0, 1) {
			return
		}
	}
}

func storeMax(s *state, v uint64) {
	for { // ok: CAS retry loop
		cur := atomic.LoadUint64(&s.word)
		if cur >= v || atomic.CompareAndSwapUint64(&s.word, cur, v) {
			return
		}
	}
}

type node struct {
	done atomic.Bool
	next atomic.Pointer[node]
}

func walkChain(head *node) int {
	n := 0
	for v := head; v != nil; v = v.next.Load() { // ok: traversal captures the load
		if v.done.Load() {
			n++
		}
	}
	return n
}

func unknownCallee(s *state) {
	for s.flag.Load() == 0 {
		observe() // ok: unclassified call may yield internally
	}
}

func observe() {}

func computeLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ { // ok: no atomic polling at all
		total += i
	}
	return total
}

func allowedSpin(s *state) {
	//lint:allow nakedspin bounded two-iteration wait measured in the hekaton repro
	for s.flag.Load() == 0 {
	}
}
