// Fixture for the mixedatomic analyzer: fields accessed both through
// sync/atomic functions and plainly, typed-atomic copies, and clean
// patterns that must not be flagged.
package mixedatomic

import (
	"sync/atomic"

	"mixedatomic/sub"
)

type counter struct {
	hits  uint64
	flips uint64
	typed atomic.Uint64
	plain uint64
}

func (c *counter) bump() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counter) read() uint64 {
	return c.hits // want `non-atomic read of field counter.hits`
}

func (c *counter) reset() {
	c.hits = 0 // want `non-atomic write of field counter.hits`
	c.hits++   // want `non-atomic write of field counter.hits`
}

func (c *counter) atomicOnly() {
	atomic.StoreUint64(&c.flips, 1)
	if atomic.LoadUint64(&c.flips) == 1 { // ok: both accesses atomic
		return
	}
}

func (c *counter) allowed() uint64 {
	//lint:allow mixedatomic snapshot read for stats; tearing is acceptable
	return c.hits
}

func (c *counter) copyTyped() atomic.Uint64 {
	return c.typed // want `atomic.Uint64 field typed is copied or used by value`
}

func (c *counter) useTyped() uint64 {
	return c.typed.Load() // ok: method call on the typed atomic
}

func (c *counter) addrTyped() *atomic.Uint64 {
	return &c.typed // ok: address-taking
}

func (c *counter) plainOnly() uint64 {
	c.plain++
	return c.plain // ok: never accessed atomically anywhere
}

// crossPackageRead reads a field that sub accesses atomically: the analyzer
// aggregates over the whole module, so this is flagged even though the
// atomic access lives in another package.
func crossPackageRead(g *sub.Gauge) uint64 {
	return g.Level // want `non-atomic read of field Gauge.Level`
}
