// Package sub provides the cross-package half of the mixedatomic fixture.
package sub

import "sync/atomic"

type Gauge struct {
	// Level is written atomically here and read plainly by the parent
	// fixture package.
	Level uint64
}

func (g *Gauge) Set(v uint64) {
	atomic.StoreUint64(&g.Level, v)
}
