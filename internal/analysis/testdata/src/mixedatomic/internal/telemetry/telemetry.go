// Package telemetry fakes the engine's observability package for the
// mixedatomic fixture (the analyzer matches the internal/telemetry import
// path suffix): the Owner*/Read* word helpers are sanctioned atomic
// accessors, and value-typed *Shard structs must not be copied.
package telemetry

import "sync/atomic"

// OwnerAddUint64 adds d to the single-writer word at p.
func OwnerAddUint64(p *uint64, d uint64) {
	atomic.StoreUint64(p, atomic.LoadUint64(p)+d)
}

// OwnerIncUint64 increments the single-writer word at p.
func OwnerIncUint64(p *uint64) { OwnerAddUint64(p, 1) }

// ReadUint64 atomically reads the word at p.
func ReadUint64(p *uint64) uint64 { return atomic.LoadUint64(p) }

// CounterShard is one worker's padded counter word.
type CounterShard struct {
	v atomic.Uint64
}

// Inc is the owner-only increment.
func (s *CounterShard) Inc() { s.v.Store(s.v.Load() + 1) }

// Value atomically reads the shard.
func (s *CounterShard) Value() uint64 { return s.v.Load() }
