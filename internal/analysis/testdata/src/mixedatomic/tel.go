// Telemetry half of the mixedatomic fixture: the package's word helpers
// count as atomic accesses, so mixing them with plain accesses is flagged,
// and value-typed shards must not be copied.
package mixedatomic

import (
	"mixedatomic/internal/telemetry"
)

type wordStats struct {
	commits uint64
	idle    uint64
	shard   telemetry.CounterShard
}

func (s *wordStats) inc() {
	telemetry.OwnerIncUint64(&s.commits) // sanctioned single-writer accessor
}

func (s *wordStats) badRead() uint64 {
	return s.commits // want `non-atomic read of field wordStats.commits`
}

func (s *wordStats) goodRead() uint64 {
	return telemetry.ReadUint64(&s.commits) // ok: sanctioned accessor
}

func (s *wordStats) plainPair() uint64 {
	s.idle++
	return s.idle // ok: never accessed through atomics or helpers
}

func (s *wordStats) copyShard() telemetry.CounterShard {
	return s.shard // want `telemetry.CounterShard field shard is copied or used by value`
}

func (s *wordStats) useShard() uint64 {
	s.shard.Inc()
	return s.shard.Value() // ok: method calls on the shard
}

func (s *wordStats) addrShard() *telemetry.CounterShard {
	return &s.shard // ok: address-taking
}
