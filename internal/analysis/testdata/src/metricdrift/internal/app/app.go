// Fixture registering package: documented and undocumented families,
// directly and through a local helper closure.
package app

import "metricdrift/internal/telemetry"

func register(reg *telemetry.Registry) {
	reg.Counter("app_good_total", "documented counter")
	reg.Gauge("app_missing_total", "undocumented gauge") // want `metric family "app_missing_total" is registered but never mentioned in docs/OBSERVABILITY.md`

	// A local helper forwarding the family name: the analyzer propagates
	// constants one level through it.
	set := func(family, help string, v uint64) {
		reg.CounterFunc(family, help, func() float64 { return float64(v) })
	}
	set("app_helper_total", "documented helper counter", 1)
	set("app_helper_missing_total", "undocumented helper counter", 2) // want `metric family "app_helper_missing_total" is registered but never mentioned in docs/OBSERVABILITY.md`
}
