// Fixture telemetry package: just enough Registry surface for the
// metricdrift analyzer to recognize registration calls.
package telemetry

// Label is one metric label pair.
type Label struct{ Key, Value string }

// Registry is the metric registry.
type Registry struct{}

// Counter registers a counter family.
func (r *Registry) Counter(family, help string, labels ...Label) *Registry { _ = family; return r }

// Gauge registers a gauge family.
func (r *Registry) Gauge(family, help string, labels ...Label) *Registry { _ = family; return r }

// Histogram registers a histogram family.
func (r *Registry) Histogram(family, help string, labels ...Label) *Registry { _ = family; return r }

// CounterFunc registers a pull-style counter.
func (r *Registry) CounterFunc(family, help string, fn func() float64, labels ...Label) {
	_, _ = family, fn
}

// GaugeFunc registers a pull-style gauge.
func (r *Registry) GaugeFunc(family, help string, fn func() float64, labels ...Label) {
	_, _ = family, fn
}
