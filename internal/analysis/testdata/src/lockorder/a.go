// Fixture for the lockorder analyzer: inconsistent cross-lock acquisition
// order (direct and through a helper call), hand-over-hand self-cycles, and
// the goroutine-body exemption.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

var (
	a A
	b B
)

// lockAB acquires A then B: one half of the cycle.
func lockAB() {
	a.mu.Lock()
	b.mu.Lock() // want `lock-order cycle: lockorder.B.mu acquired in lockAB while lockorder.A.mu is held`
	b.mu.Unlock()
	a.mu.Unlock()
}

// lockBA acquires B, then reaches A through a helper: the other half,
// witnessed at the call edge.
func lockBA() {
	b.mu.Lock()
	helperLockA() // want `lock-order cycle: lockorder.A.mu acquired in lockBA while lockorder.B.mu is held`
	a.mu.Unlock()
	b.mu.Unlock()
}

func helperLockA() {
	a.mu.Lock()
}

type node struct{ mu sync.Mutex }

// handOverHand re-acquires the same lock class while holding an instance.
func handOverHand(n, m *node) {
	n.mu.Lock()
	m.mu.Lock() // want `lock lockorder.node.mu acquired in handOverHand while an instance of the same lock class may already be held`
	n.mu.Unlock()
	m.mu.Unlock()
}

type link struct{ mu sync.Mutex }

// handOverHandSorted is the same shape with a reviewed suppression.
func handOverHandSorted(n, m *link) {
	n.mu.Lock()
	m.mu.Lock() //lint:allow lockorder links are locked in ascending address order
	n.mu.Unlock()
	m.mu.Unlock()
}

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

var (
	c C
	d D
)

// spawnOrder locks D inside a spawned goroutine while C is held: the
// goroutine body runs on another goroutine, so no C→D edge exists and the
// D→C order in lockDC is not a cycle.
func spawnOrder() {
	c.mu.Lock()
	go func() {
		d.mu.Lock()
		d.mu.Unlock()
	}()
	c.mu.Unlock()
}

func lockDC() {
	d.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	d.mu.Unlock()
}
