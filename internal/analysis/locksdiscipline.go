package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LocksDiscipline enforces the lock-order contract of the hot-path packages
// (internal/core, internal/clock, internal/storage, internal/gc):
//
//  1. Hot paths are lock-free: acquiring a sync.Mutex/RWMutex in these
//     packages is flagged. Genuinely cold paths (page-directory growth)
//     carry a reviewed //lint:allow locksdiscipline marker.
//  2. Lock order — the per-record GC lock is the innermost lock: after a
//     TryLockGC in a function, acquiring a mutex, growing the table
//     (ensure/Reserve/AllocRecordID take the table grow lock), sleeping, or
//     blocking on a channel is flagged. Rapid GC (§3.8) holds the record's
//     GC lock only for pointer detachment.
//  3. A function that acquires the GC lock must also contain its release
//     (UnlockGC), keeping the critical section reviewable in one place.
var LocksDiscipline = &Analyzer{
	Name: "locksdiscipline",
	Doc:  "flags mutex use and GC-lock-order violations in the hot-path packages",
	Run:  runLocksDiscipline,
}

// locksHotPathSuffixes selects the packages the discipline applies to, by
// import-path suffix (so fixtures can model them under testdata).
var locksHotPathSuffixes = []string{
	"internal/core", "internal/clock", "internal/storage", "internal/gc",
}

// locksTableGrowFuncs are storage.Table methods that may take the table grow
// lock.
var locksTableGrowFuncs = map[string]bool{"ensure": true, "Reserve": true, "AllocRecordID": true, "RecoverEnsure": true}

func isHotPathPackage(path string) bool {
	for _, s := range locksHotPathSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// isMutexLock reports whether fn is sync.Mutex.Lock / sync.RWMutex.Lock /
// sync.RWMutex.RLock (TryLock variants do not block and are not flagged).
func isMutexLock(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	if fn.Name() != "Lock" && fn.Name() != "RLock" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

func runLocksDiscipline(pass *Pass) error {
	if !isHotPathPackage(pass.Pkg.Path) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncLocks(pass, fd)
		}
	}
	return nil
}

func checkFuncLocks(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	var gcLockPos token.Pos // first TryLockGC call
	var hasUnlock bool
	type blockSite struct {
		pos  token.Pos
		what string
	}
	var blocking []blockSite

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := CalleeFunc(info, n)
			switch {
			case isMutexLock(fn):
				pass.Reportf(n.Pos(),
					"%s acquired in hot-path package %s; Cicada hot paths are lock-free — annotate genuinely cold paths with //lint:allow locksdiscipline <reason>",
					fn.Name(), pass.Pkg.Path)
				blocking = append(blocking, blockSite{n.Pos(), "mutex " + fn.Name()})
			case fn != nil && fn.Name() == "TryLockGC":
				if !gcLockPos.IsValid() || n.Pos() < gcLockPos {
					gcLockPos = n.Pos()
				}
			case fn != nil && fn.Name() == "UnlockGC":
				hasUnlock = true
			case fn != nil && locksTableGrowFuncs[fn.Name()] && recvIsStorageTable(fn):
				blocking = append(blocking, blockSite{n.Pos(), fn.Name() + " (takes the table grow lock)"})
			case IsPkgFunc(fn, "time", "Sleep"):
				blocking = append(blocking, blockSite{n.Pos(), "time.Sleep"})
			}
		case *ast.SendStmt:
			blocking = append(blocking, blockSite{n.Pos(), "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				blocking = append(blocking, blockSite{n.Pos(), "channel receive"})
			}
		case *ast.SelectStmt:
			blocking = append(blocking, blockSite{n.Pos(), "select"})
		}
		return true
	})

	if !gcLockPos.IsValid() {
		return
	}
	if !hasUnlock {
		pass.Reportf(gcLockPos,
			"TryLockGC with no UnlockGC in %s: the GC critical section must be released in the function that acquires it",
			fd.Name.Name)
	}
	for _, b := range blocking {
		if b.pos > gcLockPos {
			pass.Reportf(b.pos,
				"%s after TryLockGC in %s violates the lock order: the record GC lock is innermost and must not be held across blocking operations or the table grow lock",
				b.what, fd.Name.Name)
		}
	}
}

// recvIsStorageTable reports whether fn is a method on a type named Table in
// a storage package.
func recvIsStorageTable(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Table" && isStoragePackage(named.Obj().Pkg().Path())
}
