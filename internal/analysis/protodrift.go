package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// ProtoDrift cross-checks the wire-protocol catalogs (the opcodeNames,
// errorCodeNames and stmtKindNames map literals in the server's wire
// package) against the reference tables in docs/PROTOCOL.md, in both
// directions:
//
//   - code → doc: every catalog entry must have a row in the matching
//     reference table. An opcode or error code a client author cannot look
//     up is an undocumented protocol extension.
//   - doc → code: every table row must name an entry the catalog actually
//     defines, with the same numeric value. A stale or renumbered row
//     makes third-party clients disagree with the server about the bytes
//     on the wire.
//
// Unlike metricdrift/tracedrift, both directions run even on narrowed
// pattern runs: the catalogs live in a single package, so once it is in
// the target set the code side is complete.
var ProtoDrift = &Analyzer{
	Name:   "protodrift",
	Doc:    "cross-checks the wire protocol catalogs against docs/PROTOCOL.md",
	Module: true,
	Run:    runProtoDrift,
}

// protoDocPath is the protocol reference the catalogs must agree with.
const protoDocPath = "docs/PROTOCOL.md"

// protoCatalogs pairs each catalog anchor (a package-level
// `var xxxNames = map[T]string{...}` in a package whose import path ends in
// server/wire) with the first header cell of its doc table.
var protoCatalogs = []struct {
	varName string // catalog map literal
	header  string // first header cell of the reference table
	what    string // human name for diagnostics
}{
	{"opcodeNames", "Opcode", "opcode"},
	{"errorCodeNames", "Error code", "error code"},
	{"stmtKindNames", "Statement", "statement kind"},
}

// protoEntry is one catalog element: the numeric wire value keyed by name.
type protoEntry struct {
	pos token.Pos
	val int64
}

// protoRow is one reference-table row: the documented numeric value (if the
// second column parses as an integer) keyed by name.
type protoRow struct {
	pos    token.Pos
	val    int64
	hasVal bool
}

func runProtoDrift(pass *Pass) error {
	catalogs := make(map[string]map[string]protoEntry) // header -> name -> entry
	var catalogPkg *Package
	for _, pkg := range pass.Targets {
		if !strings.HasSuffix(pkg.Path, "server/wire") {
			continue
		}
		for _, c := range protoCatalogs {
			if m := collectProtoCatalog(pkg, c.varName); m != nil {
				catalogs[c.header] = m
				catalogPkg = pkg
			}
		}
	}
	if catalogPkg == nil || len(catalogs) == 0 {
		// No wire package in the target set: nothing to drift against.
		return nil
	}

	doc, err := pass.Prog.FindDoc(catalogPkg.Dir, protoDocPath)
	if err != nil {
		return nil
	}
	tables := docProtoTableRows(doc)

	for _, c := range protoCatalogs {
		catalog := catalogs[c.header]
		if catalog == nil {
			continue
		}
		rows := tables[c.header]

		var names []string
		for n := range catalog {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			row, ok := rows[n]
			if !ok {
				pass.Reportf(catalog[n].pos,
					"%s %q is in the wire catalog but has no row in the %q table of %s: undocumented protocol extension",
					c.what, n, c.header, protoDocPath)
				continue
			}
			if row.hasVal && row.val != catalog[n].val {
				pass.Reportf(row.pos,
					"%s %q is documented as %d in %s but the wire catalog defines %d",
					c.what, n, row.val, protoDocPath, catalog[n].val)
			}
		}

		var docNames []string
		for n := range rows {
			docNames = append(docNames, n)
		}
		sort.Strings(docNames)
		for _, n := range docNames {
			if _, ok := catalog[n]; !ok {
				pass.Reportf(rows[n].pos,
					"documented %s %q is not in the wire catalog: stale %q table row in %s",
					c.what, n, c.header, protoDocPath)
			}
		}
	}
	return nil
}

// collectProtoCatalog extracts name -> {pos, numeric value} from pkg's
// package-level `var <varName> = map[T]string{...}` literal, or nil when the
// anchor is absent.
func collectProtoCatalog(pkg *Package, varName string) map[string]protoEntry {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != varName || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					out := make(map[string]protoEntry)
					for _, elt := range lit.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						s, ok := constString(pkg.Info, kv.Value)
						if !ok {
							continue
						}
						val, ok := constInt(pkg.Info, kv.Key)
						if !ok {
							continue
						}
						if _, dup := out[s]; !dup {
							out[s] = protoEntry{pos: kv.Pos(), val: val}
						}
					}
					return out
				}
			}
		}
	}
	return nil
}

// constInt returns the constant integer value of an expression, if any.
func constInt(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	n, ok := constant.Int64Val(v)
	return n, ok
}

// docProtoTableRows extracts, per reference table (keyed by its first header
// cell), the backticked name in column one and the numeric value in column
// two of each row. Values like `0x03` and plain `14` both parse; a
// non-numeric second column leaves hasVal unset (name-only check).
func docProtoTableRows(doc *DocFile) map[string]map[string]protoRow {
	tables := make(map[string]map[string]protoRow)
	current := "" // header of the table being scanned, "" when outside
	for i, line := range doc.Lines {
		t := strings.TrimSpace(line)
		if !strings.HasPrefix(t, "|") {
			current = ""
			continue
		}
		cells := strings.Split(t, "|")
		if len(cells) < 2 {
			continue
		}
		first := strings.TrimSpace(cells[1])
		if current == "" {
			for _, c := range protoCatalogs {
				if first == c.header {
					current = c.header
					if tables[current] == nil {
						tables[current] = make(map[string]protoRow)
					}
					break
				}
			}
			continue
		}
		if strings.HasPrefix(first, "---") || first == "" {
			continue
		}
		m := eventNameRE.FindStringSubmatch(first)
		if m == nil || !strings.HasPrefix(first, "`") {
			continue
		}
		name := m[1]
		row := protoRow{}
		if len(cells) >= 3 {
			v := strings.Trim(strings.TrimSpace(cells[2]), "`")
			if n, err := strconv.ParseInt(v, 0, 64); err == nil {
				row.val, row.hasVal = n, true
			}
		}
		if _, ok := tables[current][name]; !ok {
			col := strings.Index(line, "`"+name) + 2
			row.pos = doc.Pos(i+1, col)
			tables[current][name] = row
		}
	}
	return tables
}
