package analysis

import (
	"go/ast"
	"go/types"
)

// WithParents walks root in depth-first order, calling fn with each node and
// the stack of its ancestors (outermost first). Returning false skips the
// node's children.
func WithParents(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// ReceiverBase returns the named type of fn's receiver (dereferenced), or
// nil if fn is not a method or the receiver type is not named.
func ReceiverBase(info *types.Info, fn *ast.FuncDecl) *types.TypeName {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	tv, ok := info.Types[fn.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// CalleeFunc resolves the called function or method of call, or nil for
// indirect calls, conversions, and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is a package-level function pkgPath.name.
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// FieldOf returns the struct field a selector expression resolves to, or nil
// if sel is not a field selection (e.g. a method or qualified identifier).
func FieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// AtomicTypeName returns the sync/atomic type name of t (e.g. "Uint64",
// "Pointer") if t is one of the typed atomics, dereferencing one pointer
// level; otherwise "".
func AtomicTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	var obj *types.TypeName
	switch n := t.(type) {
	case *types.Named:
		obj = n.Obj()
	case *types.Alias:
		obj = n.Obj()
	default:
		return ""
	}
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return ""
	}
	return obj.Name()
}

// OwnerStruct returns the named type that declares field, found by scanning
// the declaring package's named struct types (types.Var carries no back
// pointer to its struct). It handles fields of named structs declared at
// package level, which covers this module's layout.
func OwnerStruct(field *types.Var) *types.TypeName {
	pkg := field.Pkg()
	if pkg == nil {
		return nil
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return tn
			}
		}
	}
	return nil
}

// EnclosingFuncDecl returns the innermost *ast.FuncDecl on the ancestor
// stack, or nil.
func EnclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// IsWrite reports whether expression n (whose ancestor stack is given,
// outermost first) is the direct target of an assignment or ++/--.
// Address-taking (&n) is not counted: by itself it is neither a read nor a
// write.
func IsWrite(stack []ast.Node, n ast.Expr) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.AssignStmt:
			for _, lhs := range parent.Lhs {
				if ast.Unparen(lhs) == n {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return ast.Unparen(parent.X) == n
		default:
			return false
		}
	}
	return false
}
