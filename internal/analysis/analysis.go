// Package analysis is a self-contained static-analysis framework for the
// cicada module, modeled on golang.org/x/tools/go/analysis but built purely
// on the standard library (go/ast, go/parser, go/types) so the repository
// carries no external dependencies.
//
// It exists to machine-check the concurrency discipline Cicada's correctness
// depends on (see docs/CONCURRENCY.md): per-worker clocks read with
// one-sided synchronization (§3.1), version status words flipped
// PENDING→COMMITTED through sanctioned helpers (§3.2), the lock-order
// contract of rapid garbage collection (§3.8), and bounded busy-waiting.
// The concrete rules live in the four analyzers in this package:
// mixedatomic, statusorder, locksdiscipline, and nakedspin, all runnable via
// cmd/cicada-lint.
//
// Findings can be suppressed with a marker comment on the offending line or
// the line directly above it:
//
//	//lint:allow <analyzer>[,<analyzer>...] <reason>
//
// A reason is required: suppressions document intentional, reviewed
// exceptions (e.g. a cold path that may take a mutex).
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow markers.
	Name string
	// Doc is a short description of what the analyzer enforces.
	Doc string
	// Module, when set, runs the analyzer once over the whole program (for
	// cross-package aggregation) instead of once per package.
	Module bool
	// Run executes the check and reports findings through the Pass.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with its inputs and its report sink.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Prog is the loaded program (all packages, including dependencies).
	Prog *Program
	// Pkg is the package under analysis; nil for module-level analyzers.
	Pkg *Package
	// Targets are the packages selected for analysis. Per-package analyzers
	// see their own package in Pkg; module-level analyzers iterate Targets.
	Targets []*Package

	report func(token.Pos, string)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// A Diagnostic is one finding, with its position resolved.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Run executes the analyzers over the target packages of prog and returns
// the surviving diagnostics (after //lint:allow suppression), sorted by
// position.
func Run(prog *Program, targets []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	allow := buildAllowIndex(prog, targets)
	var diags []Diagnostic
	for _, a := range analyzers {
		collect := func(name string) func(token.Pos, string) {
			return func(pos token.Pos, msg string) {
				position := prog.Fset.Position(pos)
				if allow.allows(position, name) {
					return
				}
				diags = append(diags, Diagnostic{Pos: position, Analyzer: name, Message: msg})
			}
		}
		if a.Module {
			pass := &Pass{Analyzer: a, Prog: prog, Targets: targets, report: collect(a.Name)}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range targets {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, Targets: targets, report: collect(a.Name)}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s: package %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// allowIndex maps file:line to the set of analyzer names suppressed there.
type allowIndex map[string]map[int]map[string]bool

// allows reports whether a finding at position is suppressed by a marker on
// the same line or the line directly above.
func (idx allowIndex) allows(pos token.Position, analyzer string) bool {
	lines := idx[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if names := lines[line]; names != nil && (names[analyzer] || names["*"]) {
			return true
		}
	}
	return false
}

// buildAllowIndex scans the target packages' comments for //lint:allow
// markers.
func buildAllowIndex(prog *Program, targets []*Package) allowIndex {
	idx := make(allowIndex)
	for _, pkg := range targets {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					rest, ok := strings.CutPrefix(text, "lint:allow")
					if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						// A marker without a reason is ignored: suppressions
						// must document why the exception is safe.
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					lines := idx[pos.Filename]
					if lines == nil {
						lines = make(map[int]map[string]bool)
						idx[pos.Filename] = lines
					}
					names := lines[pos.Line]
					if names == nil {
						names = make(map[string]bool)
						lines[pos.Line] = names
					}
					for _, name := range strings.Split(fields[0], ",") {
						if name = strings.TrimSpace(name); name != "" {
							names[name] = true
						}
					}
				}
			}
		}
	}
	return idx
}
