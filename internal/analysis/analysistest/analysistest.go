// Package analysistest runs an analyzer over fixture packages and checks its
// diagnostics against expectations written in the fixtures, in the style of
// golang.org/x/tools/go/analysis/analysistest (reimplemented on the standard
// library so the repository stays dependency-free).
//
// Fixtures live under <testdata>/src/<path>/... (GOPATH-style). A line that
// should trigger a diagnostic carries a comment:
//
//	x = 1 // want `regexp matching the message`
//
// Multiple backquoted regexps on one line expect multiple diagnostics. Lines
// without a want comment must produce no diagnostics; unmatched expectations
// and unexpected diagnostics both fail the test.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cicada/internal/analysis"
)

var wantRE = regexp.MustCompile("want((?:\\s+`[^`]*`)+)")
var wantArgRE = regexp.MustCompile("`([^`]*)`")

// Run loads the fixture packages matching patterns from testdata/src and
// checks a's diagnostics against the // want expectations in their sources.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatal(err)
	}
	l := &analysis.Loader{Root: root, Prefix: ""}
	prog, targets, err := l.Load(patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(targets) == 0 {
		t.Fatalf("no fixture packages matched %v under %s", patterns, root)
	}

	type expect struct {
		re      *regexp.Regexp
		matched bool
	}
	expects := make(map[string][]*expect) // "file:line" -> expectations
	for _, pkg := range targets {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
						re, err := regexp.Compile(arg[1])
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", key, arg[1], err)
						}
						expects[key] = append(expects[key], &expect{re: re})
					}
				}
			}
		}
	}

	diags, err := analysis.Run(prog, targets, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		var hit *expect
		for _, e := range expects[key] {
			if !e.matched && e.re.MatchString(d.Message) {
				hit = e
				break
			}
		}
		if hit == nil {
			t.Errorf("%s: unexpected diagnostic: %s", rel(root, key), d.Message)
			continue
		}
		hit.matched = true
	}
	for key, es := range expects {
		for _, e := range es {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", rel(root, key), e.re)
			}
		}
	}
}

func rel(root, key string) string {
	if r, err := filepath.Rel(root, key); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return key
}
