package analysis

import (
	"path/filepath"
	"testing"
)

// TestLoadModule type-checks the whole cicada module with the stdlib-only
// loader; a failure here means the linter cannot see the real code.
func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l := &Loader{Root: root, Prefix: "cicada"}
	prog, targets, err := l.Load("...")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) < 10 {
		t.Fatalf("expected to load the full module, got %d packages", len(targets))
	}
	for _, want := range []string{"cicada", "cicada/internal/core", "cicada/internal/storage", "cicada/internal/clock"} {
		if prog.Package(want) == nil {
			t.Errorf("package %s not loaded", want)
		}
	}
	core := prog.Package("cicada/internal/core")
	if core.Types.Scope().Lookup("Engine") == nil {
		t.Error("core.Engine not in type-checked scope")
	}
}

// TestLoadSubtreePattern restricts loading to one subtree.
func TestLoadSubtreePattern(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l := &Loader{Root: root, Prefix: "cicada"}
	_, targets, err := l.Load("internal/clock/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 1 || targets[0].Path != "cicada/internal/clock" {
		t.Fatalf("unexpected targets: %+v", targets)
	}
}
