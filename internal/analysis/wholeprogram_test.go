package analysis_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cicada/internal/analysis"
)

// writeTree materializes a file map under a fresh temp directory.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// copyTree copies a fixture subtree into a fresh temp directory so a test
// can mutate it.
func copyTree(t *testing.T, src string) string {
	t.Helper()
	root := t.TempDir()
	err := filepath.WalkDir(src, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		dst := filepath.Join(root, rel)
		if d.IsDir() {
			return os.MkdirAll(dst, 0o755)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(dst, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func runOn(t *testing.T, root, prefix string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	l := &analysis.Loader{Root: root, Prefix: prefix}
	prog, targets, err := l.Load("...")
	if err != nil {
		t.Fatalf("loading %s: %v", root, err)
	}
	diags, err := analysis.Run(prog, targets, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	return diags
}

func findDiag(diags []analysis.Diagnostic, substr string) *analysis.Diagnostic {
	for i := range diags {
		if strings.Contains(diags[i].Message, substr) {
			return &diags[i]
		}
	}
	return nil
}

const allocFixture = `package alloc

//cicada:noalloc
func Clean(x int) int { return x + 1 }

// Escapes allocates a slice that outlives the call.
//
//cicada:noalloc
func Escapes(n int) []int {
	return make([]int, n)
}
`

const allocFixtureFixed = `package alloc

//cicada:noalloc
func Clean(x int) int { return x + 1 }

// Escapes no longer escapes.
//
//cicada:noalloc
func Escapes(n int) []int {
	_ = n
	return nil
}
`

// TestHotPathAllocRegression walks the full escape-gate lifecycle in a
// throwaway module: a new escape in a //cicada:noalloc function fails, a
// baseline entry without a justification still fails, a justified entry
// passes, and removing the allocation turns the entry stale.
func TestHotPathAllocRegression(t *testing.T) {
	if _, err := os.Stat(filepath.Join(os.Getenv("GOROOT"), "bin")); err != nil && os.Getenv("GOROOT") != "" {
		t.Skip("no go toolchain available")
	}
	root := writeTree(t, map[string]string{
		"go.mod":         "module hotpathalloc\n\ngo 1.22\n",
		"alloc/alloc.go": allocFixture,
	})

	diags := runOn(t, root, "hotpathalloc", analysis.HotPathAlloc)
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic for the new escape, got %d: %v", len(diags), diags)
	}
	if d := findDiag(diags, "heap escape in //cicada:noalloc function hotpathalloc/alloc.Escapes"); d == nil {
		t.Fatalf("unexpected diagnostic: %s", diags[0].Message)
	}

	// Sanction it: the generated entry carries a TODO reason, which the
	// analyzer still flags.
	l := &analysis.Loader{Root: root, Prefix: "hotpathalloc"}
	prog, targets, err := l.Load("...")
	if err != nil {
		t.Fatal(err)
	}
	if err := analysis.UpdateEscapeBaseline(prog, targets); err != nil {
		t.Fatal(err)
	}
	diags = runOn(t, root, "hotpathalloc", analysis.HotPathAlloc)
	if d := findDiag(diags, "baselined without a justification"); d == nil || len(diags) != 1 {
		t.Fatalf("want exactly the missing-justification diagnostic, got %v", diags)
	}

	// Justify it: clean.
	basePath := filepath.Join(root, analysis.EscapeBaselinePath)
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	var baseline analysis.EscapeBaseline
	if err := json.Unmarshal(data, &baseline); err != nil {
		t.Fatal(err)
	}
	if len(baseline.Entries) != 1 {
		t.Fatalf("want 1 baseline entry, got %d", len(baseline.Entries))
	}
	baseline.Entries[0].Reason = "fixture: deliberate escape"
	data, err = json.Marshal(&baseline)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(basePath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if diags = runOn(t, root, "hotpathalloc", analysis.HotPathAlloc); len(diags) != 0 {
		t.Fatalf("want clean after justification, got %v", diags)
	}

	// Remove the allocation: the sanctioned entry is now stale.
	if err := os.WriteFile(filepath.Join(root, "alloc/alloc.go"), []byte(allocFixtureFixed), 0o644); err != nil {
		t.Fatal(err)
	}
	diags = runOn(t, root, "hotpathalloc", analysis.HotPathAlloc)
	if d := findDiag(diags, "stale escape baseline entry"); d == nil || len(diags) != 1 {
		t.Fatalf("want exactly the stale-entry diagnostic, got %v", diags)
	}
}

// TestFailpointCoverDocDrift mutates the failpointcover fixture's
// DURABILITY.md and checks both doc directions, with findings positioned in
// the markdown file itself.
func TestFailpointCoverDocDrift(t *testing.T) {
	root := copyTree(t, filepath.Join("testdata", "src", "failpointcover"))
	docPath := filepath.Join(root, "docs", "DURABILITY.md")
	data, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatal(err)
	}
	doc := strings.Replace(string(data), "| `wal/orphan` | reserved for rotation |\n", "", 1)
	doc += "| `wal/ghost` | never existed |\n"
	if err := os.WriteFile(docPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}

	diags := runOn(t, root, "failpointcover", analysis.FailpointCover)
	missing := findDiag(diags, `failpoint "wal/orphan" is not listed in the docs/DURABILITY.md catalog table`)
	if missing == nil {
		t.Errorf("missing-from-doc direction did not fire: %v", diags)
	}
	ghost := findDiag(diags, `documented failpoint "wal/ghost" does not exist`)
	if ghost == nil {
		t.Errorf("stale-doc-entry direction did not fire: %v", diags)
	} else if !strings.HasSuffix(ghost.Pos.Filename, "DURABILITY.md") {
		t.Errorf("stale-doc finding should point into the markdown file, got %s", ghost.Pos)
	}
}

// TestMetricDriftDocStale appends a stale reference-table row to the
// metricdrift fixture's OBSERVABILITY.md and checks the doc → code
// direction reports it at the markdown position.
func TestMetricDriftDocStale(t *testing.T) {
	root := copyTree(t, filepath.Join("testdata", "src", "metricdrift"))
	docPath := filepath.Join(root, "docs", "OBSERVABILITY.md")
	f, err := os.OpenFile(docPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\n| Metric | Meaning |\n|---|---|\n| `app_stale_total` | Gone. |\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	diags := runOn(t, root, "metricdrift", analysis.MetricDrift)
	stale := findDiag(diags, `documented metric "app_stale_total" is not registered`)
	if stale == nil {
		t.Fatalf("stale-row direction did not fire: %v", diags)
	}
	if !strings.HasSuffix(stale.Pos.Filename, "OBSERVABILITY.md") {
		t.Errorf("stale-row finding should point into the markdown file, got %s", stale.Pos)
	}
}

// TestTraceDriftDocStale appends a stale event-table row to the tracedrift
// fixture's OBSERVABILITY.md and checks the doc → code direction reports it
// at the markdown position.
func TestTraceDriftDocStale(t *testing.T) {
	root := copyTree(t, filepath.Join("testdata", "src", "tracedrift"))
	docPath := filepath.Join(root, "docs", "OBSERVABILITY.md")
	f, err := os.OpenFile(docPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\n| Event | Meaning |\n|---|---|\n| `ev_stale` | Gone. |\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	diags := runOn(t, root, "tracedrift", analysis.TraceDrift)
	stale := findDiag(diags, `documented trace event "ev_stale" is not in the catalog`)
	if stale == nil {
		t.Fatalf("stale-row direction did not fire: %v", diags)
	}
	if !strings.HasSuffix(stale.Pos.Filename, "OBSERVABILITY.md") {
		t.Errorf("stale-row finding should point into the markdown file, got %s", stale.Pos)
	}
}

// TestProtoDriftDocDrift mutates the protodrift fixture's PROTOCOL.md in
// two ways — a ghost opcode row and a renumbered error code — and checks
// both findings are positioned in the markdown file.
func TestProtoDriftDocDrift(t *testing.T) {
	root := copyTree(t, filepath.Join("testdata", "src", "protodrift"))
	docPath := filepath.Join(root, "docs", "PROTOCOL.md")
	data, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatal(err)
	}
	doc := strings.Replace(string(data), "| `quota` | 8 |", "| `quota` | 9 |", 1)
	doc += "\n| Opcode | Value |\n|---|---|\n| `ghost` | `0x55` |\n"
	if err := os.WriteFile(docPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}

	diags := runOn(t, root, "protodrift", analysis.ProtoDrift)
	ghost := findDiag(diags, `documented opcode "ghost" is not in the wire catalog`)
	if ghost == nil {
		t.Errorf("stale-row direction did not fire: %v", diags)
	} else if !strings.HasSuffix(ghost.Pos.Filename, "PROTOCOL.md") {
		t.Errorf("stale-row finding should point into the markdown file, got %s", ghost.Pos)
	}
	renum := findDiag(diags, `error code "quota" is documented as 9 in docs/PROTOCOL.md but the wire catalog defines 8`)
	if renum == nil {
		t.Errorf("value-mismatch direction did not fire: %v", diags)
	} else if !strings.HasSuffix(renum.Pos.Filename, "PROTOCOL.md") {
		t.Errorf("value-mismatch finding should point into the markdown file, got %s", renum.Pos)
	}
}
