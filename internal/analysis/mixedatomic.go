package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MixedAtomic flags struct fields that are accessed both through sync/atomic
// functions and through plain loads/stores anywhere in the module — the
// classic bug class of in-memory CC reproductions: one missed atomic.Load on
// a version word or a worker clock produces rare, unreproducible
// serializability violations. It runs module-wide because the atomic and the
// plain access typically live in different packages (e.g. a field written
// atomically in internal/clock and read plainly by a baseline engine).
//
// It additionally flags copies of typed atomics (atomic.Uint64 and friends
// used other than via their methods or their address), which silently drop
// atomicity.
var MixedAtomic = &Analyzer{
	Name:   "mixedatomic",
	Doc:    "flags struct fields accessed both atomically (sync/atomic) and non-atomically",
	Module: true,
	Run:    runMixedAtomic,
}

// atomicFuncPrefixes are the sync/atomic function families that take a
// pointer to the word they operate on as their first argument.
var atomicFuncPrefixes = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"}

func isAtomicPointerFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, p := range atomicFuncPrefixes {
		if strings.HasPrefix(fn.Name(), p) {
			return true
		}
	}
	return false
}

// telemetryPkgSuffix identifies the engine's observability package, whose
// word helpers and per-worker shard types participate in the atomic
// discipline. Suffix matching keeps the analyzer testable from GOPATH-style
// fixtures, like the hot-path suffixes of the other analyzers.
const telemetryPkgSuffix = "internal/telemetry"

// telemetryWordFuncs are the telemetry package's sanctioned single-writer
// accessors: they perform the atomic load/store pair internally, so a call
// counts as an atomic access of the pointed-to field and any plain access
// of the same field elsewhere is a bug.
var telemetryWordFuncs = map[string]bool{
	"OwnerAddUint64": true,
	"OwnerIncUint64": true,
	"ReadUint64":     true,
}

func isTelemetryWordFunc(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil &&
		strings.HasSuffix(fn.Pkg().Path(), telemetryPkgSuffix) &&
		telemetryWordFuncs[fn.Name()]
}

// telemetryShardTypeName returns the type name if t is a value-typed
// telemetry shard (CounterShard, GaugeShard, HistogramShard,
// RecorderShard, ...): structs of per-worker atomic words that must only be
// used through methods or a pointer. Pointers to shards copy fine and
// return "".
func telemetryShardTypeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), telemetryPkgSuffix) {
		return ""
	}
	if !strings.HasSuffix(obj.Name(), "Shard") {
		return ""
	}
	return obj.Name()
}

type fieldAccess struct {
	pos  token.Pos
	pkg  string
	kind string // "read" or "write"
}

func runMixedAtomic(pass *Pass) error {
	// atomicSites: field object -> first atomic access position.
	atomicSites := make(map[*types.Var]token.Pos)
	// plainSites: field object -> plain accesses.
	plainSites := make(map[*types.Var][]fieldAccess)
	// consumed marks selector nodes that are the &x.f argument of an atomic
	// call so the plain-access pass skips them.
	consumed := make(map[*ast.SelectorExpr]bool)

	for _, pkg := range pass.Targets {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := CalleeFunc(pkg.Info, call)
				if !isAtomicPointerFunc(fn) && !isTelemetryWordFunc(fn) {
					return true
				}
				unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					return true
				}
				sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if field := FieldOf(pkg.Info, sel); field != nil {
					if _, dup := atomicSites[field]; !dup {
						atomicSites[field] = sel.Pos()
					}
					consumed[sel] = true
				}
				return true
			})
		}
	}

	for _, pkg := range pass.Targets {
		for _, f := range pkg.Files {
			WithParents(f, func(n ast.Node, stack []ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				field := FieldOf(pkg.Info, sel)
				if field == nil {
					return true
				}
				checkAtomicCopy(pass, pkg, sel, field, stack)
				if consumed[sel] {
					return true
				}
				if isAddressTaken(stack) {
					// &x.f on its own is neither a read nor a write; aliased
					// atomics are the pointer owner's responsibility.
					return true
				}
				kind := "read"
				if IsWrite(stack, sel) {
					kind = "write"
				}
				plainSites[field] = append(plainSites[field], fieldAccess{pos: sel.Pos(), pkg: pkg.Path, kind: kind})
				return true
			})
		}
	}

	for field, sites := range plainSites {
		atomicPos, ok := atomicSites[field]
		if !ok {
			continue
		}
		owner := "?"
		if o := OwnerStruct(field); o != nil {
			owner = o.Name()
		}
		for _, site := range sites {
			pass.Reportf(site.pos,
				"non-atomic %s of field %s.%s, which is accessed with sync/atomic at %s; use atomic.Load/Store or a typed atomic",
				site.kind, owner, field.Name(), pass.Prog.Fset.Position(atomicPos))
		}
	}
	return nil
}

// isAddressTaken reports whether the expression whose stack is given appears
// directly under a unary & operator.
func isAddressTaken(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.UnaryExpr:
			return parent.Op == token.AND
		default:
			return false
		}
	}
	return false
}

// checkAtomicCopy reports uses of typed-atomic fields (atomic.Uint64 etc.)
// and of value-typed telemetry shards other than method calls on them or
// taking their address: assigning or passing them by value copies atomic
// words without synchronization (and is flagged by vet's copylocks as well;
// repeated here so one linter covers the whole discipline).
func checkAtomicCopy(pass *Pass, pkg *Package, sel *ast.SelectorExpr, field *types.Var, stack []ast.Node) {
	name := AtomicTypeName(field.Type())
	qual := "atomic"
	if name == "" {
		name = telemetryShardTypeName(field.Type())
		qual = "telemetry"
	}
	if name == "" {
		return
	}
	// Permitted contexts: receiver of a method call (x.f.Load()), address
	// taking (&x.f), or a nested field selection used the same way.
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.UnaryExpr:
			if parent.Op == token.AND {
				return
			}
		case *ast.SelectorExpr:
			// x.f.Load — fine if f is the X of a method selector.
			if parent.X == sel || ast.Unparen(parent.X) == sel {
				return
			}
		}
		break
	}
	pass.Reportf(sel.Pos(),
		"%s.%s field %s is copied or used by value; call its methods or take its address",
		qual, name, field.Name())
}
