package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// TraceDrift cross-checks the transaction-trace event catalog (the
// eventNames array in internal/trace) against the event reference table in
// docs/OBSERVABILITY.md, in both directions:
//
//   - code → doc: every catalog name must be mentioned (backticked)
//     somewhere in the doc. An event an operator cannot look up while
//     staring at a Perfetto timeline is diagnostic noise.
//   - doc → code: every row of a reference table whose header column is
//     "Event" must name an event the catalog actually emits. A stale row
//     sends the operator hunting for an event that never appears.
//
// Like metricdrift, the doc → code direction needs the catalog package
// loaded, so it runs only on whole-program (`./...`) runs; narrowed pattern
// runs check code → doc only.
var TraceDrift = &Analyzer{
	Name:   "tracedrift",
	Doc:    "cross-checks the trace event catalog against docs/OBSERVABILITY.md",
	Module: true,
	Run:    runTraceDrift,
}

// traceCatalogVar is the catalog anchor: a package-level
// `var eventNames = [...]string{...}` in a package named trace.
const traceCatalogVar = "eventNames"

func runTraceDrift(pass *Pass) error {
	catalog := make(map[string]token.Pos) // event name -> literal position
	var catalogPkg *Package
	for _, pkg := range pass.Targets {
		if pkg.Path != "internal/trace" && !strings.HasSuffix(pkg.Path, "/trace") && pkg.Path != "trace" {
			continue
		}
		if collectTraceCatalog(pkg, catalog) {
			catalogPkg = pkg
		}
	}
	if catalogPkg == nil || len(catalog) == 0 {
		// No trace package in the target set: nothing to drift against.
		return nil
	}

	doc, err := pass.Prog.FindDoc(catalogPkg.Dir, metricDocPath)
	if err != nil {
		return nil
	}
	mentioned := docEventMentions(doc)
	tableRows := docEventTableRows(doc)

	var names []string
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if !mentioned[n] {
			pass.Reportf(catalog[n],
				"trace event %q is in the catalog but never mentioned in %s: add it to the event reference (or it is diagnostic noise)",
				n, metricDocPath)
		}
	}

	// Reverse direction only when the whole program is in scope.
	if len(pass.Targets) != len(pass.Prog.Packages) {
		return nil
	}
	var rows []string
	for n := range tableRows {
		rows = append(rows, n)
	}
	sort.Strings(rows)
	for _, n := range rows {
		if _, ok := catalog[n]; !ok {
			pass.Reportf(tableRows[n],
				"documented trace event %q is not in the catalog: stale reference-table row in %s",
				n, metricDocPath)
		}
	}
	return nil
}

// collectTraceCatalog records the constant string elements of pkg's
// package-level eventNames array literal; it reports whether the anchor was
// found.
func collectTraceCatalog(pkg *Package, out map[string]token.Pos) bool {
	found := false
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != traceCatalogVar || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					found = true
					for _, elt := range lit.Elts {
						if s, ok := constString(pkg.Info, elt); ok {
							if _, dup := out[s]; !dup {
								out[s] = elt.Pos()
							}
						}
					}
				}
			}
		}
	}
	return found
}

// eventNameRE matches a backticked event name.
var eventNameRE = regexp.MustCompile("`([a-z][a-z0-9_]*)`")

// docEventMentions returns every event-ish name mentioned (backticked)
// anywhere in the doc.
func docEventMentions(doc *DocFile) map[string]bool {
	mentioned := make(map[string]bool)
	for _, m := range eventNameRE.FindAllStringSubmatch(doc.Content, -1) {
		mentioned[m[1]] = true
	}
	return mentioned
}

// docEventTableRows extracts the first-column event names from reference
// tables whose first header cell is "Event" (name -> row position).
func docEventTableRows(doc *DocFile) map[string]token.Pos {
	rows := make(map[string]token.Pos)
	inTable := false
	for i, line := range doc.Lines {
		t := strings.TrimSpace(line)
		if !strings.HasPrefix(t, "|") {
			inTable = false
			continue
		}
		cells := strings.Split(t, "|")
		if len(cells) < 2 {
			continue
		}
		first := strings.TrimSpace(cells[1])
		if !inTable {
			inTable = first == "Event"
			continue
		}
		if strings.HasPrefix(first, "---") || first == "" {
			continue
		}
		m := eventNameRE.FindStringSubmatch(first)
		if m == nil || !strings.HasPrefix(first, "`") {
			continue
		}
		name := m[1]
		if _, ok := rows[name]; !ok {
			col := strings.Index(line, "`"+name) + 2
			rows[name] = doc.Pos(i+1, col)
		}
	}
	return rows
}
