package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NakedSpin flags busy-wait loops with no backoff: a loop that polls an
// atomic word (or spins with an empty body) without runtime.Gosched,
// time.Sleep, a channel operation, or a CAS/store that makes progress. On
// Go's cooperative scheduler a naked spin can livelock an entire P —
// Cicada's reader spin on PENDING versions (§3.2) must yield, exactly as
// core.searchVisible does.
//
// The check is deliberately conservative: a loop containing any call it
// cannot classify (an arbitrary function may yield internally) is skipped,
// and a loop that captures a loaded value into a variable is treated as
// making progress — that is the shape of chain traversals
// (v = v.Next.Load()) and CAS retry loops, not of naked polling. Flagged
// loops therefore consist purely of atomic loads compared in place and
// local control flow.
var NakedSpin = &Analyzer{
	Name: "nakedspin",
	Doc:  "flags busy-wait loops that poll atomics without runtime.Gosched or backoff",
	Run:  runNakedSpin,
}

func runNakedSpin(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			checkSpinLoop(pass, loop)
			return true
		})
	}
	return nil
}

// spinScan classifies everything inside a loop (cond + post + body,
// excluding nested function literals, whose bodies run on their own terms).
type spinScan struct {
	polls    int // atomic load calls
	yields   int // Gosched / Sleep / chan ops / select / mutex ops
	progress int // atomic stores, CAS, adds, swaps
	unknown  int // calls we cannot classify
}

func checkSpinLoop(pass *Pass, loop *ast.ForStmt) {
	info := pass.Pkg.Info
	var scan spinScan
	captured := capturedCalls(loop)
	classify := func(root ast.Node) {
		if root == nil {
			return
		}
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SendStmt, *ast.SelectStmt, *ast.RangeStmt, *ast.GoStmt, *ast.DeferStmt:
				scan.yields++
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					scan.yields++
				}
			case *ast.CallExpr:
				classifySpinCall(info, n, &scan, captured)
			}
			return true
		})
	}
	classify(loop.Cond)
	classify(loop.Post)
	classify(loop.Body)

	if scan.yields > 0 || scan.progress > 0 || scan.unknown > 0 {
		return
	}
	if scan.polls == 0 {
		// No atomic polling: either a pure computation loop (not our
		// business) or an empty spin on a local condition; only flag the
		// completely empty `for {}` / `for cond {}` shell if it polls
		// something — a plain infinite loop is the infiniteloop vet check's
		// territory, not a concurrency-discipline issue.
		return
	}
	pass.Reportf(loop.Pos(),
		"busy-wait loop polls an atomic without yielding; add runtime.Gosched() or backoff (see docs/CONCURRENCY.md)")
}

// capturedCalls collects every call expression inside the loop whose result
// is bound to a variable (assignment RHS or var-decl initializer). An atomic
// Load in that position advances local state — a list walk or CAS-retry
// snapshot — rather than polling a fixed word.
func capturedCalls(loop *ast.ForStmt) map[*ast.CallExpr]bool {
	captured := make(map[*ast.CallExpr]bool)
	mark := func(expr ast.Expr) {
		ast.Inspect(expr, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok {
				captured[c] = true
			}
			return true
		})
	}
	for _, root := range []ast.Node{loop.Post, loop.Body} {
		if root == nil {
			continue
		}
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					mark(rhs)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					mark(v)
				}
			}
			return true
		})
	}
	return captured
}

// classifySpinCall buckets a call inside a candidate spin loop.
func classifySpinCall(info *types.Info, call *ast.CallExpr, scan *spinScan, captured map[*ast.CallExpr]bool) {
	fn := CalleeFunc(info, call)
	if fn == nil {
		// Conversion or builtin: len/cap etc. are harmless; an indirect call
		// is unknowable.
		switch ast.Unparen(call.Fun).(type) {
		case *ast.Ident, *ast.SelectorExpr:
			scan.unknown++
		}
		return
	}
	pkg := fn.Pkg()
	switch {
	case IsPkgFunc(fn, "runtime", "Gosched"), IsPkgFunc(fn, "time", "Sleep"):
		scan.yields++
	case pkg != nil && pkg.Path() == "sync":
		scan.yields++ // mutex/cond interaction blocks or releases; not a naked spin
	case isAtomicMethodOrFunc(fn, "Load"):
		if captured[call] {
			scan.progress++
		} else {
			scan.polls++
		}
	case isAtomicMethodOrFunc(fn, "Store"), isAtomicMethodOrFunc(fn, "Add"),
		isAtomicMethodOrFunc(fn, "Swap"), isAtomicMethodOrFunc(fn, "CompareAndSwap"),
		isAtomicMethodOrFunc(fn, "And"), isAtomicMethodOrFunc(fn, "Or"):
		scan.progress++
	default:
		scan.unknown++
	}
}

// isAtomicMethodOrFunc reports whether fn is a sync/atomic package function
// or typed-atomic method whose name starts with prefix (LoadUint64,
// Uint64.Load, CompareAndSwapPointer, ...).
func isAtomicMethodOrFunc(fn *types.Func, prefix string) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	if !strings.HasPrefix(fn.Name(), prefix) {
		return false
	}
	// Distinguish Load from LoadUint64 vs methods named exactly Load: both
	// are fine — the prefix families do not collide across buckets.
	return true
}
