package analysis_test

import (
	"testing"

	"cicada/internal/analysis"
	"cicada/internal/analysis/analysistest"
)

func TestMixedAtomic(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MixedAtomic, "mixedatomic/...")
}

func TestStatusOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.StatusOrder, "statusorder/...")
}

func TestLocksDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LocksDiscipline, "locksdiscipline/...")
}

func TestNakedSpin(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NakedSpin, "nakedspin/...")
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LockOrder, "lockorder/...")
}

func TestFailpointCover(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.FailpointCover, "failpointcover/...")
}

func TestMetricDrift(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MetricDrift, "metricdrift/...")
}

func TestTraceDrift(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.TraceDrift, "tracedrift/...")
}

func TestProtoDrift(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ProtoDrift, "protodrift/...")
}
