package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// FailpointCover proves the crash-injection story of docs/DURABILITY.md is
// complete, in two parts:
//
//  1. Coverage: every file-I/O call site in the WAL packages
//     (write/sync/rename/truncate-class operations on files, plus buffered
//     writes that front them) must be dominated by a named fault hook —
//     a fault.Inject/fault.Write call earlier in the same function, or, for
//     helpers like syncDir, a hook before every call site of the enclosing
//     function (computed interprocedurally). An I/O site the torture
//     harness cannot crash is durability logic that is never tested.
//
//  2. Drift: the failpoint names must agree across the three places they
//     live — the Site constants in internal/fault, the fault.Sites()
//     catalog function, and the catalog table in docs/DURABILITY.md — and
//     every declared site must actually be hooked somewhere.
//
// The drift checks that need whole-program knowledge (unused sites, doc
// sync) only run when both the fault package and a WAL package are among
// the analyzed targets, so narrowed pattern runs do not misreport.
var FailpointCover = &Analyzer{
	Name:   "failpointcover",
	Doc:    "asserts WAL I/O sites are dominated by fault hooks and the failpoint catalog is in sync",
	Module: true,
	Run:    runFailpointCover,
}

// failpointDocPath is the failpoint catalog's documentation page, relative
// to the tree that contains the WAL package.
const failpointDocPath = "docs/DURABILITY.md"

func isWALPackage(path string) bool {
	return path == "internal/wal" || strings.HasSuffix(path, "/internal/wal")
}

func isFaultPackage(path string) bool {
	return path == "internal/fault" || strings.HasSuffix(path, "/internal/fault")
}

// isFaultHook reports whether fn is the fault package's Inject or Write
// hook.
func isFaultHook(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && isFaultPackage(fn.Pkg().Path()) &&
		(fn.Name() == "Inject" || fn.Name() == "Write")
}

// ioKind classifies a durability-relevant file-I/O call, or "" if the call
// is not one.
func ioKind(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return ""
	}
	if sig.Recv() == nil {
		if fn.Pkg().Path() != "os" {
			return ""
		}
		switch fn.Name() {
		case "Rename", "Remove", "RemoveAll", "Truncate", "WriteFile":
			return "os." + fn.Name()
		}
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	recv := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	switch recv {
	case "os.File":
		switch fn.Name() {
		case "Write", "WriteAt", "WriteString", "ReadFrom", "Sync", "Truncate":
			return "(*os.File)." + fn.Name()
		}
	case "bufio.Writer":
		switch fn.Name() {
		case "Write", "WriteString", "Flush", "ReadFrom":
			return "(*bufio.Writer)." + fn.Name()
		}
	}
	return ""
}

// walFuncCover summarizes one WAL function for the domination analysis.
type walFuncCover struct {
	fn        *types.Func
	hookPos   []token.Pos // fault hook call positions, sorted
	callSites []walCall   // calls to this function from WAL packages
}

type walCall struct {
	caller *types.Func
	pos    token.Pos
}

type walIOSite struct {
	caller *types.Func
	pos    token.Pos
	kind   string
}

func runFailpointCover(pass *Pass) error {
	var walPkgs, faultPkgs []*Package
	for _, pkg := range pass.Targets {
		switch {
		case isWALPackage(pkg.Path):
			walPkgs = append(walPkgs, pkg)
		case isFaultPackage(pkg.Path):
			faultPkgs = append(faultPkgs, pkg)
		}
	}
	if len(walPkgs) == 0 {
		return nil
	}

	// Pass 1 over the WAL packages: per-function hook positions, the
	// WAL-internal call graph, and the I/O sites to judge.
	covers := make(map[*types.Func]*walFuncCover)
	coverFor := func(fn *types.Func) *walFuncCover {
		c := covers[fn]
		if c == nil {
			c = &walFuncCover{fn: fn}
			covers[fn] = c
		}
		return c
	}
	var ioSites []walIOSite
	usedSites := make(map[string]token.Pos) // site name -> first hook using it
	for _, pkg := range walPkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				cover := coverFor(obj)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := CalleeFunc(pkg.Info, call)
					switch {
					case isFaultHook(fn):
						cover.hookPos = append(cover.hookPos, call.Pos())
						if name, ok := faultSiteArg(pkg.Info, call); ok {
							if _, seen := usedSites[name]; !seen {
								usedSites[name] = call.Pos()
							}
						}
					case ioKind(fn) != "":
						ioSites = append(ioSites, walIOSite{caller: obj, pos: call.Pos(), kind: ioKind(fn)})
					case fn != nil && fn.Pkg() != nil && isWALPackage(fn.Pkg().Path()):
						coverFor(fn).callSites = append(coverFor(fn).callSites, walCall{caller: obj, pos: call.Pos()})
					}
					return true
				})
			}
		}
	}
	// Hooks used elsewhere (e.g. core's commit hand-off) count for the
	// drift checks even though their I/O lives outside the WAL.
	for _, pkg := range pass.Targets {
		if isWALPackage(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := CalleeFunc(pkg.Info, call); isFaultHook(fn) {
					if name, ok := faultSiteArg(pkg.Info, call); ok {
						if _, seen := usedSites[name]; !seen {
							usedSites[name] = call.Pos()
						}
					}
				}
				return true
			})
		}
	}
	for _, c := range covers {
		sort.Slice(c.hookPos, func(i, j int) bool { return c.hookPos[i] < c.hookPos[j] })
	}

	// Domination: an I/O site is covered if a hook precedes it in its own
	// function, or every WAL call site of the enclosing function is itself
	// at a dominated position (fixed-point with a visiting guard).
	type visitKey struct {
		fn  *types.Func
		pos token.Pos
	}
	visiting := make(map[*types.Func]bool)
	var dominatedAt func(fn *types.Func, pos token.Pos) bool
	dominatedAt = func(fn *types.Func, pos token.Pos) bool {
		c := covers[fn]
		if c == nil {
			return false
		}
		for _, h := range c.hookPos {
			if h < pos {
				return true
			}
		}
		if len(c.callSites) == 0 || visiting[fn] {
			return false
		}
		visiting[fn] = true
		defer delete(visiting, fn)
		for _, cs := range c.callSites {
			if !dominatedAt(cs.caller, cs.pos) {
				return false
			}
		}
		return true
	}
	_ = visitKey{}
	for _, io := range ioSites {
		if !dominatedAt(io.caller, io.pos) {
			pass.Reportf(io.pos,
				"%s in %s is not dominated by a fault hook: a crash cannot be injected at this I/O, so the torture harness never tests it (add fault.Inject/fault.Write before it, or hook every caller)",
				io.kind, io.caller.Name())
		}
	}

	// Drift checks need the whole program: the fault package's catalog and
	// a view of every hook call site.
	if len(faultPkgs) == 0 {
		return nil
	}
	declared, sitesFn := faultCatalog(faultPkgs[0])
	for name, pos := range declared {
		if _, ok := sitesFn[name]; !ok && len(sitesFn) > 0 {
			pass.Reportf(pos,
				"failpoint %q is declared but missing from the Sites() catalog function", name)
		}
		if _, ok := usedSites[name]; !ok {
			pass.Reportf(pos,
				"failpoint %q is declared but never passed to a fault hook: dead catalog entry or missing injection point", name)
		}
	}
	for name, pos := range usedSites {
		if _, ok := declared[name]; !ok {
			pass.Reportf(pos,
				"fault hook uses site %q which is not a declared Site constant in the fault package catalog", name)
		}
	}

	doc, err := pass.Prog.FindDoc(walPkgs[0].Dir, failpointDocPath)
	if err != nil {
		// A tree without the durability page has nothing to drift against.
		return nil
	}
	docSites := docFailpointSites(doc)
	for name, pos := range declared {
		if _, ok := docSites[name]; !ok {
			pass.Reportf(pos,
				"failpoint %q is not listed in the %s catalog table", name, failpointDocPath)
		}
	}
	var docNames []string
	for name := range docSites {
		docNames = append(docNames, name)
	}
	sort.Strings(docNames)
	for _, name := range docNames {
		if _, ok := declared[name]; !ok {
			pass.Reportf(docSites[name],
				"documented failpoint %q does not exist in the fault package catalog (stale doc entry)", name)
		}
	}
	return nil
}

// faultSiteArg extracts the constant string value of a hook call's site
// argument.
func faultSiteArg(info *types.Info, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// faultCatalog returns the declared Site constants (name -> pos) and the
// set of constants referenced in the Sites() catalog function.
func faultCatalog(pkg *Package) (declared map[string]token.Pos, sitesFn map[string]bool) {
	declared = make(map[string]token.Pos)
	sitesFn = make(map[string]bool)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok != token.CONST {
					continue
				}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						c, _ := pkg.Info.Defs[name].(*types.Const)
						if c == nil || !isSiteType(c.Type()) || c.Val().Kind() != constant.String {
							continue
						}
						declared[constant.StringVal(c.Val())] = name.Pos()
					}
				}
			case *ast.FuncDecl:
				if d.Name.Name != "Sites" || d.Body == nil {
					continue
				}
				ast.Inspect(d.Body, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					if c, ok := pkg.Info.Uses[id].(*types.Const); ok && isSiteType(c.Type()) && c.Val().Kind() == constant.String {
						sitesFn[constant.StringVal(c.Val())] = true
					}
					return true
				})
			}
		}
	}
	return declared, sitesFn
}

// isSiteType reports whether t is (or aliases) a named type called Site in
// a fault package.
func isSiteType(t types.Type) bool {
	var obj *types.TypeName
	switch n := t.(type) {
	case *types.Named:
		obj = n.Obj()
	case *types.Alias:
		obj = n.Obj()
	default:
		return false
	}
	return obj.Name() == "Site" && obj.Pkg() != nil && isFaultPackage(obj.Pkg().Path())
}

// docSiteRE matches a backticked failpoint name in a markdown table row.
var docSiteRE = regexp.MustCompile("`([a-z0-9-]+(?:/[a-z0-9-]+)+)`")

// docFailpointSites extracts site names from the doc's table rows
// (name -> position of first mention). Only exact site-shaped tokens count;
// glob summaries like `wal/checkpoint-*` are ignored.
func docFailpointSites(doc *DocFile) map[string]token.Pos {
	sites := make(map[string]token.Pos)
	for i, line := range doc.Lines {
		if !strings.HasPrefix(strings.TrimSpace(line), "|") {
			continue
		}
		for _, m := range docSiteRE.FindAllStringSubmatchIndex(line, -1) {
			name := line[m[2]:m[3]]
			// Reject partial matches inside a longer token (e.g. a glob).
			if m[3] < len(line) && line[m[3]] != '`' {
				continue
			}
			if _, ok := sites[name]; !ok {
				sites[name] = doc.Pos(i+1, m[2]+1)
			}
		}
	}
	return sites
}
