package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// StatusOrder enforces the version-word discipline of §3.2/§3.4: the
// concurrency-carrying words of storage.Version (WTS, rts, status, next) and
// storage.Head (latest, gcLock, gcMinWTS, absentRTS) may only be touched
// through the sanctioned helpers — methods declared on the owning type in
// internal/storage. Everything else (the engine's install path, recovery,
// pools, GC) must go through PrepareInstall/SetStatus/CASStatus/SetNext/...
// so that the PENDING→COMMITTED ordering and the rts/next publication rules
// live in exactly one place.
//
// Concretely it flags:
//   - any write to Version.WTS outside a method of Version (WTS is exported
//     because timestamps are read pervasively, but it must only be written
//     before a version becomes reachable — PrepareInstall's contract);
//   - any direct access (read or write, including method calls on the field
//     like v.status.Store) to the unexported guarded fields from a function
//     that is not a method on the owning type. This is only possible inside
//     the storage package itself — e.g. a Table method poking a Head's list
//     anchor instead of using a Head helper.
var StatusOrder = &Analyzer{
	Name: "statusorder",
	Doc:  "flags version status/wts/rts/next accesses that bypass the sanctioned storage helpers",
	Run:  runStatusOrder,
}

// statusOrderTargetSuffix identifies the storage package by import-path
// suffix so analyzer fixtures can provide their own miniature storage
// package.
var statusOrderTargetSuffix = "internal/storage"

// statusGuardedFields lists, per owning type, the guarded fields and whether
// reads are allowed outside the helpers (WTS is read-everywhere,
// write-guarded).
var statusGuardedFields = map[string]map[string]struct{ writeOnly bool }{
	"Version": {
		"WTS":    {writeOnly: true},
		"rts":    {},
		"status": {},
		"next":   {},
	},
	"Head": {
		"latest":    {},
		"gcLock":    {},
		"gcMinWTS":  {},
		"absentRTS": {},
	},
}

func isStoragePackage(path string) bool {
	return path == statusOrderTargetSuffix || strings.HasSuffix(path, "/"+statusOrderTargetSuffix)
}

func runStatusOrder(pass *Pass) error {
	// Locate the storage package this package can see: itself, or one of its
	// direct imports.
	var storagePkg *types.Package
	if isStoragePackage(pass.Pkg.Path) {
		storagePkg = pass.Pkg.Types
	} else {
		for _, imp := range pass.Pkg.Types.Imports() {
			if isStoragePackage(imp.Path()) {
				storagePkg = imp
				break
			}
		}
	}
	if storagePkg == nil {
		return nil // no storage types in scope, nothing to check
	}

	// Resolve the guarded field objects once.
	type guard struct {
		owner     *types.TypeName
		writeOnly bool
	}
	guarded := make(map[*types.Var]guard)
	for typeName, fields := range statusGuardedFields {
		tn, ok := storagePkg.Scope().Lookup(typeName).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if g, ok := fields[f.Name()]; ok {
				guarded[f] = guard{owner: tn, writeOnly: g.writeOnly}
			}
		}
	}
	if len(guarded) == 0 {
		return nil
	}

	for _, f := range pass.Pkg.Files {
		WithParents(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := FieldOf(pass.Pkg.Info, sel)
			if field == nil {
				return true
			}
			g, ok := guarded[field]
			if !ok {
				return true
			}
			if g.writeOnly && !IsWrite(stack, sel) {
				return true
			}
			if fd := EnclosingFuncDecl(stack); fd != nil {
				if recv := ReceiverBase(pass.Pkg.Info, fd); recv == g.owner {
					return true // sanctioned helper: method on the owning type
				}
			}
			verb := "access to"
			if IsWrite(stack, sel) {
				verb = "write to"
			}
			pass.Reportf(sel.Pos(),
				"%s %s.%s bypasses the sanctioned helpers in internal/storage; use the %s methods (PrepareInstall/SetStatus/SetNext/...)",
				verb, g.owner.Name(), field.Name(), g.owner.Name())
			return true
		})
	}
	return nil
}
