package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// MetricDrift cross-checks the metric families registered through
// internal/telemetry against the reference tables in docs/OBSERVABILITY.md,
// in both directions:
//
//   - code → doc: every family name passed to a Registry registration
//     method (Counter, Gauge, Histogram, CounterFunc, GaugeFunc) in an
//     analyzed package must be mentioned (backticked) somewhere in the doc.
//     A metric nobody can look up is operationally invisible.
//   - doc → code: every row of a reference table whose header column is
//     "Metric" must name a family some analyzed package actually registers.
//     A stale row sends an operator hunting for a series that never appears.
//
// Family names are resolved as constants, including through one level of
// local helper closure (e.g. wal.Recover's `set := func(family, ...)`
// wrapper): a func literal bound to a local variable that forwards a
// parameter into a registration call is treated as a registration point for
// the constant arguments at its call sites.
//
// The doc → code direction needs every registering package loaded, so it
// runs only when the target set is the whole program (a `./...` run);
// narrowed pattern runs check code → doc only.
var MetricDrift = &Analyzer{
	Name:   "metricdrift",
	Doc:    "cross-checks registered telemetry metric families against docs/OBSERVABILITY.md",
	Module: true,
	Run:    runMetricDrift,
}

// metricDocPath is the metric reference page, relative to the tree that
// contains the registering packages.
const metricDocPath = "docs/OBSERVABILITY.md"

// isRegistryMethod reports whether fn is a registration method on the
// telemetry Registry (matched by receiver type name and package suffix so
// fixtures can supply their own telemetry package).
func isRegistryMethod(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	switch fn.Name() {
	case "Counter", "Gauge", "Histogram", "CounterFunc", "GaugeFunc":
	default:
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "internal/telemetry" || strings.HasSuffix(path, "/telemetry") || path == "telemetry"
}

// metricHelper is a local closure that forwards one of its parameters as a
// registration family name.
type metricHelper struct {
	famIndex int
}

func runMetricDrift(pass *Pass) error {
	registered := make(map[string]token.Pos) // family -> first registration
	var anyPkg *Package
	for _, pkg := range pass.Targets {
		if pkg.Path == "internal/telemetry" || strings.HasSuffix(pkg.Path, "/telemetry") {
			// The telemetry package itself registers nothing for real; its
			// examples would pollute the set.
			continue
		}
		if anyPkg == nil {
			anyPkg = pkg
		}
		collectRegistrations(pkg, registered)
	}
	if anyPkg == nil {
		return nil
	}
	if len(registered) == 0 {
		return nil
	}

	doc, err := pass.Prog.FindDoc(anyPkg.Dir, metricDocPath)
	if err != nil {
		// No reference page in this tree: nothing to drift against.
		return nil
	}
	mentioned := docMetricMentions(doc)
	tableRows := docMetricTableRows(doc)

	var families []string
	for f := range registered {
		families = append(families, f)
	}
	sort.Strings(families)
	for _, f := range families {
		if !mentioned[f] {
			pass.Reportf(registered[f],
				"metric family %q is registered but never mentioned in %s: add it to the metric reference (or it is operationally invisible)",
				f, metricDocPath)
		}
	}

	// Reverse direction only when the whole program is in scope.
	if len(pass.Targets) != len(pass.Prog.Packages) {
		return nil
	}
	var rows []string
	for name := range tableRows {
		rows = append(rows, name)
	}
	sort.Strings(rows)
	for _, name := range rows {
		if _, ok := registered[name]; !ok {
			pass.Reportf(tableRows[name],
				"documented metric %q is not registered by any package: stale reference-table row in %s",
				name, metricDocPath)
		}
	}
	return nil
}

// collectRegistrations records every constant family name passed to a
// Registry registration method in pkg, resolving one level of local helper
// closures.
func collectRegistrations(pkg *Package, out map[string]token.Pos) {
	record := func(name string, pos token.Pos) {
		if _, ok := out[name]; !ok {
			out[name] = pos
		}
	}
	helpers := make(map[*types.Var]metricHelper)
	for _, f := range pkg.Files {
		WithParents(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := CalleeFunc(pkg.Info, call)
			if !isRegistryMethod(fn) || len(call.Args) == 0 {
				return true
			}
			if name, ok := constString(pkg.Info, call.Args[0]); ok {
				record(name, call.Pos())
				return true
			}
			// Non-constant family: if it is a parameter of an enclosing
			// func literal bound to a local variable, the variable is a
			// registration helper and its call sites carry the names.
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if param, _ := pkg.Info.Uses[id].(*types.Var); param != nil {
					if v, idx := helperBinding(pkg.Info, stack, param); v != nil {
						helpers[v] = metricHelper{famIndex: idx}
					}
				}
			}
			return true
		})
	}
	if len(helpers) == 0 {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			v, _ := pkg.Info.Uses[id].(*types.Var)
			h, ok := helpers[v]
			if !ok || h.famIndex >= len(call.Args) {
				return true
			}
			if name, ok := constString(pkg.Info, call.Args[h.famIndex]); ok {
				record(name, call.Pos())
			}
			return true
		})
	}
}

// helperBinding checks whether param is a parameter of the innermost func
// literal on the stack and that literal is bound to a local variable
// (`set := func(...) {...}`); it returns the variable and the parameter's
// index.
func helperBinding(info *types.Info, stack []ast.Node, param *types.Var) (*types.Var, int) {
	for i := len(stack) - 1; i >= 0; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		idx := -1
		pos := 0
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				if info.Defs[name] == param {
					idx = pos
				}
				pos++
			}
		}
		if idx < 0 {
			return nil, 0 // param belongs to an outer function: stop at innermost literal
		}
		if i == 0 {
			return nil, 0
		}
		assign, ok := stack[i-1].(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || assign.Rhs[0] != lit {
			return nil, 0
		}
		lhs, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return nil, 0
		}
		if v, _ := info.Defs[lhs].(*types.Var); v != nil {
			return v, idx
		}
		if v, _ := info.Uses[lhs].(*types.Var); v != nil {
			return v, idx
		}
		return nil, 0
	}
	return nil, 0
}

// constString returns the constant string value of an expression, if any.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// metricNameRE matches a backticked metric family, optionally with a
// `{label=...}` suffix, e.g. `engine_commits_total{engine=...}`.
var metricNameRE = regexp.MustCompile("`([a-z][a-z0-9_]*)(?:\\{[^`}]*\\})?`")

// docMetricMentions returns every family name mentioned (backticked)
// anywhere in the doc.
func docMetricMentions(doc *DocFile) map[string]bool {
	mentioned := make(map[string]bool)
	for _, m := range metricNameRE.FindAllStringSubmatch(doc.Content, -1) {
		mentioned[m[1]] = true
	}
	return mentioned
}

// docMetricTableRows extracts the first-column family names from reference
// tables whose first header cell is "Metric" (name -> row position). Other
// tables (label taxonomies, configuration switches) are not metric rows.
func docMetricTableRows(doc *DocFile) map[string]token.Pos {
	rows := make(map[string]token.Pos)
	inTable := false
	for i, line := range doc.Lines {
		t := strings.TrimSpace(line)
		if !strings.HasPrefix(t, "|") {
			inTable = false
			continue
		}
		cells := strings.Split(t, "|")
		if len(cells) < 2 {
			continue
		}
		first := strings.TrimSpace(cells[1])
		if !inTable {
			inTable = first == "Metric"
			continue
		}
		if strings.HasPrefix(first, "---") || first == "" {
			continue
		}
		m := metricNameRE.FindStringSubmatch(first)
		if m == nil || !strings.HasPrefix(first, "`") {
			continue
		}
		name := m[1]
		if _, ok := rows[name]; !ok {
			col := strings.Index(line, "`"+name) + 2
			rows[name] = doc.Pos(i+1, col)
		}
	}
	return rows
}
