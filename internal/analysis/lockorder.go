package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds an interprocedural lock-acquisition graph over the
// analyzed packages and reports ordering cycles as potential deadlocks,
// extending locksdiscipline's per-function rules to whole-program order.
//
// Locks are identified at class granularity: a sync.Mutex/RWMutex struct
// field is one lock per (type, field), a package-level mutex variable is one
// lock, and the sanctioned per-record GC spin lock (TryLockGC/UnlockGC) is
// one lock per receiver type. An edge A → B is recorded when B is acquired
// — directly, or transitively through calls — while A may still be held:
// from A's acquisition to its release in the same function (a deferred
// release holds to function end). Function literals run inline except under
// `go`, whose body executes on another goroutine and establishes no order
// for the spawner.
//
// Two different instances of the same lock class are not distinguished, so
// hand-over-hand locking within one class is reported as a self-cycle; when
// the acquisition order is proven by construction (e.g. sorted key order),
// suppress the site with //lint:allow lockorder <reason>.
var LockOrder = &Analyzer{
	Name:   "lockorder",
	Doc:    "reports cycles in the interprocedural lock-acquisition graph (potential deadlocks)",
	Module: true,
	Run:    runLockOrder,
}

// lockEventKind discriminates the per-function event stream.
type lockEventKind uint8

const (
	evAcquire lockEventKind = iota
	evRelease
	evCall
)

type lockEvent struct {
	kind     lockEventKind
	pos      token.Pos
	lock     string      // evAcquire/evRelease: lock ID
	deferred bool        // evRelease: inside a defer statement
	callee   *types.Func // evCall
}

// funcLocks is one function's summary.
type funcLocks struct {
	fn     *types.Func
	events []lockEvent
	end    token.Pos // body end
}

// lockEdge is one witnessed acquisition-order edge.
type lockEdge struct {
	from, to string
	pos      token.Pos
	inFunc   string
}

func runLockOrder(pass *Pass) error {
	summaries := make(map[*types.Func]*funcLocks)
	var order []*funcLocks
	for _, pkg := range pass.Targets {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				s := collectLockEvents(pkg, fd, obj)
				summaries[obj] = s
				order = append(order, s)
			}
		}
	}

	// reach[f] = every lock f may acquire, directly or transitively.
	reach := make(map[*types.Func]map[string]bool)
	for f := range summaries {
		reach[f] = make(map[string]bool)
	}
	for changed := true; changed; {
		changed = false
		for f, s := range summaries {
			r := reach[f]
			for _, ev := range s.events {
				switch ev.kind {
				case evAcquire:
					if !r[ev.lock] {
						r[ev.lock] = true
						changed = true
					}
				case evCall:
					for l := range reach[ev.callee] {
						if !r[l] {
							r[l] = true
							changed = true
						}
					}
				}
			}
		}
	}

	// Held-region edge construction.
	edges := make(map[[2]string]lockEdge)
	addEdge := func(from, to string, pos token.Pos, in string) {
		k := [2]string{from, to}
		if _, ok := edges[k]; !ok {
			edges[k] = lockEdge{from: from, to: to, pos: pos, inFunc: in}
		}
	}
	for _, s := range order {
		for i, ev := range s.events {
			if ev.kind != evAcquire {
				continue
			}
			end := s.end
			for _, rel := range s.events[i+1:] {
				if rel.kind == evRelease && rel.lock == ev.lock && !rel.deferred {
					end = rel.pos
					break
				}
			}
			for _, inner := range s.events[i+1:] {
				if inner.pos >= end {
					break
				}
				switch inner.kind {
				case evAcquire:
					addEdge(ev.lock, inner.lock, inner.pos, s.fn.Name())
				case evCall:
					for l := range reach[inner.callee] {
						addEdge(ev.lock, l, inner.pos, s.fn.Name())
					}
				}
			}
		}
	}

	reportLockCycles(pass, edges)
	return nil
}

// reportLockCycles finds strongly connected components in the edge graph and
// reports every edge participating in a cycle (including self-loops).
func reportLockCycles(pass *Pass, edges map[[2]string]lockEdge) {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for k := range edges {
		adj[k[0]] = append(adj[k[0]], k[1])
		nodes[k[0]], nodes[k[1]] = true, true
	}
	for n := range adj {
		sort.Strings(adj[n])
	}

	// Tarjan's SCC.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, nComp := 0, 0
	var strong func(v string)
	strong = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = nComp
				if w == v {
					break
				}
			}
			nComp++
		}
	}
	var sortedNodes []string
	for n := range nodes {
		sortedNodes = append(sortedNodes, n)
	}
	sort.Strings(sortedNodes)
	for _, n := range sortedNodes {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}

	compSize := make(map[int]int)
	for _, c := range comp {
		compSize[c]++
	}
	var cyclic []lockEdge
	for k, e := range edges {
		if k[0] == k[1] {
			cyclic = append(cyclic, e) // self-loop: same class re-acquired while held
			continue
		}
		if comp[k[0]] == comp[k[1]] && compSize[comp[k[0]]] > 1 {
			cyclic = append(cyclic, e)
		}
	}
	sort.Slice(cyclic, func(i, j int) bool {
		if cyclic[i].from != cyclic[j].from {
			return cyclic[i].from < cyclic[j].from
		}
		return cyclic[i].to < cyclic[j].to
	})
	for _, e := range cyclic {
		if e.from == e.to {
			pass.Reportf(e.pos,
				"lock %s acquired in %s while an instance of the same lock class may already be held: hand-over-hand within one class deadlocks unless instance order is proven — //lint:allow lockorder <why the order is safe> if it is",
				e.from, e.inFunc)
			continue
		}
		var members []string
		for n, c := range comp {
			if c == comp[e.from] {
				members = append(members, n)
			}
		}
		sort.Strings(members)
		pass.Reportf(e.pos,
			"lock-order cycle: %s acquired in %s while %s is held; cycle members: %s — pick one global order or break the nesting",
			e.to, e.inFunc, e.from, strings.Join(members, " ↔ "))
	}
}

// collectLockEvents walks one function body, recording acquisitions,
// releases, and in-tree calls in source order. Function-literal bodies are
// included except when the literal (or call) is spawned with `go`.
func collectLockEvents(pkg *Package, fd *ast.FuncDecl, obj *types.Func) *funcLocks {
	s := &funcLocks{fn: obj, end: fd.Body.End()}
	info := pkg.Info
	WithParents(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false // runs on another goroutine: no order for the spawner
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := CalleeFunc(info, call)
		if fn == nil {
			return true
		}
		deferred := underDefer(stack)
		switch {
		case isMutexLock(fn):
			if id, ok := lockIDForCall(pkg, obj, call); ok {
				s.events = append(s.events, lockEvent{kind: evAcquire, pos: call.Pos(), lock: id})
			}
		case isMutexRelease(fn):
			if id, ok := lockIDForCall(pkg, obj, call); ok {
				s.events = append(s.events, lockEvent{kind: evRelease, pos: call.Pos(), lock: id, deferred: deferred})
			}
		case fn.Name() == "TryLockGC":
			if id, ok := gcLockID(fn); ok {
				s.events = append(s.events, lockEvent{kind: evAcquire, pos: call.Pos(), lock: id})
			}
		case fn.Name() == "UnlockGC":
			if id, ok := gcLockID(fn); ok {
				s.events = append(s.events, lockEvent{kind: evRelease, pos: call.Pos(), lock: id, deferred: deferred})
			}
		default:
			s.events = append(s.events, lockEvent{kind: evCall, pos: call.Pos(), callee: fn})
		}
		return true
	})
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].pos < s.events[j].pos })
	return s
}

func underDefer(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// isMutexRelease reports whether fn is sync.Mutex.Unlock / RWMutex.Unlock /
// RWMutex.RUnlock.
func isMutexRelease(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	return fn.Name() == "Unlock" || fn.Name() == "RUnlock"
}

// lockIDForCall identifies the lock of a mutex method call by its receiver
// expression: a struct field is (owner type, field); a package-level
// variable is (package, var); a local variable is (package, func, var).
func lockIDForCall(pkg *Package, enclosing *types.Func, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if field := FieldOf(pkg.Info, recv); field != nil {
			if owner := OwnerStruct(field); owner != nil {
				return lockName(owner.Pkg(), owner.Name()+"."+field.Name()), true
			}
			if field.Pkg() != nil {
				return lockName(field.Pkg(), field.Name()), true
			}
		}
		return "", false
	case *ast.Ident:
		obj, _ := pkg.Info.Uses[recv].(*types.Var)
		if obj == nil || obj.Pkg() == nil {
			return "", false
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return lockName(obj.Pkg(), obj.Name()), true
		}
		return lockName(obj.Pkg(), enclosing.Name()+"."+obj.Name()), true
	}
	return "", false
}

// gcLockID identifies the per-record GC spin lock by the receiver type of
// its sanctioned helpers.
func gcLockID(fn *types.Func) (string, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	return lockName(named.Obj().Pkg(), named.Obj().Name()+".gcLock"), true
}

// lockName renders a display ID: the package path's last element plus the
// qualified member, e.g. "wal.logger.mu".
func lockName(pkg *types.Package, member string) string {
	path := pkg.Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return fmt.Sprintf("%s.%s", path, member)
}
