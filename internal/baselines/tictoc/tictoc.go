// Package tictoc implements TicToc (Yu et al., SIGMOD 2016): OCC-1V-in-place
// with data-driven timestamp management (§4.1). Each record carries a write
// timestamp and a read timestamp; a transaction computes its commit
// timestamp from the timestamps it observed, extending read timestamps when
// possible instead of aborting. Like Silo it pays the extra-read cost of
// consistent record copies (§2.1), but its flexible ordering commits many
// schedules Silo would abort.
package tictoc

import (
	"runtime"
	"sort"

	"cicada/internal/baselines/common"
	"cicada/internal/engine"
)

const lockBit = uint64(1) << 63

// DB is a TicToc database.
type DB struct {
	cfg     engine.Config
	tables  []*common.Store
	indexes *common.IndexSet
	workers []*worker
}

// New creates a TicToc DB.
func New(cfg engine.Config) engine.DB {
	db := &DB{cfg: cfg, indexes: common.NewIndexSet(cfg)}
	db.workers = make([]*worker, cfg.Workers)
	for i := range db.workers {
		w := &worker{db: db}
		w.InitWorker(i)
		w.tx.db = db
		w.tx.w = w
		w.tx.own = make(map[uint64]int, 32)
		db.workers[i] = w
	}
	common.RegisterMetrics(cfg.Metrics, db.Name(), db.bases())
	return db
}

// Name implements engine.DB.
func (db *DB) Name() string { return "TicToc" }

// Workers implements engine.DB.
func (db *DB) Workers() int { return db.cfg.Workers }

// CreateTable implements engine.DB.
func (db *DB) CreateTable(name string) engine.TableID {
	db.tables = append(db.tables, common.NewStore())
	return engine.TableID(len(db.tables) - 1)
}

// CreateHashIndex implements engine.DB.
func (db *DB) CreateHashIndex(name string, buckets int) engine.IndexID {
	return db.indexes.CreateHash(buckets)
}

// CreateOrderedIndex implements engine.DB.
func (db *DB) CreateOrderedIndex(name string) engine.IndexID {
	return db.indexes.CreateOrdered()
}

// Worker implements engine.DB.
func (db *DB) Worker(id int) engine.Worker { return db.workers[id] }

// Stats implements engine.DB.
func (db *DB) Stats() engine.Stats { return common.StatsOf(db.bases()) }

// bases collects the workers' shared bookkeeping for aggregation.
func (db *DB) bases() []*common.WorkerBase {
	bases := make([]*common.WorkerBase, len(db.workers))
	for i, w := range db.workers {
		bases[i] = &w.WorkerBase
	}
	return bases
}

// CommitsLive implements engine.DB.
func (db *DB) CommitsLive() uint64 {
	var n uint64
	for _, w := range db.workers {
		n += w.CommitsLive()
	}
	return n
}

type worker struct {
	common.WorkerBase
	db *DB
	tx tx
}

func (w *worker) Run(fn func(tx engine.Tx) error) error {
	return w.RunLoop(func() error {
		t := &w.tx
		t.reset()
		if err := fn(t); err != nil {
			t.abort()
			return err
		}
		return t.commit()
	})
}

// RunRO implements engine.Worker; TicToc has no snapshots.
func (w *worker) RunRO(fn func(tx engine.Tx) error) error { return w.Run(fn) }

func (w *worker) Idle() { runtime.Gosched() }

type readEnt struct {
	rec *common.Record
	wts uint64
	rts uint64
}

type writeEnt struct {
	tbl    engine.TableID
	rid    engine.RecordID
	rec    *common.Record
	buf    []byte
	del    bool
	insert bool
}

type tx struct {
	db *DB
	w  *worker
	common.TxIndex
	reads  []readEnt
	writes []writeEnt
	own    map[uint64]int
	arena  []byte
}

func ownKey(t engine.TableID, r engine.RecordID) uint64 {
	return uint64(t)<<48 | uint64(r)&0xffffffffffff
}

func (t *tx) reset() {
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
	t.arena = t.arena[:0]
	clear(t.own)
	t.TxIndex.Reset(t.db.indexes)
}

func (t *tx) alloc(n int) []byte {
	if cap(t.arena)-len(t.arena) < n {
		t.arena = make([]byte, 0, 1<<16)
	}
	b := t.arena[len(t.arena) : len(t.arena)+n]
	t.arena = t.arena[:len(t.arena)+n]
	return b
}

// consistentRead copies the record data and captures a coherent (wts, rts)
// pair: read wts, read rts, copy data, re-read wts.
func (t *tx) consistentRead(rec *common.Record) (wts, rts uint64, data []byte, ok bool) {
	for {
		w1 := rec.Word1.Load()
		if w1&lockBit != 0 {
			runtime.Gosched()
			continue
		}
		r := rec.Word2.Load()
		d := rec.Data()
		var buf []byte
		if d != nil {
			buf = t.alloc(len(d))
			copy(buf, d)
		}
		w2 := rec.Word1.Load()
		if w1 == w2 {
			return w1, r, buf, d != nil
		}
	}
}

func (t *tx) Read(tb engine.TableID, r engine.RecordID) ([]byte, error) {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		w := &t.writes[i]
		if w.del {
			return nil, engine.ErrNotFound
		}
		return w.buf, nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return nil, engine.ErrNotFound
	}
	wts, rts, data, ok := t.consistentRead(rec)
	t.reads = append(t.reads, readEnt{rec: rec, wts: wts, rts: rts})
	if !ok {
		return nil, engine.ErrNotFound
	}
	return data, nil
}

func (t *tx) Update(tb engine.TableID, r engine.RecordID, size int) ([]byte, error) {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		w := &t.writes[i]
		if w.del {
			return nil, engine.ErrNotFound
		}
		if size >= 0 && size != len(w.buf) {
			nb := t.alloc(size)
			copy(nb, w.buf)
			w.buf = nb
		}
		return w.buf, nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return nil, engine.ErrNotFound
	}
	wts, rts, data, ok := t.consistentRead(rec)
	t.reads = append(t.reads, readEnt{rec: rec, wts: wts, rts: rts})
	if !ok {
		return nil, engine.ErrNotFound
	}
	if size < 0 {
		size = len(data)
	}
	buf := t.alloc(size)
	n := copy(buf, data)
	for ; n < size; n++ {
		buf[n] = 0
	}
	t.stage(writeEnt{tbl: tb, rid: r, rec: rec, buf: buf})
	return buf, nil
}

func (t *tx) Write(tb engine.TableID, r engine.RecordID, size int) ([]byte, error) {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		w := &t.writes[i]
		w.del = false
		if size != len(w.buf) {
			w.buf = t.alloc(size)
		}
		return w.buf, nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return nil, engine.ErrNotFound
	}
	buf := t.alloc(size)
	t.stage(writeEnt{tbl: tb, rid: r, rec: rec, buf: buf})
	return buf, nil
}

func (t *tx) Insert(tb engine.TableID, size int) (engine.RecordID, []byte, error) {
	store := t.db.tables[tb]
	rid := store.Alloc()
	rec := store.Get(rid)
	if t.db.indexes.Eager() {
		rec.Word1.Store(lockBit)
	}
	buf := t.alloc(size)
	t.stage(writeEnt{tbl: tb, rid: rid, rec: rec, buf: buf, insert: true})
	return rid, buf, nil
}

func (t *tx) Delete(tb engine.TableID, r engine.RecordID) error {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		t.writes[i].del = true
		return nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return engine.ErrNotFound
	}
	wts, rts, _, ok := t.consistentRead(rec)
	t.reads = append(t.reads, readEnt{rec: rec, wts: wts, rts: rts})
	if !ok {
		return engine.ErrNotFound
	}
	t.stage(writeEnt{tbl: tb, rid: r, rec: rec, del: true})
	return nil
}

func (t *tx) stage(w writeEnt) {
	t.writes = append(t.writes, w)
	t.own[ownKey(w.tbl, w.rid)] = len(t.writes) - 1
}

func (t *tx) IndexGet(i engine.IndexID, key uint64) (engine.RecordID, error) {
	return t.TxIndex.Get(i, key)
}
func (t *tx) IndexScan(i engine.IndexID, lo, hi uint64, limit int, fn func(uint64, engine.RecordID) bool) error {
	return t.TxIndex.Scan(i, lo, hi, limit, fn)
}
func (t *tx) IndexInsert(i engine.IndexID, key uint64, r engine.RecordID) error {
	return t.TxIndex.Insert(i, key, r)
}
func (t *tx) IndexDelete(i engine.IndexID, key uint64, r engine.RecordID) error {
	return t.TxIndex.Delete(i, key, r)
}

// commit runs TicToc's validation: lock the write set, derive the commit
// timestamp from observed read/write timestamps, validate the read set with
// read-timestamp extension, then install with wts = rts = commit_ts.
func (t *tx) commit() error {
	sort.Slice(t.writes, func(a, b int) bool {
		wa, wb := &t.writes[a], &t.writes[b]
		if wa.tbl != wb.tbl {
			return wa.tbl < wb.tbl
		}
		return wa.rid < wb.rid
	})
	locked := 0
	for i := range t.writes {
		w := &t.writes[i]
		if w.insert && t.db.indexes.Eager() {
			locked = i + 1
			continue
		}
		for {
			cur := w.rec.Word1.Load()
			if cur&lockBit != 0 {
				runtime.Gosched()
				continue
			}
			if w.rec.Word1.CompareAndSwap(cur, cur|lockBit) {
				break
			}
		}
		locked = i + 1
	}
	// Commit timestamp: after the reads' wts and after every written
	// record's current rts.
	commitTS := uint64(0)
	for i := range t.reads {
		if w := t.reads[i].wts; w >= commitTS {
			commitTS = w
		}
	}
	for i := range t.writes {
		if r := t.writes[i].rec.Word2.Load(); r+1 > commitTS {
			commitTS = r + 1
		}
	}
	// Validate the read set, extending read timestamps when the version is
	// unchanged (TicToc's key mechanism).
	okAll := t.TxIndex.Validate()
	if okAll {
		for i := range t.reads {
			r := &t.reads[i]
			if r.rts >= commitTS {
				continue
			}
			cur := r.rec.Word1.Load()
			if cur&^lockBit != r.wts&^lockBit {
				okAll = false
				break
			}
			if cur&lockBit != 0 && !t.ownsLocked(r.rec) {
				okAll = false
				break
			}
			// Extend the read timestamp to commitTS.
			for {
				rts := r.rec.Word2.Load()
				if rts >= commitTS || r.rec.Word2.CompareAndSwap(rts, commitTS) {
					break
				}
			}
		}
	}
	if !okAll {
		t.unlockWrites(locked)
		t.abort()
		return engine.ErrAborted
	}
	for i := range t.writes {
		w := &t.writes[i]
		if w.del {
			w.rec.SetData(nil)
		} else if d := w.rec.Data(); d != nil && len(d) == len(w.buf) {
			copy(d, w.buf)
		} else {
			nb := make([]byte, len(w.buf))
			copy(nb, w.buf)
			w.rec.SetData(nb)
		}
		w.rec.Word2.Store(commitTS)
		w.rec.Word1.Store(commitTS) // clears the lock bit
	}
	t.TxIndex.Committed()
	return nil
}

func (t *tx) ownsLocked(rec *common.Record) bool {
	for i := range t.writes {
		if t.writes[i].rec == rec {
			return true
		}
	}
	return false
}

func (t *tx) unlockWrites(locked int) {
	for i := 0; i < locked; i++ {
		w := &t.writes[i]
		if w.insert && t.db.indexes.Eager() {
			continue
		}
		cur := w.rec.Word1.Load()
		w.rec.Word1.Store(cur &^ lockBit)
	}
}

func (t *tx) abort() {
	for i := range t.writes {
		w := &t.writes[i]
		if w.insert && t.db.indexes.Eager() {
			w.rec.SetData(nil)
			w.rec.Word1.Store(0)
		}
	}
	t.TxIndex.Aborted()
}
