// Package silo implements the Silo OCC-1V-in-place scheme (Tu et al., SOSP
// 2013) as reimplemented in DBx1000 — the paper's "Silo′" baseline (§4.1):
// per-record TID words with an embedded lock bit, consistent record copies
// during the read phase (the "extra reads" of OCC-1V-in-place, §2.1),
// write-set locking in canonical order, read-set TID validation, and
// DBx1000's randomized backoff. Record data and concurrency control metadata
// are collocated per record, matching the paper's optimization (2).
package silo

import (
	"runtime"
	"sort"

	"cicada/internal/baselines/common"
	"cicada/internal/engine"
)

const lockBit = uint64(1) << 63

// DB is a Silo database.
type DB struct {
	cfg     engine.Config
	tables  []*common.Store
	indexes *common.IndexSet
	workers []*worker
}

// New creates a Silo DB.
func New(cfg engine.Config) engine.DB {
	db := &DB{cfg: cfg, indexes: common.NewIndexSet(cfg)}
	db.workers = make([]*worker, cfg.Workers)
	for i := range db.workers {
		w := &worker{db: db}
		w.InitWorker(i)
		w.tx.db = db
		w.tx.w = w
		w.tx.own = make(map[uint64]int, 32)
		db.workers[i] = w
	}
	common.RegisterMetrics(cfg.Metrics, db.Name(), db.bases())
	return db
}

// Name implements engine.DB.
func (db *DB) Name() string { return "Silo'" }

// Workers implements engine.DB.
func (db *DB) Workers() int { return db.cfg.Workers }

// CreateTable implements engine.DB.
func (db *DB) CreateTable(name string) engine.TableID {
	db.tables = append(db.tables, common.NewStore())
	return engine.TableID(len(db.tables) - 1)
}

// CreateHashIndex implements engine.DB.
func (db *DB) CreateHashIndex(name string, buckets int) engine.IndexID {
	return db.indexes.CreateHash(buckets)
}

// CreateOrderedIndex implements engine.DB.
func (db *DB) CreateOrderedIndex(name string) engine.IndexID {
	return db.indexes.CreateOrdered()
}

// Worker implements engine.DB.
func (db *DB) Worker(id int) engine.Worker { return db.workers[id] }

// Stats implements engine.DB.
func (db *DB) Stats() engine.Stats { return common.StatsOf(db.bases()) }

// bases collects the workers' shared bookkeeping for aggregation.
func (db *DB) bases() []*common.WorkerBase {
	bases := make([]*common.WorkerBase, len(db.workers))
	for i, w := range db.workers {
		bases[i] = &w.WorkerBase
	}
	return bases
}

// CommitsLive implements engine.DB.
func (db *DB) CommitsLive() uint64 {
	var n uint64
	for _, w := range db.workers {
		n += w.CommitsLive()
	}
	return n
}

type worker struct {
	common.WorkerBase
	db      *DB
	tx      tx
	lastTID uint64
}

func (w *worker) Run(fn func(tx engine.Tx) error) error {
	return w.RunLoop(func() error {
		t := &w.tx
		t.reset()
		if err := fn(t); err != nil {
			t.abort()
			return err
		}
		return t.commit()
	})
}

// RunRO implements engine.Worker. DBx1000's Silo′ has no snapshot support,
// so read-only transactions run the normal OCC protocol (§4.2 notes Cicada
// provides low-latency read-only transactions at almost no cost; Silo′
// cannot).
func (w *worker) RunRO(fn func(tx engine.Tx) error) error { return w.Run(fn) }

func (w *worker) Idle() { runtime.Gosched() }

type readEnt struct {
	rec *common.Record
	tid uint64
}

type writeEnt struct {
	tbl    engine.TableID
	rid    engine.RecordID
	rec    *common.Record
	buf    []byte
	del    bool
	insert bool
	rdep   bool // also validated as a read (Update)
}

type tx struct {
	db *DB
	w  *worker
	common.TxIndex
	reads  []readEnt
	writes []writeEnt
	own    map[uint64]int // (tbl,rid) → writes index
	arena  []byte
}

func ownKey(t engine.TableID, r engine.RecordID) uint64 {
	return uint64(t)<<48 | uint64(r)&0xffffffffffff
}

func (t *tx) reset() {
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
	t.arena = t.arena[:0]
	clear(t.own)
	t.TxIndex.Reset(t.db.indexes)
}

func (t *tx) alloc(n int) []byte {
	if cap(t.arena)-len(t.arena) < n {
		t.arena = make([]byte, 0, 1<<16)
	}
	b := t.arena[len(t.arena) : len(t.arena)+n]
	t.arena = t.arena[:len(t.arena)+n]
	return b
}

// consistentRead copies the record data under a TID-stable window: read TID,
// copy, re-read TID — the extra read of OCC-1V-in-place (§2.1). It spins
// while the record is locked by a writer in its write phase.
func (t *tx) consistentRead(rec *common.Record) (tid uint64, data []byte, ok bool) {
	for {
		t1 := rec.Word1.Load()
		if t1&lockBit != 0 {
			runtime.Gosched()
			continue
		}
		d := rec.Data()
		var buf []byte
		if d != nil {
			buf = t.alloc(len(d))
			copy(buf, d)
		}
		t2 := rec.Word1.Load()
		if t1 == t2 {
			return t1, buf, d != nil
		}
	}
}

func (t *tx) Read(tb engine.TableID, r engine.RecordID) ([]byte, error) {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		w := &t.writes[i]
		if w.del {
			return nil, engine.ErrNotFound
		}
		return w.buf, nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return nil, engine.ErrNotFound
	}
	tid, data, ok := t.consistentRead(rec)
	t.reads = append(t.reads, readEnt{rec: rec, tid: tid})
	if !ok {
		return nil, engine.ErrNotFound
	}
	return data, nil
}

func (t *tx) Update(tb engine.TableID, r engine.RecordID, size int) ([]byte, error) {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		w := &t.writes[i]
		if w.del {
			return nil, engine.ErrNotFound
		}
		if size >= 0 && size != len(w.buf) {
			nb := t.alloc(size)
			copy(nb, w.buf)
			w.buf = nb
		}
		return w.buf, nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return nil, engine.ErrNotFound
	}
	tid, data, ok := t.consistentRead(rec)
	t.reads = append(t.reads, readEnt{rec: rec, tid: tid})
	if !ok {
		return nil, engine.ErrNotFound
	}
	if size < 0 {
		size = len(data)
	}
	buf := t.alloc(size)
	n := copy(buf, data)
	for ; n < size; n++ {
		buf[n] = 0
	}
	t.stage(writeEnt{tbl: tb, rid: r, rec: rec, buf: buf, rdep: true})
	return buf, nil
}

func (t *tx) Write(tb engine.TableID, r engine.RecordID, size int) ([]byte, error) {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		w := &t.writes[i]
		w.del = false
		if size != len(w.buf) {
			w.buf = t.alloc(size)
		}
		return w.buf, nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return nil, engine.ErrNotFound
	}
	buf := t.alloc(size)
	t.stage(writeEnt{tbl: tb, rid: r, rec: rec, buf: buf})
	return buf, nil
}

func (t *tx) Insert(tb engine.TableID, size int) (engine.RecordID, []byte, error) {
	store := t.db.tables[tb]
	rid := store.Alloc()
	rec := store.Get(rid)
	if t.db.indexes.Eager() {
		// Eager discipline: the record exists immediately, locked until the
		// transaction finishes, so concurrent readers that find it through
		// an eagerly updated index block on it (§2.1 index contention).
		rec.Word1.Store(lockBit)
	}
	buf := t.alloc(size)
	t.stage(writeEnt{tbl: tb, rid: rid, rec: rec, buf: buf, insert: true})
	return rid, buf, nil
}

func (t *tx) Delete(tb engine.TableID, r engine.RecordID) error {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		t.writes[i].del = true
		return nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return engine.ErrNotFound
	}
	tid, _, ok := t.consistentRead(rec)
	t.reads = append(t.reads, readEnt{rec: rec, tid: tid})
	if !ok {
		return engine.ErrNotFound
	}
	t.stage(writeEnt{tbl: tb, rid: r, rec: rec, del: true, rdep: true})
	return nil
}

func (t *tx) stage(w writeEnt) {
	t.writes = append(t.writes, w)
	t.own[ownKey(w.tbl, w.rid)] = len(t.writes) - 1
}

func (t *tx) IndexGet(i engine.IndexID, key uint64) (engine.RecordID, error) {
	return t.TxIndex.Get(i, key)
}
func (t *tx) IndexScan(i engine.IndexID, lo, hi uint64, limit int, fn func(uint64, engine.RecordID) bool) error {
	return t.TxIndex.Scan(i, lo, hi, limit, fn)
}
func (t *tx) IndexInsert(i engine.IndexID, key uint64, r engine.RecordID) error {
	return t.TxIndex.Insert(i, key, r)
}
func (t *tx) IndexDelete(i engine.IndexID, key uint64, r engine.RecordID) error {
	return t.TxIndex.Delete(i, key, r)
}

// commit runs Silo's validation: lock the write set in canonical order,
// verify the read set's TIDs, compute the commit TID, install in place, and
// unlock with the new TID.
func (t *tx) commit() error {
	// Phase 1: lock write set in global (table, record) order — Silo must
	// fully sort to avoid deadlock (§3.5 contrasts this with Cicada's
	// contention-ordered partial sort).
	sort.Slice(t.writes, func(a, b int) bool {
		wa, wb := &t.writes[a], &t.writes[b]
		if wa.tbl != wb.tbl {
			return wa.tbl < wb.tbl
		}
		return wa.rid < wb.rid
	})
	locked := 0
	for i := range t.writes {
		w := &t.writes[i]
		if w.insert && t.db.indexes.Eager() {
			continue // already locked since creation
		}
		for {
			cur := w.rec.Word1.Load()
			if cur&lockBit != 0 {
				// Silo waits on write locks (ordering prevents deadlock);
				// yield so the holder can finish on few cores.
				runtime.Gosched()
				continue
			}
			if w.rec.Word1.CompareAndSwap(cur, cur|lockBit) {
				break
			}
		}
		locked = i + 1
	}
	// Phase 2: validate read set and index node stamps.
	maxTID := t.w.lastTID
	okAll := t.TxIndex.Validate()
	if okAll {
		for _, r := range t.reads {
			cur := r.rec.Word1.Load()
			if cur&lockBit != 0 && !t.ownsLocked(r.rec) {
				okAll = false
				break
			}
			if cur&^lockBit != r.tid&^lockBit {
				okAll = false
				break
			}
			if tid := r.tid &^ lockBit; tid > maxTID {
				maxTID = tid
			}
		}
	}
	if !okAll {
		t.unlockWrites(locked, 0)
		t.abort()
		return engine.ErrAborted
	}
	for i := range t.writes {
		if tid := t.writes[i].rec.Word1.Load() &^ lockBit; tid > maxTID {
			maxTID = tid
		}
	}
	commitTID := maxTID + 1
	t.w.lastTID = commitTID
	// Phase 3: install in place and unlock with the commit TID.
	for i := range t.writes {
		w := &t.writes[i]
		if w.del {
			w.rec.SetData(nil)
		} else {
			// In-place update: overwrite the existing buffer when sizes
			// match, else swap the data pointer.
			if d := w.rec.Data(); d != nil && len(d) == len(w.buf) {
				copy(d, w.buf)
			} else {
				nb := make([]byte, len(w.buf))
				copy(nb, w.buf)
				w.rec.SetData(nb)
			}
		}
		w.rec.Word1.Store(commitTID)
	}
	t.TxIndex.Committed()
	return nil
}

func (t *tx) ownsLocked(rec *common.Record) bool {
	for i := range t.writes {
		if t.writes[i].rec == rec {
			return true
		}
	}
	return false
}

// unlockWrites releases locks acquired during phase 1 without changing TIDs.
func (t *tx) unlockWrites(locked int, _ uint64) {
	for i := 0; i < locked; i++ {
		w := &t.writes[i]
		if w.insert && t.db.indexes.Eager() {
			continue // released by abort/commit of the insert itself
		}
		cur := w.rec.Word1.Load()
		w.rec.Word1.Store(cur &^ lockBit)
	}
}

// abort rolls back: eager inserts are cleared and unlocked so blocked
// readers observe an absent record, and eager index updates are undone.
func (t *tx) abort() {
	for i := range t.writes {
		w := &t.writes[i]
		if w.insert && t.db.indexes.Eager() {
			w.rec.SetData(nil)
			w.rec.Word1.Store(t.w.lastTID + 1)
		}
	}
	t.TxIndex.Aborted()
}
