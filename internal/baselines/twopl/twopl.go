// Package twopl implements two-phase locking with the no-wait deadlock
// prevention policy (§4.1): per-record reader/writer lock words, immediate
// abort on any lock conflict, single-version storage with in-place updates
// at commit, and lock release after the outcome (strict 2PL).
package twopl

import (
	"runtime"

	"cicada/internal/baselines/common"
	"cicada/internal/engine"
)

// Word1 lock encoding: bit 63 = writer, low bits = reader count.
const writerBit = uint64(1) << 63

// DB is a 2PL no-wait database.
type DB struct {
	cfg     engine.Config
	tables  []*common.Store
	indexes *common.IndexSet
	workers []*worker
}

// New creates a 2PL no-wait DB.
func New(cfg engine.Config) engine.DB {
	db := &DB{cfg: cfg, indexes: common.NewIndexSet(cfg)}
	db.workers = make([]*worker, cfg.Workers)
	for i := range db.workers {
		w := &worker{db: db}
		w.InitWorker(i)
		w.tx.db = db
		w.tx.own = make(map[uint64]int, 32)
		db.workers[i] = w
	}
	common.RegisterMetrics(cfg.Metrics, db.Name(), db.bases())
	return db
}

// Name implements engine.DB.
func (db *DB) Name() string { return "2PL-NoWait" }

// Workers implements engine.DB.
func (db *DB) Workers() int { return db.cfg.Workers }

// CreateTable implements engine.DB.
func (db *DB) CreateTable(name string) engine.TableID {
	db.tables = append(db.tables, common.NewStore())
	return engine.TableID(len(db.tables) - 1)
}

// CreateHashIndex implements engine.DB.
func (db *DB) CreateHashIndex(name string, buckets int) engine.IndexID {
	return db.indexes.CreateHash(buckets)
}

// CreateOrderedIndex implements engine.DB.
func (db *DB) CreateOrderedIndex(name string) engine.IndexID {
	return db.indexes.CreateOrdered()
}

// Worker implements engine.DB.
func (db *DB) Worker(id int) engine.Worker { return db.workers[id] }

// Stats implements engine.DB.
func (db *DB) Stats() engine.Stats { return common.StatsOf(db.bases()) }

// bases collects the workers' shared bookkeeping for aggregation.
func (db *DB) bases() []*common.WorkerBase {
	bases := make([]*common.WorkerBase, len(db.workers))
	for i, w := range db.workers {
		bases[i] = &w.WorkerBase
	}
	return bases
}

// CommitsLive implements engine.DB.
func (db *DB) CommitsLive() uint64 {
	var n uint64
	for _, w := range db.workers {
		n += w.CommitsLive()
	}
	return n
}

type worker struct {
	common.WorkerBase
	db *DB
	tx tx
}

func (w *worker) Run(fn func(tx engine.Tx) error) error {
	return w.RunLoop(func() error {
		t := &w.tx
		t.reset()
		if err := fn(t); err != nil {
			t.finish(false)
			return err
		}
		return t.commit()
	})
}

// RunRO implements engine.Worker; 2PL has no snapshots.
func (w *worker) RunRO(fn func(tx engine.Tx) error) error { return w.Run(fn) }

func (w *worker) Idle() { runtime.Gosched() }

type lockMode uint8

const (
	lockNone lockMode = iota
	lockShared
	lockExclusive
)

type entry struct {
	tbl    engine.TableID
	rid    engine.RecordID
	rec    *common.Record
	mode   lockMode
	buf    []byte // staged write (nil for pure reads)
	write  bool
	del    bool
	insert bool
}

type tx struct {
	db *DB
	common.TxIndex
	entries []entry
	own     map[uint64]int
	arena   []byte
}

func ownKey(t engine.TableID, r engine.RecordID) uint64 {
	return uint64(t)<<48 | uint64(r)&0xffffffffffff
}

func (t *tx) reset() {
	t.entries = t.entries[:0]
	t.arena = t.arena[:0]
	clear(t.own)
	t.TxIndex.Reset(t.db.indexes)
}

func (t *tx) alloc(n int) []byte {
	if cap(t.arena)-len(t.arena) < n {
		t.arena = make([]byte, 0, 1<<16)
	}
	b := t.arena[len(t.arena) : len(t.arena)+n]
	t.arena = t.arena[:len(t.arena)+n]
	return b
}

// lockShared acquires a read lock with no-wait semantics.
func acquireShared(rec *common.Record) bool {
	for {
		cur := rec.Word1.Load()
		if cur&writerBit != 0 {
			return false
		}
		if rec.Word1.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// acquireExclusive acquires a write lock with no-wait semantics. held is
// the caller's current mode on this record (for upgrades).
func acquireExclusive(rec *common.Record, held lockMode) bool {
	for {
		cur := rec.Word1.Load()
		switch held {
		case lockShared:
			// Upgrade: succeeds only if we are the sole reader.
			if cur != 1 {
				return false
			}
			if rec.Word1.CompareAndSwap(1, writerBit) {
				return true
			}
		default:
			if cur != 0 {
				return false
			}
			if rec.Word1.CompareAndSwap(0, writerBit) {
				return true
			}
		}
	}
}

func release(rec *common.Record, mode lockMode) {
	switch mode {
	case lockShared:
		rec.Word1.Add(^uint64(0)) // decrement reader count
	case lockExclusive:
		rec.Word1.Store(0)
	}
}

func (t *tx) find(tb engine.TableID, r engine.RecordID) *entry {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		return &t.entries[i]
	}
	return nil
}

func (t *tx) add(e entry) *entry {
	t.entries = append(t.entries, e)
	t.own[ownKey(e.tbl, e.rid)] = len(t.entries) - 1
	return &t.entries[len(t.entries)-1]
}

func (t *tx) Read(tb engine.TableID, r engine.RecordID) ([]byte, error) {
	if e := t.find(tb, r); e != nil {
		if e.del {
			return nil, engine.ErrNotFound
		}
		if e.write {
			return e.buf, nil
		}
		d := e.rec.Data()
		if d == nil {
			return nil, engine.ErrNotFound
		}
		return d, nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return nil, engine.ErrNotFound
	}
	if !acquireShared(rec) {
		return nil, engine.ErrAborted // no-wait
	}
	t.add(entry{tbl: tb, rid: r, rec: rec, mode: lockShared})
	d := rec.Data()
	if d == nil {
		return nil, engine.ErrNotFound
	}
	return d, nil
}

func (t *tx) writeLocked(tb engine.TableID, r engine.RecordID) (*entry, error) {
	if e := t.find(tb, r); e != nil {
		if e.mode != lockExclusive {
			if !acquireExclusive(e.rec, e.mode) {
				return nil, engine.ErrAborted
			}
			e.mode = lockExclusive
		}
		return e, nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return nil, engine.ErrNotFound
	}
	if !acquireExclusive(rec, lockNone) {
		return nil, engine.ErrAborted
	}
	return t.add(entry{tbl: tb, rid: r, rec: rec, mode: lockExclusive}), nil
}

func (t *tx) Update(tb engine.TableID, r engine.RecordID, size int) ([]byte, error) {
	e, err := t.writeLocked(tb, r)
	if err != nil {
		return nil, err
	}
	if e.del {
		return nil, engine.ErrNotFound
	}
	if e.write {
		if size >= 0 && size != len(e.buf) {
			nb := t.alloc(size)
			copy(nb, e.buf)
			e.buf = nb
		}
		return e.buf, nil
	}
	d := e.rec.Data()
	if d == nil {
		return nil, engine.ErrNotFound
	}
	if size < 0 {
		size = len(d)
	}
	buf := t.alloc(size)
	n := copy(buf, d)
	for ; n < size; n++ {
		buf[n] = 0
	}
	e.buf = buf
	e.write = true
	return buf, nil
}

func (t *tx) Write(tb engine.TableID, r engine.RecordID, size int) ([]byte, error) {
	e, err := t.writeLocked(tb, r)
	if err != nil {
		return nil, err
	}
	e.buf = t.alloc(size)
	e.write = true
	e.del = false
	return e.buf, nil
}

func (t *tx) Insert(tb engine.TableID, size int) (engine.RecordID, []byte, error) {
	store := t.db.tables[tb]
	rid := store.Alloc()
	rec := store.Get(rid)
	rec.Word1.Store(writerBit) // born exclusively locked
	e := t.add(entry{tbl: tb, rid: rid, rec: rec, mode: lockExclusive, write: true, insert: true})
	e.buf = t.alloc(size)
	return rid, e.buf, nil
}

func (t *tx) Delete(tb engine.TableID, r engine.RecordID) error {
	e, err := t.writeLocked(tb, r)
	if err != nil {
		return err
	}
	if !e.insert && e.rec.Data() == nil && !e.write {
		return engine.ErrNotFound
	}
	e.del = true
	e.write = true
	return nil
}

func (t *tx) IndexGet(i engine.IndexID, key uint64) (engine.RecordID, error) {
	return t.TxIndex.Get(i, key)
}
func (t *tx) IndexScan(i engine.IndexID, lo, hi uint64, limit int, fn func(uint64, engine.RecordID) bool) error {
	return t.TxIndex.Scan(i, lo, hi, limit, fn)
}
func (t *tx) IndexInsert(i engine.IndexID, key uint64, r engine.RecordID) error {
	return t.TxIndex.Insert(i, key, r)
}
func (t *tx) IndexDelete(i engine.IndexID, key uint64, r engine.RecordID) error {
	return t.TxIndex.Delete(i, key, r)
}

// commit validates index node stamps (ported phantom avoidance), installs
// staged writes in place, and releases all locks.
func (t *tx) commit() error {
	if !t.TxIndex.Validate() {
		t.finish(false)
		return engine.ErrAborted
	}
	t.finish(true)
	return nil
}

func (t *tx) finish(commit bool) {
	for i := range t.entries {
		e := &t.entries[i]
		if commit && e.write {
			if e.del {
				e.rec.SetData(nil)
			} else if d := e.rec.Data(); d != nil && len(d) == len(e.buf) {
				copy(d, e.buf)
			} else {
				nb := make([]byte, len(e.buf))
				copy(nb, e.buf)
				e.rec.SetData(nb)
			}
		}
		if !commit && e.insert {
			e.rec.SetData(nil)
		}
		release(e.rec, e.mode)
	}
	if commit {
		t.TxIndex.Committed()
	} else {
		t.TxIndex.Aborted()
	}
}
