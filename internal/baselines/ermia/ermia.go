// Package ermia implements an ERMIA-style engine (Kim et al., SIGMOD 2016):
// snapshot isolation over multi-version storage with the Serial Safety Net
// (SSN) certifier for serializability — the paper's "ERMIA SI+SSN" baseline
// (§4.1). Reads never validate (snapshot isolation); SSN tracks, per
// version, the latest reader commit timestamp (pstamp) and the overwriter's
// commit timestamp (sstamp), and aborts a committing transaction whose
// exclusion window closes: π(T) ≤ η(T), where π is the minimum sstamp of
// versions it read and η the maximum pstamp of versions it overwrote.
// Timestamps come from a centralized atomic counter, as in the original.
package ermia

import (
	"runtime"
	"sync/atomic"

	"cicada/internal/baselines/common"
	"cicada/internal/engine"
)

// DB is an ERMIA-style database.
type DB struct {
	cfg     engine.Config
	tables  []*common.MVStore
	indexes *common.IndexSet
	workers []*worker
	counter atomic.Uint64
}

// New creates an ERMIA SI+SSN DB.
func New(cfg engine.Config) engine.DB {
	db := &DB{cfg: cfg, indexes: common.NewIndexSet(cfg)}
	db.counter.Store(1)
	db.workers = make([]*worker, cfg.Workers)
	for i := range db.workers {
		w := &worker{db: db}
		w.InitWorker(i)
		w.active.Store(common.TSInf)
		w.tx.db = db
		w.tx.w = w
		w.tx.own = make(map[uint64]int, 32)
		db.workers[i] = w
	}
	common.RegisterMetrics(cfg.Metrics, db.Name(), db.bases())
	return db
}

// Name implements engine.DB.
func (db *DB) Name() string { return "ERMIA" }

// Workers implements engine.DB.
func (db *DB) Workers() int { return db.cfg.Workers }

// CreateTable implements engine.DB.
func (db *DB) CreateTable(name string) engine.TableID {
	db.tables = append(db.tables, common.NewMVStore())
	return engine.TableID(len(db.tables) - 1)
}

// CreateHashIndex implements engine.DB.
func (db *DB) CreateHashIndex(name string, buckets int) engine.IndexID {
	return db.indexes.CreateHash(buckets)
}

// CreateOrderedIndex implements engine.DB.
func (db *DB) CreateOrderedIndex(name string) engine.IndexID {
	return db.indexes.CreateOrdered()
}

// Worker implements engine.DB.
func (db *DB) Worker(id int) engine.Worker { return db.workers[id] }

// Stats implements engine.DB.
func (db *DB) Stats() engine.Stats { return common.StatsOf(db.bases()) }

// bases collects the workers' shared bookkeeping for aggregation.
func (db *DB) bases() []*common.WorkerBase {
	bases := make([]*common.WorkerBase, len(db.workers))
	for i, w := range db.workers {
		bases[i] = &w.WorkerBase
	}
	return bases
}

// CommitsLive implements engine.DB.
func (db *DB) CommitsLive() uint64 {
	var n uint64
	for _, w := range db.workers {
		n += w.CommitsLive()
	}
	return n
}

func (db *DB) horizon() uint64 {
	min := db.counter.Load()
	for _, w := range db.workers {
		if a := w.active.Load(); a < min {
			min = a
		}
	}
	return min
}

type worker struct {
	common.WorkerBase
	db     *DB
	tx     tx
	active atomic.Uint64
	mark   uint64
}

func (w *worker) Run(fn func(tx engine.Tx) error) error {
	w.mark = common.TxMarkBit | uint64(w.ID+1)
	return w.RunLoop(func() error {
		t := &w.tx
		// Pin the pruning horizon before choosing the begin timestamp:
		// after the pin is visible no pruner can cut below it, and the
		// begin timestamp (a later counter read) is at least the pin.
		w.active.Store(w.db.counter.Load())
		t.reset(w.db.counter.Load())
		w.active.Store(t.begin)
		var err error
		if err = fn(t); err != nil {
			t.finish(0)
		} else {
			err = t.commit()
		}
		w.active.Store(common.TSInf)
		return err
	})
}

// RunRO implements engine.Worker: a pure snapshot read; SSN exempts
// read-only transactions that read committed versions at a fixed snapshot.
func (w *worker) RunRO(fn func(tx engine.Tx) error) error {
	w.mark = common.TxMarkBit | uint64(w.ID+1)
	return w.RunLoop(func() error {
		t := &w.tx
		w.active.Store(w.db.counter.Load()) // pin before choosing begin
		t.reset(w.db.counter.Load())
		t.snapshot = true
		w.active.Store(t.begin)
		err := fn(t)
		t.finish(0)
		w.active.Store(common.TSInf)
		return err
	})
}

func (w *worker) Idle() { runtime.Gosched() }

type readEnt struct {
	ver *common.MVVersion
}

type writeEnt struct {
	tbl engine.TableID
	rid engine.RecordID
	rec *common.MVRecord
	old *common.MVVersion
	nv  *common.MVVersion
	del bool
}

type tx struct {
	db *DB
	w  *worker
	common.TxIndex
	begin    uint64
	snapshot bool
	reads    []readEnt
	writes   []writeEnt
	own      map[uint64]int
}

func ownKey(t engine.TableID, r engine.RecordID) uint64 {
	return uint64(t)<<48 | uint64(r)&0xffffffffffff
}

func (t *tx) reset(begin uint64) {
	t.begin = begin
	t.snapshot = false
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
	clear(t.own)
	t.TxIndex.Reset(t.db.indexes)
}

func (t *tx) Read(tb engine.TableID, r engine.RecordID) ([]byte, error) {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		w := &t.writes[i]
		if w.del {
			return nil, engine.ErrNotFound
		}
		return w.nv.Data, nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return nil, engine.ErrNotFound
	}
	v := rec.Visible(t.begin)
	if v == nil || v.Data == nil {
		return nil, engine.ErrNotFound // SI: absent reads need no tracking
	}
	if !t.snapshot {
		t.reads = append(t.reads, readEnt{ver: v})
	}
	return v.Data, nil
}

func (t *tx) stageWrite(tb engine.TableID, r engine.RecordID, data []byte, del bool) (*writeEnt, error) {
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return nil, engine.ErrNotFound
	}
	old := rec.Latest.Load()
	if old != nil {
		b := old.Begin.Load()
		if b&common.TxMarkBit != 0 || b > t.begin {
			return nil, engine.ErrAborted // SI first-writer-wins
		}
		if !old.End.CompareAndSwap(common.TSInf, t.w.mark) {
			return nil, engine.ErrAborted
		}
	}
	nv := &common.MVVersion{Data: data}
	nv.Begin.Store(t.w.mark)
	nv.End.Store(common.TSInf)
	nv.Sstamp.Store(common.TSInf)
	nv.Next.Store(old)
	if !rec.Latest.CompareAndSwap(old, nv) {
		if old != nil {
			old.End.Store(common.TSInf)
		}
		return nil, engine.ErrAborted
	}
	t.writes = append(t.writes, writeEnt{tbl: tb, rid: r, rec: rec, old: old, nv: nv, del: del})
	i := len(t.writes) - 1
	t.own[ownKey(tb, r)] = i
	return &t.writes[i], nil
}

func (t *tx) Update(tb engine.TableID, r engine.RecordID, size int) ([]byte, error) {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		w := &t.writes[i]
		if w.del {
			return nil, engine.ErrNotFound
		}
		if size >= 0 && size != len(w.nv.Data) {
			nb := make([]byte, size)
			copy(nb, w.nv.Data)
			w.nv.Data = nb
		}
		return w.nv.Data, nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return nil, engine.ErrNotFound
	}
	v := rec.Visible(t.begin)
	if v == nil || v.Data == nil {
		return nil, engine.ErrNotFound
	}
	t.reads = append(t.reads, readEnt{ver: v})
	if size < 0 {
		size = len(v.Data)
	}
	buf := make([]byte, size)
	copy(buf, v.Data)
	w, err := t.stageWrite(tb, r, buf, false)
	if err != nil {
		return nil, err
	}
	return w.nv.Data, nil
}

func (t *tx) Write(tb engine.TableID, r engine.RecordID, size int) ([]byte, error) {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		w := &t.writes[i]
		w.del = false
		if size != len(w.nv.Data) {
			w.nv.Data = make([]byte, size)
		}
		return w.nv.Data, nil
	}
	w, err := t.stageWrite(tb, r, make([]byte, size), false)
	if err != nil {
		return nil, err
	}
	return w.nv.Data, nil
}

func (t *tx) Insert(tb engine.TableID, size int) (engine.RecordID, []byte, error) {
	store := t.db.tables[tb]
	rid := store.Alloc()
	w, err := t.stageWrite(tb, rid, make([]byte, size), false)
	if err != nil {
		return 0, nil, err
	}
	return rid, w.nv.Data, nil
}

func (t *tx) Delete(tb engine.TableID, r engine.RecordID) error {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		t.writes[i].del = true
		t.writes[i].nv.Data = nil
		return nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return engine.ErrNotFound
	}
	v := rec.Visible(t.begin)
	if v == nil || v.Data == nil {
		return engine.ErrNotFound
	}
	t.reads = append(t.reads, readEnt{ver: v})
	_, err := t.stageWrite(tb, r, nil, true)
	return err
}

func (t *tx) IndexGet(i engine.IndexID, key uint64) (engine.RecordID, error) {
	return t.TxIndex.Get(i, key)
}
func (t *tx) IndexScan(i engine.IndexID, lo, hi uint64, limit int, fn func(uint64, engine.RecordID) bool) error {
	return t.TxIndex.Scan(i, lo, hi, limit, fn)
}
func (t *tx) IndexInsert(i engine.IndexID, key uint64, r engine.RecordID) error {
	return t.TxIndex.Insert(i, key, r)
}
func (t *tx) IndexDelete(i engine.IndexID, key uint64, r engine.RecordID) error {
	return t.TxIndex.Delete(i, key, r)
}

// commit runs the SSN exclusion-window test at the commit timestamp and, on
// success, publishes the SSN stamps and installs the new versions.
func (t *tx) commit() error {
	ct := t.db.counter.Add(1)
	// π(T): the earliest successor of anything we read (plus ourselves).
	pi := ct
	for i := range t.reads {
		if s := t.reads[i].ver.Sstamp.Load(); s < pi {
			pi = s
		}
	}
	// η(T): the latest reader of anything we overwrote.
	eta := uint64(0)
	for i := range t.writes {
		if old := t.writes[i].old; old != nil {
			if p := old.Pstamp.Load(); p > eta {
				eta = p
			}
		}
	}
	ok := pi > eta && t.TxIndex.Validate()
	if !ok {
		t.finish(0)
		return engine.ErrAborted
	}
	// Publish stamps: we read versions as late as ct; we overwrote old
	// versions at ct.
	for i := range t.reads {
		v := t.reads[i].ver
		for {
			p := v.Pstamp.Load()
			if p >= ct || v.Pstamp.CompareAndSwap(p, ct) {
				break
			}
		}
	}
	t.finish(ct)
	return nil
}

func (t *tx) finish(ct uint64) {
	horizon := t.db.horizon()
	for i := range t.writes {
		w := &t.writes[i]
		if ct > 0 {
			w.nv.Begin.Store(ct)
			if w.old != nil {
				w.old.Sstamp.Store(ct)
				w.old.End.Store(ct)
			}
			w.rec.Prune(horizon)
		} else {
			w.rec.Latest.CompareAndSwap(w.nv, w.old)
			if w.old != nil {
				w.old.End.Store(common.TSInf)
			}
		}
	}
	if ct > 0 {
		t.TxIndex.Committed()
	} else {
		t.TxIndex.Aborted()
	}
}
