package common

import (
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"cicada/internal/engine"
)

// MaxBackoff is DBx1000's fixed maximum backoff: an aborted transaction
// sleeps for a random duration in [0, 100 µs] (§3.9). The paper grants this
// scheme to Silo' and the other DBx1000 schemes.
const MaxBackoff = 100 * time.Microsecond

// WorkerBase carries the per-worker bookkeeping shared by every baseline:
// outcome counters and the DBx1000 backoff loop.
type WorkerBase struct {
	ID      int
	Rng     *rand.Rand
	Stats   engine.Stats
	commits atomic.Uint64
}

// InitWorker seeds a worker's state.
func (w *WorkerBase) InitWorker(id int) {
	w.ID = id
	w.Rng = rand.New(rand.NewSource(int64(id)*2654435761 + 99991))
}

// CommitsLive returns the worker's committed count (atomic).
func (w *WorkerBase) CommitsLive() uint64 { return w.commits.Load() }

// RunLoop drives attempt until it commits or fails with a non-retryable
// error. attempt must run one full transaction (execute + validate +
// commit/abort) and return nil, engine.ErrAborted, or an application error.
func (w *WorkerBase) RunLoop(attempt func() error) error {
	for {
		start := time.Now()
		err := attempt()
		elapsed := time.Since(start)
		w.Stats.BusyTime += elapsed
		if err == nil {
			w.Stats.Commits++
			w.commits.Add(1)
			return nil
		}
		if !errors.Is(err, engine.ErrAborted) {
			w.Stats.UserAborts++
			return err
		}
		w.Stats.Aborts++
		w.Stats.AbortTime += elapsed
		w.Backoff()
	}
}

// Backoff sleeps for a random duration in [0, MaxBackoff], busy-yielding so
// microsecond-scale backoff is honored on coarse-timer platforms.
func (w *WorkerBase) Backoff() {
	d := time.Duration(w.Rng.Int63n(int64(MaxBackoff) + 1))
	w.Stats.AbortTime += d
	if d == 0 {
		runtime.Gosched()
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// StatsOf aggregates worker stats. Call while workers are quiescent.
func StatsOf(ws []*WorkerBase) engine.Stats {
	var s engine.Stats
	for _, w := range ws {
		s.Commits += w.Stats.Commits
		s.Aborts += w.Stats.Aborts
		s.UserAborts += w.Stats.UserAborts
		s.AbortTime += w.Stats.AbortTime
		s.BusyTime += w.Stats.BusyTime
	}
	return s
}

// CommitsLiveOf sums workers' atomic commit counters.
func CommitsLiveOf(ws []*WorkerBase) uint64 {
	var n uint64
	for _, w := range ws {
		n += w.CommitsLive()
	}
	return n
}

// Yield is a scheduling hint used inside consistent-read retry loops.
func Yield() { runtime.Gosched() }
