package common

import (
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"cicada/internal/engine"
	"cicada/internal/telemetry"
)

// MaxBackoff is DBx1000's fixed maximum backoff: an aborted transaction
// sleeps for a random duration in [0, 100 µs] (§3.9). The paper grants this
// scheme to Silo' and the other DBx1000 schemes.
const MaxBackoff = 100 * time.Microsecond

// WorkerBase carries the per-worker bookkeeping shared by every baseline:
// outcome counters and the DBx1000 backoff loop.
//
// Each counter word has exactly one writer — the owning worker goroutine —
// which updates it with an atomic load/store pair (never a locked RMW).
// Readers (StatsOf, CommitsLiveOf, metric scrapes) may run concurrently and
// observe values that are slightly stale but never torn.
type WorkerBase struct {
	ID  int
	Rng *rand.Rand

	commits    atomic.Uint64
	aborts     atomic.Uint64
	userAborts atomic.Uint64
	abortNs    atomic.Int64
	busyNs     atomic.Int64
}

// InitWorker seeds a worker's state.
func (w *WorkerBase) InitWorker(id int) {
	w.ID = id
	w.Rng = rand.New(rand.NewSource(int64(id)*2654435761 + 99991))
}

// CommitsLive returns the worker's committed count (atomic).
func (w *WorkerBase) CommitsLive() uint64 { return w.commits.Load() }

// Snapshot returns the worker's counters. Safe to call while the worker
// runs; each field is read atomically (the fields are mutually consistent
// only when the worker is quiescent).
func (w *WorkerBase) Snapshot() engine.Stats {
	return engine.Stats{
		Commits:    w.commits.Load(),
		Aborts:     w.aborts.Load(),
		UserAborts: w.userAborts.Load(),
		AbortTime:  time.Duration(w.abortNs.Load()),
		BusyTime:   time.Duration(w.busyNs.Load()),
	}
}

// RunLoop drives attempt until it commits or fails with a non-retryable
// error. attempt must run one full transaction (execute + validate +
// commit/abort) and return nil, engine.ErrAborted, or an application error.
func (w *WorkerBase) RunLoop(attempt func() error) error {
	for {
		start := time.Now()
		err := attempt()
		elapsed := time.Since(start)
		w.busyNs.Store(w.busyNs.Load() + int64(elapsed))
		if err == nil {
			w.commits.Store(w.commits.Load() + 1)
			return nil
		}
		if !errors.Is(err, engine.ErrAborted) {
			w.userAborts.Store(w.userAborts.Load() + 1)
			return err
		}
		w.aborts.Store(w.aborts.Load() + 1)
		w.abortNs.Store(w.abortNs.Load() + int64(elapsed))
		w.Backoff()
	}
}

// Backoff sleeps for a random duration in [0, MaxBackoff], busy-yielding so
// microsecond-scale backoff is honored on coarse-timer platforms.
func (w *WorkerBase) Backoff() {
	d := time.Duration(w.Rng.Int63n(int64(MaxBackoff) + 1))
	w.abortNs.Store(w.abortNs.Load() + int64(d))
	if d == 0 {
		runtime.Gosched()
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// StatsOf aggregates worker stats. Safe while workers run (each worker's
// words are read atomically); exact only once workers are quiescent.
func StatsOf(ws []*WorkerBase) engine.Stats {
	var s engine.Stats
	for _, w := range ws {
		snap := w.Snapshot()
		s.Commits += snap.Commits
		s.Aborts += snap.Aborts
		s.UserAborts += snap.UserAborts
		s.AbortTime += snap.AbortTime
		s.BusyTime += snap.BusyTime
	}
	return s
}

// CommitsLiveOf sums workers' atomic commit counters.
func CommitsLiveOf(ws []*WorkerBase) uint64 {
	var n uint64
	for _, w := range ws {
		n += w.CommitsLive()
	}
	return n
}

// RegisterMetrics registers the engine_* counter families shared by all
// engines, labeled with the scheme name, so a baseline's series line up
// with Cicada's for side-by-side comparison. The values are computed at
// scrape time from the workers' single-writer counters; the hot path is
// untouched. nil reg is a no-op.
func RegisterMetrics(reg *telemetry.Registry, name string, ws []*WorkerBase) {
	if reg == nil {
		return
	}
	stat := func(f func(s *engine.Stats) float64) func() float64 {
		return func() float64 {
			s := StatsOf(ws)
			return f(&s)
		}
	}
	engLabel := telemetry.Label{Key: "engine", Value: name}
	reg.CounterFunc("engine_commits_total", "Committed transactions.",
		stat(func(s *engine.Stats) float64 { return float64(s.Commits) }), engLabel)
	reg.CounterFunc("engine_aborts_total", "Concurrency-control aborts.",
		stat(func(s *engine.Stats) float64 { return float64(s.Aborts) }), engLabel)
	reg.CounterFunc("engine_user_aborts_total", "Application-requested rollbacks.",
		stat(func(s *engine.Stats) float64 { return float64(s.UserAborts) }), engLabel)
	reg.CounterFunc("engine_busy_seconds_total", "Time spent processing transactions.",
		stat(func(s *engine.Stats) float64 { return s.BusyTime.Seconds() }), engLabel)
	reg.CounterFunc("engine_abort_seconds_total", "Time spent on aborted work and backoff.",
		stat(func(s *engine.Stats) float64 { return s.AbortTime.Seconds() }), engLabel)
}

// Yield is a scheduling hint used inside consistent-read retry loops.
func Yield() { runtime.Gosched() }
