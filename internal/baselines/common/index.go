package common

import (
	"cicada/internal/engine"
	"cicada/internal/svindex"
)

// IndexSet holds a scheme's single-version indexes and implements the two
// index-update disciplines the paper compares:
//
//   - Eager (Config.PhantomAvoidance = true, Figure 3): index updates are
//     applied during the read phase — creating the index contention the
//     paper describes (§2.1) — and undone on abort; scans and absent-key
//     probes record node stamps that are re-validated at commit (Silo-style
//     phantom avoidance).
//   - Deferred (PhantomAvoidance = false, Figure 4): index updates are
//     buffered and applied only after commit, with no phantom validation.
type IndexSet struct {
	cfg engine.Config
	idx []svIdx
}

type svIdx struct {
	hash    *svindex.Hash
	tree    *svindex.SkipList
	ordered bool
}

// NewIndexSet creates an empty index set under cfg's discipline.
func NewIndexSet(cfg engine.Config) *IndexSet { return &IndexSet{cfg: cfg} }

// CreateHash registers a hash index.
func (s *IndexSet) CreateHash(buckets int) engine.IndexID {
	s.idx = append(s.idx, svIdx{hash: svindex.NewHash(buckets)})
	return engine.IndexID(len(s.idx) - 1)
}

// CreateOrdered registers an ordered (skip list) index.
func (s *IndexSet) CreateOrdered() engine.IndexID {
	s.idx = append(s.idx, svIdx{tree: svindex.NewSkipList(), ordered: true})
	return engine.IndexID(len(s.idx) - 1)
}

// Eager reports whether index updates are applied during the read phase.
func (s *IndexSet) Eager() bool { return s.cfg.PhantomAvoidance }

type idxOp struct {
	idx    engine.IndexID
	key    uint64
	rid    engine.RecordID
	insert bool
}

type hashObs struct {
	h     *svindex.Hash
	key   uint64
	stamp uint64
}

// TxIndex is the per-transaction index state: stamp observations for
// phantom validation, applied-op undo (eager), or buffered ops (deferred).
// Embed it in a scheme's transaction and call Reset at begin, Validate
// during commit validation, and Committed/Aborted at the outcome.
type TxIndex struct {
	set      *IndexSet
	stamps   []svindex.NodeStamp
	hashObs  []hashObs
	applied  []idxOp // eager: ops already applied, undone on abort
	deferred []idxOp // deferred: ops applied after commit
}

// Reset prepares the transaction-local state for a new transaction.
func (t *TxIndex) Reset(set *IndexSet) {
	t.set = set
	t.stamps = t.stamps[:0]
	t.hashObs = t.hashObs[:0]
	t.applied = t.applied[:0]
	t.deferred = t.deferred[:0]
}

// Get looks up key, honoring the transaction's own pending ops.
func (t *TxIndex) Get(i engine.IndexID, key uint64) (engine.RecordID, error) {
	for j := len(t.deferred) - 1; j >= 0; j-- {
		op := &t.deferred[j]
		if op.idx == i && op.key == key {
			if op.insert {
				return op.rid, nil
			}
			return 0, engine.ErrNotFound
		}
	}
	ix := &t.set.idx[i]
	if ix.hash != nil {
		rid, ok, stamp := ix.hash.Get(key)
		if ok {
			return rid, nil
		}
		if t.set.Eager() {
			t.hashObs = append(t.hashObs, hashObs{h: ix.hash, key: key, stamp: stamp})
		}
		return 0, engine.ErrNotFound
	}
	var obs *[]svindex.NodeStamp
	if t.set.Eager() {
		obs = &t.stamps
	}
	rid, ok := ix.tree.Get(key, obs)
	if !ok {
		return 0, engine.ErrNotFound
	}
	return rid, nil
}

// Scan visits [lo, hi] on an ordered index, recording node stamps in eager
// mode.
func (t *TxIndex) Scan(i engine.IndexID, lo, hi uint64, limit int, fn func(key uint64, r engine.RecordID) bool) error {
	ix := &t.set.idx[i]
	if !ix.ordered {
		return engine.ErrNotFound
	}
	var obs *[]svindex.NodeStamp
	if t.set.Eager() {
		obs = &t.stamps
	}
	ix.tree.Scan(lo, hi, limit, obs, fn)
	return nil
}

// Insert adds (key → rid) under the configured discipline.
func (t *TxIndex) Insert(i engine.IndexID, key uint64, rid engine.RecordID) error {
	op := idxOp{idx: i, key: key, rid: rid, insert: true}
	if !t.set.Eager() {
		t.deferred = append(t.deferred, op)
		return nil
	}
	t.apply(op)
	t.applied = append(t.applied, op)
	t.refreshObs()
	return nil
}

// Delete removes (key → rid). Index deletes are always deferred to commit,
// as in Silo, where entry removal is lazy: applying deletes eagerly would
// let an aborting transaction's undo re-insert churn the node stamps other
// transactions observed, causing mutual-abort livelock. Scans may therefore
// still see an entry whose deleting transaction is in flight; the stale
// entry is caught by record-level validation.
func (t *TxIndex) Delete(i engine.IndexID, key uint64, rid engine.RecordID) error {
	t.deferred = append(t.deferred, idxOp{idx: i, key: key, rid: rid})
	return nil
}

// refreshObs re-takes all stamp observations after the transaction's own
// eager index update so the update does not invalidate its own read set
// (Silo likewise exempts a transaction's own node modifications). The
// refresh slightly widens the window in which a concurrent phantom could go
// undetected, mirroring the upper-bound treatment the paper applies to
// TicToc's phantom avoidance (§4.1 footnote).
func (t *TxIndex) refreshObs() {
	for i := range t.stamps {
		t.stamps[i] = t.stamps[i].Refresh()
	}
	for i := range t.hashObs {
		t.hashObs[i].stamp = t.hashObs[i].h.Stamp(t.hashObs[i].key)
	}
}

func (t *TxIndex) apply(op idxOp) {
	ix := &t.set.idx[op.idx]
	switch {
	case ix.hash != nil && op.insert:
		ix.hash.Insert(op.key, op.rid)
	case ix.hash != nil:
		ix.hash.Delete(op.key, op.rid)
	case op.insert:
		ix.tree.Insert(op.key, op.rid)
	default:
		ix.tree.Delete(op.key, op.rid)
	}
}

// Validate re-checks every recorded node stamp (phantom avoidance). A stamp
// bumped by the transaction's own eager updates fails conservatively, as in
// Silo, where a transaction's own inserts also bump node versions — the
// schemes tolerate this by validating stamps before applying their own
// index updates or by re-reading; here eager updates are applied during the
// read phase, so we snapshot stamps before own updates touch them (callers
// perform lookups before updates in all our workloads).
func (t *TxIndex) Validate() bool {
	for _, o := range t.stamps {
		if !o.Valid() {
			return false
		}
	}
	for _, o := range t.hashObs {
		if o.h.Stamp(o.key) != o.stamp {
			return false
		}
	}
	return true
}

// Committed applies deferred ops after a successful commit.
func (t *TxIndex) Committed() {
	for _, op := range t.deferred {
		t.apply(op)
	}
}

// Aborted undoes eagerly applied ops in reverse order.
func (t *TxIndex) Aborted() {
	for j := len(t.applied) - 1; j >= 0; j-- {
		op := t.applied[j]
		op.insert = !op.insert
		t.apply(op)
	}
}
