// Package common provides the shared substrate for the baseline concurrency
// control schemes the paper compares against (§4.1): a single-version
// record store with in-place updates (Silo, TicToc, 2PL no-wait, MOCC), a
// multi-version record store (Hekaton, ERMIA), single-version index
// plumbing with eager or deferred updates and Silo-style node-stamp phantom
// validation, and the per-worker run loop with DBx1000's randomized backoff.
package common

import (
	"sync"
	"sync/atomic"

	"cicada/internal/engine"
)

const (
	pageShift = 12
	pageSize  = 1 << pageShift
)

// Record is a single-version record with in-place updates. The scheme owns
// the interpretation of the two metadata words:
//
//	Silo:   Word1 = TID (lock bit 63 | epoch | sequence)
//	TicToc: Word1 = wts (lock bit 63), Word2 = rts
//	2PL:    Word1 = lock state (writer bit | reader count)
//	MOCC:   Word1 = TID as Silo, Word2 = temperature
//
// Data is swapped atomically as a whole on resize; byte-level tearing within
// a buffer is tolerated and detected by each scheme's consistent-read
// protocol, reproducing the "extra reads" cost of OCC-1V-in-place (§2.1).
type Record struct {
	Word1 atomic.Uint64
	Word2 atomic.Uint64
	data  atomic.Pointer[[]byte]
}

// Data returns the current record payload, or nil if deleted/absent.
func (r *Record) Data() []byte {
	p := r.data.Load()
	if p == nil {
		return nil
	}
	return *p
}

// SetData replaces the record payload pointer (insert, resize, delete).
func (r *Record) SetData(b []byte) {
	if b == nil {
		r.data.Store(nil)
		return
	}
	r.data.Store(&b)
}

type page struct {
	recs [pageSize]Record
}

// Store is an expandable single-version record array with two-level paging,
// mirroring the layout the DBx1000 schemes use after the paper's
// cache-collocation optimization.
type Store struct {
	dir    atomic.Pointer[[]*page]
	growMu sync.Mutex
	next   atomic.Uint64
}

// NewStore creates an empty store.
func NewStore() *Store {
	s := &Store{}
	empty := make([]*page, 0)
	s.dir.Store(&empty)
	return s
}

// Get returns the record for rid, or nil if never allocated.
func (s *Store) Get(rid engine.RecordID) *Record {
	dir := *s.dir.Load()
	pi := uint64(rid) >> pageShift
	if pi >= uint64(len(dir)) {
		return nil
	}
	return &dir[pi].recs[uint64(rid)&(pageSize-1)]
}

// Alloc returns a fresh record ID.
func (s *Store) Alloc() engine.RecordID {
	rid := engine.RecordID(s.next.Add(1) - 1)
	s.ensure(rid)
	return rid
}

// Reserve pre-allocates n records and returns the first ID.
func (s *Store) Reserve(n uint64) engine.RecordID {
	first := s.next.Add(n) - n
	s.ensure(engine.RecordID(first + n - 1))
	return engine.RecordID(first)
}

// Cap returns the number of record IDs ever allocated.
func (s *Store) Cap() uint64 { return s.next.Load() }

func (s *Store) ensure(rid engine.RecordID) {
	need := (uint64(rid) >> pageShift) + 1
	if uint64(len(*s.dir.Load())) >= need {
		return
	}
	s.growMu.Lock()
	defer s.growMu.Unlock()
	cur := *s.dir.Load()
	if uint64(len(cur)) >= need {
		return
	}
	grown := make([]*page, need)
	copy(grown, cur)
	for i := uint64(len(cur)); i < need; i++ {
		grown[i] = new(page)
	}
	s.dir.Store(&grown)
}
