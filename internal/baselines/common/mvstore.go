package common

import (
	"sync"
	"sync/atomic"

	"cicada/internal/engine"
)

// TSInf is the "end of time" sentinel for MVRecord version ranges.
const TSInf = ^uint64(0)

// TxMarkBit marks a version's End field as "being replaced by transaction
// id" rather than a commit timestamp (Hekaton-style write locking).
const TxMarkBit = uint64(1) << 63

// MVVersion is one version in a Hekaton/ERMIA-style version chain, valid
// for timestamps in [Begin, End).
type MVVersion struct {
	// Begin is the creating transaction's commit timestamp; while the
	// creator is uncommitted it holds a TxMark.
	Begin atomic.Uint64
	// End is the overwriting transaction's commit timestamp, TSInf while
	// latest, or a TxMark while an overwrite is in flight.
	End atomic.Uint64
	// Pstamp is the maximum commit timestamp of a reader of this version
	// (SSN η source).
	Pstamp atomic.Uint64
	// Sstamp is the commit timestamp of the overwriter (SSN π source);
	// TSInf if not overwritten.
	Sstamp atomic.Uint64
	// Data is immutable after the version becomes visible; nil = tombstone.
	Data []byte
	// Next points to the previous (older) version; atomic so pruning can
	// race safely with chain walks.
	Next atomic.Pointer[MVVersion]
}

// MVRecord anchors a latest-to-oldest version chain.
type MVRecord struct {
	Latest atomic.Pointer[MVVersion]
}

// Visible returns the version visible at ts, skipping uncommitted versions
// (speculative ignore, as Hekaton's pessimistic-free reads do).
func (r *MVRecord) Visible(ts uint64) *MVVersion {
	for v := r.Latest.Load(); v != nil; v = v.Next.Load() {
		b := v.Begin.Load()
		if b&TxMarkBit != 0 || b > ts {
			continue
		}
		// Committed and begun before ts: first such version is visible
		// (chain is newest-first by Begin).
		return v
	}
	return nil
}

type mvPage struct {
	recs [pageSize]MVRecord
}

// MVStore is an expandable multi-version record array.
type MVStore struct {
	dir    atomic.Pointer[[]*mvPage]
	growMu sync.Mutex
	next   atomic.Uint64
}

// NewMVStore creates an empty multi-version store.
func NewMVStore() *MVStore {
	s := &MVStore{}
	empty := make([]*mvPage, 0)
	s.dir.Store(&empty)
	return s
}

// Get returns the record for rid, or nil if never allocated.
func (s *MVStore) Get(rid engine.RecordID) *MVRecord {
	dir := *s.dir.Load()
	pi := uint64(rid) >> pageShift
	if pi >= uint64(len(dir)) {
		return nil
	}
	return &dir[pi].recs[uint64(rid)&(pageSize-1)]
}

// Alloc returns a fresh record ID.
func (s *MVStore) Alloc() engine.RecordID {
	rid := engine.RecordID(s.next.Add(1) - 1)
	s.ensure(rid)
	return rid
}

// Cap returns the number of record IDs ever allocated.
func (s *MVStore) Cap() uint64 { return s.next.Load() }

func (s *MVStore) ensure(rid engine.RecordID) {
	need := (uint64(rid) >> pageShift) + 1
	if uint64(len(*s.dir.Load())) >= need {
		return
	}
	s.growMu.Lock()
	defer s.growMu.Unlock()
	cur := *s.dir.Load()
	if uint64(len(cur)) >= need {
		return
	}
	grown := make([]*mvPage, need)
	copy(grown, cur)
	for i := uint64(len(cur)); i < need; i++ {
		grown[i] = new(mvPage)
	}
	s.dir.Store(&grown)
}

// Prune trims committed versions older than horizon from the chain, keeping
// at least the visible version at horizon. It is a best-effort, single-owner
// operation: callers must hold the record's write intent (End TxMark on the
// latest version) so no concurrent pruner exists.
func (r *MVRecord) Prune(horizon uint64) {
	v := r.Latest.Load()
	// Find the newest committed version with Begin ≤ horizon; everything
	// strictly older is invisible to all current and future transactions.
	for v != nil {
		b := v.Begin.Load()
		if b&TxMarkBit == 0 && b <= horizon {
			v.Next.Store(nil)
			return
		}
		v = v.Next.Load()
	}
}
