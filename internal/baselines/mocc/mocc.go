// Package mocc implements MOCC (Wang & Kimura, VLDB 2016): mostly-optimistic
// concurrency control (§4.1). The substrate is FOEDUS-style OCC — which this
// repository models with the same Silo-family protocol (TID words, write-set
// locking, read validation); see DESIGN.md's FOEDUS substitution note — plus
// per-record temperature tracking: records that cause validation failures
// become "hot", and hot records are locked pessimistically during the read
// phase (shared for reads, exclusive for writes) with no-wait conflict
// handling, trading lock overhead for fewer aborts under contention.
package mocc

import (
	"runtime"
	"sort"

	"cicada/internal/baselines/common"
	"cicada/internal/engine"
)

const (
	lockBit = uint64(1) << 63

	// Word2 encoding: bit 63 = writer, bits 32–62 = reader count,
	// bits 0–31 = temperature.
	moccWriter    = uint64(1) << 63
	moccReaderInc = uint64(1) << 32
	moccLockMask  = ^moccTempMask
	moccTempMask  = (uint64(1) << 32) - 1

	// hotThreshold is the temperature at which a record switches to
	// pessimistic locking.
	hotThreshold = 8
	tempCap      = 1 << 30
)

// DB is a MOCC database.
type DB struct {
	cfg     engine.Config
	tables  []*common.Store
	indexes *common.IndexSet
	workers []*worker
}

// New creates a MOCC DB.
func New(cfg engine.Config) engine.DB {
	db := &DB{cfg: cfg, indexes: common.NewIndexSet(cfg)}
	db.workers = make([]*worker, cfg.Workers)
	for i := range db.workers {
		w := &worker{db: db}
		w.InitWorker(i)
		w.tx.db = db
		w.tx.w = w
		w.tx.own = make(map[uint64]int, 32)
		db.workers[i] = w
	}
	common.RegisterMetrics(cfg.Metrics, db.Name(), db.bases())
	return db
}

// Name implements engine.DB.
func (db *DB) Name() string { return "MOCC" }

// Workers implements engine.DB.
func (db *DB) Workers() int { return db.cfg.Workers }

// CreateTable implements engine.DB.
func (db *DB) CreateTable(name string) engine.TableID {
	db.tables = append(db.tables, common.NewStore())
	return engine.TableID(len(db.tables) - 1)
}

// CreateHashIndex implements engine.DB.
func (db *DB) CreateHashIndex(name string, buckets int) engine.IndexID {
	return db.indexes.CreateHash(buckets)
}

// CreateOrderedIndex implements engine.DB.
func (db *DB) CreateOrderedIndex(name string) engine.IndexID {
	return db.indexes.CreateOrdered()
}

// Worker implements engine.DB.
func (db *DB) Worker(id int) engine.Worker { return db.workers[id] }

// Stats implements engine.DB.
func (db *DB) Stats() engine.Stats { return common.StatsOf(db.bases()) }

// bases collects the workers' shared bookkeeping for aggregation.
func (db *DB) bases() []*common.WorkerBase {
	bases := make([]*common.WorkerBase, len(db.workers))
	for i, w := range db.workers {
		bases[i] = &w.WorkerBase
	}
	return bases
}

// CommitsLive implements engine.DB.
func (db *DB) CommitsLive() uint64 {
	var n uint64
	for _, w := range db.workers {
		n += w.CommitsLive()
	}
	return n
}

type worker struct {
	common.WorkerBase
	db      *DB
	tx      tx
	lastTID uint64
}

func (w *worker) Run(fn func(tx engine.Tx) error) error {
	return w.RunLoop(func() error {
		t := &w.tx
		t.reset()
		if err := fn(t); err != nil {
			t.abort()
			return err
		}
		return t.commit()
	})
}

// RunRO implements engine.Worker; MOCC has no snapshots.
func (w *worker) RunRO(fn func(tx engine.Tx) error) error { return w.Run(fn) }

func (w *worker) Idle() { runtime.Gosched() }

type readEnt struct {
	rec *common.Record
	tid uint64
}

type writeEnt struct {
	tbl    engine.TableID
	rid    engine.RecordID
	rec    *common.Record
	buf    []byte
	del    bool
	insert bool
}

type heldLock struct {
	rec       *common.Record
	exclusive bool
}

type tx struct {
	db *DB
	w  *worker
	common.TxIndex
	reads  []readEnt
	writes []writeEnt
	held   []heldLock
	own    map[uint64]int
	arena  []byte
}

func ownKey(t engine.TableID, r engine.RecordID) uint64 {
	return uint64(t)<<48 | uint64(r)&0xffffffffffff
}

func (t *tx) reset() {
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
	t.held = t.held[:0]
	t.arena = t.arena[:0]
	clear(t.own)
	t.TxIndex.Reset(t.db.indexes)
}

func (t *tx) alloc(n int) []byte {
	if cap(t.arena)-len(t.arena) < n {
		t.arena = make([]byte, 0, 1<<16)
	}
	b := t.arena[len(t.arena) : len(t.arena)+n]
	t.arena = t.arena[:len(t.arena)+n]
	return b
}

// temperature returns the record's current heat.
func temperature(rec *common.Record) uint64 { return rec.Word2.Load() & moccTempMask }

// heat bumps a record's temperature after it caused a validation failure.
func heat(rec *common.Record) {
	if temperature(rec) < tempCap {
		rec.Word2.Add(1)
	}
}

// lockHotShared acquires a no-wait shared lock on a hot record.
func (t *tx) lockHotShared(rec *common.Record) bool {
	for i := range t.held {
		if t.held[i].rec == rec {
			return true
		}
	}
	for {
		cur := rec.Word2.Load()
		if cur&moccWriter != 0 {
			return false
		}
		if rec.Word2.CompareAndSwap(cur, cur+moccReaderInc) {
			t.held = append(t.held, heldLock{rec: rec})
			return true
		}
	}
}

// lockHotExclusive acquires (or upgrades to) a no-wait exclusive lock.
func (t *tx) lockHotExclusive(rec *common.Record) bool {
	for i := range t.held {
		h := &t.held[i]
		if h.rec != rec {
			continue
		}
		if h.exclusive {
			return true
		}
		// Upgrade: only if we are the sole reader.
		for {
			cur := rec.Word2.Load()
			if cur&moccLockMask != moccReaderInc {
				return false
			}
			if rec.Word2.CompareAndSwap(cur, (cur&moccTempMask)|moccWriter) {
				h.exclusive = true
				return true
			}
		}
	}
	for {
		cur := rec.Word2.Load()
		if cur&moccLockMask != 0 {
			return false
		}
		if rec.Word2.CompareAndSwap(cur, cur|moccWriter) {
			t.held = append(t.held, heldLock{rec: rec, exclusive: true})
			return true
		}
	}
}

func (t *tx) releaseLocks() {
	for i := range t.held {
		h := &t.held[i]
		if h.exclusive {
			for {
				cur := h.rec.Word2.Load()
				if h.rec.Word2.CompareAndSwap(cur, cur&^moccWriter) {
					break
				}
			}
		} else {
			h.rec.Word2.Add(^(moccReaderInc - 1)) // subtract one reader
		}
	}
	t.held = t.held[:0]
}

func (t *tx) consistentRead(rec *common.Record) (tid uint64, data []byte, ok bool) {
	for {
		t1 := rec.Word1.Load()
		if t1&lockBit != 0 {
			runtime.Gosched()
			continue
		}
		d := rec.Data()
		var buf []byte
		if d != nil {
			buf = t.alloc(len(d))
			copy(buf, d)
		}
		t2 := rec.Word1.Load()
		if t1 == t2 {
			return t1, buf, d != nil
		}
	}
}

func (t *tx) Read(tb engine.TableID, r engine.RecordID) ([]byte, error) {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		w := &t.writes[i]
		if w.del {
			return nil, engine.ErrNotFound
		}
		return w.buf, nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return nil, engine.ErrNotFound
	}
	if temperature(rec) >= hotThreshold && !t.lockHotShared(rec) {
		return nil, engine.ErrAborted
	}
	tid, data, ok := t.consistentRead(rec)
	t.reads = append(t.reads, readEnt{rec: rec, tid: tid})
	if !ok {
		return nil, engine.ErrNotFound
	}
	return data, nil
}

func (t *tx) Update(tb engine.TableID, r engine.RecordID, size int) ([]byte, error) {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		w := &t.writes[i]
		if w.del {
			return nil, engine.ErrNotFound
		}
		if size >= 0 && size != len(w.buf) {
			nb := t.alloc(size)
			copy(nb, w.buf)
			w.buf = nb
		}
		return w.buf, nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return nil, engine.ErrNotFound
	}
	if temperature(rec) >= hotThreshold && !t.lockHotExclusive(rec) {
		return nil, engine.ErrAborted
	}
	tid, data, ok := t.consistentRead(rec)
	t.reads = append(t.reads, readEnt{rec: rec, tid: tid})
	if !ok {
		return nil, engine.ErrNotFound
	}
	if size < 0 {
		size = len(data)
	}
	buf := t.alloc(size)
	n := copy(buf, data)
	for ; n < size; n++ {
		buf[n] = 0
	}
	t.stage(writeEnt{tbl: tb, rid: r, rec: rec, buf: buf})
	return buf, nil
}

func (t *tx) Write(tb engine.TableID, r engine.RecordID, size int) ([]byte, error) {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		w := &t.writes[i]
		w.del = false
		if size != len(w.buf) {
			w.buf = t.alloc(size)
		}
		return w.buf, nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return nil, engine.ErrNotFound
	}
	if temperature(rec) >= hotThreshold && !t.lockHotExclusive(rec) {
		return nil, engine.ErrAborted
	}
	buf := t.alloc(size)
	t.stage(writeEnt{tbl: tb, rid: r, rec: rec, buf: buf})
	return buf, nil
}

func (t *tx) Insert(tb engine.TableID, size int) (engine.RecordID, []byte, error) {
	store := t.db.tables[tb]
	rid := store.Alloc()
	rec := store.Get(rid)
	if t.db.indexes.Eager() {
		rec.Word1.Store(lockBit)
	}
	buf := t.alloc(size)
	t.stage(writeEnt{tbl: tb, rid: rid, rec: rec, buf: buf, insert: true})
	return rid, buf, nil
}

func (t *tx) Delete(tb engine.TableID, r engine.RecordID) error {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		t.writes[i].del = true
		return nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return engine.ErrNotFound
	}
	if temperature(rec) >= hotThreshold && !t.lockHotExclusive(rec) {
		return engine.ErrAborted
	}
	tid, _, ok := t.consistentRead(rec)
	t.reads = append(t.reads, readEnt{rec: rec, tid: tid})
	if !ok {
		return engine.ErrNotFound
	}
	t.stage(writeEnt{tbl: tb, rid: r, rec: rec, del: true})
	return nil
}

func (t *tx) stage(w writeEnt) {
	t.writes = append(t.writes, w)
	t.own[ownKey(w.tbl, w.rid)] = len(t.writes) - 1
}

func (t *tx) IndexGet(i engine.IndexID, key uint64) (engine.RecordID, error) {
	return t.TxIndex.Get(i, key)
}
func (t *tx) IndexScan(i engine.IndexID, lo, hi uint64, limit int, fn func(uint64, engine.RecordID) bool) error {
	return t.TxIndex.Scan(i, lo, hi, limit, fn)
}
func (t *tx) IndexInsert(i engine.IndexID, key uint64, r engine.RecordID) error {
	return t.TxIndex.Insert(i, key, r)
}
func (t *tx) IndexDelete(i engine.IndexID, key uint64, r engine.RecordID) error {
	return t.TxIndex.Delete(i, key, r)
}

// commit is the Silo validation protocol plus temperature maintenance:
// records that fail validation are heated, shifting them to pessimistic
// locking on future accesses.
func (t *tx) commit() error {
	sort.Slice(t.writes, func(a, b int) bool {
		wa, wb := &t.writes[a], &t.writes[b]
		if wa.tbl != wb.tbl {
			return wa.tbl < wb.tbl
		}
		return wa.rid < wb.rid
	})
	locked := 0
	for i := range t.writes {
		w := &t.writes[i]
		if w.insert && t.db.indexes.Eager() {
			locked = i + 1
			continue
		}
		for {
			cur := w.rec.Word1.Load()
			if cur&lockBit != 0 {
				runtime.Gosched()
				continue
			}
			if w.rec.Word1.CompareAndSwap(cur, cur|lockBit) {
				break
			}
		}
		locked = i + 1
	}
	maxTID := t.w.lastTID
	okAll := t.TxIndex.Validate()
	if okAll {
		for _, r := range t.reads {
			cur := r.rec.Word1.Load()
			if (cur&lockBit != 0 && !t.ownsLocked(r.rec)) ||
				cur&^lockBit != r.tid&^lockBit {
				heat(r.rec) // MOCC: failed validation heats the record
				okAll = false
				break
			}
			if tid := r.tid &^ lockBit; tid > maxTID {
				maxTID = tid
			}
		}
	}
	if !okAll {
		t.unlockWrites(locked)
		t.abort()
		return engine.ErrAborted
	}
	for i := range t.writes {
		if tid := t.writes[i].rec.Word1.Load() &^ lockBit; tid > maxTID {
			maxTID = tid
		}
	}
	commitTID := maxTID + 1
	t.w.lastTID = commitTID
	for i := range t.writes {
		w := &t.writes[i]
		if w.del {
			w.rec.SetData(nil)
		} else if d := w.rec.Data(); d != nil && len(d) == len(w.buf) {
			copy(d, w.buf)
		} else {
			nb := make([]byte, len(w.buf))
			copy(nb, w.buf)
			w.rec.SetData(nb)
		}
		w.rec.Word1.Store(commitTID)
	}
	t.TxIndex.Committed()
	t.releaseLocks()
	return nil
}

func (t *tx) ownsLocked(rec *common.Record) bool {
	for i := range t.writes {
		if t.writes[i].rec == rec {
			return true
		}
	}
	return false
}

func (t *tx) unlockWrites(locked int) {
	for i := 0; i < locked; i++ {
		w := &t.writes[i]
		if w.insert && t.db.indexes.Eager() {
			continue
		}
		cur := w.rec.Word1.Load()
		w.rec.Word1.Store(cur &^ lockBit)
	}
}

func (t *tx) abort() {
	for i := range t.writes {
		w := &t.writes[i]
		if w.insert && t.db.indexes.Eager() {
			w.rec.SetData(nil)
			w.rec.Word1.Store(t.w.lastTID + 1)
		}
	}
	t.TxIndex.Aborted()
	t.releaseLocks()
}
