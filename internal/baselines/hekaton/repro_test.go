package hekaton

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cicada/internal/baselines/common"
	"cicada/internal/engine"
)

// TestNoLeakedMarks reproduces the bank workload and then audits the raw
// version chains: no version may retain a transaction mark in Begin or End
// once all workers are quiescent.
func TestNoLeakedMarks(t *testing.T) {
	const (
		accounts = 20
		workers  = 4
		transfer = 300
	)
	db := New(engine.Config{Workers: workers, PhantomAvoidance: true}).(*DB)
	tbl := db.CreateTable("accounts")
	w0 := db.Worker(0)
	rids := make([]engine.RecordID, accounts)
	for a := 0; a < accounts; a++ {
		a := a
		if err := w0.Run(func(tx engine.Tx) error {
			rid, buf, err := tx.Insert(tbl, 8)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, 1000)
			rids[a] = rid
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := db.Worker(id)
			rng := rand.New(rand.NewSource(int64(id) + 42))
			for i := 0; i < transfer; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				err := w.Run(func(tx engine.Tx) error {
					fb, err := tx.Update(tbl, rids[from], -1)
					if err != nil {
						return err
					}
					tb, err := tx.Update(tbl, rids[to], -1)
					if err != nil {
						return err
					}
					v := binary.LittleEndian.Uint64(fb)
					if v < 10 {
						return nil
					}
					binary.LittleEndian.PutUint64(fb, v-10)
					binary.LittleEndian.PutUint64(tb, binary.LittleEndian.Uint64(tb)+10)
					return nil
				})
				if err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	for a, rid := range rids {
		rec := db.tables[0].Get(rid)
		depth := 0
		for v := rec.Latest.Load(); v != nil; v = v.Next.Load() {
			b, e := v.Begin.Load(), v.End.Load()
			if b&common.TxMarkBit != 0 {
				t.Errorf("account %d depth %d: leaked Begin mark %x", a, depth, b)
			}
			if e != common.TSInf && e&common.TxMarkBit != 0 {
				t.Errorf("account %d depth %d: leaked End mark %x", a, depth, e)
			}
			depth++
			if depth > 10000 {
				t.Fatalf("account %d: chain cycle", a)
			}
		}
	}
	fmt.Println("final counter:", db.counter.Load())
}
