// Package hekaton implements a Hekaton-style MVCC scheme (Diaconu et al.,
// SIGMOD 2013; Larson et al., VLDB 2011) as in DBx1000 (§4.1): versions
// carry begin/end timestamps drawn from a centralized atomic counter — the
// timestamp-allocation bottleneck Cicada's multi-clock removes (§2.2, Fig 7)
// — writers lock versions by stamping their transaction mark into the end
// field (first-writer-wins), readers speculatively ignore uncommitted
// versions, and serializability is obtained by re-validating the read set at
// the commit timestamp.
package hekaton

import (
	"runtime"
	"sync/atomic"

	"cicada/internal/baselines/common"
	"cicada/internal/engine"
)

// DB is a Hekaton-style database.
type DB struct {
	cfg     engine.Config
	tables  []*common.MVStore
	indexes *common.IndexSet
	workers []*worker
	// counter is the shared commit/begin timestamp counter; every
	// transaction performs at least one atomic fetch-add on it.
	counter atomic.Uint64
}

// New creates a Hekaton-style DB.
func New(cfg engine.Config) engine.DB {
	db := &DB{cfg: cfg, indexes: common.NewIndexSet(cfg)}
	db.counter.Store(1)
	db.workers = make([]*worker, cfg.Workers)
	for i := range db.workers {
		w := &worker{db: db}
		w.InitWorker(i)
		w.active.Store(common.TSInf)
		w.tx.db = db
		w.tx.w = w
		w.tx.own = make(map[uint64]int, 32)
		db.workers[i] = w
	}
	common.RegisterMetrics(cfg.Metrics, db.Name(), db.bases())
	return db
}

// Name implements engine.DB.
func (db *DB) Name() string { return "Hekaton" }

// Workers implements engine.DB.
func (db *DB) Workers() int { return db.cfg.Workers }

// CreateTable implements engine.DB.
func (db *DB) CreateTable(name string) engine.TableID {
	db.tables = append(db.tables, common.NewMVStore())
	return engine.TableID(len(db.tables) - 1)
}

// CreateHashIndex implements engine.DB.
func (db *DB) CreateHashIndex(name string, buckets int) engine.IndexID {
	return db.indexes.CreateHash(buckets)
}

// CreateOrderedIndex implements engine.DB.
func (db *DB) CreateOrderedIndex(name string) engine.IndexID {
	return db.indexes.CreateOrdered()
}

// Worker implements engine.DB.
func (db *DB) Worker(id int) engine.Worker { return db.workers[id] }

// Stats implements engine.DB.
func (db *DB) Stats() engine.Stats { return common.StatsOf(db.bases()) }

// bases collects the workers' shared bookkeeping for aggregation.
func (db *DB) bases() []*common.WorkerBase {
	bases := make([]*common.WorkerBase, len(db.workers))
	for i, w := range db.workers {
		bases[i] = &w.WorkerBase
	}
	return bases
}

// CommitsLive implements engine.DB.
func (db *DB) CommitsLive() uint64 {
	var n uint64
	for _, w := range db.workers {
		n += w.CommitsLive()
	}
	return n
}

// horizon returns the version-pruning watermark: the minimum active begin
// timestamp across workers.
func (db *DB) horizon() uint64 {
	min := db.counter.Load()
	for _, w := range db.workers {
		if a := w.active.Load(); a < min {
			min = a
		}
	}
	return min
}

type worker struct {
	common.WorkerBase
	db     *DB
	tx     tx
	active atomic.Uint64 // begin timestamp of the in-flight transaction
	mark   uint64        // this worker's TxMark
}

func (w *worker) Run(fn func(tx engine.Tx) error) error {
	w.mark = common.TxMarkBit | uint64(w.ID+1)
	return w.RunLoop(func() error {
		t := &w.tx
		// Pin the pruning horizon before choosing the begin timestamp:
		// after the pin is visible no pruner can cut below it, and the
		// begin timestamp (a later counter read) is at least the pin.
		w.active.Store(w.db.counter.Load())
		t.reset(w.db.counter.Load())
		w.active.Store(t.begin)
		var err error
		if err = fn(t); err != nil {
			t.finish(0)
		} else {
			err = t.commit()
		}
		w.active.Store(common.TSInf)
		return err
	})
}

// RunRO implements engine.Worker: a read-only transaction is a snapshot
// read at the begin timestamp with no validation.
func (w *worker) RunRO(fn func(tx engine.Tx) error) error {
	w.mark = common.TxMarkBit | uint64(w.ID+1)
	return w.RunLoop(func() error {
		t := &w.tx
		w.active.Store(w.db.counter.Load()) // pin before choosing begin
		t.reset(w.db.counter.Load())
		t.snapshot = true
		w.active.Store(t.begin)
		err := fn(t)
		t.finish(0)
		w.active.Store(common.TSInf)
		return err
	})
}

func (w *worker) Idle() { runtime.Gosched() }

type readEnt struct {
	rec *common.MVRecord
	ver *common.MVVersion // nil = observed absent
}

type writeEnt struct {
	tbl engine.TableID
	rid engine.RecordID
	rec *common.MVRecord
	old *common.MVVersion // End-locked predecessor (nil for inserts)
	nv  *common.MVVersion
	del bool
}

type tx struct {
	db *DB
	w  *worker
	common.TxIndex
	begin    uint64
	snapshot bool
	reads    []readEnt
	writes   []writeEnt
	own      map[uint64]int
}

func ownKey(t engine.TableID, r engine.RecordID) uint64 {
	return uint64(t)<<48 | uint64(r)&0xffffffffffff
}

func (t *tx) reset(begin uint64) {
	t.begin = begin
	t.snapshot = false
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
	clear(t.own)
	t.TxIndex.Reset(t.db.indexes)
}

func (t *tx) Read(tb engine.TableID, r engine.RecordID) ([]byte, error) {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		w := &t.writes[i]
		if w.del {
			return nil, engine.ErrNotFound
		}
		return w.nv.Data, nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return nil, engine.ErrNotFound
	}
	v := rec.Visible(t.begin)
	if !t.snapshot {
		t.reads = append(t.reads, readEnt{rec: rec, ver: v})
	}
	if v == nil || v.Data == nil {
		return nil, engine.ErrNotFound
	}
	return v.Data, nil
}

// stageWrite End-locks the latest version (first-writer-wins) and installs
// an uncommitted new version at the chain head.
func (t *tx) stageWrite(tb engine.TableID, r engine.RecordID, data []byte, del bool) (*writeEnt, error) {
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return nil, engine.ErrNotFound
	}
	old := rec.Latest.Load()
	if old != nil {
		if old.Begin.Load()&common.TxMarkBit != 0 {
			return nil, engine.ErrAborted // uncommitted head: w-w conflict
		}
		if old.Begin.Load() > t.begin {
			return nil, engine.ErrAborted // overwritten since our snapshot
		}
		if !old.End.CompareAndSwap(common.TSInf, t.w.mark) {
			return nil, engine.ErrAborted // locked or already overwritten
		}
	}
	nv := &common.MVVersion{Data: data}
	nv.Begin.Store(t.w.mark)
	nv.End.Store(common.TSInf)
	nv.Sstamp.Store(common.TSInf)
	nv.Next.Store(old)
	if !rec.Latest.CompareAndSwap(old, nv) {
		if old != nil {
			old.End.Store(common.TSInf)
		}
		return nil, engine.ErrAborted
	}
	t.writes = append(t.writes, writeEnt{tbl: tb, rid: r, rec: rec, old: old, nv: nv, del: del})
	i := len(t.writes) - 1
	t.own[ownKey(tb, r)] = i
	return &t.writes[i], nil
}

func (t *tx) Update(tb engine.TableID, r engine.RecordID, size int) ([]byte, error) {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		w := &t.writes[i]
		if w.del {
			return nil, engine.ErrNotFound
		}
		if size >= 0 && size != len(w.nv.Data) {
			nb := make([]byte, size)
			copy(nb, w.nv.Data)
			w.nv.Data = nb
		}
		return w.nv.Data, nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return nil, engine.ErrNotFound
	}
	v := rec.Visible(t.begin)
	t.reads = append(t.reads, readEnt{rec: rec, ver: v})
	if v == nil || v.Data == nil {
		return nil, engine.ErrNotFound
	}
	if size < 0 {
		size = len(v.Data)
	}
	buf := make([]byte, size)
	copy(buf, v.Data)
	w, err := t.stageWrite(tb, r, buf, false)
	if err != nil {
		return nil, err
	}
	return w.nv.Data, nil
}

func (t *tx) Write(tb engine.TableID, r engine.RecordID, size int) ([]byte, error) {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		w := &t.writes[i]
		w.del = false
		if size != len(w.nv.Data) {
			w.nv.Data = make([]byte, size)
		}
		return w.nv.Data, nil
	}
	w, err := t.stageWrite(tb, r, make([]byte, size), false)
	if err != nil {
		return nil, err
	}
	return w.nv.Data, nil
}

func (t *tx) Insert(tb engine.TableID, size int) (engine.RecordID, []byte, error) {
	store := t.db.tables[tb]
	rid := store.Alloc()
	w, err := t.stageWrite(tb, rid, make([]byte, size), false)
	if err != nil {
		return 0, nil, err
	}
	return rid, w.nv.Data, nil
}

func (t *tx) Delete(tb engine.TableID, r engine.RecordID) error {
	if i, ok := t.own[ownKey(tb, r)]; ok {
		t.writes[i].del = true
		t.writes[i].nv.Data = nil
		return nil
	}
	rec := t.db.tables[tb].Get(r)
	if rec == nil {
		return engine.ErrNotFound
	}
	v := rec.Visible(t.begin)
	t.reads = append(t.reads, readEnt{rec: rec, ver: v})
	if v == nil || v.Data == nil {
		return engine.ErrNotFound
	}
	_, err := t.stageWrite(tb, r, nil, true)
	return err
}

func (t *tx) IndexGet(i engine.IndexID, key uint64) (engine.RecordID, error) {
	return t.TxIndex.Get(i, key)
}
func (t *tx) IndexScan(i engine.IndexID, lo, hi uint64, limit int, fn func(uint64, engine.RecordID) bool) error {
	return t.TxIndex.Scan(i, lo, hi, limit, fn)
}
func (t *tx) IndexInsert(i engine.IndexID, key uint64, r engine.RecordID) error {
	return t.TxIndex.Insert(i, key, r)
}
func (t *tx) IndexDelete(i engine.IndexID, key uint64, r engine.RecordID) error {
	return t.TxIndex.Delete(i, key, r)
}

// commit acquires the commit timestamp from the shared counter, validates
// the read set at that timestamp, and installs the new versions.
func (t *tx) commit() error {
	ct := t.db.counter.Add(1)
	ok := t.TxIndex.Validate()
	if ok {
		for i := range t.reads {
			r := &t.reads[i]
			if !t.readValid(r, ct) {
				ok = false
				break
			}
		}
	}
	if !ok {
		t.finish(0)
		return engine.ErrAborted
	}
	t.finish(ct)
	return nil
}

// readValid checks that the version read is still the visible version at
// the commit timestamp.
func (t *tx) readValid(r *readEnt, ct uint64) bool {
	if r.ver == nil {
		// Observed absent: still absent at ct? A version we installed
		// ourselves is fine.
		v := r.rec.Visible(ct)
		return v == nil || v.Data == nil
	}
	end := r.ver.End.Load()
	if end == common.TSInf {
		return true // still the latest version
	}
	if end&common.TxMarkBit != 0 {
		return end == t.w.mark // pending overwrite: valid only if ours
	}
	return end > ct
}

// finish installs (ct > 0) or rolls back (ct == 0) the staged versions.
func (t *tx) finish(ct uint64) {
	horizon := t.db.horizon()
	for i := range t.writes {
		w := &t.writes[i]
		if ct > 0 {
			w.nv.Begin.Store(ct)
			if w.old != nil {
				w.old.Sstamp.Store(ct)
				w.old.End.Store(ct)
			}
			w.rec.Prune(horizon)
		} else {
			// Roll back: unlink our version and unlock the predecessor.
			w.rec.Latest.CompareAndSwap(w.nv, w.old)
			if w.old != nil {
				w.old.End.Store(common.TSInf)
			}
		}
	}
	if ct > 0 {
		t.TxIndex.Committed()
	} else {
		t.TxIndex.Aborted()
	}
}
