// Package cicadaeng adapts the Cicada engine (internal/core) to the
// scheme-agnostic engine.DB interface used by the workloads and the
// benchmark harness, mirroring the paper's thin DBx1000 compatibility
// wrapper (§4.2).
//
// Two index configurations are supported, matching the paper's experiments:
//
//   - Multi-version indexes (engine.Config.PhantomAvoidance = true): index
//     nodes live in Cicada tables, updates are deferred until validation,
//     and index node validation precludes phantoms (Figures 3, 5–11).
//   - Single-version indexes without phantom avoidance
//     (PhantomAvoidance = false): a conventional concurrent hash table and
//     skip list with index updates deferred until after commit (Figure 4).
package cicadaeng

import (
	"errors"

	"cicada/internal/core"
	"cicada/internal/engine"
	"cicada/internal/index"
	"cicada/internal/storage"
	"cicada/internal/svindex"
	"cicada/internal/wal"
)

// DB is a Cicada database exposed through the engine.DB interface.
type DB struct {
	eng     *core.Engine
	cfg     engine.Config
	tables  []*core.Table
	indexes []dbIndex
	workers []*worker
}

type dbIndex struct {
	mv      index.MVIndex // PhantomAvoidance mode
	svHash  *svindex.Hash // single-version mode
	svTree  *svindex.SkipList
	ordered bool
}

// New creates a Cicada DB. coreOpts.Workers, coreOpts.Metrics, and
// coreOpts.Trace are overridden from cfg.
func New(cfg engine.Config, coreOpts core.Options) *DB {
	coreOpts.Workers = cfg.Workers
	coreOpts.Metrics = cfg.Metrics
	coreOpts.Trace = cfg.Trace
	db := &DB{eng: core.NewEngine(coreOpts), cfg: cfg}
	db.workers = make([]*worker, cfg.Workers)
	for i := range db.workers {
		db.workers[i] = &worker{db: db, w: db.eng.Worker(i)}
	}
	return db
}

// Engine exposes the underlying core engine (for factor-analysis benches).
func (db *DB) Engine() *core.Engine { return db.eng }

// AttachWAL makes the DB durable: it starts internal/wal logger threads in
// dir and installs the redo-logging hook, so every later commit is logged
// and group-committed (§3.7; docs/DURABILITY.md). Call it after New and
// before running transactions; close the returned manager to flush and
// stop logging. Recovery goes through wal.Recover on the core engine of a
// freshly constructed DB with the same schema.
func (db *DB) AttachWAL(dir string, opts wal.Options) (*wal.Manager, error) {
	opts.Dir = dir
	return wal.Attach(db.eng, opts)
}

// Name implements engine.DB.
func (db *DB) Name() string { return "Cicada" }

// Workers implements engine.DB.
func (db *DB) Workers() int { return db.cfg.Workers }

// CreateTable implements engine.DB.
func (db *DB) CreateTable(name string) engine.TableID {
	t := db.eng.CreateTable(name)
	db.tables = append(db.tables, t)
	return engine.TableID(len(db.tables) - 1)
}

// CreateHashIndex implements engine.DB.
func (db *DB) CreateHashIndex(name string, buckets int) engine.IndexID {
	var ix dbIndex
	if db.cfg.PhantomAvoidance {
		ix.mv = index.NewMVHash(db.eng, "__idx_"+name, buckets, false)
	} else {
		ix.svHash = svindex.NewHash(buckets)
	}
	db.indexes = append(db.indexes, ix)
	return engine.IndexID(len(db.indexes) - 1)
}

// CreateOrderedIndex implements engine.DB.
func (db *DB) CreateOrderedIndex(name string) engine.IndexID {
	var ix dbIndex
	ix.ordered = true
	if db.cfg.PhantomAvoidance {
		ix.mv = index.NewMVBTree(db.eng, "__idx_"+name, false)
	} else {
		ix.svTree = svindex.NewSkipList()
	}
	db.indexes = append(db.indexes, ix)
	return engine.IndexID(len(db.indexes) - 1)
}

// Worker implements engine.DB.
func (db *DB) Worker(id int) engine.Worker { return db.workers[id] }

// Stats implements engine.DB.
func (db *DB) Stats() engine.Stats {
	s := db.eng.Stats()
	return engine.Stats{
		Commits:    s.Commits,
		Aborts:     s.Aborts,
		UserAborts: s.UserAborts,
		AbortTime:  s.AbortTime,
		BusyTime:   s.BusyTime,
	}
}

// CommitsLive implements engine.DB.
func (db *DB) CommitsLive() uint64 { return db.eng.CommitsLive() }

type worker struct {
	db *DB
	w  *core.Worker
	tx tx
}

func (w *worker) Run(fn func(tx engine.Tx) error) error {
	w.tx.db = w.db
	return mapErr(w.w.Run(func(ct *core.Txn) error {
		w.tx.ct = ct
		w.tx.svOps = w.tx.svOps[:0]
		w.tx.hooked = false
		return unmapErr(fn(&w.tx))
	}))
}

func (w *worker) RunRO(fn func(tx engine.Tx) error) error {
	w.tx.db = w.db
	// A read-only Cicada transaction cannot abort on conflicts, but in the
	// single-version index configuration an index entry can point at a
	// record not yet visible at the snapshot; the workload signals a retry,
	// which succeeds once the snapshot horizon advances. The retry is
	// bounded: the horizon only advances when every worker runs
	// maintenance, so if peers have stopped (e.g. benchmark shutdown) the
	// abort is returned to the caller instead of spinning forever.
	var err error
	for attempt := 0; attempt < 1000; attempt++ {
		err = mapErr(w.w.RunRO(func(ct *core.Txn) error {
			w.tx.ct = ct
			w.tx.svOps = w.tx.svOps[:0]
			w.tx.hooked = false
			return unmapErr(fn(&w.tx))
		}))
		if !errors.Is(err, engine.ErrAborted) {
			return err
		}
		w.w.Idle()
	}
	return err
}

func (w *worker) Idle() { w.w.Idle() }

// ReadDirect implements engine.DirectReader (Appendix B): a single-record
// read without a transaction, valid because committed version data is
// immutable in Cicada.
func (w *worker) ReadDirect(tb engine.TableID, r engine.RecordID) ([]byte, bool) {
	return w.w.ReadDirect(w.db.tables[tb], storage.RecordID(r))
}

// mapErr converts core errors to engine errors on the way out.
func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, core.ErrAborted):
		return engine.ErrAborted
	case errors.Is(err, core.ErrNotFound):
		return engine.ErrNotFound
	}
	return err
}

// unmapErr converts engine errors from workload callbacks into core errors
// so core.Worker.Run's retry logic sees its own sentinel.
func unmapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, engine.ErrAborted):
		return core.ErrAborted
	}
	return err
}

// svOp is a deferred single-version index update (Figure 4 mode).
type svOp struct {
	idx    engine.IndexID
	key    uint64
	rid    engine.RecordID
	insert bool
}

type tx struct {
	db     *DB
	ct     *core.Txn
	svOps  []svOp
	hooked bool
}

func (t *tx) table(id engine.TableID) *core.Table { return t.db.tables[id] }

func (t *tx) Read(tb engine.TableID, r engine.RecordID) ([]byte, error) {
	d, err := t.ct.Read(t.table(tb), storage.RecordID(r))
	return d, mapErr(err)
}

func (t *tx) Update(tb engine.TableID, r engine.RecordID, size int) ([]byte, error) {
	d, err := t.ct.Update(t.table(tb), storage.RecordID(r), size)
	return d, mapErr(err)
}

func (t *tx) Write(tb engine.TableID, r engine.RecordID, size int) ([]byte, error) {
	d, err := t.ct.Write(t.table(tb), storage.RecordID(r), size)
	return d, mapErr(err)
}

func (t *tx) Insert(tb engine.TableID, size int) (engine.RecordID, []byte, error) {
	rid, d, err := t.ct.Insert(t.table(tb), size)
	return engine.RecordID(rid), d, mapErr(err)
}

func (t *tx) Delete(tb engine.TableID, r engine.RecordID) error {
	return mapErr(t.ct.Delete(t.table(tb), storage.RecordID(r)))
}

func (t *tx) IndexGet(i engine.IndexID, key uint64) (engine.RecordID, error) {
	ix := &t.db.indexes[i]
	if ix.mv != nil {
		rid, err := ix.mv.Get(t.ct, key)
		return engine.RecordID(rid), mapErr(err)
	}
	// Single-version mode: check own deferred inserts first.
	for j := len(t.svOps) - 1; j >= 0; j-- {
		op := &t.svOps[j]
		if op.idx == i && op.key == key {
			if op.insert {
				return op.rid, nil
			}
			return 0, engine.ErrNotFound
		}
	}
	if ix.svHash != nil {
		rid, ok, _ := ix.svHash.Get(key)
		if !ok {
			return 0, engine.ErrNotFound
		}
		return rid, nil
	}
	rid, ok := ix.svTree.Get(key, nil)
	if !ok {
		return 0, engine.ErrNotFound
	}
	return rid, nil
}

func (t *tx) IndexScan(i engine.IndexID, lo, hi uint64, limit int, fn func(key uint64, r engine.RecordID) bool) error {
	ix := &t.db.indexes[i]
	if !ix.ordered {
		return index.ErrUnsupported
	}
	if ix.mv != nil {
		return mapErr(ix.mv.Scan(t.ct, lo, hi, limit, func(k uint64, r storage.RecordID) bool {
			return fn(k, engine.RecordID(r))
		}))
	}
	ix.svTree.Scan(lo, hi, limit, nil, fn)
	return nil
}

func (t *tx) IndexInsert(i engine.IndexID, key uint64, r engine.RecordID) error {
	ix := &t.db.indexes[i]
	if ix.mv != nil {
		return mapErr(ix.mv.Insert(t.ct, key, storage.RecordID(r)))
	}
	t.deferSV(svOp{idx: i, key: key, rid: r, insert: true})
	return nil
}

func (t *tx) IndexDelete(i engine.IndexID, key uint64, r engine.RecordID) error {
	ix := &t.db.indexes[i]
	if ix.mv != nil {
		return mapErr(ix.mv.Delete(t.ct, key, storage.RecordID(r)))
	}
	t.deferSV(svOp{idx: i, key: key, rid: r})
	return nil
}

// deferSV queues a single-version index update to be applied after the
// transaction commits (deferred index updates, Figure 4 mode). The tx is
// its own commit hook (core.TxnHook), so registration allocates nothing.
func (t *tx) deferSV(op svOp) {
	t.svOps = append(t.svOps, op)
	if t.hooked {
		return
	}
	t.hooked = true
	t.ct.AddHook(t)
}

// TxnPreCommit implements core.TxnHook; single-version index updates have no
// validation-time work.
func (t *tx) TxnPreCommit(*core.Txn) error { return nil }

// TxnCommitted implements core.TxnHook: apply the deferred single-version
// index updates now that the transaction's outcome is decided.
func (t *tx) TxnCommitted(*core.Txn) {
	for _, op := range t.svOps {
		ix := &t.db.indexes[op.idx]
		switch {
		case ix.svHash != nil && op.insert:
			ix.svHash.Insert(op.key, op.rid)
		case ix.svHash != nil:
			ix.svHash.Delete(op.key, op.rid)
		case op.insert:
			ix.svTree.Insert(op.key, op.rid)
		default:
			ix.svTree.Delete(op.key, op.rid)
		}
	}
}

// TxnAborted implements core.TxnHook; an aborted transaction's deferred
// updates are simply dropped.
func (t *tx) TxnAborted(*core.Txn) {}
