package cicadaeng

import (
	"encoding/binary"
	"errors"
	"testing"

	"cicada/internal/core"
	"cicada/internal/engine"
	"cicada/internal/wal"
)

func newDB(t *testing.T, workers int, phantom bool) *DB {
	t.Helper()
	return New(engine.Config{Workers: workers, PhantomAvoidance: phantom}, core.DefaultOptions(workers))
}

func TestErrorMapping(t *testing.T) {
	db := newDB(t, 1, true)
	tbl := db.CreateTable("t")
	w := db.Worker(0)
	// core.ErrNotFound must surface as engine.ErrNotFound.
	err := w.Run(func(tx engine.Tx) error {
		_, err := tx.Read(tbl, 12345)
		return err
	})
	if !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("unmapped error: %v", err)
	}
	// Application errors pass through unchanged.
	sentinel := errors.New("app error")
	if err := w.Run(func(tx engine.Tx) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("app error mangled: %v", err)
	}
}

func TestWorkloadAbortSignalRetries(t *testing.T) {
	db := newDB(t, 1, true)
	w := db.Worker(0)
	// A workload returning engine.ErrAborted asks for a retry; Run must
	// loop, not return it.
	attempts := 0
	err := w.Run(func(tx engine.Tx) error {
		attempts++
		if attempts < 3 {
			return engine.ErrAborted
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("err=%v attempts=%d", err, attempts)
	}
}

func TestSVDeferredOverlay(t *testing.T) {
	db := newDB(t, 1, false) // single-version deferred index mode
	tbl := db.CreateTable("t")
	hidx := db.CreateHashIndex("h", 64)
	oidx := db.CreateOrderedIndex("o")
	w := db.Worker(0)

	if err := w.Run(func(tx engine.Tx) error {
		rid, buf, err := tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf, 7)
		if err := tx.IndexInsert(hidx, 1, rid); err != nil {
			return err
		}
		if err := tx.IndexInsert(oidx, 1, rid); err != nil {
			return err
		}
		// Own deferred insert is visible to point lookups.
		got, err := tx.IndexGet(hidx, 1)
		if err != nil || got != rid {
			t.Errorf("own hash get: %d %v", got, err)
		}
		// Delete then get: the overlay hides the pending insert.
		if err := tx.IndexDelete(hidx, 1, rid); err != nil {
			return err
		}
		if _, err := tx.IndexGet(hidx, 1); !errors.Is(err, engine.ErrNotFound) {
			t.Errorf("own deferred delete not honored: %v", err)
		}
		// Re-insert so the commit applies it.
		return tx.IndexInsert(hidx, 1, rid)
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(tx engine.Tx) error {
		if _, err := tx.IndexGet(hidx, 1); err != nil {
			return err
		}
		n := 0
		if err := tx.IndexScan(oidx, 0, 10, -1, func(uint64, engine.RecordID) bool { n++; return true }); err != nil {
			return err
		}
		if n != 1 {
			t.Errorf("ordered entries: %d", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestScanOnHashIndexUnsupported(t *testing.T) {
	for _, phantom := range []bool{true, false} {
		db := newDB(t, 1, phantom)
		db.CreateTable("t")
		hidx := db.CreateHashIndex("h", 64)
		err := db.Worker(0).Run(func(tx engine.Tx) error {
			return tx.IndexScan(hidx, 0, 10, -1, func(uint64, engine.RecordID) bool { return true })
		})
		if err == nil {
			t.Fatalf("phantom=%v: scan on hash index succeeded", phantom)
		}
	}
}

func TestReadDirectCapability(t *testing.T) {
	db := newDB(t, 1, true)
	tbl := db.CreateTable("t")
	w := db.Worker(0)
	var rid engine.RecordID
	if err := w.Run(func(tx engine.Tx) error {
		r, buf, err := tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf, 99)
		rid = r
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	dr, ok := w.(engine.DirectReader)
	if !ok {
		t.Fatal("cicada worker does not implement DirectReader")
	}
	engine.WarmUp(db)
	d, ok := dr.ReadDirect(tbl, rid)
	if !ok || binary.LittleEndian.Uint64(d) != 99 {
		t.Fatalf("direct read: %v %v", d, ok)
	}
	if _, ok := dr.ReadDirect(tbl, rid+100); ok {
		t.Fatal("direct read of absent record succeeded")
	}
}

func TestStatsAndCommitsLive(t *testing.T) {
	db := newDB(t, 2, true)
	tbl := db.CreateTable("t")
	for i := 0; i < 5; i++ {
		if err := db.Worker(0).Run(func(tx engine.Tx) error {
			_, _, err := tx.Insert(tbl, 1)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.CommitsLive(); got != 5 {
		t.Fatalf("CommitsLive = %d", got)
	}
	if s := db.Stats(); s.Commits != 5 {
		t.Fatalf("Stats.Commits = %d", s.Commits)
	}
	if db.Name() != "Cicada" || db.Workers() != 2 {
		t.Fatalf("identity: %s %d", db.Name(), db.Workers())
	}
}

func TestAttachWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := newDB(t, 1, true)
	tbl := db.CreateTable("t")
	m, err := db.AttachWAL(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var rid engine.RecordID
	if err := db.Worker(0).Run(func(tx engine.Tx) error {
		r, buf, err := tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf, 424242)
		rid = r
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Recover through the core engine of a fresh DB with the same schema.
	db2 := newDB(t, 1, true)
	tbl2 := db2.CreateTable("t")
	if _, err := wal.Recover(db2.Engine(), dir); err != nil {
		t.Fatal(err)
	}
	if err := db2.Worker(0).Run(func(tx engine.Tx) error {
		d, err := tx.Read(tbl2, rid)
		if err != nil {
			return err
		}
		if v := binary.LittleEndian.Uint64(d); v != 424242 {
			t.Errorf("recovered %d", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
