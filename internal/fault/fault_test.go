package fault

import (
	"bytes"
	"errors"
	"testing"
)

// TestDisabledHooksAreNoOps: with no registry, Inject is nil and Write is a
// transparent pass-through.
func TestDisabledHooksAreNoOps(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled with no registry")
	}
	if err := Inject(WALBatchFsync); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	var buf bytes.Buffer
	n, err := Write(WALGatherWrite, &buf, []byte("hello"))
	if n != 5 || err != nil || buf.String() != "hello" {
		t.Fatalf("Write: n=%d err=%v buf=%q", n, err, buf.String())
	}
}

// TestDisabledHookAllocs: the disabled hooks must not allocate — they sit
// on the durability path of every commit when a WAL is attached.
func TestDisabledHookAllocs(t *testing.T) {
	Disable()
	var sink bytes.Buffer
	payload := []byte("x")
	sink.Write(payload) // pre-grow so the measured runs reuse capacity
	if n := testing.AllocsPerRun(100, func() {
		_ = Inject(CoreLog)
		sink.Reset()
		_, _ = Write(WALGatherWrite, &sink, payload)
	}); n != 0 {
		t.Fatalf("disabled hooks allocate %v/op", n)
	}
}

// TestErrorOnceAndNTimes: After/Times schedule errors deterministically.
func TestErrorOnceAndNTimes(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(Trigger{Site: WALBatchFsync, Action: Error, After: 2, Times: 3})
	Enable(r)
	defer Disable()
	for pass := 1; pass <= 8; pass++ {
		err := Inject(WALBatchFsync)
		wantErr := pass >= 3 && pass <= 5
		if (err != nil) != wantErr {
			t.Fatalf("pass %d: err=%v want fired=%v", pass, err, wantErr)
		}
		if wantErr && !errors.Is(err, ErrInjected) {
			t.Fatalf("pass %d: %v not ErrInjected", pass, err)
		}
	}
	if got := r.Hits(WALBatchFsync); got != 8 {
		t.Fatalf("hits %d", got)
	}
}

// TestShortWriteWritesStrictPrefix: a short write leaves a strict prefix
// behind and reports ErrInjected; the next write passes through.
func TestShortWriteWritesStrictPrefix(t *testing.T) {
	r := NewRegistry(42)
	r.Arm(Trigger{Site: WALGatherWrite, Action: ShortWrite})
	Enable(r)
	defer Disable()
	payload := []byte("0123456789abcdef")
	var buf bytes.Buffer
	n, err := Write(WALGatherWrite, &buf, payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err %v", err)
	}
	if n <= 0 || n >= len(payload) || buf.Len() != n {
		t.Fatalf("cut %d of %d (buffered %d): not a strict mid-body prefix", n, len(payload), buf.Len())
	}
	if !bytes.Equal(buf.Bytes(), payload[:n]) {
		t.Fatal("prefix mismatch")
	}
	if n2, err := Write(WALGatherWrite, &buf, payload); err != nil || n2 != len(payload) {
		t.Fatalf("post-trigger write: n=%d err=%v", n2, err)
	}
}

// TestTornWriteCrashesAndFreezes: a torn write leaves a prefix, crashes the
// registry, and every later hook at every site fails without I/O.
func TestTornWriteCrashesAndFreezes(t *testing.T) {
	r := NewRegistry(7)
	r.Arm(Trigger{Site: WALGatherWrite, Action: TornWrite, After: 1})
	Enable(r)
	defer Disable()
	var buf bytes.Buffer
	if n, err := Write(WALGatherWrite, &buf, []byte("first")); n != 5 || err != nil {
		t.Fatalf("pre-trigger write: n=%d err=%v", n, err)
	}
	n, err := Write(WALGatherWrite, &buf, []byte("0123456789"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write err %v", err)
	}
	if n <= 0 || n >= 10 {
		t.Fatalf("torn cut %d not mid-body", n)
	}
	if !r.Crashed() || r.CrashSite() != WALGatherWrite {
		t.Fatalf("crashed=%v site=%q", r.Crashed(), r.CrashSite())
	}
	select {
	case <-r.CrashSignal():
	default:
		t.Fatal("crash signal not closed")
	}
	frozen := buf.Len()
	if _, err := Write(CheckpointWrite, &buf, []byte("more")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write err %v", err)
	}
	if buf.Len() != frozen {
		t.Fatal("post-crash write performed I/O")
	}
	if err := Inject(WALBatchFsync); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash inject err %v", err)
	}
}

// TestPanicAction: Panic crashes the registry and panics with *CrashPanic.
func TestPanicAction(t *testing.T) {
	r := NewRegistry(3)
	r.Arm(Trigger{Site: CoreLog, Action: Panic})
	Enable(r)
	defer Disable()
	defer func() {
		v := recover()
		cp, ok := v.(*CrashPanic)
		if !ok || cp.Site != CoreLog {
			t.Fatalf("recovered %v", v)
		}
		if !r.Crashed() {
			t.Fatal("panic did not freeze the registry")
		}
	}()
	_ = Inject(CoreLog)
	t.Fatal("unreachable")
}

// TestDeterministicSchedule: identical seeds produce identical triggers and
// identical torn-write cut points.
func TestDeterministicSchedule(t *testing.T) {
	run := func() (Trigger, int) {
		r := NewRegistry(99)
		trig := r.ArmRandomCrash(10)
		Enable(r)
		defer Disable()
		var buf bytes.Buffer
		payload := make([]byte, 64)
		for i := 0; i < 50; i++ {
			if _, err := Write(trig.Site, &buf, payload); err != nil {
				break
			}
		}
		return trig, buf.Len()
	}
	t1, n1 := run()
	t2, n2 := run()
	if t1 != t2 || n1 != n2 {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", t1, n1, t2, n2)
	}
}

// TestSitesCatalogComplete: the catalog function returns every declared
// site exactly once (docs/DURABILITY.md mirrors this list).
func TestSitesCatalogComplete(t *testing.T) {
	seen := map[Site]bool{}
	for _, s := range Sites() {
		if seen[s] {
			t.Fatalf("duplicate site %q", s)
		}
		seen[s] = true
	}
	for _, s := range []Site{WALGatherWrite, WALBatchFsync, WALRotate, CheckpointWrite,
		CheckpointSync, CheckpointRename, CheckpointPurge, ReplayRead, CoreLog} {
		if !seen[s] {
			t.Fatalf("site %q missing from catalog", s)
		}
	}
}
