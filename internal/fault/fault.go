// Package fault provides named failpoints for crash and fault injection in
// the durability path (and any other subsystem that opts in). Production
// code threads calls like
//
//	if err := fault.Inject(fault.WALBatchFsync); err != nil { ... }
//	n, err := fault.Write(fault.WALGatherWrite, f, buf)
//
// through its I/O sites. With no registry enabled — the default — every
// hook is a single atomic pointer load that compares against nil and
// returns: no allocation, no branch on shared mutable state, nothing on the
// transaction hot path (the engine's zero-allocation budgets in
// internal/core/alloc_test.go run with the hooks compiled in).
//
// Tests enable a Registry holding armed Triggers. A trigger names a Site, a
// deterministic firing schedule (skip the first After passes, then fire
// Times times), and an Action:
//
//   - Error: return ErrInjected without side effects ("error-once" /
//     "error-n-times" via Times).
//   - ShortWrite: write a seed-chosen strict prefix of the buffer, then
//     return ErrInjected — a short write the caller must treat as failed.
//   - TornWrite: write a strict prefix of the buffer, then crash the
//     registry — the on-disk state ends with a record truncated mid-body,
//     exactly what a power failure during a write leaves behind.
//   - Crash: crash the registry without writing.
//   - Panic: crash the registry and panic with *CrashPanic, for tests that
//     exercise unwind paths. The other actions never panic.
//
// "Crashing" freezes the registry: every subsequent hook at every site
// returns ErrCrashed and performs no I/O, so the files on disk are frozen
// at the crash instant — a process death simulated in-process. The torture
// harness (internal/wal's RunTorture) then recovers from that frozen state
// and checks the durability contract (see docs/DURABILITY.md for the
// failure model and the full failpoint catalog).
//
// All scheduling is deterministic given the registry seed: the same seed
// and the same sequence of hook calls fire the same triggers and cut torn
// writes at the same offsets.
package fault

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Site names one failpoint. Sites are registered by the packages that call
// the hooks; the catalog below lists every site in the repository (also
// documented in docs/DURABILITY.md).
type Site string

// The failpoint catalog.
const (
	// WALChunkSeal covers sealing a filled buffer chunk onto a worker's
	// staged redo chain, before the frame that would overflow it is
	// placed (internal/wal, stage.submit). A failure here aborts the
	// submitting transaction with nothing staged.
	WALChunkSeal Site = "wal/chunk-seal"
	// WALGatherWrite covers the group committer's gathered write of one
	// staged chunk to the logger's file (internal/wal, flushLocked).
	// Write site: supports torn and short writes.
	WALGatherWrite Site = "wal/gather-write"
	// WALBatchFsync covers the per-interval batch fsync that makes a
	// flushed batch durable (internal/wal, syncLocked).
	WALBatchFsync Site = "wal/batch-fsync"
	// WALRotate covers sealing a full redo chunk (sync + rename + dir
	// sync) before opening its successor (internal/wal, rotateLocked).
	WALRotate Site = "wal/rotate"
	// CheckpointWrite covers writing one record into a checkpoint temp
	// file (internal/wal, Manager.Checkpoint).
	CheckpointWrite Site = "wal/checkpoint-write"
	// CheckpointSync covers the temp file fsync before install.
	CheckpointSync Site = "wal/checkpoint-sync"
	// CheckpointRename covers the atomic install rename
	// (checkpoint-*.tmp → checkpoint-*.ckpt) and the directory fsync
	// that makes it durable.
	CheckpointRename Site = "wal/checkpoint-rename"
	// CheckpointPurge covers post-checkpoint purging of sealed redo
	// chunks and superseded checkpoints.
	CheckpointPurge Site = "wal/checkpoint-purge"
	// ReplayRead covers reading a redo log or checkpoint file during
	// recovery (internal/wal, Recover).
	ReplayRead Site = "wal/replay-read"
	// CoreLog covers the engine's durability hook: the hand-off of a
	// validated transaction's write set to the logger, between validation
	// and the write phase (internal/core, Txn.Commit step 6).
	CoreLog Site = "core/log"
)

// Sites returns the full failpoint catalog.
func Sites() []Site {
	return []Site{WALChunkSeal, WALGatherWrite, WALBatchFsync, WALRotate,
		CheckpointWrite, CheckpointSync, CheckpointRename, CheckpointPurge,
		ReplayRead, CoreLog}
}

// Action is what a trigger does when it fires.
type Action uint8

const (
	// Error returns ErrInjected from the hook; no I/O happens.
	Error Action = iota
	// ShortWrite writes a strict prefix, then returns ErrInjected. At a
	// non-write site it behaves like Error.
	ShortWrite
	// TornWrite writes a strict prefix, then crashes the registry. At a
	// non-write site it behaves like Crash.
	TornWrite
	// Crash freezes the registry: this hook and every later one return
	// ErrCrashed without performing I/O.
	Crash
	// Panic freezes the registry like Crash, then panics with
	// *CrashPanic. Only tests that recover the panic should arm it.
	Panic
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Error:
		return "error"
	case ShortWrite:
		return "short-write"
	case TornWrite:
		return "torn-write"
	case Crash:
		return "crash"
	case Panic:
		return "panic"
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// Errors returned by fired triggers. Production code should treat both as
// it treats any I/O error from the wrapped operation.
var (
	// ErrInjected reports a fired Error or ShortWrite trigger.
	ErrInjected = errors.New("fault: injected error")
	// ErrCrashed reports a hook called on a crashed (frozen) registry.
	ErrCrashed = errors.New("fault: crashed at failpoint")
)

// CrashPanic is the panic value of a fired Panic trigger.
type CrashPanic struct {
	Site Site
}

func (c *CrashPanic) Error() string { return fmt.Sprintf("fault: crash panic at %s", c.Site) }

// Trigger arms one failpoint.
type Trigger struct {
	// Site is the failpoint to arm.
	Site Site
	// Action is what happens when the trigger fires.
	Action Action
	// After skips the first After passes through the site before firing,
	// so a crash can be planted "N appends from now".
	After int
	// Times is how many passes fire for Error/ShortWrite (0 means once).
	// Crash-family actions freeze the registry on the first firing.
	Times int
}

// String renders the trigger compactly, e.g. "wal/append:torn-write@17".
func (t Trigger) String() string {
	s := fmt.Sprintf("%s:%s@%d", t.Site, t.Action, t.After)
	if t.Times > 1 {
		s += fmt.Sprintf("x%d", t.Times)
	}
	return s
}

type armed struct {
	Trigger
	passes int
	fired  int
}

func (a *armed) exhausted() bool {
	times := a.Times
	if times <= 0 {
		times = 1
	}
	return a.fired >= times
}

// Registry holds armed triggers and the deterministic RNG that drives
// them. A Registry is safe for concurrent use; hooks from any goroutine
// serialize on its mutex (acceptable: registries exist only in tests).
type Registry struct {
	mu       sync.Mutex
	rng      *rand.Rand
	triggers []*armed
	hits     map[Site]uint64
	crashed  bool
	crashAt  Site
	crashCh  chan struct{}
}

// NewRegistry creates a registry whose trigger schedule and torn-write cut
// points are fully determined by seed.
func NewRegistry(seed int64) *Registry {
	return &Registry{
		rng:     rand.New(rand.NewSource(seed)),
		hits:    make(map[Site]uint64),
		crashCh: make(chan struct{}),
	}
}

// Arm adds a trigger.
func (r *Registry) Arm(t Trigger) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.triggers = append(r.triggers, &armed{Trigger: t})
}

// crashSites are the sites ArmRandomCrash draws from: the durability
// write/sync path, where a process can die with work in flight.
var crashSites = []Site{WALChunkSeal, WALGatherWrite, WALBatchFsync,
	WALRotate, CheckpointWrite, CheckpointSync, CheckpointRename, CoreLog}

// ArmRandomCrash arms a crash at a seed-chosen site after a seed-chosen
// number of passes in [0, maxAfter). Write-capable sites get a torn write
// half the time, so recovery sees truncated-mid-body records; the rest
// crash cleanly between operations. The chosen trigger is returned for
// reporting.
func (r *Registry) ArmRandomCrash(maxAfter int) Trigger {
	return r.ArmRandomCrashAt(crashSites, maxAfter)
}

// ArmRandomCrashAt is ArmRandomCrash restricted to the given sites —
// harnesses exclude sites their workload never passes, so the crash
// reliably fires. maxAfter applies to high-traffic sites (appends, the
// commit hook); sync- and rotation-class sites, passed orders of magnitude
// less often, get a proportionally tighter schedule.
func (r *Registry) ArmRandomCrashAt(sites []Site, maxAfter int) Trigger {
	if maxAfter < 1 {
		maxAfter = 1
	}
	r.mu.Lock()
	site := sites[r.rng.Intn(len(sites))]
	action := Crash
	if site == WALGatherWrite && r.rng.Intn(2) == 0 {
		action = TornWrite
	}
	max := maxAfter
	switch site {
	case WALChunkSeal, WALGatherWrite, CheckpointWrite:
		// Batch-pipeline sites: passed once per chunk or per flushed
		// chunk, orders of magnitude less often than the commit hook.
		max = maxAfter/4 + 1
	case WALBatchFsync, WALRotate, CheckpointSync, CheckpointRename, CheckpointPurge:
		max = maxAfter/16 + 1
	}
	t := Trigger{Site: site, Action: action, After: r.rng.Intn(max)}
	r.mu.Unlock()
	r.Arm(t)
	return t
}

// Crashed reports whether a crash-family trigger has fired.
func (r *Registry) Crashed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.crashed
}

// CrashSite returns the site of the fired crash (empty if none).
func (r *Registry) CrashSite() Site {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.crashAt
}

// CrashSignal returns a channel closed when a crash fires.
func (r *Registry) CrashSignal() <-chan struct{} { return r.crashCh }

// Hits returns how many times site has been passed (fired or not).
func (r *Registry) Hits(site Site) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits[site]
}

// match records a pass through site and returns the trigger to fire, if
// any. Caller holds r.mu.
func (r *Registry) match(site Site) *armed {
	r.hits[site]++
	for _, t := range r.triggers {
		if t.Site != site || t.exhausted() {
			continue
		}
		t.passes++
		if t.passes <= t.After {
			continue
		}
		t.fired++
		return t
	}
	return nil
}

// crash freezes the registry. Caller holds r.mu.
func (r *Registry) crash(site Site) {
	if !r.crashed {
		r.crashed = true
		r.crashAt = site
		close(r.crashCh)
	}
}

func (r *Registry) inject(site Site) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.crashed {
		return ErrCrashed
	}
	t := r.match(site)
	if t == nil {
		return nil
	}
	switch t.Action {
	case Error, ShortWrite:
		return ErrInjected
	case Crash, TornWrite:
		r.crash(site)
		return ErrCrashed
	case Panic:
		r.crash(site)
		panic(&CrashPanic{Site: site})
	}
	return nil
}

func (r *Registry) write(site Site, w io.Writer, buf []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.crashed {
		return 0, ErrCrashed
	}
	t := r.match(site)
	if t == nil {
		return w.Write(buf)
	}
	switch t.Action {
	case Error:
		return 0, ErrInjected
	case ShortWrite, TornWrite:
		cut := 0
		if len(buf) > 1 {
			cut = 1 + r.rng.Intn(len(buf)-1) // strict prefix, mid-body
		}
		n := 0
		if cut > 0 {
			n, _ = w.Write(buf[:cut])
		}
		if t.Action == TornWrite {
			r.crash(site)
			return n, ErrCrashed
		}
		return n, ErrInjected
	case Crash:
		r.crash(site)
		return 0, ErrCrashed
	case Panic:
		r.crash(site)
		panic(&CrashPanic{Site: site})
	}
	return w.Write(buf)
}

// active is the enabled registry; nil means every hook is a no-op.
var active atomic.Pointer[Registry]

// Enable installs r as the process-wide registry. Tests that enable a
// registry must Disable it before finishing (use defer); concurrently
// running tests in other packages are unaffected because the hooks live
// only in the durability path.
func Enable(r *Registry) { active.Store(r) }

// Disable removes the process-wide registry; hooks return to no-ops.
func Disable() { active.Store(nil) }

// Enabled reports whether a registry is installed.
func Enabled() bool { return active.Load() != nil }

// Inject is the plain failpoint hook: nil unless an armed trigger at site
// fires. With no registry enabled it is a single atomic load.
//
//cicada:noalloc
func Inject(site Site) error {
	r := active.Load()
	if r == nil {
		return nil
	}
	return r.inject(site)
}

// Write routes a write through the failpoint at site: with no registry it
// is w.Write(buf); with one, an armed trigger may fail the write, write a
// seed-chosen prefix (short/torn write), or crash the registry.
//
//cicada:noalloc
func Write(site Site, w io.Writer, buf []byte) (int, error) {
	r := active.Load()
	if r == nil {
		return w.Write(buf)
	}
	return r.write(site, w, buf)
}
