// Package clock implements Cicada's multi-clock timestamp allocation (§3.1).
//
// Each worker thread owns a 64-bit software clock that is incremented by the
// locally measured elapsed time right before a timestamp is allocated. A
// timestamp combines the low-order 56 bits of the adjusted clock (local clock
// plus a temporary boost, forced above the previously issued adjusted clock)
// with an 8-bit thread ID suffix that acts as a tie-breaker. The design
// removes the shared-counter bottleneck of conventional MVCC timestamp
// allocation: no two workers ever write the same memory location to allocate
// a timestamp.
//
// Clocks are kept loosely synchronized by two mechanisms:
//
//   - One-sided synchronization: every SyncInterval a worker peeks at one
//     remote clock (round-robin), compensates for communication latency, and
//     adopts the remote value if it is ahead. Slow clocks catch up to fast
//     clocks; fast clocks are never pulled back.
//   - Temporary clock boosting: after an abort the worker adds BoostTicks to
//     its adjusted clock so its retry wins against the writers that aborted
//     it. The boost is cleared on commit.
//
// The Domain also tracks min_wts (the minimum of all workers' last write
// timestamps) and min_rts (the minimum of all workers' read timestamps),
// which are advanced monotonically by a leader thread during maintenance.
// Read-only transactions run at thread.rts = min_wts-1 and need no read-set
// validation; min_rts is the garbage collection horizon.
package clock

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Timestamp layout constants. A timestamp is
//
//	(adjustedClock &^ (0xff << 56)) << 8 ... -- conceptually the low 56 bits
//	of the adjusted clock followed by the 8-bit thread ID.
const (
	// ThreadIDBits is the width of the thread-ID suffix.
	ThreadIDBits = 8
	// ClockBits is the width of the clock portion of a timestamp.
	ClockBits = 64 - ThreadIDBits
	// MaxWorkers is the maximum number of workers a Domain supports.
	MaxWorkers = 1 << ThreadIDBits

	clockMask = (uint64(1) << ClockBits) - 1
	tidMask   = (uint64(1) << ThreadIDBits) - 1
)

// Timestamp is a Cicada transaction timestamp: 56 bits of adjusted clock and
// an 8-bit thread ID. Timestamps are unique across the Domain and compare as
// plain unsigned integers. The zero Timestamp precedes every allocated one.
type Timestamp uint64

// Compose builds a Timestamp from a clock value and a worker ID.
func Compose(clockVal uint64, workerID int) Timestamp {
	return Timestamp((clockVal&clockMask)<<ThreadIDBits | uint64(workerID)&tidMask)
}

// WorkerID extracts the thread-ID suffix.
func (t Timestamp) WorkerID() int { return int(uint64(t) & tidMask) }

// ClockValue extracts the 56-bit clock portion.
func (t Timestamp) ClockValue() uint64 { return uint64(t) >> ThreadIDBits }

// String formats the timestamp as clock.worker for debugging.
func (t Timestamp) String() string {
	return fmt.Sprintf("%d.%d", t.ClockValue(), t.WorkerID())
}

// Options configures a Domain. The zero value selects the paper's defaults.
type Options struct {
	// SyncInterval is how often a worker performs one-sided clock
	// synchronization with a remote worker. Paper default: 100 µs.
	SyncInterval time.Duration
	// Boost is the temporary clock boost granted after an abort; it must
	// exceed the residual skew left by one-sided synchronization.
	// Paper default: 1 µs.
	Boost time.Duration
	// MaxIncrement clamps a single clock increment, guarding against
	// time-source anomalies. Paper default: 1 hour.
	MaxIncrement time.Duration
	// CoherencyCompensation is added to a remotely read clock to compensate
	// for the latency of reading it. Modeled after the paper's cache
	// coherency compensation.
	CoherencyCompensation time.Duration
	// Centralized switches the Domain to a single shared atomic counter, as
	// used by conventional MVCC schemes (Hekaton et al.). It exists for the
	// Figure 7 factor analysis and for the baseline engines.
	Centralized bool
}

func (o *Options) setDefaults() {
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Microsecond
	}
	if o.Boost <= 0 {
		o.Boost = time.Microsecond
	}
	if o.MaxIncrement <= 0 {
		o.MaxIncrement = time.Hour
	}
	if o.CoherencyCompensation < 0 {
		o.CoherencyCompensation = 0
	}
}

// workerClock is the per-worker clock state. It is padded to its own cache
// lines so that clock updates by one worker do not invalidate neighbours.
type workerClock struct {
	// clock is the local software clock in ticks (nanoseconds). It is
	// written only by the owning worker but read by remote workers during
	// one-sided synchronization, hence atomic.
	clock atomic.Uint64
	// lastAdjusted is the adjusted clock used for the previous timestamp;
	// only the owner touches it.
	lastAdjusted uint64
	// boost is the temporary clock boost in ticks; owner-only.
	boost uint64
	// lastTick is the wall time of the last clock increment; owner-only.
	lastTick time.Time
	// lastSync is the wall time of the last one-sided synchronization.
	lastSync time.Time
	// syncTarget is the next round-robin synchronization peer.
	syncTarget int
	// wts is the worker's last allocated write timestamp (atomic: leader
	// reads it to compute min_wts).
	wts atomic.Uint64
	// rts is the worker's read-only-transaction timestamp, refreshed to
	// min_wts-1 during maintenance (atomic: leader reads it for min_rts).
	rts atomic.Uint64

	_ [32]byte // pad to two full cache lines so adjacent entries never share
}

// Domain is a set of loosely synchronized worker clocks plus the min_wts /
// min_rts watermarks shared by all workers.
type Domain struct {
	opts    Options
	workers []workerClock
	// minWTS and minRTS are leader-written watermarks read by every worker
	// on the hot path, and central is CAS-hammered by every worker in
	// Centralized mode; each sits on its own cache line so a write to one
	// never invalidates readers of the others (or the headers above).
	_       [64]byte
	minWTS  atomic.Uint64
	_       [56]byte
	minRTS  atomic.Uint64
	_       [56]byte
	central atomic.Uint64
	_       [56]byte
	// start anchors all clocks so they begin near zero.
	start time.Time
}

// NewDomain creates a Domain for n workers (1 ≤ n ≤ MaxWorkers).
func NewDomain(n int, opts Options) *Domain {
	if n < 1 || n > MaxWorkers {
		panic(fmt.Sprintf("clock: worker count %d out of range [1,%d]", n, MaxWorkers))
	}
	opts.setDefaults()
	d := &Domain{
		opts:    opts,
		workers: make([]workerClock, n),
		start:   time.Now(),
	}
	// Clocks start at 1 so the zero Timestamp strictly precedes all
	// allocated timestamps.
	for i := range d.workers {
		w := &d.workers[i]
		w.clock.Store(1)
		w.lastTick = d.start
		w.lastSync = d.start
		w.syncTarget = (i + 1) % n
		w.wts.Store(uint64(Compose(1, i)))
		w.rts.Store(0)
	}
	d.central.Store(1)
	d.minWTS.Store(uint64(Compose(1, 0)))
	d.minRTS.Store(0)
	return d
}

// Workers returns the number of workers in the domain.
func (d *Domain) Workers() int { return len(d.workers) }

// Centralized reports whether the domain allocates from a shared counter.
func (d *Domain) Centralized() bool { return d.opts.Centralized }

// tick advances worker w's local clock by the locally measured elapsed time,
// clamped to (0, MaxIncrement]. It returns the new clock value.
func (d *Domain) tick(w *workerClock) uint64 {
	now := time.Now()
	elapsed := now.Sub(w.lastTick)
	if elapsed <= 0 {
		elapsed = 1
	} else if elapsed > d.opts.MaxIncrement {
		elapsed = d.opts.MaxIncrement
	}
	w.lastTick = now
	c := w.clock.Load() + uint64(elapsed)
	w.clock.Store(c)
	return c
}

// NewWriteTimestamp allocates the timestamp for a new read-write transaction
// on worker id. It increments the local clock, applies any abort boost, and
// forces the adjusted clock above the previously issued one so the worker's
// timestamps are strictly monotonic.
func (d *Domain) NewWriteTimestamp(id int) Timestamp {
	if d.opts.Centralized {
		// Conventional MVCC allocation: one atomic fetch-add on shared
		// memory per transaction.
		v := d.central.Add(1)
		ts := Compose(v, id)
		d.workers[id].wts.Store(uint64(ts))
		return ts
	}
	w := &d.workers[id]
	c := d.tick(w)
	adjusted := c + w.boost
	if adjusted <= w.lastAdjusted {
		adjusted = w.lastAdjusted + 1
	}
	w.lastAdjusted = adjusted
	ts := Compose(adjusted, id)
	if invariantsEnabled {
		assertf(uint64(ts) > w.wts.Load(),
			"worker %d write timestamp %v not after %v", id, ts, Timestamp(w.wts.Load()))
	}
	w.wts.Store(uint64(ts))
	return ts
}

// ReadTimestamp returns the timestamp for a read-only transaction on worker
// id: the worker's thread.rts, which is guaranteed to precede every current
// and future read-write transaction timestamp, so reads at it are always
// consistent without validation.
func (d *Domain) ReadTimestamp(id int) Timestamp {
	return Timestamp(d.workers[id].rts.Load())
}

// OnAbort grants worker id a temporary clock boost so its retry uses a
// timestamp that is likely ahead of the conflicting writers'.
func (d *Domain) OnAbort(id int) {
	d.workers[id].boost = uint64(d.opts.Boost)
}

// OnCommit clears worker id's clock boost.
func (d *Domain) OnCommit(id int) {
	d.workers[id].boost = 0
}

// MaybeSync performs one-sided clock synchronization for worker id if
// SyncInterval has elapsed since its last synchronization. It returns true
// if a synchronization was attempted.
func (d *Domain) MaybeSync(id int) bool {
	w := &d.workers[id]
	now := time.Now()
	if now.Sub(w.lastSync) < d.opts.SyncInterval {
		return false
	}
	w.lastSync = now
	if len(d.workers) == 1 || d.opts.Centralized {
		return false
	}
	target := w.syncTarget
	if target == id {
		target = (target + 1) % len(d.workers)
	}
	w.syncTarget = (target + 1) % len(d.workers)
	remote := d.workers[target].clock.Load() + uint64(d.opts.CoherencyCompensation)
	if remote > w.clock.Load() {
		// Adopt the faster remote clock. Only the owner writes its clock,
		// so a plain store after the comparison is safe.
		w.clock.Store(remote)
	}
	return true
}

// RefreshRead refreshes worker id's read-only timestamp to min_wts-1. Called
// from the worker's maintenance step.
func (d *Domain) RefreshRead(id int) {
	min := d.minWTS.Load()
	if min == 0 {
		return
	}
	w := &d.workers[id]
	rts := min - 1
	if rts > w.rts.Load() {
		w.rts.Store(rts)
	}
}

// RefreshIdle advances worker id's write timestamp without beginning a
// transaction so that an idle worker does not stall min_wts.
func (d *Domain) RefreshIdle(id int) {
	d.NewWriteTimestamp(id)
}

// UpdateMins recomputes min_wts and min_rts from all workers' published
// timestamps, advancing the shared watermarks monotonically. It is called by
// the leader thread after observing a full quiescence round and returns the
// new watermarks.
func (d *Domain) UpdateMins() (minWTS, minRTS Timestamp) {
	prevW, prevR := d.minWTS.Load(), d.minRTS.Load()
	minW := ^uint64(0)
	minR := ^uint64(0)
	for i := range d.workers {
		if w := d.workers[i].wts.Load(); w < minW {
			minW = w
		}
		if r := d.workers[i].rts.Load(); r < minR {
			minR = r
		}
	}
	storeMax(&d.minWTS, minW)
	storeMax(&d.minRTS, minR)
	newW, newR := d.minWTS.Load(), d.minRTS.Load()
	if invariantsEnabled {
		// The watermarks advance monotonically (§3.6) and min_rts stays
		// strictly below min_wts: every worker's rts is some historical
		// min_wts-1, and min_wts never moves backward.
		assertf(newW >= prevW, "min_wts moved backward: %v -> %v", Timestamp(prevW), Timestamp(newW))
		assertf(newR >= prevR, "min_rts moved backward: %v -> %v", Timestamp(prevR), Timestamp(newR))
		assertf(newR < newW, "min_rts %v not below min_wts %v", Timestamp(newR), Timestamp(newW))
	}
	return Timestamp(newW), Timestamp(newR)
}

// storeMax monotonically raises an atomic to at least v.
func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// MinWTS returns the current global minimum write timestamp. Every current
// and future read-write transaction has a timestamp ≥ MinWTS.
func (d *Domain) MinWTS() Timestamp { return Timestamp(d.minWTS.Load()) }

// MinRTS returns the garbage collection horizon: no current or future
// transaction reads below it.
func (d *Domain) MinRTS() Timestamp { return Timestamp(d.minRTS.Load()) }

// WTS returns worker id's last allocated write timestamp.
func (d *Domain) WTS(id int) Timestamp { return Timestamp(d.workers[id].wts.Load()) }

// MaxWTS returns the maximum of all workers' last allocated write
// timestamps. Like MinWTS it reads each published word atomically but not at
// one instant; it is a monitoring accessor, not a coordination primitive.
func (d *Domain) MaxWTS() Timestamp {
	var max uint64
	for i := range d.workers {
		if w := d.workers[i].wts.Load(); w > max {
			max = w
		}
	}
	return Timestamp(max)
}

// ClockSpreadTicks returns the current gap between the fastest and slowest
// worker clocks in ticks — the residual drift that one-sided synchronization
// and clock boosting keep bounded (§3.1). Monitoring only.
func (d *Domain) ClockSpreadTicks() uint64 {
	min, max := ^uint64(0), uint64(0)
	for i := range d.workers {
		c := d.workers[i].clock.Load()
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max < min {
		return 0
	}
	return max - min
}

// MaxSnapshotAgeTicks returns how far the oldest worker's read-only snapshot
// timestamp lags the newest write timestamp, in ticks: the staleness bound of
// read-only transactions (§3.1, §4.6). Monitoring only.
func (d *Domain) MaxSnapshotAgeTicks() uint64 {
	maxW := d.MaxWTS().ClockValue()
	minR := ^uint64(0)
	for i := range d.workers {
		if r := Timestamp(d.workers[i].rts.Load()).ClockValue(); r < minR {
			minR = r
		}
	}
	if minR >= maxW {
		return 0
	}
	return maxW - minR
}

// AdvanceAllPast raises every worker's clock so all future timestamps are
// later than after; used when initializing clocks after recovery replay
// (§3.7).
func (d *Domain) AdvanceAllPast(after Timestamp) {
	need := after.ClockValue() + 1
	for i := range d.workers {
		w := &d.workers[i]
		if w.clock.Load() < need {
			w.clock.Store(need)
		}
		if w.lastAdjusted < need {
			w.lastAdjusted = need
		}
		w.wts.Store(uint64(Compose(need, i)))
	}
	if d.central.Load() < need {
		d.central.Store(need)
	}
	d.UpdateMins()
}

// AdvanceForCausality raises worker id's clock so its next timestamp exceeds
// after. It implements the paper's causal consistency hook: the local clock
// increment does not need to match real time, and one-sided synchronization
// corrects the drift.
func (d *Domain) AdvanceForCausality(id int, after Timestamp) {
	w := &d.workers[id]
	need := after.ClockValue() + 1
	if w.clock.Load() < need {
		w.clock.Store(need)
	}
	if w.lastAdjusted < need {
		w.lastAdjusted = need
	}
}
