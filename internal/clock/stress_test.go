package clock

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentSyncAndAllocation stresses one-sided synchronization racing
// timestamp allocation and watermark updates: monotonicity per worker and
// watermark safety must hold throughout.
func TestConcurrentSyncAndAllocation(t *testing.T) {
	const workers = 6
	d := NewDomain(workers, Options{SyncInterval: time.Microsecond})
	var wg sync.WaitGroup
	lastTS := make([]Timestamp, workers)
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var prev Timestamp
			for i := 0; i < 20000; i++ {
				ts := d.NewWriteTimestamp(id)
				if ts <= prev {
					t.Errorf("worker %d: %v not after %v", id, ts, prev)
					return
				}
				prev = ts
				if i%64 == 0 {
					d.MaybeSync(id)
					d.RefreshRead(id)
				}
				if id == 0 && i%128 == 0 {
					minW, minR := d.UpdateMins()
					if minR >= minW {
						t.Errorf("min_rts %v not below min_wts %v", minR, minW)
						return
					}
				}
			}
			lastTS[id] = prev
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Final watermark must not exceed any worker's last timestamp... it is
	// the minimum of CURRENT wts, all of which are the last allocations.
	minW, _ := d.UpdateMins()
	for id, ts := range lastTS {
		if minW > ts {
			t.Fatalf("min_wts %v beyond worker %d last ts %v", minW, id, ts)
		}
	}
}

// TestWatermarkMonotoneUnderRace hammers allocation and read-refresh on all
// workers while a single maintenance goroutine (mirroring the engine's
// leader) recomputes the watermarks: min_wts and min_rts must never move
// backwards and min_rts must stay strictly below min_wts. Run with -race and
// -tags cicada_invariants to also arm the in-clock assertions.
func TestWatermarkMonotoneUnderRace(t *testing.T) {
	const workers = 4
	d := NewDomain(workers, Options{SyncInterval: time.Microsecond})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				d.NewWriteTimestamp(id)
				if i%32 == 0 {
					d.MaybeSync(id)
					d.RefreshRead(id)
				}
			}
		}(id)
	}
	rounds := 4000
	if testing.Short() {
		rounds = 500
	}
	var prevW, prevR Timestamp
	for i := 0; i < rounds; i++ {
		minW, minR := d.UpdateMins()
		if minW < prevW {
			t.Fatalf("round %d: min_wts moved backwards: %v then %v", i, prevW, minW)
		}
		if minR < prevR {
			t.Fatalf("round %d: min_rts moved backwards: %v then %v", i, prevR, minR)
		}
		if minR >= minW {
			t.Fatalf("round %d: min_rts %v not below min_wts %v", i, minR, minW)
		}
		prevW, prevR = minW, minR
	}
	close(stop)
	wg.Wait()
}

// TestBoostExceedsResidualSkew: after an abort the boosted timestamp is
// ahead of a freshly synchronized peer's next timestamp (the purpose of
// temporary clock boosting).
func TestBoostExceedsResidualSkew(t *testing.T) {
	d := NewDomain(2, Options{Boost: 10 * time.Millisecond, SyncInterval: time.Nanosecond})
	// Peer allocates, we sync, then we get boosted.
	peer := d.NewWriteTimestamp(1)
	time.Sleep(time.Microsecond)
	d.MaybeSync(0)
	d.OnAbort(0)
	boosted := d.NewWriteTimestamp(0)
	if boosted.ClockValue() <= peer.ClockValue() {
		t.Fatalf("boosted %v not ahead of peer %v", boosted, peer)
	}
	// And it exceeds the peer's next few natural allocations.
	for i := 0; i < 3; i++ {
		if p := d.NewWriteTimestamp(1); p.ClockValue() > boosted.ClockValue() {
			t.Fatalf("peer %v overtook boost %v immediately", p, boosted)
		}
	}
}

// TestAdvanceAllPast: used by recovery; all future timestamps across all
// workers exceed the replayed maximum.
func TestAdvanceAllPast(t *testing.T) {
	d := NewDomain(4, Options{})
	target := Compose(1<<40, 3)
	d.AdvanceAllPast(target)
	for id := 0; id < 4; id++ {
		if ts := d.NewWriteTimestamp(id); ts <= target {
			t.Fatalf("worker %d ts %v not past %v", id, ts, target)
		}
	}
	if d.MinWTS() <= 0 {
		t.Fatal("min_wts not updated")
	}
}
