//go:build cicada_invariants

package clock

import "fmt"

// invariantsEnabled gates the runtime assertion hooks in this package (build
// tag cicada_invariants).
const invariantsEnabled = true

// assertf panics with a formatted message if cond is false.
func assertf(cond bool, format string, args ...any) {
	if !cond {
		panic("cicada invariant violation: " + fmt.Sprintf(format, args...))
	}
}
