//go:build !cicada_invariants

package clock

// invariantsEnabled gates the runtime assertion hooks in this package (build
// tag cicada_invariants). In this build they compile to nothing.
const invariantsEnabled = false

// assertf is a no-op in builds without the cicada_invariants tag.
func assertf(cond bool, format string, args ...any) {}
