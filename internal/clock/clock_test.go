package clock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestComposeRoundTrip(t *testing.T) {
	f := func(clockVal uint64, id uint8) bool {
		ts := Compose(clockVal, int(id))
		return ts.WorkerID() == int(id) && ts.ClockValue() == clockVal&clockMask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimestampOrderingByClock(t *testing.T) {
	f := func(a, b uint32, ida, idb uint8) bool {
		tsa := Compose(uint64(a), int(ida))
		tsb := Compose(uint64(b), int(idb))
		if a < b && tsa >= tsb {
			return false
		}
		if a > b && tsa <= tsb {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPerWorkerMonotonic(t *testing.T) {
	d := NewDomain(4, Options{})
	for id := 0; id < 4; id++ {
		prev := Timestamp(0)
		for i := 0; i < 10000; i++ {
			ts := d.NewWriteTimestamp(id)
			if ts <= prev {
				t.Fatalf("worker %d: timestamp %v not after %v", id, ts, prev)
			}
			if ts.WorkerID() != id {
				t.Fatalf("worker %d: timestamp carries id %d", id, ts.WorkerID())
			}
			prev = ts
		}
	}
}

func TestUniqueAcrossWorkers(t *testing.T) {
	const workers = 8
	const perWorker = 5000
	d := NewDomain(workers, Options{})
	results := make([][]Timestamp, workers)
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			out := make([]Timestamp, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				out = append(out, d.NewWriteTimestamp(id))
			}
			results[id] = out
		}(id)
	}
	wg.Wait()
	seen := make(map[Timestamp]struct{}, workers*perWorker)
	for _, r := range results {
		for _, ts := range r {
			if _, dup := seen[ts]; dup {
				t.Fatalf("duplicate timestamp %v", ts)
			}
			seen[ts] = struct{}{}
		}
	}
}

func TestCentralizedUnique(t *testing.T) {
	const workers = 4
	const perWorker = 5000
	d := NewDomain(workers, Options{Centralized: true})
	if !d.Centralized() {
		t.Fatal("expected centralized domain")
	}
	var mu sync.Mutex
	seen := make(map[Timestamp]struct{}, workers*perWorker)
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ts := d.NewWriteTimestamp(id)
				mu.Lock()
				if _, dup := seen[ts]; dup {
					mu.Unlock()
					t.Errorf("duplicate timestamp %v", ts)
					return
				}
				seen[ts] = struct{}{}
				mu.Unlock()
			}
		}(id)
	}
	wg.Wait()
}

func TestBoostRaisesTimestamp(t *testing.T) {
	d := NewDomain(2, Options{Boost: time.Millisecond})
	base := d.NewWriteTimestamp(0)
	d.OnAbort(0)
	boosted := d.NewWriteTimestamp(0)
	// The boosted timestamp must jump by at least the boost amount minus the
	// natural tick (which is tiny compared to 1ms).
	if boosted.ClockValue()-base.ClockValue() < uint64(time.Millisecond)/2 {
		t.Fatalf("boost not applied: base %v boosted %v", base, boosted)
	}
	d.OnCommit(0)
	after := d.NewWriteTimestamp(0)
	if after.ClockValue()-boosted.ClockValue() >= uint64(time.Millisecond)/2 {
		t.Fatalf("boost not cleared: boosted %v after %v", boosted, after)
	}
}

func TestOneSidedSyncCatchesUp(t *testing.T) {
	d := NewDomain(2, Options{SyncInterval: time.Nanosecond})
	// Make worker 1 far ahead.
	d.workers[1].clock.Store(uint64(10 * time.Second))
	before := d.workers[0].clock.Load()
	// Worker 0 syncs round-robin; with 2 workers its first target is 1.
	time.Sleep(time.Microsecond)
	if !d.MaybeSync(0) {
		t.Fatal("sync did not trigger")
	}
	after := d.workers[0].clock.Load()
	if after <= before || after < uint64(10*time.Second) {
		t.Fatalf("slow clock did not catch up: before %d after %d", before, after)
	}
}

func TestSyncNeverPullsBack(t *testing.T) {
	d := NewDomain(2, Options{SyncInterval: time.Nanosecond})
	d.workers[0].clock.Store(uint64(10 * time.Second))
	time.Sleep(time.Microsecond)
	d.MaybeSync(0) // remote clock (worker 1) is behind
	if got := d.workers[0].clock.Load(); got < uint64(10*time.Second) {
		t.Fatalf("fast clock pulled back to %d", got)
	}
}

func TestMinWTSNeverExceedsActive(t *testing.T) {
	d := NewDomain(4, Options{})
	var tss [4]Timestamp
	for id := 0; id < 4; id++ {
		tss[id] = d.NewWriteTimestamp(id)
	}
	minW, minR := d.UpdateMins()
	for id := 0; id < 4; id++ {
		if minW > tss[id] {
			t.Fatalf("min_wts %v exceeds worker %d wts %v", minW, id, tss[id])
		}
	}
	if minR >= minW {
		t.Fatalf("min_rts %v not below min_wts %v", minR, minW)
	}
}

func TestReadTimestampBelowMinWTS(t *testing.T) {
	d := NewDomain(3, Options{})
	for i := 0; i < 100; i++ {
		for id := 0; id < 3; id++ {
			d.NewWriteTimestamp(id)
		}
	}
	d.UpdateMins()
	for id := 0; id < 3; id++ {
		d.RefreshRead(id)
		rts := d.ReadTimestamp(id)
		if rts >= d.MinWTS() {
			t.Fatalf("worker %d read ts %v not below min_wts %v", id, rts, d.MinWTS())
		}
	}
	// min_rts must follow.
	_, minR := d.UpdateMins()
	if minR >= d.MinWTS() {
		t.Fatalf("min_rts %v not below min_wts %v", minR, d.MinWTS())
	}
}

func TestUpdateMinsMonotonic(t *testing.T) {
	d := NewDomain(2, Options{})
	prevW, prevR := d.UpdateMins()
	for i := 0; i < 1000; i++ {
		d.NewWriteTimestamp(0)
		d.NewWriteTimestamp(1)
		d.RefreshRead(0)
		d.RefreshRead(1)
		w, r := d.UpdateMins()
		if w < prevW || r < prevR {
			t.Fatalf("watermarks moved backwards: %v->%v %v->%v", prevW, w, prevR, r)
		}
		prevW, prevR = w, r
	}
}

func TestAdvanceForCausality(t *testing.T) {
	d := NewDomain(2, Options{})
	remote := d.NewWriteTimestamp(1)
	// Worker 1 races far ahead.
	d.workers[1].clock.Store(uint64(time.Hour))
	remote = d.NewWriteTimestamp(1)
	d.AdvanceForCausality(0, remote)
	local := d.NewWriteTimestamp(0)
	if local <= remote {
		t.Fatalf("causal timestamp %v not after %v", local, remote)
	}
}

func TestRefreshIdleAdvancesWTS(t *testing.T) {
	d := NewDomain(2, Options{})
	before := d.WTS(0)
	d.RefreshIdle(0)
	if d.WTS(0) <= before {
		t.Fatal("idle refresh did not advance wts")
	}
}

func TestNewDomainBounds(t *testing.T) {
	for _, n := range []int{0, -1, MaxWorkers + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDomain(%d) did not panic", n)
				}
			}()
			NewDomain(n, Options{})
		}()
	}
}
