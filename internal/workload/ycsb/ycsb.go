// Package ycsb implements the YCSB workload as adapted for transactional
// database evaluation in the paper (§4.2): each transaction issues a
// configurable number of requests; each request reads or read-modify-writes
// a record chosen by a Zipf-distributed key, performing a simple calculation
// with the field data; scans pick a random key and read a uniform-random
// number of records at subsequent keys.
package ycsb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"cicada/internal/engine"
)

// Config selects the workload parameters used across the paper's figures.
type Config struct {
	// Records is the table size. Paper default: 10 M (1 GB of user data at
	// 100 B records); this repository defaults to 1 M to fit small testbeds
	// — see EXPERIMENTS.md.
	Records int
	// RecordSize is the record payload size in bytes (paper default 100;
	// Figure 8 sweeps 8–2000).
	RecordSize int
	// ReqsPerTx is the number of requests per transaction (16 for Figure 6,
	// 1 for Figures 7 and 11).
	ReqsPerTx int
	// ReadRatio is the fraction of reads among read and RMW requests
	// (0.95 = read-intensive, 0.50 = write-intensive).
	ReadRatio float64
	// Theta is the Zipf skew of the key distribution (0 = uniform, 0.99 =
	// highly skewed).
	Theta float64
	// ScanFraction makes that fraction of transactions range scans of
	// [1, MaxScanLen] records, executed read-only (§4.6 scan experiment).
	ScanFraction float64
	// MaxScanLen is the maximum records per scan (paper: 100).
	MaxScanLen int
	// Ordered forces an ordered index even without scans.
	Ordered bool
}

// DefaultConfig returns the paper's base configuration at the reduced
// default scale.
func DefaultConfig() Config {
	return Config{
		Records:    1_000_000,
		RecordSize: 100,
		ReqsPerTx:  16,
		ReadRatio:  0.95,
		Theta:      0.99,
		MaxScanLen: 100,
	}
}

// Workload is a loaded YCSB instance bound to a DB.
type Workload struct {
	cfg Config
	db  engine.DB
	tbl engine.TableID
	idx engine.IndexID
	// rids maps key → record ID; YCSB keys are dense, and the paper's
	// DBx1000 harness likewise resolves keys through a hash index — we
	// perform the index lookup inside the transaction to charge that cost,
	// with rids kept only for validation in tests.
	rids []engine.RecordID
}

// Setup registers the YCSB table and index on db; call before Load and
// before any transactions run.
func Setup(db engine.DB, cfg Config) *Workload {
	w := &Workload{cfg: cfg, db: db}
	w.tbl = db.CreateTable("usertable")
	if cfg.ScanFraction > 0 || cfg.Ordered {
		w.idx = db.CreateOrderedIndex("ycsb_key")
	} else {
		w.idx = db.CreateHashIndex("ycsb_key", cfg.Records)
	}
	return w
}

// Load populates the table using all workers in parallel.
func (w *Workload) Load() error {
	nw := w.db.Workers()
	w.rids = make([]engine.RecordID, w.cfg.Records)
	errs := make([]error, nw)
	var wg sync.WaitGroup
	for id := 0; id < nw; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			wk := w.db.Worker(id)
			const batch = 100
			for lo := id * batch; lo < w.cfg.Records; lo += nw * batch {
				hi := lo + batch
				if hi > w.cfg.Records {
					hi = w.cfg.Records
				}
				err := wk.Run(func(tx engine.Tx) error {
					for k := lo; k < hi; k++ {
						rid, buf, err := tx.Insert(w.tbl, w.cfg.RecordSize)
						if err != nil {
							return err
						}
						fill(buf, uint64(k))
						if err := tx.IndexInsert(w.idx, uint64(k), rid); err != nil {
							return err
						}
						w.rids[k] = rid
					}
					return nil
				})
				if err != nil {
					errs[id] = fmt.Errorf("load batch %d: %w", lo, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// fill writes a recognizable pattern: the key in the first 8 bytes, then a
// repeating byte.
func fill(buf []byte, key uint64) {
	if len(buf) >= 8 {
		binary.LittleEndian.PutUint64(buf, key)
	}
	for i := 8; i < len(buf); i++ {
		buf[i] = byte(key)
	}
}

// Gen is the per-worker request generator (not safe for concurrent use).
type Gen struct {
	w    *Workload
	rng  *rand.Rand
	zipf *Zipf
	keys []uint64
	rmws []bool
	// Sink accumulates read checksums so reads are not dead code.
	Sink uint64
	// Scanned counts records visited by scans (§4.6 scan rate).
	Scanned uint64
}

// NewGen creates a generator for worker id.
func (w *Workload) NewGen(id int) *Gen {
	g := &Gen{
		w:   w,
		rng: rand.New(rand.NewSource(int64(id)*104729 + 7)),
	}
	if w.cfg.Theta > 0 {
		g.zipf = NewZipf(uint64(w.cfg.Records), w.cfg.Theta, g.rng)
	}
	return g
}

func (g *Gen) nextKey() uint64 {
	if g.zipf != nil {
		return g.zipf.Next()
	}
	return uint64(g.rng.Intn(g.w.cfg.Records))
}

// RunOne executes one YCSB transaction on worker wk. The request vector is
// drawn before the transaction begins so retries replay identical requests.
func (g *Gen) RunOne(wk engine.Worker) error {
	cfg := &g.w.cfg
	if cfg.ScanFraction > 0 && g.rng.Float64() < cfg.ScanFraction {
		return g.runScan(wk)
	}
	g.keys = g.keys[:0]
	g.rmws = g.rmws[:0]
	for i := 0; i < cfg.ReqsPerTx; i++ {
		g.keys = append(g.keys, g.nextKey())
		g.rmws = append(g.rmws, g.rng.Float64() >= cfg.ReadRatio)
	}
	return wk.Run(func(tx engine.Tx) error {
		for i, key := range g.keys {
			rid, err := tx.IndexGet(g.w.idx, key)
			if err != nil {
				return err
			}
			if g.rmws[i] {
				buf, err := tx.Update(g.w.tbl, rid, -1)
				if err != nil {
					return err
				}
				// Simple calculation with the field data.
				v := binary.LittleEndian.Uint64(buf)
				binary.LittleEndian.PutUint64(buf, v+1)
			} else {
				d, err := tx.Read(g.w.tbl, rid)
				if err != nil {
					return err
				}
				g.Sink += uint64(d[len(d)-1]) + binary.LittleEndian.Uint64(d)
			}
		}
		return nil
	})
}

// runScan executes one read-only scan transaction of a uniform-random
// length in [1, MaxScanLen].
func (g *Gen) runScan(wk engine.Worker) error {
	start := g.nextKey()
	n := 1 + g.rng.Intn(g.w.cfg.MaxScanLen)
	return wk.RunRO(func(tx engine.Tx) error {
		return tx.IndexScan(g.w.idx, start, uint64(g.w.cfg.Records), n, func(k uint64, rid engine.RecordID) bool {
			d, err := tx.Read(g.w.tbl, rid)
			if err == nil {
				g.Sink += uint64(d[0])
				g.Scanned++
			}
			return true
		})
	})
}

// Table returns the usertable ID (for validation in tests).
func (w *Workload) Table() engine.TableID { return w.tbl }

// Index returns the key index ID.
func (w *Workload) Index() engine.IndexID { return w.idx }

// RecordIDFor returns the loaded record ID for key (test use only).
func (w *Workload) RecordIDFor(key uint64) engine.RecordID { return w.rids[key] }

// Config returns the workload configuration.
func (w *Workload) Config() Config { return w.cfg }
