package ycsb

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"cicada/internal/baselines/tictoc"
	"cicada/internal/cicadaeng"
	"cicada/internal/core"
	"cicada/internal/engine"
)

func TestZipfBoundsAndSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(1000, 0.99, rng)
	counts := make(map[uint64]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k >= 1000 {
			t.Fatalf("zipf out of range: %d", k)
		}
		counts[k]++
	}
	// With theta 0.99 the hottest key takes a large share.
	if counts[0] < draws/20 {
		t.Fatalf("key 0 drawn %d times; zipf not skewed", counts[0])
	}
	if counts[0] < counts[500] {
		t.Fatal("rank 0 not hotter than rank 500")
	}
}

func TestZipfUniformTheta(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		z := NewZipf(100, 0.5, rng)
		for i := 0; i < 100; i++ {
			if z.Next() >= 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func smallCfg() Config {
	return Config{
		Records:    2000,
		RecordSize: 100,
		ReqsPerTx:  8,
		ReadRatio:  0.5,
		Theta:      0.9,
		MaxScanLen: 20,
	}
}

func TestYCSBIncrementsAreExact(t *testing.T) {
	const workers = 4
	const perWorker = 200
	db := cicadaeng.New(engine.Config{Workers: workers, PhantomAvoidance: true}, core.DefaultOptions(workers))
	w := Setup(db, smallCfg())
	if err := w.Load(); err != nil {
		t.Fatal(err)
	}
	engine.WarmUp(db)
	expect := make([]map[uint64]uint64, workers)
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := w.NewGen(id)
			wk := db.Worker(id)
			local := make(map[uint64]uint64)
			for i := 0; i < perWorker; i++ {
				if err := g.RunOne(wk); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
				for j, key := range g.keys {
					if g.rmws[j] {
						local[key]++
					}
				}
			}
			expect[id] = local
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Re-synchronize the clocks before verifying. Worker 0 may have finished
	// its share early and stopped syncing while the other workers' clocks ran
	// ahead (abort boosts, minimum tick increments); without a sync its
	// verification transaction can carry a timestamp below the last commits
	// and serialize before them — valid serializability, wrong assertion.
	engine.WarmUp(db)
	want := make(map[uint64]uint64)
	for _, m := range expect {
		for k, n := range m {
			want[k] += n
		}
	}
	wk := db.Worker(0)
	if err := wk.Run(func(tx engine.Tx) error {
		for key, n := range want {
			rid, err := tx.IndexGet(w.Index(), key)
			if err != nil {
				return err
			}
			d, err := tx.Read(w.Table(), rid)
			if err != nil {
				return err
			}
			got := binary.LittleEndian.Uint64(d)
			if got != key+n {
				t.Errorf("key %d: value %d, want %d (+%d increments)", key, got, key+n, n)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestYCSBScansOnTicToc(t *testing.T) {
	cfg := smallCfg()
	cfg.ScanFraction = 0.3
	cfg.ReqsPerTx = 4
	db := tictoc.New(engine.Config{Workers: 2, PhantomAvoidance: true})
	w := Setup(db, cfg)
	if err := w.Load(); err != nil {
		t.Fatal(err)
	}
	engine.WarmUp(db)
	g := w.NewGen(0)
	wk := db.Worker(0)
	for i := 0; i < 300; i++ {
		if err := g.RunOne(wk); err != nil {
			t.Fatal(err)
		}
	}
	if g.Scanned == 0 {
		t.Fatal("no records scanned")
	}
}

func TestYCSBRecordSizes(t *testing.T) {
	for _, size := range []int{8, 64, 216, 1000} {
		cfg := smallCfg()
		cfg.Records = 200
		cfg.RecordSize = size
		db := cicadaeng.New(engine.Config{Workers: 1, PhantomAvoidance: true}, core.DefaultOptions(1))
		w := Setup(db, cfg)
		if err := w.Load(); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		g := w.NewGen(0)
		wk := db.Worker(0)
		for i := 0; i < 50; i++ {
			if err := g.RunOne(wk); err != nil {
				t.Fatalf("size %d: %v", size, err)
			}
		}
	}
}
