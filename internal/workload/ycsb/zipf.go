package ycsb

import "math"

// Zipf is the YCSB Zipfian generator (Gray et al.'s quick algorithm, as used
// by YCSB and DBx1000): item ranks follow P(i) ∝ 1/i^theta over n items.
// math/rand's built-in Zipf uses a different parameterization (s > 1), so
// the benchmark-standard theta ∈ (0, 1) form is implemented here.
type Zipf struct {
	n      uint64
	theta  float64
	alpha  float64
	zetan  float64
	eta    float64
	zeta2  float64
	random interface{ Float64() float64 }
}

// NewZipf creates a generator over [0, n) with skew theta ∈ (0, 1).
func NewZipf(n uint64, theta float64, rng interface{ Float64() float64 }) *Zipf {
	z := &Zipf{n: n, theta: theta, random: rng}
	z.zeta2 = zeta(2, theta)
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// zeta computes the generalized harmonic number H_{n,theta}. It is O(n) and
// runs once per generator; DBx1000 precomputes it the same way.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next key in [0, n).
func (z *Zipf) Next() uint64 {
	u := z.random.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	idx := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if idx >= z.n {
		idx = z.n - 1
	}
	return idx
}
