// Package tpcc implements the TPC-C benchmark (§4.2): the full five-
// transaction mix (NewOrder 45 %, Payment 43 %, OrderStatus 4 %, Delivery
// 4 %, StockLevel 4 %), the TPC-C-NP subset (NewOrder and Payment only,
// Figure 5), the standard loader, and the consistency checks used by the
// tests. A worker thread mostly interacts with its home warehouse; about
// 10 % of NewOrder and 15 % of Payment transactions access a remote
// warehouse, matching the paper's configuration.
package tpcc

import "math/rand"

// Composite index keys are packed into uint64s. Field widths: warehouse 20
// bits, district 4 bits (1–10), customer 12 bits (1–3000), order 28 bits,
// order line 4 bits (1–15), item 17 bits (1–100000).
const (
	maxOrder = (1 << 28) - 1
)

func dKey(w, d uint64) uint64        { return w<<4 | d }
func cKey(w, d, c uint64) uint64     { return w<<16 | d<<12 | c }
func cLastKey(w, d, l uint64) uint64 { return w<<28 | d<<24 | l }
func sKey(w, i uint64) uint64        { return w<<17 | i }
func oKey(w, d, o uint64) uint64     { return w<<32 | d<<28 | o }

// oCustKey orders a customer's orders newest-first: the order ID is stored
// inverted so an ascending scan with limit 1 returns the latest order.
func oCustKey(w, d, c, o uint64) uint64 {
	return w<<44 | d<<40 | c<<28 | (maxOrder - o)
}

// oCustOrder recovers the order ID from an oCustKey.
func oCustOrder(key uint64) uint64 { return maxOrder - (key & maxOrder) }

func noKey(w, d, o uint64) uint64 { return w<<32 | d<<28 | o }

// noOrder recovers the order ID from a noKey.
func noOrder(key uint64) uint64 { return key & maxOrder }

func olKey(w, d, o, ol uint64) uint64 { return w<<36 | d<<32 | o<<4 | ol }

// NURand is TPC-C's non-uniform random function (clause 2.1.6). The C
// constants are fixed per run, as permitted.
const (
	cLast = 173
	cID   = 271
	cItem = 3849
)

func nuRand(rng *rand.Rand, a, x, y, c uint64) uint64 {
	return ((uint64(rng.Int63n(int64(a+1)))|(uint64(rng.Int63n(int64(y-x+1)))+x))+c)%(y-x+1) + x
}

// lastNameID draws the customer last-name identifier in [0, 999]. The TPC-C
// syllable-composed last name is a bijection of this identifier, so indexes
// and comparisons use the identifier directly.
func lastNameID(rng *rand.Rand) uint64 { return nuRand(rng, 255, 0, 999, cLast) }

// customerID draws a customer ID in [1, 3000].
func customerID(rng *rand.Rand) uint64 { return nuRand(rng, 1023, 1, 3000, cID) }

// itemID draws an item ID in [1, items].
func itemID(rng *rand.Rand, items uint64) uint64 { return nuRand(rng, 8191, 1, items, cItem) }

// lastNameSyllables composes the textual last name for an identifier, per
// the TPC-C specification (used by the loader to fill C_LAST text).
var lastNameSyllables = [10]string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// LastName returns the TPC-C last name string for an identifier in [0, 999].
func LastName(id uint64) string {
	return lastNameSyllables[id/100%10] + lastNameSyllables[id/10%10] + lastNameSyllables[id%10]
}
