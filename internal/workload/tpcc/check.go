package tpcc

import (
	"fmt"

	"cicada/internal/engine"
)

// CheckConsistency runs the TPC-C consistency assertions (spec clause 3.3.2
// subset) in one transaction per warehouse:
//
//  1. W_YTD = Σ D_YTD over the warehouse's districts.
//  2. For every district: D_NEXT_O_ID - 1 = max(O_ID) in the order and
//     new-order indexes.
//  3. The new-order index has no entry ≥ D_NEXT_O_ID.
//
// It must be called while no other transactions run.
func (w *Workload) CheckConsistency() error {
	wk := w.db.Worker(0)
	for wh := uint64(1); wh <= uint64(w.cfg.Warehouses); wh++ {
		wh := wh
		if err := wk.Run(func(tx engine.Tx) error {
			wrid, err := tx.IndexGet(w.iWarehouse, wh)
			if err != nil {
				return err
			}
			wrec, err := tx.Read(w.tWarehouse, wrid)
			if err != nil {
				return err
			}
			wytd := getI(wrec, wYTD)
			var dsum int64
			for d := uint64(1); d <= uint64(w.cfg.Districts); d++ {
				drid, err := tx.IndexGet(w.iDistrict, dKey(wh, d))
				if err != nil {
					return err
				}
				drec, err := tx.Read(w.tDistrict, drid)
				if err != nil {
					return err
				}
				dsum += getI(drec, dYTD)
				next := getU(drec, dNextOID)

				// Max order ID in i_order_cust is expensive to derive;
				// check via i_new_order (no entry ≥ next) and i_order
				// (order next-1 exists, order next does not).
				if next > 1 {
					if _, err := tx.IndexGet(w.iOrder, oKey(wh, d, next-1)); err != nil {
						return fmt.Errorf("w%d d%d: order %d missing (next=%d): %w", wh, d, next-1, next, err)
					}
				}
				if _, err := tx.IndexGet(w.iOrder, oKey(wh, d, next)); err == nil {
					return fmt.Errorf("w%d d%d: order %d exists beyond next=%d", wh, d, next, next)
				}
				bad := false
				if err := tx.IndexScan(w.iNewOrder, noKey(wh, d, next), noKey(wh, d, maxOrder), 1,
					func(key uint64, _ engine.RecordID) bool {
						bad = true
						return false
					}); err != nil {
					return err
				}
				if bad {
					return fmt.Errorf("w%d d%d: new-order entry beyond next=%d", wh, d, next)
				}
			}
			if wytd != dsum {
				return fmt.Errorf("w%d: W_YTD %d != Σ D_YTD %d", wh, wytd, dsum)
			}
			return nil
		}); err != nil {
			return err
		}
		if err := w.checkOrderLines(wk, wh); err != nil {
			return err
		}
	}
	return nil
}

// checkOrderLines verifies consistency condition 4: for a sample of recent
// orders in each district, O_OL_CNT equals the number of order-line index
// entries, and each line's record is readable.
func (w *Workload) checkOrderLines(wk engine.Worker, wh uint64) error {
	return wk.Run(func(tx engine.Tx) error {
		for d := uint64(1); d <= uint64(w.cfg.Districts); d++ {
			drid, err := tx.IndexGet(w.iDistrict, dKey(wh, d))
			if err != nil {
				return err
			}
			drec, err := tx.Read(w.tDistrict, drid)
			if err != nil {
				return err
			}
			next := getU(drec, dNextOID)
			lo := uint64(1)
			if next > 5 {
				lo = next - 5 // sample the five most recent orders
			}
			for o := lo; o < next; o++ {
				orid, err := tx.IndexGet(w.iOrder, oKey(wh, d, o))
				if err != nil {
					return fmt.Errorf("w%d d%d: order %d missing: %w", wh, d, o, err)
				}
				orec, err := tx.Read(w.tOrder, orid)
				if err != nil {
					return err
				}
				want := getU(orec, oOLCnt)
				var got uint64
				if err := tx.IndexScan(w.iOrderLine, olKey(wh, d, o, 0), olKey(wh, d, o, 15), -1,
					func(_ uint64, lrid engine.RecordID) bool {
						got++
						return true
					}); err != nil {
					return err
				}
				if got != want {
					return fmt.Errorf("w%d d%d o%d: O_OL_CNT %d but %d order lines indexed", wh, d, o, want, got)
				}
			}
		}
		return nil
	})
}
