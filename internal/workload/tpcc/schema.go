package tpcc

import "encoding/binary"

// Record layouts. Monetary amounts are int64 cents (two's complement in a
// uint64 field); rates (tax, discount) are int64 basis points. Fixed text
// fields are retained as padding so record sizes — and therefore memory
// traffic and inlining behavior — are realistic: WAREHOUSE and DISTRICT fit
// Cicada's 216-byte inline limit, CUSTOMER (with its 500-byte C_DATA) and
// STOCK do not, matching the paper's small/large record distinction.
const (
	warehouseSize = 96
	wYTD          = 0 // int64 cents
	wTax          = 8 // int64 basis points

	districtSize = 112
	dYTD         = 0
	dTax         = 8
	dNextOID     = 16

	customerSize = 664
	cBalance     = 0   // int64 cents
	cYTDPayment  = 8   // int64 cents
	cPaymentCnt  = 16  // uint64
	cDeliveryCnt = 24  // uint64
	cDiscount    = 32  // int64 basis points
	cCredit      = 40  // byte: 0 = GC, 1 = BC
	cLastID      = 48  // uint64 last-name identifier
	cFirst       = 56  // uint64 surrogate for C_FIRST ordering
	cLastText    = 64  // 16 bytes of C_LAST text
	cIDOff       = 80  // uint64 C_ID (recovers the ID after name lookups)
	cData        = 164 // 500 bytes C_DATA

	historySize = 48
	hAmount     = 0
	hCID        = 8
	hCDID       = 16
	hCWID       = 24
	hDID        = 32
	hWID        = 40

	orderSize  = 48
	oCID       = 0
	oEntryD    = 8
	oCarrierID = 16
	oOLCnt     = 24
	oAllLocal  = 32

	newOrderSize = 8
	noOID        = 0

	orderLineSize = 64
	olIID         = 0
	olSupplyWID   = 8
	olDeliveryD   = 16
	olQuantity    = 24
	olAmount      = 32
	olDistInfo    = 40 // 24 bytes

	itemSize = 88
	iPrice   = 0
	iIMID    = 8
	iName    = 16 // 24 bytes
	iData    = 40 // 50 bytes (rounded up into padding)

	stockSize  = 328
	sQuantity  = 0 // int64
	sYTD       = 8
	sOrderCnt  = 16
	sRemoteCnt = 24
	sDist      = 32  // 10 × 24 bytes
	sData      = 272 // 50 bytes
)

func getU(b []byte, off int) uint64    { return binary.LittleEndian.Uint64(b[off:]) }
func putU(b []byte, off int, v uint64) { binary.LittleEndian.PutUint64(b[off:], v) }
func getI(b []byte, off int) int64     { return int64(binary.LittleEndian.Uint64(b[off:])) }
func putI(b []byte, off int, v int64)  { binary.LittleEndian.PutUint64(b[off:], uint64(v)) }
func addI(b []byte, off int, d int64)  { putI(b, off, getI(b, off)+d) }
func incU(b []byte, off int)           { putU(b, off, getU(b, off)+1) }
