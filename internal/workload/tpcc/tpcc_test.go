package tpcc

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"cicada/internal/baselines/silo"
	"cicada/internal/baselines/twopl"
	"cicada/internal/cicadaeng"
	"cicada/internal/core"
	"cicada/internal/engine"
)

func TestKeyPackingRoundTrip(t *testing.T) {
	f := func(wr uint16, dr, cr uint16, or uint32, olr uint8) bool {
		w := uint64(wr%1024) + 1
		d := uint64(dr%10) + 1
		c := uint64(cr%3000) + 1
		o := uint64(or % maxOrder)
		ol := uint64(olr%15) + 1
		if oCustOrder(oCustKey(w, d, c, o)) != o {
			return false
		}
		if noOrder(noKey(w, d, o)) != o {
			return false
		}
		// Keys must be strictly ordered by order ID within (w,d,c)/(w,d).
		if o+1 <= maxOrder {
			if !(oCustKey(w, d, c, o+1) < oCustKey(w, d, c, o)) {
				return false // newer orders sort first (inverted)
			}
			if !(noKey(w, d, o) < noKey(w, d, o+1)) {
				return false
			}
			if !(olKey(w, d, o, ol) < olKey(w, d, o+1, 1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestLastName(t *testing.T) {
	if got := LastName(0); got != "BARBARBAR" {
		t.Fatalf("LastName(0) = %q", got)
	}
	if got := LastName(999); got != "EINGEINGEING" {
		t.Fatalf("LastName(999) = %q", got)
	}
	if got := LastName(371); got != "PRICALLYOUGHT" {
		t.Fatalf("LastName(371) = %q", got)
	}
}

func TestNURandRange(t *testing.T) {
	g := NewGenForTest()
	for i := 0; i < 10000; i++ {
		if c := customerID(g.rng); c < 1 || c > 3000 {
			t.Fatalf("customerID %d", c)
		}
		if l := lastNameID(g.rng); l > 999 {
			t.Fatalf("lastNameID %d", l)
		}
		if it := itemID(g.rng, 100000); it < 1 || it > 100000 {
			t.Fatalf("itemID %d", it)
		}
	}
}

// NewGenForTest builds a generator without a workload for RNG tests.
func NewGenForTest() *Gen {
	w := &Workload{cfg: SmallConfig(1)}
	return w.NewGen(0)
}

func runMix(t *testing.T, db engine.DB, cfg Config, perWorker int) {
	t.Helper()
	w := Setup(db, cfg)
	if err := w.Load(); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatalf("post-load consistency: %v", err)
	}
	engine.WarmUp(db)
	var wg sync.WaitGroup
	for id := 0; id < db.Workers(); id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := w.NewGen(id)
			wk := db.Worker(id)
			for i := 0; i < perWorker; i++ {
				err := g.RunOne(wk)
				if errors.Is(err, engine.ErrAborted) {
					i-- // bounded-retry abort; try again
					continue
				}
				if err != nil {
					t.Errorf("worker %d tx %d: %v", id, i, err)
					return
				}
			}
			var total uint64
			for _, c := range g.Counts {
				total += c
			}
			if total != uint64(perWorker) {
				t.Errorf("worker %d: %d of %d committed", id, total, perWorker)
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Let the loosely synchronized clocks converge before checking: the
	// checker's snapshot must not trail a faster worker's last commit
	// (visible with single-version indexes, which are not snapshotted).
	engine.WarmUp(db)
	if err := w.CheckConsistency(); err != nil {
		t.Fatalf("post-run consistency: %v", err)
	}
	if s := db.Stats(); s.Commits == 0 {
		t.Fatal("no commits")
	}
}

func TestTPCCOnCicada(t *testing.T) {
	db := cicadaeng.New(engine.Config{Workers: 4, PhantomAvoidance: true}, core.DefaultOptions(4))
	runMix(t, db, SmallConfig(2), 150)
}

func TestTPCCOnCicadaSVIndex(t *testing.T) {
	db := cicadaeng.New(engine.Config{Workers: 2, PhantomAvoidance: false}, core.DefaultOptions(2))
	runMix(t, db, SmallConfig(1), 100)
}

func TestTPCCOnSilo(t *testing.T) {
	db := silo.New(engine.Config{Workers: 4, PhantomAvoidance: true})
	runMix(t, db, SmallConfig(2), 150)
}

func TestTPCCOnTwoPL(t *testing.T) {
	db := twopl.New(engine.Config{Workers: 2, PhantomAvoidance: true})
	runMix(t, db, SmallConfig(1), 100)
}

func TestTPCCNPMix(t *testing.T) {
	cfg := SmallConfig(1)
	cfg.NP = true
	db := cicadaeng.New(engine.Config{Workers: 2, PhantomAvoidance: true}, core.DefaultOptions(2))
	w := Setup(db, cfg)
	if err := w.Load(); err != nil {
		t.Fatal(err)
	}
	g := w.NewGen(0)
	wk := db.Worker(0)
	for i := 0; i < 200; i++ {
		if err := g.RunOne(wk); err != nil {
			t.Fatal(err)
		}
	}
	if g.Counts[TxOrderStatus]+g.Counts[TxDelivery]+g.Counts[TxStockLevel] != 0 {
		t.Fatalf("NP mix ran non-NP transactions: %v", g.Counts)
	}
	if g.Counts[TxNewOrder] == 0 || g.Counts[TxPayment] == 0 {
		t.Fatalf("NP mix counts: %v", g.Counts)
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestDeliveryDrainsNewOrders verifies Delivery actually consumes NEW-ORDER
// entries oldest-first and credits customers.
func TestDeliveryDrainsNewOrders(t *testing.T) {
	cfg := SmallConfig(1)
	db := cicadaeng.New(engine.Config{Workers: 1, PhantomAvoidance: true}, core.DefaultOptions(1))
	w := Setup(db, cfg)
	if err := w.Load(); err != nil {
		t.Fatal(err)
	}
	wk := db.Worker(0)
	g := w.NewGen(0)
	countNewOrders := func() int {
		n := 0
		if err := wk.Run(func(tx engine.Tx) error {
			n = 0
			for d := uint64(1); d <= uint64(cfg.Districts); d++ {
				if err := tx.IndexScan(w.iNewOrder, noKey(1, d, 0), noKey(1, d, maxOrder), -1,
					func(uint64, engine.RecordID) bool { n++; return true }); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	before := countNewOrders()
	if before == 0 {
		t.Fatal("loader created no new orders")
	}
	if err := g.Delivery(wk); err != nil {
		t.Fatal(err)
	}
	after := countNewOrders()
	if after != before-cfg.Districts {
		t.Fatalf("delivery consumed %d entries, want %d", before-after, cfg.Districts)
	}
}
