package tpcc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"cicada/internal/engine"
)

// Load populates the database per the TPC-C specification: items shared
// across warehouses; per warehouse 10 districts, 3000 customers per
// district, stock for every item, and 3000 initial orders per district of
// which the newest 900 are undelivered (scaled by Config). Warehouses are
// loaded in parallel across workers.
func (w *Workload) Load() error {
	// Items (single worker; read-mostly shared data).
	wk := w.db.Worker(0)
	const itemBatch = 200
	for lo := 1; lo <= w.cfg.Items; lo += itemBatch {
		hi := lo + itemBatch - 1
		if hi > w.cfg.Items {
			hi = w.cfg.Items
		}
		rng := rand.New(rand.NewSource(int64(lo)))
		if err := wk.Run(func(tx engine.Tx) error {
			for i := lo; i <= hi; i++ {
				rid, buf, err := tx.Insert(w.tItem, itemSize)
				if err != nil {
					return err
				}
				zero(buf)
				putI(buf, iPrice, int64(100+rng.Intn(9901))) // $1.00–$100.00
				putU(buf, iIMID, uint64(1+rng.Intn(10000)))
				if err := tx.IndexInsert(w.iItem, uint64(i), rid); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return fmt.Errorf("load items [%d,%d]: %w", lo, hi, err)
		}
	}
	// Warehouses in parallel.
	nw := w.db.Workers()
	errs := make([]error, nw)
	var wg sync.WaitGroup
	for id := 0; id < nw; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for wh := 1 + id; wh <= w.cfg.Warehouses; wh += nw {
				if err := w.loadWarehouse(w.db.Worker(id), uint64(wh)); err != nil {
					errs[id] = fmt.Errorf("warehouse %d: %w", wh, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

func (w *Workload) loadWarehouse(wk engine.Worker, wh uint64) error {
	rng := rand.New(rand.NewSource(int64(wh) * 31))
	if err := wk.Run(func(tx engine.Tx) error {
		rid, buf, err := tx.Insert(w.tWarehouse, warehouseSize)
		if err != nil {
			return err
		}
		zero(buf)
		putI(buf, wYTD, 30_000_000) // $300,000.00
		putI(buf, wTax, int64(rng.Intn(2001)))
		return tx.IndexInsert(w.iWarehouse, wh, rid)
	}); err != nil {
		return err
	}
	for d := uint64(1); d <= uint64(w.cfg.Districts); d++ {
		if err := wk.Run(func(tx engine.Tx) error {
			rid, buf, err := tx.Insert(w.tDistrict, districtSize)
			if err != nil {
				return err
			}
			zero(buf)
			putI(buf, dYTD, 3_000_000) // $30,000.00
			putI(buf, dTax, int64(rng.Intn(2001)))
			putU(buf, dNextOID, uint64(w.cfg.InitialOrdersPerDistrict)+1)
			return tx.IndexInsert(w.iDistrict, dKey(wh, d), rid)
		}); err != nil {
			return err
		}
		if err := w.loadCustomers(wk, rng, wh, d); err != nil {
			return err
		}
		if err := w.loadOrders(wk, rng, wh, d); err != nil {
			return err
		}
	}
	return w.loadStock(wk, rng, wh)
}

func (w *Workload) loadCustomers(wk engine.Worker, rng *rand.Rand, wh, d uint64) error {
	const batch = 100
	for lo := 1; lo <= w.cfg.CustomersPerDistrict; lo += batch {
		hi := lo + batch - 1
		if hi > w.cfg.CustomersPerDistrict {
			hi = w.cfg.CustomersPerDistrict
		}
		if err := wk.Run(func(tx engine.Tx) error {
			for c := lo; c <= hi; c++ {
				rid, buf, err := tx.Insert(w.tCustomer, customerSize)
				if err != nil {
					return err
				}
				zero(buf)
				putI(buf, cBalance, -1000) // -$10.00
				putI(buf, cYTDPayment, 1000)
				putI(buf, cDiscount, int64(rng.Intn(5001)))
				if rng.Intn(10) == 0 {
					buf[cCredit] = 1 // 10 % bad credit
				}
				// First 1000 customers use sequential last names, the rest
				// NURand, per the specification.
				var last uint64
				if c <= 1000 {
					last = uint64(c - 1)
				} else {
					last = lastNameID(rng)
				}
				putU(buf, cLastID, last)
				putU(buf, cFirst, rng.Uint64())
				putU(buf, cIDOff, uint64(c))
				copy(buf[cLastText:cLastText+16], LastName(last))
				if err := tx.IndexInsert(w.iCustomer, cKey(wh, d, uint64(c)), rid); err != nil {
					return err
				}
				if err := tx.IndexInsert(w.iCustLast, cLastKey(wh, d, last), rid); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

func (w *Workload) loadOrders(wk engine.Worker, rng *rand.Rand, wh, d uint64) error {
	n := w.cfg.InitialOrdersPerDistrict
	if n == 0 {
		return nil
	}
	// Orders are assigned to a random permutation of customers.
	perm := rng.Perm(w.cfg.CustomersPerDistrict)
	undeliveredFrom := n - n*3/10 + 1 // newest 30 % are undelivered
	const batch = 20
	for lo := 1; lo <= n; lo += batch {
		hi := lo + batch - 1
		if hi > n {
			hi = n
		}
		if err := wk.Run(func(tx engine.Tx) error {
			for o := lo; o <= hi; o++ {
				c := uint64(perm[(o-1)%len(perm)] + 1)
				olCnt := uint64(5 + rng.Intn(11))
				delivered := o < undeliveredFrom
				rid, buf, err := tx.Insert(w.tOrder, orderSize)
				if err != nil {
					return err
				}
				zero(buf)
				putU(buf, oCID, c)
				putU(buf, oEntryD, uint64(o))
				if delivered {
					putU(buf, oCarrierID, uint64(1+rng.Intn(10)))
				}
				putU(buf, oOLCnt, olCnt)
				putU(buf, oAllLocal, 1)
				if err := tx.IndexInsert(w.iOrder, oKey(wh, d, uint64(o)), rid); err != nil {
					return err
				}
				if err := tx.IndexInsert(w.iOrderCust, oCustKey(wh, d, c, uint64(o)), rid); err != nil {
					return err
				}
				if !delivered {
					nrid, nbuf, err := tx.Insert(w.tNewOrder, newOrderSize)
					if err != nil {
						return err
					}
					putU(nbuf, noOID, uint64(o))
					if err := tx.IndexInsert(w.iNewOrder, noKey(wh, d, uint64(o)), nrid); err != nil {
						return err
					}
				}
				for ol := uint64(1); ol <= olCnt; ol++ {
					lrid, lbuf, err := tx.Insert(w.tOrderLine, orderLineSize)
					if err != nil {
						return err
					}
					zero(lbuf)
					putU(lbuf, olIID, uint64(1+rng.Intn(w.cfg.Items)))
					putU(lbuf, olSupplyWID, wh)
					if delivered {
						putU(lbuf, olDeliveryD, uint64(o))
						putI(lbuf, olAmount, 0)
					} else {
						putI(lbuf, olAmount, int64(1+rng.Intn(999999)))
					}
					putU(lbuf, olQuantity, 5)
					if err := tx.IndexInsert(w.iOrderLine, olKey(wh, d, uint64(o), ol), lrid); err != nil {
						return err
					}
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

func (w *Workload) loadStock(wk engine.Worker, rng *rand.Rand, wh uint64) error {
	const batch = 100
	for lo := 1; lo <= w.cfg.Items; lo += batch {
		hi := lo + batch - 1
		if hi > w.cfg.Items {
			hi = w.cfg.Items
		}
		if err := wk.Run(func(tx engine.Tx) error {
			for i := lo; i <= hi; i++ {
				rid, buf, err := tx.Insert(w.tStock, stockSize)
				if err != nil {
					return err
				}
				zero(buf)
				putI(buf, sQuantity, int64(10+rng.Intn(91)))
				if err := tx.IndexInsert(w.iStock, sKey(wh, uint64(i)), rid); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}
