package tpcc

import "cicada/internal/engine"

// Config scales the benchmark. DefaultConfig matches the paper's settings;
// tests shrink Items/CustomersPerDistrict/InitialOrders for speed.
type Config struct {
	// Warehouses is the warehouse count: 1 and 4 for the contended
	// experiments, one per thread for the uncontended ones (§4.4).
	Warehouses int
	// Items is the ITEM/STOCK cardinality (spec: 100 000).
	Items int
	// Districts per warehouse (spec: 10).
	Districts int
	// CustomersPerDistrict (spec: 3000).
	CustomersPerDistrict int
	// InitialOrdersPerDistrict preloads this many orders, the newest 30 %
	// of which are undelivered (spec: 3000 / 900).
	InitialOrdersPerDistrict int
	// NP selects the TPC-C-NP mix: NewOrder and Payment only (Figure 5).
	NP bool
}

// DefaultConfig returns the specification-scale configuration.
func DefaultConfig(warehouses int) Config {
	return Config{
		Warehouses:               warehouses,
		Items:                    100_000,
		Districts:                10,
		CustomersPerDistrict:     3000,
		InitialOrdersPerDistrict: 3000,
	}
}

// SmallConfig returns a reduced-scale configuration for tests.
func SmallConfig(warehouses int) Config {
	return Config{
		Warehouses:               warehouses,
		Items:                    1000,
		Districts:                10,
		CustomersPerDistrict:     60,
		InitialOrdersPerDistrict: 30,
	}
}

// Workload is a TPC-C instance bound to a DB.
type Workload struct {
	cfg Config
	db  engine.DB

	tWarehouse engine.TableID
	tDistrict  engine.TableID
	tCustomer  engine.TableID
	tHistory   engine.TableID
	tOrder     engine.TableID
	tNewOrder  engine.TableID
	tOrderLine engine.TableID
	tItem      engine.TableID
	tStock     engine.TableID

	iWarehouse engine.IndexID // hash, key w
	iDistrict  engine.IndexID // hash, dKey
	iCustomer  engine.IndexID // hash, cKey
	iCustLast  engine.IndexID // ordered, cLastKey (duplicates)
	iItem      engine.IndexID // hash, item id
	iStock     engine.IndexID // hash, sKey
	iOrder     engine.IndexID // hash, oKey
	iOrderCust engine.IndexID // ordered, oCustKey (newest first)
	iNewOrder  engine.IndexID // ordered, noKey
	iOrderLine engine.IndexID // ordered, olKey
}

// Setup registers the TPC-C tables and indexes on db. Hash indexes are used
// for the tables that need no range queries and ordered indexes elsewhere,
// as in the DBx1000 implementations the paper uses (§4.2).
func Setup(db engine.DB, cfg Config) *Workload {
	w := &Workload{cfg: cfg, db: db}
	w.tWarehouse = db.CreateTable("warehouse")
	w.tDistrict = db.CreateTable("district")
	w.tCustomer = db.CreateTable("customer")
	w.tHistory = db.CreateTable("history")
	w.tOrder = db.CreateTable("orders")
	w.tNewOrder = db.CreateTable("new_order")
	w.tOrderLine = db.CreateTable("order_line")
	w.tItem = db.CreateTable("item")
	w.tStock = db.CreateTable("stock")

	nW := cfg.Warehouses
	w.iWarehouse = db.CreateHashIndex("i_warehouse", nW*2)
	w.iDistrict = db.CreateHashIndex("i_district", nW*cfg.Districts*2)
	w.iCustomer = db.CreateHashIndex("i_customer", nW*cfg.Districts*cfg.CustomersPerDistrict)
	w.iCustLast = db.CreateOrderedIndex("i_customer_last")
	w.iItem = db.CreateHashIndex("i_item", cfg.Items)
	w.iStock = db.CreateHashIndex("i_stock", nW*cfg.Items)
	w.iOrder = db.CreateHashIndex("i_order", nW*cfg.Districts*cfg.InitialOrdersPerDistrict*4)
	w.iOrderCust = db.CreateOrderedIndex("i_order_cust")
	w.iNewOrder = db.CreateOrderedIndex("i_new_order")
	w.iOrderLine = db.CreateOrderedIndex("i_order_line")
	return w
}

// Config returns the workload configuration.
func (w *Workload) Config() Config { return w.cfg }

// DB returns the bound database.
func (w *Workload) DB() engine.DB { return w.db }
