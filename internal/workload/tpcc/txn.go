package tpcc

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"cicada/internal/engine"
)

// TxType enumerates the TPC-C transaction types.
type TxType int

// Transaction types in mix order.
const (
	TxNewOrder TxType = iota
	TxPayment
	TxOrderStatus
	TxDelivery
	TxStockLevel
	txTypes
)

// String returns the transaction type name.
func (t TxType) String() string {
	return [...]string{"NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel"}[t]
}

// retryNF wraps a transaction body so that an ErrNotFound that escapes —
// which, once loading is complete, can only be a transiently inconsistent
// read under an optimistic scheme (e.g., an index entry observed while its
// record insert is still uncommitted, or mid-abort) — retries the
// transaction instead of failing the workload. Validation would have
// aborted such a transaction anyway; this mirrors how the DBx1000 harness
// treats "impossible" lookup misses.
func retryNF(fn func(tx engine.Tx) error) func(engine.Tx) error {
	return func(tx engine.Tx) error {
		err := fn(tx)
		if errors.Is(err, engine.ErrNotFound) {
			return engine.ErrAborted
		}
		return err
	}
}

// Gen drives TPC-C transactions for one worker. Inputs for each transaction
// are drawn before the transaction starts so retries replay identical
// inputs. Not safe for concurrent use.
type Gen struct {
	w    *Workload
	rng  *rand.Rand
	home uint64
	// Counts tallies committed transactions per type.
	Counts [txTypes]uint64
	// Sink consumes read results.
	Sink uint64

	scratchRids []engine.RecordID
	scratchIids map[uint64]struct{}
}

// NewGen creates a generator for worker id, whose home warehouse is
// id mod Warehouses + 1 (workers mostly interact with their local
// warehouse, §4.2).
func (w *Workload) NewGen(id int) *Gen {
	return &Gen{
		w:           w,
		rng:         rand.New(rand.NewSource(int64(id)*69997 + 3)),
		home:        uint64(id%w.cfg.Warehouses) + 1,
		scratchIids: make(map[uint64]struct{}, 64),
	}
}

// RunOne draws a transaction type from the mix and executes it.
func (g *Gen) RunOne(wk engine.Worker) error {
	var typ TxType
	if g.w.cfg.NP {
		if g.rng.Intn(100) < 50 {
			typ = TxNewOrder
		} else {
			typ = TxPayment
		}
	} else {
		switch roll := g.rng.Intn(100); {
		case roll < 45:
			typ = TxNewOrder
		case roll < 88:
			typ = TxPayment
		case roll < 92:
			typ = TxOrderStatus
		case roll < 96:
			typ = TxDelivery
		default:
			typ = TxStockLevel
		}
	}
	var err error
	switch typ {
	case TxNewOrder:
		err = g.NewOrder(wk)
		if errors.Is(err, engine.ErrUserAbort) {
			// The 1 % rollback counts as a completed NewOrder per spec.
			err = nil
		}
	case TxPayment:
		err = g.Payment(wk)
	case TxOrderStatus:
		err = g.OrderStatus(wk)
	case TxDelivery:
		err = g.Delivery(wk)
	default:
		err = g.StockLevel(wk)
	}
	if err == nil {
		g.Counts[typ]++
	}
	return err
}

type newOrderItem struct {
	iid    uint64
	supply uint64
	qty    int64
}

// NewOrder implements the TPC-C NewOrder transaction. 1 % of transactions
// roll back on an invalid item; about 1 % of items come from a remote
// warehouse, giving the ~10 % remote-transaction rate at 10 lines (§4.2).
func (g *Gen) NewOrder(wk engine.Worker) error {
	w := g.w
	wh := g.home
	d := uint64(1 + g.rng.Intn(w.cfg.Districts))
	c := customerID(g.rng)
	if uint64(w.cfg.CustomersPerDistrict) < 3000 {
		c = uint64(1 + g.rng.Intn(w.cfg.CustomersPerDistrict))
	}
	olCnt := 5 + g.rng.Intn(11)
	rollback := g.rng.Intn(100) == 0
	items := make([]newOrderItem, olCnt)
	allLocal := uint64(1)
	for i := range items {
		it := &items[i]
		it.iid = itemID(g.rng, uint64(w.cfg.Items))
		it.supply = wh
		if w.cfg.Warehouses > 1 && g.rng.Intn(100) == 0 {
			for it.supply == wh {
				it.supply = uint64(1 + g.rng.Intn(w.cfg.Warehouses))
			}
			allLocal = 0
		}
		it.qty = int64(1 + g.rng.Intn(10))
	}
	if rollback {
		items[olCnt-1].iid = 0 // unused item ID: triggers the rollback
	}
	return wk.Run(retryNF(func(tx engine.Tx) error {
		wrid, err := tx.IndexGet(w.iWarehouse, wh)
		if err != nil {
			return fmt.Errorf("warehouse %d: %w", wh, err)
		}
		wrec, err := tx.Read(w.tWarehouse, wrid)
		if err != nil {
			return err
		}
		wtax := getI(wrec, wTax)

		drid, err := tx.IndexGet(w.iDistrict, dKey(wh, d))
		if err != nil {
			return err
		}
		drec, err := tx.Update(w.tDistrict, drid, -1)
		if err != nil {
			return err
		}
		dtax := getI(drec, dTax)
		oid := getU(drec, dNextOID)
		putU(drec, dNextOID, oid+1)

		crid, err := tx.IndexGet(w.iCustomer, cKey(wh, d, c))
		if err != nil {
			return err
		}
		crec, err := tx.Read(w.tCustomer, crid)
		if err != nil {
			return err
		}
		discount := getI(crec, cDiscount)

		orid, obuf, err := tx.Insert(w.tOrder, orderSize)
		if err != nil {
			return err
		}
		zero(obuf)
		putU(obuf, oCID, c)
		putU(obuf, oEntryD, oid)
		putU(obuf, oOLCnt, uint64(olCnt))
		putU(obuf, oAllLocal, allLocal)
		if err := tx.IndexInsert(w.iOrder, oKey(wh, d, oid), orid); err != nil {
			return err
		}
		if err := tx.IndexInsert(w.iOrderCust, oCustKey(wh, d, c, oid), orid); err != nil {
			return err
		}
		nrid, nbuf, err := tx.Insert(w.tNewOrder, newOrderSize)
		if err != nil {
			return err
		}
		putU(nbuf, noOID, oid)
		if err := tx.IndexInsert(w.iNewOrder, noKey(wh, d, oid), nrid); err != nil {
			return err
		}

		total := int64(0)
		for i, it := range items {
			irid, err := tx.IndexGet(w.iItem, it.iid)
			if errors.Is(err, engine.ErrNotFound) {
				return engine.ErrUserAbort // spec clause 2.4.1.4 rollback
			}
			if err != nil {
				return err
			}
			irec, err := tx.Read(w.tItem, irid)
			if err != nil {
				return err
			}
			price := getI(irec, iPrice)

			srid, err := tx.IndexGet(w.iStock, sKey(it.supply, it.iid))
			if err != nil {
				return err
			}
			srec, err := tx.Update(w.tStock, srid, -1)
			if err != nil {
				return err
			}
			q := getI(srec, sQuantity)
			if q-it.qty >= 10 {
				putI(srec, sQuantity, q-it.qty)
			} else {
				putI(srec, sQuantity, q-it.qty+91)
			}
			addI(srec, sYTD, it.qty)
			incU(srec, sOrderCnt)
			if it.supply != wh {
				incU(srec, sRemoteCnt)
			}

			amount := it.qty * price
			total += amount
			lrid, lbuf, err := tx.Insert(w.tOrderLine, orderLineSize)
			if err != nil {
				return err
			}
			zero(lbuf)
			putU(lbuf, olIID, it.iid)
			putU(lbuf, olSupplyWID, it.supply)
			putU(lbuf, olQuantity, uint64(it.qty))
			putI(lbuf, olAmount, amount)
			copy(lbuf[olDistInfo:olDistInfo+24], srec[sDist+int(d-1)*24:])
			if err := tx.IndexInsert(w.iOrderLine, olKey(wh, d, oid, uint64(i+1)), lrid); err != nil {
				return err
			}
		}
		// total *(1 - discount) * (1 + wtax + dtax), in fixed point.
		g.Sink += uint64(total * (10000 - discount) / 10000 * (10000 + wtax + dtax) / 10000)
		return nil
	}))
}

// Payment implements the TPC-C Payment transaction: 60 % customer selection
// by last name, 15 % remote customers (§4.2).
func (g *Gen) Payment(wk engine.Worker) error {
	w := g.w
	wh := g.home
	d := uint64(1 + g.rng.Intn(w.cfg.Districts))
	cwh, cd := wh, d
	if w.cfg.Warehouses > 1 && g.rng.Intn(100) < 15 {
		for cwh == wh {
			cwh = uint64(1 + g.rng.Intn(w.cfg.Warehouses))
		}
		cd = uint64(1 + g.rng.Intn(w.cfg.Districts))
	}
	byLast := g.rng.Intn(100) < 60
	var c, last uint64
	if byLast {
		last = lastNameID(g.rng)
		if w.cfg.CustomersPerDistrict < 1000 {
			last = uint64(g.rng.Intn(w.cfg.CustomersPerDistrict))
		}
	} else {
		c = customerID(g.rng)
		if uint64(w.cfg.CustomersPerDistrict) < 3000 {
			c = uint64(1 + g.rng.Intn(w.cfg.CustomersPerDistrict))
		}
	}
	amount := int64(100 + g.rng.Intn(500_000)) // $1.00–$5000.00

	return wk.Run(retryNF(func(tx engine.Tx) error {
		wrid, err := tx.IndexGet(w.iWarehouse, wh)
		if err != nil {
			return err
		}
		wrec, err := tx.Update(w.tWarehouse, wrid, -1)
		if err != nil {
			return err
		}
		addI(wrec, wYTD, amount)

		drid, err := tx.IndexGet(w.iDistrict, dKey(wh, d))
		if err != nil {
			return err
		}
		drec, err := tx.Update(w.tDistrict, drid, -1)
		if err != nil {
			return err
		}
		addI(drec, dYTD, amount)

		var crid engine.RecordID
		if byLast {
			crid, err = g.customerByLast(tx, cwh, cd, last)
			if errors.Is(err, engine.ErrNotFound) {
				return nil // no customer with this name; treat as no-op
			}
		} else {
			crid, err = tx.IndexGet(w.iCustomer, cKey(cwh, cd, c))
		}
		if err != nil {
			return err
		}
		crec, err := tx.Update(w.tCustomer, crid, -1)
		if err != nil {
			return err
		}
		addI(crec, cBalance, -amount)
		addI(crec, cYTDPayment, amount)
		incU(crec, cPaymentCnt)
		if crec[cCredit] == 1 {
			// Bad credit: prepend payment info to C_DATA (500 bytes).
			copy(crec[cData+32:cData+500], crec[cData:cData+468])
			putU(crec, cData, getU(crec, cIDOff))
			putI(crec, cData+8, amount)
		}

		hrid, hbuf, err := tx.Insert(w.tHistory, historySize)
		if err != nil {
			return err
		}
		_ = hrid
		zero(hbuf)
		putI(hbuf, hAmount, amount)
		putU(hbuf, hCWID, cwh)
		putU(hbuf, hDID, d)
		putU(hbuf, hWID, wh)
		return nil
	}))
}

// customerByLast resolves a customer by last name: all matching customers
// are read, sorted by C_FIRST, and the middle one is chosen (spec clause
// 2.5.2.2).
func (g *Gen) customerByLast(tx engine.Tx, wh, d, last uint64) (engine.RecordID, error) {
	w := g.w
	key := cLastKey(wh, d, last)
	g.scratchRids = g.scratchRids[:0]
	err := tx.IndexScan(w.iCustLast, key, key, -1, func(_ uint64, rid engine.RecordID) bool {
		g.scratchRids = append(g.scratchRids, rid)
		return true
	})
	if err != nil {
		return 0, err
	}
	if len(g.scratchRids) == 0 {
		return 0, engine.ErrNotFound
	}
	type cf struct {
		rid   engine.RecordID
		first uint64
	}
	matches := make([]cf, 0, len(g.scratchRids))
	for _, rid := range g.scratchRids {
		crec, err := tx.Read(w.tCustomer, rid)
		if err != nil {
			return 0, err
		}
		matches = append(matches, cf{rid: rid, first: getU(crec, cFirst)})
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].first < matches[j].first })
	return matches[(len(matches)-1)/2].rid, nil
}

// OrderStatus implements the read-only OrderStatus transaction; it runs as
// a read-only snapshot transaction where the engine supports them (§4.2
// optimization (1)).
func (g *Gen) OrderStatus(wk engine.Worker) error {
	w := g.w
	wh := g.home
	d := uint64(1 + g.rng.Intn(w.cfg.Districts))
	byLast := g.rng.Intn(100) < 60
	var c, last uint64
	if byLast {
		last = lastNameID(g.rng)
		if w.cfg.CustomersPerDistrict < 1000 {
			last = uint64(g.rng.Intn(w.cfg.CustomersPerDistrict))
		}
	} else {
		c = customerID(g.rng)
		if uint64(w.cfg.CustomersPerDistrict) < 3000 {
			c = uint64(1 + g.rng.Intn(w.cfg.CustomersPerDistrict))
		}
	}
	return wk.RunRO(retryNF(func(tx engine.Tx) error {
		var crid engine.RecordID
		var err error
		if byLast {
			crid, err = g.customerByLast(tx, wh, d, last)
			if errors.Is(err, engine.ErrNotFound) {
				return nil
			}
		} else {
			crid, err = tx.IndexGet(w.iCustomer, cKey(wh, d, c))
		}
		if err != nil {
			return err
		}
		crec, err := tx.Read(w.tCustomer, crid)
		if err != nil {
			return err
		}
		g.Sink += uint64(getI(crec, cBalance))
		if byLast {
			c = getU(crec, cIDOff)
		}
		// Latest order for the customer: the customer-order index stores
		// inverted order IDs, so the first entry is the newest.
		var oid uint64
		found := false
		lo := oCustKey(wh, d, c, maxOrder)
		hi := oCustKey(wh, d, c, 0)
		if err := tx.IndexScan(w.iOrderCust, lo, hi, 1, func(key uint64, rid engine.RecordID) bool {
			oid = oCustOrder(key)
			found = true
			return false
		}); err != nil {
			return err
		}
		if !found {
			return nil
		}
		orid, err := tx.IndexGet(w.iOrder, oKey(wh, d, oid))
		if err != nil {
			return err
		}
		orec, err := tx.Read(w.tOrder, orid)
		if err != nil {
			return err
		}
		g.Sink += getU(orec, oCarrierID)
		return tx.IndexScan(w.iOrderLine, olKey(wh, d, oid, 0), olKey(wh, d, oid, 15), -1,
			func(_ uint64, lrid engine.RecordID) bool {
				lrec, err := tx.Read(w.tOrderLine, lrid)
				if err == nil {
					g.Sink += getU(lrec, olIID)
				}
				return true
			})
	}))
}

// Delivery implements the Delivery transaction: for each district, the
// oldest undelivered order is delivered (NEW-ORDER entry removed, carrier
// assigned, order lines stamped, customer balance credited).
func (g *Gen) Delivery(wk engine.Worker) error {
	w := g.w
	wh := g.home
	carrier := uint64(1 + g.rng.Intn(10))
	return wk.Run(retryNF(func(tx engine.Tx) error {
		for d := uint64(1); d <= uint64(w.cfg.Districts); d++ {
			var oid uint64
			var nrid engine.RecordID
			found := false
			if err := tx.IndexScan(w.iNewOrder, noKey(wh, d, 0), noKey(wh, d, maxOrder), 1,
				func(key uint64, rid engine.RecordID) bool {
					oid = noOrder(key)
					nrid = rid
					found = true
					return false
				}); err != nil {
				return err
			}
			if !found {
				continue // no undelivered order in this district
			}
			if err := tx.IndexDelete(w.iNewOrder, noKey(wh, d, oid), nrid); err != nil {
				return err
			}
			if err := tx.Delete(w.tNewOrder, nrid); err != nil {
				return err
			}
			orid, err := tx.IndexGet(w.iOrder, oKey(wh, d, oid))
			if err != nil {
				return err
			}
			orec, err := tx.Update(w.tOrder, orid, -1)
			if err != nil {
				return err
			}
			c := getU(orec, oCID)
			putU(orec, oCarrierID, carrier)

			// Collect the order's lines first, then update them.
			g.scratchRids = g.scratchRids[:0]
			if err := tx.IndexScan(w.iOrderLine, olKey(wh, d, oid, 0), olKey(wh, d, oid, 15), -1,
				func(_ uint64, rid engine.RecordID) bool {
					g.scratchRids = append(g.scratchRids, rid)
					return true
				}); err != nil {
				return err
			}
			sum := int64(0)
			for _, lrid := range g.scratchRids {
				lrec, err := tx.Update(w.tOrderLine, lrid, -1)
				if err != nil {
					return err
				}
				putU(lrec, olDeliveryD, oid)
				sum += getI(lrec, olAmount)
			}
			crid, err := tx.IndexGet(w.iCustomer, cKey(wh, d, c))
			if err != nil {
				return err
			}
			crec, err := tx.Update(w.tCustomer, crid, -1)
			if err != nil {
				return err
			}
			addI(crec, cBalance, sum)
			incU(crec, cDeliveryCnt)
		}
		return nil
	}))
}

// StockLevel implements the read-only StockLevel transaction: count stock
// below a threshold among the items of the district's last 20 orders.
func (g *Gen) StockLevel(wk engine.Worker) error {
	w := g.w
	wh := g.home
	d := uint64(1 + g.rng.Intn(w.cfg.Districts))
	threshold := int64(10 + g.rng.Intn(11))
	return wk.RunRO(retryNF(func(tx engine.Tx) error {
		drid, err := tx.IndexGet(w.iDistrict, dKey(wh, d))
		if err != nil {
			return err
		}
		drec, err := tx.Read(w.tDistrict, drid)
		if err != nil {
			return err
		}
		next := getU(drec, dNextOID)
		lo := uint64(1)
		if next > 20 {
			lo = next - 20
		}
		if next == 0 || lo >= next {
			return nil
		}
		clear(g.scratchIids)
		g.scratchRids = g.scratchRids[:0]
		if err := tx.IndexScan(w.iOrderLine, olKey(wh, d, lo, 0), olKey(wh, d, next-1, 15), -1,
			func(_ uint64, rid engine.RecordID) bool {
				g.scratchRids = append(g.scratchRids, rid)
				return true
			}); err != nil {
			return err
		}
		for _, lrid := range g.scratchRids {
			lrec, err := tx.Read(w.tOrderLine, lrid)
			if err != nil {
				return err
			}
			g.scratchIids[getU(lrec, olIID)] = struct{}{}
		}
		low := uint64(0)
		for iid := range g.scratchIids {
			srid, err := tx.IndexGet(w.iStock, sKey(wh, iid))
			if err != nil {
				return err
			}
			srec, err := tx.Read(w.tStock, srid)
			if err != nil {
				return err
			}
			if getI(srec, sQuantity) < threshold {
				low++
			}
		}
		g.Sink += low
		return nil
	}))
}
