// Package tatp implements the Telecommunication Application Transaction
// Processing benchmark (TATP), referenced by the paper's Appendix B as a
// workload dominated by single-record reads that benefits from Cicada's
// transaction-less direct reads. The standard seven-transaction mix is
// implemented: GetSubscriberData 35 %, GetNewDestination 10 %,
// GetAccessData 35 %, UpdateSubscriberData 2 %, UpdateLocation 14 %,
// InsertCallForwarding 2 %, DeleteCallForwarding 2 %. Per the TATP
// specification, lookups of absent rows and conflicting inserts are
// expected outcomes that count as completed transactions.
package tatp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"cicada/internal/engine"
)

// Config scales the benchmark.
type Config struct {
	// Subscribers is the SUBSCRIBER table size (spec default 100 000).
	Subscribers int
	// DirectRead uses the engine's transaction-less single-record read for
	// GetSubscriberData when the engine supports it (Appendix B).
	DirectRead bool
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config { return Config{Subscribers: 100_000} }

// Record layouts (fixed offsets, encoding/binary little endian).
const (
	subscriberSize = 48
	subVLR         = 0  // uint64 vlr_location
	subMSC         = 8  // uint64 msc_location
	subBits        = 16 // 10 bytes bit_1..bit_10
	subHex         = 26 // 10 bytes hex_1..hex_10
	subByte2       = 36 // 10 bytes byte2_1..byte2_10

	accessInfoSize = 16 // data1..data4, data5/6 text surrogate
	aiData1        = 0

	specialFacilitySize = 24
	sfIsActive          = 0 // byte
	sfDataA             = 8
	sfDataB             = 16

	callForwardingSize = 24
	cfEndTime          = 0
	cfNumberX          = 8
)

func aiKey(s uint64, ai uint64) uint64 { return s<<3 | ai }
func sfKey(s uint64, sf uint64) uint64 { return s<<3 | sf }
func cfKey(s uint64, sf uint64, start uint64) uint64 {
	return s<<5 | sf<<2 | start/8
}

// Workload is a loaded TATP instance.
type Workload struct {
	cfg Config
	db  engine.DB

	tSub engine.TableID
	tAI  engine.TableID
	tSF  engine.TableID
	tCF  engine.TableID

	iSub engine.IndexID // hash, s_id
	iAI  engine.IndexID // hash, aiKey
	iSF  engine.IndexID // hash, sfKey
	iCF  engine.IndexID // ordered, cfKey (range over start times)
}

// Setup registers the TATP tables and indexes.
func Setup(db engine.DB, cfg Config) *Workload {
	w := &Workload{cfg: cfg, db: db}
	w.tSub = db.CreateTable("subscriber")
	w.tAI = db.CreateTable("access_info")
	w.tSF = db.CreateTable("special_facility")
	w.tCF = db.CreateTable("call_forwarding")
	w.iSub = db.CreateHashIndex("i_subscriber", cfg.Subscribers)
	w.iAI = db.CreateHashIndex("i_access_info", cfg.Subscribers*3)
	w.iSF = db.CreateHashIndex("i_special_facility", cfg.Subscribers*3)
	w.iCF = db.CreateOrderedIndex("i_call_forwarding")
	return w
}

// Load populates the tables per the TATP population rules, in parallel.
func (w *Workload) Load() error {
	nw := w.db.Workers()
	errs := make([]error, nw)
	var wg sync.WaitGroup
	for id := 0; id < nw; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)*7901 + 5))
			wk := w.db.Worker(id)
			const batch = 50
			for lo := 1 + id*batch; lo <= w.cfg.Subscribers; lo += nw * batch {
				hi := lo + batch - 1
				if hi > w.cfg.Subscribers {
					hi = w.cfg.Subscribers
				}
				if err := wk.Run(func(tx engine.Tx) error {
					for s := lo; s <= hi; s++ {
						if err := w.loadSubscriber(tx, rng, uint64(s)); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					errs[id] = fmt.Errorf("load [%d,%d]: %w", lo, hi, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func (w *Workload) loadSubscriber(tx engine.Tx, rng *rand.Rand, s uint64) error {
	rid, buf, err := tx.Insert(w.tSub, subscriberSize)
	if err != nil {
		return err
	}
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint64(buf[subVLR:], rng.Uint64()>>32)
	binary.LittleEndian.PutUint64(buf[subMSC:], rng.Uint64()>>32)
	for i := 0; i < 10; i++ {
		buf[subBits+i] = byte(rng.Intn(2))
		buf[subHex+i] = byte(rng.Intn(16))
		buf[subByte2+i] = byte(rng.Intn(256))
	}
	if err := tx.IndexInsert(w.iSub, s, rid); err != nil {
		return err
	}
	// 1–4 ACCESS_INFO rows.
	nAI := 1 + rng.Intn(4)
	for _, ai := range rng.Perm(4)[:nAI] {
		arid, abuf, err := tx.Insert(w.tAI, accessInfoSize)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(abuf[aiData1:], rng.Uint64())
		binary.LittleEndian.PutUint64(abuf[8:], rng.Uint64())
		if err := tx.IndexInsert(w.iAI, aiKey(s, uint64(ai+1)), arid); err != nil {
			return err
		}
	}
	// 1–4 SPECIAL_FACILITY rows, each with 0–3 CALL_FORWARDING rows.
	nSF := 1 + rng.Intn(4)
	for _, sf := range rng.Perm(4)[:nSF] {
		frid, fbuf, err := tx.Insert(w.tSF, specialFacilitySize)
		if err != nil {
			return err
		}
		for i := range fbuf {
			fbuf[i] = 0
		}
		if rng.Intn(100) < 85 {
			fbuf[sfIsActive] = 1
		}
		binary.LittleEndian.PutUint64(fbuf[sfDataA:], uint64(rng.Intn(256)))
		if err := tx.IndexInsert(w.iSF, sfKey(s, uint64(sf+1)), frid); err != nil {
			return err
		}
		nCF := rng.Intn(4)
		for _, st := range rng.Perm(3)[:nCF] {
			crid, cbuf, err := tx.Insert(w.tCF, callForwardingSize)
			if err != nil {
				return err
			}
			start := uint64(st * 8)
			binary.LittleEndian.PutUint64(cbuf[cfEndTime:], start+uint64(1+rng.Intn(8)))
			binary.LittleEndian.PutUint64(cbuf[cfNumberX:], rng.Uint64())
			if err := tx.IndexInsert(w.iCF, cfKey(s, uint64(sf+1), start), crid); err != nil {
				return err
			}
		}
	}
	return nil
}

// Gen drives TATP transactions for one worker.
type Gen struct {
	w   *Workload
	rng *rand.Rand
	// Sink consumes read results.
	Sink uint64
	// DirectReads counts GetSubscriberData served without a transaction.
	DirectReads uint64
}

// NewGen creates a generator for worker id.
func (w *Workload) NewGen(id int) *Gen {
	return &Gen{w: w, rng: rand.New(rand.NewSource(int64(id)*31337 + 11))}
}

func (g *Gen) subscriber() uint64 { return uint64(1 + g.rng.Intn(g.w.cfg.Subscribers)) }

// RunOne executes one transaction from the TATP mix.
func (g *Gen) RunOne(wk engine.Worker) error {
	roll := g.rng.Intn(100)
	switch {
	case roll < 35:
		return g.GetSubscriberData(wk)
	case roll < 45:
		return g.GetNewDestination(wk)
	case roll < 80:
		return g.GetAccessData(wk)
	case roll < 82:
		return g.UpdateSubscriberData(wk)
	case roll < 96:
		return g.UpdateLocation(wk)
	case roll < 98:
		return g.InsertCallForwarding(wk)
	default:
		return g.DeleteCallForwarding(wk)
	}
}

// GetSubscriberData reads one subscriber row (35 % of the mix). With
// Config.DirectRead and a capable engine, the read bypasses transaction
// initialization entirely (Appendix B).
func (g *Gen) GetSubscriberData(wk engine.Worker) error {
	s := g.subscriber()
	if g.w.cfg.DirectRead {
		if dr, ok := wk.(engine.DirectReader); ok {
			// The index lookup still runs transactionally (the snapshot's
			// index view); only the record read is transaction-less. For a
			// read-mostly table the rid is stable, so cache-less direct
			// lookup is served from the hash index inside a tiny RO txn.
			var rid engine.RecordID
			err := wk.RunRO(func(tx engine.Tx) error {
				r, err := tx.IndexGet(g.w.iSub, s)
				rid = r
				return err
			})
			if err != nil {
				return err
			}
			if d, ok := dr.ReadDirect(g.w.tSub, rid); ok {
				g.Sink += binary.LittleEndian.Uint64(d[subVLR:])
				g.DirectReads++
				return nil
			}
			// Fall through to the transactional path on a miss.
		}
	}
	return wk.RunRO(func(tx engine.Tx) error {
		rid, err := tx.IndexGet(g.w.iSub, s)
		if err != nil {
			return err
		}
		d, err := tx.Read(g.w.tSub, rid)
		if err != nil {
			return err
		}
		g.Sink += binary.LittleEndian.Uint64(d[subVLR:]) + uint64(d[subBits])
		return nil
	})
}

// GetNewDestination reads an active SPECIAL_FACILITY row and its matching
// CALL_FORWARDING rows (10 %). ~27 % of executions find no match, which is
// a successful outcome per the specification.
func (g *Gen) GetNewDestination(wk engine.Worker) error {
	s := g.subscriber()
	sf := uint64(1 + g.rng.Intn(4))
	tm := uint64(g.rng.Intn(3) * 8)
	return wk.RunRO(func(tx engine.Tx) error {
		frid, err := tx.IndexGet(g.w.iSF, sfKey(s, sf))
		if errors.Is(err, engine.ErrNotFound) {
			return nil // no such facility: expected outcome
		}
		if err != nil {
			return err
		}
		fd, err := tx.Read(g.w.tSF, frid)
		if err != nil {
			return err
		}
		if fd[sfIsActive] == 0 {
			return nil
		}
		return tx.IndexScan(g.w.iCF, cfKey(s, sf, 0), cfKey(s, sf, 16), -1,
			func(_ uint64, crid engine.RecordID) bool {
				cd, err := tx.Read(g.w.tCF, crid)
				if err != nil {
					return true
				}
				if tm < binary.LittleEndian.Uint64(cd[cfEndTime:]) {
					g.Sink += binary.LittleEndian.Uint64(cd[cfNumberX:])
				}
				return true
			})
	})
}

// GetAccessData reads one ACCESS_INFO row (35 %); ~37.5 % of executions
// find no row, a successful outcome.
func (g *Gen) GetAccessData(wk engine.Worker) error {
	s := g.subscriber()
	ai := uint64(1 + g.rng.Intn(4))
	return wk.RunRO(func(tx engine.Tx) error {
		rid, err := tx.IndexGet(g.w.iAI, aiKey(s, ai))
		if errors.Is(err, engine.ErrNotFound) {
			return nil
		}
		if err != nil {
			return err
		}
		d, err := tx.Read(g.w.tAI, rid)
		if err != nil {
			return err
		}
		g.Sink += binary.LittleEndian.Uint64(d[aiData1:])
		return nil
	})
}

// UpdateSubscriberData updates SUBSCRIBER.bit_1 and SPECIAL_FACILITY.data_a
// (2 %); the facility may be absent (~37.5 %), a successful outcome.
func (g *Gen) UpdateSubscriberData(wk engine.Worker) error {
	s := g.subscriber()
	sf := uint64(1 + g.rng.Intn(4))
	bit := byte(g.rng.Intn(2))
	dataA := uint64(g.rng.Intn(256))
	return wk.Run(func(tx engine.Tx) error {
		srid, err := tx.IndexGet(g.w.iSub, s)
		if err != nil {
			return err
		}
		sb, err := tx.Update(g.w.tSub, srid, -1)
		if err != nil {
			return err
		}
		sb[subBits] = bit
		frid, err := tx.IndexGet(g.w.iSF, sfKey(s, sf))
		if errors.Is(err, engine.ErrNotFound) {
			return nil
		}
		if err != nil {
			return err
		}
		fb, err := tx.Update(g.w.tSF, frid, -1)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(fb[sfDataA:], dataA)
		return nil
	})
}

// UpdateLocation updates SUBSCRIBER.vlr_location (14 %).
func (g *Gen) UpdateLocation(wk engine.Worker) error {
	s := g.subscriber()
	loc := g.rng.Uint64() >> 32
	return wk.Run(func(tx engine.Tx) error {
		rid, err := tx.IndexGet(g.w.iSub, s)
		if err != nil {
			return err
		}
		buf, err := tx.Update(g.w.tSub, rid, -1)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf[subVLR:], loc)
		return nil
	})
}

// InsertCallForwarding inserts a CALL_FORWARDING row (2 %); ~31 % of
// executions hit an existing row, a successful outcome.
func (g *Gen) InsertCallForwarding(wk engine.Worker) error {
	s := g.subscriber()
	sf := uint64(1 + g.rng.Intn(4))
	start := uint64(g.rng.Intn(3) * 8)
	end := start + uint64(1+g.rng.Intn(8))
	numberx := g.rng.Uint64()
	return wk.Run(func(tx engine.Tx) error {
		if _, err := tx.IndexGet(g.w.iSF, sfKey(s, sf)); errors.Is(err, engine.ErrNotFound) {
			return nil // no facility to forward from
		} else if err != nil {
			return err
		}
		key := cfKey(s, sf, start)
		if _, err := tx.IndexGet(g.w.iCF, key); err == nil {
			return nil // row exists: expected outcome
		} else if !errors.Is(err, engine.ErrNotFound) {
			return err
		}
		rid, buf, err := tx.Insert(g.w.tCF, callForwardingSize)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf[cfEndTime:], end)
		binary.LittleEndian.PutUint64(buf[cfNumberX:], numberx)
		return tx.IndexInsert(g.w.iCF, key, rid)
	})
}

// DeleteCallForwarding removes a CALL_FORWARDING row (2 %); ~69 % of
// executions find none, a successful outcome.
func (g *Gen) DeleteCallForwarding(wk engine.Worker) error {
	s := g.subscriber()
	sf := uint64(1 + g.rng.Intn(4))
	start := uint64(g.rng.Intn(3) * 8)
	return wk.Run(func(tx engine.Tx) error {
		key := cfKey(s, sf, start)
		rid, err := tx.IndexGet(g.w.iCF, key)
		if errors.Is(err, engine.ErrNotFound) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := tx.IndexDelete(g.w.iCF, key, rid); err != nil {
			return err
		}
		err = tx.Delete(g.w.tCF, rid)
		if errors.Is(err, engine.ErrNotFound) {
			return engine.ErrAborted // racing delete: retry
		}
		return err
	})
}
