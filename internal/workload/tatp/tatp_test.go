package tatp

import (
	"sync"
	"testing"
	"testing/quick"

	"cicada/internal/baselines/silo"
	"cicada/internal/cicadaeng"
	"cicada/internal/core"
	"cicada/internal/engine"
)

func TestKeyPackingDisjoint(t *testing.T) {
	f := func(s1, s2 uint16, a, b uint8) bool {
		sa, sb := uint64(s1)+1, uint64(s2)+1
		ai := uint64(a%4) + 1
		sf := uint64(b%4) + 1
		st := uint64(b%3) * 8
		// Keys for different subscribers never collide.
		if sa != sb {
			if aiKey(sa, ai) == aiKey(sb, ai) || sfKey(sa, sf) == sfKey(sb, sf) ||
				cfKey(sa, sf, st) == cfKey(sb, sf, st) {
				return false
			}
		}
		// CF keys for the same (s, sf) are ordered by start time.
		return cfKey(sa, sf, 0) < cfKey(sa, sf, 8) && cfKey(sa, sf, 8) < cfKey(sa, sf, 16)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func runMix(t *testing.T, db engine.DB, cfg Config, perWorker int) uint64 {
	t.Helper()
	w := Setup(db, cfg)
	if err := w.Load(); err != nil {
		t.Fatalf("load: %v", err)
	}
	engine.WarmUp(db)
	var direct uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for id := 0; id < db.Workers(); id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := w.NewGen(id)
			wk := db.Worker(id)
			for i := 0; i < perWorker; i++ {
				if err := g.RunOne(wk); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
			mu.Lock()
			direct += g.DirectReads
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	return direct
}

func TestTATPOnCicada(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Subscribers = 2000
	db := cicadaeng.New(engine.Config{Workers: 4, PhantomAvoidance: true}, core.DefaultOptions(4))
	runMix(t, db, cfg, 300)
	if s := db.Stats(); s.Commits == 0 {
		t.Fatal("no commits")
	}
}

func TestTATPOnSilo(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Subscribers = 2000
	db := silo.New(engine.Config{Workers: 2, PhantomAvoidance: true})
	runMix(t, db, cfg, 300)
}

func TestTATPDirectReads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Subscribers = 1000
	cfg.DirectRead = true
	db := cicadaeng.New(engine.Config{Workers: 2, PhantomAvoidance: true}, core.DefaultOptions(2))
	direct := runMix(t, db, cfg, 400)
	if direct == 0 {
		t.Fatal("no direct reads served despite DirectRead=true")
	}
}

func TestTATPDirectReadFallbackOnBaselines(t *testing.T) {
	// Baselines don't implement DirectReader; DirectRead must fall back to
	// the transactional path without error.
	cfg := DefaultConfig()
	cfg.Subscribers = 500
	cfg.DirectRead = true
	db := silo.New(engine.Config{Workers: 1, PhantomAvoidance: true})
	direct := runMix(t, db, cfg, 200)
	if direct != 0 {
		t.Fatalf("silo served %d direct reads", direct)
	}
}

// TestCallForwardingChurn exercises insert/delete consistency: after heavy
// churn every CF index entry must point to a live record.
func TestCallForwardingChurn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Subscribers = 200
	db := cicadaeng.New(engine.Config{Workers: 4, PhantomAvoidance: true}, core.DefaultOptions(4))
	w := Setup(db, cfg)
	if err := w.Load(); err != nil {
		t.Fatal(err)
	}
	engine.WarmUp(db)
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := w.NewGen(id)
			wk := db.Worker(id)
			for i := 0; i < 500; i++ {
				var err error
				if i%2 == 0 {
					err = g.InsertCallForwarding(wk)
				} else {
					err = g.DeleteCallForwarding(wk)
				}
				if err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Audit: every CF index entry resolves to a readable record.
	if err := db.Worker(0).Run(func(tx engine.Tx) error {
		return tx.IndexScan(w.iCF, 0, ^uint64(0), -1, func(key uint64, rid engine.RecordID) bool {
			if _, err := tx.Read(w.tCF, rid); err != nil {
				t.Errorf("dangling CF entry key=%d rid=%d: %v", key, rid, err)
				return false
			}
			return true
		})
	}); err != nil {
		t.Fatal(err)
	}
}
