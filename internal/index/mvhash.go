// Package index implements Cicada's multi-version indexes (§3.6). Both the
// hash index and the B+-tree store their nodes as records in ordinary Cicada
// tables: node reads join the transaction's read set and node writes stay in
// thread-local memory until validation, so index updates are deferred
// automatically, aborted transactions never touch global index state, and
// index-node validation precludes phantoms. Node records are sized to fit
// Cicada's inline limit (≤ 216 bytes), so hot index nodes avoid indirection
// via best-effort inlining (§3.3, §4.6).
package index

import (
	"encoding/binary"
	"errors"

	"cicada/internal/core"
	"cicada/internal/storage"
)

// Errors returned by index operations (in addition to transaction errors).
var (
	// ErrDuplicate reports a unique-key violation.
	ErrDuplicate = errors.New("index: duplicate key")
	// ErrUnsupported reports a scan on an unordered index.
	ErrUnsupported = errors.New("index: operation not supported")
)

// MVIndex is the interface shared by the multi-version hash index and
// B+-tree. All operations run inside the caller's transaction.
type MVIndex interface {
	// Get returns the first record ID for key.
	Get(tx *core.Txn, key uint64) (storage.RecordID, error)
	// Insert adds (key → rid).
	Insert(tx *core.Txn, key uint64, rid storage.RecordID) error
	// Delete removes (key → rid).
	Delete(tx *core.Txn, key uint64, rid storage.RecordID) error
	// Scan visits entries with lo ≤ key ≤ hi in key order (ordered
	// indexes only) until fn returns false or limit entries are emitted.
	Scan(tx *core.Txn, lo, hi uint64, limit int, fn func(key uint64, rid storage.RecordID) bool) error
}

// Hash bucket record layout (fits the 216-byte inline limit):
//
//	[0:2)    count (uint16)
//	[2:10)   overflow bucket record ID + 1 (uint64, 0 = none)
//	[10:202) pairs: bucketCap × (key uint64, rid uint64)
const (
	bucketCap  = 12
	bucketHdr  = 10
	bucketSize = bucketHdr + bucketCap*16
)

// MVHash is Cicada's multi-version hash index: a fixed array of bucket
// records plus overflow bucket chains, all stored in a Cicada table. An
// absent bucket record means an empty bucket, so no initialization pass is
// needed; absent-bucket reads are validated like any other read.
type MVHash struct {
	tbl     *core.Table
	buckets uint64
	unique  bool
}

// NewMVHash creates a multi-version hash index backed by its own table.
// buckets is rounded up to a power of two.
func NewMVHash(e *core.Engine, name string, capacityHint int, unique bool) *MVHash {
	n := uint64(1)
	for int(n) < capacityHint/bucketCap+1 {
		n <<= 1
	}
	h := &MVHash{tbl: e.CreateTable(name), buckets: n, unique: unique}
	h.tbl.Storage().Reserve(n) // bucket heads exist; no versions yet
	return h
}

// Table exposes the backing table (for inspection in tests/benchmarks).
func (h *MVHash) Table() *core.Table { return h.tbl }

//cicada:noalloc
func (h *MVHash) bucket(key uint64) storage.RecordID {
	return storage.RecordID((key * 0x9E3779B97F4A7C15) & (h.buckets - 1))
}

func bucketCount(b []byte) int       { return int(binary.LittleEndian.Uint16(b[0:2])) }
func setBucketCount(b []byte, n int) { binary.LittleEndian.PutUint16(b[0:2], uint16(n)) }
func bucketOverflow(b []byte) (storage.RecordID, bool) {
	v := binary.LittleEndian.Uint64(b[2:10])
	if v == 0 {
		return 0, false
	}
	return storage.RecordID(v - 1), true
}
func setBucketOverflow(b []byte, rid storage.RecordID) {
	binary.LittleEndian.PutUint64(b[2:10], uint64(rid)+1)
}
func bucketPair(b []byte, i int) (uint64, storage.RecordID) {
	off := bucketHdr + i*16
	return binary.LittleEndian.Uint64(b[off:]),
		storage.RecordID(binary.LittleEndian.Uint64(b[off+8:]))
}
func setBucketPair(b []byte, i int, key uint64, rid storage.RecordID) {
	off := bucketHdr + i*16
	binary.LittleEndian.PutUint64(b[off:], key)
	binary.LittleEndian.PutUint64(b[off+8:], uint64(rid))
}

// Get returns the first record ID for key.
//
//cicada:noalloc
func (h *MVHash) Get(tx *core.Txn, key uint64) (storage.RecordID, error) {
	cur := h.bucket(key)
	for {
		data, err := tx.Read(h.tbl, cur)
		if errors.Is(err, core.ErrNotFound) {
			return storage.InvalidRecordID, core.ErrNotFound
		}
		if err != nil {
			return storage.InvalidRecordID, err
		}
		n := bucketCount(data)
		for i := 0; i < n; i++ {
			if k, r := bucketPair(data, i); k == key {
				return r, nil
			}
		}
		ov, ok := bucketOverflow(data)
		if !ok {
			return storage.InvalidRecordID, core.ErrNotFound
		}
		cur = ov
	}
}

// GetAll appends every record ID for key to dst.
//
//cicada:noalloc
func (h *MVHash) GetAll(tx *core.Txn, key uint64, dst []storage.RecordID) ([]storage.RecordID, error) {
	cur := h.bucket(key)
	for {
		data, err := tx.Read(h.tbl, cur)
		if errors.Is(err, core.ErrNotFound) {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
		n := bucketCount(data)
		for i := 0; i < n; i++ {
			if k, r := bucketPair(data, i); k == key {
				dst = append(dst, r)
			}
		}
		ov, ok := bucketOverflow(data)
		if !ok {
			return dst, nil
		}
		cur = ov
	}
}

// Insert adds (key → rid), allocating overflow buckets as needed. For a
// unique index it returns ErrDuplicate if the key exists.
//
//cicada:noalloc
func (h *MVHash) Insert(tx *core.Txn, key uint64, rid storage.RecordID) error {
	cur := h.bucket(key)
	for {
		data, err := tx.Read(h.tbl, cur)
		if errors.Is(err, core.ErrNotFound) {
			// Empty bucket: materialize it with a blind write (validated
			// against concurrent materialization via the absent-read check).
			buf, werr := tx.Write(h.tbl, cur, bucketSize)
			if werr != nil {
				return werr
			}
			clearBytes(buf)
			setBucketCount(buf, 1)
			setBucketPair(buf, 0, key, rid)
			return nil
		}
		if err != nil {
			return err
		}
		n := bucketCount(data)
		if h.unique {
			for i := 0; i < n; i++ {
				if k, _ := bucketPair(data, i); k == key {
					return ErrDuplicate
				}
			}
		}
		if n < bucketCap {
			buf, uerr := tx.Update(h.tbl, cur, -1)
			if uerr != nil {
				return uerr
			}
			setBucketCount(buf, n+1)
			setBucketPair(buf, n, key, rid)
			return nil
		}
		ov, ok := bucketOverflow(data)
		if ok {
			cur = ov
			continue
		}
		if h.unique {
			// Uniqueness was checked on every bucket in the chain; fall
			// through to allocate the overflow.
		}
		ovRid, ovBuf, ierr := tx.Insert(h.tbl, bucketSize)
		if ierr != nil {
			return ierr
		}
		clearBytes(ovBuf)
		setBucketCount(ovBuf, 1)
		setBucketPair(ovBuf, 0, key, rid)
		buf, uerr := tx.Update(h.tbl, cur, -1)
		if uerr != nil {
			return uerr
		}
		setBucketOverflow(buf, ovRid)
		return nil
	}
}

// Delete removes (key → rid); ErrNotFound if the pair is absent.
//
//cicada:noalloc
func (h *MVHash) Delete(tx *core.Txn, key uint64, rid storage.RecordID) error {
	cur := h.bucket(key)
	for {
		data, err := tx.Read(h.tbl, cur)
		if errors.Is(err, core.ErrNotFound) {
			return core.ErrNotFound
		}
		if err != nil {
			return err
		}
		n := bucketCount(data)
		for i := 0; i < n; i++ {
			if k, r := bucketPair(data, i); k == key && r == rid {
				buf, uerr := tx.Update(h.tbl, cur, -1)
				if uerr != nil {
					return uerr
				}
				lk, lr := bucketPair(buf, n-1)
				setBucketPair(buf, i, lk, lr)
				setBucketPair(buf, n-1, 0, 0)
				setBucketCount(buf, n-1)
				return nil
			}
		}
		ov, ok := bucketOverflow(data)
		if !ok {
			return core.ErrNotFound
		}
		cur = ov
	}
}

// Scan is unsupported on hash indexes.
func (h *MVHash) Scan(tx *core.Txn, lo, hi uint64, limit int, fn func(uint64, storage.RecordID) bool) error {
	return ErrUnsupported
}

func clearBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
