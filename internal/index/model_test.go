package index

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"cicada/internal/core"
	"cicada/internal/storage"
)

// modelMultimap mirrors an index as a sorted set of (key, rid) pairs.
type modelMultimap map[[2]uint64]struct{}

func (m modelMultimap) firstForKey(key uint64) (storage.RecordID, bool) {
	best := uint64(1<<64 - 1)
	found := false
	for kv := range m {
		if kv[0] == key && kv[1] <= best {
			best = kv[1]
			found = true
		}
	}
	return storage.RecordID(best), found
}

// TestModelBasedMVIndexes drives random operation sequences against both
// multi-version index types and a model multimap, auditing point lookups
// and (for the B+-tree) full ordered scans.
func TestModelBasedMVIndexes(t *testing.T) {
	for _, kind := range []string{"hash", "btree"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			e := core.NewEngine(core.DefaultOptions(1))
			var ix MVIndex
			if kind == "hash" {
				ix = NewMVHash(e, "m", 64, false) // tiny: stress overflow chains
			} else {
				ix = NewMVBTree(e, "m", false)
			}
			w := e.Worker(0)
			rng := rand.New(rand.NewSource(1234))
			model := modelMultimap{}

			for step := 0; step < 4000; step++ {
				key := uint64(rng.Intn(200))
				rid := storage.RecordID(rng.Intn(50))
				kv := [2]uint64{key, uint64(rid)}
				switch rng.Intn(3) {
				case 0: // insert
					_, exists := model[kv]
					err := w.Run(func(tx *core.Txn) error { return ix.Insert(tx, key, rid) })
					if kind == "btree" {
						if exists && !errors.Is(err, ErrDuplicate) {
							t.Fatalf("step %d: duplicate insert (%d,%d): %v", step, key, rid, err)
						}
						if !exists && err != nil {
							t.Fatalf("step %d: insert (%d,%d): %v", step, key, rid, err)
						}
					} else if err != nil {
						t.Fatalf("step %d: hash insert: %v", step, err)
					}
					model[kv] = struct{}{}
				case 1: // delete
					_, exists := model[kv]
					err := w.Run(func(tx *core.Txn) error { return ix.Delete(tx, key, rid) })
					if exists && err != nil {
						t.Fatalf("step %d: delete existing (%d,%d): %v", step, key, rid, err)
					}
					if !exists && kind == "btree" && !errors.Is(err, core.ErrNotFound) {
						t.Fatalf("step %d: delete absent: %v", step, err)
					}
					delete(model, kv)
				default: // point lookup
					var got storage.RecordID
					err := w.Run(func(tx *core.Txn) error {
						r, err := ix.Get(tx, key)
						got = r
						return err
					})
					_, want := model.firstForKey(key)
					if want && err != nil {
						t.Fatalf("step %d: get %d: %v", step, key, err)
					}
					if !want && !errors.Is(err, core.ErrNotFound) {
						t.Fatalf("step %d: get absent %d: %v", step, key, err)
					}
					if kind == "btree" && want {
						wantRid, _ := model.firstForKey(key)
						if got != wantRid {
							t.Fatalf("step %d: get %d = %d, want %d", step, key, got, wantRid)
						}
					}
				}
				// Periodic full-scan audit for the ordered index.
				if kind == "btree" && step%500 == 499 {
					var got [][2]uint64
					if err := w.Run(func(tx *core.Txn) error {
						got = got[:0]
						return ix.Scan(tx, 0, ^uint64(0), -1, func(k uint64, r storage.RecordID) bool {
							got = append(got, [2]uint64{k, uint64(r)})
							return true
						})
					}); err != nil {
						t.Fatal(err)
					}
					want := make([][2]uint64, 0, len(model))
					for kv := range model {
						want = append(want, kv)
					}
					sort.Slice(want, func(a, b int) bool {
						if want[a][0] != want[b][0] {
							return want[a][0] < want[b][0]
						}
						return want[a][1] < want[b][1]
					})
					if len(got) != len(want) {
						t.Fatalf("step %d: scan has %d entries, model %d", step, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("step %d: scan[%d] = %v, want %v", step, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}
