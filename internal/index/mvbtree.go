package index

import (
	"encoding/binary"
	"errors"
	"fmt"

	"cicada/internal/core"
	"cicada/internal/storage"
)

// MVBTree is Cicada's multi-version ordered index: a B+-tree whose nodes are
// records in a Cicada table (§3.6). Node reads join the transaction's read
// set, so any structural change that could affect a committed transaction's
// result — including phantoms for range scans and absent-key probes — is
// caught by version validation. Node writes stay thread-local until
// validation, so aborted transactions never perturb global index state.
//
// Entries are composite (key, val) pairs ordered lexicographically, which
// supports duplicate keys with distinct record IDs. Deletion is lazy: pairs
// are removed but nodes are never merged, as in many production trees.
//
// Node records are 202 bytes — within the 216-byte inline limit, so hot
// nodes are inlined into their record heads by best-effort inlining.
const (
	nodeSize = 202
	leafCap  = 12 // (key, val) pairs per leaf
	intCap   = 8  // separators per internal node; children = intCap + 1
)

// Leaf layout:   [0]=1  [1]=n  [2:10)=next-leaf rid+1  [10:202)=n×(key,val)
// Internal:      [0]=0  [1]=n  [2:74)=9×(child rid+1)  [74:202)=8×(key,val)
func nodeIsLeaf(b []byte) bool { return b[0] == 1 }
func nodeN(b []byte) int       { return int(b[1]) }
func setNodeN(b []byte, n int) { b[1] = byte(n) }

func leafNext(b []byte) (storage.RecordID, bool) {
	v := binary.LittleEndian.Uint64(b[2:10])
	if v == 0 {
		return 0, false
	}
	return storage.RecordID(v - 1), true
}
func setLeafNext(b []byte, rid storage.RecordID, ok bool) {
	if !ok {
		binary.LittleEndian.PutUint64(b[2:10], 0)
		return
	}
	binary.LittleEndian.PutUint64(b[2:10], uint64(rid)+1)
}
func leafPair(b []byte, i int) (uint64, uint64) {
	off := 10 + i*16
	return binary.LittleEndian.Uint64(b[off:]), binary.LittleEndian.Uint64(b[off+8:])
}
func setLeafPair(b []byte, i int, k, v uint64) {
	off := 10 + i*16
	binary.LittleEndian.PutUint64(b[off:], k)
	binary.LittleEndian.PutUint64(b[off+8:], v)
}

func intChild(b []byte, i int) storage.RecordID {
	return storage.RecordID(binary.LittleEndian.Uint64(b[2+i*8:]) - 1)
}
func setIntChild(b []byte, i int, rid storage.RecordID) {
	binary.LittleEndian.PutUint64(b[2+i*8:], uint64(rid)+1)
}
func intSep(b []byte, i int) (uint64, uint64) {
	off := 74 + i*16
	return binary.LittleEndian.Uint64(b[off:]), binary.LittleEndian.Uint64(b[off+8:])
}
func setIntSep(b []byte, i int, k, v uint64) {
	off := 74 + i*16
	binary.LittleEndian.PutUint64(b[off:], k)
	binary.LittleEndian.PutUint64(b[off+8:], v)
}

// wrapNodeErr adds node context to unexpected node-read failures. Aborts are
// the common case under contention and are passed through untouched so the
// abort/retry hot path does not allocate an error wrapper.
func wrapNodeErr(what string, rid storage.RecordID, err error) error {
	if errors.Is(err, core.ErrAborted) {
		return err
	}
	return fmt.Errorf("btree: %s %d: %w", what, rid, err)
}

// cmpKV orders composite (key, val) pairs.
func cmpKV(k1, v1, k2, v2 uint64) int {
	switch {
	case k1 < k2:
		return -1
	case k1 > k2:
		return 1
	case v1 < v2:
		return -1
	case v1 > v2:
		return 1
	}
	return 0
}

// MVBTree's meta record (record 0 of the node table) stores the root node's
// record ID + 1.
type MVBTree struct {
	tbl    *core.Table
	meta   storage.RecordID
	unique bool
}

// NewMVBTree creates a multi-version B+-tree backed by its own node table.
func NewMVBTree(e *core.Engine, name string, unique bool) *MVBTree {
	t := &MVBTree{tbl: e.CreateTable(name), unique: unique}
	t.meta = t.tbl.Storage().Reserve(1)
	return t
}

// Table exposes the backing node table.
func (t *MVBTree) Table() *core.Table { return t.tbl }

// root returns the root node record ID, or ok=false for an empty tree. The
// meta read joins the read set, so a committed transaction's view of the
// root is validated.
//
//cicada:noalloc
func (t *MVBTree) root(tx *core.Txn) (storage.RecordID, bool, error) {
	data, err := tx.Read(t.tbl, t.meta)
	if errors.Is(err, core.ErrNotFound) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	v := binary.LittleEndian.Uint64(data)
	if v == 0 {
		return 0, false, nil
	}
	return storage.RecordID(v - 1), true, nil
}

//cicada:noalloc
func (t *MVBTree) setRoot(tx *core.Txn, rid storage.RecordID) error {
	buf, err := tx.Write(t.tbl, t.meta, 8)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(buf, uint64(rid)+1)
	return nil
}

// descendToLeaf walks from the root to the leaf that would contain
// (key, val), reading every node on the path inside tx.
//
//cicada:noalloc
func (t *MVBTree) descendToLeaf(tx *core.Txn, key, val uint64) (storage.RecordID, []byte, error) {
	rid, ok, err := t.root(tx)
	if err != nil {
		return 0, nil, err
	}
	if !ok {
		return 0, nil, core.ErrNotFound
	}
	for {
		data, err := tx.Read(t.tbl, rid)
		if err != nil {
			return 0, nil, wrapNodeErr("node", rid, err)
		}
		if nodeIsLeaf(data) {
			return rid, data, nil
		}
		n := nodeN(data)
		i := 0
		for i < n {
			sk, sv := intSep(data, i)
			if cmpKV(key, val, sk, sv) < 0 {
				break
			}
			i++
		}
		rid = intChild(data, i)
	}
}

// Get returns the first record ID with the given key.
//
//cicada:noalloc
func (t *MVBTree) Get(tx *core.Txn, key uint64) (storage.RecordID, error) {
	var out storage.RecordID
	found := false
	err := t.Scan(tx, key, key, 1, func(_ uint64, rid storage.RecordID) bool {
		out, found = rid, true
		return false
	})
	if err != nil {
		return storage.InvalidRecordID, err
	}
	if !found {
		return storage.InvalidRecordID, core.ErrNotFound
	}
	return out, nil
}

// Scan visits pairs with lo ≤ key ≤ hi in (key, val) order until fn returns
// false or limit entries are emitted (limit < 0 = unlimited). Every leaf
// touched is in the read set, which precludes phantoms.
//
//cicada:noalloc
func (t *MVBTree) Scan(tx *core.Txn, lo, hi uint64, limit int, fn func(key uint64, rid storage.RecordID) bool) error {
	rid, data, err := t.descendToLeaf(tx, lo, 0)
	if errors.Is(err, core.ErrNotFound) {
		return nil // empty tree
	}
	if err != nil {
		return err
	}
	emitted := 0
	for {
		n := nodeN(data)
		for i := 0; i < n; i++ {
			k, v := leafPair(data, i)
			if k < lo {
				continue
			}
			if k > hi {
				return nil
			}
			if !fn(k, storage.RecordID(v)) {
				return nil
			}
			emitted++
			if limit >= 0 && emitted >= limit {
				return nil
			}
		}
		next, ok := leafNext(data)
		if !ok {
			return nil
		}
		rid = next
		data, err = tx.Read(t.tbl, rid)
		if err != nil {
			return wrapNodeErr("leaf", rid, err)
		}
	}
}

// Insert adds (key → rid). For a unique index it returns ErrDuplicate if key
// already exists; it always returns ErrDuplicate for an exact (key, rid)
// duplicate.
//
//cicada:noalloc
func (t *MVBTree) Insert(tx *core.Txn, key uint64, rid storage.RecordID) error {
	if t.unique {
		if _, err := t.Get(tx, key); err == nil {
			return ErrDuplicate
		} else if !errors.Is(err, core.ErrNotFound) {
			return err
		}
	}
	root, ok, err := t.root(tx)
	if err != nil {
		return err
	}
	if !ok {
		leafRid, buf, err := tx.Insert(t.tbl, nodeSize)
		if err != nil {
			return err
		}
		clearBytes(buf)
		buf[0] = 1
		setNodeN(buf, 1)
		setLeafPair(buf, 0, key, uint64(rid))
		return t.setRoot(tx, leafRid)
	}
	sepK, sepV, right, split, err := t.insertRec(tx, root, key, uint64(rid))
	if err != nil {
		return err
	}
	if !split {
		return nil
	}
	// Grow the tree: new internal root over (old root, right).
	newRoot, buf, err := tx.Insert(t.tbl, nodeSize)
	if err != nil {
		return err
	}
	clearBytes(buf)
	setNodeN(buf, 1)
	setIntChild(buf, 0, root)
	setIntChild(buf, 1, right)
	setIntSep(buf, 0, sepK, sepV)
	return t.setRoot(tx, newRoot)
}

// insertRec inserts into the subtree rooted at rid; on a split it returns
// the separator and the new right sibling's record ID.
//
//cicada:noalloc
func (t *MVBTree) insertRec(tx *core.Txn, rid storage.RecordID, key, val uint64) (sepK, sepV uint64, right storage.RecordID, split bool, err error) {
	data, err := tx.Read(t.tbl, rid)
	if err != nil {
		return 0, 0, 0, false, wrapNodeErr("node", rid, err)
	}
	if nodeIsLeaf(data) {
		return t.insertLeaf(tx, rid, data, key, val)
	}
	n := nodeN(data)
	ci := 0
	for ci < n {
		sk, sv := intSep(data, ci)
		if cmpKV(key, val, sk, sv) < 0 {
			break
		}
		ci++
	}
	childSepK, childSepV, childRight, childSplit, err := t.insertRec(tx, intChild(data, ci), key, val)
	if err != nil || !childSplit {
		return 0, 0, 0, false, err
	}
	// Insert (childSep, childRight) after child ci.
	if n < intCap {
		buf, err := tx.Update(t.tbl, rid, -1)
		if err != nil {
			return 0, 0, 0, false, err
		}
		for j := n; j > ci; j-- {
			sk, sv := intSep(buf, j-1)
			setIntSep(buf, j, sk, sv)
			setIntChild(buf, j+1, intChild(buf, j))
		}
		setIntSep(buf, ci, childSepK, childSepV)
		setIntChild(buf, ci+1, childRight)
		setNodeN(buf, n+1)
		return 0, 0, 0, false, nil
	}
	// Split the internal node: gather intCap+1 separators and intCap+2
	// children, promote the middle separator.
	var seps [intCap + 1][2]uint64
	var kids [intCap + 2]storage.RecordID
	for j := 0; j < ci; j++ {
		sk, sv := intSep(data, j)
		seps[j] = [2]uint64{sk, sv}
	}
	seps[ci] = [2]uint64{childSepK, childSepV}
	for j := ci; j < n; j++ {
		sk, sv := intSep(data, j)
		seps[j+1] = [2]uint64{sk, sv}
	}
	for j := 0; j <= ci; j++ {
		kids[j] = intChild(data, j)
	}
	kids[ci+1] = childRight
	for j := ci + 1; j <= n; j++ {
		kids[j+1] = intChild(data, j)
	}
	const mid = (intCap + 1) / 2 // promoted separator index
	rightRid, rbuf, err := tx.Insert(t.tbl, nodeSize)
	if err != nil {
		return 0, 0, 0, false, err
	}
	clearBytes(rbuf)
	rn := intCap - mid
	setNodeN(rbuf, rn)
	for j := 0; j < rn; j++ {
		setIntSep(rbuf, j, seps[mid+1+j][0], seps[mid+1+j][1])
	}
	for j := 0; j <= rn; j++ {
		setIntChild(rbuf, j, kids[mid+1+j])
	}
	lbuf, err := tx.Update(t.tbl, rid, -1)
	if err != nil {
		return 0, 0, 0, false, err
	}
	clearBytes(lbuf)
	setNodeN(lbuf, mid)
	for j := 0; j < mid; j++ {
		setIntSep(lbuf, j, seps[j][0], seps[j][1])
	}
	for j := 0; j <= mid; j++ {
		setIntChild(lbuf, j, kids[j])
	}
	return seps[mid][0], seps[mid][1], rightRid, true, nil
}

//cicada:noalloc
func (t *MVBTree) insertLeaf(tx *core.Txn, rid storage.RecordID, data []byte, key, val uint64) (sepK, sepV uint64, right storage.RecordID, split bool, err error) {
	n := nodeN(data)
	pos := 0
	for pos < n {
		k, v := leafPair(data, pos)
		c := cmpKV(key, val, k, v)
		if c == 0 {
			return 0, 0, 0, false, ErrDuplicate
		}
		if c < 0 {
			break
		}
		pos++
	}
	if n < leafCap {
		buf, err := tx.Update(t.tbl, rid, -1)
		if err != nil {
			return 0, 0, 0, false, err
		}
		for j := n; j > pos; j-- {
			k, v := leafPair(buf, j-1)
			setLeafPair(buf, j, k, v)
		}
		setLeafPair(buf, pos, key, val)
		setNodeN(buf, n+1)
		return 0, 0, 0, false, nil
	}
	// Split: distribute leafCap+1 pairs across the two leaves.
	var pairs [leafCap + 1][2]uint64
	for j := 0; j < pos; j++ {
		k, v := leafPair(data, j)
		pairs[j] = [2]uint64{k, v}
	}
	pairs[pos] = [2]uint64{key, val}
	for j := pos; j < n; j++ {
		k, v := leafPair(data, j)
		pairs[j+1] = [2]uint64{k, v}
	}
	const keep = (leafCap + 1 + 1) / 2 // left keeps 7 of 13
	rightRid, rbuf, err := tx.Insert(t.tbl, nodeSize)
	if err != nil {
		return 0, 0, 0, false, err
	}
	clearBytes(rbuf)
	rbuf[0] = 1
	rn := leafCap + 1 - keep
	setNodeN(rbuf, rn)
	oldNext, oldOK := leafNext(data)
	setLeafNext(rbuf, oldNext, oldOK)
	for j := 0; j < rn; j++ {
		setLeafPair(rbuf, j, pairs[keep+j][0], pairs[keep+j][1])
	}
	lbuf, err := tx.Update(t.tbl, rid, -1)
	if err != nil {
		return 0, 0, 0, false, err
	}
	clearBytes(lbuf[10:]) // keep flags; next is rewritten below
	setNodeN(lbuf, keep)
	setLeafNext(lbuf, rightRid, true)
	for j := 0; j < keep; j++ {
		setLeafPair(lbuf, j, pairs[j][0], pairs[j][1])
	}
	return pairs[keep][0], pairs[keep][1], rightRid, true, nil
}

// Delete removes (key → rid); ErrNotFound if absent. Leaves are never
// merged (lazy deletion).
//
//cicada:noalloc
func (t *MVBTree) Delete(tx *core.Txn, key uint64, rid storage.RecordID) error {
	leafRid, data, err := t.descendToLeaf(tx, key, uint64(rid))
	if errors.Is(err, core.ErrNotFound) {
		return core.ErrNotFound
	}
	if err != nil {
		return err
	}
	n := nodeN(data)
	for i := 0; i < n; i++ {
		k, v := leafPair(data, i)
		if k == key && v == uint64(rid) {
			buf, uerr := tx.Update(t.tbl, leafRid, -1)
			if uerr != nil {
				return uerr
			}
			for j := i; j < n-1; j++ {
				nk, nv := leafPair(buf, j+1)
				setLeafPair(buf, j, nk, nv)
			}
			setLeafPair(buf, n-1, 0, 0)
			setNodeN(buf, n-1)
			return nil
		}
	}
	return core.ErrNotFound
}
