package index

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"cicada/internal/core"
	"cicada/internal/storage"
)

func newEngine(workers int) *core.Engine {
	return core.NewEngine(core.DefaultOptions(workers))
}

func run(t *testing.T, w *core.Worker, fn func(tx *core.Txn) error) {
	t.Helper()
	if err := w.Run(fn); err != nil {
		t.Fatal(err)
	}
}

func TestMVHashBasic(t *testing.T) {
	e := newEngine(1)
	h := NewMVHash(e, "idx", 1024, false)
	w := e.Worker(0)

	run(t, w, func(tx *core.Txn) error {
		if _, err := h.Get(tx, 42); !errors.Is(err, core.ErrNotFound) {
			t.Errorf("empty get: %v", err)
		}
		return h.Insert(tx, 42, 7)
	})
	run(t, w, func(tx *core.Txn) error {
		rid, err := h.Get(tx, 42)
		if err != nil || rid != 7 {
			t.Errorf("get: %d %v", rid, err)
		}
		return nil
	})
	run(t, w, func(tx *core.Txn) error { return h.Delete(tx, 42, 7) })
	run(t, w, func(tx *core.Txn) error {
		if _, err := h.Get(tx, 42); !errors.Is(err, core.ErrNotFound) {
			t.Errorf("get after delete: %v", err)
		}
		return nil
	})
}

func TestMVHashOverflowChains(t *testing.T) {
	e := newEngine(1)
	h := NewMVHash(e, "idx", 16, false) // tiny: force overflow buckets
	w := e.Worker(0)
	const n = 500
	for i := 0; i < n; i++ {
		i := i
		run(t, w, func(tx *core.Txn) error { return h.Insert(tx, uint64(i), storage.RecordID(i)) })
	}
	run(t, w, func(tx *core.Txn) error {
		for i := 0; i < n; i++ {
			rid, err := h.Get(tx, uint64(i))
			if err != nil || rid != storage.RecordID(i) {
				t.Fatalf("key %d: %d %v", i, rid, err)
			}
		}
		return nil
	})
	// Delete every other key; the rest must remain reachable.
	for i := 0; i < n; i += 2 {
		i := i
		run(t, w, func(tx *core.Txn) error { return h.Delete(tx, uint64(i), storage.RecordID(i)) })
	}
	run(t, w, func(tx *core.Txn) error {
		for i := 0; i < n; i++ {
			_, err := h.Get(tx, uint64(i))
			if i%2 == 0 && !errors.Is(err, core.ErrNotFound) {
				t.Fatalf("deleted key %d still present: %v", i, err)
			}
			if i%2 == 1 && err != nil {
				t.Fatalf("kept key %d lost: %v", i, err)
			}
		}
		return nil
	})
}

func TestMVHashNonUniqueAndGetAll(t *testing.T) {
	e := newEngine(1)
	h := NewMVHash(e, "idx", 64, false)
	w := e.Worker(0)
	run(t, w, func(tx *core.Txn) error {
		for r := 0; r < 5; r++ {
			if err := h.Insert(tx, 9, storage.RecordID(100+r)); err != nil {
				return err
			}
		}
		return nil
	})
	run(t, w, func(tx *core.Txn) error {
		all, err := h.GetAll(tx, 9, nil)
		if err != nil || len(all) != 5 {
			t.Errorf("getall: %v %v", all, err)
		}
		return nil
	})
}

func TestMVHashUnique(t *testing.T) {
	e := newEngine(1)
	h := NewMVHash(e, "idx", 64, true)
	w := e.Worker(0)
	run(t, w, func(tx *core.Txn) error { return h.Insert(tx, 1, 10) })
	err := w.Run(func(tx *core.Txn) error { return h.Insert(tx, 1, 11) })
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate insert: %v", err)
	}
}

func TestMVHashPhantom(t *testing.T) {
	e := newEngine(2)
	h := NewMVHash(e, "idx", 64, false)
	// Reader observes key 5 absent; a concurrent later insert must conflict
	// with the reader's bucket read, not slip past it.
	reader := e.Worker(0).Begin()
	if _, err := h.Get(reader, 5); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("get: %v", err)
	}
	// Writer with a later timestamp inserts and commits first.
	if err := e.Worker(1).Run(func(tx *core.Txn) error { return h.Insert(tx, 5, 50) }); err != nil {
		t.Fatal(err)
	}
	// Reader's commit is still fine: the insert has a later timestamp, so
	// the reader's absent view at its own timestamp remains valid.
	if err := reader.Commit(); err != nil {
		t.Fatalf("reader commit: %v", err)
	}
	// Now the reverse: writer with an EARLIER timestamp than a committed
	// absent observation must abort.
	writer := e.Worker(0).Begin()
	if err := e.Worker(1).Run(func(tx *core.Txn) error {
		_, err := h.Get(tx, 6)
		if !errors.Is(err, core.ErrNotFound) {
			t.Errorf("get 6: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	err := h.Insert(writer, 6, 60)
	if err == nil {
		err = writer.Commit()
	} else {
		writer.Abort()
	}
	if !errors.Is(err, core.ErrAborted) {
		t.Fatalf("phantom insert below absent read: %v", err)
	}
}

func TestMVBTreeBasic(t *testing.T) {
	e := newEngine(1)
	bt := NewMVBTree(e, "bt", false)
	w := e.Worker(0)
	run(t, w, func(tx *core.Txn) error {
		if _, err := bt.Get(tx, 1); !errors.Is(err, core.ErrNotFound) {
			t.Errorf("empty get: %v", err)
		}
		return bt.Insert(tx, 1, 10)
	})
	run(t, w, func(tx *core.Txn) error {
		rid, err := bt.Get(tx, 1)
		if err != nil || rid != 10 {
			t.Errorf("get: %d %v", rid, err)
		}
		return nil
	})
	run(t, w, func(tx *core.Txn) error { return bt.Delete(tx, 1, 10) })
	run(t, w, func(tx *core.Txn) error {
		if _, err := bt.Get(tx, 1); !errors.Is(err, core.ErrNotFound) {
			t.Errorf("get after delete: %v", err)
		}
		return nil
	})
}

func TestMVBTreeSplitsAndOrder(t *testing.T) {
	e := newEngine(1)
	bt := NewMVBTree(e, "bt", false)
	w := e.Worker(0)
	const n = 3000
	keys := rand.New(rand.NewSource(7)).Perm(n)
	for _, k := range keys {
		k := k
		run(t, w, func(tx *core.Txn) error { return bt.Insert(tx, uint64(k), storage.RecordID(k*2)) })
	}
	run(t, w, func(tx *core.Txn) error {
		var got []uint64
		err := bt.Scan(tx, 0, ^uint64(0), -1, func(k uint64, r storage.RecordID) bool {
			if r != storage.RecordID(k*2) {
				t.Fatalf("key %d rid %d", k, r)
			}
			got = append(got, k)
			return true
		})
		if err != nil {
			return err
		}
		if len(got) != n {
			t.Fatalf("scan found %d of %d", len(got), n)
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatal("scan out of order")
		}
		return nil
	})
	// Point lookups for every key.
	run(t, w, func(tx *core.Txn) error {
		for k := 0; k < n; k += 37 {
			rid, err := bt.Get(tx, uint64(k))
			if err != nil || rid != storage.RecordID(k*2) {
				t.Fatalf("get %d: %d %v", k, rid, err)
			}
		}
		return nil
	})
}

func TestMVBTreeRangeScan(t *testing.T) {
	e := newEngine(1)
	bt := NewMVBTree(e, "bt", false)
	w := e.Worker(0)
	for k := 0; k < 200; k += 2 { // even keys only
		k := k
		run(t, w, func(tx *core.Txn) error { return bt.Insert(tx, uint64(k), storage.RecordID(k)) })
	}
	run(t, w, func(tx *core.Txn) error {
		var got []uint64
		if err := bt.Scan(tx, 51, 99, -1, func(k uint64, r storage.RecordID) bool {
			got = append(got, k)
			return true
		}); err != nil {
			return err
		}
		want := []uint64{52, 54, 56, 58, 60, 62, 64, 66, 68, 70, 72, 74, 76, 78, 80, 82, 84, 86, 88, 90, 92, 94, 96, 98}
		if len(got) != len(want) {
			t.Fatalf("scan got %v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("scan got %v", got)
			}
		}
		// Limit.
		cnt := 0
		if err := bt.Scan(tx, 0, 1000, 5, func(k uint64, r storage.RecordID) bool { cnt++; return true }); err != nil {
			return err
		}
		if cnt != 5 {
			t.Fatalf("limit scan %d", cnt)
		}
		return nil
	})
}

func TestMVBTreeDuplicateKeys(t *testing.T) {
	e := newEngine(1)
	bt := NewMVBTree(e, "bt", false)
	w := e.Worker(0)
	run(t, w, func(tx *core.Txn) error {
		for r := 0; r < 30; r++ {
			if err := bt.Insert(tx, 7, storage.RecordID(r)); err != nil {
				return err
			}
		}
		return nil
	})
	err := w.Run(func(tx *core.Txn) error { return bt.Insert(tx, 7, 3) })
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("exact duplicate: %v", err)
	}
	run(t, w, func(tx *core.Txn) error {
		var rids []storage.RecordID
		if err := bt.Scan(tx, 7, 7, -1, func(k uint64, r storage.RecordID) bool {
			rids = append(rids, r)
			return true
		}); err != nil {
			return err
		}
		if len(rids) != 30 {
			t.Fatalf("dup scan found %d", len(rids))
		}
		for i, r := range rids {
			if r != storage.RecordID(i) {
				t.Fatalf("dup order: %v", rids)
			}
		}
		return bt.Delete(tx, 7, 15)
	})
	run(t, w, func(tx *core.Txn) error {
		cnt := 0
		if err := bt.Scan(tx, 7, 7, -1, func(k uint64, r storage.RecordID) bool { cnt++; return true }); err != nil {
			return err
		}
		if cnt != 29 {
			t.Fatalf("after delete: %d", cnt)
		}
		return nil
	})
}

func TestMVBTreeUnique(t *testing.T) {
	e := newEngine(1)
	bt := NewMVBTree(e, "bt", true)
	w := e.Worker(0)
	run(t, w, func(tx *core.Txn) error { return bt.Insert(tx, 5, 1) })
	err := w.Run(func(tx *core.Txn) error { return bt.Insert(tx, 5, 2) })
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("unique violation: %v", err)
	}
}

func TestMVBTreePhantomOnScan(t *testing.T) {
	e := newEngine(2)
	bt := NewMVBTree(e, "bt", false)
	w0, w1 := e.Worker(0), e.Worker(1)
	for k := 0; k < 20; k += 2 {
		k := k
		run(t, w0, func(tx *core.Txn) error { return bt.Insert(tx, uint64(k), storage.RecordID(k)) })
	}
	// An earlier-timestamp inserter must abort if a later-timestamp scan of
	// the covering range has committed.
	inserter := w0.Begin()
	if err := w1.Run(func(tx *core.Txn) error {
		cnt := 0
		return bt.Scan(tx, 0, 19, -1, func(k uint64, r storage.RecordID) bool { cnt++; return true })
	}); err != nil {
		t.Fatal(err)
	}
	err := bt.Insert(inserter, 5, 55) // phantom inside the scanned range
	if err == nil {
		err = inserter.Commit()
	} else {
		inserter.Abort()
	}
	if !errors.Is(err, core.ErrAborted) {
		t.Fatalf("phantom insert not aborted: %v", err)
	}
}

func TestMVBTreeAbortLeavesNoTrace(t *testing.T) {
	e := newEngine(1)
	bt := NewMVBTree(e, "bt", false)
	w := e.Worker(0)
	run(t, w, func(tx *core.Txn) error { return bt.Insert(tx, 1, 1) })
	sentinel := errors.New("rollback")
	err := w.Run(func(tx *core.Txn) error {
		for k := 100; k < 160; k++ { // enough to force splits
			if err := bt.Insert(tx, uint64(k), storage.RecordID(k)); err != nil {
				return err
			}
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatal(err)
	}
	run(t, w, func(tx *core.Txn) error {
		cnt := 0
		if err := bt.Scan(tx, 0, 1000, -1, func(k uint64, r storage.RecordID) bool { cnt++; return true }); err != nil {
			return err
		}
		if cnt != 1 {
			t.Fatalf("aborted inserts visible: %d entries", cnt)
		}
		return nil
	})
}

func TestMVBTreeConcurrentInserts(t *testing.T) {
	e := newEngine(4)
	bt := NewMVBTree(e, "bt", false)
	const perWorker = 250
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := e.Worker(id)
			for i := 0; i < perWorker; i++ {
				k := uint64(id*perWorker + i)
				err := w.Run(func(tx *core.Txn) error { return bt.Insert(tx, k, storage.RecordID(k)) })
				if err != nil {
					t.Errorf("worker %d insert %d: %v", id, k, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	run(t, e.Worker(0), func(tx *core.Txn) error {
		cnt := 0
		prev := -1
		if err := bt.Scan(tx, 0, ^uint64(0), -1, func(k uint64, r storage.RecordID) bool {
			if int(k) <= prev {
				t.Errorf("order violation at %d after %d", k, prev)
			}
			prev = int(k)
			cnt++
			return true
		}); err != nil {
			return err
		}
		if cnt != 4*perWorker {
			t.Fatalf("tree has %d of %d entries", cnt, 4*perWorker)
		}
		return nil
	})
}

func TestMVBTreeGetNextLeafBoundary(t *testing.T) {
	// Force duplicates of one key to span a leaf boundary and check Get and
	// Scan still find them.
	e := newEngine(1)
	bt := NewMVBTree(e, "bt", false)
	w := e.Worker(0)
	run(t, w, func(tx *core.Txn) error {
		if err := bt.Insert(tx, 5, 0); err != nil {
			return err
		}
		for r := 0; r < 40; r++ {
			if err := bt.Insert(tx, 10, storage.RecordID(r)); err != nil {
				return err
			}
		}
		return nil
	})
	run(t, w, func(tx *core.Txn) error {
		rid, err := bt.Get(tx, 10)
		if err != nil || rid != 0 {
			t.Fatalf("get across boundary: %d %v", rid, err)
		}
		cnt := 0
		if err := bt.Scan(tx, 10, 10, -1, func(k uint64, r storage.RecordID) bool { cnt++; return true }); err != nil {
			return err
		}
		if cnt != 40 {
			t.Fatalf("dup count %d", cnt)
		}
		return nil
	})
}

func TestMVHashConcurrentDistinctKeys(t *testing.T) {
	e := newEngine(4)
	h := NewMVHash(e, "idx", 4096, false)
	const perWorker = 250
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := e.Worker(id)
			for i := 0; i < perWorker; i++ {
				k := uint64(id*perWorker + i)
				if err := w.Run(func(tx *core.Txn) error { return h.Insert(tx, k, storage.RecordID(k)) }); err != nil {
					t.Errorf("insert %d: %v", k, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	run(t, e.Worker(0), func(tx *core.Txn) error {
		for k := 0; k < 4*perWorker; k++ {
			rid, err := h.Get(tx, uint64(k))
			if err != nil || rid != storage.RecordID(k) {
				return fmt.Errorf("key %d: %d %v", k, rid, err)
			}
		}
		return nil
	})
}
