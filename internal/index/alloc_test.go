package index

import (
	"testing"

	"cicada/internal/core"
)

// Allocation budgets for the multi-version indexes (docs/PERFORMANCE.md):
// index nodes are Cicada records encoded in place, so steady-state Get and
// Insert+Delete cycles inherit the engine's zero-allocation contract.

const idxAllocWarmup = 3000

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; budgets enforced in non-race builds")
	}
	for i := 0; i < idxAllocWarmup; i++ {
		fn()
	}
	if avg := testing.AllocsPerRun(1000, fn); avg != 0 {
		t.Errorf("%s: %.3f allocs/op; budget is 0", name, avg)
	}
}

func TestAllocBudgetMVHashGet(t *testing.T) {
	h, w := benchHash(t)
	fn := func(tx *core.Txn) error {
		_, err := h.Get(tx, 42)
		return err
	}
	assertZeroAllocs(t, "MVHash get txn", func() {
		if err := w.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetMVHashInsertDelete(t *testing.T) {
	h, w := benchHash(t)
	const k = benchKeys + 1
	fn := func(tx *core.Txn) error {
		if err := h.Insert(tx, k, 7); err != nil {
			return err
		}
		return h.Delete(tx, k, 7)
	}
	assertZeroAllocs(t, "MVHash insert+delete txn", func() {
		if err := w.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetMVBTreeGet(t *testing.T) {
	tr, w := benchTree(t)
	fn := func(tx *core.Txn) error {
		_, err := tr.Get(tx, 42*2)
		return err
	}
	assertZeroAllocs(t, "MVBTree get txn", func() {
		if err := w.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetMVBTreeInsertDelete(t *testing.T) {
	tr, w := benchTree(t)
	fn := func(tx *core.Txn) error {
		if err := tr.Insert(tx, 101, 7); err != nil {
			return err
		}
		return tr.Delete(tx, 101, 7)
	}
	assertZeroAllocs(t, "MVBTree insert+delete txn", func() {
		if err := w.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}
