package index

import (
	"testing"

	"cicada/internal/core"
	"cicada/internal/storage"
)

// Microbenchmarks for the multi-version index hot paths. Index nodes are
// ordinary Cicada records, so these exercise the engine's read/RMW machinery
// through the index encoding layer; the allocation-budget contract
// (docs/PERFORMANCE.md) requires steady-state Get and Insert+Delete cycles
// to stay allocation-free.

const benchKeys = 1024

func benchHash(tb testing.TB) (*MVHash, *core.Worker) {
	tb.Helper()
	e := core.NewEngine(core.DefaultOptions(1))
	h := NewMVHash(e, "idx", benchKeys, false)
	w := e.Worker(0)
	for i := 0; i < benchKeys; i++ {
		if err := w.Run(func(tx *core.Txn) error {
			return h.Insert(tx, uint64(i), storage.RecordID(i))
		}); err != nil {
			tb.Fatalf("preload: %v", err)
		}
	}
	return h, w
}

func BenchmarkMVHashGet(b *testing.B) {
	h, w := benchHash(b)
	var k uint64
	fn := func(tx *core.Txn) error {
		_, err := h.Get(tx, k)
		return err
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k = uint64(i % benchKeys)
		if err := w.Run(fn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMVHashInsert measures an insert+delete cycle on a fresh key, the
// steady-state shape of secondary index maintenance.
func BenchmarkMVHashInsert(b *testing.B) {
	h, w := benchHash(b)
	const k = benchKeys + 1
	fn := func(tx *core.Txn) error {
		if err := h.Insert(tx, k, 7); err != nil {
			return err
		}
		return h.Delete(tx, k, 7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(fn); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTree(tb testing.TB) (*MVBTree, *core.Worker) {
	tb.Helper()
	e := core.NewEngine(core.DefaultOptions(1))
	t := NewMVBTree(e, "idx", false)
	w := e.Worker(0)
	for i := 0; i < benchKeys; i++ {
		if err := w.Run(func(tx *core.Txn) error {
			return t.Insert(tx, uint64(i*2), storage.RecordID(i))
		}); err != nil {
			tb.Fatalf("preload: %v", err)
		}
	}
	return t, w
}

func BenchmarkMVBTreeGet(b *testing.B) {
	t, w := benchTree(b)
	var k uint64
	fn := func(tx *core.Txn) error {
		_, err := t.Get(tx, k)
		return err
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k = uint64((i % benchKeys) * 2)
		if err := w.Run(fn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMVBTreeInsert measures an insert+delete cycle on a key between
// the preloaded ones (no node splits in steady state).
func BenchmarkMVBTreeInsert(b *testing.B) {
	t, w := benchTree(b)
	fn := func(tx *core.Txn) error {
		if err := t.Insert(tx, 101, 7); err != nil {
			return err
		}
		return t.Delete(tx, 101, 7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(fn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMVBTreeScan16(b *testing.B) {
	t, w := benchTree(b)
	var sum uint64
	fn := func(tx *core.Txn) error {
		return t.Scan(tx, 100, 100+31, 16, func(k uint64, rid storage.RecordID) bool {
			sum += uint64(rid)
			return true
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(fn); err != nil {
			b.Fatal(err)
		}
	}
}
