package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"cicada/internal/clock"
	"cicada/internal/core"
	"cicada/internal/storage"
)

// buildRedoLog writes a redo log of n single-entry records (rid i holds
// value base+i at timestamp 100+i) and returns its raw bytes.
func buildRedoLog(t *testing.T, path string, n int, base uint64) []byte {
	t.Helper()
	var out []byte
	for i := 0; i < n; i++ {
		data := make([]byte, 8)
		binary.LittleEndian.PutUint64(data, base+uint64(i))
		rec := encodeRedo(clock.Timestamp(100+i), 0, []core.LogEntry{{
			Table: 0, Record: storage.RecordID(i), Data: data,
		}})
		out = append(out, rec...)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}

// buildCheckpoint writes a v2 checkpoint of n records (rid i holds value
// base+i at timestamp ts) and returns its raw bytes.
func buildCheckpoint(t *testing.T, path string, n int, base uint64, ts clock.Timestamp) []byte {
	t.Helper()
	out := make([]byte, 16)
	binary.LittleEndian.PutUint32(out[0:], ckptMagic)
	binary.LittleEndian.PutUint64(out[4:], uint64(ts))
	binary.LittleEndian.PutUint32(out[12:], 1)
	for i := 0; i < n; i++ {
		rec := make([]byte, 28+8)
		binary.LittleEndian.PutUint32(rec[0:], 0) // table
		binary.LittleEndian.PutUint64(rec[4:], uint64(i))
		binary.LittleEndian.PutUint64(rec[12:], uint64(ts))
		binary.LittleEndian.PutUint32(rec[20:], 8)
		binary.LittleEndian.PutUint64(rec[24:], base+uint64(i))
		crc := crc32.Checksum(rec[:len(rec)-4], castagnoli)
		binary.LittleEndian.PutUint32(rec[len(rec)-4:], crc)
		out = append(out, rec...)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}

func recoverInto(t *testing.T, dir string) (RecoverStats, map[storage.RecordID]uint64, error) {
	t.Helper()
	e := newEngine(1)
	tbl := e.CreateTable("t")
	stats, err := Recover(e, dir)
	if err != nil {
		return stats, nil, err
	}
	vals := make(map[storage.RecordID]uint64)
	for rid, d := range tableState(t, e, tbl) {
		vals[rid] = binary.LittleEndian.Uint64(d)
	}
	return stats, vals, nil
}

// TestCorruptionMatrix damages a known-good log set in every framing-level
// way and asserts the exact typed error and the exact surviving state.
func TestCorruptionMatrix(t *testing.T) {
	const nRecs = 10
	// Offset of record k in a log built by buildRedoLog (fixed-size
	// records: header 24 + entry prefix 17 + data 8 + crc 4).
	recSize := redoHdrLen + redoEntryLen + 8 + 4
	cases := []struct {
		name string
		// corrupt mutates the log directory after buildRedoLog.
		corrupt func(t *testing.T, dir, logPath string, raw []byte)
		// wantErr non-nil means Recover itself must fail with it.
		wantErr error
		// wantCause is matched (errors.Is) against the torn tail's cause.
		wantCause error
		// wantRecords is how many rids must survive with correct values.
		wantRecords int
		wantTorn    int
	}{
		{
			name: "bit-flip-record-magic",
			corrupt: func(t *testing.T, dir, logPath string, raw []byte) {
				raw[6*recSize] ^= 0x01 // magic byte of record 6
				os.WriteFile(logPath, raw, 0o644)
			},
			wantRecords: 6,
			wantTorn:    1,
		},
		{
			name: "bit-flip-body",
			corrupt: func(t *testing.T, dir, logPath string, raw []byte) {
				raw[4*recSize+redoHdrLen+redoEntryLen] ^= 0x80 // data byte of record 4
				os.WriteFile(logPath, raw, 0o644)
			},
			wantCause:   ErrChecksum,
			wantRecords: 4,
			wantTorn:    1,
		},
		{
			name: "truncated-tail",
			corrupt: func(t *testing.T, dir, logPath string, raw []byte) {
				os.WriteFile(logPath, raw[:9*recSize+5], 0o644) // record 9 cut mid-header
			},
			wantRecords: 9,
			wantTorn:    1,
		},
		{
			name: "corrupt-length-prefix-huge",
			corrupt: func(t *testing.T, dir, logPath string, raw []byte) {
				// recLen of record 7 claims 3 GiB; must be rejected before
				// it sizes anything (satellite: no huge allocation).
				binary.LittleEndian.PutUint32(raw[7*recSize+4:], 3<<30)
				os.WriteFile(logPath, raw, 0o644)
			},
			wantCause:   ErrCorruptLength,
			wantRecords: 7,
			wantTorn:    1,
		},
		{
			name: "huge-entry-count-valid-crc",
			corrupt: func(t *testing.T, dir, logPath string, raw []byte) {
				// nEntries of record 3 claims 2^31 entries, CRC recomputed
				// so the frame itself verifies — the count bound alone must
				// reject it (regression: the old reader allocated
				// make([]pending, 0, nEntries) straight from disk).
				rec := raw[3*recSize : 4*recSize]
				binary.LittleEndian.PutUint32(rec[20:], 1<<31)
				crc := crc32.Checksum(rec[:len(rec)-4], castagnoli)
				binary.LittleEndian.PutUint32(rec[len(rec)-4:], crc)
				os.WriteFile(logPath, raw, 0o644)
			},
			wantCause:   ErrCorruptLength,
			wantRecords: 3,
			wantTorn:    1,
		},
		{
			name: "truncated-checkpoint",
			corrupt: func(t *testing.T, dir, logPath string, raw []byte) {
				// A checkpoint holding older values for all rids, cut
				// mid-record: its survivors load, its tail is dropped, and
				// the intact redo log re-covers everything anyway.
				ckpt := filepath.Join(dir, "checkpoint-000000000.ckpt")
				craw := buildCheckpoint(t, ckpt, nRecs, 5000, 50)
				os.WriteFile(ckpt, craw[:len(craw)-13], 0o644)
			},
			wantRecords: nRecs,
			wantTorn:    1,
		},
		{
			name: "bad-checkpoint-header",
			corrupt: func(t *testing.T, dir, logPath string, raw []byte) {
				ckpt := filepath.Join(dir, "checkpoint-000000000.ckpt")
				os.WriteFile(ckpt, []byte("not a checkpoint at all"), 0o644)
			},
			wantErr: ErrBadCheckpoint,
		},
		{
			name: "empty-log",
			corrupt: func(t *testing.T, dir, logPath string, raw []byte) {
				os.WriteFile(logPath, nil, 0o644)
			},
			wantRecords: 0,
		},
		{
			name: "checkpoint-newer-than-log",
			corrupt: func(t *testing.T, dir, logPath string, raw []byte) {
				// Checkpoint timestamps (1000) beat the log's (100..109):
				// newest version wins, so the checkpoint values stand.
				ckpt := filepath.Join(dir, "checkpoint-000000000.ckpt")
				buildCheckpoint(t, ckpt, nRecs, 9000, 1000)
			},
			wantRecords: nRecs,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			logPath := filepath.Join(dir, "redo-000-000000000.log")
			raw := buildRedoLog(t, logPath, nRecs, 7000)
			tc.corrupt(t, dir, logPath, raw)

			stats, vals, err := recoverInto(t, dir)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err=%v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if stats.TornTails != tc.wantTorn {
				t.Fatalf("torn tails %d, want %d (faults %v)", stats.TornTails, tc.wantTorn, stats.TailFaults)
			}
			for _, f := range stats.TailFaults {
				if !errors.Is(f, ErrTornTail) {
					t.Fatalf("tail fault %v does not match ErrTornTail", f)
				}
				var tt *TornTailError
				if !errors.As(f, &tt) || tt.Dropped <= 0 {
					t.Fatalf("tail fault %v is not a populated *TornTailError", f)
				}
				if tc.wantCause != nil && !errors.Is(f, tc.wantCause) {
					t.Fatalf("tail fault cause %v, want %v", f, tc.wantCause)
				}
			}
			if len(vals) != tc.wantRecords {
				t.Fatalf("recovered %d records, want %d: %v", len(vals), tc.wantRecords, vals)
			}
			for rid, v := range vals {
				want := uint64(7000) + uint64(rid) // log value
				if tc.name == "checkpoint-newer-than-log" {
					want = 9000 + uint64(rid) // checkpoint wins on timestamp
				}
				if tc.name == "truncated-checkpoint" && v != want {
					// Records whose checkpoint copy survived but whose redo
					// copy is newer must still show the redo value.
					t.Fatalf("rid %d: %d, want redo value %d", rid, v, want)
				}
				if v != want {
					t.Fatalf("rid %d: %d, want %d", rid, v, want)
				}
			}
		})
	}
}

// TestCheckpointHorizonAuthoritative pins the purge-safety contract: below
// a loaded checkpoint's snapshot timestamp the checkpoint is authoritative,
// absences included. A redo entry older than the snapshot whose record the
// checkpoint does not hold was deleted before the snapshot was taken (and
// its delete may live in a chunk the checkpointer purged), so replaying it
// would resurrect the record; entries newer than the snapshot still apply.
// This is the deterministic form of the lost-record violation the torture
// harness caught when purge used a horizon above the snapshot timestamp.
func TestCheckpointHorizonAuthoritative(t *testing.T) {
	dir := t.TempDir()
	// Checkpoint at snapTS 1000 holding only rid 0 (value 9000).
	buildCheckpoint(t, filepath.Join(dir, "checkpoint-000000000.ckpt"), 1, 9000, 1000)
	// Redo log: rid 1 written at ts 500 (below the horizon, absent from the
	// checkpoint ⇒ deleted before the snapshot), rid 0 updated at ts 1500.
	old := make([]byte, 8)
	binary.LittleEndian.PutUint64(old, 111)
	upd := make([]byte, 8)
	binary.LittleEndian.PutUint64(upd, 222)
	var out []byte
	out = append(out, encodeRedo(500, 0, []core.LogEntry{{Table: 0, Record: 1, Data: old}})...)
	out = append(out, encodeRedo(1500, 0, []core.LogEntry{{Table: 0, Record: 0, Data: upd}})...)
	if err := os.WriteFile(filepath.Join(dir, "redo-000-000000000.log"), out, 0o644); err != nil {
		t.Fatal(err)
	}

	stats, vals, err := recoverInto(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RedoRecords != 2 || stats.CheckpointRecords != 1 {
		t.Fatalf("stats %+v, want 2 redo records read and 1 checkpoint record", stats)
	}
	if len(vals) != 1 || vals[0] != 222 {
		t.Fatalf("recovered %v, want only rid 0 = 222 (rid 1 predates the checkpoint and must stay deleted)", vals)
	}
	if stats.MaxTS < 1500 {
		t.Fatalf("MaxTS = %d, want ≥ 1500", stats.MaxTS)
	}
}

// TestTornTailErrorShape pins the error type contract: Is(ErrTornTail),
// Unwrap to the cause, and a message naming file/offset/bytes.
func TestTornTailErrorShape(t *testing.T) {
	e := &TornTailError{Path: "redo-0.log", Offset: 128, Dropped: 37, Cause: ErrChecksum}
	if !errors.Is(e, ErrTornTail) || !errors.Is(e, ErrChecksum) {
		t.Fatal("Is chain broken")
	}
	msg := e.Error()
	for _, want := range []string{"redo-0.log", "128", "37"} {
		if !bytes.Contains([]byte(msg), []byte(want)) {
			t.Fatalf("message %q missing %q", msg, want)
		}
	}
}
