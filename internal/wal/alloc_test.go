package wal

import (
	"testing"
	"time"

	"cicada/internal/clock"
	"cicada/internal/core"
)

// TestWALSubmitAllocBudget pins the worker-side WAL submit path
// (Manager.Log → stage.submit → encodeRedoInto) at zero allocations per
// record: frames are encoded straight into pooled chunks, so once the pool
// has warmed up the hot path never touches the heap. The budget mirrors the
// core/index AllocsPerRun budgets (docs/PERFORMANCE.md).
//
// AllocsPerRun counts mallocs process-wide, so the committer is kept
// dormant (one-hour group commit) and the staged chains are drained by
// explicit Flush calls inside the measured function — the drain itself
// (detach, gathered write, fsync, chunk recycle) must also be
// allocation-free or the budget fails.
func TestWALSubmitAllocBudget(t *testing.T) {
	e := newEngine(1)
	e.CreateTable("t")
	m, err := Attach(e, Options{Dir: t.TempDir(), GroupCommit: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	data := make([]byte, 64)
	entries := []core.LogEntry{{Table: 0, Record: 1, Data: data}}
	var ts uint64
	submit := func() {
		ts++
		if err := m.Log(0, clock.Timestamp(ts), entries); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the pool through a few full chunk cycles.
	for i := 0; i < 2000; i++ {
		submit()
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	i := 0
	avg := testing.AllocsPerRun(5000, func() {
		submit()
		i++
		if i%500 == 0 {
			if err := m.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg != 0 {
		t.Fatalf("WAL submit allocates %.3f/op, want 0", avg)
	}
}

// BenchmarkWALSubmit measures the worker-side staging cost of one redo
// record (64-byte value) with the group committer draining in the
// background, as in production.
func BenchmarkWALSubmit(b *testing.B) {
	e := newEngine(1)
	e.CreateTable("t")
	m, err := Attach(e, Options{Dir: b.TempDir(), GroupCommit: time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()

	data := make([]byte, 64)
	entries := []core.LogEntry{{Table: 0, Record: 1, Data: data}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Log(0, clock.Timestamp(i+1), entries); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := m.Flush(); err != nil {
		b.Fatal(err)
	}
}
