package wal

import (
	"errors"
	"fmt"
)

// Typed recovery errors. Recovery distinguishes damage it can absorb (a
// torn tail: everything after the corrupt point is dropped, reported in
// RecoverStats.TailFaults) from damage it must refuse (a checkpoint file
// that is not a checkpoint at all).
var (
	// ErrTornTail marks a redo log or checkpoint whose final bytes were
	// corrupt or truncated — a crash mid-write. Recovery drops the tail,
	// keeps every record before it, and succeeds; each dropped tail is a
	// *TornTailError in RecoverStats.TailFaults matching this sentinel
	// via errors.Is.
	ErrTornTail = errors.New("wal: torn or corrupt log tail dropped")
	// ErrCorruptLength marks a record whose length prefix or entry count
	// is impossible (out of the file's bounds or past the sanity cap).
	// The length is validated before any allocation is sized from it, so
	// a corrupt prefix can never cause a huge allocation or a panic.
	ErrCorruptLength = errors.New("wal: corrupt record length")
	// ErrChecksum marks a record whose CRC32C does not match its body.
	ErrChecksum = errors.New("wal: record checksum mismatch")
	// ErrBadCheckpoint marks a checkpoint file whose header is not a
	// checkpoint header; recovery fails rather than silently recovering
	// nothing.
	ErrBadCheckpoint = errors.New("wal: bad checkpoint header")
)

// TornTailError reports one dropped log tail: file, offset of the first
// bad byte, how many bytes were dropped, and the framing violation that
// condemned them. It matches ErrTornTail and its Cause via errors.Is.
type TornTailError struct {
	// Path is the damaged file.
	Path string
	// Offset is the byte offset of the first rejected record.
	Offset int64
	// Dropped is the number of bytes from Offset to end of file.
	Dropped int64
	// Cause is the framing violation: ErrCorruptLength, ErrChecksum, or
	// a description of the truncation.
	Cause error
}

// Error implements error.
func (e *TornTailError) Error() string {
	return fmt.Sprintf("wal: %s: dropped %d-byte tail at offset %d: %v",
		e.Path, e.Dropped, e.Offset, e.Cause)
}

// Unwrap exposes the framing violation to errors.Is/As.
func (e *TornTailError) Unwrap() error { return e.Cause }

// Is matches the ErrTornTail sentinel.
func (e *TornTailError) Is(target error) bool { return target == ErrTornTail }
