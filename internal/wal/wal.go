// Package wal implements Cicada's durability and recovery design (§3.7):
// parallel value logging through logger threads that each service a group of
// workers, group commit, background checkpointing of the latest committed
// versions, log/checkpoint purging, and parallel replay that installs each
// record's newest version.
//
// The write path is a zero-copy batched pipeline built on internal/buf's
// chained chunk pool. A worker hands its validated transaction's write set
// to the WAL before marking versions COMMITTED (the engine's Logger hook
// runs between validation and the write phase); the redo frame is encoded
// directly into the worker's own staged chunk chain — no per-record
// allocation, no shared mutex, no file I/O on the worker's goroutine. Each
// logger's group-commit goroutine detaches the staged chains of the workers
// it services every GroupCommit interval (or sooner, when a worker seals a
// full chunk), coalesces them into large gathered writes, and makes the
// batch durable with one fsync per interval — the paper's group-commit
// amortization. Frames never span chunks (internal/buf's Writer guarantees
// contiguity), so file rotation between chunks never splits a record across
// files. Call Flush for a durability barrier.
//
// Every on-disk record is framed with a length prefix and a CRC32C
// trailer, so recovery validates sizes before trusting them and detects
// bit flips and torn writes. A corrupt or truncated final record is
// dropped — not an error — and surfaces as a *TornTailError in
// RecoverStats.TailFaults; corruption is never replayed past. Checkpoints
// install atomically (temp file → fsync → rename → directory fsync), so a
// crash leaves either the old checkpoint set or the new one, never a
// half-written file that recovery would prefer.
//
// The package's I/O sites carry internal/fault failpoints (a no-op unless
// a test enables a registry); RunTorture drives randomized crash-recovery
// runs over them. The on-disk format, the batched group-commit
// acknowledgment contract, the failure model, and the failpoint catalog are
// specified in docs/DURABILITY.md.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"cicada/internal/buf"
	"cicada/internal/clock"
	"cicada/internal/core"
	"cicada/internal/fault"
	"cicada/internal/telemetry"
	"cicada/internal/trace"
)

const (
	// redoMagic opens every redo record (format v2: length-prefixed,
	// CRC32C). v1 records (0xC1CADA10, CRC32-IEEE, no length prefix) are
	// not readable by this version.
	redoMagic = 0xC1CADA11
	// ckptMagic opens a checkpoint file (format v2, CRC32C records).
	ckptMagic = 0xC1CADA2D

	// redoHdrLen is the fixed redo record header:
	// magic(4) recLen(4) ts(8) worker(4) nEntries(4).
	redoHdrLen = 24
	// redoEntryLen is the fixed per-entry prefix:
	// table(4) rid(8) flags(1) dlen(4).
	redoEntryLen = 17
	// redoMinLen is the smallest legal record: header plus CRC trailer.
	redoMinLen = redoHdrLen + 4
	// maxRecordLen caps any length field read from disk before it sizes
	// an allocation or an offset jump; a corrupt prefix beyond it is
	// rejected as ErrCorruptLength.
	maxRecordLen = 64 << 20
)

// castagnoli is the CRC32C polynomial table used for all record framing
// (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errStopped reports a submit against a stopped logger.
var errStopped = errors.New("wal: logger stopped")

// Options configures a Manager.
type Options struct {
	// Dir is the directory for redo logs and checkpoints.
	Dir string
	// Loggers is the number of logger threads; each services
	// Workers/Loggers workers (paper: one per NUMA-node worker group).
	// Default: 1 per 4 workers.
	Loggers int
	// GroupCommit is the flush/fsync interval (§3.7 group commit).
	// Default: 1 ms.
	GroupCommit time.Duration
	// ChunkSize rotates redo log files at this size. Default: 1 MiB.
	ChunkSize int64
	// BufChunk is the pooled in-memory chunk size of the staged redo
	// chains (see internal/buf). Smaller chunks seal and kick the
	// committer more often; larger ones amortize better.
	// Default: buf.DefaultChunkSize (64 KiB).
	BufChunk int
}

func (o *Options) setDefaults(workers int) {
	if o.Loggers <= 0 {
		o.Loggers = (workers + 3) / 4
	}
	if o.Loggers > workers {
		o.Loggers = workers
	}
	if o.GroupCommit <= 0 {
		o.GroupCommit = time.Millisecond
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 1 << 20
	}
	if o.BufChunk <= 0 {
		o.BufChunk = buf.DefaultChunkSize
	}
	// Rotation happens between staged chunks, so a file can overshoot
	// ChunkSize by at most one chunk; clamping keeps that overshoot (and
	// the rotation cadence tests rely on) proportional to the file size.
	if int64(o.BufChunk) > o.ChunkSize {
		o.BufChunk = int(o.ChunkSize)
	}
}

// walMetrics is the package's telemetry family set (docs/OBSERVABILITY.md).
// Writes are serialized per logger by the logger's file mutex.
type walMetrics struct {
	batches      *telemetry.Counter
	batchBytes   *telemetry.Counter
	batchRecords *telemetry.Counter
	fsyncs       *telemetry.Counter
	queueDepth   *telemetry.Gauge
}

func newWALMetrics(reg *telemetry.Registry) *walMetrics {
	return &walMetrics{
		batches:      reg.Counter("wal_batches_total", "Group-commit batch flushes that drained at least one chunk."),
		batchBytes:   reg.Counter("wal_batch_bytes_total", "Redo bytes written by gathered batch flushes."),
		batchRecords: reg.Counter("wal_batch_records_total", "Redo records written by gathered batch flushes."),
		fsyncs:       reg.Counter("wal_fsyncs_total", "Batch fsyncs performed (group-commit intervals and Flush barriers)."),
		queueDepth:   reg.Gauge("wal_queue_depth", "Staged chunks drained by the most recent batch flush, per logger."),
	}
}

// Manager owns the per-worker staging, the logger threads, and
// checkpointing for one engine.
type Manager struct {
	eng     *core.Engine
	opts    Options
	pool    *buf.Pool
	stages  []*stage
	loggers []*logger
	ckptSeq int
	mu      sync.Mutex // serializes Checkpoint/Close
	closed  bool
	// fsyncs counts successful batch fsyncs across all loggers (the
	// bench harness derives fsyncs-per-transaction from it).
	fsyncs atomic.Uint64
	// tr mirrors the engine's tracer: append events are recorded on the
	// calling worker's shard, batch/fsync events on per-logger extra
	// shards.
	tr  *trace.Tracer
	met *walMetrics
}

// Attach creates the log directory, starts logger threads, and installs the
// engine's durability hook. It must be called before transactions run.
func Attach(eng *core.Engine, opts Options) (*Manager, error) {
	workers := eng.Options().Workers
	opts.setDefaults(workers)
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{
		eng:  eng,
		opts: opts,
		pool: buf.NewPool(opts.BufChunk, 0),
		tr:   eng.Options().Trace,
	}
	if reg := eng.Options().Metrics; reg != nil {
		m.met = newWALMetrics(reg)
	}
	for i := 0; i < opts.Loggers; i++ {
		lg, err := newLogger(m, i)
		if err != nil {
			m.stopLoggers()
			return nil, err
		}
		if m.tr != nil {
			// The group-commit goroutine is a non-worker single writer, so
			// it gets its own shard for batch and fsync events.
			lg.tr = m.tr.AddShard(fmt.Sprintf("wal-logger-%d", i))
		}
		m.loggers = append(m.loggers, lg)
	}
	m.stages = make([]*stage, workers)
	for w := 0; w < workers; w++ {
		lg := m.loggers[w%len(m.loggers)]
		st := &stage{lg: lg}
		st.w.Init(m.pool)
		m.stages[w] = st
		lg.stages = append(lg.stages, st)
	}
	for _, lg := range m.loggers {
		go lg.run()
	}
	eng.SetLogger(m)
	return m, nil
}

// Log implements core.Logger: encode the redo record into the worker's own
// staged chunk chain. It runs on the worker's goroutine — no file I/O, no
// shared mutex — so the append trace event goes to that worker's own shard.
//
//cicada:noalloc
func (m *Manager) Log(worker int, ts clock.Timestamp, entries []core.LogEntry) error {
	st := m.stages[worker]
	var sh *trace.Shard
	var start time.Time
	if m.tr != nil && worker < m.tr.Shards() {
		if s := m.tr.Shard(worker); s.Enabled() {
			sh = s
			start = time.Now()
		}
	}
	n, sealed, err := st.submit(ts, worker, entries)
	if sealed {
		// A full chunk is waiting: wake the committer without blocking.
		st.lg.kickNow()
	}
	if sh != nil {
		sh.Record(trace.EvWALAppend, start.UnixNano(), uint64(time.Since(start)), uint64(n), 0)
	}
	return err
}

// Fsyncs returns the number of successful batch fsyncs so far.
func (m *Manager) Fsyncs() uint64 { return m.fsyncs.Load() }

// Flush forces all staged redo records to stable storage (a durability
// barrier, in place of waiting out the group-commit interval).
func (m *Manager) Flush() error {
	for _, lg := range m.loggers {
		if err := lg.flushSync(); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and stops the loggers.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	err := m.Flush()
	m.stopLoggers()
	return err
}

func (m *Manager) stopLoggers() {
	for _, lg := range m.loggers {
		lg.stop()
	}
}

// syncDir fsyncs a directory so a completed rename or create is durable —
// the second half of the atomic-install protocol (temp file → fsync →
// rename → directory fsync).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// stage is one worker's staging lane: a chunk chain the worker encodes redo
// frames into under a lane-private mutex. The only other contender is the
// committer's detach, a pointer swap once per flush — workers never wait
// behind another worker's append or behind an fsync. Stages are allocated
// individually so no two lanes share a cache line.
type stage struct {
	lg *logger
	mu sync.Mutex
	w  buf.Writer
	// recs counts frames staged since the last detach; maxTS tracks the
	// newest staged write timestamp (monotone; detach reads it to name
	// sealed files conservatively).
	recs  int
	maxTS clock.Timestamp
}

// submit encodes one transaction's redo record into the stage's chain. The
// entry data is copied into pooled chunk memory, so the caller's buffers
// may be reused immediately. A failure is returned to the worker, which
// aborts the transaction (§3.4) with nothing staged.
//
//cicada:noalloc
func (st *stage) submit(ts clock.Timestamp, worker int, entries []core.LogEntry) (int, bool, error) {
	size := redoSize(entries)
	lg := st.lg
	st.mu.Lock()
	if lg.failed.Load() {
		st.mu.Unlock()
		return 0, false, lg.failure()
	}
	sealed := false
	if !st.w.Fits(size) && st.w.Chunks() > 0 {
		// The tail chunk is complete; this frame opens a fresh one.
		if err := fault.Inject(fault.WALChunkSeal); err != nil {
			st.mu.Unlock()
			return 0, false, err
		}
		sealed = true
	}
	frame := st.w.Frame(size)
	encodeRedoInto(frame, ts, worker, entries)
	st.recs++
	if ts > st.maxTS {
		st.maxTS = ts
	}
	st.mu.Unlock()
	return size, sealed, nil
}

// redoSize returns the encoded size of one redo record.
//
//cicada:noalloc
func redoSize(entries []core.LogEntry) int {
	size := redoHdrLen
	for i := range entries {
		size += redoEntryLen + len(entries[i].Data)
	}
	return size + 4 // crc
}

// encodeRedoInto frames one transaction's write set as a redo record in
// buf, which must be exactly redoSize(entries) bytes:
//
//	magic(4) recLen(4) ts(8) worker(4) nEntries(4)
//	  per entry: table(4) rid(8) flags(1) dlen(4) data(dlen)
//	crc32c(4)  — over everything before it, magic included
//
// recLen is the total record length in bytes, so recovery can bounds-check
// the frame before parsing entries (see readRedo).
//
//cicada:noalloc
func encodeRedoInto(buf []byte, ts clock.Timestamp, worker int, entries []core.LogEntry) {
	size := len(buf)
	binary.LittleEndian.PutUint32(buf[0:], redoMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(size))
	binary.LittleEndian.PutUint64(buf[8:], uint64(ts))
	binary.LittleEndian.PutUint32(buf[16:], uint32(worker))
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(entries)))
	o := redoHdrLen
	for _, e := range entries {
		binary.LittleEndian.PutUint32(buf[o:], uint32(e.Table))
		o += 4
		binary.LittleEndian.PutUint64(buf[o:], uint64(e.Record))
		o += 8
		// Full-width store: the frame may sit in a recycled pool chunk, so
		// every byte must be written, not just set when the flag is true.
		flags := byte(0)
		if e.Deleted {
			flags = 1
		}
		buf[o] = flags
		o++
		binary.LittleEndian.PutUint32(buf[o:], uint32(len(e.Data)))
		o += 4
		copy(buf[o:], e.Data)
		o += len(e.Data)
	}
	crc := crc32.Checksum(buf[:size-4], castagnoli)
	binary.LittleEndian.PutUint32(buf[size-4:], crc)
}

// encodeRedo allocates and encodes one redo record (test and tooling
// convenience; the write path encodes directly into pooled chunks via
// encodeRedoInto).
func encodeRedo(ts clock.Timestamp, worker int, entries []core.LogEntry) []byte {
	buf := make([]byte, redoSize(entries))
	encodeRedoInto(buf, ts, worker, entries)
	return buf
}

// logger owns one chunked redo stream and the group-commit goroutine that
// services a group of worker stages: every GroupCommit interval (or sooner
// when a worker seals a full chunk) it detaches the staged chains,
// coalesces them into gathered writes, and fsyncs the batch once. Workers
// never touch the file or the file mutex.
type logger struct {
	m      *Manager
	dir    string
	id     int
	opts   Options
	stages []*stage
	kick   chan struct{}
	done   chan struct{}
	// failed mirrors err for the workers' lock-free submit check; err is
	// the poisoned stream's cause, guarded by fmu.
	failed atomic.Bool
	fmu    sync.Mutex // guards file state below
	f      *os.File
	size   int64
	seq    int
	maxTS  clock.Timestamp
	dirty  bool // bytes written since the last successful fsync
	err    error
	// tr is the group-commit goroutine's trace shard (nil when untraced).
	// Only run() records on it: flushSync runs on arbitrary caller
	// goroutines, which would break the single-writer discipline.
	tr *trace.Shard
}

func newLogger(m *Manager, id int) (*logger, error) {
	lg := &logger{
		m:    m,
		dir:  m.opts.Dir,
		id:   id,
		opts: m.opts,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	if err := lg.openChunk(); err != nil {
		return nil, err
	}
	return lg, nil
}

func (lg *logger) chunkPath(seq int) string {
	return filepath.Join(lg.dir, fmt.Sprintf("redo-%03d-%09d.log", lg.id, seq))
}

func (lg *logger) openChunk() error {
	f, err := os.OpenFile(lg.chunkPath(lg.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	lg.f = f
	lg.size = 0
	return nil
}

// kickNow wakes the committer without blocking (a full kick queue means a
// wake-up is already pending).
//
//cicada:noalloc
func (lg *logger) kickNow() {
	select {
	case lg.kick <- struct{}{}:
	default:
	}
}

// fail poisons the stream: no later record can be appended after the
// damage, and workers see the failure on their next submit. Caller holds
// fmu.
func (lg *logger) fail(err error) {
	if lg.err == nil {
		lg.err = err
	}
	lg.failed.Store(true)
}

// failure returns the poisoned stream's cause.
func (lg *logger) failure() error {
	lg.fmu.Lock()
	err := lg.err
	lg.fmu.Unlock()
	if err == nil {
		err = errStopped
	}
	return err
}

// run is the group-commit goroutine: it drains and writes the staged
// chains on every kick, and fsyncs the stream every GroupCommit interval,
// until stopped.
func (lg *logger) run() {
	tick := time.NewTicker(lg.opts.GroupCommit)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			lg.flushTimed(true)
		case <-lg.kick:
			// A sealed chunk is waiting: write it out to bound staged
			// memory, but leave the fsync to the interval tick.
			lg.flushTimed(false)
		case <-lg.done:
			lg.fmu.Lock()
			lg.flushLocked()
			lg.syncLocked()
			if lg.f != nil {
				lg.f.Close()
				lg.f = nil
			}
			lg.fail(errStopped)
			lg.fmu.Unlock()
			return
		}
	}
}

// flushTimed is run()'s flush wrapper: it records per-batch wal_batch and
// wal_fsync trace events on the group-commit goroutine's own shard.
// flushSync must keep calling the bare flushLocked/syncLocked — it runs on
// arbitrary goroutines.
func (lg *logger) flushTimed(sync bool) {
	traced := lg.tr != nil && lg.tr.Enabled()
	var start time.Time
	if traced {
		start = time.Now()
	}
	lg.fmu.Lock()
	chunks, recs, bytes := lg.flushLocked()
	if traced && chunks > 0 {
		lg.tr.Record(trace.EvWALBatch, start.UnixNano(), uint64(time.Since(start)), uint64(bytes), uint64(recs))
	}
	if sync {
		var s0 time.Time
		if traced {
			s0 = time.Now()
		}
		if lg.syncLocked() && traced {
			lg.tr.Record(trace.EvWALFsync, s0.UnixNano(), uint64(time.Since(s0)), 0, 0)
		}
	}
	lg.fmu.Unlock()
}

// flushLocked detaches every serviced stage's chain and writes the chunks
// out in one gathered pass, rotating files between chunks (frames never
// span chunks, so rotation never splits a record across files). Chunks are
// recycled to the pool as they are written. Caller holds fmu.
func (lg *logger) flushLocked() (chunks, recs int, bytes int64) {
	var head, tail *buf.Chunk
	var maxTS clock.Timestamp
	for _, st := range lg.stages {
		st.mu.Lock()
		h, c, b := st.w.Detach()
		r := st.recs
		st.recs = 0
		if st.maxTS > maxTS {
			maxTS = st.maxTS
		}
		st.mu.Unlock()
		if h == nil {
			continue
		}
		if head == nil {
			head = h
		} else {
			tail.SetNext(h)
		}
		t := h
		for t.Next() != nil {
			t = t.Next()
		}
		tail = t
		chunks += c
		recs += r
		bytes += b
	}
	if head == nil {
		return 0, 0, 0
	}
	// The batch maximum is applied to the current file before any of its
	// chunks land: a mid-batch rotation then names the sealed file with a
	// timestamp at or above everything it holds, which only delays
	// purging (never loses coverage).
	if maxTS > lg.maxTS {
		lg.maxTS = maxTS
	}
	for c := head; c != nil; c = c.Next() {
		if lg.err == nil {
			lg.writeChunkLocked(c)
		}
	}
	for c := head; c != nil; {
		nx := c.Next()
		c.Release()
		c = nx
	}
	if met := lg.m.met; met != nil {
		met.batches.Shard(lg.id).Add(1)
		met.batchBytes.Shard(lg.id).Add(uint64(bytes))
		met.batchRecords.Shard(lg.id).Add(uint64(recs))
		met.queueDepth.Shard(lg.id).Set(int64(chunks))
	}
	return chunks, recs, bytes
}

// writeChunkLocked appends one staged chunk to the file with a single
// gathered write. Caller holds fmu and has checked lg.err.
func (lg *logger) writeChunkLocked(c *buf.Chunk) {
	if lg.size >= lg.opts.ChunkSize {
		lg.rotateLocked()
		if lg.err != nil {
			return
		}
	}
	b := c.Bytes()
	n, err := fault.Write(fault.WALGatherWrite, lg.f, b)
	if err != nil {
		// A short or torn write may have left a partial record on disk;
		// recovery's tail-truncation drops it. The stream is poisoned so
		// no later record can be appended after the damage.
		lg.fail(err)
		return
	}
	if n < len(b) {
		lg.fail(fmt.Errorf("wal: short gathered write: %d of %d bytes", n, len(b)))
		return
	}
	lg.size += int64(n)
	lg.dirty = true
}

// rotateLocked closes the current chunk file (renaming it to embed its
// maximum write timestamp, which drives purging) and opens the next.
func (lg *logger) rotateLocked() {
	if err := fault.Inject(fault.WALRotate); err != nil {
		lg.fail(err)
		return
	}
	lg.f.Sync()
	lg.f.Close()
	closed := lg.chunkPath(lg.seq)
	sealed := filepath.Join(lg.dir, fmt.Sprintf("redo-%03d-%09d-%020d.sealed.log", lg.id, lg.seq, uint64(lg.maxTS)))
	if err := os.Rename(closed, sealed); err != nil {
		lg.fail(err)
		return
	}
	if err := syncDir(lg.dir); err != nil {
		lg.fail(err)
		return
	}
	lg.seq++
	lg.maxTS = 0
	lg.dirty = false
	if err := lg.openChunk(); err != nil {
		lg.fail(err)
	}
}

// syncLocked makes everything written since the last fsync durable; it is
// skipped when nothing is dirty (an idle interval costs no fsync). It
// reports whether an fsync was performed. Caller holds fmu.
func (lg *logger) syncLocked() bool {
	if lg.err != nil || lg.f == nil || !lg.dirty {
		return false
	}
	if err := fault.Inject(fault.WALBatchFsync); err != nil {
		lg.fail(err)
		return false
	}
	if err := lg.f.Sync(); err != nil {
		lg.fail(err)
		return false
	}
	lg.dirty = false
	lg.m.fsyncs.Add(1)
	if met := lg.m.met; met != nil {
		met.fsyncs.Shard(lg.id).Add(1)
	}
	return true
}

// flushSync drains the staged chains and fsyncs the stream (a durability
// barrier covering everything submitted before the call).
func (lg *logger) flushSync() error {
	lg.fmu.Lock()
	defer lg.fmu.Unlock()
	lg.flushLocked()
	lg.syncLocked()
	return lg.err
}

func (lg *logger) stop() {
	select {
	case <-lg.done:
	default:
		close(lg.done)
	}
}
