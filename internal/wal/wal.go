// Package wal implements Cicada's durability and recovery design (§3.7):
// parallel value logging through logger threads that each service a group of
// workers, group commit, background checkpointing of the latest committed
// versions, log/checkpoint purging, and parallel replay that installs each
// record's newest version.
//
// A worker hands its validated transaction's write set to its logger before
// marking versions COMMITTED (the engine's Logger hook runs between
// validation and the write phase). Loggers append redo records to per-logger
// chunked files and make them durable on a group-commit interval, following
// the paper's note that durability may be realized after commit when the
// application allows it; call Flush for a durability barrier.
//
// Every on-disk record is framed with a length prefix and a CRC32C
// trailer, so recovery validates sizes before trusting them and detects
// bit flips and torn writes. A corrupt or truncated final record is
// dropped — not an error — and surfaces as a *TornTailError in
// RecoverStats.TailFaults; corruption is never replayed past. Checkpoints
// install atomically (temp file → fsync → rename → directory fsync), so a
// crash leaves either the old checkpoint set or the new one, never a
// half-written file that recovery would prefer.
//
// The package's I/O sites carry internal/fault failpoints (a no-op unless
// a test enables a registry); RunTorture drives randomized crash-recovery
// runs over them. The on-disk format, the group-commit acknowledgment
// contract, the failure model, and the failpoint catalog are specified in
// docs/DURABILITY.md.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cicada/internal/clock"
	"cicada/internal/core"
	"cicada/internal/fault"
	"cicada/internal/trace"
)

const (
	// redoMagic opens every redo record (format v2: length-prefixed,
	// CRC32C). v1 records (0xC1CADA10, CRC32-IEEE, no length prefix) are
	// not readable by this version.
	redoMagic = 0xC1CADA11
	// ckptMagic opens a checkpoint file (format v2, CRC32C records).
	ckptMagic = 0xC1CADA2D

	// redoHdrLen is the fixed redo record header:
	// magic(4) recLen(4) ts(8) worker(4) nEntries(4).
	redoHdrLen = 24
	// redoEntryLen is the fixed per-entry prefix:
	// table(4) rid(8) flags(1) dlen(4).
	redoEntryLen = 17
	// redoMinLen is the smallest legal record: header plus CRC trailer.
	redoMinLen = redoHdrLen + 4
	// maxRecordLen caps any length field read from disk before it sizes
	// an allocation or an offset jump; a corrupt prefix beyond it is
	// rejected as ErrCorruptLength.
	maxRecordLen = 64 << 20
)

// castagnoli is the CRC32C polynomial table used for all record framing
// (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Manager.
type Options struct {
	// Dir is the directory for redo logs and checkpoints.
	Dir string
	// Loggers is the number of logger threads; each services
	// Workers/Loggers workers (paper: one per NUMA-node worker group).
	// Default: 1 per 4 workers.
	Loggers int
	// GroupCommit is the flush/fsync interval (§3.7 group commit).
	// Default: 1 ms.
	GroupCommit time.Duration
	// ChunkSize rotates redo log files at this size. Default: 1 MiB.
	ChunkSize int64
}

func (o *Options) setDefaults(workers int) {
	if o.Loggers <= 0 {
		o.Loggers = (workers + 3) / 4
	}
	if o.Loggers > workers {
		o.Loggers = workers
	}
	if o.GroupCommit <= 0 {
		o.GroupCommit = time.Millisecond
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 1 << 20
	}
}

// Manager owns the logger threads and checkpointing for one engine.
type Manager struct {
	eng     *core.Engine
	opts    Options
	loggers []*logger
	ckptSeq int
	mu      sync.Mutex // serializes Checkpoint/Close
	closed  bool
	// tr mirrors the engine's tracer: append events are recorded on the
	// calling worker's shard, fsync events on per-logger extra shards.
	tr *trace.Tracer
}

// Attach creates the log directory, starts logger threads, and installs the
// engine's durability hook. It must be called before transactions run.
func Attach(eng *core.Engine, opts Options) (*Manager, error) {
	opts.setDefaults(eng.Options().Workers)
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{eng: eng, opts: opts, tr: eng.Options().Trace}
	for i := 0; i < opts.Loggers; i++ {
		lg, err := newLogger(opts.Dir, i, opts)
		if err != nil {
			m.stopLoggers()
			return nil, err
		}
		if m.tr != nil {
			// The group-commit goroutine is a non-worker single writer, so
			// it gets its own shard for fsync events.
			lg.tr = m.tr.AddShard(fmt.Sprintf("wal-logger-%d", i))
		}
		m.loggers = append(m.loggers, lg)
	}
	eng.SetLogger(m)
	return m, nil
}

// Log implements core.Logger: encode the redo record and hand it to the
// worker's logger. It runs on the worker's goroutine, so the append trace
// event goes to that worker's own shard.
func (m *Manager) Log(worker int, ts clock.Timestamp, entries []core.LogEntry) error {
	lg := m.loggers[worker%len(m.loggers)]
	var sh *trace.Shard
	var start time.Time
	if m.tr != nil && worker < m.tr.Shards() {
		if s := m.tr.Shard(worker); s.Enabled() {
			sh = s
			start = time.Now()
		}
	}
	n, err := lg.submit(ts, worker, entries)
	if sh != nil {
		sh.Record(trace.EvWALAppend, start.UnixNano(), uint64(time.Since(start)), uint64(n), 0)
	}
	return err
}

// Flush forces all buffered redo records to stable storage (a durability
// barrier, in place of waiting out the group-commit interval).
func (m *Manager) Flush() error {
	for _, lg := range m.loggers {
		if err := lg.flushSync(); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and stops the loggers.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	err := m.Flush()
	m.stopLoggers()
	return err
}

func (m *Manager) stopLoggers() {
	for _, lg := range m.loggers {
		lg.stop()
	}
}

// syncDir fsyncs a directory so a completed rename or create is durable —
// the second half of the atomic-install protocol (temp file → fsync →
// rename → directory fsync).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// logger owns one chunked redo stream. Workers append redo records under
// the logger mutex (the OS page cache absorbs the append); a background
// group-commit goroutine makes the stream durable every GroupCommit
// interval, so workers never wait for fsync — the paper’s group commit
// amortization (§3.7).
type logger struct {
	dir   string
	id    int
	opts  Options
	done  chan struct{}
	mu    sync.Mutex // guards file state
	f     *os.File
	size  int64
	seq   int
	maxTS clock.Timestamp
	err   error
	// tr is the group-commit goroutine's trace shard (nil when untraced).
	// Only run() records on it: flushSync runs on arbitrary caller
	// goroutines, which would break the single-writer discipline.
	tr *trace.Shard
}

func newLogger(dir string, id int, opts Options) (*logger, error) {
	lg := &logger{
		dir:  dir,
		id:   id,
		opts: opts,
		done: make(chan struct{}),
	}
	if err := lg.openChunk(); err != nil {
		return nil, err
	}
	go lg.run()
	return lg, nil
}

func (lg *logger) chunkPath(seq int) string {
	return filepath.Join(lg.dir, fmt.Sprintf("redo-%03d-%09d.log", lg.id, seq))
}

func (lg *logger) openChunk() error {
	f, err := os.OpenFile(lg.chunkPath(lg.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	lg.f = f
	lg.size = 0
	return nil
}

// submit encodes and appends one transaction's redo record. The entry data
// is copied into the encoded buffer, so the caller's buffers may be reused
// immediately. A logging failure is returned to the worker, which aborts
// the transaction (§3.4).
func (lg *logger) submit(ts clock.Timestamp, worker int, entries []core.LogEntry) (int, error) {
	buf := encodeRedo(ts, worker, entries)
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if lg.err != nil {
		return 0, lg.err
	}
	if lg.f == nil {
		return 0, fmt.Errorf("wal: logger %d stopped", lg.id)
	}
	lg.writeLocked(buf, ts)
	return len(buf), lg.err
}

// encodeRedo frames one transaction's write set as a redo record:
//
//	magic(4) recLen(4) ts(8) worker(4) nEntries(4)
//	  per entry: table(4) rid(8) flags(1) dlen(4) data(dlen)
//	crc32c(4)  — over everything before it, magic included
//
// recLen is the total record length in bytes, so recovery can bounds-check
// the frame before parsing entries (see readRedo).
func encodeRedo(ts clock.Timestamp, worker int, entries []core.LogEntry) []byte {
	size := redoHdrLen
	for _, e := range entries {
		size += redoEntryLen + len(e.Data)
	}
	size += 4 // crc
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf[0:], redoMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(size))
	binary.LittleEndian.PutUint64(buf[8:], uint64(ts))
	binary.LittleEndian.PutUint32(buf[16:], uint32(worker))
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(entries)))
	o := redoHdrLen
	for _, e := range entries {
		binary.LittleEndian.PutUint32(buf[o:], uint32(e.Table))
		o += 4
		binary.LittleEndian.PutUint64(buf[o:], uint64(e.Record))
		o += 8
		if e.Deleted {
			buf[o] = 1
		}
		o++
		binary.LittleEndian.PutUint32(buf[o:], uint32(len(e.Data)))
		o += 4
		copy(buf[o:], e.Data)
		o += len(e.Data)
	}
	crc := crc32.Checksum(buf[:size-4], castagnoli)
	binary.LittleEndian.PutUint32(buf[size-4:], crc)
	return buf
}

// run is the group-commit goroutine: it fsyncs the stream every GroupCommit
// interval until stopped.
func (lg *logger) run() {
	tick := time.NewTicker(lg.opts.GroupCommit)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			lg.mu.Lock()
			lg.timedSyncLocked()
			lg.mu.Unlock()
		case <-lg.done:
			lg.mu.Lock()
			lg.timedSyncLocked()
			if lg.f != nil {
				lg.f.Close()
				lg.f = nil
			}
			lg.mu.Unlock()
			return
		}
	}
}

// timedSyncLocked is run()'s fsync wrapper: it records a wal_fsync trace
// event on the group-commit goroutine's own shard. flushSync must keep
// calling the bare syncLocked — it runs on arbitrary goroutines.
func (lg *logger) timedSyncLocked() {
	if lg.tr == nil || !lg.tr.Enabled() {
		lg.syncLocked()
		return
	}
	start := time.Now()
	lg.syncLocked()
	lg.tr.Record(trace.EvWALFsync, start.UnixNano(), uint64(time.Since(start)), 0, 0)
}

func (lg *logger) writeLocked(buf []byte, ts clock.Timestamp) {
	n, err := fault.Write(fault.WALAppend, lg.f, buf)
	if err != nil {
		// A short or torn write may have left a partial record on disk;
		// recovery's tail-truncation drops it. The stream is poisoned so
		// no later record can be appended after the damage.
		lg.err = err
		return
	}
	if n < len(buf) {
		lg.err = fmt.Errorf("wal: short append: %d of %d bytes", n, len(buf))
		return
	}
	if ts > lg.maxTS {
		lg.maxTS = ts
	}
	lg.size += int64(len(buf))
	if lg.size >= lg.opts.ChunkSize {
		lg.rotateLocked()
	}
}

// rotateLocked closes the current chunk (renaming it to embed its maximum
// write timestamp, which drives purging) and opens the next.
func (lg *logger) rotateLocked() {
	if err := fault.Inject(fault.WALRotate); err != nil {
		lg.err = err
		return
	}
	lg.f.Sync()
	lg.f.Close()
	closed := lg.chunkPath(lg.seq)
	sealed := filepath.Join(lg.dir, fmt.Sprintf("redo-%03d-%09d-%020d.sealed.log", lg.id, lg.seq, uint64(lg.maxTS)))
	if err := os.Rename(closed, sealed); err != nil {
		lg.err = err
		return
	}
	if err := syncDir(lg.dir); err != nil {
		lg.err = err
		return
	}
	lg.seq++
	lg.maxTS = 0
	if err := lg.openChunk(); err != nil {
		lg.err = err
	}
}

func (lg *logger) syncLocked() {
	if lg.err != nil || lg.f == nil {
		return
	}
	if err := fault.Inject(fault.WALSync); err != nil {
		lg.err = err
		return
	}
	if err := lg.f.Sync(); err != nil {
		lg.err = err
	}
}

// flushSync fsyncs the stream (a durability barrier).
func (lg *logger) flushSync() error {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	lg.syncLocked()
	return lg.err
}

func (lg *logger) stop() {
	select {
	case <-lg.done:
	default:
		close(lg.done)
	}
}
