package wal

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"cicada/internal/core"
	"cicada/internal/storage"
)

// TestRandomTruncationRecoversPrefix simulates torn crashes: a single
// worker increments one record's counter through the WAL; the log is then
// truncated at a random byte offset and recovered. The recovered counter
// must be a value the record actually held (a prefix of the commit
// history), never garbage and never beyond the final value.
func TestRandomTruncationRecoversPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		dir := t.TempDir()
		e := newEngine(1)
		tbl := e.CreateTable("t")
		m, err := Attach(e, Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		w := e.Worker(0)
		var rid storage.RecordID
		if err := w.Run(func(tx *core.Txn) error {
			r, buf, err := tx.Insert(tbl, 8)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, 0)
			rid = r
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		const increments = 40
		for i := 0; i < increments; i++ {
			if err := w.Run(func(tx *core.Txn) error {
				buf, err := tx.Update(tbl, rid, -1)
				if err != nil {
					return err
				}
				binary.LittleEndian.PutUint64(buf, binary.LittleEndian.Uint64(buf)+1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		logs, _ := filepath.Glob(filepath.Join(dir, "redo-*.log"))
		if len(logs) != 1 {
			t.Fatalf("trial %d: %d log files", trial, len(logs))
		}
		info, err := os.Stat(logs[0])
		if err != nil {
			t.Fatal(err)
		}
		cut := int64(rng.Intn(int(info.Size()) + 1))
		if err := os.Truncate(logs[0], cut); err != nil {
			t.Fatal(err)
		}

		e2 := newEngine(1)
		tbl2 := e2.CreateTable("t")
		if _, err := Recover(e2, dir); err != nil {
			t.Fatalf("trial %d (cut %d): %v", trial, cut, err)
		}
		// The record either recovered with some prefix value or (if even
		// the insert record was cut) does not exist.
		if err := e2.Worker(0).Run(func(tx *core.Txn) error {
			d, err := tx.Read(tbl2, rid)
			if err != nil {
				return nil // insert record lost entirely: valid prefix
			}
			v := binary.LittleEndian.Uint64(d)
			if v > increments {
				t.Fatalf("trial %d: recovered counter %d beyond final %d", trial, v, increments)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}
