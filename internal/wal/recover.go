package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"cicada/internal/clock"
	"cicada/internal/core"
	"cicada/internal/storage"
)

// RecoverStats summarizes a recovery run.
type RecoverStats struct {
	// CheckpointRecords is the number of records loaded from the checkpoint.
	CheckpointRecords int
	// RedoRecords is the number of redo log records replayed.
	RedoRecords int
	// Installed is the number of record versions installed.
	Installed int
	// Deleted is the number of records whose newest entry was a delete.
	Deleted int
	// MaxTS is the newest write timestamp observed.
	MaxTS clock.Timestamp
}

type replayKey struct {
	table core.TableID
	rid   storage.RecordID
}

type replayVal struct {
	wts     clock.Timestamp
	data    []byte
	deleted bool
}

// Recover replays the newest checkpoint plus all redo logs in dir into eng,
// which must be freshly created with the same table schema (CreateTable
// calls in the same order) and must not be running transactions. Each
// record keeps only its newest version; a record whose newest entry is a
// delete is not recreated, preserving deletion durability (§3.7). Replay is
// partitioned across goroutines by record. Afterward the engine's clocks
// are initialized past every replayed timestamp.
func Recover(eng *core.Engine, dir string) (RecoverStats, error) {
	var stats RecoverStats
	state := make(map[replayKey]replayVal, 1<<16)

	apply := func(k replayKey, v replayVal) {
		if cur, ok := state[k]; ok && cur.wts >= v.wts {
			return
		}
		state[k] = v
		if v.wts > stats.MaxTS {
			stats.MaxTS = v.wts
		}
	}

	if ckpt, ok := latestCheckpoint(dir); ok {
		n, err := readCheckpoint(ckpt, apply)
		if err != nil {
			return stats, fmt.Errorf("checkpoint %s: %w", ckpt, err)
		}
		stats.CheckpointRecords = n
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return stats, err
	}
	var logs []string
	for _, ent := range entries {
		if strings.HasPrefix(ent.Name(), "redo-") && strings.HasSuffix(ent.Name(), ".log") {
			logs = append(logs, filepath.Join(dir, ent.Name()))
		}
	}
	sort.Strings(logs)
	for _, path := range logs {
		n, err := readRedo(path, apply)
		if err != nil {
			return stats, fmt.Errorf("redo %s: %w", path, err)
		}
		stats.RedoRecords += n
	}

	// Install in parallel, partitioned by record so no two goroutines touch
	// the same head (§3.7 parallel replay).
	keys := make([]replayKey, 0, len(state))
	for k := range state {
		keys = append(keys, k)
	}
	nShards := runtime.GOMAXPROCS(0) * 2
	if nShards < 2 {
		nShards = 2
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for s := 0; s < nShards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			installed, deleted := 0, 0
			for i := s; i < len(keys); i += nShards {
				k := keys[i]
				v := state[k]
				tbl := eng.TableByID(k.table)
				if v.deleted {
					tbl.RecoverReserve(k.rid)
					deleted++
					continue
				}
				tbl.RecoverInstall(k.rid, v.wts, v.data)
				installed++
			}
			mu.Lock()
			stats.Installed += installed
			stats.Deleted += deleted
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	eng.RecoverFinish(stats.MaxTS)
	return stats, nil
}

// readCheckpoint streams checkpoint records into apply, stopping cleanly at
// a truncated or corrupt tail.
func readCheckpoint(path string, apply func(replayKey, replayVal)) (int, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(buf) < 16 || binary.LittleEndian.Uint32(buf) != ckptMagic {
		return 0, errors.New("bad checkpoint header")
	}
	o := 16
	n := 0
	for o+24 <= len(buf) {
		table := core.TableID(binary.LittleEndian.Uint32(buf[o:]))
		rid := storage.RecordID(binary.LittleEndian.Uint64(buf[o+4:]))
		wts := clock.Timestamp(binary.LittleEndian.Uint64(buf[o+12:]))
		dlen := int(binary.LittleEndian.Uint32(buf[o+20:]))
		end := o + 24 + dlen + 4
		if end > len(buf) {
			break
		}
		crc := binary.LittleEndian.Uint32(buf[end-4:])
		if crc32.ChecksumIEEE(buf[o:end-4]) != crc {
			break
		}
		data := make([]byte, dlen)
		copy(data, buf[o+24:o+24+dlen])
		apply(replayKey{table: table, rid: rid}, replayVal{wts: wts, data: data})
		n++
		o = end
	}
	return n, nil
}

// readRedo streams redo records into apply, stopping cleanly at a truncated
// or corrupt tail (a crash mid-write).
func readRedo(path string, apply func(replayKey, replayVal)) (int, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	o := 0
	n := 0
	for o+20 <= len(buf) {
		if binary.LittleEndian.Uint32(buf[o:]) != redoMagic {
			break
		}
		ts := clock.Timestamp(binary.LittleEndian.Uint64(buf[o+4:]))
		nEntries := int(binary.LittleEndian.Uint32(buf[o+16:]))
		p := o + 20
		type pending struct {
			k replayKey
			v replayVal
		}
		pendings := make([]pending, 0, nEntries)
		ok := true
		for e := 0; e < nEntries; e++ {
			if p+17 > len(buf) {
				ok = false
				break
			}
			table := core.TableID(binary.LittleEndian.Uint32(buf[p:]))
			rid := storage.RecordID(binary.LittleEndian.Uint64(buf[p+4:]))
			deleted := buf[p+12] == 1
			dlen := int(binary.LittleEndian.Uint32(buf[p+13:]))
			p += 17
			if p+dlen > len(buf) {
				ok = false
				break
			}
			data := make([]byte, dlen)
			copy(data, buf[p:p+dlen])
			p += dlen
			pendings = append(pendings, pending{
				k: replayKey{table: table, rid: rid},
				v: replayVal{wts: ts, data: data, deleted: deleted},
			})
		}
		if !ok || p+4 > len(buf) {
			break
		}
		crc := binary.LittleEndian.Uint32(buf[p:])
		if crc32.ChecksumIEEE(buf[o+4:p]) != crc {
			break
		}
		for _, pd := range pendings {
			apply(pd.k, pd.v)
		}
		n++
		o = p + 4
	}
	return n, nil
}
