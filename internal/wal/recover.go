package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"cicada/internal/buf"
	"cicada/internal/clock"
	"cicada/internal/core"
	"cicada/internal/fault"
	"cicada/internal/storage"
	"cicada/internal/telemetry"
)

// replayPool recycles the whole-file read buffers of recovery across files
// (and across torture iterations): one pooled chunk per file, no per-record
// allocation — replay values alias the chunk until installation copies them
// into the store (core.Table.RecoverInstall).
var replayPool = buf.NewPool(256<<10, 4)

// readFileChunk reads an entire file into one pooled chunk (oversize files
// get a dedicated chunk via GetSized). The caller must Release it.
func readFileChunk(path string) (*buf.Chunk, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	c := replayPool.GetSized(int(fi.Size()))
	n, err := io.ReadFull(f, c.Buf()[:fi.Size()])
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		c.Release()
		return nil, err
	}
	c.SetLen(n)
	return c, nil
}

// RecoverStats summarizes a recovery run.
type RecoverStats struct {
	// CheckpointRecords is the number of records loaded from the checkpoint.
	CheckpointRecords int
	// CheckpointsLoaded is 1 if a checkpoint was found and loaded, else 0.
	CheckpointsLoaded int
	// RedoRecords is the number of redo log records replayed.
	RedoRecords int
	// Installed is the number of record versions installed.
	Installed int
	// Deleted is the number of records whose newest entry was a delete.
	Deleted int
	// TornTails is the number of files whose final bytes were dropped as
	// corrupt or truncated (a crash mid-write). Recovery still succeeds;
	// the details are in TailFaults.
	TornTails int
	// TornBytes is the total number of dropped tail bytes.
	TornBytes int64
	// TailFaults holds one *TornTailError per dropped tail; every entry
	// matches ErrTornTail via errors.Is, and its Cause explains the
	// framing violation (ErrChecksum, ErrCorruptLength, truncation).
	TailFaults []error
	// MaxTS is the newest write timestamp observed.
	MaxTS clock.Timestamp
}

type replayKey struct {
	table core.TableID
	rid   storage.RecordID
}

type replayVal struct {
	wts     clock.Timestamp
	data    []byte
	deleted bool
}

// Recover replays the newest checkpoint plus all redo logs in dir into eng,
// which must be freshly created with the same table schema (CreateTable
// calls in the same order) and must not be running transactions. Each
// record keeps only its newest version; a record whose newest entry is a
// delete is not recreated, preserving deletion durability (§3.7). When a
// checkpoint is loaded, redo entries older than its snapshot timestamp are
// ignored: the checkpoint completely describes state below that horizon —
// value or absence — which is what lets checkpointing purge old chunks
// without resurrecting records they deleted. Replay is partitioned across
// goroutines by record. Afterward the engine's clocks are initialized past
// every replayed timestamp (and past the checkpoint snapshot).
//
// A corrupt or truncated tail in any file is dropped and reported in the
// returned stats, never replayed past (see ErrTornTail); an unreadable
// file or a checkpoint with a foreign header is an error. If the engine
// was built with a telemetry registry (core.Options.Metrics), recovery
// registers its counters there: wal_recovery_redo_records_total,
// wal_recovery_checkpoint_records_total, wal_recovery_installed_total,
// wal_recovery_deleted_total, wal_recovery_torn_tails_total, and
// wal_recovery_checkpoints_loaded_total. Recovery runs once per engine, so
// the counters register once per registry.
func Recover(eng *core.Engine, dir string) (RecoverStats, error) {
	var stats RecoverStats
	state := make(map[replayKey]replayVal, 1<<16)

	apply := func(k replayKey, v replayVal) {
		if cur, ok := state[k]; ok && cur.wts >= v.wts {
			return
		}
		state[k] = v
		if v.wts > stats.MaxTS {
			stats.MaxTS = v.wts
		}
	}
	tail := func(torn *TornTailError) {
		if torn == nil {
			return
		}
		stats.TornTails++
		stats.TornBytes += torn.Dropped
		stats.TailFaults = append(stats.TailFaults, torn)
	}

	// Replay values alias the pooled file chunks until the install pass
	// below copies them into the store, so the chunks are held across
	// parsing and released only after installation.
	var fileChunks []*buf.Chunk
	defer func() {
		for _, c := range fileChunks {
			c.Release()
		}
	}()

	var ckptSnap clock.Timestamp
	haveCkpt := false
	if ckpt, ok := latestCheckpoint(dir); ok {
		snapTS, n, torn, c, err := readCheckpoint(ckpt, apply)
		if c != nil {
			fileChunks = append(fileChunks, c)
		}
		if err != nil {
			return stats, fmt.Errorf("checkpoint %s: %w", ckpt, err)
		}
		stats.CheckpointRecords = n
		stats.CheckpointsLoaded = 1
		haveCkpt, ckptSnap = true, snapTS
		if snapTS > stats.MaxTS {
			stats.MaxTS = snapTS
		}
		tail(torn)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return stats, err
	}
	var logs []string
	for _, ent := range entries {
		if strings.HasPrefix(ent.Name(), "redo-") && strings.HasSuffix(ent.Name(), ".log") {
			logs = append(logs, filepath.Join(dir, ent.Name()))
		}
	}
	sort.Strings(logs)
	// Below the checkpoint snapshot the checkpoint is authoritative,
	// absences included: an entry older than snapTS whose record is not in
	// the checkpoint was deleted before the snapshot, and replaying it
	// would resurrect the record (its delete may live in a purged chunk).
	applyRedo := apply
	if haveCkpt {
		applyRedo = func(k replayKey, v replayVal) {
			if v.wts < ckptSnap {
				return
			}
			apply(k, v)
		}
	}
	for _, path := range logs {
		n, torn, c, err := readRedo(path, applyRedo)
		if c != nil {
			fileChunks = append(fileChunks, c)
		}
		if err != nil {
			return stats, fmt.Errorf("redo %s: %w", path, err)
		}
		stats.RedoRecords += n
		tail(torn)
	}

	// Install in parallel, partitioned by record so no two goroutines touch
	// the same head (§3.7 parallel replay).
	keys := make([]replayKey, 0, len(state))
	for k := range state {
		keys = append(keys, k)
	}
	nShards := runtime.GOMAXPROCS(0) * 2
	if nShards < 2 {
		nShards = 2
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for s := 0; s < nShards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			installed, deleted := 0, 0
			for i := s; i < len(keys); i += nShards {
				k := keys[i]
				v := state[k]
				tbl := eng.TableByID(k.table)
				if v.deleted {
					tbl.RecoverReserve(k.rid)
					deleted++
					continue
				}
				tbl.RecoverInstall(k.rid, v.wts, v.data)
				installed++
			}
			mu.Lock()
			stats.Installed += installed
			stats.Deleted += deleted
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	eng.RecoverFinish(stats.MaxTS)
	if reg := eng.Options().Metrics; reg != nil {
		registerRecoveryMetrics(reg, &stats)
	}
	return stats, nil
}

// registerRecoveryMetrics publishes a completed recovery's stats as
// counters (cold path; shard 0 carries the whole value).
func registerRecoveryMetrics(reg *telemetry.Registry, stats *RecoverStats) {
	set := func(family, help string, v uint64) {
		reg.Counter(family, help).Shard(0).Add(v)
	}
	set("wal_recovery_redo_records_total", "Redo log records replayed by recovery.", uint64(stats.RedoRecords))
	set("wal_recovery_checkpoint_records_total", "Records loaded from the checkpoint during recovery.", uint64(stats.CheckpointRecords))
	set("wal_recovery_installed_total", "Record versions installed by recovery.", uint64(stats.Installed))
	set("wal_recovery_deleted_total", "Records whose newest replayed entry was a delete.", uint64(stats.Deleted))
	set("wal_recovery_torn_tails_total", "Corrupt or truncated log tails dropped by recovery (ErrTornTail).", uint64(stats.TornTails))
	set("wal_recovery_checkpoints_loaded_total", "Checkpoints loaded by recovery (0 or 1 per run).", uint64(stats.CheckpointsLoaded))
}

// tornTail builds the dropped-tail report for a file cut at offset o.
func tornTail(path string, o, size int, cause error) *TornTailError {
	return &TornTailError{Path: path, Offset: int64(o), Dropped: int64(size - o), Cause: cause}
}

// readCheckpoint streams checkpoint records into apply. A corrupt or
// truncated record ends the stream: the remaining bytes are dropped and
// reported as a torn tail (a checkpoint being written when the process
// died is ignored anyway — only a renamed .ckpt is ever read — so a torn
// record here means media damage; the redo logs re-cover the data). A file
// whose header is not a checkpoint header returns ErrBadCheckpoint. The
// first return is the snapshot timestamp from the header. Applied values
// alias the returned pooled chunk, which the caller must hold until the
// values are installed (or copied) and then Release.
func readCheckpoint(path string, apply func(replayKey, replayVal)) (clock.Timestamp, int, *TornTailError, *buf.Chunk, error) {
	if err := fault.Inject(fault.ReplayRead); err != nil {
		return 0, 0, nil, nil, err
	}
	c, err := readFileChunk(path)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	buf := c.Bytes()
	if len(buf) < 16 || binary.LittleEndian.Uint32(buf) != ckptMagic {
		return 0, 0, nil, c, ErrBadCheckpoint
	}
	snapTS := clock.Timestamp(binary.LittleEndian.Uint64(buf[4:]))
	o := 16
	n := 0
	for o < len(buf) {
		// Record: table(4) rid(8) wts(8) dlen(4) data(dlen) crc32c(4).
		if len(buf)-o < 28 {
			return snapTS, n, tornTail(path, o, len(buf), fmt.Errorf("truncated record header (%d bytes)", len(buf)-o)), c, nil
		}
		table := core.TableID(binary.LittleEndian.Uint32(buf[o:]))
		rid := storage.RecordID(binary.LittleEndian.Uint64(buf[o+4:]))
		wts := clock.Timestamp(binary.LittleEndian.Uint64(buf[o+12:]))
		dlen := binary.LittleEndian.Uint32(buf[o+20:])
		// Bounds-check the length prefix before using it for anything —
		// a corrupt dlen must not size an allocation or an offset jump.
		if uint64(dlen) > maxRecordLen {
			return snapTS, n, tornTail(path, o, len(buf), ErrCorruptLength), c, nil
		}
		end := o + 24 + int(dlen) + 4
		if end > len(buf) {
			return snapTS, n, tornTail(path, o, len(buf), fmt.Errorf("record extends past end of file: %w", ErrCorruptLength)), c, nil
		}
		crc := binary.LittleEndian.Uint32(buf[end-4:])
		if crc32.Checksum(buf[o:end-4], castagnoli) != crc {
			return snapTS, n, tornTail(path, o, len(buf), ErrChecksum), c, nil
		}
		// The value aliases the pooled chunk — no per-record allocation;
		// installation copies it into the store.
		apply(replayKey{table: table, rid: rid}, replayVal{wts: wts, data: buf[o+24 : end-4]})
		n++
		o = end
	}
	return snapTS, n, nil, c, nil
}

// readRedo streams redo records into apply. Frames are validated
// outside-in: magic, then the record length prefix (bounds-checked before
// it sizes anything), then the CRC32C over the whole frame, and only then
// are entries parsed. The first bad frame ends the stream — everything
// after it is dropped and reported as a torn tail, because a record
// boundary cannot be trusted past a corrupt length or checksum. Applied
// values alias the returned pooled chunk, which the caller must hold until
// the values are installed (or copied) and then Release.
func readRedo(path string, apply func(replayKey, replayVal)) (int, *TornTailError, *buf.Chunk, error) {
	if err := fault.Inject(fault.ReplayRead); err != nil {
		return 0, nil, nil, err
	}
	c, err := readFileChunk(path)
	if err != nil {
		return 0, nil, nil, err
	}
	buf := c.Bytes()
	o := 0
	n := 0
	for o < len(buf) {
		rest := len(buf) - o
		if rest < redoMinLen {
			return n, tornTail(path, o, len(buf), fmt.Errorf("truncated record header (%d bytes)", rest)), c, nil
		}
		if binary.LittleEndian.Uint32(buf[o:]) != redoMagic {
			return n, tornTail(path, o, len(buf), fmt.Errorf("bad record magic %#x", binary.LittleEndian.Uint32(buf[o:]))), c, nil
		}
		recLen := binary.LittleEndian.Uint32(buf[o+4:])
		if recLen < redoMinLen || uint64(recLen) > maxRecordLen {
			return n, tornTail(path, o, len(buf), ErrCorruptLength), c, nil
		}
		if int(recLen) > rest {
			return n, tornTail(path, o, len(buf), fmt.Errorf("record extends past end of file: %w", ErrCorruptLength)), c, nil
		}
		rec := buf[o : o+int(recLen)]
		crc := binary.LittleEndian.Uint32(rec[len(rec)-4:])
		if crc32.Checksum(rec[:len(rec)-4], castagnoli) != crc {
			return n, tornTail(path, o, len(buf), ErrChecksum), c, nil
		}
		ts := clock.Timestamp(binary.LittleEndian.Uint64(rec[8:]))
		nEntries := binary.LittleEndian.Uint32(rec[20:])
		// Entry count must fit in the frame; checked before the slice
		// below is sized from it (the CRC already vouches for the frame,
		// but a length is never trusted without its own bound).
		if uint64(nEntries) > uint64(len(rec)-redoMinLen)/redoEntryLen {
			return n, tornTail(path, o, len(buf), ErrCorruptLength), c, nil
		}
		p := redoHdrLen
		body := rec[:len(rec)-4]
		ok := true
		for e := uint32(0); e < nEntries && ok; e++ {
			if p+redoEntryLen > len(body) {
				ok = false
				break
			}
			table := core.TableID(binary.LittleEndian.Uint32(body[p:]))
			rid := storage.RecordID(binary.LittleEndian.Uint64(body[p+4:]))
			deleted := body[p+12] == 1
			dlen := binary.LittleEndian.Uint32(body[p+13:])
			p += redoEntryLen
			if uint64(dlen) > uint64(len(body)-p) {
				ok = false
				break
			}
			// The value aliases the pooled chunk — no per-record
			// allocation; installation copies it into the store.
			data := body[p : p+int(dlen)]
			p += int(dlen)
			apply(replayKey{table: table, rid: rid},
				replayVal{wts: ts, data: data, deleted: deleted})
		}
		if !ok {
			return n, tornTail(path, o, len(buf), ErrCorruptLength), c, nil
		}
		n++
		o += int(recLen)
	}
	return n, nil, c, nil
}
