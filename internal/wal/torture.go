package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cicada/internal/core"
	"cicada/internal/fault"
	"cicada/internal/storage"
)

// poisonBase marks values written by transactions that deliberately abort.
// A recovered record carrying a poison value is a resurrected abort — the
// write phase leaked into the log, or replay installed an uncommitted
// version.
const poisonBase = uint64(1) << 62

// errCrashStop is the user-abort a torture worker returns once the fault
// registry has crashed, breaking out of Worker.Run's ErrAborted retry loop
// (post-crash, every logger hand-off fails and would otherwise retry
// forever).
var errCrashStop = errors.New("wal torture: registry crashed, stop worker")

// errPoisonAbort is the user-abort of a poison transaction.
var errPoisonAbort = errors.New("wal torture: deliberate abort")

// TortureConfig configures one randomized crash-recovery run.
type TortureConfig struct {
	// Seed drives everything random in the run: the crash site and
	// schedule, torn-write cut points, and each worker's operation mix.
	// The same seed replays the same torture.
	Seed int64
	// Dir is the WAL directory (typically a fresh temp dir).
	Dir string
	// Workers is the number of committing workers. Default 4.
	Workers int
	// Records is the number of records contended over. Default 32.
	Records int
	// Ops is the per-worker operation budget. Default 400.
	Ops int
	// CrashAfterMax bounds the random crash schedule: the armed trigger
	// fires after [0, CrashAfterMax) passes through its site. Default 50.
	CrashAfterMax int
	// Checkpoint also runs a background checkpointer, exposing the
	// checkpoint write/sync/rename/purge failpoints to the crash draw.
	Checkpoint bool
}

func (c *TortureConfig) setDefaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Records <= 0 {
		c.Records = 32
	}
	if c.Ops <= 0 {
		c.Ops = 400
	}
	if c.CrashAfterMax <= 0 {
		c.CrashAfterMax = 50
	}
}

// TortureReport is the outcome of one RunTorture call.
type TortureReport struct {
	// Trigger is the armed crash, e.g. "wal/gather-write:torn-write@17".
	Trigger string
	// Crashed reports whether the trigger actually fired (a trigger
	// scheduled past the run's activity never fires; the run then ends
	// as a clean shutdown, which is verified all the same).
	Crashed bool
	// CrashSite is the site that crashed, if any.
	CrashSite string
	// Commits and PoisonAborts count acknowledged commits and deliberate
	// aborts issued before the crash.
	Commits      int
	PoisonAborts int
	// Recovery is the stats of the post-crash recovery.
	Recovery RecoverStats
	// Violations lists every durability-contract violation found; empty
	// means the run passed.
	Violations []string
}

// RunTorture executes one seeded crash-recovery torture: workers hammer a
// shared table with read-modify-write increments (plus deliberate aborts
// that write poison values), a random failpoint crashes the WAL mid-run,
// and recovery into a fresh engine is checked against three oracles kept
// per record:
//
//	durable[i]   — highest value acknowledged before a successful Flush
//	               (a durability barrier): a floor; losing it is a lost ack.
//	attempted[i] — highest value any commit attempt handed to the logger:
//	               a ceiling; recovering above it is a fabricated write.
//	poison       — values written only by aborted transactions: recovering
//	               one is a resurrected abort.
//
// The recovered value may exceed the highest *acknowledged* value — group
// commit means a transaction can be logged and die before its ack — and
// may exceed durable[i] because an in-process "crash" (registry freeze)
// does not discard the OS page cache. The invariant is
// durable[i] ≤ recovered[i] ≤ attempted[i], never poisoned.
func RunTorture(cfg TortureConfig) (TortureReport, error) {
	cfg.setDefaults()
	var rep TortureReport

	eng := core.NewEngine(core.DefaultOptions(cfg.Workers))
	tbl := eng.CreateTable("torture")
	m, err := Attach(eng, Options{
		Dir:         cfg.Dir,
		GroupCommit: 200 * time.Microsecond,
		ChunkSize:   8 << 10,
		// Tiny staging chunks so seals, multi-chunk gathered writes, and
		// mid-batch rotations all happen constantly under torture.
		BufChunk: 1 << 10,
	})
	if err != nil {
		return rep, err
	}

	// Seed phase (no faults): every record starts at value 1, flushed, so
	// the durable floor is meaningful from the first operation.
	rids := make([]storage.RecordID, cfg.Records)
	w0 := eng.Worker(0)
	for i := range rids {
		i := i
		if err := w0.Run(func(tx *core.Txn) error {
			rid, buf, err := tx.Insert(tbl, 8)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, 1)
			rids[i] = rid
			return nil
		}); err != nil {
			return rep, fmt.Errorf("seed: %w", err)
		}
	}
	if err := m.Flush(); err != nil {
		return rep, fmt.Errorf("seed flush: %w", err)
	}

	acked := make([]atomic.Uint64, cfg.Records)
	attempted := make([]atomic.Uint64, cfg.Records)
	durable := make([]uint64, cfg.Records)
	for i := range durable {
		acked[i].Store(1)
		attempted[i].Store(1)
		durable[i] = 1
	}

	reg := fault.NewRegistry(cfg.Seed)
	sites := []fault.Site{fault.WALChunkSeal, fault.WALGatherWrite, fault.WALBatchFsync, fault.WALRotate, fault.CoreLog}
	if cfg.Checkpoint {
		sites = append(sites, fault.CheckpointWrite, fault.CheckpointSync, fault.CheckpointRename)
	}
	trig := reg.ArmRandomCrashAt(sites, cfg.CrashAfterMax)
	rep.Trigger = trig.String()
	fault.Enable(reg)
	defer fault.Disable()

	// Flusher: snapshot acked *before* the barrier; only a successful
	// Flush promotes the snapshot to the durable floor.
	var durableMu sync.Mutex
	stopFlush := make(chan struct{})
	var bg sync.WaitGroup
	bg.Add(1)
	go func() {
		defer bg.Done()
		snap := make([]uint64, cfg.Records)
		for {
			select {
			case <-stopFlush:
				return
			case <-reg.CrashSignal():
				return
			case <-time.After(300 * time.Microsecond):
			}
			for i := range snap {
				snap[i] = acked[i].Load()
			}
			if m.Flush() != nil {
				continue
			}
			durableMu.Lock()
			for i, v := range snap {
				if v > durable[i] {
					durable[i] = v
				}
			}
			durableMu.Unlock()
		}
	}()
	if cfg.Checkpoint {
		bg.Add(1)
		go func() {
			defer bg.Done()
			for {
				select {
				case <-stopFlush:
					return
				case <-reg.CrashSignal():
					return
				case <-time.After(2 * time.Millisecond):
				}
				_ = m.Checkpoint() // post-crash errors are the point
			}
		}()
	}

	var commits, poisons atomic.Int64
	var wg sync.WaitGroup
	for id := 0; id < cfg.Workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed ^ int64(id)<<32))
			w := eng.Worker(id)
			for op := 0; op < cfg.Ops; op++ {
				if reg.Crashed() {
					return
				}
				idx := rng.Intn(len(rids))
				poison := rng.Intn(8) == 0
				var wrote uint64
				err := w.Run(func(tx *core.Txn) error {
					if reg.Crashed() {
						return errCrashStop
					}
					buf, err := tx.Update(tbl, rids[idx], -1)
					if err != nil {
						return err
					}
					v := binary.LittleEndian.Uint64(buf)
					if poison {
						binary.LittleEndian.PutUint64(buf, poisonBase|v)
						return errPoisonAbort
					}
					wrote = v + 1
					// Ceiling first: the logger may persist this value
					// even if the ack never happens.
					for {
						cur := attempted[idx].Load()
						if wrote <= cur || attempted[idx].CompareAndSwap(cur, wrote) {
							break
						}
					}
					binary.LittleEndian.PutUint64(buf, wrote)
					return nil
				})
				switch {
				case err == nil:
					commits.Add(1)
					for {
						cur := acked[idx].Load()
						if wrote <= cur || acked[idx].CompareAndSwap(cur, wrote) {
							break
						}
					}
				case errors.Is(err, errPoisonAbort):
					poisons.Add(1)
				case errors.Is(err, errCrashStop):
					return
				default:
					// Post-crash logger failure surfaced as a user abort.
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(stopFlush)
	bg.Wait()
	_ = m.Close() // fails after a crash; the frozen files are the test input

	rep.Crashed = reg.Crashed()
	rep.CrashSite = string(reg.CrashSite())
	rep.Commits = int(commits.Load())
	rep.PoisonAborts = int(poisons.Load())
	fault.Disable()

	// Recovery into a fresh engine with the same schema.
	eng2 := core.NewEngine(core.DefaultOptions(cfg.Workers))
	tbl2 := eng2.CreateTable("torture")
	stats, err := Recover(eng2, cfg.Dir)
	if err != nil {
		return rep, fmt.Errorf("recover (trigger %s): %w", rep.Trigger, err)
	}
	rep.Recovery = stats

	violate := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}
	if err := eng2.Worker(0).Run(func(tx *core.Txn) error {
		for i, rid := range rids {
			d, err := tx.Read(tbl2, rid)
			if errors.Is(err, core.ErrNotFound) {
				violate("record %d lost entirely (durable floor %d)", i, durable[i])
				continue
			}
			if err != nil {
				return err
			}
			v := binary.LittleEndian.Uint64(d)
			if v >= poisonBase {
				violate("record %d resurrected an aborted write %#x", i, v)
				continue
			}
			if v < durable[i] {
				violate("record %d lost acked value: recovered %d < durable %d", i, v, durable[i])
			}
			if max := attempted[i].Load(); v > max {
				violate("record %d fabricated value: recovered %d > attempted %d", i, v, max)
			}
		}
		return nil
	}); err != nil {
		return rep, fmt.Errorf("verify read: %w", err)
	}
	return rep, nil
}
