package wal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cicada/internal/core"
)

// TestAttachFailsOnUnwritableDir: Attach surfaces filesystem errors.
func TestAttachFailsOnUnwritableDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o700)
	e := newEngine(1)
	e.CreateTable("t")
	if _, err := Attach(e, Options{Dir: filepath.Join(dir, "sub")}); err == nil {
		t.Fatal("Attach on unwritable dir succeeded")
	}
}

// TestLoggerFailureAbortsTransactions: once the logger hits an I/O error,
// commits abort instead of losing durability silently.
func TestLoggerFailureAbortsTransactions(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(1)
	tbl := e.CreateTable("t")
	m, err := Attach(e, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w := e.Worker(0)
	if err := w.Run(func(tx *core.Txn) error {
		_, buf, err := tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Inject a write failure by closing the logger's file underneath it.
	lg := m.loggers[0]
	lg.fmu.Lock()
	lg.f.Close()
	lg.fmu.Unlock()

	// Acks are batched: this commit stages its frame in memory and
	// succeeds, but the durability barrier behind it must fail and poison
	// the stream.
	if err := w.Run(func(tx *core.Txn) error {
		_, buf, err := tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf, 2)
		return nil
	}); err != nil && !errors.Is(err, core.ErrAborted) {
		t.Fatalf("staged commit after file close: %v", err)
	}
	if err := m.Flush(); err == nil {
		t.Fatal("Flush over a closed file succeeded")
	}

	tx := w.Begin()
	_, buf, err := tx.Insert(tbl, 8)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(buf, 3)
	if err := tx.Commit(); !errors.Is(err, core.ErrAborted) {
		t.Fatalf("commit with broken logger: %v", err)
	}
	m.stopLoggers()
}

// TestRecoverEmptyDir: recovering from an empty directory yields an empty,
// usable database.
func TestRecoverEmptyDir(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(1)
	tbl := e.CreateTable("t")
	stats, err := Recover(e, dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Installed != 0 || stats.RedoRecords != 0 {
		t.Fatalf("stats %+v", stats)
	}
	if err := e.Worker(0).Run(func(tx *core.Txn) error {
		_, buf, err := tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf, 5)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverIgnoresCorruptCheckpoint: a checkpoint with a corrupted record
// stops cleanly at the corruption; the redo logs still recover the data.
func TestRecoverIgnoresCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(1)
	tbl := e.CreateTable("t")
	m, err := Attach(e, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w := e.Worker(0)
	for i := 0; i < 10; i++ {
		if err := w.Run(func(tx *core.Txn) error {
			_, buf, err := tx.Insert(tbl, 8)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, uint64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Fabricate a corrupt checkpoint that sorts as the newest.
	bad := filepath.Join(dir, "checkpoint-000000099.ckpt")
	hdr := make([]byte, 16+40)
	binary.LittleEndian.PutUint32(hdr, ckptMagic)
	for i := 16; i < len(hdr); i++ {
		hdr[i] = 0xAB // garbage record
	}
	if err := os.WriteFile(bad, hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	e2 := newEngine(1)
	tbl2 := e2.CreateTable("t")
	stats, err := Recover(e2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RedoRecords != 10 {
		t.Fatalf("replayed %d", stats.RedoRecords)
	}
	if got := tableState(t, e2, tbl2); len(got) != 10 {
		t.Fatalf("recovered %d records", len(got))
	}
}

// TestRecoverRejectsNonCheckpointFile: a file with a wrong magic errors out
// rather than silently recovering nothing.
func TestRecoverRejectsNonCheckpointFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "checkpoint-000000001.ckpt"),
		[]byte("not a checkpoint at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := newEngine(1)
	e.CreateTable("t")
	if _, err := Recover(e, dir); err == nil {
		t.Fatal("bad checkpoint accepted")
	}
}
