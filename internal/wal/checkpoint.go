package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cicada/internal/clock"
	"cicada/internal/fault"
	"cicada/internal/storage"
)

// StartCheckpointer runs Checkpoint every interval in a background
// goroutine (the paper's checkpointer threads, §3.7) until the returned
// stop function is called. Checkpoint errors are delivered to onErr (which
// may be nil).
func (m *Manager) StartCheckpointer(interval time.Duration, onErr func(error)) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if err := m.Checkpoint(); err != nil && onErr != nil {
					onErr(err)
				}
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Checkpoint writes a transaction-consistent snapshot of every table: the
// latest committed version of each record as of a safe snapshot timestamp
// (§3.7). It runs concurrently with transactions — snapshot reads take no
// locks — and on success purges sealed redo chunks and older checkpoints
// whose contents the new checkpoint covers.
//
// Installation is atomic: the snapshot streams into a .tmp file (never read
// by recovery), is fsynced, renamed to .ckpt, and the directory is fsynced.
// A crash at any point leaves either the previous checkpoint set or the new
// one — never a half-written file recovery would prefer.
func (m *Manager) Checkpoint() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	// The snapshot is taken at min_rts: every version below it is decided
	// (pending versions carry wts ≥ min_rts), so the checkpoint completely
	// describes state below snapTS — value or absence. snapTS is therefore
	// also the purge horizon: a sealed chunk whose newest entry is older is
	// fully covered, and recovery ignores redo entries below a loaded
	// checkpoint's snapTS (absence in the checkpoint means deleted, which
	// is what keeps purging from resurrecting deleted records).
	snapTS := m.eng.Clock().MinRTS()
	tmp := filepath.Join(m.opts.Dir, fmt.Sprintf("checkpoint-%09d.tmp", m.ckptSeq))
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], ckptMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(snapTS))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(m.eng.Tables())))
	if _, err := fault.Write(fault.CheckpointWrite, w, hdr[:]); err != nil {
		f.Close()
		return err
	}
	var rec []byte
	for _, tbl := range m.eng.Tables() {
		capacity := tbl.Storage().Cap()
		for rid := storage.RecordID(0); uint64(rid) < capacity; rid++ {
			data, wts, ok := tbl.SnapshotRecord(rid, snapTS)
			if !ok {
				continue
			}
			need := 4 + 8 + 8 + 4 + len(data) + 4
			if cap(rec) < need {
				rec = make([]byte, need*2)
			}
			rec = rec[:need]
			binary.LittleEndian.PutUint32(rec[0:], uint32(tbl.ID))
			binary.LittleEndian.PutUint64(rec[4:], uint64(rid))
			binary.LittleEndian.PutUint64(rec[12:], uint64(wts))
			binary.LittleEndian.PutUint32(rec[20:], uint32(len(data)))
			copy(rec[24:], data)
			crc := crc32.Checksum(rec[:need-4], castagnoli)
			binary.LittleEndian.PutUint32(rec[need-4:], crc)
			if _, err := fault.Write(fault.CheckpointWrite, w, rec); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := fault.Inject(fault.CheckpointSync); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fault.Inject(fault.CheckpointRename); err != nil {
		return err
	}
	final := filepath.Join(m.opts.Dir, fmt.Sprintf("checkpoint-%09d.ckpt", m.ckptSeq))
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if err := syncDir(m.opts.Dir); err != nil {
		return err
	}
	m.ckptSeq++
	m.purge(snapTS, final)
	return nil
}

// purge removes sealed redo chunks whose newest entry predates the
// checkpoint's snapshot timestamp (they are fully covered by it, absences
// included) and older checkpoints.
func (m *Manager) purge(snapTS clock.Timestamp, keepCkpt string) {
	if err := fault.Inject(fault.CheckpointPurge); err != nil {
		return
	}
	entries, err := os.ReadDir(m.opts.Dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, ".sealed.log"):
			if ts, ok := sealedMaxTS(name); ok && ts < snapTS {
				os.Remove(filepath.Join(m.opts.Dir, name))
			}
		case strings.HasSuffix(name, ".ckpt"):
			if name != filepath.Base(keepCkpt) {
				os.Remove(filepath.Join(m.opts.Dir, name))
			}
		case strings.HasSuffix(name, ".tmp"):
			if filepath.Join(m.opts.Dir, name) != keepCkpt {
				os.Remove(filepath.Join(m.opts.Dir, name))
			}
		}
	}
}

// sealedMaxTS parses the max write timestamp embedded in a sealed chunk
// name: redo-<logger>-<seq>-<maxts>.sealed.log.
func sealedMaxTS(name string) (clock.Timestamp, bool) {
	base := strings.TrimSuffix(name, ".sealed.log")
	i := strings.LastIndexByte(base, '-')
	if i < 0 {
		return 0, false
	}
	v, err := strconv.ParseUint(base[i+1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return clock.Timestamp(v), true
}

// latestCheckpoint returns the newest complete checkpoint file in dir.
func latestCheckpoint(dir string) (string, bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", false
	}
	var names []string
	for _, ent := range entries {
		if strings.HasPrefix(ent.Name(), "checkpoint-") && strings.HasSuffix(ent.Name(), ".ckpt") {
			names = append(names, ent.Name())
		}
	}
	if len(names) == 0 {
		return "", false
	}
	sort.Strings(names)
	return filepath.Join(dir, names[len(names)-1]), true
}
