package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cicada/internal/core"
	"cicada/internal/storage"
)

func newEngine(workers int) *core.Engine {
	return core.NewEngine(core.DefaultOptions(workers))
}

// tableState reads every live record of a table through fresh transactions.
func tableState(t *testing.T, e *core.Engine, tbl *core.Table) map[storage.RecordID][]byte {
	t.Helper()
	out := make(map[storage.RecordID][]byte)
	w := e.Worker(0)
	capacity := tbl.Storage().Cap()
	if err := w.Run(func(tx *core.Txn) error {
		for rid := storage.RecordID(0); uint64(rid) < capacity; rid++ {
			d, err := tx.Read(tbl, rid)
			if errors.Is(err, core.ErrNotFound) {
				continue
			}
			if err != nil {
				return err
			}
			out[rid] = append([]byte(nil), d...)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestLogRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(2)
	tbl := e.CreateTable("t")
	m, err := Attach(e, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w := e.Worker(0)
	var rids []storage.RecordID
	for i := 0; i < 50; i++ {
		if err := w.Run(func(tx *core.Txn) error {
			rid, buf, err := tx.Insert(tbl, 16)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, uint64(i))
			binary.LittleEndian.PutUint64(buf[8:], ^uint64(i))
			rids = append(rids, rid)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Update some, delete some.
	for i := 0; i < 50; i += 5 {
		i := i
		if err := w.Run(func(tx *core.Txn) error {
			buf, err := tx.Update(tbl, rids[i], -1)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, uint64(1000+i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 3; i < 50; i += 10 {
		i := i
		if err := w.Run(func(tx *core.Txn) error { return tx.Delete(tbl, rids[i]) }); err != nil {
			t.Fatal(err)
		}
	}
	before := tableState(t, e, tbl)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash": recover into a fresh engine with the same schema.
	e2 := newEngine(2)
	tbl2 := e2.CreateTable("t")
	stats, err := Recover(e2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RedoRecords == 0 || stats.Installed == 0 {
		t.Fatalf("stats %+v", stats)
	}
	after := tableState(t, e2, tbl2)
	if len(after) != len(before) {
		t.Fatalf("recovered %d records, want %d", len(after), len(before))
	}
	for rid, want := range before {
		if !bytes.Equal(after[rid], want) {
			t.Fatalf("rid %d: got %x want %x", rid, after[rid], want)
		}
	}
	// The recovered engine accepts new transactions with later timestamps.
	if err := e2.Worker(0).Run(func(tx *core.Txn) error {
		_, buf, err := tx.Insert(tbl2, 8)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf, 77)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointPlusTailRecovery(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(1)
	tbl := e.CreateTable("t")
	m, err := Attach(e, Options{Dir: dir, ChunkSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	w := e.Worker(0)
	var rids []storage.RecordID
	for i := 0; i < 30; i++ {
		if err := w.Run(func(tx *core.Txn) error {
			rid, buf, err := tx.Insert(tbl, 8)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, uint64(i))
			rids = append(rids, rid)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Advance the snapshot horizon so the checkpoint sees the inserts.
	for i := 0; i < 50; i++ {
		w.Idle()
		time.Sleep(20 * time.Microsecond)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint tail updates.
	for i := 0; i < 30; i += 3 {
		i := i
		if err := w.Run(func(tx *core.Txn) error {
			buf, err := tx.Update(tbl, rids[i], -1)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, uint64(5000+i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	before := tableState(t, e, tbl)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := newEngine(1)
	tbl2 := e2.CreateTable("t")
	stats, err := Recover(e2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CheckpointRecords == 0 {
		t.Fatalf("checkpoint unused: %+v", stats)
	}
	after := tableState(t, e2, tbl2)
	for rid, want := range before {
		if !bytes.Equal(after[rid], want) {
			t.Fatalf("rid %d: got %x want %x", rid, after[rid], want)
		}
	}
}

func TestTruncatedTailIgnored(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(1)
	tbl := e.CreateTable("t")
	m, err := Attach(e, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w := e.Worker(0)
	for i := 0; i < 10; i++ {
		if err := w.Run(func(tx *core.Txn) error {
			_, buf, err := tx.Insert(tbl, 8)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, uint64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the log tail: append garbage simulating a torn write.
	logs, _ := filepath.Glob(filepath.Join(dir, "redo-*.log"))
	if len(logs) == 0 {
		t.Fatal("no redo logs")
	}
	f, err := os.OpenFile(logs[0], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	magic := make([]byte, 12)
	binary.LittleEndian.PutUint32(magic, redoMagic)
	f.Write(magic) // truncated record
	f.Close()

	e2 := newEngine(1)
	tbl2 := e2.CreateTable("t")
	stats, err := Recover(e2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RedoRecords != 10 {
		t.Fatalf("replayed %d records, want 10", stats.RedoRecords)
	}
	if got := tableState(t, e2, tbl2); len(got) != 10 {
		t.Fatalf("recovered %d records", len(got))
	}
}

func TestConcurrentLoggingUnderLoad(t *testing.T) {
	dir := t.TempDir()
	const workers = 4
	e := newEngine(workers)
	tbl := e.CreateTable("t")
	m, err := Attach(e, Options{Dir: dir, Loggers: 2, ChunkSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	// Seed records.
	w0 := e.Worker(0)
	rids := make([]storage.RecordID, 16)
	for i := range rids {
		i := i
		if err := w0.Run(func(tx *core.Txn) error {
			rid, buf, err := tx.Insert(tbl, 8)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, 0)
			rids[i] = rid
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			w := e.Worker(id)
			for i := 0; i < 200; i++ {
				rid := rids[rng.Intn(len(rids))]
				if err := w.Run(func(tx *core.Txn) error {
					buf, err := tx.Update(tbl, rid, -1)
					if err != nil {
						return err
					}
					v := binary.LittleEndian.Uint64(buf)
					binary.LittleEndian.PutUint64(buf, v+1)
					return nil
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	before := tableState(t, e, tbl)
	var total uint64
	for _, d := range before {
		total += binary.LittleEndian.Uint64(d)
	}
	if total != workers*200 {
		t.Fatalf("pre-crash total %d, want %d", total, workers*200)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := newEngine(workers)
	tbl2 := e2.CreateTable("t")
	if _, err := Recover(e2, dir); err != nil {
		t.Fatal(err)
	}
	after := tableState(t, e2, tbl2)
	var total2 uint64
	for _, d := range after {
		total2 += binary.LittleEndian.Uint64(d)
	}
	if total2 != total {
		t.Fatalf("recovered total %d, want %d", total2, total)
	}
}

func TestPurgeAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(1)
	tbl := e.CreateTable("t")
	m, err := Attach(e, Options{Dir: dir, ChunkSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	w := e.Worker(0)
	for i := 0; i < 100; i++ {
		if err := w.Run(func(tx *core.Txn) error {
			_, buf, err := tx.Insert(tbl, 32)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf, uint64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	sealedBefore, _ := filepath.Glob(filepath.Join(dir, "*.sealed.log"))
	if len(sealedBefore) == 0 {
		t.Fatal("no sealed chunks despite tiny chunk size")
	}
	for i := 0; i < 50; i++ {
		w.Idle()
		time.Sleep(20 * time.Microsecond)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	sealedAfter, _ := filepath.Glob(filepath.Join(dir, "*.sealed.log"))
	if len(sealedAfter) >= len(sealedBefore) {
		t.Fatalf("purge removed nothing: %d → %d", len(sealedBefore), len(sealedAfter))
	}
	// Recovery from checkpoint + remaining logs is still complete.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := newEngine(1)
	tbl2 := e2.CreateTable("t")
	if _, err := Recover(e2, dir); err != nil {
		t.Fatal(err)
	}
	if got := tableState(t, e2, tbl2); len(got) != 100 {
		t.Fatalf("recovered %d records, want 100", len(got))
	}
	_ = fmt.Sprint() // keep fmt import if unused elsewhere
}

// TestEncodeRedoIntoDirtyBuffer pins that encodeRedoInto overwrites every
// byte of its frame. Frames are encoded in place into recycled pool chunks,
// so any byte the encoder only writes conditionally inherits garbage from
// the chunk's previous life — this is exactly how a stale flags byte once
// turned a plain update into a phantom delete that recovery then honored
// as a tombstone.
func TestEncodeRedoIntoDirtyBuffer(t *testing.T) {
	entries := []core.LogEntry{
		{Table: 0, Record: 15, Data: []byte("update-value")},
		{Table: 1, Record: 7, Deleted: true},
		{Table: 2, Record: 99, Data: []byte{0}},
	}
	fresh := encodeRedo(42, 3, entries)
	dirty := make([]byte, len(fresh))
	for i := range dirty {
		dirty[i] = 0xFF
	}
	encodeRedoInto(dirty, 42, 3, entries)
	if !bytes.Equal(fresh, dirty) {
		for i := range fresh {
			if fresh[i] != dirty[i] {
				t.Fatalf("byte %d differs after encoding into a dirty buffer: fresh=%#x dirty=%#x (stale garbage leaked into the frame)", i, fresh[i], dirty[i])
			}
		}
	}
}
