package wal

import (
	"os"
	"strconv"
	"testing"
)

// tortureSeeds returns how many seeds to torture: CICADA_TORTURE_SEEDS if
// set (CI runs 60+), else a quick default, halved further under -short.
func tortureSeeds(t *testing.T) int {
	if s := os.Getenv("CICADA_TORTURE_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad CICADA_TORTURE_SEEDS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return 4
	}
	return 12
}

// TestTortureRecovery runs seeded crash-recovery tortures: workers commit
// under a randomly scheduled crash (torn writes included), then recovery is
// checked against the durability contract — no lost acked-and-flushed
// write, no resurrected abort, no fabricated value (docs/DURABILITY.md).
func TestTortureRecovery(t *testing.T) {
	seeds := tortureSeeds(t)
	crashes := 0
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run("seed="+strconv.Itoa(seed), func(t *testing.T) {
			rep, err := RunTorture(TortureConfig{
				Seed: int64(seed),
				Dir:  t.TempDir(),
				// Checkpointing on for half the seeds widens the crash draw
				// to the checkpoint failpoints.
				Checkpoint: seed%2 == 1,
			})
			if err != nil {
				t.Fatalf("torture: %v", err)
			}
			if rep.Crashed {
				crashes++
			}
			for _, v := range rep.Violations {
				t.Errorf("seed %d (trigger %s, crashed=%v, commits=%d): %s",
					seed, rep.Trigger, rep.Crashed, rep.Commits, v)
			}
		})
	}
	if crashes == 0 {
		t.Errorf("no seed crashed in %d runs; the schedule never fires", seeds)
	}
}

// TestTortureDeterministic: the same seed reproduces the same trigger and
// the same commit/abort trace, so a failing seed is a bug report.
func TestTortureDeterministic(t *testing.T) {
	run := func() TortureReport {
		rep, err := RunTorture(TortureConfig{Seed: 7, Dir: t.TempDir(), Ops: 150})
		if err != nil {
			t.Fatalf("torture: %v", err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Trigger != b.Trigger || a.Crashed != b.Crashed || a.CrashSite != b.CrashSite {
		t.Fatalf("nondeterministic trigger: %+v vs %+v", a, b)
	}
}
