package buf

import (
	"bytes"
	"testing"
)

func TestPoolRecycles(t *testing.T) {
	p := NewPool(128, 4)
	c1 := p.Get()
	if c1.Cap() != 128 || c1.Len() != 0 {
		t.Fatalf("fresh chunk cap=%d len=%d", c1.Cap(), c1.Len())
	}
	copy(c1.Buf(), "hello")
	c1.SetLen(5)
	c1.Release()
	c2 := p.Get()
	if c2 != c1 {
		t.Fatal("released chunk not recycled")
	}
	if c2.Len() != 0 || c2.Next() != nil {
		t.Fatalf("recycled chunk not reset: len=%d next=%v", c2.Len(), c2.Next())
	}
	s := p.Stats()
	if s.Allocs != 1 || s.Reuses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestPoolFreeListBound(t *testing.T) {
	p := NewPool(64, 2)
	chunks := []*Chunk{p.Get(), p.Get(), p.Get(), p.Get()}
	for _, c := range chunks {
		c.Release()
	}
	if p.nfree != 2 {
		t.Fatalf("free list holds %d, want 2", p.nfree)
	}
}

func TestRefCount(t *testing.T) {
	p := NewPool(64, 4)
	c := p.Get()
	c.Ref() // second reference
	c.Release()
	if p.nfree != 0 {
		t.Fatal("chunk recycled while referenced")
	}
	c.Release()
	if p.nfree != 1 {
		t.Fatal("chunk not recycled after last release")
	}
}

func TestGetSizedOversize(t *testing.T) {
	p := NewPool(64, 4)
	c := p.GetSized(1000)
	if c.Cap() < 1000 {
		t.Fatalf("oversize cap %d", c.Cap())
	}
	c.Release()
	// The oversize spare is reused for an equal-or-smaller request.
	c2 := p.GetSized(500)
	if c2 != c {
		t.Fatal("oversize spare not reused")
	}
	c2.Release()
	// A larger request allocates, and the bigger chunk becomes the spare.
	c3 := p.GetSized(2000)
	if c3 == c2 {
		t.Fatal("undersized spare reused for larger request")
	}
	c3.Release()
	if p.big != c3 {
		t.Fatal("largest oversize chunk not kept as spare")
	}
}

func TestWriterFrameContiguity(t *testing.T) {
	p := NewPool(32, 8)
	var w Writer
	w.Init(p)
	// Three 12-byte frames: the third cannot fit in the first chunk's
	// remaining 8 bytes, so it must open a second chunk.
	f1 := w.Frame(12)
	f2 := w.Frame(12)
	if !w.Fits(8) || w.Fits(9) {
		t.Fatalf("Fits miscounts remaining space (chunks=%d)", w.Chunks())
	}
	f3 := w.Frame(12)
	for i := range f1 {
		f1[i], f2[i], f3[i] = 'a', 'b', 'c'
	}
	head, chunks, total := w.Detach()
	if chunks != 2 || total != 36 {
		t.Fatalf("chunks=%d bytes=%d", chunks, total)
	}
	var got []byte
	for c := head; c != nil; c = c.Next() {
		got = append(got, c.Bytes()...)
	}
	want := append(bytes.Repeat([]byte("a"), 12), bytes.Repeat([]byte("b"), 12)...)
	want = append(want, bytes.Repeat([]byte("c"), 12)...)
	if !bytes.Equal(got, want) {
		t.Fatalf("chain bytes %q, want %q", got, want)
	}
	if head.Len() != 24 || head.Next().Len() != 12 {
		t.Fatalf("chunk lens %d,%d", head.Len(), head.Next().Len())
	}
	for c := head; c != nil; {
		nx := c.Next()
		c.Release()
		c = nx
	}
}

func TestWriterOversizeFrame(t *testing.T) {
	p := NewPool(32, 8)
	var w Writer
	w.Init(p)
	w.Frame(10)
	big := w.Frame(100) // larger than the pooled size: dedicated chunk
	if len(big) != 100 {
		t.Fatalf("oversize frame len %d", len(big))
	}
	head, chunks, total := w.Detach()
	if chunks != 2 || total != 110 {
		t.Fatalf("chunks=%d bytes=%d", chunks, total)
	}
	if head.Next().Cap() < 100 {
		t.Fatal("oversize frame not in dedicated chunk")
	}
	for c := head; c != nil; {
		nx := c.Next()
		c.Release()
		c = nx
	}
}

func TestWriterDetachResets(t *testing.T) {
	p := NewPool(64, 8)
	var w Writer
	w.Init(p)
	w.Frame(10)
	head, _, _ := w.Detach()
	if w.Chunks() != 0 || w.Bytes() != 0 {
		t.Fatal("Detach did not reset writer")
	}
	f := w.Frame(10)
	if &f[0] == &head.Buf()[10] {
		t.Fatal("post-detach frame aliases detached chunk")
	}
	head.Release()
	nh, _, _ := w.Detach()
	nh.Release()
}

// TestWriterSteadyStateAllocs: once the pool has warmed up and the
// committer recycles chunks, the Frame/Detach/Release cycle allocates
// nothing.
func TestWriterSteadyStateAllocs(t *testing.T) {
	p := NewPool(1024, 16)
	var w Writer
	w.Init(p)
	cycle := func() {
		for i := 0; i < 20; i++ {
			f := w.Frame(100)
			f[0] = byte(i)
		}
		head, _, _ := w.Detach()
		for c := head; c != nil; {
			nx := c.Next()
			c.Release()
			c = nx
		}
	}
	cycle() // warm the free list
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("steady-state cycle allocates %.2f/op, want 0", avg)
	}
}
