// Package buf provides the mbuf-style chained buffer pool that backs the
// WAL's zero-copy batched write path (docs/DURABILITY.md): fixed-size
// chunks recycled through a free list, chained into per-worker redo
// streams, and handed from workers to the group committer by pointer swap.
//
// The design follows network-stack mbufs: a Chunk is a fixed-capacity byte
// buffer with an intrusive next pointer and a reference count; a Pool
// recycles released chunks through a bounded free list so the steady state
// allocates nothing; a Writer builds a chunk chain, guaranteeing that every
// frame it places is contiguous within one chunk (a frame that does not fit
// in the current tail starts a fresh chunk, and a frame larger than the
// pool's chunk size gets a dedicated oversize chunk). Frame contiguity is
// what lets the WAL rotate files between chunks without ever splitting a
// record across two files, and lets recovery parse frames in place.
//
// Concurrency: a Pool is safe for concurrent Get/Release. A Chunk's
// contents and length are owned by whoever holds the chain (the staging
// writer or the committer that detached it); only the reference count is
// atomic. A Writer is externally synchronized (the WAL guards each
// per-worker writer with that worker's stage mutex).
package buf

import (
	"sync"
	"sync/atomic"
)

// DefaultChunkSize is the pooled chunk capacity when NewPool is given no
// explicit size: large enough that per-chunk overheads (seal, queue
// hand-off, one gathered write) amortize over hundreds of redo records.
const DefaultChunkSize = 64 << 10

// DefaultMaxFree bounds the free list when NewPool is given no explicit
// bound; chunks released beyond it are dropped for the GC to take.
const DefaultMaxFree = 128

// Chunk is one fixed-capacity pooled buffer. Chunks chain through an
// intrusive next pointer (also reused as the free-list link, so recycling
// allocates nothing).
type Chunk struct {
	next *Chunk
	pool *Pool
	refs atomic.Int32
	buf  []byte
	n    int
}

// Next returns the next chunk in the chain, nil at the tail.
func (c *Chunk) Next() *Chunk { return c.next }

// SetNext links n after c.
func (c *Chunk) SetNext(n *Chunk) { c.next = n }

// Bytes returns the used prefix of the chunk's buffer.
//
//cicada:noalloc
func (c *Chunk) Bytes() []byte { return c.buf[:c.n] }

// Buf returns the chunk's full-capacity backing buffer; SetLen records how
// much of it holds data (the read path fills a chunk directly from a file).
func (c *Chunk) Buf() []byte { return c.buf }

// SetLen sets the used length. It panics if n exceeds the capacity.
func (c *Chunk) SetLen(n int) {
	if n < 0 || n > len(c.buf) {
		panic("buf: SetLen out of range")
	}
	c.n = n
}

// Len returns the used length.
func (c *Chunk) Len() int { return c.n }

// Cap returns the chunk's capacity.
func (c *Chunk) Cap() int { return len(c.buf) }

// Ref adds a reference. A chunk leaves the pool with one reference.
func (c *Chunk) Ref() { c.refs.Add(1) }

// Release drops a reference; the last release returns the chunk to its
// pool's free list (or drops it, if the list is full or the chunk is an
// oversize one-off).
//
//cicada:noalloc
func (c *Chunk) Release() {
	if c.refs.Add(-1) > 0 {
		return
	}
	c.pool.put(c)
}

// PoolStats counts pool traffic; Reuses/Allocs is the recycling rate.
type PoolStats struct {
	// Allocs is the number of chunks created because the free list was
	// empty (plus every oversize chunk that could not reuse the spare).
	Allocs uint64
	// Reuses is the number of Gets served from the free list or the
	// oversize spare.
	Reuses uint64
	// Oversize is the number of GetSized calls that exceeded the pooled
	// chunk size.
	Oversize uint64
}

// Pool recycles fixed-size chunks through a bounded intrusive free list.
// The mutex is uncontended in practice: the WAL takes one chunk per
// ChunkSize bytes of log and releases in batches from the committer.
type Pool struct {
	size    int
	maxFree int

	mu    sync.Mutex
	free  *Chunk
	nfree int
	// big is a single spare for oversize chunks (frames larger than the
	// pooled size, whole-file recovery reads); the largest released one is
	// kept so a sequence of similar oversize requests allocates once.
	big   *Chunk
	stats PoolStats
	// live counts chunks handed out and not yet fully released; the
	// network server's tests assert it returns to zero so no code path
	// leaks a chunk reference.
	live int
}

// NewPool creates a pool of chunkSize-byte chunks keeping at most maxFree
// of them on the free list; zero or negative arguments select
// DefaultChunkSize and DefaultMaxFree.
func NewPool(chunkSize, maxFree int) *Pool {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if maxFree <= 0 {
		maxFree = DefaultMaxFree
	}
	return &Pool{size: chunkSize, maxFree: maxFree}
}

// ChunkSize returns the pooled chunk capacity.
func (p *Pool) ChunkSize() int { return p.size }

// Get returns a chunk with one reference, zero length, and no successor,
// recycled from the free list when possible.
//
//cicada:noalloc
func (p *Pool) Get() *Chunk {
	p.mu.Lock()
	p.live++
	c := p.free
	if c != nil {
		p.free = c.next
		p.nfree--
		p.stats.Reuses++
		p.mu.Unlock()
		c.next = nil
		c.refs.Store(1)
		return c
	}
	p.stats.Allocs++
	p.mu.Unlock()
	c = &Chunk{pool: p, buf: make([]byte, p.size)}
	c.refs.Store(1)
	return c
}

// GetSized returns a chunk with capacity ≥ n: a pooled chunk when n fits,
// otherwise a dedicated oversize chunk (reusing the pool's single oversize
// spare when it is large enough).
func (p *Pool) GetSized(n int) *Chunk {
	if n <= p.size {
		return p.Get()
	}
	p.mu.Lock()
	p.live++
	p.stats.Oversize++
	if c := p.big; c != nil && len(c.buf) >= n {
		p.big = nil
		p.stats.Reuses++
		p.mu.Unlock()
		c.next = nil
		c.refs.Store(1)
		return c
	}
	p.stats.Allocs++
	p.mu.Unlock()
	c := &Chunk{pool: p, buf: make([]byte, n)}
	c.refs.Store(1)
	return c
}

// put recycles a fully released chunk.
func (p *Pool) put(c *Chunk) {
	c.n = 0
	c.next = nil
	p.mu.Lock()
	p.live--
	switch {
	case len(c.buf) == p.size:
		if p.nfree < p.maxFree {
			c.next = p.free
			p.free = c
			p.nfree++
		}
	case p.big == nil || len(p.big.buf) < len(c.buf):
		p.big = c
	}
	p.mu.Unlock()
}

// Live returns the number of chunks currently handed out (gotten and not
// yet fully released). Zero once every holder has released its references.
func (p *Pool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Writer builds a chunk chain, placing each frame contiguously within one
// chunk. It is the staging half of the WAL's batched pipeline: workers
// Frame/encode under their stage lock, the committer Detaches the whole
// chain and writes chunk by chunk.
type Writer struct {
	pool   *Pool
	head   *Chunk
	tail   *Chunk
	chunks int
	bytes  int64
}

// Init points the writer at a pool and resets it to an empty chain.
func (w *Writer) Init(pool *Pool) {
	w.pool = pool
	w.head, w.tail = nil, nil
	w.chunks, w.bytes = 0, 0
}

// Fits reports whether a Frame(n) call would extend the current tail chunk
// rather than opening a new one.
//
//cicada:noalloc
func (w *Writer) Fits(n int) bool {
	return w.tail != nil && w.tail.n+n <= len(w.tail.buf)
}

// Frame returns a contiguous n-byte span for the caller to encode into,
// opening a new chunk when the frame does not fit in the tail (an oversize
// chunk when n exceeds the pooled size). The span stays valid until the
// chain is detached and released.
//
//cicada:noalloc
func (w *Writer) Frame(n int) []byte {
	t := w.tail
	if t == nil || t.n+n > len(t.buf) {
		c := w.pool.GetSized(n)
		if t == nil {
			w.head = c
		} else {
			t.next = c
		}
		w.tail = c
		w.chunks++
		t = c
	}
	s := t.buf[t.n : t.n+n : t.n+n]
	t.n += n
	w.bytes += int64(n)
	return s
}

// Chunks returns the number of chunks in the chain.
func (w *Writer) Chunks() int { return w.chunks }

// Bytes returns the total framed bytes in the chain.
func (w *Writer) Bytes() int64 { return w.bytes }

// Detach hands the whole chain (including the partial tail) to the caller
// and resets the writer to empty. The caller owns the returned chunks and
// must Release each one.
//
//cicada:noalloc
func (w *Writer) Detach() (head *Chunk, chunks int, bytes int64) {
	head, chunks, bytes = w.head, w.chunks, w.bytes
	w.head, w.tail = nil, nil
	w.chunks, w.bytes = 0, 0
	return head, chunks, bytes
}
