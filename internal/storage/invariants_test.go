package storage

import (
	"testing"

	"cicada/internal/clock"
)

// TestInvariantAssertionsFire verifies the cicada_invariants hooks actually
// detect violations when compiled in (go test -tags cicada_invariants); in
// the default build it verifies they are free no-ops.
func TestInvariantAssertionsFire(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected invariant panic", name)
			}
		}()
		fn()
	}

	if !InvariantsEnabled {
		// Disabled build: the stubs must tolerate violating inputs silently.
		Assertf(false, "ignored")
		v := NewVersion(0)
		v.PrepareInstall(5)
		n := NewVersion(0)
		n.PrepareInstall(9) // out of order below v
		v.SetNext(n)
		CheckChainSorted(v, "test")
		CheckCommitOrder(v, "test")
		return
	}

	mustPanic("Assertf", func() { Assertf(false, "forced failure %d", 1) })

	mustPanic("CheckChainSorted", func() {
		v := NewVersion(0)
		v.PrepareInstall(5)
		n := NewVersion(0)
		n.PrepareInstall(9) // newer version linked below an older one
		v.SetNext(n)
		CheckChainSorted(v, "test")
	})

	mustPanic("CheckCommitOrder", func() {
		nv := NewVersion(0)
		nv.PrepareInstall(5)
		below := NewVersion(0)
		below.PrepareInstall(3)
		below.SetStatus(StatusCommitted)
		below.SetRTS(clock.Timestamp(8)) // read beyond nv's wts
		nv.SetNext(below)
		CheckCommitOrder(nv, "test")
	})

	// And the checks accept valid states.
	v := NewVersion(0)
	v.PrepareInstall(9)
	n := NewVersion(0)
	n.PrepareInstall(5)
	n.SetStatus(StatusCommitted)
	v.SetNext(n)
	CheckChainSorted(v, "test")
	CheckCommitOrder(v, "test")
}
