package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cicada/internal/clock"
)

// RecordID locates a record within a table: it is the record's index in the
// table's expandable head array. Indexes store RecordIDs as values, never raw
// pointers (§3.6).
type RecordID uint64

// InvalidRecordID is a sentinel for "no record".
const InvalidRecordID = ^RecordID(0)

// pageShift selects the number of record heads per page. With 4096 heads of
// ~320 bytes each a page is ~1.3 MiB, mirroring the paper's 2 MiB pages.
const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Head is the per-record metadata node stored in the table array: the anchor
// of the version list, the embedded inline version, and the separate garbage
// collection structure (gc lock and record.min_wts, §3.8).
type Head struct {
	// latest points to the newest version in the record's version list.
	latest atomic.Pointer[Version]
	// inlined is the preallocated inline version; its Data aliases inlineBuf.
	inlined Version
	// inlineBuf is the inline version's embedded payload buffer.
	inlineBuf [InlineSize]byte
	// gcLock serializes concurrent garbage collection of this record.
	gcLock atomic.Uint32
	// gcMinWTS is record.min_wts: the write timestamp below which the
	// record's versions have been detached. It guards against dangling
	// garbage collection items.
	gcMinWTS atomic.Uint64
	// absentRTS is the maximum timestamp of a (possibly committed)
	// transaction that observed this record as absent (no visible version).
	// Writers installing a version below it must abort, which closes the
	// read-absent / blind-write race for direct record-ID access; index
	// accesses get the same guarantee from index node validation (§3.6).
	absentRTS atomic.Uint64
}

// AbsentRTS returns the record's absence read timestamp.
func (h *Head) AbsentRTS() clock.Timestamp { return clock.Timestamp(h.absentRTS.Load()) }

// RaiseAbsentRTS raises the absence read timestamp to at least ts.
func (h *Head) RaiseAbsentRTS(ts clock.Timestamp) {
	for {
		cur := h.absentRTS.Load()
		if cur >= uint64(ts) || h.absentRTS.CompareAndSwap(cur, uint64(ts)) {
			return
		}
	}
}

// Latest returns the newest version in the record's version list, or nil if
// the record has never been written.
func (h *Head) Latest() *Version { return h.latest.Load() }

// CASLatest atomically swings the list anchor; used for version installation
// at the head position and for unlinking an aborted latest version.
func (h *Head) CASLatest(old, new *Version) bool {
	return h.latest.CompareAndSwap(old, new)
}

// InlineVersion returns the head-embedded inline version slot.
func (h *Head) InlineVersion() *Version { return &h.inlined }

// TryAcquireInline attempts to take ownership of the inline version for a
// new write of size bytes using a CAS on its status (UNUSED → PENDING). On
// success the inline version's Data is sized to size and the caller owns the
// slot (§3.3).
func (h *Head) TryAcquireInline(size int) (*Version, bool) {
	if size > InlineSize {
		return nil, false
	}
	v := &h.inlined
	if !v.CASStatus(StatusUnused, StatusPending) {
		return nil, false
	}
	v.bindInline(h.inlineBuf[:size])
	return v, true
}

// ReleaseInline returns the inline version to the UNUSED state so a future
// write can claim it. The caller must guarantee the slot is unreachable.
func (h *Head) ReleaseInline() {
	h.inlined.clearInline()
}

// ResetForFree clears the head for record-ID reuse: version list anchor,
// record.min_wts, absence timestamp, and the inline slot. The caller
// (garbage collection) must guarantee the record is unreachable.
func (h *Head) ResetForFree() {
	h.latest.Store(nil)
	h.gcMinWTS.Store(0)
	h.absentRTS.Store(0)
	h.ReleaseInline()
}

// TryLockGC attempts to acquire the record's garbage collection lock.
func (h *Head) TryLockGC() bool { return h.gcLock.CompareAndSwap(0, 1) }

// UnlockGC releases the garbage collection lock.
func (h *Head) UnlockGC() { h.gcLock.Store(0) }

// GCMinWTS returns record.min_wts.
func (h *Head) GCMinWTS() clock.Timestamp { return clock.Timestamp(h.gcMinWTS.Load()) }

// SetGCMinWTS stores record.min_wts; called under the gc lock.
func (h *Head) SetGCMinWTS(ts clock.Timestamp) { h.gcMinWTS.Store(uint64(ts)) }

type page struct {
	heads [pageSize]Head
}

// Table is an expandable array of record heads with two-level paging. Record
// IDs are allocated from a bump counter with per-worker caching plus
// per-worker free lists of reclaimed IDs.
type Table struct {
	name string
	// dir is the page directory. It grows copy-on-write under growMu;
	// readers load it atomically and never observe a shrink.
	dir    atomic.Pointer[[]*page]
	growMu sync.Mutex
	// next is the bump allocator for never-used record IDs.
	next atomic.Uint64
	// inlining enables best-effort inlining for this table.
	inlining bool
	// free holds per-worker free lists of reclaimed record IDs.
	free []freeList
}

type freeList struct {
	ids []RecordID
	_   [64]byte // keep workers' free lists on separate cache lines
}

// NewTable creates a table for up to workers concurrent workers. inlining
// controls best-effort inlining (disable it for the Figure 8 ablation).
func NewTable(name string, workers int, inlining bool) *Table {
	if workers < 1 {
		panic("storage: table needs at least one worker slot")
	}
	t := &Table{name: name, inlining: inlining, free: make([]freeList, workers)}
	empty := make([]*page, 0)
	t.dir.Store(&empty)
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Inlining reports whether best-effort inlining is enabled.
func (t *Table) Inlining() bool { return t.inlining }

// Cap returns the number of record IDs ever allocated (the array's logical
// length). Heads for all IDs below Cap are addressable.
func (t *Table) Cap() uint64 { return t.next.Load() }

// Head returns the record head for rid, or nil if rid has never been
// allocated.
func (t *Table) Head(rid RecordID) *Head {
	dir := *t.dir.Load()
	pi := uint64(rid) >> pageShift
	if pi >= uint64(len(dir)) {
		return nil
	}
	return &dir[pi].heads[uint64(rid)&pageMask]
}

// AllocRecordID returns an unused record ID for worker. Reclaimed IDs are
// reused before the bump allocator grows the table.
func (t *Table) AllocRecordID(worker int) RecordID {
	fl := &t.free[worker]
	if n := len(fl.ids); n > 0 {
		rid := fl.ids[n-1]
		fl.ids = fl.ids[:n-1]
		return rid
	}
	rid := RecordID(t.next.Add(1) - 1)
	t.ensure(rid)
	return rid
}

// FreeRecordID returns a reclaimed record ID to worker's free list. The
// caller (garbage collection) must guarantee the record is unreachable.
func (t *Table) FreeRecordID(worker int, rid RecordID) {
	t.Head(rid).ResetForFree()
	fl := &t.free[worker]
	fl.ids = append(fl.ids, rid)
}

// ensure grows the page directory to cover rid.
func (t *Table) ensure(rid RecordID) {
	need := (uint64(rid) >> pageShift) + 1
	if uint64(len(*t.dir.Load())) >= need {
		return
	}
	//lint:allow locksdiscipline page-directory growth is a cold path amortized over pageSize inserts; the fast path above is a lock-free load
	t.growMu.Lock()
	defer t.growMu.Unlock()
	cur := *t.dir.Load()
	if uint64(len(cur)) >= need {
		return
	}
	grown := make([]*page, need)
	copy(grown, cur)
	for i := uint64(len(cur)); i < need; i++ {
		grown[i] = new(page)
	}
	t.dir.Store(&grown)
}

// RecoverEnsure raises the bump allocator past rid and materializes its
// head; used by recovery replay.
func (t *Table) RecoverEnsure(rid RecordID) {
	for {
		cur := t.next.Load()
		if cur > uint64(rid) {
			break
		}
		if t.next.CompareAndSwap(cur, uint64(rid)+1) {
			break
		}
	}
	t.ensure(rid)
}

// Reserve pre-allocates heads for n records and returns the first ID. It is
// used by bulk loaders.
func (t *Table) Reserve(n uint64) RecordID {
	first := t.next.Add(n) - n
	t.ensure(RecordID(first + n - 1))
	return RecordID(first)
}

func (t *Table) String() string {
	return fmt.Sprintf("Table(%s, cap=%d)", t.name, t.Cap())
}
