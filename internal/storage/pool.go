package storage

import "math/bits"

// VersionPool is a per-worker free list of non-inline versions, bucketed by
// power-of-two size class. Cicada's rapid garbage collection returns detached
// versions to the committing worker's local pool (§3.8), so version
// allocation rarely reaches the global allocator in steady state.
//
// A VersionPool is not safe for concurrent use; each worker owns one.
type VersionPool struct {
	classes [poolClasses][]*Version
	// Gets and News count pool hits and fresh allocations, exposed for the
	// space-overhead measurements in Figure 9.
	Gets uint64
	News uint64
}

const (
	poolMinShift = 6 // smallest class: 64 bytes
	poolClasses  = 11
	poolMaxSize  = 1 << (poolMinShift + poolClasses - 1) // 64 KiB
)

func poolClass(size int) int {
	if size <= 1<<poolMinShift {
		return 0
	}
	c := bits.Len(uint(size-1)) - poolMinShift
	return c
}

// Get returns a version with room for size bytes, reusing a pooled one when
// possible.
func (p *VersionPool) Get(size int) *Version {
	p.Gets++
	if size <= poolMaxSize {
		c := poolClass(size)
		if n := len(p.classes[c]); n > 0 {
			v := p.classes[c][n-1]
			p.classes[c] = p.classes[c][:n-1]
			v.Reset(size)
			return v
		}
		// Allocate at full class capacity so the buffer can serve any
		// future request in the class.
		p.News++
		v := NewVersion(1 << (poolMinShift + c))
		v.Reset(size)
		return v
	}
	p.News++
	return NewVersion(size)
}

// Put returns a version to the pool. Inline versions are never pooled: their
// storage belongs to the record head.
func (p *VersionPool) Put(v *Version) {
	if v == nil || v.inline {
		return
	}
	size := cap(v.buf)
	if size == 0 || size > poolMaxSize {
		return
	}
	c := poolClass(size)
	if 1<<(poolMinShift+c) != size {
		// Buffer is not exactly a class size (externally built); round down
		// so Get's capacity promise holds.
		if c == 0 {
			return
		}
		c--
	}
	if len(p.classes[c]) >= 1024 {
		return // cap pool growth; let the Go GC take the rest
	}
	v.SetNext(nil)
	p.classes[c] = append(p.classes[c], v)
}
