//go:build cicada_invariants

package storage

import (
	"fmt"

	"cicada/internal/clock"
)

// InvariantsEnabled reports whether runtime invariant assertions are compiled
// in (build tag cicada_invariants). Call sites gate assertion work behind
// this constant so the disabled build pays nothing.
const InvariantsEnabled = true

// Assertf panics with a formatted message if cond is false. It is the
// assertion primitive shared by the invariant hooks in storage, clock, and
// core; formatting cost is only paid on failure.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		panic("cicada invariant violation: " + fmt.Sprintf(format, args...))
	}
}

// CheckChainSorted asserts that the version list starting at v is sorted by
// strictly descending write timestamp (§3.2: lists are maintained
// latest-to-earliest; sorted order is preserved by CAS insertion and by
// garbage-collection detachment). v must come from a fresh Latest() load so
// the traversal cannot reach an epoch-recycled node.
func CheckChainSorted(v *Version, where string) {
	prev := ^clock.Timestamp(0)
	n := 0
	for ; v != nil; v = v.Next() {
		Assertf(v.WTS < prev, "%s: version list out of order (wts %v not below %v)", where, v.WTS, prev)
		prev = v.WTS
		if n++; n > 1<<20 {
			panic("cicada invariant violation: " + where + ": version list cycle")
		}
	}
}

// CheckCommitOrder asserts that the first committed version below nv has not
// been read at a timestamp beyond nv's write timestamp. This is exactly what
// validation guarantees at the moment a pending version flips to COMMITTED
// (§3.4); it does not hold in NoWaitPending mode, where speculative readers
// may raise rts above a pending version and abort later instead.
func CheckCommitOrder(nv *Version, where string) {
	for v := nv.Next(); v != nil; v = v.Next() {
		switch v.Status() {
		case StatusCommitted, StatusDeleted:
			Assertf(v.RTS() <= nv.WTS,
				"%s: committing wts %v over version with rts %v (read-after cross)", where, nv.WTS, v.RTS())
			return
		}
	}
}
