//go:build !cicada_invariants

package storage

// InvariantsEnabled reports whether runtime invariant assertions are compiled
// in (build tag cicada_invariants). In this build they are not; the stubs
// below exist so call sites compile and fold to nothing.
const InvariantsEnabled = false

// Assertf is a no-op in builds without the cicada_invariants tag.
func Assertf(cond bool, format string, args ...any) {}

// CheckChainSorted is a no-op in builds without the cicada_invariants tag.
func CheckChainSorted(v *Version, where string) {}

// CheckCommitOrder is a no-op in builds without the cicada_invariants tag.
func CheckCommitOrder(nv *Version, where string) {}
