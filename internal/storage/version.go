// Package storage implements Cicada's multi-version record storage (§3.2)
// and best-effort inlining (§3.3).
//
// A table is an expandable array of record heads addressed by 64-bit record
// IDs, organized as two-level paging with fixed-size pages. Each head anchors
// a singly-linked list of versions sorted latest-to-earliest by write
// timestamp. The head also embeds one preallocated inline version whose data
// buffer lives inside the head itself, saving a cache miss (and in Go, a
// pointer chase and an allocation) for small, read-mostly records.
package storage

import (
	"sync/atomic"

	"cicada/internal/clock"
)

// Status is the commit status of a version (§3.2).
type Status uint32

const (
	// StatusUnused marks an inline version slot that is not in use.
	StatusUnused Status = iota
	// StatusPending marks a version installed by a transaction that is
	// still validating or writing. Readers spin-wait on pending versions.
	StatusPending
	// StatusCommitted marks a valid version.
	StatusCommitted
	// StatusAborted marks a version whose transaction rolled back; readers
	// skip it and garbage collection unlinks it.
	StatusAborted
	// StatusDeleted marks a committed zero-length version that deletes the
	// record; garbage collection reclaims the record ID once it is the only
	// remaining version.
	StatusDeleted
)

// String returns the status name for debugging.
func (s Status) String() string {
	switch s {
	case StatusUnused:
		return "UNUSED"
	case StatusPending:
		return "PENDING"
	case StatusCommitted:
		return "COMMITTED"
	case StatusAborted:
		return "ABORTED"
	case StatusDeleted:
		return "DELETED"
	}
	return "INVALID"
}

// InlineSize is the maximum record data size eligible for inlining in the
// record head. The paper inlines up to 216 bytes (four cache lines per head
// node including overhead).
const InlineSize = 216

// Version is one version of a record. WTS and Data are immutable once the
// version is installed; rts and status are updated concurrently with atomic
// operations; next changes only under version-list insertion CAS or garbage
// collection.
type Version struct {
	// WTS is the write timestamp: the timestamp of the transaction that
	// created this version.
	WTS clock.Timestamp
	// rts is the read timestamp: the maximum timestamp of (possibly)
	// committed transactions that read this version.
	rts atomic.Uint64
	// status is the commit status (a Status value).
	status atomic.Uint32
	// next points to the next-earlier version.
	next atomic.Pointer[Version]
	// Data is the record payload. For an inline version it aliases the
	// head's embedded buffer.
	Data []byte
	// buf is the backing array for non-inline versions, retained so pooled
	// reuse can restore capacity.
	buf []byte
	// inline marks the version as the head-embedded slot.
	inline bool
}

// RTS returns the version's read timestamp.
func (v *Version) RTS() clock.Timestamp { return clock.Timestamp(v.rts.Load()) }

// RaiseRTS raises the read timestamp to at least ts. The write is
// conditional: if the current read timestamp is already ≥ ts nothing is
// written, which keeps contended read validation cheap (§3.4).
func (v *Version) RaiseRTS(ts clock.Timestamp) {
	for {
		cur := v.rts.Load()
		if cur >= uint64(ts) || v.rts.CompareAndSwap(cur, uint64(ts)) {
			return
		}
	}
}

// SetRTS unconditionally stores the read timestamp. It is used during
// version creation before the version is reachable.
func (v *Version) SetRTS(ts clock.Timestamp) { v.rts.Store(uint64(ts)) }

// PrepareInstall initializes the version's timestamp words for installation
// at ts: wts = rts = ts, status = PENDING. It is the only sanctioned way to
// write WTS outside this package; it must run before the version becomes
// reachable (the statusorder analyzer enforces this discipline).
func (v *Version) PrepareInstall(ts clock.Timestamp) {
	v.WTS = ts
	v.rts.Store(uint64(ts))
	v.status.Store(uint32(StatusPending))
}

// Status returns the version's commit status.
func (v *Version) Status() Status { return Status(v.status.Load()) }

// SetStatus stores the commit status.
func (v *Version) SetStatus(s Status) { v.status.Store(uint32(s)) }

// CASStatus atomically transitions the status from old to new.
func (v *Version) CASStatus(old, new Status) bool {
	return v.status.CompareAndSwap(uint32(old), uint32(new))
}

// Next returns the next-earlier version in the list.
func (v *Version) Next() *Version { return v.next.Load() }

// SetNext stores the next pointer.
func (v *Version) SetNext(n *Version) { v.next.Store(n) }

// CASNext atomically swings the next pointer; used for sorted insertion and
// for unlinking aborted versions.
func (v *Version) CASNext(old, new *Version) bool {
	return v.next.CompareAndSwap(old, new)
}

// Inline reports whether this version is a head-embedded inline slot.
func (v *Version) Inline() bool { return v.inline }

// bindInline marks v as the head-embedded slot and points its Data at the
// head's buffer. The caller owns the slot (status is already PENDING).
func (v *Version) bindInline(data []byte) {
	v.inline = true
	v.WTS = 0
	v.rts.Store(0)
	v.next.Store(nil)
	v.Data = data
}

// clearInline returns an inline slot to the UNUSED state. The caller must
// guarantee the slot is unreachable.
func (v *Version) clearInline() {
	v.WTS = 0
	v.rts.Store(0)
	v.next.Store(nil)
	v.Data = nil
	v.status.Store(uint32(StatusUnused))
}

// Reset prepares a pooled (non-inline) version for reuse with room for size
// bytes of data.
func (v *Version) Reset(size int) {
	v.WTS = 0
	v.rts.Store(0)
	v.status.Store(uint32(StatusPending))
	v.next.Store(nil)
	if cap(v.buf) < size {
		v.buf = make([]byte, size)
	}
	v.Data = v.buf[:size]
}

// NewVersion allocates a fresh non-inline version with room for size bytes.
func NewVersion(size int) *Version {
	v := &Version{}
	v.Reset(size)
	return v
}
