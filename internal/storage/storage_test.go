package storage

import (
	"sync"
	"testing"
	"testing/quick"

	"cicada/internal/clock"
)

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusUnused:    "UNUSED",
		StatusPending:   "PENDING",
		StatusCommitted: "COMMITTED",
		StatusAborted:   "ABORTED",
		StatusDeleted:   "DELETED",
		Status(99):      "INVALID",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestRaiseRTSMonotonic(t *testing.T) {
	v := NewVersion(8)
	v.RaiseRTS(100)
	if v.RTS() != 100 {
		t.Fatalf("rts = %v, want 100", v.RTS())
	}
	v.RaiseRTS(50) // lower: must not move
	if v.RTS() != 100 {
		t.Fatalf("rts lowered to %v", v.RTS())
	}
	v.RaiseRTS(200)
	if v.RTS() != 200 {
		t.Fatalf("rts = %v, want 200", v.RTS())
	}
}

func TestRaiseRTSConcurrent(t *testing.T) {
	v := NewVersion(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				v.RaiseRTS(clock.Timestamp(i*8 + w))
			}
		}(w)
	}
	wg.Wait()
	if got := v.RTS(); got != clock.Timestamp(1000*8+7) {
		t.Fatalf("final rts = %v, want %v", got, 1000*8+7)
	}
}

func TestVersionResetReusesBuffer(t *testing.T) {
	v := NewVersion(128)
	buf := &v.buf[0]
	v.Reset(64)
	if &v.buf[0] != buf {
		t.Fatal("Reset reallocated a sufficient buffer")
	}
	if len(v.Data) != 64 {
		t.Fatalf("Data len = %d, want 64", len(v.Data))
	}
	v.Reset(256)
	if len(v.Data) != 256 {
		t.Fatalf("Data len = %d, want 256", len(v.Data))
	}
}

func TestTableAllocAndHead(t *testing.T) {
	tbl := NewTable("t", 2, true)
	if tbl.Head(0) != nil {
		t.Fatal("head exists before allocation")
	}
	rid := tbl.AllocRecordID(0)
	if rid != 0 {
		t.Fatalf("first rid = %d", rid)
	}
	h := tbl.Head(rid)
	if h == nil {
		t.Fatal("allocated head missing")
	}
	if h.Latest() != nil {
		t.Fatal("fresh head has a version")
	}
	if tbl.Cap() != 1 {
		t.Fatalf("cap = %d", tbl.Cap())
	}
}

func TestTableGrowthAcrossPages(t *testing.T) {
	tbl := NewTable("t", 1, true)
	n := uint64(pageSize*3 + 17)
	first := tbl.Reserve(n)
	if first != 0 {
		t.Fatalf("first = %d", first)
	}
	for i := uint64(0); i < n; i += 997 {
		if tbl.Head(RecordID(i)) == nil {
			t.Fatalf("head %d missing after reserve", i)
		}
	}
	if tbl.Head(RecordID(n+pageSize)) != nil {
		t.Fatal("head beyond reservation exists")
	}
}

func TestTableConcurrentAlloc(t *testing.T) {
	const workers = 8
	const per = 2000
	tbl := NewTable("t", workers, true)
	got := make([][]RecordID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]RecordID, 0, per)
			for i := 0; i < per; i++ {
				ids = append(ids, tbl.AllocRecordID(w))
			}
			got[w] = ids
		}(w)
	}
	wg.Wait()
	seen := make(map[RecordID]bool, workers*per)
	for _, ids := range got {
		for _, rid := range ids {
			if seen[rid] {
				t.Fatalf("duplicate rid %d", rid)
			}
			seen[rid] = true
			if tbl.Head(rid) == nil {
				t.Fatalf("rid %d has no head", rid)
			}
		}
	}
}

func TestFreeRecordIDReuse(t *testing.T) {
	tbl := NewTable("t", 1, true)
	rid := tbl.AllocRecordID(0)
	v := NewVersion(8)
	tbl.Head(rid).latest.Store(v)
	tbl.FreeRecordID(0, rid)
	if tbl.Head(rid).Latest() != nil {
		t.Fatal("freed head retains version list")
	}
	again := tbl.AllocRecordID(0)
	if again != rid {
		t.Fatalf("freed rid not reused: got %d want %d", again, rid)
	}
}

func TestInlineAcquireRelease(t *testing.T) {
	tbl := NewTable("t", 1, true)
	h := tbl.Head(tbl.AllocRecordID(0))
	v, ok := h.TryAcquireInline(100)
	if !ok {
		t.Fatal("inline acquire failed on fresh head")
	}
	if !v.Inline() {
		t.Fatal("acquired version not marked inline")
	}
	if len(v.Data) != 100 {
		t.Fatalf("inline data len = %d", len(v.Data))
	}
	if _, ok := h.TryAcquireInline(10); ok {
		t.Fatal("double inline acquire succeeded")
	}
	v.SetStatus(StatusCommitted) // simulate commit; then reclaim
	h.ReleaseInline()
	if _, ok := h.TryAcquireInline(InlineSize); !ok {
		t.Fatal("inline not reusable after release")
	}
}

func TestInlineTooLarge(t *testing.T) {
	tbl := NewTable("t", 1, true)
	h := tbl.Head(tbl.AllocRecordID(0))
	if _, ok := h.TryAcquireInline(InlineSize + 1); ok {
		t.Fatal("oversized inline acquire succeeded")
	}
}

func TestInlineConcurrentAcquire(t *testing.T) {
	tbl := NewTable("t", 1, true)
	h := tbl.Head(tbl.AllocRecordID(0))
	var wins atomic32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := h.TryAcquireInline(8); ok {
				wins.add(1)
			}
		}()
	}
	wg.Wait()
	if wins.load() != 1 {
		t.Fatalf("inline acquired %d times", wins.load())
	}
}

type atomic32 struct {
	v sync.Mutex
	n int
}

func (a *atomic32) add(d int) { a.v.Lock(); a.n += d; a.v.Unlock() }
func (a *atomic32) load() int { a.v.Lock(); defer a.v.Unlock(); return a.n }

func TestGCLock(t *testing.T) {
	tbl := NewTable("t", 1, true)
	h := tbl.Head(tbl.AllocRecordID(0))
	if !h.TryLockGC() {
		t.Fatal("first gc lock failed")
	}
	if h.TryLockGC() {
		t.Fatal("second gc lock succeeded")
	}
	h.UnlockGC()
	if !h.TryLockGC() {
		t.Fatal("gc lock not reusable")
	}
}

func TestPoolClassProperty(t *testing.T) {
	f := func(raw uint16) bool {
		size := int(raw)%poolMaxSize + 1
		c := poolClass(size)
		if c < 0 || c >= poolClasses {
			return false
		}
		return 1<<(poolMinShift+c) >= size && (c == 0 || 1<<(poolMinShift+c-1) < size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolReuse(t *testing.T) {
	var p VersionPool
	v := p.Get(100)
	if len(v.Data) != 100 {
		t.Fatalf("data len = %d", len(v.Data))
	}
	p.Put(v)
	v2 := p.Get(80)
	if v2 != v {
		t.Fatal("pool did not reuse same-class version")
	}
	if p.News != 1 {
		t.Fatalf("News = %d, want 1", p.News)
	}
}

func TestPoolNeverPoolsInline(t *testing.T) {
	tbl := NewTable("t", 1, true)
	h := tbl.Head(tbl.AllocRecordID(0))
	v, _ := h.TryAcquireInline(8)
	var p VersionPool
	p.Put(v)
	got := p.Get(8)
	if got == v {
		t.Fatal("inline version leaked into pool")
	}
}

func TestPoolLargeBypasses(t *testing.T) {
	var p VersionPool
	v := p.Get(poolMaxSize * 2)
	if len(v.Data) != poolMaxSize*2 {
		t.Fatalf("large get len = %d", len(v.Data))
	}
	p.Put(v)
	v2 := p.Get(poolMaxSize * 2)
	if v2 == v {
		t.Fatal("oversized version was pooled")
	}
}
