// Package enginetest is a conformance battery run against every concurrency
// control scheme in the repository (Cicada and the six baselines): CRUD
// semantics, index operations, invariant preservation under concurrency, and
// a serializability check based on commit-order replay.
package enginetest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"cicada/internal/engine"
)

// Factories returns the engines under test, keyed by scheme name, built via
// the given config.
type Factories map[string]engine.Factory

// RunAll runs the full battery for each factory under both index
// disciplines.
func RunAll(t *testing.T, fs Factories) {
	for name, f := range fs {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			t.Run("CRUD", func(t *testing.T) { testCRUD(t, f) })
			t.Run("Indexes", func(t *testing.T) { testIndexes(t, f) })
			t.Run("BankInvariant", func(t *testing.T) { testBank(t, f) })
			t.Run("ScanInvariant", func(t *testing.T) { testScanInvariant(t, f) })
			t.Run("CommitOrderSerializability", func(t *testing.T) { testSerializability(t, f) })
			t.Run("DeferredIndexMode", func(t *testing.T) { testDeferredIndexes(t, f) })
		})
	}
}

func cfg(workers int, phantom bool) engine.Config {
	return engine.Config{Workers: workers, PhantomAvoidance: phantom, HashBucketsHint: 1 << 12}
}

func u64(b []byte) uint64       { return binary.LittleEndian.Uint64(b) }
func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

func testCRUD(t *testing.T, f engine.Factory) {
	db := f(cfg(1, true))
	tbl := db.CreateTable("t")
	w := db.Worker(0)

	var rid engine.RecordID
	if err := w.Run(func(tx engine.Tx) error {
		r, buf, err := tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		putU64(buf, 1111)
		rid = r
		return nil
	}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := w.Run(func(tx engine.Tx) error {
		d, err := tx.Read(tbl, rid)
		if err != nil {
			return err
		}
		if u64(d) != 1111 {
			t.Errorf("read %d", u64(d))
		}
		buf, err := tx.Update(tbl, rid, -1)
		if err != nil {
			return err
		}
		if u64(buf) != 1111 {
			t.Errorf("update buffer %d", u64(buf))
		}
		putU64(buf, 2222)
		d2, err := tx.Read(tbl, rid)
		if err != nil {
			return err
		}
		if u64(d2) != 2222 {
			t.Errorf("read-own-write %d", u64(d2))
		}
		return nil
	}); err != nil {
		t.Fatalf("update: %v", err)
	}
	if err := w.Run(func(tx engine.Tx) error {
		d, err := tx.Read(tbl, rid)
		if err != nil {
			return err
		}
		if u64(d) != 2222 {
			t.Errorf("after update: %d", u64(d))
		}
		return tx.Delete(tbl, rid)
	}); err != nil {
		t.Fatalf("delete: %v", err)
	}
	err := w.Run(func(tx engine.Tx) error {
		_, err := tx.Read(tbl, rid)
		return err
	})
	if !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("read after delete: %v", err)
	}
	// User abort leaves no trace.
	sentinel := errors.New("user rollback")
	var rid2 engine.RecordID
	err = w.Run(func(tx engine.Tx) error {
		r, buf, err := tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		putU64(buf, 3333)
		rid2 = r
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("user abort: %v", err)
	}
	err = w.Run(func(tx engine.Tx) error {
		_, err := tx.Read(tbl, rid2)
		return err
	})
	if !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("aborted insert visible: %v", err)
	}
}

func testIndexes(t *testing.T, f engine.Factory) {
	db := f(cfg(1, true))
	tbl := db.CreateTable("t")
	hidx := db.CreateHashIndex("h", 1024)
	oidx := db.CreateOrderedIndex("o")
	w := db.Worker(0)

	rids := make([]engine.RecordID, 100)
	for k := 0; k < 100; k++ {
		k := k
		if err := w.Run(func(tx engine.Tx) error {
			rid, buf, err := tx.Insert(tbl, 8)
			if err != nil {
				return err
			}
			putU64(buf, uint64(k))
			rids[k] = rid
			if err := tx.IndexInsert(hidx, uint64(k), rid); err != nil {
				return err
			}
			return tx.IndexInsert(oidx, uint64(k), rid)
		}); err != nil {
			t.Fatalf("load %d: %v", k, err)
		}
	}
	if err := w.Run(func(tx engine.Tx) error {
		for k := 0; k < 100; k += 7 {
			rid, err := tx.IndexGet(hidx, uint64(k))
			if err != nil || rid != rids[k] {
				return fmt.Errorf("hash get %d: %d %v", k, rid, err)
			}
			rid, err = tx.IndexGet(oidx, uint64(k))
			if err != nil || rid != rids[k] {
				return fmt.Errorf("ordered get %d: %d %v", k, rid, err)
			}
		}
		if _, err := tx.IndexGet(hidx, 5000); !errors.Is(err, engine.ErrNotFound) {
			return fmt.Errorf("absent hash get: %v", err)
		}
		var keys []uint64
		if err := tx.IndexScan(oidx, 10, 29, -1, func(k uint64, r engine.RecordID) bool {
			keys = append(keys, k)
			return true
		}); err != nil {
			return err
		}
		if len(keys) != 20 || keys[0] != 10 || keys[19] != 29 {
			return fmt.Errorf("scan keys %v", keys)
		}
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			return fmt.Errorf("scan unsorted: %v", keys)
		}
		n := 0
		if err := tx.IndexScan(oidx, 0, 99, 5, func(k uint64, r engine.RecordID) bool { n++; return true }); err != nil {
			return err
		}
		if n != 5 {
			return fmt.Errorf("limit scan %d", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Delete from both indexes.
	if err := w.Run(func(tx engine.Tx) error {
		if err := tx.IndexDelete(hidx, 3, rids[3]); err != nil {
			return err
		}
		return tx.IndexDelete(oidx, 3, rids[3])
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(tx engine.Tx) error {
		if _, err := tx.IndexGet(hidx, 3); !errors.Is(err, engine.ErrNotFound) {
			return fmt.Errorf("hash get after delete: %v", err)
		}
		if _, err := tx.IndexGet(oidx, 3); !errors.Is(err, engine.ErrNotFound) {
			return fmt.Errorf("ordered get after delete: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// testBank checks invariant preservation under concurrent transfers: the
// total balance is constant in every read-write audit and every read-only
// snapshot audit.
func testBank(t *testing.T, f engine.Factory) {
	const (
		accounts = 20
		workers  = 4
		transfer = 300
		total    = uint64(accounts * 1000)
	)
	db := f(cfg(workers, true))
	tbl := db.CreateTable("accounts")
	idx := db.CreateHashIndex("by_id", 64)
	w0 := db.Worker(0)
	for a := 0; a < accounts; a++ {
		a := a
		if err := w0.Run(func(tx engine.Tx) error {
			rid, buf, err := tx.Insert(tbl, 8)
			if err != nil {
				return err
			}
			putU64(buf, 1000)
			return tx.IndexInsert(idx, uint64(a), rid)
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := db.Worker(id)
			rng := rand.New(rand.NewSource(int64(id) + 42))
			for i := 0; i < transfer; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amt := uint64(rng.Intn(50))
				err := w.Run(func(tx engine.Tx) error {
					fr, err := tx.IndexGet(idx, uint64(from))
					if err != nil {
						return err
					}
					tr, err := tx.IndexGet(idx, uint64(to))
					if err != nil {
						return err
					}
					fb, err := tx.Update(tbl, fr, -1)
					if err != nil {
						return err
					}
					if u64(fb) < amt {
						return nil // insufficient funds; commit unchanged
					}
					tb, err := tx.Update(tbl, tr, -1)
					if err != nil {
						return err
					}
					putU64(fb, u64(fb)-amt)
					putU64(tb, u64(tb)+amt)
					return nil
				})
				if err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
				// Periodic read-only snapshot audit.
				if i%50 == 0 {
					err := w.RunRO(func(tx engine.Tx) error {
						var sum uint64
						for a := 0; a < accounts; a++ {
							rid, err := tx.IndexGet(idx, uint64(a))
							if err != nil {
								return err
							}
							d, err := tx.Read(tbl, rid)
							if err != nil {
								return err
							}
							sum += u64(d)
						}
						if sum != total {
							return fmt.Errorf("snapshot sum %d != %d", sum, total)
						}
						return nil
					})
					if err != nil && !errors.Is(err, engine.ErrNotFound) {
						t.Errorf("worker %d audit: %v", id, err)
						return
					}
				}
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := w0.Run(func(tx engine.Tx) error {
		var sum uint64
		for a := 0; a < accounts; a++ {
			rid, err := tx.IndexGet(idx, uint64(a))
			if err != nil {
				return err
			}
			d, err := tx.Read(tbl, rid)
			if err != nil {
				return err
			}
			sum += u64(d)
		}
		if sum != total {
			return fmt.Errorf("final sum %d != %d", sum, total)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if s := db.Stats(); s.Commits == 0 {
		t.Fatal("no commits recorded")
	}
}

// testScanInvariant checks phantom avoidance: writers atomically insert and
// delete indexed records in balanced pairs while scanners verify that a
// range scan always observes a multiple of the pair value.
func testScanInvariant(t *testing.T, f engine.Factory) {
	const workers = 4
	db := f(cfg(workers, true))
	tbl := db.CreateTable("t")
	idx := db.CreateOrderedIndex("o")
	w0 := db.Worker(0)
	// Seed: 10 pairs (key k and k+1000 always created/removed together).
	if err := w0.Run(func(tx engine.Tx) error {
		for k := uint64(0); k < 10; k++ {
			for _, key := range []uint64{k, k + 1000} {
				rid, buf, err := tx.Insert(tbl, 8)
				if err != nil {
					return err
				}
				putU64(buf, key)
				if err := tx.IndexInsert(idx, key, rid); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := db.Worker(id)
			rng := rand.New(rand.NewSource(int64(id) + 7))
			for i := 0; i < 150; i++ {
				if id%2 == 0 {
					// Scanner: count entries; pairs mean the count of
					// [0,2000] is always even.
					err := w.Run(func(tx engine.Tx) error {
						n := 0
						if err := tx.IndexScan(idx, 0, 2000, -1, func(k uint64, r engine.RecordID) bool {
							n++
							return true
						}); err != nil {
							return err
						}
						if n%2 != 0 {
							return fmt.Errorf("phantom: scan saw %d entries", n)
						}
						return nil
					})
					if err != nil {
						t.Errorf("scanner %d: %v", id, err)
						return
					}
					continue
				}
				// Writer: insert or remove a pair atomically.
				k := uint64(10 + rng.Intn(20))
				err := w.Run(func(tx engine.Tx) error {
					if _, err := tx.IndexGet(idx, k); errors.Is(err, engine.ErrNotFound) {
						for _, key := range []uint64{k, k + 1000} {
							rid, buf, err := tx.Insert(tbl, 8)
							if err != nil {
								return err
							}
							putU64(buf, key)
							if err := tx.IndexInsert(idx, key, rid); err != nil {
								return err
							}
						}
						return nil
					}
					for _, key := range []uint64{k, k + 1000} {
						rid, err := tx.IndexGet(idx, key)
						if errors.Is(err, engine.ErrNotFound) {
							return engine.ErrAborted // racing pair change; retry
						}
						if err != nil {
							return err
						}
						if err := tx.IndexDelete(idx, key, rid); err != nil {
							return err
						}
						if err := tx.Delete(tbl, rid); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					t.Errorf("writer %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
}

// testSerializability replays the committed history: every record value is
// its last writer's per-engine commit order token; reads must match a serial
// order. We use a monotonically increasing value per record (each RMW adds
// 1): any lost update or stale read breaks the final count.
func testSerializability(t *testing.T, f engine.Factory) {
	const (
		workers = 4
		records = 8
		perW    = 150
	)
	db := f(cfg(workers, true))
	tbl := db.CreateTable("t")
	w0 := db.Worker(0)
	rids := make([]engine.RecordID, records)
	for i := range rids {
		i := i
		if err := w0.Run(func(tx engine.Tx) error {
			rid, buf, err := tx.Insert(tbl, 8)
			if err != nil {
				return err
			}
			putU64(buf, 0)
			rids[i] = rid
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	counts := make([][]uint64, workers)
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 1))
			w := db.Worker(id)
			local := make([]uint64, records)
			for i := 0; i < perW; i++ {
				a, b := rng.Intn(records), rng.Intn(records)
				err := w.Run(func(tx engine.Tx) error {
					// Increment two counters atomically.
					ba, err := tx.Update(tbl, rids[a], -1)
					if err != nil {
						return err
					}
					putU64(ba, u64(ba)+1)
					if b != a {
						bb, err := tx.Update(tbl, rids[b], -1)
						if err != nil {
							return err
						}
						putU64(bb, u64(bb)+1)
					}
					return nil
				})
				if err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
				local[a]++
				if b != a {
					local[b]++
				}
			}
			counts[id] = local
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	want := make([]uint64, records)
	for _, local := range counts {
		for i, n := range local {
			want[i] += n
		}
	}
	if err := w0.Run(func(tx engine.Tx) error {
		for i, rid := range rids {
			d, err := tx.Read(tbl, rid)
			if err != nil {
				return err
			}
			if u64(d) != want[i] {
				return fmt.Errorf("record %d: got %d, want %d (lost updates)", i, u64(d), want[i])
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// testDeferredIndexes smoke-tests the Figure 4 configuration: deferred
// index updates without phantom avoidance.
func testDeferredIndexes(t *testing.T, f engine.Factory) {
	db := f(cfg(2, false))
	tbl := db.CreateTable("t")
	hidx := db.CreateHashIndex("h", 256)
	oidx := db.CreateOrderedIndex("o")
	w := db.Worker(0)
	if err := w.Run(func(tx engine.Tx) error {
		rid, buf, err := tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		putU64(buf, 42)
		if err := tx.IndexInsert(hidx, 1, rid); err != nil {
			return err
		}
		if err := tx.IndexInsert(oidx, 1, rid); err != nil {
			return err
		}
		// Deferred mode must still honor read-own-index-writes for point
		// lookups.
		got, err := tx.IndexGet(hidx, 1)
		if err != nil || got != rid {
			return fmt.Errorf("own index get: %d %v", got, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(tx engine.Tx) error {
		rid, err := tx.IndexGet(hidx, 1)
		if err != nil {
			return err
		}
		d, err := tx.Read(tbl, rid)
		if err != nil {
			return err
		}
		if u64(d) != 42 {
			return fmt.Errorf("read %d", u64(d))
		}
		n := 0
		if err := tx.IndexScan(oidx, 0, 10, -1, func(k uint64, r engine.RecordID) bool { n++; return true }); err != nil {
			return err
		}
		if n != 1 {
			return fmt.Errorf("scan %d", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Abort leaves no deferred index application.
	sentinel := errors.New("rollback")
	err := w.Run(func(tx engine.Tx) error {
		rid, _, err := tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		if err := tx.IndexInsert(hidx, 2, rid); err != nil {
			return err
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatal(err)
	}
	if err := w.Run(func(tx engine.Tx) error {
		if _, err := tx.IndexGet(hidx, 2); !errors.Is(err, engine.ErrNotFound) {
			return fmt.Errorf("aborted deferred insert applied: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
