package enginetest

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"cicada/internal/baselines/ermia"
	"cicada/internal/baselines/hekaton"
	"cicada/internal/baselines/mocc"
	"cicada/internal/baselines/tictoc"
	"cicada/internal/baselines/twopl"
	"cicada/internal/engine"
)

// Scheme-specific behavior tests: each checks a property that
// distinguishes the protocol from its peers.

// TestTwoPLNoWaitAbortsImmediately: under 2PL no-wait, a lock conflict
// aborts rather than blocks. We orchestrate with two goroutines and a
// rendezvous so worker A holds a write lock while worker B tries to read.
func TestTwoPLNoWaitAbortsImmediately(t *testing.T) {
	db := twopl.New(cfg(2, true))
	tbl := db.CreateTable("t")
	var rid engine.RecordID
	if err := db.Worker(0).Run(func(tx engine.Tx) error {
		r, buf, err := tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		putU64(buf, 1)
		rid = r
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	locked := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = db.Worker(0).Run(func(tx engine.Tx) error {
			if _, err := tx.Update(tbl, rid, -1); err != nil {
				return err
			}
			close(locked)
			<-release
			return nil
		})
	}()
	<-locked
	// Attempting the read while the writer holds the lock must abort at
	// least once. We count attempts via the closure.
	attempts := 0
	done := make(chan error, 1)
	go func() {
		done <- db.Worker(1).Run(func(tx engine.Tx) error {
			attempts++
			if attempts == 1 {
				// First attempt races the held lock; expect it to fail
				// inside Read with ErrAborted (no-wait), which Run retries.
				_, err := tx.Read(tbl, rid)
				if err == nil {
					return nil // lock already released: acceptable
				}
				return err
			}
			_, err := tx.Read(tbl, rid)
			return err
		})
	}()
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestTicTocCommitsWhereSiloWouldAbort: TicToc's timestamp extension lets a
// read-only-of-hot-record transaction commit even after the record was
// overwritten, as long as a consistent commit timestamp exists. Here T1
// reads A then B; A is overwritten by T2 before T1 finishes. Under Silo,
// T1's read of A fails TID validation; TicToc commits T1 at a timestamp
// before T2's write.
func TestTicTocCommitsWhereSiloWouldAbort(t *testing.T) {
	db := tictoc.New(cfg(2, true))
	tbl := db.CreateTable("t")
	var a, b engine.RecordID
	if err := db.Worker(0).Run(func(tx engine.Tx) error {
		var buf []byte
		var err error
		a, buf, err = tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		putU64(buf, 10)
		b, buf, err = tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		putU64(buf, 20)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// T1 (manual single attempt through Run with a flag to avoid retry
	// masking): read A, then let T2 overwrite A, then read B and commit.
	attempt := 0
	err := db.Worker(0).Run(func(tx engine.Tx) error {
		attempt++
		if attempt > 1 {
			return nil // already proven or raced; pass trivially
		}
		if _, err := tx.Read(tbl, a); err != nil {
			return err
		}
		if err := db.Worker(1).Run(func(tx2 engine.Tx) error {
			buf, err := tx2.Update(tbl, a, -1)
			if err != nil {
				return err
			}
			putU64(buf, 11)
			return nil
		}); err != nil {
			return err
		}
		_, err := tx.Read(tbl, b)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempt != 1 {
		t.Fatalf("TicToc needed %d attempts; extension failed", attempt)
	}
}

// TestMOCCHeatsContendedRecords: repeated validation failures on one record
// drive its temperature up; the MOCC path then takes pessimistic locks and
// the workload still completes correctly.
func TestMOCCHeatsContendedRecords(t *testing.T) {
	db := mocc.New(cfg(4, true))
	tbl := db.CreateTable("t")
	var rid engine.RecordID
	if err := db.Worker(0).Run(func(tx engine.Tx) error {
		r, buf, err := tx.Insert(tbl, 8)
		if err != nil {
			return err
		}
		putU64(buf, 0)
		rid = r
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	const perWorker = 300
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := db.Worker(id)
			for i := 0; i < perWorker; i++ {
				if err := w.Run(func(tx engine.Tx) error {
					buf, err := tx.Update(tbl, rid, -1)
					if err != nil {
						return err
					}
					putU64(buf, u64(buf)+1)
					return nil
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := db.Worker(0).Run(func(tx engine.Tx) error {
		d, err := tx.Read(tbl, rid)
		if err != nil {
			return err
		}
		if u64(d) != 4*perWorker {
			t.Errorf("counter %d, want %d", u64(d), 4*perWorker)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCSnapshotReaders: Hekaton and ERMIA snapshot readers see the state
// as of their begin timestamp even while writers churn.
func TestMVCCSnapshotReaders(t *testing.T) {
	for _, f := range []engine.Factory{hekaton.New, ermia.New} {
		db := f(cfg(2, true))
		tbl := db.CreateTable("t")
		var a, b engine.RecordID
		if err := db.Worker(0).Run(func(tx engine.Tx) error {
			var buf []byte
			var err error
			a, buf, err = tx.Insert(tbl, 8)
			if err != nil {
				return err
			}
			putU64(buf, 500)
			b, buf, err = tx.Insert(tbl, 8)
			if err != nil {
				return err
			}
			putU64(buf, 500)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// Snapshot read interleaved with a transfer: the sum must be
		// consistent inside the snapshot.
		if err := db.Worker(1).RunRO(func(tx engine.Tx) error {
			da, err := tx.Read(tbl, a)
			if err != nil {
				return err
			}
			// A transfer commits mid-snapshot.
			if err := db.Worker(0).Run(func(tx2 engine.Tx) error {
				ba, err := tx2.Update(tbl, a, -1)
				if err != nil {
					return err
				}
				bb, err := tx2.Update(tbl, b, -1)
				if err != nil {
					return err
				}
				putU64(ba, u64(ba)-100)
				putU64(bb, u64(bb)+100)
				return nil
			}); err != nil {
				return err
			}
			db_, err := tx.Read(tbl, b)
			if err != nil {
				return err
			}
			if sum := u64(da) + u64(db_); sum != 1000 {
				return errors.New("snapshot saw torn transfer")
			}
			return nil
		}); err != nil {
			t.Fatalf("%s: %v", db.Name(), err)
		}
	}
}

// TestLostUpdatePreventedEverywhere: the classic lost-update anomaly is
// impossible under every scheme: two increments through racing transactions
// always both land.
func TestLostUpdatePreventedEverywhere(t *testing.T) {
	for name, f := range allFactories() {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			db := f(cfg(2, true))
			tbl := db.CreateTable("t")
			var rid engine.RecordID
			if err := db.Worker(0).Run(func(tx engine.Tx) error {
				r, buf, err := tx.Insert(tbl, 8)
				if err != nil {
					return err
				}
				putU64(buf, 0)
				rid = r
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for id := 0; id < 2; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					w := db.Worker(id)
					for i := 0; i < 500; i++ {
						if err := w.Run(func(tx engine.Tx) error {
							buf, err := tx.Update(tbl, rid, -1)
							if err != nil {
								return err
							}
							binary.LittleEndian.PutUint64(buf, u64(buf)+1)
							return nil
						}); err != nil {
							t.Errorf("worker %d: %v", id, err)
							return
						}
					}
				}(id)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if err := db.Worker(0).Run(func(tx engine.Tx) error {
				d, err := tx.Read(tbl, rid)
				if err != nil {
					return err
				}
				if u64(d) != 1000 {
					t.Errorf("lost updates: %d != 1000", u64(d))
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
