package enginetest

import (
	"testing"

	"cicada/internal/baselines/ermia"
	"cicada/internal/baselines/hekaton"
	"cicada/internal/baselines/mocc"
	"cicada/internal/baselines/silo"
	"cicada/internal/baselines/tictoc"
	"cicada/internal/baselines/twopl"
	"cicada/internal/cicadaeng"
	"cicada/internal/core"
	"cicada/internal/engine"
)

func allFactories() Factories {
	return Factories{
		"Cicada": func(cfg engine.Config) engine.DB {
			return cicadaeng.New(cfg, core.DefaultOptions(cfg.Workers))
		},
		"Silo":    silo.New,
		"TicToc":  tictoc.New,
		"2PL":     twopl.New,
		"Hekaton": hekaton.New,
		"ERMIA":   ermia.New,
		"MOCC":    mocc.New,
	}
}

func TestConformanceAllEngines(t *testing.T) {
	RunAll(t, allFactories())
}
