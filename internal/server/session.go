package server

import (
	"bufio"
	"errors"
	"io"
	"sync"
	"time"

	"cicada/internal/buf"
	"cicada/internal/server/wire"
)

// respond is one finished response traveling to a session's writer: the
// staged frame chain plus the request's sequence number (the writer
// restores request order, since txns complete on whichever worker picked
// them up).
type respond struct {
	seq  uint64
	head *buf.Chunk
	ten  *tenant // non-nil for admitted txns: dec inflight after writing
	// fatal closes the connection after this response is written
	// (protocol violations where framing may be out of sync).
	fatal bool
}

// session is one client connection: a reader goroutine that frames
// requests (and answers handshake/admission traffic directly), plus a
// writer goroutine that streams responses back in request order. Neither
// executes transactions — that happens on the worker loops.
//
// Shutdown protocol: the reader exits (connection error or fatal frame),
// waits for every outstanding worker task, closes doneCh; the writer
// drains doneCh to the end — even with a dead connection it keeps
// receiving and releasing chains, so workers never block on a send
// forever.
type session struct {
	srv    *Server
	conn   netConn
	ten    *tenant
	doneCh chan respond
	taskWG sync.WaitGroup
	enc    buf.Writer // reader-owned staging for direct responses
	seq    uint64     // reader-owned; one per request frame
}

func newSession(s *Server, c netConn) *session {
	sess := &session{srv: s, conn: c, doneCh: make(chan respond, 64)}
	sess.enc.Init(s.pool)
	return sess
}

// run services the connection until it closes; it returns only when both
// directions have finished and all bookkeeping is released.
func (s *session) run() {
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		s.writeLoop()
	}()
	s.readLoop()
	s.taskWG.Wait() // all worker tasks answered into doneCh
	close(s.doneCh)
	<-writerDone
	s.conn.Close()
	if s.ten != nil {
		s.ten.sessions.Add(-1)
	}
}

// readLoop frames requests until the connection dies or a fatal protocol
// violation occurs.
func (s *session) readLoop() {
	br := bufio.NewReaderSize(s.conn, 4096)
	for {
		op, payload, err := wire.ReadFrame(br, s.srv.pool, s.srv.maxFrame)
		if err != nil {
			seq := s.seq
			s.seq++
			switch {
			case errors.Is(err, wire.ErrMalformed):
				s.srv.m.malformed.Add(1)
				s.directErr(seq, wire.ErrCodeMalformed, "malformed frame", true)
			case errors.Is(err, wire.ErrFrameTooLarge):
				s.srv.m.malformed.Add(1)
				s.directErr(seq, wire.ErrCodeFrameTooLarge, "frame too large", true)
			}
			// io.EOF / connection errors: nothing to answer.
			return
		}
		s.srv.m.framesIn.Add(1)
		n := uint64(wire.FrameHeaderLen)
		if payload != nil {
			n += uint64(payload.Len())
		}
		s.srv.m.bytesIn.Add(n)
		if fatal := s.dispatch(op, payload); fatal {
			return
		}
	}
}

// dispatch handles one request frame. It owns payload (possibly nil) and
// either releases it or hands it to a worker. The return value reports a
// fatal protocol violation (stop reading).
func (s *session) dispatch(op wire.Opcode, payload *buf.Chunk) (fatal bool) {
	seq := s.seq
	s.seq++
	switch op {
	case wire.OpHello:
		defer releaseIf(payload)
		if s.ten != nil {
			s.directErr(seq, wire.ErrCodeMalformed, "duplicate hello", true)
			return true
		}
		var pb []byte
		if payload != nil {
			pb = payload.Bytes()
		}
		h, err := wire.DecodeHello(pb)
		if err != nil {
			s.srv.m.malformed.Add(1)
			s.directErr(seq, wire.ErrCodeMalformed, "bad hello", true)
			return true
		}
		if h.Major != wire.ProtoMajor {
			s.directErr(seq, wire.ErrCodeBadVersion, "unsupported protocol version", true)
			return true
		}
		ten := s.srv.tenants[string(h.Tenant)]
		if ten == nil {
			s.directErr(seq, wire.ErrCodeUnknownTenant, "unknown tenant", true)
			return true
		}
		if n := ten.sessions.Add(1); int(n) > int(ten.maxSessions) {
			ten.sessions.Add(-1)
			ten.quotaRejects.Add(1)
			s.directErr(seq, wire.ErrCodeQuota, "tenant session quota exhausted", true)
			return true
		}
		s.ten = ten
		ok := wire.AppendHelloOK(nil, uint32(s.srv.maxFrame), ten.tableNames)
		p := wire.BeginFrame(&s.enc, wire.OpOK)
		copy(s.enc.Frame(len(ok)), ok)
		p.Finish(&s.enc)
		s.send(seq, false)
		return false

	case wire.OpPing:
		releaseIf(payload)
		if s.ten == nil {
			s.directErr(seq, wire.ErrCodeNoHello, "hello required", false)
			return false
		}
		wire.EncodeEmpty(&s.enc, wire.OpOK)
		s.send(seq, false)
		return false

	case wire.OpStats:
		releaseIf(payload)
		if s.ten == nil {
			s.directErr(seq, wire.ErrCodeNoHello, "hello required", false)
			return false
		}
		es := s.srv.db.Stats()
		pb := wire.AppendStats(nil, wire.Stats{
			Commits:        es.Commits,
			Aborts:         es.Aborts,
			TenantInflight: uint32(s.ten.inflight.Load()),
			TenantSessions: uint32(s.ten.sessions.Load()),
		})
		p := wire.BeginFrame(&s.enc, wire.OpOK)
		copy(s.enc.Frame(len(pb)), pb)
		p.Finish(&s.enc)
		s.send(seq, false)
		return false

	case wire.OpTxn:
		if s.ten == nil {
			releaseIf(payload)
			s.directErr(seq, wire.ErrCodeNoHello, "hello required", false)
			return false
		}
		if payload == nil {
			s.srv.m.malformed.Add(1)
			s.directErr(seq, wire.ErrCodeMalformed, "empty txn", false)
			return false
		}
		if s.srv.draining.Load() {
			payload.Release()
			s.directErr(seq, wire.ErrCodeDraining, "server draining", false)
			return false
		}
		if n := s.ten.inflight.Add(1); int(n) > int(s.ten.maxInflight) {
			s.ten.inflight.Add(-1)
			s.ten.quotaRejects.Add(1)
			payload.Release()
			s.directErr(seq, wire.ErrCodeQuota, "tenant inflight quota exhausted", false)
			return false
		}
		s.srv.inflight.Add(1)
		s.taskWG.Add(1)
		select {
		case s.srv.reqCh <- task{sess: s, ten: s.ten, seq: seq, payload: payload}:
		default:
			s.taskWG.Done()
			s.ten.inflight.Add(-1)
			s.srv.inflight.Add(-1)
			s.srv.m.overloadRejects.Add(1)
			payload.Release()
			s.directErr(seq, wire.ErrCodeOverload, "submission queue full", false)
		}
		return false

	default:
		releaseIf(payload)
		s.directErr(seq, wire.ErrCodeUnknownOp, "unknown opcode", false)
		return false
	}
}

// directErr stages an error frame for request seq and queues it in order.
func (s *session) directErr(seq uint64, code wire.ErrCode, msg string, fatal bool) {
	wire.EncodeErr(&s.enc, code, msg)
	s.send(seq, fatal)
}

// send detaches the reader's staged chain and queues it for the writer.
func (s *session) send(seq uint64, fatal bool) {
	head, _, _ := s.enc.Detach()
	s.doneCh <- respond{seq: seq, head: head, fatal: fatal}
}

// reply queues a worker-staged response for t's session; the admission
// reservations drop when the writer finishes with the chain.
func (t task) reply(head *buf.Chunk, fatal bool) {
	t.sess.doneCh <- respond{seq: t.seq, head: head, ten: t.ten, fatal: fatal}
	t.sess.taskWG.Done()
}

// writeLoop streams responses in request order, releasing each chain and
// its admission reservations. After a write error (or a fatal response)
// the connection is dead: the loop keeps draining doneCh so workers and
// the reader never block, releasing everything without writing.
func (s *session) writeLoop() {
	pending := make(map[uint64]respond)
	next := uint64(0)
	dead := false
	for r := range s.doneCh {
		pending[r.seq] = r
		for {
			q, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if !dead {
				if err := s.writeChain(q.head); err != nil {
					dead = true
					// Stop the reader too: a session that cannot answer
					// should not keep consuming requests.
					s.conn.Close()
				}
			}
			releaseChain(q.head)
			if q.ten != nil {
				q.ten.inflight.Add(-1)
				s.srv.inflight.Add(-1)
			}
			if q.fatal && !dead {
				dead = true
				// Unblock the reader, which may be mid-ReadFrame.
				s.conn.Close()
			}
		}
	}
	// The reader only closes doneCh after every outstanding task answered,
	// so pending is empty here unless a sequence number was lost; release
	// defensively regardless.
	for _, q := range pending {
		releaseChain(q.head)
		if q.ten != nil {
			q.ten.inflight.Add(-1)
			s.srv.inflight.Add(-1)
		}
	}
}

// writeChain writes one response chain with a bounded deadline.
func (s *session) writeChain(head *buf.Chunk) error {
	if d, ok := s.conn.(deadlineConn); ok {
		d.SetWriteDeadline(time.Now().Add(writeTimeout))
	}
	var bytes uint64
	for c := head; c != nil; c = c.Next() {
		b := c.Bytes()
		for len(b) > 0 {
			n, err := s.conn.Write(b)
			bytes += uint64(n)
			if err != nil {
				s.srv.m.bytesOut.Add(bytes)
				return err
			}
			b = b[n:]
		}
	}
	s.srv.m.framesOut.Add(1)
	s.srv.m.bytesOut.Add(bytes)
	return nil
}

func releaseIf(c *buf.Chunk) {
	if c != nil {
		c.Release()
	}
}

// netConn is the subset of net.Conn the session needs (tests can use
// pipes).
type netConn interface {
	io.ReadWriteCloser
}

type deadlineConn interface {
	SetWriteDeadline(t time.Time) error
}
