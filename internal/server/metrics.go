package server

import (
	"sync/atomic"

	"cicada/internal/telemetry"
)

// metrics holds the server_* instrumentation (docs/OBSERVABILITY.md
// "Server metrics"). Two ownership regimes coexist:
//
//   - The session layer (one goroutine per connection direction, many of
//     them) updates plain atomics; they are exposed to the registry through
//     CounterFunc/GaugeFunc at scrape time. Worker-sharded counters would
//     be wrong here — shards are single-writer by contract.
//   - The worker loops (one goroutine per engine worker) own their shard of
//     the sharded transaction counters and latency histogram, same as the
//     engine's own hot-path counters.
//
// All atomic fields are always updated; registry registration happens only
// when the DB was opened with Config.Telemetry, so a telemetry-less server
// keeps working (the sharded fields are then nil and guarded at use).
type metrics struct {
	sessionsTotal   atomic.Uint64 // connections accepted
	sessionsActive  atomic.Int64  // connections currently open
	framesIn        atomic.Uint64
	framesOut       atomic.Uint64
	bytesIn         atomic.Uint64
	bytesOut        atomic.Uint64
	malformed       atomic.Uint64 // frames rejected as malformed/oversized
	overloadRejects atomic.Uint64 // txns rejected because the queue was full

	txnCommitted *telemetry.Counter   // nil without telemetry
	txnAborted   *telemetry.Counter   // retry budget exhausted
	txnError     *telemetry.Counter   // rejected or failed without aborting
	txnLatency   *telemetry.Histogram // submit-to-response-staged, ns
}

// register wires the server_* families onto the engine's registry so one
// scrape covers engine and server. Family names are string literals: the
// metricdrift analyzer cross-checks them against docs/OBSERVABILITY.md.
func (s *Server) register(r *telemetry.Registry) {
	m := s.m
	r.CounterFunc("server_sessions_total",
		"Client connections accepted by the server.",
		func() float64 { return float64(m.sessionsTotal.Load()) })
	r.GaugeFunc("server_sessions_active",
		"Client connections currently open.",
		func() float64 { return float64(m.sessionsActive.Load()) })
	r.CounterFunc("server_frames_in_total",
		"Request frames read off client connections.",
		func() float64 { return float64(m.framesIn.Load()) })
	r.CounterFunc("server_frames_out_total",
		"Response frames written to client connections.",
		func() float64 { return float64(m.framesOut.Load()) })
	r.CounterFunc("server_bytes_in_total",
		"Request bytes read off client connections (including frame headers).",
		func() float64 { return float64(m.bytesIn.Load()) })
	r.CounterFunc("server_bytes_out_total",
		"Response bytes written to client connections.",
		func() float64 { return float64(m.bytesOut.Load()) })
	r.CounterFunc("server_malformed_total",
		"Frames rejected as malformed or over the frame bound.",
		func() float64 { return float64(m.malformed.Load()) })
	r.CounterFunc("server_overload_rejections_total",
		"Transactions rejected with the overload code because the submission queue was full.",
		func() float64 { return float64(m.overloadRejects.Load()) })
	r.GaugeFunc("server_queue_depth",
		"Transactions waiting in the submission queue.",
		func() float64 { return float64(len(s.reqCh)) })
	r.GaugeFunc("server_draining",
		"1 while the server is draining for shutdown, else 0.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})

	m.txnCommitted = r.Counter("server_txns_total",
		"Transactions executed by the server, by outcome.",
		telemetry.Label{Key: "status", Value: "committed"})
	m.txnAborted = r.Counter("server_txns_total",
		"Transactions executed by the server, by outcome.",
		telemetry.Label{Key: "status", Value: "aborted"})
	m.txnError = r.Counter("server_txns_total",
		"Transactions executed by the server, by outcome.",
		telemetry.Label{Key: "status", Value: "error"})
	m.txnLatency = r.Histogram("server_txn_latency_ns",
		"Transaction latency from worker pickup to response staged, in nanoseconds.")

	for _, ten := range s.tenants {
		ten := ten
		r.CounterFunc("server_tenant_txns_total",
			"Transactions executed per tenant (any outcome).",
			func() float64 { return float64(ten.txns.Load()) },
			telemetry.Label{Key: "tenant", Value: ten.name})
		r.CounterFunc("server_tenant_quota_rejections_total",
			"Hello and txn rejections with the quota code, per tenant.",
			func() float64 { return float64(ten.quotaRejects.Load()) },
			telemetry.Label{Key: "tenant", Value: ten.name})
	}
}
