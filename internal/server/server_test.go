package server

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"cicada"
	"cicada/internal/client"
	"cicada/internal/server/wire"
)

// testServer spins up a server on a loopback listener with two tenants
// ("acme" with accounts+audit, "globex" with accounts) and returns its
// address. Callers customize quotas via mut before the server starts.
func testServer(t *testing.T, mut func(*Config)) (*Server, string) {
	t.Helper()
	db := cicada.Open(cicada.Config{Workers: 2, Inlining: true, FixedMaxBackoff: -1, Telemetry: true})
	cfg := Config{
		DB: db,
		Tenants: []TenantConfig{
			{Name: "acme", Tables: []string{"accounts", "audit"}},
			{Name: "globex", Tables: []string{"accounts"}},
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEndToEnd(t *testing.T) {
	_, addr := testServer(t, nil)
	c, err := client.Dial(addr, "acme")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	if got := c.Tables(); len(got) != 2 || got[0] != "accounts" || got[1] != "audit" {
		t.Fatalf("tables = %v", got)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}

	// Multi-statement read-write txn: two puts and a read-back.
	res, err := c.Txn().
		Put("accounts", 1, []byte("alice")).
		Put("audit", 1, []byte("created")).
		Get("accounts", 1).
		Exec()
	if err != nil {
		t.Fatalf("txn: %v", err)
	}
	if len(res) != 3 || res[0].Status != wire.StatusOK || string(res[2].Value) != "alice" {
		t.Fatalf("results = %+v", res)
	}

	// Update in place, then read the new value in a read-only txn.
	if _, err := c.Txn().Put("accounts", 1, []byte("alice2")).Exec(); err != nil {
		t.Fatalf("update: %v", err)
	}
	// Read-only txns run on a recent consistent snapshot that can lag a
	// just-committed write by a maintenance interval (§3.1/§4.6), so poll
	// until the snapshot horizon catches up.
	waitFor(t, "read-only snapshot to advance", func() bool {
		res, err = c.ReadOnlyTxn().Get("accounts", 1).Get("accounts", 99).Exec()
		if err != nil {
			t.Fatalf("ro txn: %v", err)
		}
		return res[0].Status == wire.StatusOK && string(res[0].Value) == "alice2"
	})
	if res[1].Status != wire.StatusNotFound {
		t.Fatalf("ro results = %+v", res)
	}

	// Writes inside a read-only txn are rejected with the read_only code.
	_, err = c.ReadOnlyTxn().Put("accounts", 2, []byte("x")).Exec()
	if !client.IsCode(err, wire.ErrCodeReadOnly) {
		t.Fatalf("ro put err = %v", err)
	}

	// Delete, then confirm.
	res, err = c.Txn().Delete("accounts", 1).Get("accounts", 1).Delete("accounts", 1).Exec()
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	if res[0].Status != wire.StatusOK || res[1].Status != wire.StatusNotFound || res[2].Status != wire.StatusNotFound {
		t.Fatalf("delete results = %+v", res)
	}

	// Unknown table fails the whole txn with no_table.
	_, err = c.Txn().Put("nope", 1, nil).Exec()
	if !client.IsCode(err, wire.ErrCodeNoTable) {
		t.Fatalf("no_table err = %v", err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Commits == 0 || st.TenantSessions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTenantIsolation(t *testing.T) {
	_, addr := testServer(t, nil)
	acme, err := client.Dial(addr, "acme")
	if err != nil {
		t.Fatalf("Dial acme: %v", err)
	}
	defer acme.Close()
	globex, err := client.Dial(addr, "globex")
	if err != nil {
		t.Fatalf("Dial globex: %v", err)
	}
	defer globex.Close()

	if _, err := acme.Txn().Put("accounts", 7, []byte("acme-secret")).Exec(); err != nil {
		t.Fatalf("acme put: %v", err)
	}
	// Same table name, same key, different tenant: must not see the row.
	res, err := globex.Txn().Get("accounts", 7).Exec()
	if err != nil {
		t.Fatalf("globex get: %v", err)
	}
	if res[0].Status != wire.StatusNotFound {
		t.Fatalf("cross-tenant read leaked: %+v", res[0])
	}
	// globex's own writes land in its own namespace.
	if _, err := globex.Txn().Put("accounts", 7, []byte("globex-data")).Exec(); err != nil {
		t.Fatalf("globex put: %v", err)
	}
	res, err = acme.Txn().Get("accounts", 7).Exec()
	if err != nil {
		t.Fatalf("acme get: %v", err)
	}
	if string(res[0].Value) != "acme-secret" {
		t.Fatalf("acme sees %q", res[0].Value)
	}
	// globex has no "audit" table.
	_, err = globex.Txn().Get("audit", 1).Exec()
	if !client.IsCode(err, wire.ErrCodeNoTable) {
		t.Fatalf("globex audit err = %v", err)
	}
}

func TestUnknownTenantAndBadVersion(t *testing.T) {
	_, addr := testServer(t, nil)
	if _, err := client.Dial(addr, "initech"); !client.IsCode(err, wire.ErrCodeUnknownTenant) {
		t.Fatalf("unknown tenant err = %v", err)
	}

	// Hand-rolled hello with a wrong major version.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	payload := []byte{99, 0, 4, 0, 'a', 'c', 'm', 'e'}
	if _, err := conn.Write(wire.AppendFrame(nil, wire.OpHello, payload)); err != nil {
		t.Fatalf("write: %v", err)
	}
	code := readErrFrame(t, conn)
	if code != wire.ErrCodeBadVersion {
		t.Fatalf("code = %v", code)
	}
}

func TestNoHelloAndUnknownOp(t *testing.T) {
	_, addr := testServer(t, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	// Ping before hello: typed error, connection stays usable.
	if _, err := conn.Write(wire.AppendFrame(nil, wire.OpPing, nil)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if code := readErrFrame(t, conn); code != wire.ErrCodeNoHello {
		t.Fatalf("code = %v", code)
	}
	// Unknown opcode: typed error, still usable.
	if _, err := conn.Write(wire.AppendFrame(nil, wire.Opcode(0x55), nil)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if code := readErrFrame(t, conn); code != wire.ErrCodeUnknownOp {
		t.Fatalf("code = %v", code)
	}
	// A proper hello still succeeds on the same connection.
	if _, err := conn.Write(wire.AppendFrame(nil, wire.OpHello, wire.AppendHello(nil, "acme"))); err != nil {
		t.Fatalf("write: %v", err)
	}
	op, _ := readFrame(t, conn)
	if op != wire.OpOK {
		t.Fatalf("hello response = %v", op)
	}
}

func TestMalformedFrameClosesConnection(t *testing.T) {
	srv, addr := testServer(t, func(c *Config) { c.MaxFrame = 1 << 12 })
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	// Length over the bound: frame_too_large, then the server closes.
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], 1<<20)
	hdr[4] = byte(wire.OpTxn)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatalf("write: %v", err)
	}
	if code := readErrFrame(t, conn); code != wire.ErrCodeFrameTooLarge {
		t.Fatalf("code = %v", code)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("connection not closed: %v", err)
	}
	// No pooled chunks may leak from the rejected frame.
	waitFor(t, "chunks released", func() bool { return srv.pool.Live() == 0 })
}

func TestInflightQuotaRejection(t *testing.T) {
	gate := make(chan struct{})
	arrived := make(chan struct{}, 16)
	var srv *Server
	srv, addr := testServer(t, func(c *Config) {
		c.Tenants = []TenantConfig{{Name: "acme", Tables: []string{"accounts"}, MaxInflight: 2}}
	})
	srv.testGate = func() { arrived <- struct{}{}; <-gate }

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write(wire.AppendFrame(nil, wire.OpHello, wire.AppendHello(nil, "acme"))); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if op, _ := readFrame(t, conn); op != wire.OpOK {
		t.Fatal("hello failed")
	}

	// Pipeline three txns without reading responses. With MaxInflight=2 and
	// the workers gated, the third must be rejected with the quota code.
	txn := wire.AppendTxnHeader(nil, 0, 1)
	txn = wire.AppendPut(txn, "accounts", 1, []byte("v"))
	raw := wire.AppendFrame(nil, wire.OpTxn, txn)
	for i := 0; i < 3; i++ {
		if _, err := conn.Write(raw); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	ten := srv.tenants["acme"]
	waitFor(t, "quota rejection", func() bool { return ten.quotaRejects.Load() == 1 })
	close(gate)

	// Responses arrive in request order: result, result, quota error.
	for i := 0; i < 2; i++ {
		if op, _ := readFrame(t, conn); op != wire.OpResult {
			t.Fatalf("response %d = %v", i, op)
		}
	}
	if code := readErrFrame(t, conn); code != wire.ErrCodeQuota {
		t.Fatalf("code = %v", code)
	}
	<-arrived
	<-arrived
}

func TestSessionQuotaRejection(t *testing.T) {
	_, addr := testServer(t, func(c *Config) {
		c.Tenants = []TenantConfig{{Name: "acme", Tables: []string{"accounts"}, MaxSessions: 1}}
	})
	c1, err := client.Dial(addr, "acme")
	if err != nil {
		t.Fatalf("first dial: %v", err)
	}
	defer c1.Close()
	if _, err := client.Dial(addr, "acme"); !client.IsCode(err, wire.ErrCodeQuota) {
		t.Fatalf("second dial err = %v", err)
	}
	// Releasing the first session frees the slot.
	c1.Close()
	waitFor(t, "session slot release", func() bool {
		c2, err := client.Dial(addr, "acme")
		if err != nil {
			return false
		}
		c2.Close()
		return true
	})
}

func TestOverloadRejection(t *testing.T) {
	gate := make(chan struct{})
	arrived := make(chan struct{}, 16)
	var srv *Server
	srv, addr := testServer(t, func(c *Config) {
		c.QueueDepth = 1
		c.Tenants = []TenantConfig{{Name: "acme", Tables: []string{"accounts"}, MaxInflight: 100}}
	})
	srv.testGate = func() { arrived <- struct{}{}; <-gate }

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write(wire.AppendFrame(nil, wire.OpHello, wire.AppendHello(nil, "acme"))); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if op, _ := readFrame(t, conn); op != wire.OpOK {
		t.Fatal("hello failed")
	}

	txn := wire.AppendTxnHeader(nil, 0, 1)
	txn = wire.AppendPut(txn, "accounts", 1, []byte("v"))
	raw := wire.AppendFrame(nil, wire.OpTxn, txn)

	// Fill both workers, wait until they are gated, then fill the
	// depth-1 queue; the next submission must overflow.
	for i := 0; i < 2; i++ {
		if _, err := conn.Write(raw); err != nil {
			t.Fatalf("txn: %v", err)
		}
	}
	<-arrived
	<-arrived
	for i := 0; i < 2; i++ {
		if _, err := conn.Write(raw); err != nil {
			t.Fatalf("txn: %v", err)
		}
	}
	waitFor(t, "overload rejection", func() bool { return srv.m.overloadRejects.Load() == 1 })
	close(gate)

	for i := 0; i < 3; i++ {
		if op, _ := readFrame(t, conn); op != wire.OpResult {
			t.Fatalf("response %d = %v", i, op)
		}
	}
	if code := readErrFrame(t, conn); code != wire.ErrCodeOverload {
		t.Fatalf("code = %v", code)
	}
}

func TestGracefulDrain(t *testing.T) {
	gate := make(chan struct{})
	arrived := make(chan struct{}, 16)
	var srv *Server
	srv, addr := testServer(t, nil)
	srv.testGate = func() { arrived <- struct{}{}; <-gate }

	c, err := client.Dial(addr, "acme")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// Hold one txn in flight on a worker, then start draining.
	type execResult struct {
		res []wire.Result
		err error
	}
	execDone := make(chan execResult, 1)
	go func() {
		res, err := c.Txn().Put("accounts", 5, []byte("survivor")).Get("accounts", 5).Exec()
		execDone <- execResult{res, err}
	}()
	<-arrived

	drainDone := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { drainDone <- srv.Drain(ctx) }()
	waitFor(t, "draining flag", func() bool { return srv.draining.Load() })

	// While draining: new connections are refused and new txns on live
	// sessions get the draining code.
	waitFor(t, "listener closed", func() bool {
		c2, err := client.Dial(addr, "acme")
		if err != nil {
			return true
		}
		c2.Close()
		return false
	})
	c2, err := client.Dial(addr, "acme")
	if err == nil {
		c2.Close()
		t.Fatal("dial succeeded while draining")
	}

	// Drain must not finish while the txn is still in flight.
	select {
	case err := <-drainDone:
		t.Fatalf("drain finished with txn in flight: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Release the worker: the in-flight txn completes, its response is
	// flushed to the client, and drain finishes cleanly.
	close(gate)
	r := <-execDone
	if r.err != nil {
		t.Fatalf("in-flight txn failed during drain: %v", r.err)
	}
	if len(r.res) != 2 || string(r.res[1].Value) != "survivor" {
		t.Fatalf("in-flight results = %+v", r.res)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	waitFor(t, "chunks released", func() bool { return srv.pool.Live() == 0 })
}

func TestDrainRejectsNewTxns(t *testing.T) {
	gate := make(chan struct{})
	arrived := make(chan struct{}, 16)
	var srv *Server
	srv, addr := testServer(t, nil)
	srv.testGate = func() { arrived <- struct{}{}; <-gate }

	blocker, err := client.Dial(addr, "acme")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer blocker.Close()
	other, err := client.Dial(addr, "globex")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer other.Close()

	go blocker.Txn().Put("accounts", 1, []byte("x")).Exec()
	<-arrived

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(ctx) }()
	waitFor(t, "draining flag", func() bool { return srv.draining.Load() })

	if _, err := other.Txn().Put("accounts", 1, []byte("y")).Exec(); !client.IsCode(err, wire.ErrCodeDraining) {
		t.Fatalf("draining err = %v", err)
	}
	close(gate)
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// readFrame reads one frame off a raw test connection.
func readFrame(t *testing.T, conn net.Conn) (wire.Opcode, []byte) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var hdr [5]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatalf("read frame header: %v", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(conn, payload); err != nil {
		t.Fatalf("read frame payload: %v", err)
	}
	return wire.Opcode(hdr[4]), payload
}

// readErrFrame reads one frame and asserts it is an err frame, returning
// its code.
func readErrFrame(t *testing.T, conn net.Conn) wire.ErrCode {
	t.Helper()
	op, payload := readFrame(t, conn)
	if op != wire.OpErr {
		t.Fatalf("opcode = %v, want err", op)
	}
	code, _, err := wire.DecodeErr(payload)
	if err != nil {
		t.Fatalf("DecodeErr: %v", err)
	}
	return code
}

// TestConcurrentClients is the session race test (run under -race via
// RACE_PKGS): several clients per tenant hammer overlapping keys while a
// drain closes everything at the end.
func TestConcurrentClients(t *testing.T) {
	srv, addr := testServer(t, nil)
	const clientsPerTenant = 4
	const txnsPerClient = 50

	errCh := make(chan error, 2*clientsPerTenant)
	for _, tenant := range []string{"acme", "globex"} {
		for i := 0; i < clientsPerTenant; i++ {
			go func(tenant string, id int) {
				c, err := client.Dial(addr, tenant)
				if err != nil {
					errCh <- err
					return
				}
				defer c.Close()
				for n := 0; n < txnsPerClient; n++ {
					key := uint64(n % 8) // deliberate key overlap
					_, err := c.Txn().
						Put("accounts", key, []byte{byte(id), byte(n)}).
						Get("accounts", key).
						Exec()
					if err != nil && !errors.Is(err, cicada.ErrAborted) {
						// Abort-taxonomy errors are legal under contention
						// when the retry budget runs dry.
						if se, ok := err.(*client.ServerError); !ok || se.Code < wire.ErrCodeAbortRTSEarly {
							errCh <- err
							return
						}
					}
				}
				errCh <- nil
			}(tenant, i)
		}
	}
	for i := 0; i < 2*clientsPerTenant; i++ {
		if err := <-errCh; err != nil {
			t.Fatalf("client error: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	waitFor(t, "chunks released", func() bool { return srv.pool.Live() == 0 })
	if n := srv.m.sessionsActive.Load(); n != 0 {
		t.Fatalf("sessions still active after drain: %d", n)
	}
}

// TestServerMetrics checks that the server_* families show up on the
// engine registry with sane values.
func TestServerMetrics(t *testing.T) {
	srv, addr := testServer(t, nil)
	c, err := client.Dial(addr, "acme")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Txn().Put("accounts", 1, []byte("v")).Exec(); err != nil {
		t.Fatalf("txn: %v", err)
	}
	vals := srv.db.MetricValues()
	if vals == nil {
		t.Fatal("no metric values")
	}
	for _, name := range []string{
		"server_sessions_total",
		"server_sessions_active",
		"server_frames_in_total",
		"server_frames_out_total",
		"server_bytes_in_total",
		"server_bytes_out_total",
		"server_malformed_total",
		"server_overload_rejections_total",
		"server_queue_depth",
		"server_draining",
		"server_txns_total_committed",
		"server_tenant_txns_total_acme",
		"server_tenant_quota_rejections_total_acme",
	} {
		if _, ok := vals[name]; !ok {
			t.Errorf("metric %s not registered", name)
		}
	}
	if vals["server_txns_total_committed"] < 1 {
		t.Errorf("committed counter = %v", vals["server_txns_total_committed"])
	}
	if vals["server_sessions_total"] < 1 || vals["server_frames_in_total"] < 2 {
		t.Errorf("session counters: %v / %v", vals["server_sessions_total"], vals["server_frames_in_total"])
	}
}
