package server

import (
	"fmt"
	"sync/atomic"

	"cicada"
	"cicada/internal/server/wire"
)

// TenantConfig provisions one tenant namespace. All tenants (and their
// tables) are created at server startup: the engine's table registry is
// sized once, before workers run, so the hot path never takes a
// registration lock (core.Engine.CreateTable is not safe concurrently with
// transactions).
type TenantConfig struct {
	// Name identifies the tenant in the hello handshake and in the
	// per-tenant metric labels. Must be unique, non-empty, and at most
	// wire.MaxTableName bytes.
	Name string
	// Tables is the tenant's table namespace. Each table is backed by an
	// engine table named "<tenant>/<table>" plus a unique hash index, so
	// two tenants' same-named tables share nothing.
	Tables []string
	// MaxSessions bounds concurrently open sessions for this tenant;
	// exceeding it rejects the hello with the quota error code.
	// 0 selects DefaultMaxSessions.
	MaxSessions int
	// MaxInflight bounds this tenant's submitted-but-unanswered
	// transactions; exceeding it rejects the txn with the quota error
	// code. 0 selects DefaultMaxInflight.
	MaxInflight int
	// TableCapacity sizes each table's hash index (expected keys).
	// 0 selects DefaultTableCapacity.
	TableCapacity int
}

// Per-tenant quota defaults.
const (
	DefaultMaxSessions   = 64
	DefaultMaxInflight   = 128
	DefaultTableCapacity = 1 << 16
)

// tenantTable is one table of a tenant's namespace: the backing engine
// table plus the unique key index that gives it a u64 key space.
type tenantTable struct {
	tbl *cicada.Table
	idx *cicada.HashIndex
}

// tenant is the runtime state of one provisioned tenant. The counters are
// plain atomics because they are touched from session goroutines (many
// writers), unlike the worker-sharded engine counters.
type tenant struct {
	name        string
	tables      map[string]*tenantTable
	tableNames  []string
	maxSessions int32
	maxInflight int32

	sessions     atomic.Int32  // open sessions (admission + stats)
	inflight     atomic.Int32  // submitted, response not yet written
	txns         atomic.Uint64 // transactions executed (any outcome)
	quotaRejects atomic.Uint64 // hello/txn rejections with the quota code
}

func buildTenants(db *cicada.DB, cfgs []TenantConfig) (map[string]*tenant, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("server: no tenants configured")
	}
	tenants := make(map[string]*tenant, len(cfgs))
	for _, tc := range cfgs {
		if tc.Name == "" || len(tc.Name) > wire.MaxTableName {
			return nil, fmt.Errorf("server: bad tenant name %q", tc.Name)
		}
		if _, dup := tenants[tc.Name]; dup {
			return nil, fmt.Errorf("server: duplicate tenant %q", tc.Name)
		}
		if len(tc.Tables) == 0 {
			return nil, fmt.Errorf("server: tenant %q has no tables", tc.Name)
		}
		ten := &tenant{
			name:        tc.Name,
			tables:      make(map[string]*tenantTable, len(tc.Tables)),
			maxSessions: int32(valOr(tc.MaxSessions, DefaultMaxSessions)),
			maxInflight: int32(valOr(tc.MaxInflight, DefaultMaxInflight)),
		}
		capacity := valOr(tc.TableCapacity, DefaultTableCapacity)
		for _, name := range tc.Tables {
			if name == "" || len(name) > wire.MaxTableName {
				return nil, fmt.Errorf("server: tenant %q: bad table name %q", tc.Name, name)
			}
			if _, dup := ten.tables[name]; dup {
				return nil, fmt.Errorf("server: tenant %q: duplicate table %q", tc.Name, name)
			}
			qual := tc.Name + "/" + name
			ten.tables[name] = &tenantTable{
				tbl: db.CreateTable(qual),
				idx: db.CreateHashIndex(qual, capacity, true),
			}
			ten.tableNames = append(ten.tableNames, name)
		}
		tenants[tc.Name] = ten
	}
	return tenants, nil
}

func valOr(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}
