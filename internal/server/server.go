// Package server is the cicada-server network service layer: it multiplexes
// many client connections onto the embedded engine's fixed worker set,
// giving each tenant an isolated table namespace with admission quotas.
// docs/SERVER.md describes the architecture; docs/PROTOCOL.md the wire
// format.
//
// The runtime shape follows the engine's own threading discipline. Each
// connection gets two goroutines that only move bytes (a reader that frames
// requests into pooled chunks and a writer that streams staged response
// chains back); transactions execute exclusively on the fixed worker
// loops, one per engine worker, fed from one bounded submission queue.
// No goroutine is ever spawned per request, and the response encode path
// stages frames directly on internal/buf chunks — zero allocations per
// response at steady state (pinned by TestEncodeRespAllocs in the wire
// package and the hotpathalloc gate).
package server

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cicada"
	"cicada/internal/buf"
	"cicada/internal/server/wire"
)

// Config parameterizes a Server.
type Config struct {
	// DB is the embedded engine. The server owns every worker handle
	// (DB.Worker(0..Workers-1)); nothing else may run transactions on
	// this DB while the server is up. Required.
	DB *cicada.DB
	// Tenants statically provisions the tenant namespaces. Required,
	// non-empty.
	Tenants []TenantConfig
	// MaxFrame bounds a request frame (opcode + payload) and is advertised
	// in the hello response. 0 selects wire.DefaultMaxFrame.
	MaxFrame int
	// QueueDepth bounds the shared submission queue; a full queue rejects
	// txns with the overload code. 0 selects DefaultQueueDepth.
	QueueDepth int
	// TxnAttempts is the per-transaction conflict-retry budget; an aborted
	// transaction that exhausts it returns its abort reason as a wire
	// error code. 0 selects DefaultTxnAttempts.
	TxnAttempts int
}

// Server-wide defaults.
const (
	DefaultQueueDepth  = 256
	DefaultTxnAttempts = 8

	// idleMaintainEvery is how often an idle worker loop runs engine
	// maintenance so the GC horizon keeps advancing while no requests
	// flow (the engine's quiescence protocol needs every worker to keep
	// declaring its clock).
	idleMaintainEvery = 200 * time.Microsecond
	// writeTimeout bounds one response write so a stalled client cannot
	// wedge a session writer (the chain is dropped and the session marked
	// dead instead).
	writeTimeout = 30 * time.Second
)

// task is one admitted transaction traveling from a session reader to a
// worker loop. The payload chunk is owned by the worker until it stages a
// response (decoded statements alias it).
type task struct {
	sess    *session
	ten     *tenant
	seq     uint64
	payload *buf.Chunk
}

// workerScratch is one worker loop's reusable decode state, indexed by
// worker ID and touched only by that loop.
type workerScratch struct {
	stmts []wire.Stmt
	tabs  []*tenantTable
}

// Server multiplexes client sessions onto the engine's worker set.
type Server struct {
	db          *cicada.DB
	pool        *buf.Pool
	tenants     map[string]*tenant
	reqCh       chan task
	stopCh      chan struct{}
	stopOnce    sync.Once
	workersWG   sync.WaitGroup
	sessWG      sync.WaitGroup
	maxFrame    int
	txnAttempts int
	scratch     []workerScratch
	m           *metrics

	draining atomic.Bool
	inflight atomic.Int64 // admitted txns whose response is not yet written

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	// testGate, when set (tests only), is called by a worker loop before
	// executing each transaction; blocking it holds transactions in flight
	// deterministically for quota and drain tests.
	testGate func()
}

// New provisions tenants on db and returns a server ready to Serve. It
// must be called before any transactions run on db (table registration is
// not concurrent-safe).
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	tenants, err := buildTenants(cfg.DB, cfg.Tenants)
	if err != nil {
		return nil, err
	}
	s := &Server{
		db:          cfg.DB,
		pool:        buf.NewPool(0, 0),
		tenants:     tenants,
		reqCh:       make(chan task, valOr(cfg.QueueDepth, DefaultQueueDepth)),
		stopCh:      make(chan struct{}),
		maxFrame:    valOr(cfg.MaxFrame, wire.DefaultMaxFrame),
		txnAttempts: valOr(cfg.TxnAttempts, DefaultTxnAttempts),
		scratch:     make([]workerScratch, cfg.DB.Workers()),
		conns:       make(map[net.Conn]struct{}),
		m:           &metrics{},
	}
	if reg := cfg.DB.Telemetry(); reg != nil {
		s.register(reg)
	}
	s.workersWG.Add(s.db.Workers())
	for id := 0; id < s.db.Workers(); id++ {
		go s.workerLoop(id)
	}
	return s, nil
}

// Serve accepts connections on ln until the listener is closed (Drain and
// Close do this). It returns nil on a drain-initiated stop, else the
// accept error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed || s.draining.Load() {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.m.sessionsTotal.Add(1)
		s.m.sessionsActive.Add(1)
		s.sessWG.Add(1)
		go func(c net.Conn) {
			defer s.sessWG.Done()
			newSession(s, c).run()
			s.m.sessionsActive.Add(-1)
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}(c)
	}
}

// Drain gracefully shuts the server down: stop accepting, let every
// admitted transaction finish and its response flush, then stop the worker
// loops and close remaining sessions. It returns ctx.Err() if the context
// expires first (remaining work is then force-closed), else nil.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	ln := s.ln
	alreadyClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	if alreadyClosed {
		return nil
	}
	if ln != nil {
		ln.Close()
	}

	// Phase 1: wait for the in-flight count to hit zero. Every admitted
	// txn holds a reference until its response is written (or its session
	// dies), so zero means all accepted work is answered.
	var drainErr error
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			drainErr = ctx.Err()
		case <-time.After(500 * time.Microsecond):
		}
		if drainErr != nil {
			break
		}
	}

	// Phase 2: stop the worker loops (each drains the queue once more
	// before exiting, so nothing admitted is stranded).
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.workersWG.Wait()

	// Phase 3: reap any straggler the workers never picked up (possible
	// only when the context expired early): answer it with the draining
	// code so its session can finish its bookkeeping.
	var bw buf.Writer
	bw.Init(s.pool)
	for {
		select {
		case t := <-s.reqCh:
			t.payload.Release()
			wire.EncodeErr(&bw, wire.ErrCodeDraining, "server draining")
			head, _, _ := bw.Detach()
			t.reply(head, false)
		default:
			goto reaped
		}
	}
reaped:

	// Phase 4: close every remaining connection; session goroutines
	// unblock from reads/writes and exit.
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.sessWG.Wait()
	return drainErr
}

// Close shuts down immediately: in-flight work is abandoned (workers still
// finish the transaction they are on) and connections are force-closed.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(ctx)
	return nil
}

// workerLoop is worker id's execution loop: it owns the engine worker
// handle and a staging writer, executes queued transactions, and runs
// engine maintenance while idle.
func (s *Server) workerLoop(id int) {
	defer s.workersWG.Done()
	w := s.db.Worker(id)
	var bw buf.Writer
	bw.Init(s.pool)
	tick := time.NewTicker(idleMaintainEvery)
	defer tick.Stop()
	for {
		select {
		case t := <-s.reqCh:
			s.execTxn(w, id, &bw, t)
		case <-tick.C:
			w.Idle()
		case <-s.stopCh:
			for {
				select {
				case t := <-s.reqCh:
					s.execTxn(w, id, &bw, t)
				default:
					return
				}
			}
		}
	}
}

// releaseChain drops every chunk of a detached chain.
func releaseChain(head *buf.Chunk) {
	for c := head; c != nil; {
		n := c.Next()
		c.Release()
		c = n
	}
}

// execTxn decodes, executes, and answers one transaction on worker id. It
// owns t.payload and releases it once the response is staged.
func (s *Server) execTxn(w *cicada.Worker, id int, bw *buf.Writer, t task) {
	defer t.payload.Release()
	if s.testGate != nil {
		s.testGate()
	}
	start := time.Now()
	sc := &s.scratch[id]

	flags, stmts, err := wire.DecodeTxn(t.payload.Bytes(), sc.stmts[:0])
	sc.stmts = stmts[:0]
	if err != nil {
		s.m.malformed.Add(1)
		s.replyErr(bw, t, wire.ErrCodeMalformed, "bad txn payload", id)
		return
	}

	// Resolve every statement's table in the tenant namespace up front
	// (the set is static, so one failed lookup fails the whole txn before
	// any engine work).
	tabs := sc.tabs[:0]
	readOnly := flags&wire.TxnReadOnly != 0
	for i := range stmts {
		st := &stmts[i]
		if readOnly && st.Kind != wire.StGet {
			s.replyErr(bw, t, wire.ErrCodeReadOnly, "write in read-only txn", id)
			return
		}
		tt := t.ten.tables[string(st.Table)]
		if tt == nil {
			s.replyErr(bw, t, wire.ErrCodeNoTable, "unknown table", id)
			return
		}
		tabs = append(tabs, tt)
	}
	sc.tabs = tabs[:0]

	// The closure may run multiple times (conflict retries); each attempt
	// restarts the staged result frame from scratch.
	var patch wire.FramePatch
	run := func(tx *cicada.Txn) error {
		if head, _, _ := bw.Detach(); head != nil {
			releaseChain(head)
		}
		patch = wire.BeginFrame(bw, wire.OpResult)
		wire.AppendResultCount(bw, len(stmts))
		for i := range stmts {
			if err := execStmt(tx, bw, &stmts[i], tabs[i]); err != nil {
				return err
			}
		}
		return nil
	}

	if readOnly {
		err = w.RunReadOnly(run)
	} else {
		err = w.RunLimited(run, s.txnAttempts)
	}
	t.ten.txns.Add(1)
	if s.m.txnLatency != nil {
		s.m.txnLatency.Shard(id).ObserveDuration(time.Since(start))
	}
	if err != nil {
		// Drop the partially staged attempt before answering.
		if head, _, _ := bw.Detach(); head != nil {
			releaseChain(head)
		}
		code, msg := classify(err)
		if s.m.txnAborted != nil {
			if code >= wire.ErrCodeAbortRTSEarly {
				s.m.txnAborted.Shard(id).Inc()
			} else {
				s.m.txnError.Shard(id).Inc()
			}
		}
		wire.EncodeErr(bw, code, msg)
		head, _, _ := bw.Detach()
		t.reply(head, false)
		return
	}
	if s.m.txnCommitted != nil {
		s.m.txnCommitted.Shard(id).Inc()
	}
	patch.Finish(bw)
	head, _, _ := bw.Detach()
	t.reply(head, false)
}

// execStmt runs one statement inside tx, staging its result.
func execStmt(tx *cicada.Txn, bw *buf.Writer, st *wire.Stmt, tt *tenantTable) error {
	switch st.Kind {
	case wire.StGet:
		rid, err := tt.idx.Get(tx, st.Key)
		if errors.Is(err, cicada.ErrNotFound) {
			wire.AppendResult(bw, wire.StatusNotFound, nil)
			return nil
		}
		if err != nil {
			return err
		}
		val, err := tx.Read(tt.tbl, rid)
		if err != nil {
			return err
		}
		wire.AppendResult(bw, wire.StatusOK, val)
	case wire.StPut:
		rid, err := tt.idx.Get(tx, st.Key)
		switch {
		case errors.Is(err, cicada.ErrNotFound):
			rid, b, ierr := tx.Insert(tt.tbl, len(st.Value))
			if ierr != nil {
				return ierr
			}
			copy(b, st.Value)
			if ierr := tt.idx.Insert(tx, st.Key, rid); ierr != nil {
				return ierr
			}
		case err != nil:
			return err
		default:
			b, uerr := tx.Update(tt.tbl, rid, len(st.Value))
			if uerr != nil {
				return uerr
			}
			copy(b, st.Value)
		}
		wire.AppendResult(bw, wire.StatusOK, nil)
	case wire.StDelete:
		rid, err := tt.idx.Get(tx, st.Key)
		if errors.Is(err, cicada.ErrNotFound) {
			wire.AppendResult(bw, wire.StatusNotFound, nil)
			return nil
		}
		if err != nil {
			return err
		}
		if err := tx.Delete(tt.tbl, rid); err != nil {
			return err
		}
		if err := tt.idx.Delete(tx, st.Key, rid); err != nil {
			return err
		}
		wire.AppendResult(bw, wire.StatusOK, nil)
	}
	return nil
}

// classify maps an engine error to its wire code (docs/PROTOCOL.md error
// table).
func classify(err error) (wire.ErrCode, string) {
	var ab *cicada.AbortedError
	switch {
	case errors.As(err, &ab):
		return wire.AbortCode(uint8(ab.Reason)), "retry budget exhausted"
	case errors.Is(err, cicada.ErrNotFound):
		return wire.ErrCodeNotFound, "not found"
	case errors.Is(err, cicada.ErrDuplicate):
		return wire.ErrCodeDuplicate, "duplicate key"
	case errors.Is(err, cicada.ErrReadOnly):
		return wire.ErrCodeReadOnly, "write in read-only txn"
	default:
		return wire.ErrCodeInternal, "internal error"
	}
}

// replyErr stages an error frame on the worker's writer and answers t.
func (s *Server) replyErr(bw *buf.Writer, t task, code wire.ErrCode, msg string, id int) {
	if s.m.txnError != nil {
		s.m.txnError.Shard(id).Inc()
	}
	t.ten.txns.Add(1)
	wire.EncodeErr(bw, code, msg)
	head, _, _ := bw.Detach()
	t.reply(head, false)
}
