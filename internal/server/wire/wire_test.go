package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"cicada/internal/buf"
)

// drain flattens a detached chunk chain into one byte slice and releases
// every chunk.
func drain(head *buf.Chunk) []byte {
	var out []byte
	for c := head; c != nil; {
		out = append(out, c.Bytes()...)
		next := c.Next()
		c.Release()
		c = next
	}
	return out
}

// splitFrames parses a raw byte stream into (opcode, payload) frames using
// ReadFrame, asserting the stream terminates exactly at EOF.
func splitFrames(t *testing.T, raw []byte, pool *buf.Pool) []struct {
	op      Opcode
	payload []byte
} {
	t.Helper()
	var frames []struct {
		op      Opcode
		payload []byte
	}
	r := bytes.NewReader(raw)
	for {
		op, c, err := ReadFrame(r, pool, DefaultMaxFrame)
		if err == io.EOF {
			return frames
		}
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		var payload []byte
		if c != nil {
			payload = append(payload, c.Bytes()...)
			c.Release()
		}
		frames = append(frames, struct {
			op      Opcode
			payload []byte
		}{op, payload})
	}
}

func TestHelloRoundTrip(t *testing.T) {
	raw := AppendFrame(nil, OpHello, AppendHello(nil, "acme"))
	pool := buf.NewPool(256, 4)
	frames := splitFrames(t, raw, pool)
	if len(frames) != 1 || frames[0].op != OpHello {
		t.Fatalf("frames = %+v", frames)
	}
	h, err := DecodeHello(frames[0].payload)
	if err != nil {
		t.Fatalf("DecodeHello: %v", err)
	}
	if h.Major != ProtoMajor || h.Minor != ProtoMinor || string(h.Tenant) != "acme" {
		t.Fatalf("hello = %+v", h)
	}
	if pool.Live() != 0 {
		t.Fatalf("leaked %d chunks", pool.Live())
	}
}

func TestHelloIgnoresTrailingBytes(t *testing.T) {
	payload := AppendHello(nil, "acme")
	payload = append(payload, 0xde, 0xad) // future minor-version extension
	h, err := DecodeHello(payload)
	if err != nil {
		t.Fatalf("DecodeHello with trailing bytes: %v", err)
	}
	if string(h.Tenant) != "acme" {
		t.Fatalf("tenant = %q", h.Tenant)
	}
}

func TestTxnRoundTrip(t *testing.T) {
	payload := AppendTxnHeader(nil, TxnReadOnly, 3)
	payload = AppendGet(payload, "accounts", 42)
	payload = AppendPut(payload, "audit", 7, []byte("hello"))
	payload = AppendDelete(payload, "accounts", 99)

	flags, stmts, err := DecodeTxn(payload, nil)
	if err != nil {
		t.Fatalf("DecodeTxn: %v", err)
	}
	if flags != TxnReadOnly {
		t.Fatalf("flags = %d", flags)
	}
	want := []Stmt{
		{Kind: StGet, Table: []byte("accounts"), Key: 42},
		{Kind: StPut, Table: []byte("audit"), Key: 7, Value: []byte("hello")},
		{Kind: StDelete, Table: []byte("accounts"), Key: 99},
	}
	if len(stmts) != len(want) {
		t.Fatalf("got %d stmts", len(stmts))
	}
	for i, s := range stmts {
		w := want[i]
		if s.Kind != w.Kind || !bytes.Equal(s.Table, w.Table) || s.Key != w.Key || !bytes.Equal(s.Value, w.Value) {
			t.Fatalf("stmt %d = %+v, want %+v", i, s, w)
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	pool := buf.NewPool(64, 4) // small chunks: force the frame to span chunks
	var w buf.Writer
	w.Init(pool)

	big := bytes.Repeat([]byte("v"), 200)
	p := BeginFrame(&w, OpResult)
	AppendResultCount(&w, 3)
	AppendResult(&w, StatusOK, []byte("small"))
	AppendResult(&w, StatusNotFound, nil)
	AppendResult(&w, StatusOK, big)
	p.Finish(&w)

	head, _, _ := w.Detach()
	raw := drain(head)

	frames := splitFrames(t, raw, buf.NewPool(1024, 4))
	if len(frames) != 1 || frames[0].op != OpResult {
		t.Fatalf("frames = %+v", frames)
	}
	res, err := DecodeResults(frames[0].payload, nil)
	if err != nil {
		t.Fatalf("DecodeResults: %v", err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Status != StatusOK || string(res[0].Value) != "small" {
		t.Fatalf("res[0] = %+v", res[0])
	}
	if res[1].Status != StatusNotFound || len(res[1].Value) != 0 {
		t.Fatalf("res[1] = %+v", res[1])
	}
	if res[2].Status != StatusOK || !bytes.Equal(res[2].Value, big) {
		t.Fatalf("res[2] mismatch")
	}
	if pool.Live() != 0 {
		t.Fatalf("leaked %d chunks", pool.Live())
	}
}

func TestErrRoundTrip(t *testing.T) {
	pool := buf.NewPool(256, 4)
	var w buf.Writer
	w.Init(pool)
	EncodeErr(&w, ErrCodeQuota, "tenant quota exhausted")
	head, _, _ := w.Detach()
	raw := drain(head)

	frames := splitFrames(t, raw, pool)
	if len(frames) != 1 || frames[0].op != OpErr {
		t.Fatalf("frames = %+v", frames)
	}
	code, msg, err := DecodeErr(frames[0].payload)
	if err != nil {
		t.Fatalf("DecodeErr: %v", err)
	}
	if code != ErrCodeQuota || msg != "tenant quota exhausted" {
		t.Fatalf("code=%v msg=%q", code, msg)
	}
	if pool.Live() != 0 {
		t.Fatalf("leaked %d chunks", pool.Live())
	}
}

func TestEmptyFrameRoundTrip(t *testing.T) {
	pool := buf.NewPool(256, 4)
	var w buf.Writer
	w.Init(pool)
	EncodeEmpty(&w, OpOK)
	head, _, _ := w.Detach()
	raw := drain(head)

	frames := splitFrames(t, raw, pool)
	if len(frames) != 1 || frames[0].op != OpOK || len(frames[0].payload) != 0 {
		t.Fatalf("frames = %+v", frames)
	}
}

func TestHelloOKRoundTrip(t *testing.T) {
	payload := AppendHelloOK(nil, DefaultMaxFrame, []string{"accounts", "audit"})
	h, err := DecodeHelloOK(payload)
	if err != nil {
		t.Fatalf("DecodeHelloOK: %v", err)
	}
	if h.Major != ProtoMajor || h.MaxFrame != DefaultMaxFrame {
		t.Fatalf("hello-ok = %+v", h)
	}
	if len(h.Tables) != 2 || h.Tables[0] != "accounts" || h.Tables[1] != "audit" {
		t.Fatalf("tables = %v", h.Tables)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	in := Stats{Commits: 123456, Aborts: 7, TenantInflight: 3, TenantSessions: 9}
	out, err := DecodeStats(AppendStats(nil, in))
	if err != nil {
		t.Fatalf("DecodeStats: %v", err)
	}
	if out != in {
		t.Fatalf("stats = %+v, want %+v", out, in)
	}
}

func TestReadFrameLimits(t *testing.T) {
	pool := buf.NewPool(256, 4)

	// Zero-length frame: malformed.
	_, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0}), pool, DefaultMaxFrame)
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero-length err = %v", err)
	}

	// Over-limit length: frame_too_large.
	raw := AppendFrame(nil, OpPing, bytes.Repeat([]byte{0}, 64))
	_, _, err = ReadFrame(bytes.NewReader(raw), pool, 16)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize err = %v", err)
	}

	// Truncated payload: io error, chunk released.
	raw = AppendFrame(nil, OpTxn, bytes.Repeat([]byte{1}, 100))
	_, _, err = ReadFrame(bytes.NewReader(raw[:20]), pool, DefaultMaxFrame)
	if err == nil {
		t.Fatal("truncated payload: want error")
	}
	if pool.Live() != 0 {
		t.Fatalf("leaked %d chunks after truncated read", pool.Live())
	}
}

func TestDecodeTxnMalformed(t *testing.T) {
	good := AppendTxnHeader(nil, 0, 1)
	good = AppendPut(good, "t", 1, []byte("v"))

	cases := map[string][]byte{
		"empty":             nil,
		"flags only":        {0},
		"zero statements":   AppendTxnHeader(nil, 0, 0),
		"count over max":    AppendTxnHeader(nil, 0, MaxStatements+1),
		"count over actual": AppendTxnHeader(nil, 0, 2),
		"bad kind":          append(AppendTxnHeader(nil, 0, 1), 99, 1, 't', 0, 0, 0, 0, 0, 0, 0, 0),
		"zero table len":    append(AppendTxnHeader(nil, 0, 1), byte(StGet), 0),
		"table past end":    append(AppendTxnHeader(nil, 0, 1), byte(StGet), 200, 't'),
		"truncated key":     append(AppendTxnHeader(nil, 0, 1), byte(StGet), 1, 't', 1, 2),
		"value past end":    good[:len(good)-1],
		"trailing bytes":    append(append([]byte{}, good...), 0xff),
	}
	for name, payload := range cases {
		if _, _, err := DecodeTxn(payload, nil); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}

	if _, _, err := DecodeTxn(good, nil); err != nil {
		t.Fatalf("control case failed: %v", err)
	}
}

func TestAbortCode(t *testing.T) {
	if AbortCode(0) != ErrCodeAbortRTSEarly {
		t.Fatalf("AbortCode(0) = %v", AbortCode(0))
	}
	if AbortCode(7) != ErrCodeAbortUser {
		t.Fatalf("AbortCode(7) = %v", AbortCode(7))
	}
	if AbortCode(8) != ErrCodeInternal {
		t.Fatalf("AbortCode(8) = %v", AbortCode(8))
	}
}

func TestCatalogNames(t *testing.T) {
	if OpTxn.String() != "txn" || Opcode(0x55).String() == "" {
		t.Fatal("opcode names")
	}
	if ErrCodeDraining.String() != "draining" || ErrCode(999).String() == "" {
		t.Fatal("error code names")
	}
	if StPut.String() != "put" || StmtKind(9).String() == "" {
		t.Fatal("stmt kind names")
	}
	// The abort block must cover all 8 reasons contiguously.
	for r := uint8(0); r < 8; r++ {
		name := AbortCode(r).String()
		if len(name) < len("abort_") || name[:6] != "abort_" {
			t.Fatalf("AbortCode(%d) = %q", r, name)
		}
	}
}

// TestEncodeRespAllocs pins the server-side response encode at zero
// allocations per frame on pooled chunks (ISSUE acceptance criterion).
func TestEncodeRespAllocs(t *testing.T) {
	pool := buf.NewPool(4096, 16)
	var w buf.Writer
	w.Init(pool)
	val := bytes.Repeat([]byte("x"), 64)

	// Warm the pool so steady state recycles chunks.
	for i := 0; i < 4; i++ {
		p := BeginFrame(&w, OpResult)
		AppendResultCount(&w, 2)
		AppendResult(&w, StatusOK, val)
		AppendResult(&w, StatusNotFound, nil)
		p.Finish(&w)
		head, _, _ := w.Detach()
		for c := head; c != nil; {
			n := c.Next()
			c.Release()
			c = n
		}
	}

	allocs := testing.AllocsPerRun(200, func() {
		p := BeginFrame(&w, OpResult)
		AppendResultCount(&w, 2)
		AppendResult(&w, StatusOK, val)
		AppendResult(&w, StatusNotFound, nil)
		p.Finish(&w)
		EncodeErr(&w, ErrCodeQuota, "q")
		EncodeEmpty(&w, OpOK)
		head, _, _ := w.Detach()
		for c := head; c != nil; {
			n := c.Next()
			c.Release()
			c = n
		}
	})
	if allocs != 0 {
		t.Fatalf("response encode allocates %v times per frame, want 0", allocs)
	}
}
