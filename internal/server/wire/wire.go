// Package wire defines the cicada-server wire protocol ("CICP"): a
// RESP-like length-prefixed binary framing whose server-side encoder works
// directly on internal/buf pooled chunks, so response encode is
// allocation-free on the hot path (the same zero-copy discipline as the
// WAL's staged redo chains — see docs/PROTOCOL.md for the full frame
// grammar, opcode and error-code tables, and versioning rules).
//
// Frame layout (all integers little-endian):
//
//	u32 length   bytes that follow the length field (opcode + payload)
//	u8  opcode
//	...          payload, length-1 bytes
//
// A frame's payload is always contiguous in memory: the session reader
// pulls each request into one pooled chunk (oversize requests get a
// dedicated chunk), and decode works in place over that buffer without
// copying. Responses are staged into a buf.Writer chunk chain; a response
// larger than one chunk simply spans chunks in the chain, and the reserved
// header is patched with the final length before the chain is written out.
//
// Versioning (docs/PROTOCOL.md "Versioning and compatibility"): the major
// version must match exactly; opcodes, statement kinds, and error codes are
// append-only and never renumbered; unknown trailing bytes in a hello
// payload are ignored so minor revisions can extend the handshake.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cicada/internal/buf"
)

// Protocol version, sent in hello and echoed in the hello response.
const (
	ProtoMajor = 1
	ProtoMinor = 0
)

// Framing limits.
const (
	// FrameHeaderLen is the fixed frame prefix: u32 length + u8 opcode.
	FrameHeaderLen = 5
	// ResultHeaderLen is the fixed per-statement result prefix:
	// u8 status + u32 value length.
	ResultHeaderLen = 5
	// DefaultMaxFrame bounds a frame's length field (opcode + payload)
	// unless the server configures its own bound; it is advertised in the
	// hello response so clients can size requests.
	DefaultMaxFrame = 1 << 20
	// MaxStatements bounds the statement count of one txn frame.
	MaxStatements = 1024
	// MaxTableName bounds a table name inside a statement (u8 length).
	MaxTableName = 255
)

// Opcode identifies a frame's meaning. Requests occupy 0x01–0x7F,
// responses 0x80–0xFF; values are append-only and never renumbered.
type Opcode uint8

// Request opcodes (client → server).
const (
	// OpHello opens a session: protocol version plus tenant name. It must
	// be the first frame on a connection.
	OpHello Opcode = 0x01
	// OpPing is a liveness probe; the server answers with an empty ok.
	OpPing Opcode = 0x02
	// OpTxn submits one whole multi-statement transaction for execution on
	// the fixed worker set.
	OpTxn Opcode = 0x03
	// OpStats asks for the session tenant's counters.
	OpStats Opcode = 0x04
)

// Response opcodes (server → client).
const (
	// OpOK acknowledges hello/ping/stats; the payload shape depends on the
	// request it answers (responses arrive in request order).
	OpOK Opcode = 0x80
	// OpResult carries a txn's per-statement results.
	OpResult Opcode = 0x81
	// OpErr reports a request-level failure as a typed error code.
	OpErr Opcode = 0xFF
)

// opcodeNames is the opcode catalog. The protodrift analyzer cross-checks
// it against the opcode table in docs/PROTOCOL.md, both directions.
var opcodeNames = map[Opcode]string{
	OpHello:  "hello",
	OpPing:   "ping",
	OpTxn:    "txn",
	OpStats:  "stats",
	OpOK:     "ok",
	OpResult: "result",
	OpErr:    "err",
}

// String returns the opcode's stable catalog name.
func (o Opcode) String() string {
	if s, ok := opcodeNames[o]; ok {
		return s
	}
	return fmt.Sprintf("opcode(0x%02x)", uint8(o))
}

// StmtKind identifies one statement inside a txn frame.
type StmtKind uint8

const (
	// StGet reads the value under a key; a missing key is a per-statement
	// not_found status, not a transaction error.
	StGet StmtKind = 1
	// StPut upserts the value under a key (blind write; the transaction
	// still validates serializably).
	StPut StmtKind = 2
	// StDelete removes a key; missing keys report not_found status.
	StDelete StmtKind = 3
)

// stmtKindNames is the statement catalog, drift-checked against the
// statement table in docs/PROTOCOL.md.
var stmtKindNames = map[StmtKind]string{
	StGet:    "get",
	StPut:    "put",
	StDelete: "delete",
}

// String returns the statement kind's stable catalog name.
func (k StmtKind) String() string {
	if s, ok := stmtKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("stmt(%d)", uint8(k))
}

// Per-statement result statuses.
const (
	// StatusOK marks a statement that applied (gets carry the value).
	StatusOK = 0
	// StatusNotFound marks a get/delete whose key was absent at the
	// transaction's timestamp.
	StatusNotFound = 1
)

// ErrCode is a typed wire error. Codes 1–31 are protocol/admission errors;
// 32–39 mirror the engine's 8-reason abort taxonomy
// (docs/OBSERVABILITY.md), reported when a transaction exhausts its
// server-side retry budget. Codes are append-only and never renumbered.
type ErrCode uint16

const (
	// ErrCodeMalformed reports an unparseable frame; the connection closes
	// because framing may be out of sync.
	ErrCodeMalformed ErrCode = 1
	// ErrCodeUnknownOp reports an opcode outside the catalog.
	ErrCodeUnknownOp ErrCode = 2
	// ErrCodeBadVersion reports a hello whose major version differs.
	ErrCodeBadVersion ErrCode = 3
	// ErrCodeNoHello reports a request before the hello handshake.
	ErrCodeNoHello ErrCode = 4
	// ErrCodeUnknownTenant reports a hello naming an unprovisioned tenant.
	ErrCodeUnknownTenant ErrCode = 5
	// ErrCodeNoTable reports a statement naming a table outside the
	// tenant's namespace.
	ErrCodeNoTable ErrCode = 6
	// ErrCodeFrameTooLarge reports a length field over the advertised
	// bound; the connection closes.
	ErrCodeFrameTooLarge ErrCode = 7
	// ErrCodeQuota is the per-tenant admission rejection (session or
	// in-flight quota exhausted).
	ErrCodeQuota ErrCode = 8
	// ErrCodeOverload is the global admission rejection (submission queue
	// full across all tenants).
	ErrCodeOverload ErrCode = 9
	// ErrCodeDraining rejects new work while the server drains for
	// shutdown.
	ErrCodeDraining ErrCode = 10
	// ErrCodeNotFound maps a transaction that failed with the engine's
	// not-found sentinel (e.g. an application-level lookup contract).
	ErrCodeNotFound ErrCode = 11
	// ErrCodeDuplicate maps a unique-index violation.
	ErrCodeDuplicate ErrCode = 12
	// ErrCodeInternal is an unclassified server-side failure.
	ErrCodeInternal ErrCode = 13
	// ErrCodeReadOnly reports a put or delete inside a read-only txn.
	ErrCodeReadOnly ErrCode = 14

	// ErrCodeAbortRTSEarly .. ErrCodeAbortUser mirror the abort taxonomy:
	// code = 32 + core.AbortReason.
	ErrCodeAbortRTSEarly      ErrCode = 32
	ErrCodeAbortWriteLatest   ErrCode = 33
	ErrCodeAbortPrecheck      ErrCode = 34
	ErrCodeAbortValidation    ErrCode = 35
	ErrCodeAbortPendingWait   ErrCode = 36
	ErrCodeAbortPrecommitHook ErrCode = 37
	ErrCodeAbortLogger        ErrCode = 38
	ErrCodeAbortUser          ErrCode = 39
)

// errorCodeNames is the error-code catalog, drift-checked against the
// error table in docs/PROTOCOL.md. The abort_* names deliberately append
// "abort_" to the engine's stable abort-reason label so dashboards can
// correlate the two taxonomies.
var errorCodeNames = map[ErrCode]string{
	ErrCodeMalformed:          "malformed",
	ErrCodeUnknownOp:          "unknown_op",
	ErrCodeBadVersion:         "bad_version",
	ErrCodeNoHello:            "no_hello",
	ErrCodeUnknownTenant:      "unknown_tenant",
	ErrCodeNoTable:            "no_table",
	ErrCodeFrameTooLarge:      "frame_too_large",
	ErrCodeQuota:              "quota",
	ErrCodeOverload:           "overload",
	ErrCodeDraining:           "draining",
	ErrCodeNotFound:           "not_found",
	ErrCodeDuplicate:          "duplicate",
	ErrCodeInternal:           "internal",
	ErrCodeReadOnly:           "read_only",
	ErrCodeAbortRTSEarly:      "abort_rts_early",
	ErrCodeAbortWriteLatest:   "abort_write_latest",
	ErrCodeAbortPrecheck:      "abort_precheck",
	ErrCodeAbortValidation:    "abort_validation",
	ErrCodeAbortPendingWait:   "abort_pending_wait",
	ErrCodeAbortPrecommitHook: "abort_precommit_hook",
	ErrCodeAbortLogger:        "abort_logger",
	ErrCodeAbortUser:          "abort_user",
}

// String returns the error code's stable catalog name.
func (c ErrCode) String() string {
	if s, ok := errorCodeNames[c]; ok {
		return s
	}
	return fmt.Sprintf("errcode(%d)", uint16(c))
}

// AbortCode maps an engine abort reason (core.AbortReason, 0–7) to its wire
// error code. Out-of-range reasons map to ErrCodeInternal so a future
// taxonomy growth cannot alias an unrelated code.
func AbortCode(reason uint8) ErrCode {
	c := ErrCodeAbortRTSEarly + ErrCode(reason)
	if c > ErrCodeAbortUser {
		return ErrCodeInternal
	}
	return c
}

// Decode errors. Every malformed input maps to an error satisfying
// errors.Is(err, ErrMalformed) (ErrFrameTooLarge additionally carries its
// own identity); decode never panics and never reads past the payload.
var (
	ErrMalformed     = errors.New("wire: malformed frame")
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum length")
)

// Stmt is one decoded statement. Table and Value alias the request
// payload: they are valid while the request's chunk is held and must not
// be retained past it.
type Stmt struct {
	Kind  StmtKind
	Table []byte
	Key   uint64
	Value []byte
}

// Txn frame flag bits.
const (
	// TxnReadOnly runs the batch as a read-only snapshot transaction:
	// consistent, never aborts, but puts and deletes are rejected.
	TxnReadOnly = 1 << 0
)

// ---------------------------------------------------------------------------
// Server-side encode: frames staged into a buf.Writer chunk chain.

// FramePatch is the reserved header of an in-progress frame; Finish patches
// the length once the payload is staged. The header span stays valid until
// the chain is detached and released (buf.Writer contract).
type FramePatch struct {
	hdr   []byte
	start int64
}

// BeginFrame reserves a frame header in w and returns the patch to finish
// it. The opcode is stored now; the length is patched by Finish.
//
//cicada:noalloc
func BeginFrame(w *buf.Writer, op Opcode) FramePatch {
	h := w.Frame(FrameHeaderLen)
	h[4] = byte(op)
	return FramePatch{hdr: h, start: w.Bytes()}
}

// Finish patches the reserved length field with the bytes staged since
// BeginFrame (plus the opcode byte).
//
//cicada:noalloc
func (p FramePatch) Finish(w *buf.Writer) {
	binary.LittleEndian.PutUint32(p.hdr[:4], uint32(w.Bytes()-p.start)+1)
}

// AppendResultCount stages the u16 statement-result count that opens a
// result frame's payload.
//
//cicada:noalloc
func AppendResultCount(w *buf.Writer, n int) {
	binary.LittleEndian.PutUint16(w.Frame(2), uint16(n))
}

// AppendResult stages one per-statement result: status, value length, and
// the value bytes (copied, so the engine-owned slice need not outlive the
// transaction).
//
//cicada:noalloc
func AppendResult(w *buf.Writer, status byte, val []byte) {
	h := w.Frame(ResultHeaderLen)
	h[0] = status
	binary.LittleEndian.PutUint32(h[1:5], uint32(len(val)))
	if len(val) > 0 {
		copy(w.Frame(len(val)), val)
	}
}

// EncodeEmpty stages a complete frame with no payload (ok acks).
//
//cicada:noalloc
func EncodeEmpty(w *buf.Writer, op Opcode) {
	h := w.Frame(FrameHeaderLen)
	binary.LittleEndian.PutUint32(h[:4], 1)
	h[4] = byte(op)
}

// EncodeErr stages a complete error frame.
//
//cicada:noalloc
func EncodeErr(w *buf.Writer, code ErrCode, msg string) {
	if len(msg) > MaxTableName {
		msg = msg[:MaxTableName]
	}
	p := BeginFrame(w, OpErr)
	b := w.Frame(4 + len(msg))
	binary.LittleEndian.PutUint16(b[0:2], uint16(code))
	binary.LittleEndian.PutUint16(b[2:4], uint16(len(msg)))
	copy(b[4:], msg)
	p.Finish(w)
}

// ---------------------------------------------------------------------------
// Client-side encode: append-style builders over plain byte slices.

// AppendFrame appends a complete frame (header + payload) to dst.
func AppendFrame(dst []byte, op Opcode, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+len(payload)))
	dst = append(dst, byte(op))
	return append(dst, payload...)
}

// AppendHello appends a hello payload (version + tenant name).
func AppendHello(dst []byte, tenant string) []byte {
	dst = append(dst, ProtoMajor, ProtoMinor)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(tenant)))
	return append(dst, tenant...)
}

// AppendTxnHeader appends a txn payload's fixed prefix.
func AppendTxnHeader(dst []byte, flags byte, nstmt int) []byte {
	dst = append(dst, flags)
	return binary.LittleEndian.AppendUint16(dst, uint16(nstmt))
}

// AppendGet appends a get statement.
func AppendGet(dst []byte, table string, key uint64) []byte {
	dst = appendStmtPrefix(dst, StGet, table, key)
	return dst
}

// AppendPut appends a put statement.
func AppendPut(dst []byte, table string, key uint64, val []byte) []byte {
	dst = appendStmtPrefix(dst, StPut, table, key)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(val)))
	return append(dst, val...)
}

// AppendDelete appends a delete statement.
func AppendDelete(dst []byte, table string, key uint64) []byte {
	return appendStmtPrefix(dst, StDelete, table, key)
}

func appendStmtPrefix(dst []byte, kind StmtKind, table string, key uint64) []byte {
	dst = append(dst, byte(kind), byte(len(table)))
	dst = append(dst, table...)
	return binary.LittleEndian.AppendUint64(dst, key)
}

// ---------------------------------------------------------------------------
// Decode. All decoders work in place over one frame's payload, never
// panic, and return errors satisfying errors.Is(err, ErrMalformed) on any
// structural violation.

// ReadFrame reads one frame from r: the opcode and a pooled chunk holding
// the payload (nil when the payload is empty; the caller must Release a
// non-nil chunk). maxFrame bounds the length field; an oversized frame
// returns ErrFrameTooLarge without consuming the payload, so the caller
// must treat it as connection-fatal.
func ReadFrame(r io.Reader, pool *buf.Pool, maxFrame int) (Opcode, *buf.Chunk, error) {
	var hdr [FrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 1 {
		return 0, nil, fmt.Errorf("zero-length frame: %w", ErrMalformed)
	}
	if int64(n) > int64(maxFrame) {
		return 0, nil, fmt.Errorf("frame length %d > %d: %w", n, maxFrame, ErrFrameTooLarge)
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		return 0, nil, err
	}
	op := Opcode(hdr[4])
	if n == 1 {
		return op, nil, nil
	}
	c := pool.GetSized(int(n) - 1)
	b := c.Buf()[:n-1]
	if _, err := io.ReadFull(r, b); err != nil {
		c.Release()
		return 0, nil, err
	}
	c.SetLen(int(n) - 1)
	return op, c, nil
}

// payloadReader is a bounds-checked cursor over one frame payload.
type payloadReader struct {
	b   []byte
	off int
}

func (r *payloadReader) remain() int { return len(r.b) - r.off }

func (r *payloadReader) u8() (uint8, bool) {
	if r.remain() < 1 {
		return 0, false
	}
	v := r.b[r.off]
	r.off++
	return v, true
}

func (r *payloadReader) u16() (uint16, bool) {
	if r.remain() < 2 {
		return 0, false
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v, true
}

func (r *payloadReader) u32() (uint32, bool) {
	if r.remain() < 4 {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, true
}

func (r *payloadReader) u64() (uint64, bool) {
	if r.remain() < 8 {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, true
}

func (r *payloadReader) bytes(n int) ([]byte, bool) {
	if n < 0 || r.remain() < n {
		return nil, false
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v, true
}

// Hello is a decoded hello payload. Tenant aliases the frame buffer.
type Hello struct {
	Major, Minor uint8
	Tenant       []byte
}

// DecodeHello parses a hello payload. Unknown trailing bytes are ignored
// (minor-version forward compatibility).
func DecodeHello(payload []byte) (Hello, error) {
	r := payloadReader{b: payload}
	var h Hello
	var ok bool
	if h.Major, ok = r.u8(); !ok {
		return h, fmt.Errorf("hello: truncated version: %w", ErrMalformed)
	}
	if h.Minor, ok = r.u8(); !ok {
		return h, fmt.Errorf("hello: truncated version: %w", ErrMalformed)
	}
	n, ok := r.u16()
	if !ok {
		return h, fmt.Errorf("hello: truncated tenant length: %w", ErrMalformed)
	}
	if h.Tenant, ok = r.bytes(int(n)); !ok || n == 0 {
		return h, fmt.Errorf("hello: tenant length %d exceeds payload: %w", n, ErrMalformed)
	}
	return h, nil
}

// DecodeTxn parses a txn payload, appending statements to dst (pass a
// reused slice to avoid allocation). Statements alias the payload.
func DecodeTxn(payload []byte, dst []Stmt) (flags byte, stmts []Stmt, err error) {
	r := payloadReader{b: payload}
	f, ok := r.u8()
	if !ok {
		return 0, dst, fmt.Errorf("txn: truncated flags: %w", ErrMalformed)
	}
	n, ok := r.u16()
	if !ok {
		return 0, dst, fmt.Errorf("txn: truncated statement count: %w", ErrMalformed)
	}
	if n == 0 || n > MaxStatements {
		return 0, dst, fmt.Errorf("txn: statement count %d out of range [1,%d]: %w", n, MaxStatements, ErrMalformed)
	}
	for i := 0; i < int(n); i++ {
		var s Stmt
		k, ok := r.u8()
		if !ok {
			return 0, dst, fmt.Errorf("txn: truncated statement %d: %w", i, ErrMalformed)
		}
		s.Kind = StmtKind(k)
		switch s.Kind {
		case StGet, StPut, StDelete:
		default:
			return 0, dst, fmt.Errorf("txn: unknown statement kind %d: %w", k, ErrMalformed)
		}
		tlen, ok := r.u8()
		if !ok || tlen == 0 {
			return 0, dst, fmt.Errorf("txn: bad table length in statement %d: %w", i, ErrMalformed)
		}
		if s.Table, ok = r.bytes(int(tlen)); !ok {
			return 0, dst, fmt.Errorf("txn: table name exceeds payload in statement %d: %w", i, ErrMalformed)
		}
		if s.Key, ok = r.u64(); !ok {
			return 0, dst, fmt.Errorf("txn: truncated key in statement %d: %w", i, ErrMalformed)
		}
		if s.Kind == StPut {
			vlen, ok := r.u32()
			if !ok {
				return 0, dst, fmt.Errorf("txn: truncated value length in statement %d: %w", i, ErrMalformed)
			}
			if s.Value, ok = r.bytes(int(vlen)); !ok {
				return 0, dst, fmt.Errorf("txn: value length %d exceeds payload in statement %d: %w", vlen, i, ErrMalformed)
			}
		}
		dst = append(dst, s)
	}
	if r.remain() != 0 {
		return 0, dst, fmt.Errorf("txn: %d trailing bytes: %w", r.remain(), ErrMalformed)
	}
	return f, dst, nil
}

// Result is one decoded per-statement result. Value aliases the response
// buffer.
type Result struct {
	Status byte
	Value  []byte
}

// DecodeResults parses a result payload, appending to dst.
func DecodeResults(payload []byte, dst []Result) ([]Result, error) {
	r := payloadReader{b: payload}
	n, ok := r.u16()
	if !ok {
		return dst, fmt.Errorf("result: truncated count: %w", ErrMalformed)
	}
	for i := 0; i < int(n); i++ {
		status, ok := r.u8()
		if !ok {
			return dst, fmt.Errorf("result: truncated status %d: %w", i, ErrMalformed)
		}
		vlen, ok := r.u32()
		if !ok {
			return dst, fmt.Errorf("result: truncated value length %d: %w", i, ErrMalformed)
		}
		val, ok := r.bytes(int(vlen))
		if !ok {
			return dst, fmt.Errorf("result: value length %d exceeds payload: %w", vlen, ErrMalformed)
		}
		dst = append(dst, Result{Status: status, Value: val})
	}
	if r.remain() != 0 {
		return dst, fmt.Errorf("result: %d trailing bytes: %w", r.remain(), ErrMalformed)
	}
	return dst, nil
}

// DecodeErr parses an err payload.
func DecodeErr(payload []byte) (ErrCode, string, error) {
	r := payloadReader{b: payload}
	code, ok := r.u16()
	if !ok {
		return 0, "", fmt.Errorf("err: truncated code: %w", ErrMalformed)
	}
	mlen, ok := r.u16()
	if !ok {
		return 0, "", fmt.Errorf("err: truncated message length: %w", ErrMalformed)
	}
	msg, ok := r.bytes(int(mlen))
	if !ok {
		return 0, "", fmt.Errorf("err: message length %d exceeds payload: %w", mlen, ErrMalformed)
	}
	return ErrCode(code), string(msg), nil
}

// HelloOK is the decoded hello response: the negotiated version, the
// server's frame bound, and the tenant's table namespace.
type HelloOK struct {
	Major, Minor uint8
	MaxFrame     uint32
	Tables       []string
}

// AppendHelloOK appends a hello-ok payload (server side; cold path, so the
// plain-slice builder is fine here).
func AppendHelloOK(dst []byte, maxFrame uint32, tables []string) []byte {
	dst = append(dst, ProtoMajor, ProtoMinor)
	dst = binary.LittleEndian.AppendUint32(dst, maxFrame)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(tables)))
	for _, t := range tables {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(t)))
		dst = append(dst, t...)
	}
	return dst
}

// DecodeHelloOK parses a hello response payload.
func DecodeHelloOK(payload []byte) (HelloOK, error) {
	r := payloadReader{b: payload}
	var h HelloOK
	var ok bool
	if h.Major, ok = r.u8(); !ok {
		return h, fmt.Errorf("hello-ok: truncated version: %w", ErrMalformed)
	}
	if h.Minor, ok = r.u8(); !ok {
		return h, fmt.Errorf("hello-ok: truncated version: %w", ErrMalformed)
	}
	if h.MaxFrame, ok = r.u32(); !ok {
		return h, fmt.Errorf("hello-ok: truncated frame bound: %w", ErrMalformed)
	}
	n, ok := r.u16()
	if !ok {
		return h, fmt.Errorf("hello-ok: truncated table count: %w", ErrMalformed)
	}
	for i := 0; i < int(n); i++ {
		tlen, ok := r.u16()
		if !ok {
			return h, fmt.Errorf("hello-ok: truncated table length %d: %w", i, ErrMalformed)
		}
		name, ok := r.bytes(int(tlen))
		if !ok {
			return h, fmt.Errorf("hello-ok: table name exceeds payload: %w", ErrMalformed)
		}
		h.Tables = append(h.Tables, string(name))
	}
	return h, nil
}

// Stats is the decoded stats response: engine-wide transaction outcomes
// plus the session tenant's live admission state.
type Stats struct {
	Commits        uint64
	Aborts         uint64
	TenantInflight uint32
	TenantSessions uint32
}

// AppendStats appends a stats payload (server side).
func AppendStats(dst []byte, s Stats) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, s.Commits)
	dst = binary.LittleEndian.AppendUint64(dst, s.Aborts)
	dst = binary.LittleEndian.AppendUint32(dst, s.TenantInflight)
	return binary.LittleEndian.AppendUint32(dst, s.TenantSessions)
}

// DecodeStats parses a stats response payload.
func DecodeStats(payload []byte) (Stats, error) {
	r := payloadReader{b: payload}
	var s Stats
	var ok bool
	if s.Commits, ok = r.u64(); !ok {
		return s, fmt.Errorf("stats: truncated commits: %w", ErrMalformed)
	}
	if s.Aborts, ok = r.u64(); !ok {
		return s, fmt.Errorf("stats: truncated aborts: %w", ErrMalformed)
	}
	if s.TenantInflight, ok = r.u32(); !ok {
		return s, fmt.Errorf("stats: truncated inflight: %w", ErrMalformed)
	}
	if s.TenantSessions, ok = r.u32(); !ok {
		return s, fmt.Errorf("stats: truncated sessions: %w", ErrMalformed)
	}
	return s, nil
}

// OpcodeNames returns the opcode catalog (name by opcode); exposed for the
// docs-drift tooling and tests.
func OpcodeNames() map[Opcode]string { return opcodeNames }

// ErrorCodeNames returns the error-code catalog.
func ErrorCodeNames() map[ErrCode]string { return errorCodeNames }

// StmtKindNames returns the statement catalog.
func StmtKindNames() map[StmtKind]string { return stmtKindNames }
