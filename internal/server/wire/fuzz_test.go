package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"cicada/internal/buf"
)

// FuzzDecode feeds arbitrary bytes through the full server-side decode
// path: frame splitting, then the per-opcode payload decoder. The
// invariants are the ISSUE's acceptance bar for the protocol layer:
// malformed input must surface as a typed error (ErrMalformed /
// ErrFrameTooLarge / io error), never a panic, and must never leak a
// pooled chunk.
func FuzzDecode(f *testing.F) {
	f.Add(AppendFrame(nil, OpHello, AppendHello(nil, "acme")))
	f.Add(AppendFrame(nil, OpPing, nil))
	txn := AppendTxnHeader(nil, 0, 2)
	txn = AppendGet(txn, "accounts", 1)
	txn = AppendPut(txn, "accounts", 2, []byte("v"))
	f.Add(AppendFrame(nil, OpTxn, txn))
	f.Add(AppendFrame(nil, OpErr, []byte{8, 0, 1, 0, 'q'}))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		pool := buf.NewPool(512, 8)
		r := bytes.NewReader(data)
		for {
			op, c, err := ReadFrame(r, pool, 1<<16)
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF &&
					!errors.Is(err, ErrMalformed) && !errors.Is(err, ErrFrameTooLarge) {
					t.Fatalf("ReadFrame: untyped error %v", err)
				}
				break
			}
			var payload []byte
			if c != nil {
				payload = c.Bytes()
			}
			// Run every decoder over the payload regardless of opcode:
			// a server must survive any opcode/payload combination.
			checkTyped(t, func() error { _, err := DecodeHello(payload); return err })
			checkTyped(t, func() error { _, _, err := DecodeTxn(payload, nil); return err })
			checkTyped(t, func() error { _, err := DecodeResults(payload, nil); return err })
			checkTyped(t, func() error { _, _, err := DecodeErr(payload); return err })
			checkTyped(t, func() error { _, err := DecodeHelloOK(payload); return err })
			checkTyped(t, func() error { _, err := DecodeStats(payload); return err })
			_ = op.String()
			if c != nil {
				c.Release()
			}
		}
		if pool.Live() != 0 {
			t.Fatalf("leaked %d chunks", pool.Live())
		}
	})
}

func checkTyped(t *testing.T, fn func() error) {
	t.Helper()
	if err := fn(); err != nil && !errors.Is(err, ErrMalformed) {
		t.Fatalf("decoder returned untyped error: %v", err)
	}
}

// FuzzTxnRoundTrip checks that any txn payload the decoder accepts
// re-encodes to an equivalent statement list (encode/decode agree on the
// grammar).
func FuzzTxnRoundTrip(f *testing.F) {
	seed := AppendTxnHeader(nil, 1, 2)
	seed = AppendGet(seed, "t", 5)
	seed = AppendPut(seed, "u", 6, []byte("val"))
	f.Add(seed)

	f.Fuzz(func(t *testing.T, payload []byte) {
		flags, stmts, err := DecodeTxn(payload, nil)
		if err != nil {
			return
		}
		re := AppendTxnHeader(nil, flags, len(stmts))
		for _, s := range stmts {
			switch s.Kind {
			case StGet:
				re = AppendGet(re, string(s.Table), s.Key)
			case StPut:
				re = AppendPut(re, string(s.Table), s.Key, s.Value)
			case StDelete:
				re = AppendDelete(re, string(s.Table), s.Key)
			}
		}
		if !bytes.Equal(re, payload) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", payload, re)
		}
	})
}
