// Package client is the Go client for cicada-server's wire protocol
// (docs/PROTOCOL.md). It is deliberately thin: a synchronous
// one-request-at-a-time connection plus a batched transaction builder —
// enough for the test suite, the server smoke test, and cicada-bench's
// -server-addr mode. Open several clients for concurrency; the server
// multiplexes them onto its fixed worker set.
package client

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cicada/internal/server/wire"
)

// ServerError is a typed wire error returned by the server.
type ServerError struct {
	Code wire.ErrCode
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("cicada server: %s (%d): %s", e.Code, uint16(e.Code), e.Msg)
}

// IsCode reports whether err is a ServerError with the given code.
func IsCode(err error, code wire.ErrCode) bool {
	se, ok := err.(*ServerError)
	return ok && se.Code == code
}

// Client is one connection to a cicada-server, bound to a tenant by the
// hello handshake. Safe for use by one goroutine at a time (an internal
// mutex serializes concurrent callers, but they gain no parallelism).
type Client struct {
	mu       sync.Mutex
	conn     net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	payload  []byte // reused response payload buffer
	out      []byte // reused request build buffer
	maxFrame uint32
	tables   []string
	results  []wire.Result
}

// Dial connects to addr and performs the hello handshake as tenant.
func Dial(addr, tenant string) (*Client, error) {
	return DialTimeout(addr, tenant, 5*time.Second)
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr, tenant string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}
	if err := c.hello(tenant); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) hello(tenant string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	op, payload, err := c.roundTrip(wire.OpHello, wire.AppendHello(c.out[:0], tenant))
	if err != nil {
		return err
	}
	if op != wire.OpOK {
		return fmt.Errorf("client: unexpected hello response opcode %v", op)
	}
	h, err := wire.DecodeHelloOK(payload)
	if err != nil {
		return err
	}
	if h.Major != wire.ProtoMajor {
		return fmt.Errorf("client: server speaks protocol %d.%d, want major %d",
			h.Major, h.Minor, wire.ProtoMajor)
	}
	c.maxFrame = h.MaxFrame
	c.tables = h.Tables
	return nil
}

// Tables returns the tenant's table namespace as advertised in the hello
// response.
func (c *Client) Tables() []string { return c.tables }

// MaxFrame returns the server's advertised frame bound.
func (c *Client) MaxFrame() uint32 { return c.maxFrame }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	op, _, err := c.roundTrip(wire.OpPing, nil)
	if err != nil {
		return err
	}
	if op != wire.OpOK {
		return fmt.Errorf("client: unexpected ping response opcode %v", op)
	}
	return nil
}

// Stats fetches engine-wide outcome counters and the tenant's admission
// state.
func (c *Client) Stats() (wire.Stats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	op, payload, err := c.roundTrip(wire.OpStats, nil)
	if err != nil {
		return wire.Stats{}, err
	}
	if op != wire.OpOK {
		return wire.Stats{}, fmt.Errorf("client: unexpected stats response opcode %v", op)
	}
	return wire.DecodeStats(payload)
}

// Txn starts a batched transaction. Statements accumulate client-side and
// ship as one frame on Exec; the server runs them as one serializable
// transaction.
func (c *Client) Txn() *Txn { return &Txn{c: c} }

// ReadOnlyTxn starts a batched read-only snapshot transaction (consistent,
// never aborts; writes are rejected).
func (c *Client) ReadOnlyTxn() *Txn { return &Txn{c: c, flags: wire.TxnReadOnly} }

// Txn accumulates statements for one batched transaction.
type Txn struct {
	c     *Client
	flags byte
	n     int
	body  []byte
	err   error
}

// Get appends a point read of table[key].
func (t *Txn) Get(table string, key uint64) *Txn {
	t.body = wire.AppendGet(t.body, table, key)
	t.n++
	return t
}

// Put appends an upsert of table[key] = val.
func (t *Txn) Put(table string, key uint64, val []byte) *Txn {
	t.body = wire.AppendPut(t.body, table, key, val)
	t.n++
	return t
}

// Delete appends a delete of table[key].
func (t *Txn) Delete(table string, key uint64) *Txn {
	t.body = wire.AppendDelete(t.body, table, key)
	t.n++
	return t
}

// Exec ships the batch and returns the per-statement results in statement
// order. Result values alias the client's reusable read buffer: they are
// valid until the client's next request. A *ServerError carries the wire
// error code (including the abort taxonomy) on failure.
func (t *Txn) Exec() ([]wire.Result, error) {
	if t.err != nil {
		return nil, t.err
	}
	if t.n == 0 {
		return nil, fmt.Errorf("client: empty transaction")
	}
	c := t.c
	c.mu.Lock()
	defer c.mu.Unlock()
	payload := wire.AppendTxnHeader(c.out[:0], t.flags, t.n)
	payload = append(payload, t.body...)
	c.out = payload[:0]
	op, resp, err := c.roundTrip(wire.OpTxn, payload)
	if err != nil {
		return nil, err
	}
	if op != wire.OpResult {
		return nil, fmt.Errorf("client: unexpected txn response opcode %v", op)
	}
	c.results, err = wire.DecodeResults(resp, c.results[:0])
	if err != nil {
		return nil, err
	}
	return c.results, nil
}

// roundTrip writes one request frame and reads one response frame,
// translating err frames into *ServerError. Callers hold c.mu.
func (c *Client) roundTrip(op wire.Opcode, payload []byte) (wire.Opcode, []byte, error) {
	var hdr [wire.FrameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = byte(op)
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return 0, nil, err
	}
	if _, err := c.bw.Write(payload); err != nil {
		return 0, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, nil, err
	}
	return c.readFrame()
}

func (c *Client) readFrame() (wire.Opcode, []byte, error) {
	var hdr [wire.FrameHeaderLen]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 1 || n > wire.DefaultMaxFrame*4 {
		return 0, nil, fmt.Errorf("client: bad response frame length %d", n)
	}
	op := wire.Opcode(hdr[4])
	if cap(c.payload) < int(n)-1 {
		c.payload = make([]byte, int(n)-1)
	}
	payload := c.payload[:int(n)-1]
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return 0, nil, err
	}
	if op == wire.OpErr {
		code, msg, err := wire.DecodeErr(payload)
		if err != nil {
			return 0, nil, err
		}
		return op, nil, &ServerError{Code: code, Msg: msg}
	}
	return op, payload, nil
}
